// Ablation: configuration-space richness — sparse Hamming graphs vs Ruche
// networks (related work [41]).
//
// Section VI claims SHGs are a superset of Ruche networks providing
// "significantly more configurations" and therefore "a more fine-grained
// adjustment of the cost-performance trade-off". This bench enumerates both
// families on the scenario-a architecture, extracts their trade-off fronts
// in the (area overhead, uniform-traffic throughput bound) plane and
// reports the coverage of each front.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "shg/common/strings.hpp"
#include "shg/common/table.hpp"
#include "shg/customize/explore.hpp"
#include "shg/tech/presets.hpp"
#include "shg/topo/generators.hpp"

namespace {

using namespace shg;

void BM_ExploreRucheSpace(benchmark::State& state) {
  const tech::ArchParams arch = tech::knc_scenario(tech::KncScenario::kA);
  customize::ExploreOptions options;
  for (auto _ : state) {
    benchmark::DoNotOptimize(customize::explore_ruche(arch, options));
  }
}
BENCHMARK(BM_ExploreRucheSpace);

void print_comparison() {
  const tech::ArchParams arch = tech::knc_scenario(tech::KncScenario::kA);
  customize::ExploreOptions options;
  options.max_row_skips = 3;
  options.max_col_skips = 3;

  const auto shg_points = customize::explore_shg(arch, options);
  const auto ruche_points = customize::explore_ruche(arch, options);
  const auto shg_front = customize::trade_off_front(shg_points);
  const auto ruche_front = customize::trade_off_front(ruche_points);

  std::printf("\n=== Design-space comparison: SHG vs Ruche (scenario a) ===\n");
  std::printf("configurations enumerated: SHG (<=3 skips/dim) %zu, Ruche %zu\n",
              shg_points.size(), ruche_points.size());
  std::printf("full space (Table I): SHG 2^(R+C-4) = %g, Ruche (C-1)(R-1) = "
              "%g\n",
              topo::num_configurations(topo::Kind::kSparseHamming, arch.rows,
                                       arch.cols),
              topo::num_configurations(topo::Kind::kRuche, arch.rows,
                                       arch.cols));
  std::printf("trade-off front sizes: SHG %zu, Ruche %zu\n", shg_front.size(),
              ruche_front.size());
  std::printf("front coverage up to 40%% overhead: SHG %.4f, Ruche %.4f "
              "(higher = richer trade-off)\n",
              customize::front_coverage(shg_front, 0.40),
              customize::front_coverage(ruche_front, 0.40));

  Table table({"family", "config", "area ovh", "avg hops", "thpt bound"});
  auto add_front = [&table](const char* family,
                            const std::vector<customize::ExploredPoint>& front,
                            std::size_t limit) {
    for (std::size_t i = 0; i < front.size() && i < limit; ++i) {
      table.add_row({family, front[i].label,
                     fmt_double(100.0 * front[i].metrics.area_overhead, 1) +
                         " %",
                     fmt_double(front[i].metrics.avg_hops, 2),
                     fmt_double(front[i].metrics.throughput_bound, 3)});
    }
  };
  add_front("ruche", ruche_front, 100);
  add_front("shg", shg_front, 24);
  std::printf("%s", table.to_string().c_str());
  std::printf("(SHG front truncated to 24 rows for readability)\n");
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  print_comparison();
  return 0;
}
