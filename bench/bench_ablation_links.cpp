// Ablation: why per-link latency estimates matter (contribution #3).
//
// High-level models assume idealized one-cycle links; the paper's toolchain
// estimates per-link latencies from approximate floorplanning and routing.
// This bench simulates each scenario-c topology twice — once with the
// modeled latencies, once with all links forced to a single cycle — and
// reports how much an idealized model distorts latency and throughput for
// topologies with long links (torus wrap-around, SlimNoC diagonals,
// flattened-butterfly row links).
#include <benchmark/benchmark.h>

#include <cstdio>

#include "shg/common/strings.hpp"
#include "shg/common/table.hpp"
#include "shg/eval/scenario.hpp"
#include "shg/eval/toolchain.hpp"

namespace {

using namespace shg;

void BM_GlobalAndDetailedRouting(benchmark::State& state) {
  const auto scenario = eval::figure6_scenario(tech::KncScenario::kC);
  const auto topologies = eval::scenario_topologies(scenario);
  const auto& slim = topologies[5];  // slim_noc in the 8x16 suite
  for (auto _ : state) {
    benchmark::DoNotOptimize(eval::predict_cost(scenario.arch, slim));
  }
}
BENCHMARK(BM_GlobalAndDetailedRouting);

void print_ablation() {
  const auto scenario = eval::figure6_scenario(tech::KncScenario::kC);
  eval::PerfConfig perf = eval::default_perf_config(scenario.arch);
  perf.sim.warmup_cycles = 500;
  perf.sim.measure_cycles = 1500;
  perf.bisection_iterations = 5;

  std::printf("\n=== Link-latency ablation (scenario c, 128 tiles) ===\n");
  Table table({"topology", "avg link lat", "ZLL modeled", "ZLL ideal",
               "distortion", "sat modeled", "sat ideal"});
  const auto pattern = sim::make_uniform(scenario.arch.num_tiles());
  for (const auto& topology : eval::scenario_topologies(scenario)) {
    const auto cost = eval::predict_cost(scenario.arch, topology);
    const auto modeled = eval::evaluate_performance(
        topology, cost.link_latencies(), scenario.arch.endpoints_per_tile,
        *pattern, perf);
    const std::vector<int> ideal_links(
        static_cast<std::size_t>(topology.graph().num_edges()), 1);
    const auto ideal = eval::evaluate_performance(
        topology, ideal_links, scenario.arch.endpoints_per_tile, *pattern,
        perf);
    table.add_row(
        {topology.name(),
         fmt_double(cost.avg_link_latency_cycles, 2) + " cyc",
         fmt_double(modeled.zero_load_latency_cycles, 1) + " cyc",
         fmt_double(ideal.zero_load_latency_cycles, 1) + " cyc",
         fmt_double(modeled.zero_load_latency_cycles /
                        ideal.zero_load_latency_cycles,
                    2) + "x",
         fmt_double(100.0 * modeled.saturation_throughput, 1) + " %",
         fmt_double(100.0 * ideal.saturation_throughput, 1) + " %"});
  }
  std::printf("%s", table.to_string().c_str());
  std::printf(
      "\nTopologies built from short links (mesh, folded torus, SHG) are\n"
      "barely distorted by the one-cycle idealization; long-link topologies\n"
      "look significantly better than they would be in silicon — exactly\n"
      "the inaccuracy of high-level models the paper's toolchain removes.\n");
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  print_ablation();
  return 0;
}
