// Load-latency curves: the classic NoC evaluation plot underlying the
// "saturation throughput" numbers of Figure 6 — average packet latency as a
// function of offered load for every scenario-a topology, printed as a
// table and as CSV for plotting.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "shg/common/strings.hpp"
#include "shg/common/table.hpp"
#include "shg/eval/scenario.hpp"
#include "shg/eval/sweep.hpp"
#include "shg/eval/toolchain.hpp"

namespace {

using namespace shg;

void BM_SweepPointMesh(benchmark::State& state) {
  const auto scenario = eval::figure6_scenario(tech::KncScenario::kA);
  const auto topo = eval::scenario_topologies(scenario)[1];  // mesh
  const auto cost = eval::predict_cost(scenario.arch, topo);
  const auto latencies = cost.link_latencies();
  const auto pattern = sim::make_uniform(64);
  eval::PerfConfig config = eval::default_perf_config(scenario.arch);
  config.sim.warmup_cycles = 300;
  config.sim.measure_cycles = 1000;
  for (auto _ : state) {
    benchmark::DoNotOptimize(eval::simulate_at_rate(
        topo, latencies, 1, *pattern, config, 0.2));
  }
}
BENCHMARK(BM_SweepPointMesh);

void print_curves() {
  const auto scenario = eval::figure6_scenario(tech::KncScenario::kA);
  eval::PerfConfig config = eval::default_perf_config(scenario.arch);
  config.sim.warmup_cycles = 500;
  config.sim.measure_cycles = 1500;
  config.sim.drain_cycles = 15000;

  const std::vector<double> rates = {0.02, 0.05, 0.1, 0.2, 0.3,
                                     0.4,  0.5,  0.6, 0.8, 1.0};
  const auto pattern = sim::make_uniform(scenario.arch.num_tiles());

  std::vector<eval::LoadLatencyCurve> curves;
  for (const auto& topology : eval::scenario_topologies(scenario)) {
    const auto cost = eval::predict_cost(scenario.arch, topology);
    curves.push_back(eval::sweep_load_latency(
        topology, cost.link_latencies(), scenario.arch.endpoints_per_tile,
        *pattern, config, rates, topology.name()));
  }

  std::printf("\n=== Load-latency curves (scenario a, uniform traffic) ===\n");
  Table table({"topology", "rate", "accepted", "avg latency", "p99",
               "drained"});
  for (const auto& curve : curves) {
    for (const auto& point : curve.points) {
      table.add_row({curve.label, fmt_double(point.offered_rate, 2),
                     fmt_double(point.accepted_rate, 3),
                     fmt_double(point.avg_latency, 1),
                     fmt_double(point.p99_latency, 1),
                     point.drained ? "yes" : "no"});
    }
  }
  std::printf("%s", table.to_string().c_str());
  std::printf("\nCSV:\n%s", eval::curves_to_csv(curves).c_str());
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  print_curves();
  return 0;
}
