// Ablation: routing algorithm and router microarchitecture.
//
// Design principle #4 requires the topology to be *co-designed with the
// routing algorithm*. This bench compares, on the customized scenario-a
// sparse Hamming graph:
//   * XY-Hamming monotone routing (the co-designed default) vs. the generic
//     minimal-adaptive + escape-VC table routing, and
//   * virtual-channel count and buffer-depth sweeps.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "shg/common/strings.hpp"
#include "shg/common/table.hpp"
#include "shg/eval/toolchain.hpp"
#include "shg/tech/presets.hpp"
#include "shg/topo/generators.hpp"

namespace {

using namespace shg;

struct Setup {
  topo::Topology topology;
  std::vector<int> latencies;
  tech::ArchParams arch;
};

Setup make_setup() {
  tech::ArchParams arch = tech::knc_scenario(tech::KncScenario::kA);
  topo::Topology topology = topo::make_sparse_hamming(8, 8, {4}, {2, 5});
  const auto cost = eval::predict_cost(arch, topology);
  return Setup{std::move(topology), cost.link_latencies(), std::move(arch)};
}

void BM_SimulationCycleRate(benchmark::State& state) {
  const Setup setup = make_setup();
  const auto pattern = sim::make_uniform(64);
  sim::SimConfig config;
  config.injection_rate = 0.2;
  config.warmup_cycles = 100;
  config.measure_cycles = 400;
  long long cycles = 0;
  for (auto _ : state) {
    sim::Simulator simulator(setup.topology, setup.latencies, config,
                             *pattern, 1);
    const auto result = simulator.run();
    cycles += result.cycles_run;
  }
  state.counters["cycles/s"] = benchmark::Counter(
      static_cast<double>(cycles), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SimulationCycleRate);

sim::SimResult run_once(const Setup& setup, const sim::TrafficPattern& pattern,
                        int vcs, int depth, double rate, bool table_routing) {
  sim::SimConfig config;
  config.num_vcs = vcs;
  config.buffer_depth_flits = depth;
  config.injection_rate = rate;
  config.warmup_cycles = 500;
  config.measure_cycles = 1500;
  config.drain_cycles = 20000;
  auto routing = table_routing
                     ? sim::make_table_escape_routing(setup.topology, vcs)
                     : sim::make_xy_hamming_routing(setup.topology, vcs);
  sim::Simulator simulator(setup.topology, setup.latencies, config, pattern,
                           1, std::move(routing));
  return simulator.run();
}

void print_ablation() {
  const Setup setup = make_setup();
  const auto pattern = sim::make_uniform(64);

  std::printf("\n=== Routing-algorithm ablation (SHG SR={4} SC={2,5}, "
              "scenario a) ===\n");
  Table routing_table({"routing", "VCs", "buffers", "rate", "avg latency",
                       "accepted", "drained"});
  for (const bool table_routing : {false, true}) {
    for (const double rate : {0.05, 0.25, 0.45}) {
      const auto result =
          run_once(setup, *pattern, 8, 32, rate, table_routing);
      routing_table.add_row(
          {table_routing ? "minimal-adaptive+escape" : "xy-hamming", "8",
           "32", fmt_double(rate, 2),
           fmt_double(result.avg_packet_latency, 1) + " cyc",
           fmt_double(result.accepted_rate, 3),
           result.drained ? "yes" : "no"});
    }
  }
  std::printf("%s", routing_table.to_string().c_str());

  std::printf("\n=== VC / buffer sweep (xy-hamming, rate 0.35) ===\n");
  Table sweep_table({"VCs", "buffers", "avg latency", "accepted", "drained"});
  for (const int vcs : {2, 4, 8}) {
    for (const int depth : {8, 32}) {
      const auto result = run_once(setup, *pattern, vcs, depth, 0.35, false);
      sweep_table.add_row({std::to_string(vcs), std::to_string(depth),
                           fmt_double(result.avg_packet_latency, 1) + " cyc",
                           fmt_double(result.accepted_rate, 3),
                           result.drained ? "yes" : "no"});
    }
  }
  std::printf("%s", sweep_table.to_string().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  print_ablation();
  return 0;
}
