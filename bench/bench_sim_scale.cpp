// Simulator raw-speed benchmark: tracks the SoA hot-loop overhaul (flat
// state slabs, active-router worklist, quiescence fast-forward) against the
// reference AoS engine across fabric sizes and workloads.
//
// Grid: {10x10, 32x32, 64x64} meshes x {uniform, hotspot, onoff}. The two
// small tiers run BOTH engines and report flits/sec each; 64x64 runs the
// SoA engine only with live routing (the all-pairs route table is the
// scaling wall there — building it would dwarf the simulation), proving the
// size-up the overhaul exists for. A concentrated 16x16 c=4 row (same 1024
// terminals as the 32x32 mesh on a quarter of the routers) tracks the
// concentration path.
//
// A routing-policy section (schema v3) saturates 32x32 fabrics (mesh and
// torus) under the two adversarial workloads (hotspot, transpose) with
// minimal and UGAL routing at identical VC/buffer resources and compares
// the accepted load. The per-row ratios tell the expected story: UGAL wins
// where minimal routing lacks path diversity (torus DOR under transpose,
// mesh hotspot trees) and can lose past deep saturation where its local
// occupancy signal goes stale — all four rows ship in the JSON so the
// trade-off stays visible.
//
// Acceptance gates (non-zero exit so CI can gate on the smoke run):
//  * bit-identity at 10x10 — every SimResult field of the SoA engine must
//    equal the AoS engine exactly, for all three workloads;
//  * >= 3x SoA-over-AoS flits/sec at 32x32 uniform;
//  * the 64x64 tiers must drain (the scale target actually completes);
//  * UGAL sustains >= 1.5x the minimal-routing accepted load at saturation
//    on at least one 32x32 adversarial row (adaptivity must pay off).
//
// Output: a human-readable table on stdout and machine-readable JSON
// (default BENCH_sim.json; see --out). `--smoke` shrinks the simulated
// cycle counts for CI — the speedup ratio stays meaningful, absolute
// flits/sec get noisier.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "shg/sim/simulator.hpp"
#include "shg/sim/traffic_spec.hpp"
#include "shg/topo/generators.hpp"

namespace {

using namespace shg;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

std::vector<int> unit_latencies(const topo::Topology& topo) {
  return std::vector<int>(static_cast<std::size_t>(topo.graph().num_edges()),
                          1);
}

bool same_result(const sim::SimResult& a, const sim::SimResult& b) {
  return a.offered_rate == b.offered_rate &&
         a.accepted_rate == b.accepted_rate &&
         a.avg_packet_latency == b.avg_packet_latency &&
         a.max_packet_latency == b.max_packet_latency &&
         a.p50_packet_latency == b.p50_packet_latency &&
         a.p95_packet_latency == b.p95_packet_latency &&
         a.p99_packet_latency == b.p99_packet_latency &&
         a.avg_hops == b.avg_hops && a.fairness == b.fairness &&
         a.measured_packets == b.measured_packets &&
         a.drained == b.drained && a.cycles_run == b.cycles_run;
}

struct Row {
  std::string fabric;
  std::string workload;
  bool dual_engine = false;  ///< AoS side ran too (aos/speedup meaningful)
  double aos_seconds = 0.0;  ///< only meaningful when dual_engine
  double soa_seconds = 0.0;
  long long flits = 0;  ///< measured flits (identical across engines)
  bool drained = false;
  bool identical = true;  ///< vacuously true when only one engine ran

  double speedup() const {
    return aos_seconds > 0.0 && soa_seconds > 0.0
               ? aos_seconds / soa_seconds
               : 0.0;
  }
  double soa_flits_per_sec() const {
    return soa_seconds > 0.0 ? static_cast<double>(flits) / soa_seconds
                             : 0.0;
  }
};

void print_row(const Row& r) {
  char aos[24];
  char speedup[16];
  if (r.dual_engine) {
    std::snprintf(aos, sizeof(aos), "aos %8.3f s", r.aos_seconds);
    std::snprintf(speedup, sizeof(speedup), "%6.2fx", r.speedup());
  } else {
    // SoA-only tier: there is no AoS time, so print none rather than a
    // bogus 0.000 s / 0.00x pair.
    std::snprintf(aos, sizeof(aos), "aos      --  ");
    std::snprintf(speedup, sizeof(speedup), "    --");
  }
  std::printf("%-14s %-22s  %s  soa %8.3f s  %s  "
              "%10.0f flits/s  %s%s\n",
              r.fabric.c_str(), r.workload.c_str(), aos, r.soa_seconds,
              speedup, r.soa_flits_per_sec(),
              r.drained ? "drained" : "UNDRAINED",
              r.identical ? "" : "  NOT IDENTICAL");
}

struct Tier {
  std::string fabric;
  topo::Topology topo;
  bool both_engines;   ///< time AoS too (and check identity)
  bool check_identity; ///< gate on bit-identical SimResults
  bool use_table;      ///< route-table mode (off = live routing)
  double rate;
  int reps;            ///< timing reps per engine (min-of-reps)
};

Row run_tier(const Tier& tier, const std::string& workload, bool smoke) {
  const sim::TrafficSpec spec = sim::TrafficSpec::parse(workload);
  const auto pattern =
      spec.make_pattern(tier.topo.rows(), tier.topo.cols(),
                        tier.topo.concentration());
  const std::vector<int> latencies = unit_latencies(tier.topo);

  sim::SimConfig config;
  config.num_vcs = 2;
  config.buffer_depth_flits = 4;
  config.injection_rate = tier.rate;
  config.warmup_cycles = smoke ? 200 : 500;
  config.measure_cycles = smoke ? 600 : 2000;
  config.use_route_table = tier.use_table;

  const int ports = tier.topo.concentration() > 1
                        ? tier.topo.concentration()
                        : 1;
  const double packet_prob =
      config.injection_rate / static_cast<double>(config.packet_size_flits);
  const int num_sources = tier.topo.num_tiles() * ports;

  Row row;
  row.fabric = tier.fabric;
  row.workload = workload;
  row.dual_engine = tier.both_engines;

  sim::SimResult soa_result;
  config.use_soa_engine = true;
  row.soa_seconds = std::numeric_limits<double>::infinity();
  for (int r = 0; r < tier.reps; ++r) {
    // Construction (route-table build included) happens outside the timer:
    // the table is a per-topology artifact sweeps amortize, the run loop is
    // what this benchmark tracks.
    sim::Simulator soa(tier.topo, latencies, config, *pattern, 1, nullptr,
                       nullptr,
                       spec.make_process(packet_prob, num_sources));
    const auto t0 = Clock::now();
    soa_result = soa.run();
    row.soa_seconds = std::min(row.soa_seconds, seconds_since(t0));
  }
  row.flits = soa_result.measured_packets *
              static_cast<long long>(config.packet_size_flits);
  row.drained = soa_result.drained;

  if (tier.both_engines) {
    sim::SimResult aos_result;
    config.use_soa_engine = false;
    row.aos_seconds = std::numeric_limits<double>::infinity();
    for (int r = 0; r < tier.reps; ++r) {
      sim::Simulator aos(tier.topo, latencies, config, *pattern, 1, nullptr,
                         nullptr,
                         spec.make_process(packet_prob, num_sources));
      const auto t0 = Clock::now();
      aos_result = aos.run();
      row.aos_seconds = std::min(row.aos_seconds, seconds_since(t0));
    }
    if (tier.check_identity) {
      row.identical = same_result(aos_result, soa_result);
      if (!row.identical) {
        std::fprintf(stderr,
                     "BIT-IDENTITY VIOLATION: %s %s — SoA diverged from "
                     "AoS\n",
                     tier.fabric.c_str(), workload.c_str());
      }
    }
  }
  return row;
}

// --- Routing-policy saturation comparison (the v3 section) ---------------

struct SatRow {
  std::string fabric;
  std::string workload;
  double minimal_accepted = 0.0;  ///< flits / cycle / endpoint port
  double ugal_accepted = 0.0;
  double ratio() const {
    return minimal_accepted > 0.0 ? ugal_accepted / minimal_accepted : 0.0;
  }
};

/// One saturated SoA run; returns the accepted load (flits/cycle/port)
/// measured past the saturation point. Both policies get identical VC and
/// buffer resources (the UGAL floor of 4 VCs), so the comparison isolates
/// the routing decision; live routing on both sides keeps the all-pairs
/// UGAL table out of the measurement.
double run_saturated(const topo::Topology& topo, sim::RoutingPolicy policy,
                     const std::string& workload, double rate, bool smoke) {
  const sim::TrafficSpec spec = sim::TrafficSpec::parse(workload);
  const auto pattern =
      spec.make_pattern(topo.rows(), topo.cols(), topo.concentration());
  const std::vector<int> latencies = unit_latencies(topo);

  sim::SimConfig config;
  config.num_vcs = 4;
  config.buffer_depth_flits = 4;
  config.injection_rate = rate;
  config.warmup_cycles = smoke ? 300 : 1000;
  config.measure_cycles = smoke ? 600 : 2000;
  config.drain_cycles = smoke ? 500 : 2000;  // saturated runs rarely drain;
                                             // cap the tail, it is not gated
  config.routing_policy = policy;
  config.use_route_table = false;
  config.use_soa_engine = true;

  const double packet_prob =
      config.injection_rate / static_cast<double>(config.packet_size_flits);
  sim::Simulator s(topo, latencies, config, *pattern, 1, nullptr, nullptr,
                   spec.make_process(packet_prob, topo.num_tiles()));
  return s.run().accepted_rate;
}

void append_json(std::string& json, const Row& r) {
  // Schema v2: single-engine rows carry null aos_seconds/speedup (v1 wrote
  // misleading 0.000000 / 0.000 there); `dual_engine` makes the distinction
  // explicit for consumers.
  char engine_fields[80];
  if (r.dual_engine) {
    std::snprintf(engine_fields, sizeof(engine_fields),
                  "\"aos_seconds\": %.6f, \"speedup\": %.3f",
                  r.aos_seconds, r.speedup());
  } else {
    std::snprintf(engine_fields, sizeof(engine_fields),
                  "\"aos_seconds\": null, \"speedup\": null");
  }
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "    {\"fabric\": \"%s\", \"workload\": \"%s\", "
      "\"dual_engine\": %s, %s, \"soa_seconds\": %.6f, "
      "\"soa_flits_per_sec\": %.0f, \"flits\": %lld, \"drained\": %s, "
      "\"identical\": %s}",
      r.fabric.c_str(), r.workload.c_str(),
      r.dual_engine ? "true" : "false", engine_fields, r.soa_seconds,
      r.soa_flits_per_sec(), r.flits, r.drained ? "true" : "false",
      r.identical ? "true" : "false");
  if (!json.empty()) json += ",\n";
  json += buf;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_sim.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::printf("usage: bench_sim_scale [--smoke] [--out file.json]\n");
      return 2;
    }
  }

  std::printf("=== bench_sim_scale (%s mode) ===\n",
              smoke ? "smoke" : "full");

  // Hotspot ids scale with the fabric (two hot tiles, one corner-ish and
  // one central); onoff keeps the same burst shape everywhere.
  auto workloads = [](int num_terminals) {
    return std::vector<std::string>{
        "uniform",
        "hotspot:0," + std::to_string(num_terminals / 2) + ":0.3",
        "uniform/onoff:0.05,0.2",
    };
  };

  std::vector<Tier> tiers;
  tiers.push_back({"mesh-10x10", topo::make_mesh(10, 10),
                   /*both_engines=*/true, /*check_identity=*/true,
                   /*use_table=*/true, /*rate=*/0.05, /*reps=*/smoke ? 1 : 3});
  tiers.push_back({"mesh-32x32", topo::make_mesh(32, 32),
                   /*both_engines=*/true, /*check_identity=*/true,
                   /*use_table=*/true, /*rate=*/0.02,
                   /*reps=*/smoke ? 2 : 3});
  tiers.push_back({"cmesh-16x16x4", topo::make_concentrated_mesh(16, 16, 4),
                   /*both_engines=*/true, /*check_identity=*/true,
                   /*use_table=*/true, /*rate=*/0.01,
                   /*reps=*/smoke ? 1 : 2});
  tiers.push_back({"mesh-64x64", topo::make_mesh(64, 64),
                   /*both_engines=*/false, /*check_identity=*/false,
                   /*use_table=*/false, /*rate=*/0.01,
                   /*reps=*/1});

  std::vector<Row> rows;
  bool all_identical = true;
  bool scale_drained = true;
  double gate_speedup = 0.0;
  for (const Tier& tier : tiers) {
    for (const std::string& workload :
         workloads(tier.topo.num_tiles() * tier.topo.concentration())) {
      rows.push_back(run_tier(tier, workload, smoke));
      print_row(rows.back());
      const Row& r = rows.back();
      all_identical = all_identical && r.identical;
      if (tier.fabric == "mesh-64x64") {
        scale_drained = scale_drained && r.drained;
      }
      if (tier.fabric == "mesh-32x32" && workload == "uniform") {
        gate_speedup = r.speedup();
      }
    }
  }

  std::printf("soa bit-identical to aos on all dual-engine rows: %s\n",
              all_identical ? "yes" : "NO — BUG");
  std::printf("32x32 uniform soa-over-aos speedup: %.2fx (gate: 3x)\n",
              gate_speedup);

  // Routing-policy saturation section: minimal vs UGAL accepted load past
  // saturation, adversarial workloads only (uniform is minimal routing's
  // best case and not what adaptivity is for). Both 32x32 fabrics run both
  // workloads: the torus pairs transpose with single-path DOR (UGAL's win
  // case), the mesh pairs hotspot with O1TURN congestion trees.
  std::printf("--- routing policy at saturation (32x32, 4 VCs) ---\n");
  const std::vector<std::pair<std::string, topo::Topology>> sat_fabrics = [] {
    std::vector<std::pair<std::string, topo::Topology>> fabrics;
    fabrics.emplace_back("mesh-32x32", topo::make_mesh(32, 32));
    fabrics.emplace_back("torus-32x32", topo::make_torus(32, 32));
    return fabrics;
  }();
  const std::vector<std::pair<std::string, double>> sat_workloads = {
      {"hotspot:0,528:0.3", 0.30},
      {"transpose", 0.30},
  };
  std::vector<SatRow> sat_rows;
  double best_ratio = 0.0;
  for (const auto& [fabric, sat_topo] : sat_fabrics) {
    for (const auto& [workload, rate] : sat_workloads) {
      SatRow sat;
      sat.fabric = fabric;
      sat.workload = workload;
      sat.minimal_accepted = run_saturated(
          sat_topo, sim::RoutingPolicy::kMinimal, workload, rate, smoke);
      sat.ugal_accepted = run_saturated(
          sat_topo, sim::RoutingPolicy::kUgal, workload, rate, smoke);
      best_ratio = std::max(best_ratio, sat.ratio());
      std::printf("%-12s %-22s  minimal %.4f  ugal %.4f  (%.2fx)\n",
                  sat.fabric.c_str(), sat.workload.c_str(),
                  sat.minimal_accepted, sat.ugal_accepted, sat.ratio());
      sat_rows.push_back(sat);
    }
  }
  std::printf("best ugal-over-minimal accepted load: %.2fx (gate: 1.5x)\n",
              best_ratio);

  std::string entries;
  for (const Row& r : rows) append_json(entries, r);
  std::string sat_entries;
  for (const SatRow& sat : sat_rows) {
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "    {\"fabric\": \"%s\", \"workload\": \"%s\", "
                  "\"minimal_accepted\": %.6f, "
                  "\"ugal_accepted\": %.6f, \"ratio\": %.3f}",
                  sat.fabric.c_str(), sat.workload.c_str(),
                  sat.minimal_accepted, sat.ugal_accepted, sat.ratio());
    if (!sat_entries.empty()) sat_entries += ",\n";
    sat_entries += buf;
  }
  std::ofstream out(out_path);
  out << "{\n  \"schema\": \"shg.bench_sim_scale.v3\",\n"
      << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n"
      << "  \"all_identical\": " << (all_identical ? "true" : "false")
      << ",\n"
      << "  \"speedup_32x32_uniform\": " << gate_speedup << ",\n"
      << "  \"scale_64x64_drained\": " << (scale_drained ? "true" : "false")
      << ",\n"
      << "  \"ugal_best_ratio\": " << best_ratio << ",\n"
      << "  \"rows\": [\n"
      << entries << "\n  ],\n"
      << "  \"routing_saturation\": [\n"
      << sat_entries << "\n  ]\n}\n";
  out.close();
  if (!out) {
    std::fprintf(stderr, "error: could not write %s\n", out_path.c_str());
    return 2;
  }
  std::printf("wrote %s\n", out_path.c_str());

  if (!all_identical) {
    std::fprintf(stderr,
                 "FAIL: SoA engine diverged from the AoS reference\n");
    return 1;
  }
  if (gate_speedup < 3.0) {
    std::fprintf(stderr,
                 "FAIL: 32x32 uniform speedup %.2fx below the 3x acceptance "
                 "bar\n",
                 gate_speedup);
    return 1;
  }
  if (!scale_drained) {
    std::fprintf(stderr, "FAIL: a 64x64 run did not drain\n");
    return 1;
  }
  if (best_ratio < 1.5) {
    std::fprintf(stderr,
                 "FAIL: UGAL best accepted-load ratio %.2fx below the 1.5x "
                 "acceptance bar (adaptivity is not paying off)\n",
                 best_ratio);
    return 1;
  }
  return 0;
}
