// Ablation: the sparsity axis of the sparse Hamming graph.
//
// Sweeps configurations from the mesh (SR = SC = {}) to the flattened
// butterfly (all skip distances) on the scenario-a architecture and prints
// how cost and performance move — the "adjustable cost-performance
// trade-off" that is the paper's central claim (Section III). The trade-off
// must be monotone: more skips => more area/power, fewer hops, higher
// saturation throughput.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "shg/common/strings.hpp"
#include "shg/common/table.hpp"
#include "shg/customize/search.hpp"
#include "shg/eval/toolchain.hpp"
#include "shg/tech/presets.hpp"
#include "shg/topo/generators.hpp"

namespace {

using namespace shg;

void BM_ScreenCandidate(benchmark::State& state) {
  const tech::ArchParams arch = tech::knc_scenario(tech::KncScenario::kA);
  const topo::ShgParams params{{4}, {2, 5}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(customize::screen_candidate(arch, params));
  }
}
BENCHMARK(BM_ScreenCandidate);

void BM_GreedyCustomization(benchmark::State& state) {
  const tech::ArchParams arch = tech::knc_scenario(tech::KncScenario::kA);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        customize::customize_greedy(arch, customize::Goal{0.40}));
  }
}
BENCHMARK(BM_GreedyCustomization);

void print_sweep() {
  const tech::ArchParams arch = tech::knc_scenario(tech::KncScenario::kA);
  eval::PerfConfig perf = eval::default_perf_config(arch);
  perf.sim.warmup_cycles = 500;
  perf.sim.measure_cycles = 1500;
  perf.bisection_iterations = 6;

  const std::vector<topo::ShgParams> sweep = {
      {{}, {}},                              // mesh
      {{2}, {}},                             // one row skip
      {{2}, {2}},
      {{4}, {2, 5}},                         // the paper's scenario-a config
      {{2, 4}, {2, 4}},
      {{2, 4, 6}, {2, 4, 6}},
      {{2, 3, 4, 5, 6, 7}, {2, 3, 4, 5, 6, 7}},  // flattened butterfly
  };
  std::printf("\n=== SHG sparsity sweep (scenario a architecture) ===\n");
  Table table({"SR", "SC", "links", "diam", "avg hops", "area ovh", "power",
               "zero-load", "saturation"});
  for (const auto& params : sweep) {
    const auto topology = topo::make_sparse_hamming(
        arch.rows, arch.cols, params.row_skips, params.col_skips);
    const auto p = eval::predict(arch, topology, perf);
    const auto metrics = customize::screen_candidate(arch, params);
    table.add_row({fmt_int_set(params.row_skips),
                   fmt_int_set(params.col_skips),
                   std::to_string(topology.graph().num_edges()),
                   fmt_double(metrics.diameter, 0),
                   fmt_double(metrics.avg_hops, 2),
                   fmt_double(100.0 * p.cost.area_overhead, 1) + " %",
                   fmt_double(p.cost.noc_power_w, 1) + " W",
                   fmt_double(p.perf.zero_load_latency_cycles, 1) + " cyc",
                   fmt_double(100.0 * p.perf.saturation_throughput, 1) +
                       " %"});
  }
  std::printf("%s", table.to_string().c_str());
  std::printf("\nThe 2^(R+C-4) = %g configurations of an 8x8 SHG span this\n"
              "entire axis; Table rows are sample points from mesh to FB.\n",
              topo::num_configurations(topo::Kind::kSparseHamming, 8, 8));
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  print_sweep();
  return 0;
}
