// Serving-layer benchmark: request throughput of a warm resident Service
// (src/shg/serve/) as the worker count grows, plus the warm-path
// acceptance gates CI runs on every push.
//
// Setup: one sharded Session behind one Service. A cold serial pass runs a
// mixed request set — screens over a skip-set grid, one smoke experiment
// campaign, one customize search — and records every response's "result"
// bytes as the reference. Warm passes then re-issue the same set
// repeatedly from a WorkerPool at 1/2/4/max workers.
//
// Acceptance gates (non-zero exit so CI can gate on the smoke run):
//  * warm byte-identity — every warm response's "result" must equal the
//    cold reference byte for byte, at every worker count (the serve
//    layer's determinism contract under concurrency);
//  * zero BFS warm — every warm screen response must report 0 candidate
//    tier misses (nothing is re-screened);
//  * zero simulations warm — every warm experiment response must report 0
//    simulated cells (the whole campaign is served from the result tier).
//
// Output: a table on stdout and machine-readable JSON (default
// BENCH_serve.json; see --out). `--smoke` shrinks the repetition counts
// for CI; the gates are unaffected.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "shg/common/parallel.hpp"
#include "shg/serve/service.hpp"

namespace {

using namespace shg;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

struct BenchRequest {
  serve::Request parsed;
  std::string cold_result;  // reference "result" bytes from the cold pass
};

/// The mixed request set: a screen grid plus one experiment campaign and
/// one customize search, all through the wire-protocol parser.
std::vector<std::string> request_lines() {
  std::vector<std::string> lines;
  for (int row = 2; row <= 7; ++row) {
    for (int col = 2; col <= 7; ++col) {
      lines.push_back("{\"op\":\"screen\",\"id\":\"s" + std::to_string(row) +
                      std::to_string(col) +
                      "\",\"scenario\":\"a\",\"row_skips\":[" +
                      std::to_string(row) + "],\"col_skips\":[" +
                      std::to_string(col) + "]}");
    }
  }
  lines.push_back(
      "{\"op\":\"screen\",\"id\":\"sp\",\"scenario\":\"a\","
      "\"row_skips\":[4],\"col_skips\":[2,5]}");
  lines.push_back(
      "{\"op\":\"experiment\",\"id\":\"e1\",\"grid\":\"6x6\","
      "\"traffic\":[\"uniform\"],\"rates\":[0.05,0.1],\"seeds\":1,"
      "\"smoke\":true}");
  lines.push_back("{\"op\":\"customize\",\"id\":\"c1\",\"scenario\":\"a\"}");
  return lines;
}

struct Row {
  int workers = 0;
  std::size_t requests = 0;
  double seconds = 0.0;
  double requests_per_sec = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_serve.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::printf("usage: bench_serve [--smoke] [--out file.json]\n");
      return 2;
    }
  }

  serve::Service service;  // sharded session defaults
  std::vector<BenchRequest> set;
  for (const std::string& line : request_lines()) {
    BenchRequest request;
    request.parsed = service.parse_request(line);
    if (!request.parsed.valid) {
      std::printf("FAIL: bench request rejected: %s\n",
                  request.parsed.error.c_str());
      return 1;
    }
    set.push_back(std::move(request));
  }

  // Cold serial pass: the reference bytes (and the tier warm-up).
  std::printf("bench_serve (%s): %zu requests, cold pass...\n",
              smoke ? "smoke" : "full", set.size());
  bool cold_ok = true;
  const Clock::time_point cold_start = Clock::now();
  for (BenchRequest& request : set) {
    const serve::Response response = service.execute(request.parsed);
    if (!response.ok || response.result_json.empty()) {
      std::printf("FAIL: cold request %s: %s\n", request.parsed.id_json.c_str(),
                  response.error.c_str());
      cold_ok = false;
    }
    request.cold_result = response.result_json;
  }
  const double cold_seconds = seconds_since(cold_start);
  std::printf("  cold: %.3fs\n", cold_seconds);
  if (!cold_ok) return 1;

  // Warm passes: same requests, growing worker counts. The gates hold at
  // every count; throughput should grow until tier locking saturates.
  std::atomic<bool> warm_identical{true};
  std::atomic<bool> zero_screen_miss{true};
  std::atomic<bool> zero_sims{true};
  std::vector<int> worker_counts = {1, 2, 4, max_threads()};
  std::sort(worker_counts.begin(), worker_counts.end());
  worker_counts.erase(
      std::unique(worker_counts.begin(), worker_counts.end()),
      worker_counts.end());
  const int reps = smoke ? 5 : 40;

  std::vector<Row> rows;
  for (int workers : worker_counts) {
    WorkerPool pool(workers);
    const Clock::time_point start = Clock::now();
    for (int rep = 0; rep < reps; ++rep) {
      for (const BenchRequest& request : set) {
        pool.submit([&service, &request, &warm_identical, &zero_screen_miss,
                     &zero_sims] {
          const serve::Response response = service.execute(request.parsed);
          if (!response.ok || response.result_json != request.cold_result) {
            warm_identical.store(false, std::memory_order_relaxed);
          }
          if (request.parsed.op == serve::Op::kScreen &&
              response.op_misses != 0) {
            zero_screen_miss.store(false, std::memory_order_relaxed);
          }
          if (request.parsed.op == serve::Op::kExperiment &&
              response.op_simulated != 0) {
            zero_sims.store(false, std::memory_order_relaxed);
          }
        });
      }
    }
    pool.drain();
    Row row;
    row.workers = workers;
    row.requests = set.size() * static_cast<std::size_t>(reps);
    row.seconds = seconds_since(start);
    row.requests_per_sec =
        row.seconds > 0.0 ? static_cast<double>(row.requests) / row.seconds
                          : 0.0;
    rows.push_back(row);
    std::printf("  warm, %2d workers: %6zu requests in %7.3fs -> %10.0f req/s\n",
                row.workers, row.requests, row.seconds, row.requests_per_sec);
  }

  const bool identical = warm_identical.load();
  const bool no_miss = zero_screen_miss.load();
  const bool no_sims = zero_sims.load();
  std::printf("gates: warm_identical=%s warm_zero_screen_miss=%s "
              "warm_zero_sims=%s\n",
              identical ? "PASS" : "FAIL", no_miss ? "PASS" : "FAIL",
              no_sims ? "PASS" : "FAIL");

  std::string scaling;
  for (const Row& row : rows) {
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "    {\"workers\": %d, \"requests\": %zu, "
                  "\"requests_per_sec\": %.1f}",
                  row.workers, row.requests, row.requests_per_sec);
    if (!scaling.empty()) scaling += ",\n";
    scaling += buf;
  }
  std::ofstream out(out_path);
  out << "{\n  \"schema\": \"shg.bench_serve.v1\",\n"
      << "  \"mode\": \"" << (smoke ? "smoke" : "full") << "\",\n"
      << "  \"cold_seconds\": " << cold_seconds << ",\n"
      << "  \"gates\": {\"warm_identical\": " << (identical ? "true" : "false")
      << ", \"warm_zero_screen_miss\": " << (no_miss ? "true" : "false")
      << ", \"warm_zero_sims\": " << (no_sims ? "true" : "false") << "},\n"
      << "  \"scaling\": [\n"
      << scaling << "\n  ]\n}\n";
  out.close();
  std::printf("wrote %s\n", out_path.c_str());

  return identical && no_miss && no_sims ? 0 : 1;
}
