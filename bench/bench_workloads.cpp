// Workload-engine benchmark: batched vs serial experiment throughput.
//
// Runs one Figure-6-class experiment — 4 topologies x 3 traffic specs x
// 5 rates x 3 seeds = 180 simulations on an 8x8 KNC-class fabric — three
// ways:
//
//  1. legacy_serial — the pre-engine control flow: a hand-rolled loop
//     over every point, each constructing its own Simulator (and
//     therefore its own route table), exactly how callers plumbed sweeps
//     by hand before the experiment engine existed;
//  2. engine_serial — the experiment engine pinned to one worker
//     (set_max_threads(1)): isolates the route-table sharing win;
//  3. engine_batched — the engine at the default worker count: adds the
//     parallel_for fan-out win.
//
// The engine_serial and engine_batched reports must be identical — the
// engine's determinism contract — and the process exits non-zero if they
// are not, so CI can gate on the smoke run. The acceptance target for
// the workload-engine PR is >= 2x engine_serial / engine_batched
// wall-clock on a 4-core runner.
//
// Two more sections exercise the session simulation-result tier:
//
//  4. warm campaign — the same campaign run cold into a fresh session,
//     then re-run warm against it. Gates: the warm run performs ZERO
//     simulations, its JSON and CSV reports are byte-identical to the
//     session-free run's, and it is >= 5x faster than the cold run;
//  5. shard merge — the campaign split across two `run_experiment_shard`
//     workers exchanging `shg.cache.v1` shard files, then merged into one
//     session. Gates: the merge run performs zero simulations and its
//     reports are byte-identical to the single-process run's.
//
// Output: a table on stdout + machine-readable JSON (schema
// "shg.bench_workloads.v2", default BENCH_workloads.json; see --out).
// `--smoke` shrinks the simulated cycle counts for CI; ratios stay
// meaningful.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "shg/common/parallel.hpp"
#include "shg/customize/session.hpp"
#include "shg/eval/experiment.hpp"
#include "shg/topo/generators.hpp"
#include "shg/topo/registry.hpp"

namespace {

using namespace shg;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

eval::ExperimentSpec make_spec(bool smoke) {
  eval::ExperimentSpec spec;
  spec.name = "bench-workloads-8x8";
  const int rows = 8;
  const int cols = 8;
  spec.topologies.push_back(
      eval::TopologyCase{topo::make_mesh(rows, cols), {}, ""});
  spec.topologies.push_back(
      eval::TopologyCase{topo::make_torus(rows, cols), {}, ""});
  spec.topologies.push_back(eval::TopologyCase{
      topo::make_flattened_butterfly(rows, cols), {}, ""});
  spec.topologies.push_back(eval::TopologyCase{
      topo::make_sparse_hamming(rows, cols, {4}, {2, 5}), {}, ""});
  for (const char* workload :
       {"uniform", "transpose", "hotspot:0,7:0.2/onoff:0.05,0.15"}) {
    spec.traffic.push_back(eval::TrafficCase{workload, nullptr, ""});
  }
  spec.rates = {0.02, 0.05, 0.10, 0.15, 0.20};
  spec.seeds = {1, 2, 3};
  spec.config.sim.warmup_cycles = smoke ? 150 : 500;
  spec.config.sim.measure_cycles = smoke ? 400 : 1500;
  spec.config.sim.drain_cycles = smoke ? 6000 : 15000;
  return spec;
}

/// The pre-engine control flow: every point owns its whole simulate-loop,
/// including a private route-table build per Simulator (no sharing).
double run_legacy_serial(const eval::ExperimentSpec& spec) {
  const auto t0 = Clock::now();
  double sink = 0.0;
  for (const eval::TopologyCase& tc : spec.topologies) {
    const std::vector<int> latencies(
        static_cast<std::size_t>(tc.topology.graph().num_edges()), 1);
    for (const eval::TrafficCase& wc : spec.traffic) {
      const sim::TrafficSpec parsed = sim::TrafficSpec::parse(wc.spec);
      const auto pattern =
          parsed.make_pattern(tc.topology.rows(), tc.topology.cols());
      for (double rate : spec.rates) {
        for (std::uint64_t seed : spec.seeds) {
          sim::SimConfig config = spec.config.sim;
          config.injection_rate = rate;
          config.seed = seed;
          auto process = parsed.make_process(
              rate / static_cast<double>(config.packet_size_flits),
              tc.topology.num_tiles() * spec.endpoints_per_tile);
          sim::Simulator simulator(tc.topology, latencies, config, *pattern,
                                   spec.endpoints_per_tile, nullptr, nullptr,
                                   std::move(process));
          sink += simulator.run().avg_packet_latency;
        }
      }
    }
  }
  if (sink < 0.0) std::printf("impossible\n");  // defeat dead-code elim
  return seconds_since(t0);
}

bool reports_identical(const eval::ExperimentReport& a,
                       const eval::ExperimentReport& b) {
  return eval::experiment_to_json(a) == eval::experiment_to_json(b) &&
         eval::experiment_to_csv(a) == eval::experiment_to_csv(b);
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_workloads.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::printf("usage: bench_workloads [--smoke] [--out file.json]\n");
      return 2;
    }
  }

  const eval::ExperimentSpec spec = make_spec(smoke);
  const std::size_t sims = spec.topologies.size() * spec.traffic.size() *
                           spec.rates.size() * spec.seeds.size();
  const int threads = max_threads();
  std::printf("=== bench_workloads (%s mode, %zu sims, %d threads) ===\n",
              smoke ? "smoke" : "full", sims, threads);

  const double legacy_seconds = run_legacy_serial(spec);
  std::printf("legacy_serial   %8.3f s  (per-point tables, hand loop)\n",
              legacy_seconds);

  set_max_threads(1);
  auto t0 = Clock::now();
  const eval::ExperimentReport serial_report = eval::run_experiment(spec);
  const double serial_seconds = seconds_since(t0);
  std::printf("engine_serial   %8.3f s  (shared tables, 1 worker)\n",
              serial_seconds);

  set_max_threads(0);
  t0 = Clock::now();
  const eval::ExperimentReport batched_report = eval::run_experiment(spec);
  const double batched_seconds = seconds_since(t0);
  std::printf("engine_batched  %8.3f s  (shared tables, %d workers)\n",
              batched_seconds, threads);

  const bool identical = reports_identical(serial_report, batched_report);
  const double batching_speedup =
      batched_seconds > 0.0 ? serial_seconds / batched_seconds : 0.0;
  const double total_speedup =
      batched_seconds > 0.0 ? legacy_seconds / batched_seconds : 0.0;
  std::printf("serial == batched reports: %s\n", identical ? "yes"
                                                           : "NO — BUG");
  std::printf("batching speedup (engine serial/batched): %.2fx\n",
              batching_speedup);
  std::printf("total speedup (legacy/batched):           %.2fx\n",
              total_speedup);

  // -- Warm campaign: cold fill of a fresh session, then a warm re-run. --
  eval::ExperimentSpec warm_spec = spec;
  customize::Session session;
  warm_spec.session = &session;

  t0 = Clock::now();
  const eval::ExperimentReport cold_report = eval::run_experiment(warm_spec);
  const double cold_seconds = seconds_since(t0);
  std::printf("campaign_cold   %8.3f s  (fresh session, %zu simulated)\n",
              cold_seconds, cold_report.sim_simulated);

  t0 = Clock::now();
  const eval::ExperimentReport warm_report = eval::run_experiment(warm_spec);
  const double warm_seconds = seconds_since(t0);
  std::printf("campaign_warm   %8.3f s  (result tier, %zu simulated)\n",
              warm_seconds, warm_report.sim_simulated);

  const bool warm_zero_sims = warm_report.sim_simulated == 0;
  // The session-attached reports (cold AND warm) must match the
  // session-free run byte for byte — hits return exact cold bits and the
  // tier never leaks into the rendered report.
  const bool warm_identical = reports_identical(batched_report, cold_report) &&
                              reports_identical(batched_report, warm_report);
  const double warm_speedup =
      warm_seconds > 0.0 ? cold_seconds / warm_seconds : 0.0;
  std::printf("warm == cold == session-free reports: %s\n",
              warm_identical ? "yes" : "NO — BUG");
  std::printf("warm-campaign speedup (cold/warm):        %.2fx (gate: 5x)\n",
              warm_speedup);

  // -- Shard merge: two workers exchanging shard files, then a merge. --
  const std::string shard_paths[2] = {out_path + ".shard0.cache",
                                      out_path + ".shard1.cache"};
  std::size_t shard_simulated = 0;
  for (int s = 0; s < 2; ++s) {
    customize::Session worker;
    eval::ExperimentSpec worker_spec = spec;
    worker_spec.session = &worker;
    const eval::ShardRunStats stats =
        eval::run_experiment_shard(worker_spec, s, 2);
    shard_simulated += stats.simulated;
    worker.sim_cache().save_file(shard_paths[s]);
  }
  customize::Session merge_session;
  for (const std::string& path : shard_paths) {
    merge_session.sim_cache().load_file(path);
  }
  eval::ExperimentSpec merge_spec = spec;
  merge_spec.session = &merge_session;
  const eval::ExperimentReport merge_report = eval::run_experiment(merge_spec);
  for (const std::string& path : shard_paths) std::remove(path.c_str());

  const bool merge_zero_sims = merge_report.sim_simulated == 0;
  const bool merge_identical = reports_identical(batched_report, merge_report);
  std::printf(
      "2-shard merge: workers simulated %zu cells, merge simulated %zu, "
      "report identical to single-process: %s\n",
      shard_simulated, merge_report.sim_simulated,
      merge_identical ? "yes" : "NO — BUG");

  std::ofstream out(out_path);
  out << "{\n  \"schema\": \"shg.bench_workloads.v2\",\n"
      << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n"
      << "  \"threads\": " << threads << ",\n"
      << "  \"sims\": " << sims << ",\n"
      << "  \"legacy_serial_seconds\": " << legacy_seconds << ",\n"
      << "  \"engine_serial_seconds\": " << serial_seconds << ",\n"
      << "  \"engine_batched_seconds\": " << batched_seconds << ",\n"
      << "  \"batching_speedup\": " << batching_speedup << ",\n"
      << "  \"total_speedup\": " << total_speedup << ",\n"
      << "  \"reports_identical\": " << (identical ? "true" : "false")
      << ",\n"
      << "  \"campaign_cold_seconds\": " << cold_seconds << ",\n"
      << "  \"campaign_warm_seconds\": " << warm_seconds << ",\n"
      << "  \"warm_speedup\": " << warm_speedup << ",\n"
      << "  \"warm_simulated\": " << warm_report.sim_simulated << ",\n"
      << "  \"warm_identical\": " << (warm_identical ? "true" : "false")
      << ",\n"
      << "  \"shard_merge_simulated\": " << merge_report.sim_simulated
      << ",\n"
      << "  \"shard_merge_identical\": "
      << (merge_identical ? "true" : "false") << "\n}\n";
  out.close();
  if (!out) {
    std::fprintf(stderr, "error: could not write %s\n", out_path.c_str());
    return 2;
  }
  std::printf("wrote %s\n", out_path.c_str());

  // Exit non-zero when any invariant is violated so CI can gate on the
  // smoke run.
  if (!identical) return 1;
  if (!warm_zero_sims || !warm_identical) {
    std::fprintf(stderr,
                 "FAIL: warm campaign simulated %zu cells (want 0) or "
                 "diverged from the cold report\n",
                 warm_report.sim_simulated);
    return 1;
  }
  if (warm_speedup < 5.0) {
    std::fprintf(stderr,
                 "FAIL: warm-campaign speedup %.2fx below the 5x acceptance "
                 "bar\n",
                 warm_speedup);
    return 1;
  }
  if (!merge_zero_sims || !merge_identical) {
    std::fprintf(stderr,
                 "FAIL: 2-shard merge simulated %zu cells (want 0) or "
                 "diverged from the single-process report\n",
                 merge_report.sim_simulated);
    return 1;
  }
  return 0;
}
