// Hot-path benchmark: tracks the performance layer introduced with the
// route-table / fused-BFS / parallel-DSE overhaul, and guards the perf
// trajectory from that PR onward.
//
// Measurements on a 10x10 KNC-class fabric:
//  1. route_lookup — precomputed RouteTable::lookup vs a live virtual
//     RoutingFunction::route() call (which allocates a vector per call);
//  2. fused_bfs    — fused distance_summary (one all-pairs sweep, reused
//     workspace) vs the pre-PR metric path (average_hops + diameter, each
//     its own allocating sweep plus a connectivity probe);
//  3. dse_screen   — greedy-DSE candidate screening: the pre-PR path (full
//     five-step cost model + two-sweep metrics) vs customize::screen_candidate
//     (area-only cost fast path + fused sweep). The original acceptance bar
//     was >= 5x; the legacy side has since gotten faster for free (its
//     five-step model includes the optimized detailed router), so the ratio
//     understates the original win and the section is tracked, not gated;
//  4. sim_cycle    — full simulation cycle loop with the route table on vs
//     off, asserting bit-identical SimResults;
//  5. dse_greedy_incremental — the whole greedy customization with full
//     per-candidate re-screening vs the incremental ScreeningContext reuse
//     (delta-BFS + routing context at their defaults), asserting
//     bit-identical winners, metrics and history and running the
//     incremental-vs-full screening oracle. Acceptance bar: >= 1.5x;
//  6. route_table_dedup — bytes of the deduplicated route-table CSR vs the
//     one-range-per-row layout it replaced (sim equivalence is covered by
//     the sim_cycle gate, which runs with the deduplicated table);
//  7. dse_greedy_routing_incremental — the greedy customization with
//     delta-BFS reuse but per-candidate from-scratch channel routing (the
//     screening stack of the PR before incremental routing) vs the full
//     reuse stack (phys::RoutingContext suffix replay + topology-free
//     child pricing). Runs the channel-router differential oracle
//     (repaired loads bit-identical to global_route_loads over random
//     skip-insertion trajectories), the screening equivalence oracle with
//     routing reuse on, and asserts bit-identical search winners/history
//     between the two configurations. Acceptance bar: >= 2x.
//  8. dse_session_warm — the full greedy customization against a fresh
//     persistent session (cold: every candidate is a cache miss and gets
//     screened + stored) vs re-invoking it against the now-populated
//     session (warm: every candidate hits the cache, no BFS sweep and no
//     channel routing runs, and the final cost report comes from the
//     artifact tier). Asserts the cold-with-session, warm and
//     session-free searches are bit-identical (winners, metric bits,
//     history notes, final report areas) and that the warm run actually
//     hit the cache. Acceptance bar: >= 3x.
//
// Output: a human-readable table on stdout and machine-readable JSON
// (default BENCH_hotpath.json; see --out). `--smoke` shrinks repetition
// counts for CI smoke runs — speedup ratios stay meaningful, absolute
// numbers get noisier.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>
#include <queue>
#include <string>
#include <vector>

#include "shg/common/prng.hpp"
#include "shg/customize/incremental.hpp"
#include "shg/customize/search.hpp"
#include "shg/customize/session.hpp"
#include "shg/eval/perf.hpp"
#include "shg/graph/shortest_paths.hpp"
#include "shg/model/cost_model.hpp"
#include "shg/phys/incremental_route.hpp"
#include "shg/sim/route_table.hpp"
#include "shg/sim/simulator.hpp"
#include "shg/tech/presets.hpp"
#include "shg/topo/generators.hpp"

namespace {

using namespace shg;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

// Sink defeating dead-code elimination without a benchmark-library
// dependency.
volatile long long g_sink = 0;

// ---------------------------------------------------------------------------
// Pre-PR reference implementations (kept verbatim so the speedup is measured
// against the real seed code path, not a strawman).
// ---------------------------------------------------------------------------

std::vector<int> legacy_bfs_distances(const graph::Graph& g,
                                      graph::NodeId src) {
  std::vector<int> dist(static_cast<std::size_t>(g.num_nodes()),
                        graph::kUnreachable);
  std::queue<graph::NodeId> queue;
  dist[static_cast<std::size_t>(src)] = 0;
  queue.push(src);
  while (!queue.empty()) {
    const graph::NodeId u = queue.front();
    queue.pop();
    for (const graph::Neighbor& n : g.neighbors(u)) {
      auto& d = dist[static_cast<std::size_t>(n.node)];
      if (d == graph::kUnreachable) {
        d = dist[static_cast<std::size_t>(u)] + 1;
        queue.push(n.node);
      }
    }
  }
  return dist;
}

bool legacy_is_connected(const graph::Graph& g) {
  if (g.num_nodes() <= 1) return true;
  const auto dist = legacy_bfs_distances(g, 0);
  for (int d : dist) {
    if (d == graph::kUnreachable) return false;
  }
  return true;
}

int legacy_diameter(const graph::Graph& g) {
  if (!legacy_is_connected(g)) return -1;
  int best = 0;
  for (graph::NodeId u = 0; u < g.num_nodes(); ++u) {
    const auto dist = legacy_bfs_distances(g, u);
    for (int d : dist) best = std::max(best, d);
  }
  return best;
}

double legacy_average_hops(const graph::Graph& g) {
  if (!legacy_is_connected(g)) return -1.0;
  double total = 0.0;
  for (graph::NodeId u = 0; u < g.num_nodes(); ++u) {
    const auto dist = legacy_bfs_distances(g, u);
    for (int d : dist) total += d;
  }
  return total /
         (static_cast<double>(g.num_nodes()) * (g.num_nodes() - 1));
}

/// The seed's screen_candidate: full five-step cost model plus two separate
/// all-pairs metric sweeps.
customize::CandidateMetrics legacy_screen_candidate(
    const tech::ArchParams& arch, const topo::ShgParams& params) {
  const topo::Topology topo = topo::make_sparse_hamming(
      arch.rows, arch.cols, params.row_skips, params.col_skips);
  const model::CostReport cost = model::evaluate_cost(arch, topo);
  customize::CandidateMetrics metrics;
  metrics.area_overhead = cost.area_overhead;
  metrics.avg_hops = legacy_average_hops(topo.graph());
  metrics.diameter = legacy_diameter(topo.graph());
  const double directed_links = 2.0 * topo.graph().num_edges();
  metrics.throughput_bound =
      directed_links /
      (static_cast<double>(topo.num_tiles()) * metrics.avg_hops);
  return metrics;
}

// ---------------------------------------------------------------------------
// Benchmark plumbing
// ---------------------------------------------------------------------------

struct BenchResult {
  std::string name;
  double old_seconds = 0.0;
  double new_seconds = 0.0;
  long long ops = 0;  ///< operations per timed side
  std::string note;

  double speedup() const {
    return new_seconds > 0.0 ? old_seconds / new_seconds : 0.0;
  }
};

void print_result(const BenchResult& r) {
  std::printf("%-12s  old %10.4f s  new %10.4f s  speedup %6.2fx  %s\n",
              r.name.c_str(), r.old_seconds, r.new_seconds, r.speedup(),
              r.note.c_str());
}

tech::ArchParams fabric_10x10() {
  tech::ArchParams arch = tech::knc_scenario(tech::KncScenario::kA);
  arch.name = "knc-like-10x10";
  arch.rows = 10;
  arch.cols = 10;
  return arch;
}

// 1. Route-table lookup vs live routing call.
BenchResult bench_route_lookup(bool smoke) {
  const topo::Topology topo =
      topo::make_sparse_hamming(10, 10, {3, 6}, {3, 6});
  const int num_vcs = 8;
  const auto routing = sim::make_default_routing(topo, num_vcs);
  const sim::RouteTable table(topo, *routing, num_vcs);

  // The state sample: every injection state plus every first-network-hop
  // state reachable from it (the two shapes the router actually queries).
  struct State {
    int node, in_port, in_vc, dest;
  };
  std::vector<State> states;
  for (int node = 0; node < topo.num_tiles(); ++node) {
    for (int dest = 0; dest < topo.num_tiles(); ++dest) {
      if (dest == node) continue;
      states.push_back({node, -1, -1, dest});
      const auto cands = routing->route(node, -1, -1, dest);
      const auto& cand = cands.front();
      const int next = topo.graph()
                           .neighbors(node)[static_cast<std::size_t>(
                               cand.out_port)]
                           .node;
      if (next == dest) continue;
      // Arrival port at `next` coming from `node`.
      const auto& nbrs = topo.graph().neighbors(next);
      for (std::size_t i = 0; i < nbrs.size(); ++i) {
        if (nbrs[i].node == node) {
          states.push_back({next, static_cast<int>(i), cand.vc_begin, dest});
          break;
        }
      }
    }
  }

  const int reps = smoke ? 20 : 200;
  BenchResult result;
  result.name = "route_lookup";
  result.ops = static_cast<long long>(states.size()) * reps;
  result.note = std::to_string(states.size()) + " states x " +
                std::to_string(reps) + " reps";

  auto t0 = Clock::now();
  long long sink = 0;
  for (int r = 0; r < reps; ++r) {
    for (const State& s : states) {
      const auto cands = routing->route(s.node, s.in_port, s.in_vc, s.dest);
      sink += cands.front().out_port;
    }
  }
  result.old_seconds = seconds_since(t0);

  t0 = Clock::now();
  for (int r = 0; r < reps; ++r) {
    for (const State& s : states) {
      const auto cands = table.lookup(s.node, s.in_port, s.in_vc, s.dest);
      sink += cands.front().out_port;
    }
  }
  result.new_seconds = seconds_since(t0);
  g_sink += sink;
  return result;
}

// 2. Fused distance summary vs two legacy sweeps.
BenchResult bench_fused_bfs(bool smoke) {
  const topo::Topology topo =
      topo::make_sparse_hamming(10, 10, {3, 6}, {3, 6});
  const graph::Graph& g = topo.graph();
  const int reps = smoke ? 50 : 500;

  BenchResult result;
  result.name = "fused_bfs";
  result.ops = reps;
  result.note = "avg_hops+diameter on " + std::to_string(g.num_nodes()) +
                " nodes";

  auto t0 = Clock::now();
  double acc = 0.0;
  for (int r = 0; r < reps; ++r) {
    acc += legacy_average_hops(g);
    acc += legacy_diameter(g);
  }
  result.old_seconds = seconds_since(t0);

  graph::BfsWorkspace ws;
  t0 = Clock::now();
  for (int r = 0; r < reps; ++r) {
    const graph::DistanceSummary summary = graph::distance_summary(g, ws);
    acc += summary.avg_hops + summary.diameter;
  }
  result.new_seconds = seconds_since(t0);
  g_sink += static_cast<long long>(acc);
  return result;
}

// 3. Greedy-DSE candidate screening, old path vs new path.
BenchResult bench_dse_screen(bool smoke) {
  const tech::ArchParams arch = fabric_10x10();
  // The first greedy neighborhood: the mesh plus every single-skip
  // candidate — exactly what customize_greedy screens per iteration.
  std::vector<topo::ShgParams> batch;
  batch.push_back(topo::ShgParams{});
  for (int x = 2; x < arch.cols; ++x) {
    batch.push_back(topo::ShgParams{{x}, {}});
  }
  for (int x = 2; x < arch.rows; ++x) {
    batch.push_back(topo::ShgParams{{}, {x}});
  }
  const int reps = smoke ? 2 : 10;

  BenchResult result;
  result.name = "dse_screen";
  result.ops = static_cast<long long>(batch.size()) * reps;
  result.note = std::to_string(batch.size()) + " candidates x " +
                std::to_string(reps) + " reps";

  auto t0 = Clock::now();
  double acc = 0.0;
  for (int r = 0; r < reps; ++r) {
    for (const auto& params : batch) {
      acc += legacy_screen_candidate(arch, params).throughput_bound;
    }
  }
  result.old_seconds = seconds_since(t0);

  t0 = Clock::now();
  for (int r = 0; r < reps; ++r) {
    for (const auto& params : batch) {
      acc += customize::screen_candidate(arch, params).throughput_bound;
    }
  }
  result.new_seconds = seconds_since(t0);
  g_sink += static_cast<long long>(acc * 1000.0);
  return result;
}

// 4. Full simulation cycle loop: route table off vs on, identical results.
BenchResult bench_sim_cycle(bool smoke, bool* results_identical) {
  const topo::Topology topo =
      topo::make_sparse_hamming(10, 10, {3, 6}, {3, 6});
  const std::vector<int> latencies(
      static_cast<std::size_t>(topo.graph().num_edges()), 1);
  const auto pattern = sim::make_uniform(topo.num_tiles());

  sim::SimConfig config;
  config.injection_rate = 0.10;
  config.warmup_cycles = smoke ? 200 : 1000;
  config.measure_cycles = smoke ? 600 : 3000;

  BenchResult result;
  result.name = "sim_cycle";
  // Both sides include the allocator fast paths of this PR; the old/new
  // delta isolates the route table. The absolute seconds (and ops =
  // simulated cycles) are what tracks the inner-loop trajectory over PRs.
  result.note = "10x10 SHG, uniform, rate 0.10; delta isolates route table";

  config.use_route_table = false;
  sim::Simulator live(topo, latencies, config, *pattern, 1);
  auto t0 = Clock::now();
  const sim::SimResult live_result = live.run();
  result.old_seconds = seconds_since(t0);

  config.use_route_table = true;
  config.verify_route_table = true;  // equivalence-checking mode
  sim::Simulator tabled(topo, latencies, config, *pattern, 1);
  t0 = Clock::now();
  const sim::SimResult table_result = tabled.run();
  result.new_seconds = seconds_since(t0);
  result.ops = live_result.cycles_run;

  *results_identical =
      live_result.offered_rate == table_result.offered_rate &&
      live_result.accepted_rate == table_result.accepted_rate &&
      live_result.avg_packet_latency == table_result.avg_packet_latency &&
      live_result.max_packet_latency == table_result.max_packet_latency &&
      live_result.p50_packet_latency == table_result.p50_packet_latency &&
      live_result.p95_packet_latency == table_result.p95_packet_latency &&
      live_result.p99_packet_latency == table_result.p99_packet_latency &&
      live_result.avg_hops == table_result.avg_hops &&
      live_result.fairness == table_result.fairness &&
      live_result.measured_packets == table_result.measured_packets &&
      live_result.drained == table_result.drained &&
      live_result.cycles_run == table_result.cycles_run;
  return result;
}

/// Field-exact comparison of two search outcomes (params, metric bits,
/// every history step including the rendered notes).
bool same_search_result(const customize::SearchResult& a,
                        const customize::SearchResult& b) {
  if (!(a.params == b.params) || a.metrics != b.metrics ||
      a.history.size() != b.history.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.history.size(); ++i) {
    if (!(a.history[i].params == b.history[i].params) ||
        a.history[i].metrics != b.history[i].metrics ||
        a.history[i].note != b.history[i].note) {
      return false;
    }
  }
  return true;
}

// 5. Greedy DSE end to end: full re-screening vs incremental delta-BFS
// reuse, plus the screening equivalence oracle on a mixed batch.
BenchResult bench_dse_greedy_incremental(bool* equivalent) {
  const tech::ArchParams arch = fabric_10x10();
  const customize::Goal goal{0.40};
  // Unlike the other sections this one gates CI on a 1.5x bar with a
  // measured ~1.6-1.7x, so the ratio uses the min over several timed reps
  // per side — min-of-k rejects co-tenant noise spikes on shared CI
  // runners that a single (or summed) measurement would absorb.
  const int reps = 3;

  // Oracle: the first greedy neighborhood (mesh + every single skip) plus a
  // few multi-skip candidates, screened incrementally and fully —
  // verify_incremental_equivalence throws on any non-bit-identical metric.
  std::vector<topo::ShgParams> oracle_batch;
  oracle_batch.push_back(topo::ShgParams{});
  for (int x = 2; x < arch.cols; ++x) {
    oracle_batch.push_back(topo::ShgParams{{x}, {}});
  }
  for (int x = 2; x < arch.rows; ++x) {
    oracle_batch.push_back(topo::ShgParams{{}, {x}});
  }
  oracle_batch.push_back(topo::ShgParams{{3, 6}, {}});
  oracle_batch.push_back(topo::ShgParams{{3, 6}, {4}});
  oracle_batch.push_back(topo::ShgParams{{2}, {2, 5}});
  bool oracle_ok = true;
  try {
    customize::verify_incremental_equivalence(arch, oracle_batch);
  } catch (const Error& e) {
    oracle_ok = false;
    std::fprintf(stderr, "screening oracle: %s\n", e.what());
  }

  BenchResult result;
  result.name = "dse_greedy_incremental";
  result.ops = 1;  // seconds are min-of-reps for ONE full search
  result.note = "full customize_greedy, 10x10, budget 40%, min of " +
                std::to_string(reps) + "; oracle " +
                std::string(oracle_ok ? "ok" : "MISMATCH");

  customize::SearchOptions full_opts;
  full_opts.incremental = false;
  customize::SearchOptions inc_opts;
  inc_opts.incremental = true;

  customize::SearchResult full_result = customize::customize_greedy(
      arch, goal, full_opts);  // warm-up + reference
  result.old_seconds = std::numeric_limits<double>::infinity();
  for (int r = 0; r < reps; ++r) {
    const auto t0 = Clock::now();
    full_result = customize::customize_greedy(arch, goal, full_opts);
    result.old_seconds = std::min(result.old_seconds, seconds_since(t0));
  }

  customize::SearchResult inc_result;
  result.new_seconds = std::numeric_limits<double>::infinity();
  for (int r = 0; r < reps; ++r) {
    const auto t0 = Clock::now();
    inc_result = customize::customize_greedy(arch, goal, inc_opts);
    result.new_seconds = std::min(result.new_seconds, seconds_since(t0));
  }

  *equivalent = oracle_ok && same_search_result(full_result, inc_result);
  return result;
}

// 7. Greedy DSE with the previous incremental screening stack (delta-BFS
// reuse, from-scratch channel routing per candidate) vs the full reuse
// stack (routing context suffix replay + topology-free child pricing).
BenchResult bench_dse_greedy_routing_incremental(bool* equivalent) {
  const tech::ArchParams arch = fabric_10x10();
  const customize::Goal goal{0.40};
  // Min-of-5: this section gates CI at 2x with a measured ~2.5-3x, and
  // both sides are short (milliseconds) — extra reps cost nothing and
  // reject co-tenant noise spikes a min-of-3 occasionally lets through.
  const int reps = 5;

  // Channel-router differential oracle: over random SHG skip-insertion
  // trajectories, the context's repaired loads must be bit-identical to
  // global_route_loads on the materialized child (default exact mode).
  bool oracle_ok = true;
  Prng rng(0x70410u);
  for (int trial = 0; trial < 8 && oracle_ok; ++trial) {
    std::set<int> parent_rows, parent_cols;
    std::vector<int> new_rows, new_cols;
    for (int x = 2; x < 10; ++x) {
      switch (rng() % 4) {
        case 0: parent_rows.insert(x); break;
        case 1: new_rows.push_back(x); break;
        default: break;
      }
      switch (rng() % 4) {
        case 0: parent_cols.insert(x); break;
        case 1: new_cols.push_back(x); break;
        default: break;
      }
    }
    const topo::Topology parent =
        topo::make_sparse_hamming(10, 10, parent_rows, parent_cols);
    const phys::RoutingContext ctx(parent);
    std::set<int> child_rows = parent_rows;
    std::set<int> child_cols = parent_cols;
    child_rows.insert(new_rows.begin(), new_rows.end());
    child_cols.insert(new_cols.begin(), new_cols.end());
    const topo::Topology child =
        topo::make_sparse_hamming(10, 10, child_rows, child_cols);
    const phys::GlobalRoutingResult fresh = phys::global_route_loads(child);
    phys::GlobalRoutingResult repaired;
    ctx.route_child_loads(new_rows, new_cols, &repaired);
    const phys::GlobalRoutingResult generic = ctx.route_child_loads(child);
    if (repaired.h_loads != fresh.h_loads ||
        repaired.v_loads != fresh.v_loads ||
        generic.h_loads != fresh.h_loads ||
        generic.v_loads != fresh.v_loads) {
      oracle_ok = false;
      std::fprintf(stderr, "routing oracle: loads diverged on trial %d\n",
                   trial);
    }
  }

  // Screening equivalence oracle with the routing context on.
  std::vector<topo::ShgParams> oracle_batch;
  oracle_batch.push_back(topo::ShgParams{});
  for (int x = 2; x < arch.cols; ++x) {
    oracle_batch.push_back(topo::ShgParams{{x}, {}});
  }
  oracle_batch.push_back(topo::ShgParams{{3, 6}, {4}});
  oracle_batch.push_back(topo::ShgParams{{2}, {2, 5}});
  try {
    customize::verify_incremental_equivalence(
        arch, oracle_batch, customize::ScreeningOptions{true});
  } catch (const Error& e) {
    oracle_ok = false;
    std::fprintf(stderr, "screening oracle (routing on): %s\n", e.what());
  }

  BenchResult result;
  result.name = "dse_greedy_routing_incremental";
  result.ops = 1;  // seconds are min-of-reps for ONE full search
  result.note = "greedy 10x10, delta-BFS baseline vs +routing ctx, min of " +
                std::to_string(reps) + "; oracle " +
                std::string(oracle_ok ? "ok" : "MISMATCH");

  customize::SearchOptions baseline_opts;  // the pre-routing-context stack
  baseline_opts.incremental = true;
  baseline_opts.incremental_routing = false;
  customize::SearchOptions routing_opts;
  routing_opts.incremental = true;
  routing_opts.incremental_routing = true;

  customize::SearchResult baseline_result =
      customize::customize_greedy(arch, goal, baseline_opts);  // warm-up
  result.old_seconds = std::numeric_limits<double>::infinity();
  for (int r = 0; r < reps; ++r) {
    const auto t0 = Clock::now();
    baseline_result = customize::customize_greedy(arch, goal, baseline_opts);
    result.old_seconds = std::min(result.old_seconds, seconds_since(t0));
  }

  customize::SearchResult routing_result;
  result.new_seconds = std::numeric_limits<double>::infinity();
  for (int r = 0; r < reps; ++r) {
    const auto t0 = Clock::now();
    routing_result = customize::customize_greedy(arch, goal, routing_opts);
    result.new_seconds = std::min(result.new_seconds, seconds_since(t0));
  }

  *equivalent = oracle_ok && same_search_result(baseline_result,
                                                routing_result);
  return result;
}

// 8. Persistent-session warm re-invocation: the full greedy search against
// a fresh (cold, populating) session vs against the already-populated one.
BenchResult bench_dse_session_warm(bool* equivalent) {
  const tech::ArchParams arch = fabric_10x10();
  const customize::Goal goal{0.40};
  // Min-of-5 like the other gated greedy sections: both sides are short
  // and the 3x bar must not be lost to co-tenant noise on CI runners.
  const int reps = 5;

  // Session-free reference: the warm result must be bit-identical not just
  // to the populating run but to a search that never saw a session.
  const customize::SearchResult reference =
      customize::customize_greedy(arch, goal, customize::SearchOptions{});

  BenchResult result;
  result.name = "dse_session_warm";
  result.ops = 1;  // seconds are min-of-reps for ONE full search
  result.note = "greedy 10x10, fresh-session cold vs warm re-invocation, "
                "min of " + std::to_string(reps);

  // Cold side: a fresh memory-only session per rep — every candidate
  // misses, is screened and stored (the first invocation a designer pays).
  customize::SearchResult cold_result;
  result.old_seconds = std::numeric_limits<double>::infinity();
  for (int r = 0; r < reps; ++r) {
    customize::Session session;
    customize::SearchOptions opts;
    opts.session = &session;
    const auto t0 = Clock::now();
    cold_result = customize::customize_greedy(arch, goal, opts);
    result.old_seconds = std::min(result.old_seconds, seconds_since(t0));
  }

  // Warm side: one session, populated once untimed, then re-invoked — the
  // cross-invocation reuse the session exists for.
  customize::Session session;
  customize::SearchOptions opts;
  opts.session = &session;
  customize::SearchResult warm_result =
      customize::customize_greedy(arch, goal, opts);  // populate
  const std::uint64_t hits_before = session.stats().hits;
  result.new_seconds = std::numeric_limits<double>::infinity();
  for (int r = 0; r < reps; ++r) {
    const auto t0 = Clock::now();
    warm_result = customize::customize_greedy(arch, goal, opts);
    result.new_seconds = std::min(result.new_seconds, seconds_since(t0));
  }

  const bool warm_hit_cache = session.stats().hits > hits_before;
  // same_search_result covers params/metrics/history; the final report is
  // served from the artifact tier on warm runs, so pin its area fields
  // against the session-free evaluation too.
  const bool cost_identical =
      warm_result.cost.area_overhead == reference.cost.area_overhead &&
      warm_result.cost.total_area_mm2 == reference.cost.total_area_mm2 &&
      cold_result.cost.area_overhead == reference.cost.area_overhead;
  *equivalent = same_search_result(reference, cold_result) &&
                same_search_result(reference, warm_result) &&
                warm_hit_cache && cost_identical;
  if (!warm_hit_cache) {
    std::fprintf(stderr, "session bench: warm run never hit the cache\n");
  }
  return result;
}

// 6. Route-table dedup: byte footprint of the shared-row CSR vs the
// one-range-per-row layout.
struct DedupStats {
  std::size_t rows = 0;
  std::size_t unique_rows = 0;
  std::size_t bytes_undeduped = 0;
  std::size_t bytes_deduped = 0;

  double ratio() const {
    return bytes_deduped > 0
               ? static_cast<double>(bytes_undeduped) /
                     static_cast<double>(bytes_deduped)
               : 0.0;
  }
};

DedupStats bench_route_table_dedup() {
  const topo::Topology topo =
      topo::make_sparse_hamming(10, 10, {3, 6}, {3, 6});
  const int num_vcs = 8;
  const auto routing = sim::make_default_routing(topo, num_vcs);
  const sim::RouteTable table(topo, *routing, num_vcs);
  DedupStats stats;
  stats.rows = table.num_rows();
  stats.unique_rows = table.num_unique_rows();
  stats.bytes_undeduped = table.undeduped_memory_bytes();
  stats.bytes_deduped = table.memory_bytes();
  return stats;
}

void append_json(std::string& json, const BenchResult& r) {
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "    {\"name\": \"%s\", \"old_seconds\": %.6f, "
                "\"new_seconds\": %.6f, \"speedup\": %.3f, \"ops\": %lld, "
                "\"note\": \"%s\"}",
                r.name.c_str(), r.old_seconds, r.new_seconds, r.speedup(),
                r.ops, r.note.c_str());
  if (!json.empty()) json += ",\n";
  json += buf;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_hotpath.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::printf("usage: bench_hotpath [--smoke] [--out file.json]\n");
      return 2;
    }
  }

  std::printf("=== bench_hotpath (%s mode) ===\n", smoke ? "smoke" : "full");

  bool results_identical = false;
  bool incremental_identical = false;
  bool routing_incremental_identical = false;
  bool session_identical = false;
  std::vector<BenchResult> results;
  results.push_back(bench_route_lookup(smoke));
  print_result(results.back());
  results.push_back(bench_fused_bfs(smoke));
  print_result(results.back());
  results.push_back(bench_dse_screen(smoke));
  print_result(results.back());
  results.push_back(bench_sim_cycle(smoke, &results_identical));
  print_result(results.back());
  results.push_back(bench_dse_greedy_incremental(&incremental_identical));
  print_result(results.back());
  results.push_back(
      bench_dse_greedy_routing_incremental(&routing_incremental_identical));
  print_result(results.back());
  results.push_back(bench_dse_session_warm(&session_identical));
  print_result(results.back());
  const DedupStats dedup = bench_route_table_dedup();

  std::printf("sim results identical (table on vs off): %s\n",
              results_identical ? "yes" : "NO — BUG");
  std::printf(
      "incremental DSE identical (context on vs off + oracle): %s\n",
      incremental_identical ? "yes" : "NO — BUG");
  std::printf(
      "incremental routing identical (loads + search + oracle): %s\n",
      routing_incremental_identical ? "yes" : "NO — BUG");
  std::printf(
      "session warm re-invocation identical (history + final report): %s\n",
      session_identical ? "yes" : "NO — BUG");
  std::printf(
      "route_table_dedup  rows %zu -> unique %zu, bytes %zu -> %zu "
      "(%.2fx smaller)\n",
      dedup.rows, dedup.unique_rows, dedup.bytes_undeduped,
      dedup.bytes_deduped, dedup.ratio());

  double dse_speedup = 0.0;
  double greedy_speedup = 0.0;
  double routing_speedup = 0.0;
  double session_speedup = 0.0;
  std::string entries;
  for (const BenchResult& r : results) {
    append_json(entries, r);
    if (r.name == "dse_screen") dse_speedup = r.speedup();
    if (r.name == "dse_greedy_incremental") greedy_speedup = r.speedup();
    if (r.name == "dse_greedy_routing_incremental") {
      routing_speedup = r.speedup();
    }
    if (r.name == "dse_session_warm") session_speedup = r.speedup();
  }
  std::ofstream out(out_path);
  out << "{\n  \"schema\": \"shg.bench_hotpath.v4\",\n"
      << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n"
      << "  \"fabric\": \"knc-like-10x10\",\n"
      << "  \"sim_results_identical\": "
      << (results_identical ? "true" : "false") << ",\n"
      << "  \"dse_screen_speedup\": " << dse_speedup << ",\n"
      << "  \"dse_greedy_incremental_speedup\": " << greedy_speedup << ",\n"
      << "  \"incremental_identical\": "
      << (incremental_identical ? "true" : "false") << ",\n"
      << "  \"dse_greedy_routing_incremental_speedup\": " << routing_speedup
      << ",\n"
      << "  \"routing_incremental_identical\": "
      << (routing_incremental_identical ? "true" : "false") << ",\n"
      << "  \"dse_session_warm_speedup\": " << session_speedup << ",\n"
      << "  \"session_identical\": "
      << (session_identical ? "true" : "false") << ",\n"
      << "  \"route_table_dedup\": {\"rows\": " << dedup.rows
      << ", \"unique_rows\": " << dedup.unique_rows
      << ", \"bytes_undeduped\": " << dedup.bytes_undeduped
      << ", \"bytes_deduped\": " << dedup.bytes_deduped
      << ", \"ratio\": " << dedup.ratio() << "},\n"
      << "  \"benchmarks\": [\n"
      << entries << "\n  ]\n}\n";
  out.close();
  if (!out) {
    std::fprintf(stderr, "error: could not write %s\n", out_path.c_str());
    return 2;
  }
  std::printf("wrote %s\n", out_path.c_str());

  // Exit non-zero when the acceptance invariants are violated so CI can
  // gate on the smoke run.
  if (!results_identical) return 1;
  if (!incremental_identical) {
    std::fprintf(stderr,
                 "FAIL: incremental screening diverged from full screening\n");
    return 1;
  }
  if (greedy_speedup < 1.5) {
    std::fprintf(stderr,
                 "FAIL: dse_greedy_incremental speedup %.2fx below the 1.5x "
                 "acceptance bar\n",
                 greedy_speedup);
    return 1;
  }
  if (!routing_incremental_identical) {
    std::fprintf(stderr,
                 "FAIL: incremental routing diverged (loads, oracle, or "
                 "search history)\n");
    return 1;
  }
  if (routing_speedup < 2.0) {
    std::fprintf(stderr,
                 "FAIL: dse_greedy_routing_incremental speedup %.2fx below "
                 "the 2x acceptance bar\n",
                 routing_speedup);
    return 1;
  }
  if (!session_identical) {
    std::fprintf(stderr,
                 "FAIL: warm session re-invocation diverged from the cold "
                 "search (history, final report, or no cache hits)\n");
    return 1;
  }
  if (session_speedup < 3.0) {
    std::fprintf(stderr,
                 "FAIL: dse_session_warm speedup %.2fx below the 3x "
                 "acceptance bar\n",
                 session_speedup);
    return 1;
  }
  if (dedup.bytes_deduped >= dedup.bytes_undeduped) {
    std::fprintf(stderr,
                 "FAIL: route-table dedup did not shrink the table (%zu >= "
                 "%zu bytes)\n",
                 dedup.bytes_deduped, dedup.bytes_undeduped);
    return 1;
  }
  return 0;
}
