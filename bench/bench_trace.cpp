// Trace-replay benchmark + determinism gates.
//
// Records a multi-family trace campaign (trace_from_spec), replays it
// through the experiment engine via `trace:<path>` traffic specs, and
// gates the replay determinism contract — the process exits non-zero on
// any violation so CI can gate on the smoke run:
//
//  1. differential replay — for each recorded family, the trace replayed
//     through make_trace_replay is bit-identical to the live synthetic
//     run on BOTH engines (AoS and SoA);
//  2. worker counts — the trace campaign report is byte-identical with
//     one worker and the default worker count;
//  3. warm campaign — a warm re-run against a session performs ZERO
//     simulations and its reports are byte-identical to the session-free
//     run (the trace content hash keys the cells, so replays hit);
//  4. shard merge — the campaign split across two run_experiment_shard
//     workers exchanging shard files, then merged: zero simulations,
//     byte-identical reports.
//
// Timings compare live synthetic generation against trace replay (the
// replay schedule is precomputed, so replay skips every RNG draw).
//
// Output: a table on stdout + machine-readable JSON (schema
// "shg.bench_trace.v1", default BENCH_trace.json; see --out). `--smoke`
// shrinks the simulated cycle counts for CI.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "shg/common/parallel.hpp"
#include "shg/customize/session.hpp"
#include "shg/eval/experiment.hpp"
#include "shg/sim/simulator.hpp"
#include "shg/sim/trace.hpp"
#include "shg/sim/traffic_spec.hpp"
#include "shg/topo/generators.hpp"

namespace {

using namespace shg;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

struct Family {
  const char* spec;
  const char* slug;  // file-name-safe label
};

constexpr Family kFamilies[] = {
    {"uniform", "uniform"},
    {"hotspot:0,7:0.25", "hotspot"},
    {"transpose/onoff:0.05,0.2", "transpose-onoff"},
};

bool results_identical(const sim::SimResult& a, const sim::SimResult& b) {
  return a.offered_rate == b.offered_rate &&
         a.accepted_rate == b.accepted_rate &&
         a.avg_packet_latency == b.avg_packet_latency &&
         a.p99_packet_latency == b.p99_packet_latency &&
         a.avg_hops == b.avg_hops && a.measured_packets == b.measured_packets &&
         a.drained == b.drained;
}

bool reports_identical(const eval::ExperimentReport& a,
                       const eval::ExperimentReport& b) {
  return eval::experiment_to_json(a) == eval::experiment_to_json(b) &&
         eval::experiment_to_csv(a) == eval::experiment_to_csv(b);
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_trace.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::printf("usage: bench_trace [--smoke] [--out file.json]\n");
      return 2;
    }
  }

  const int rows = 8;
  const int cols = 8;
  sim::TraceRecordOptions rec;
  rec.rows = rows;
  rec.cols = cols;
  rec.injection_rate = 0.10;
  rec.seed = 1;

  eval::PerfConfig config;
  config.sim.num_vcs = 2;
  config.sim.buffer_depth_flits = 4;
  config.sim.injection_rate = rec.injection_rate;
  config.sim.warmup_cycles = smoke ? 150 : 500;
  config.sim.measure_cycles = smoke ? 400 : 1500;
  // Record exactly the live generation window (warmup + measure) with the
  // live packet size so the replayed schedule matches the synthetic run
  // packet for packet.
  rec.cycles = config.sim.warmup_cycles + config.sim.measure_cycles;
  rec.packet_size_flits = config.sim.packet_size_flits;
  config.sim.drain_cycles = smoke ? 6000 : 15000;
  config.sim.seed = rec.seed;

  std::printf("=== bench_trace (%s mode, %dx%d grid) ===\n",
              smoke ? "smoke" : "full", rows, cols);

  // -- Gate 1: differential replay identity on both engines. ------------
  const auto topology = topo::make_mesh(rows, cols);
  const std::vector<int> latencies(
      static_cast<std::size_t>(topology.graph().num_edges()), 1);
  const int num_tiles = rows * cols;
  bool differential_ok = true;
  double live_seconds = 0.0;
  double replay_seconds = 0.0;
  std::vector<std::string> trace_paths;
  for (const Family& family : kFamilies) {
    const sim::TrafficSpec spec = sim::TrafficSpec::parse(family.spec);
    const sim::Trace trace = sim::trace_from_spec(spec, rec);
    const std::string path =
        out_path + "." + family.slug + ".trace";
    sim::save_trace(trace, path);
    trace_paths.push_back(path);
    const auto shared = std::make_shared<const sim::Trace>(trace);

    for (const bool soa : {false, true}) {
      sim::SimConfig run_config = config.sim;
      run_config.use_soa_engine = soa;
      // Live: the synthetic pattern/process pair the trace was recorded
      // from, running its own RNG draws.
      const auto pattern = spec.make_pattern(rows, cols);
      auto process = spec.make_process(
          rec.injection_rate /
              static_cast<double>(run_config.packet_size_flits),
          num_tiles);
      auto t0 = Clock::now();
      sim::Simulator live(topology, latencies, run_config, *pattern, 1,
                          nullptr, nullptr, std::move(process));
      const sim::SimResult live_result = live.run();
      live_seconds += seconds_since(t0);

      // Replay: pure function of the trace bytes, zero RNG draws.
      sim::TraceWorkload workload = sim::make_trace_replay(
          shared, num_tiles, num_tiles, run_config.packet_size_flits);
      t0 = Clock::now();
      sim::Simulator replay(topology, latencies, run_config,
                            *workload.pattern, 1, nullptr, nullptr,
                            std::move(workload.process));
      const sim::SimResult replay_result = replay.run();
      replay_seconds += seconds_since(t0);

      if (!results_identical(live_result, replay_result) ||
          live_result.measured_packets <= 0) {
        std::fprintf(stderr,
                     "FAIL: %s replay diverged from the live run on the "
                     "%s engine\n",
                     family.spec, soa ? "SoA" : "AoS");
        differential_ok = false;
      }
    }
  }
  std::printf("live_synthetic  %8.3f s  (%zu families x 2 engines)\n",
              live_seconds, std::size(kFamilies));
  std::printf("trace_replay    %8.3f s  (precomputed schedules)\n",
              replay_seconds);
  std::printf("replay == live on both engines: %s\n",
              differential_ok ? "yes" : "NO — BUG");

  // -- Trace campaign: every family as a trace: spec through the engine.
  eval::ExperimentSpec spec;
  spec.name = "bench-trace-campaign";
  spec.topologies.push_back(eval::TopologyCase{topology, {}, ""});
  spec.topologies.push_back(
      eval::TopologyCase{topo::make_torus(rows, cols), {}, ""});
  for (const std::string& path : trace_paths) {
    spec.traffic.push_back(eval::TrafficCase{"trace:" + path, nullptr, ""});
  }
  spec.rates = {rec.injection_rate};
  spec.seeds = {1, 2};
  spec.config = config;

  set_max_threads(1);
  auto t0 = Clock::now();
  const eval::ExperimentReport serial_report = eval::run_experiment(spec);
  const double serial_seconds = seconds_since(t0);
  set_max_threads(0);
  t0 = Clock::now();
  const eval::ExperimentReport batched_report = eval::run_experiment(spec);
  const double batched_seconds = seconds_since(t0);
  const bool workers_identical =
      reports_identical(serial_report, batched_report);
  std::printf("campaign_serial %8.3f s / campaign_batched %8.3f s\n",
              serial_seconds, batched_seconds);
  std::printf("serial == batched trace reports: %s\n",
              workers_identical ? "yes" : "NO — BUG");

  // -- Gate 3: warm trace campaign performs zero simulations. ------------
  customize::Session session;
  eval::ExperimentSpec warm_spec = spec;
  warm_spec.session = &session;
  const eval::ExperimentReport cold_report = eval::run_experiment(warm_spec);
  const eval::ExperimentReport warm_report = eval::run_experiment(warm_spec);
  const bool warm_ok = warm_report.sim_simulated == 0 &&
                       reports_identical(batched_report, cold_report) &&
                       reports_identical(batched_report, warm_report);
  std::printf("warm trace campaign: %zu simulated (want 0), identical: %s\n",
              warm_report.sim_simulated, warm_ok ? "yes" : "NO — BUG");

  // -- Gate 4: shard/merge over trace cells. -----------------------------
  const std::string shard_paths[2] = {out_path + ".shard0.cache",
                                      out_path + ".shard1.cache"};
  for (int s = 0; s < 2; ++s) {
    customize::Session worker;
    eval::ExperimentSpec worker_spec = spec;
    worker_spec.session = &worker;
    eval::run_experiment_shard(worker_spec, s, 2);
    worker.sim_cache().save_file(shard_paths[s]);
  }
  customize::Session merge_session;
  for (const std::string& path : shard_paths) {
    merge_session.sim_cache().load_file(path);
  }
  eval::ExperimentSpec merge_spec = spec;
  merge_spec.session = &merge_session;
  const eval::ExperimentReport merge_report = eval::run_experiment(merge_spec);
  const bool merge_ok = merge_report.sim_simulated == 0 &&
                        reports_identical(batched_report, merge_report);
  std::printf("2-shard trace merge: %zu simulated (want 0), identical: %s\n",
              merge_report.sim_simulated, merge_ok ? "yes" : "NO — BUG");

  for (const std::string& path : shard_paths) std::remove(path.c_str());
  for (const std::string& path : trace_paths) std::remove(path.c_str());

  std::ofstream out(out_path);
  out << "{\n  \"schema\": \"shg.bench_trace.v1\",\n"
      << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n"
      << "  \"live_seconds\": " << live_seconds << ",\n"
      << "  \"replay_seconds\": " << replay_seconds << ",\n"
      << "  \"campaign_serial_seconds\": " << serial_seconds << ",\n"
      << "  \"campaign_batched_seconds\": " << batched_seconds << ",\n"
      << "  \"differential_identical\": "
      << (differential_ok ? "true" : "false") << ",\n"
      << "  \"workers_identical\": " << (workers_identical ? "true" : "false")
      << ",\n"
      << "  \"warm_simulated\": " << warm_report.sim_simulated << ",\n"
      << "  \"warm_identical\": " << (warm_ok ? "true" : "false") << ",\n"
      << "  \"shard_merge_simulated\": " << merge_report.sim_simulated
      << ",\n"
      << "  \"shard_merge_identical\": " << (merge_ok ? "true" : "false")
      << "\n}\n";
  out.close();
  if (!out) {
    std::fprintf(stderr, "error: could not write %s\n", out_path.c_str());
    return 2;
  }
  std::printf("wrote %s\n", out_path.c_str());

  if (!differential_ok || !workers_identical || !warm_ok || !merge_ok) {
    return 1;
  }
  return 0;
}
