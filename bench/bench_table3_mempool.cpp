// Table III reproduction: cost and performance prediction of the MemPool
// architecture [37] and the prediction error against the published
// silicon-calibrated values.
//
// Substitution note: we cannot re-run MemPool's
// place-and-route, so the "correct" column quotes the paper's Table III.
// MemPool's hierarchical low-latency interconnect (256 cores, 1024 banks,
// 64 tiles) is modeled as the closest topology in our library — a
// flattened butterfly over the 8x8 tile grid (diameter 2, high radix),
// with the lean MemPool transport/router preset and single-flit packets
// (single-word loads/stores).
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>

#include "shg/common/strings.hpp"
#include "shg/common/table.hpp"
#include "shg/eval/toolchain.hpp"
#include "shg/tech/presets.hpp"
#include "shg/topo/generators.hpp"

namespace {

using namespace shg;

// Published Table III values.
constexpr double kCorrectAreaMm2 = 21.16;
constexpr double kCorrectPowerW = 1.55;
constexpr double kCorrectLatencyCycles = 5.0;
constexpr double kCorrectThroughput = 0.38;
// The paper's own model predictions (for context).
constexpr double kPaperAreaMm2 = 24.26;
constexpr double kPaperPowerW = 1.447;
constexpr double kPaperLatencyCycles = 10.0;
constexpr double kPaperThroughput = 0.25;

eval::PerfConfig mempool_perf(const tech::ArchParams& arch) {
  eval::PerfConfig config = eval::default_perf_config(arch);
  config.sim.packet_size_flits = 1;  // single-word requests
  config.sim.warmup_cycles = 500;
  config.sim.measure_cycles = 2000;
  config.bisection_iterations = 6;
  return config;
}

void BM_MempoolCostModel(benchmark::State& state) {
  const tech::ArchParams arch = tech::mempool_arch();
  const auto topo = topo::make_flattened_butterfly(8, 8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(eval::predict_cost(arch, topo));
  }
}
BENCHMARK(BM_MempoolCostModel);

void BM_MempoolZeroLoadSim(benchmark::State& state) {
  const tech::ArchParams arch = tech::mempool_arch();
  const auto topo = topo::make_flattened_butterfly(8, 8);
  const auto cost = eval::predict_cost(arch, topo);
  const auto latencies = cost.link_latencies();
  const auto pattern = sim::make_uniform(64);
  eval::PerfConfig config = mempool_perf(arch);
  for (auto _ : state) {
    benchmark::DoNotOptimize(eval::simulate_at_rate(
        topo, latencies, arch.endpoints_per_tile, *pattern, config, 0.005));
  }
}
BENCHMARK(BM_MempoolZeroLoadSim);

std::string err_pct(double predicted, double correct) {
  return fmt_double(100.0 * std::abs(predicted - correct) / correct, 0) + "%";
}

void print_table3() {
  const tech::ArchParams arch = tech::mempool_arch();
  const auto topo = topo::make_flattened_butterfly(8, 8);
  const eval::Prediction prediction =
      eval::predict(arch, topo, mempool_perf(arch));

  const double area = prediction.cost.total_area_mm2;
  const double power = prediction.cost.total_power_w;
  const double latency = prediction.perf.zero_load_latency_cycles;
  const double throughput = prediction.perf.saturation_throughput;

  std::printf("\n=== Table III: MemPool prediction vs. published values ===\n");
  Table table({"metric", "correct (paper)", "paper's model", "our model",
               "our error"});
  table.add_row({"area", fmt_double(kCorrectAreaMm2, 2) + " mm^2",
                 fmt_double(kPaperAreaMm2, 2) + " mm^2",
                 fmt_double(area, 2) + " mm^2",
                 err_pct(area, kCorrectAreaMm2)});
  table.add_row({"power", fmt_double(kCorrectPowerW, 2) + " W",
                 fmt_double(kPaperPowerW, 3) + " W",
                 fmt_double(power, 3) + " W", err_pct(power, kCorrectPowerW)});
  table.add_row({"latency", fmt_double(kCorrectLatencyCycles, 0) + " cycles",
                 fmt_double(kPaperLatencyCycles, 0) + " cycles",
                 fmt_double(latency, 1) + " cycles",
                 err_pct(latency, kCorrectLatencyCycles)});
  table.add_row({"throughput", fmt_double(100 * kCorrectThroughput, 0) + "%",
                 fmt_double(100 * kPaperThroughput, 0) + "%",
                 fmt_double(100 * throughput, 0) + "%",
                 err_pct(throughput, kCorrectThroughput)});
  std::printf("%s", table.to_string().c_str());
  std::printf(
      "\nAs in the paper, the latency over-estimate stems from the model's\n"
      "assumption of >= 1 cycle per router and link, which MemPool's\n"
      "latency-optimized interconnect undercuts; deducting the same 4-cycle\n"
      "correction the paper applies gives %.1f cycles.\n",
      latency - 4.0);
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  print_table3();
  return 0;
}
