// Table III reproduction: cost and performance prediction of the MemPool
// architecture [37] and the prediction error against the published
// silicon-calibrated values.
//
// Substitution note: we cannot re-run MemPool's
// place-and-route, so the "correct" column quotes the paper's Table III.
// MemPool's hierarchical low-latency interconnect (256 cores, 1024 banks,
// 64 tiles) is modeled as the closest topology in our library — a
// flattened butterfly over the 8x8 tile grid (diameter 2, high radix),
// with the lean MemPool transport/router preset and single-flit packets
// (single-word loads/stores).
//
// The zero-load workload is also the repo's first trace customer: the
// single-word request stream is recorded ONCE into an shg.trace.v1 file
// (trace_from_spec), the replay benchmark re-runs it from the trace bytes,
// and the process exits non-zero if the replay is not bit-identical to the
// live synthetic run.
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>
#include <memory>

#include "shg/common/strings.hpp"
#include "shg/common/table.hpp"
#include "shg/eval/toolchain.hpp"
#include "shg/sim/simulator.hpp"
#include "shg/sim/trace.hpp"
#include "shg/sim/traffic_spec.hpp"
#include "shg/tech/presets.hpp"
#include "shg/topo/generators.hpp"

namespace {

using namespace shg;

// Published Table III values.
constexpr double kCorrectAreaMm2 = 21.16;
constexpr double kCorrectPowerW = 1.55;
constexpr double kCorrectLatencyCycles = 5.0;
constexpr double kCorrectThroughput = 0.38;
// The paper's own model predictions (for context).
constexpr double kPaperAreaMm2 = 24.26;
constexpr double kPaperPowerW = 1.447;
constexpr double kPaperLatencyCycles = 10.0;
constexpr double kPaperThroughput = 0.25;

eval::PerfConfig mempool_perf(const tech::ArchParams& arch) {
  eval::PerfConfig config = eval::default_perf_config(arch);
  config.sim.packet_size_flits = 1;  // single-word requests
  config.sim.warmup_cycles = 500;
  config.sim.measure_cycles = 2000;
  config.bisection_iterations = 6;
  return config;
}

void BM_MempoolCostModel(benchmark::State& state) {
  const tech::ArchParams arch = tech::mempool_arch();
  const auto topo = topo::make_flattened_butterfly(8, 8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(eval::predict_cost(arch, topo));
  }
}
BENCHMARK(BM_MempoolCostModel);

constexpr double kZeroLoadRate = 0.005;

// The recorded MemPool request stream, generated once per process: the
// same uniform single-word workload the zero-load benchmark simulates,
// captured over the live generation window (warmup + measure).
const sim::Trace& mempool_trace() {
  static const sim::Trace trace = [] {
    const tech::ArchParams arch = tech::mempool_arch();
    const eval::PerfConfig config = mempool_perf(arch);
    sim::TraceRecordOptions opt;
    opt.rows = 8;
    opt.cols = 8;
    opt.endpoints_per_tile = arch.endpoints_per_tile;
    opt.injection_rate = kZeroLoadRate;
    opt.packet_size_flits = config.sim.packet_size_flits;
    opt.cycles = config.sim.warmup_cycles + config.sim.measure_cycles;
    opt.seed = config.sim.seed;
    return sim::trace_from_spec(sim::TrafficSpec::parse("uniform"), opt);
  }();
  return trace;
}

sim::SimResult replay_mempool_trace() {
  const tech::ArchParams arch = tech::mempool_arch();
  const auto topo = topo::make_flattened_butterfly(8, 8);
  const auto latencies = eval::predict_cost(arch, topo).link_latencies();
  eval::PerfConfig config = mempool_perf(arch);
  config.sim.injection_rate = kZeroLoadRate;
  const auto shared = std::make_shared<const sim::Trace>(mempool_trace());
  sim::TraceWorkload workload = sim::make_trace_replay(
      shared, topo.num_tiles() * arch.endpoints_per_tile, topo.num_tiles(),
      config.sim.packet_size_flits);
  sim::Simulator simulator(topo, latencies, config.sim, *workload.pattern,
                           arch.endpoints_per_tile, nullptr, nullptr,
                           std::move(workload.process));
  return simulator.run();
}

void BM_MempoolTraceReplaySim(benchmark::State& state) {
  mempool_trace();  // record outside the timed loop
  for (auto _ : state) {
    benchmark::DoNotOptimize(replay_mempool_trace());
  }
}
BENCHMARK(BM_MempoolTraceReplaySim);

void BM_MempoolZeroLoadSim(benchmark::State& state) {
  const tech::ArchParams arch = tech::mempool_arch();
  const auto topo = topo::make_flattened_butterfly(8, 8);
  const auto cost = eval::predict_cost(arch, topo);
  const auto latencies = cost.link_latencies();
  const auto pattern = sim::make_uniform(64);
  eval::PerfConfig config = mempool_perf(arch);
  for (auto _ : state) {
    benchmark::DoNotOptimize(eval::simulate_at_rate(
        topo, latencies, arch.endpoints_per_tile, *pattern, config, 0.005));
  }
}
BENCHMARK(BM_MempoolZeroLoadSim);

std::string err_pct(double predicted, double correct) {
  return fmt_double(100.0 * std::abs(predicted - correct) / correct, 0) + "%";
}

void print_table3() {
  const tech::ArchParams arch = tech::mempool_arch();
  const auto topo = topo::make_flattened_butterfly(8, 8);
  const eval::Prediction prediction =
      eval::predict(arch, topo, mempool_perf(arch));

  const double area = prediction.cost.total_area_mm2;
  const double power = prediction.cost.total_power_w;
  const double latency = prediction.perf.zero_load_latency_cycles;
  const double throughput = prediction.perf.saturation_throughput;

  std::printf("\n=== Table III: MemPool prediction vs. published values ===\n");
  Table table({"metric", "correct (paper)", "paper's model", "our model",
               "our error"});
  table.add_row({"area", fmt_double(kCorrectAreaMm2, 2) + " mm^2",
                 fmt_double(kPaperAreaMm2, 2) + " mm^2",
                 fmt_double(area, 2) + " mm^2",
                 err_pct(area, kCorrectAreaMm2)});
  table.add_row({"power", fmt_double(kCorrectPowerW, 2) + " W",
                 fmt_double(kPaperPowerW, 3) + " W",
                 fmt_double(power, 3) + " W", err_pct(power, kCorrectPowerW)});
  table.add_row({"latency", fmt_double(kCorrectLatencyCycles, 0) + " cycles",
                 fmt_double(kPaperLatencyCycles, 0) + " cycles",
                 fmt_double(latency, 1) + " cycles",
                 err_pct(latency, kCorrectLatencyCycles)});
  table.add_row({"throughput", fmt_double(100 * kCorrectThroughput, 0) + "%",
                 fmt_double(100 * kPaperThroughput, 0) + "%",
                 fmt_double(100 * throughput, 0) + "%",
                 err_pct(throughput, kCorrectThroughput)});
  std::printf("%s", table.to_string().c_str());
  std::printf(
      "\nAs in the paper, the latency over-estimate stems from the model's\n"
      "assumption of >= 1 cycle per router and link, which MemPool's\n"
      "latency-optimized interconnect undercuts; deducting the same 4-cycle\n"
      "correction the paper applies gives %.1f cycles.\n",
      latency - 4.0);
}

// Gate: the trace replay must reproduce the live synthetic zero-load run
// bit for bit (same schedule, zero RNG draws during replay).
bool check_trace_replay() {
  const tech::ArchParams arch = tech::mempool_arch();
  const auto topo = topo::make_flattened_butterfly(8, 8);
  const auto latencies = eval::predict_cost(arch, topo).link_latencies();
  const auto pattern = sim::make_uniform(64);
  const sim::SimResult live =
      eval::simulate_at_rate(topo, latencies, arch.endpoints_per_tile,
                             *pattern, mempool_perf(arch), kZeroLoadRate);
  const sim::SimResult replay = replay_mempool_trace();
  const bool identical =
      live.offered_rate == replay.offered_rate &&
      live.accepted_rate == replay.accepted_rate &&
      live.avg_packet_latency == replay.avg_packet_latency &&
      live.p99_packet_latency == replay.p99_packet_latency &&
      live.avg_hops == replay.avg_hops &&
      live.measured_packets == replay.measured_packets &&
      live.drained == replay.drained && live.measured_packets > 0;
  std::printf("\ntrace replay == live zero-load run: %s (%lld packets)\n",
              identical ? "yes" : "NO — BUG", live.measured_packets);
  return identical;
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  print_table3();
  if (!check_trace_replay()) return 1;
  return 0;
}
