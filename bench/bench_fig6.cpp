// Figure 6 reproduction: cost (NoC power vs. area overhead) and performance
// (zero-load latency vs. saturation throughput) of all applicable
// topologies in the four Knights-Corner-class scenarios of Section V-b,
// with the paper's customized sparse Hamming graph configurations.
//
// Prints one table per sub-figure (a-d) plus the headline check: the
// customized SHG must deliver the highest saturation throughput among all
// topologies with at most 40% area overhead while being near-best in
// zero-load latency. Expect a few minutes of runtime: every row is a full
// cost-model evaluation plus a zero-load simulation and a bisection for the
// saturation rate (random uniform traffic, hop-minimizing routing — the
// Figure 6 configuration).
//
// The google-benchmark section measures the toolchain's evaluation speed
// (the paper's pitch: high-level-model speed with low-level detail).
#include <benchmark/benchmark.h>

#include <cstdio>
#include <vector>

#include "shg/common/strings.hpp"
#include "shg/common/table.hpp"
#include "shg/customize/pareto.hpp"
#include "shg/customize/search.hpp"
#include "shg/eval/scenario.hpp"
#include "shg/eval/toolchain.hpp"
#include "shg/topo/generators.hpp"

namespace {

using namespace shg;

void BM_CostModelScenarioA_Shg(benchmark::State& state) {
  const auto scenario = eval::figure6_scenario(tech::KncScenario::kA);
  const auto topologies = eval::scenario_topologies(scenario);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        eval::predict_cost(scenario.arch, topologies.back()));
  }
}
BENCHMARK(BM_CostModelScenarioA_Shg);

void BM_CostModelScenarioC_FlattenedButterfly(benchmark::State& state) {
  const auto scenario = eval::figure6_scenario(tech::KncScenario::kC);
  const auto topologies = eval::scenario_topologies(scenario);
  // The FB is the largest topology (second to last; SHG is last).
  const auto& fb = topologies[topologies.size() - 2];
  for (auto _ : state) {
    benchmark::DoNotOptimize(eval::predict_cost(scenario.arch, fb));
  }
}
BENCHMARK(BM_CostModelScenarioC_FlattenedButterfly);

eval::PerfConfig fig6_perf(const tech::ArchParams& arch) {
  eval::PerfConfig config = eval::default_perf_config(arch);
  config.sim.warmup_cycles = 500;
  config.sim.measure_cycles = 2000;
  config.sim.drain_cycles = 20000;
  config.bisection_iterations = 7;
  return config;
}

void run_scenario(const eval::Scenario& scenario) {
  std::printf("\n=== Figure 6(%s): %s ===\n", scenario.label.c_str(),
              scenario.arch.name.c_str());
  std::printf("SHG parameters (paper): SR=%s SC=%s\n",
              fmt_int_set(scenario.shg.row_skips).c_str(),
              fmt_int_set(scenario.shg.col_skips).c_str());

  auto topologies = eval::scenario_topologies(scenario);
  // The paper's SR/SC sets were customized to hit the 40% budget *under
  // the authors' cost calibration*; under ours they cost only ~25%, so we
  // additionally run the paper's customization strategy (Section V-a)
  // against our own cost model and evaluate its pick — reproducing the
  // methodology, not just the artifact.
  const customize::SearchResult customized =
      customize::customize_greedy(scenario.arch, customize::Goal{0.40});
  std::printf("SHG parameters (customized to 40%% under our calibration): "
              "SR=%s SC=%s\n",
              fmt_int_set(customized.params.row_skips).c_str(),
              fmt_int_set(customized.params.col_skips).c_str());
  topologies.push_back(topo::make_sparse_hamming(
      scenario.arch.rows, scenario.arch.cols, customized.params.row_skips,
      customized.params.col_skips));

  const eval::PerfConfig perf = fig6_perf(scenario.arch);

  Table table({"topology", "area overhead", "NoC power", "zero-load lat",
               "saturation", "<=40%"});
  std::vector<customize::MetricPoint> points;
  for (std::size_t t = 0; t < topologies.size(); ++t) {
    const auto& topology = topologies[t];
    const eval::Prediction p = eval::predict(scenario.arch, topology, perf);
    const std::string label = t + 1 == topologies.size()
                                  ? "shg customized @40%"
                                  : topology.name();
    points.push_back(customize::MetricPoint{
        label, p.cost.area_overhead, p.cost.noc_power_w,
        p.perf.zero_load_latency_cycles, p.perf.saturation_throughput});
    table.add_row({label, fmt_double(100.0 * p.cost.area_overhead, 1) + " %",
                   fmt_double(p.cost.noc_power_w, 1) + " W",
                   fmt_double(p.perf.zero_load_latency_cycles, 1) + " cyc",
                   fmt_double(100.0 * p.perf.saturation_throughput, 1) + " %",
                   p.cost.area_overhead <= 0.40 ? "yes" : "no"});
  }
  std::printf("%s", table.to_string().c_str());

  // Headline check (the annotation in every Figure 6 sub-plot): the
  // budget-customized SHG (last row) must have the highest saturation
  // throughput among all topologies within the 40% budget and near-best
  // zero-load latency. Saturation rates come from a bisection, so two
  // topologies closer than one lattice step (2^-iterations) are a tie.
  const double bisection_step =
      1.0 / static_cast<double>(1 << fig6_perf(scenario.arch)
                                         .bisection_iterations);
  const auto& shg = points.back();
  bool highest_throughput_in_budget = true;
  double worst_margin = 1.0;
  int lower_latency_count = 0;
  for (std::size_t i = 0; i + 1 < points.size(); ++i) {
    if (points[i].area_overhead <= 0.40) {
      const double margin =
          shg.saturation_throughput - points[i].saturation_throughput;
      worst_margin = std::min(worst_margin, margin);
      if (margin < -bisection_step) highest_throughput_in_budget = false;
    }
    if (points[i].zero_load_latency < shg.zero_load_latency) {
      ++lower_latency_count;
    }
  }
  std::printf("headline: customized SHG highest throughput among <=40%% "
              "topologies: %s (worst margin %+.1f pp, bisection step %.1f "
              "pp); topologies with lower zero-load latency: %d\n",
              highest_throughput_in_budget ? "YES" : "NO",
              100.0 * worst_margin, 100.0 * bisection_step,
              lower_latency_count);
  const auto front = customize::pareto_front(points);
  std::printf("pareto front:");
  for (std::size_t idx : front) {
    std::printf(" [%s]", points[idx].name.c_str());
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  for (const auto& scenario : eval::figure6_scenarios()) {
    run_scenario(scenario);
  }
  return 0;
}
