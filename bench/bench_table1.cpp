// Table I reproduction: compliance of NoC topologies with the four design
// principles, computed from the actual embedded graphs.
//
// Prints one table per evaluation grid (8x8 and 8x16, the paper's scenario
// sizes). The "paper" column cites the corresponding Table I entry for
// direct comparison. The google-benchmark section measures the trait
// analyzer itself (the fast screening loop of the customization strategy).
#include <benchmark/benchmark.h>

#include <cstdio>
#include <optional>

#include "shg/common/strings.hpp"
#include "shg/common/table.hpp"
#include "shg/topo/generators.hpp"
#include "shg/topo/registry.hpp"
#include "shg/topo/traits.hpp"

namespace {

using namespace shg;

void BM_AnalyzeMesh(benchmark::State& state) {
  const auto topo = topo::make_mesh(8, 8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(topo::analyze(topo));
  }
}
BENCHMARK(BM_AnalyzeMesh);

void BM_AnalyzeFlattenedButterfly(benchmark::State& state) {
  const auto topo = topo::make_flattened_butterfly(8, 8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(topo::analyze(topo));
  }
}
BENCHMARK(BM_AnalyzeFlattenedButterfly);

void BM_AnalyzeSparseHamming(benchmark::State& state) {
  const auto topo = topo::make_sparse_hamming(8, 8, {4}, {2, 5});
  for (auto _ : state) {
    benchmark::DoNotOptimize(topo::analyze(topo));
  }
}
BENCHMARK(BM_AnalyzeSparseHamming);

void BM_GenerateSlimNoc(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(topo::make_slim_noc(8, 16));
  }
}
BENCHMARK(BM_GenerateSlimNoc);

std::string yn(bool b) { return b ? "yes" : "no"; }

void add_row(Table& table, const std::string& label,
             const topo::Topology& topology, const std::string& paper_row) {
  const auto traits = topo::analyze(topology);
  const double configs =
      topo::num_configurations(topology.kind(), topology.rows(),
                               topology.cols());
  table.add_row({label, std::to_string(traits.radix),
                 topo::compliance_symbol(traits.short_links),
                 topo::compliance_symbol(traits.aligned_links),
                 topo::compliance_symbol(traits.uniform_link_density),
                 topo::compliance_symbol(traits.port_placement),
                 std::to_string(traits.diameter),
                 yn(traits.minimal_paths_present),
                 yn(traits.minimal_paths_used), fmt_double(configs, 0),
                 paper_row});
}

void print_table(int rows, int cols) {
  std::printf("\n=== Table I (computed) for R=%d, C=%d ===\n", rows, cols);
  Table table({"topology", "radix", "SL", "AL", "ULD", "OPP", "diam",
               "min-present", "min-used", "#configs", "paper row"});
  add_row(table, "ring", topo::make_ring(rows, cols),
          "2 | y y ~ n | RC/2 | n n | 1");
  add_row(table, "2d mesh", topo::make_mesh(rows, cols),
          "4 | y y y y | R+C-2 | y y | 1");
  add_row(table, "2d torus", topo::make_torus(rows, cols),
          "4 | n y y y | R/2+C/2 | y n | 1");
  add_row(table, "folded 2d torus", topo::make_folded_torus(rows, cols),
          "4 | ~ y y y | R/2+C/2 | n n | 1");
  if (auto hc = topo::try_make(topo::Kind::kHypercube, rows, cols)) {
    add_row(table, "hypercube", *hc,
            "log2(RC) | n y y y | log2(RC) | y n | 0 or 1");
  }
  if (auto slim = topo::try_make(topo::Kind::kSlimNoc, rows, cols)) {
    add_row(table, "slimnoc", *slim,
            "~sqrt(RC) | n n n n | 2 | n n | 0 or 1");
  }
  add_row(table, "flattened butterfly",
          topo::make_flattened_butterfly(rows, cols),
          "R+C-2 | n y n y | 2 | y y | 1");
  // Sparse Hamming graph: the paper reports intervals and parenthesized
  // (parametrization-dependent) checkmarks; show three sample points of the
  // 2^(R+C-4) configuration space.
  add_row(table, "shg SR={} SC={}",
          topo::make_sparse_hamming(rows, cols, {}, {}),
          "[4,R+C-2] | (y) y (y) y | [2,R+C-2] | y (y) | 2^(R+C-4)");
  add_row(table, "shg SR={2} SC={2}",
          topo::make_sparse_hamming(rows, cols, {2}, {2}), "(same)");
  std::set<int> all_row;
  std::set<int> all_col;
  for (int x = 2; x < cols; ++x) all_row.insert(x);
  for (int x = 2; x < rows; ++x) all_col.insert(x);
  add_row(table, "shg SR=all SC=all",
          topo::make_sparse_hamming(rows, cols, all_row, all_col), "(same)");
  std::printf("%s", table.to_string().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  print_table(8, 8);
  print_table(8, 16);
  std::printf(
      "\nNote: SL/AL/ULD/OPP and the minimal-path columns are computed from\n"
      "the embedded graphs (see shg/topo/traits.cpp for the calibrated\n"
      "thresholds); 'paper row' cites Table I of the paper.\n");
  return 0;
}
