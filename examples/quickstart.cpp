// Quickstart: build a sparse Hamming graph, inspect it, and run the full
// prediction toolchain on a Knights-Corner-class architecture.
//
//   $ ./quickstart
//
// Reproduces, in miniature, the full flow of the paper: construct the
// topology (Fig. 2), analyze its design-principle compliance (Table I),
// predict cost with the five-step model (Fig. 4) and performance with the
// cycle-accurate simulator (Fig. 3).
#include <cstdio>

#include "shg/common/strings.hpp"
#include "shg/eval/toolchain.hpp"
#include "shg/tech/presets.hpp"
#include "shg/topo/generators.hpp"
#include "shg/topo/render.hpp"
#include "shg/topo/traits.hpp"

int main() {
  using namespace shg;

  // --- 1. Construct a sparse Hamming graph (Section III-b) ----------------
  // 8x8 tiles, row skip distances SR = {4}, column skips SC = {2, 5}:
  // the paper's customized configuration for scenario a.
  const topo::Topology shg_topo =
      topo::make_sparse_hamming(8, 8, {4}, {2, 5});
  std::printf("%s\n", topo::render_ascii(shg_topo).c_str());

  // --- 2. Analyze its Table I traits ---------------------------------------
  const topo::TopologyTraits traits = topo::analyze(shg_topo);
  std::printf("radix %d, diameter %d, avg hops %.2f\n", traits.radix,
              traits.diameter, traits.avg_hops);
  std::printf("short links: %s | aligned: %s | uniform density: %s | "
              "port placement: %s\n",
              topo::compliance_symbol(traits.short_links).c_str(),
              topo::compliance_symbol(traits.aligned_links).c_str(),
              topo::compliance_symbol(traits.uniform_link_density).c_str(),
              topo::compliance_symbol(traits.port_placement).c_str());
  std::printf("minimal physical paths: present=%s used=%s\n\n",
              traits.minimal_paths_present ? "yes" : "no",
              traits.minimal_paths_used ? "yes" : "no");

  // --- 3. Run the prediction toolchain (Section IV) ------------------------
  const tech::ArchParams arch = tech::knc_scenario(tech::KncScenario::kA);
  eval::PerfConfig perf = eval::default_perf_config(arch);
  // Lighter simulation settings so the quickstart finishes in seconds.
  perf.sim.warmup_cycles = 500;
  perf.sim.measure_cycles = 1500;
  perf.bisection_iterations = 5;

  std::printf("architecture: %s\n", arch.name.c_str());
  const eval::Prediction prediction = eval::predict(arch, shg_topo, perf);
  std::printf("  NoC area overhead : %5.1f %%\n",
              100.0 * prediction.cost.area_overhead);
  std::printf("  NoC power         : %5.1f W\n", prediction.cost.noc_power_w);
  std::printf("  avg link latency  : %5.2f cycles (max %.2f)\n",
              prediction.cost.avg_link_latency_cycles,
              prediction.cost.max_link_latency_cycles);
  std::printf("  zero-load latency : %5.1f cycles\n",
              prediction.perf.zero_load_latency_cycles);
  std::printf("  saturation        : %5.1f %% of injection capacity\n",
              100.0 * prediction.perf.saturation_throughput);
  return 0;
}
