// Experiment-campaign driver: the (topology x traffic x rate x seed)
// sweeps behind the paper's Figure-6/Table-class results, run against the
// session simulation-result tier — warm re-runs simulate only new cells —
// and shardable across processes with byte-identical merged reports.
//
//   Single process (optionally warm across program runs via --cache):
//     $ ./experiment_campaign --out report.json [--cache campaign.cache]
//
//   Sharded campaign: a coordinator hands out `--shard i/n` assignments
//   (the cell partition is a pure function of the spec and i/n, so no
//   other coordination is needed), each worker fills a per-shard cache
//   file, and the merge step loads every shard and emits the canonical
//   report — byte-identical to the single-process run, as the CI smoke
//   asserts with cmp:
//     $ ./experiment_campaign --shard 0/2 --cache shard0.cache
//     $ ./experiment_campaign --shard 1/2 --cache shard1.cache
//     $ ./experiment_campaign --merge shard0.cache,shard1.cache --out report.json
//
//   A lost or corrupt shard file is discarded with a warning; the merge
//   run simulates the missing cells itself, so the report is still
//   correct (just slower).
//
// The campaign itself is deterministic from the flags: mesh + torus + SHG
// topologies on --grid (default 8x8), --traffic specs, --rates, seeds
// 1..--seeds, and the --routing policy (minimal or ugal; ugal raises the
// VC count to 4). --smoke shrinks the simulated cycle counts for CI.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "shg/common/error.hpp"
#include "shg/customize/session.hpp"
#include "shg/eval/experiment.hpp"
#include "shg/serve/service.hpp"

namespace {

using namespace shg;

struct Options {
  serve::CampaignParams campaign;  // the spec knobs, shared with the server
  bool stats = false;              // machine-readable counters on stderr
  std::string cache_path;              // sim-result tier file (warm/worker)
  int shard_index = -1;                // >= 0 selects worker mode
  int shard_count = 0;
  std::vector<std::string> merge_paths;  // non-empty selects merge mode
  std::string out_path;
  std::string csv_path;
};

int usage() {
  std::fprintf(
      stderr,
      "usage: experiment_campaign [--grid RxC] [--traffic s1,s2,...]\n"
      "                           [--rates r1,r2,...] [--seeds N] [--smoke]\n"
      "                           [--routing minimal|ugal] [--stats]\n"
      "                           [--cache FILE] [--shard I/N]\n"
      "                           [--merge F1,F2,...] [--out FILE]\n"
      "                           [--csv FILE]\n");
  return 2;
}

std::vector<std::string> split_commas(const std::string& text) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t comma = text.find(',', start);
    if (comma == std::string::npos) {
      out.push_back(text.substr(start));
      break;
    }
    out.push_back(text.substr(start, comma - start));
    start = comma + 1;
  }
  return out;
}

bool parse_args(int argc, char** argv, Options& opt) {
  for (int i = 1; i < argc; ++i) {
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (std::strcmp(argv[i], "--grid") == 0) {
      const char* v = next();
      if (v == nullptr ||
          std::sscanf(v, "%dx%d", &opt.campaign.rows, &opt.campaign.cols) !=
              2 ||
          opt.campaign.rows < 2 || opt.campaign.cols < 2) {
        return false;
      }
    } else if (std::strcmp(argv[i], "--traffic") == 0) {
      const char* v = next();
      if (v == nullptr) return false;
      opt.campaign.traffic = split_commas(v);
    } else if (std::strcmp(argv[i], "--rates") == 0) {
      const char* v = next();
      if (v == nullptr) return false;
      opt.campaign.rates.clear();
      for (const std::string& field : split_commas(v)) {
        opt.campaign.rates.push_back(std::atof(field.c_str()));
      }
    } else if (std::strcmp(argv[i], "--seeds") == 0) {
      const char* v = next();
      if (v == nullptr || std::atoi(v) < 1) return false;
      opt.campaign.num_seeds = std::atoi(v);
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      opt.campaign.smoke = true;
    } else if (std::strcmp(argv[i], "--routing") == 0) {
      const char* v = next();
      if (v == nullptr ||
          (std::strcmp(v, "minimal") != 0 && std::strcmp(v, "ugal") != 0)) {
        return false;
      }
      opt.campaign.routing = v;
    } else if (std::strcmp(argv[i], "--stats") == 0) {
      opt.stats = true;
    } else if (std::strcmp(argv[i], "--cache") == 0) {
      const char* v = next();
      if (v == nullptr) return false;
      opt.cache_path = v;
    } else if (std::strcmp(argv[i], "--shard") == 0) {
      const char* v = next();
      if (v == nullptr ||
          std::sscanf(v, "%d/%d", &opt.shard_index, &opt.shard_count) != 2) {
        return false;
      }
    } else if (std::strcmp(argv[i], "--merge") == 0) {
      const char* v = next();
      if (v == nullptr) return false;
      opt.merge_paths = split_commas(v);
    } else if (std::strcmp(argv[i], "--out") == 0) {
      const char* v = next();
      if (v == nullptr) return false;
      opt.out_path = v;
    } else if (std::strcmp(argv[i], "--csv") == 0) {
      const char* v = next();
      if (v == nullptr) return false;
      opt.csv_path = v;
    } else {
      return false;
    }
  }
  return true;
}

// The spec itself lives in serve::make_campaign_spec, shared with the
// resident server's "experiment" op — equal knobs must produce
// byte-identical reports through either front end (the CI serve smoke
// cmp's the two).

bool write_file(const std::string& path, const std::string& text,
                const char* what) {
  std::ofstream out(path, std::ios::binary);
  out << text;
  out.close();
  if (!out) {
    std::fprintf(stderr, "error: could not write %s '%s'\n", what,
                 path.c_str());
    return false;
  }
  std::printf("wrote %s (%s)\n", path.c_str(), what);
  return true;
}

/// Machine-readable counters on stderr (--stats): the per-run experiment
/// accounting, greppable without disturbing the stdout lines CI pins.
void print_stats_stderr(const eval::ExperimentReport& report) {
  std::fprintf(stderr, "sim_cells=%zu sim_cache_hits=%zu sim_simulated=%zu\n",
               report.sim_cells, report.sim_cache_hits, report.sim_simulated);
}

void print_tier_stats(const customize::Session& session,
                      const eval::ExperimentReport& report) {
  const customize::CacheStats& stats = session.sim_stats();
  std::printf(
      "[result tier] %zu cells: %zu served from cache, %zu simulated "
      "(tier lifetime: %llu hits / %llu misses / %llu loaded from disk)\n",
      report.sim_cells, report.sim_cache_hits, report.sim_simulated,
      static_cast<unsigned long long>(stats.hits),
      static_cast<unsigned long long>(stats.misses),
      static_cast<unsigned long long>(stats.disk_loaded));
}

int emit_report(const Options& opt, const eval::ExperimentReport& report) {
  if (!opt.out_path.empty() &&
      !write_file(opt.out_path, eval::experiment_to_json(report),
                  "JSON report")) {
    return 1;
  }
  if (!opt.csv_path.empty() &&
      !write_file(opt.csv_path, eval::experiment_to_csv(report),
                  "CSV report")) {
    return 1;
  }
  if (opt.out_path.empty() && opt.csv_path.empty()) {
    std::printf("%s", eval::experiment_to_json(report).c_str());
  }
  return 0;
}

int run(Options& opt) {
  eval::ExperimentSpec spec = serve::make_campaign_spec(opt.campaign);
  const std::size_t cells = spec.topologies.size() * spec.traffic.size() *
                            spec.rates.size() * spec.seeds.size();
  std::printf("campaign %s: %zu topologies x %zu traffic x %zu rates x %zu "
              "seeds = %zu cells\n",
              spec.name.c_str(), spec.topologies.size(),
              spec.traffic.size(), spec.rates.size(), spec.seeds.size(),
              cells);

  if (opt.shard_index >= 0) {
    // Worker mode: fill this shard's cells into the per-shard cache file.
    if (opt.cache_path.empty()) {
      std::fprintf(stderr,
                   "error: --shard needs --cache FILE (the shard's output "
                   "file)\n");
      return 2;
    }
    customize::SessionOptions session_options;
    session_options.sim_cache_path = opt.cache_path;
    customize::Session session(session_options);
    spec.session = &session;
    const eval::ShardRunStats stats =
        eval::run_experiment_shard(spec, opt.shard_index, opt.shard_count);
    std::printf(
        "shard %d/%d: %zu of %zu cells owned, %zu already cached, %zu "
        "simulated\n",
        opt.shard_index, opt.shard_count, stats.shard_cells,
        stats.cells_total, stats.cache_hits, stats.simulated);
    const std::size_t saved = session.save_sim();
    std::printf("saved %zu cells to %s\n", saved, opt.cache_path.c_str());
    return saved > 0 || stats.shard_cells == 0 ? 0 : 1;
  }

  if (!opt.merge_paths.empty()) {
    // Merge mode: adopt every shard file, then run the full campaign —
    // complete shards make this pure aggregation (zero simulations).
    customize::Session session;
    for (const std::string& path : opt.merge_paths) {
      const std::size_t adopted = session.sim_cache().load_file(path);
      std::printf("merged %zu cells from %s\n", adopted, path.c_str());
    }
    spec.session = &session;
    const eval::ExperimentReport report = eval::run_experiment(spec);
    print_tier_stats(session, report);
    if (opt.stats) print_stats_stderr(report);
    return emit_report(opt, report);
  }

  // Single-process mode; --cache makes re-runs warm across program runs.
  customize::SessionOptions session_options;
  session_options.sim_cache_path = opt.cache_path;  // may be empty
  customize::Session session(session_options);
  spec.session = &session;
  const eval::ExperimentReport report = eval::run_experiment(spec);
  print_tier_stats(session, report);
  if (opt.stats) print_stats_stderr(report);
  return emit_report(opt, report);
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parse_args(argc, argv, opt)) return usage();
  if (opt.shard_index >= 0 && !opt.merge_paths.empty()) {
    std::fprintf(stderr, "error: --shard and --merge are exclusive modes\n");
    return 2;
  }
  try {
    return run(opt);
  } catch (const Error& e) {
    // Bad knob combinations (an inapplicable traffic spec, a policy the
    // fabric cannot satisfy) are user errors, not crashes: report and
    // exit non-zero instead of aborting through std::terminate.
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
