// Scripted client for the resident customization server (example_shg_server):
// connects over TCP or a unix-domain socket, sends every request line from
// stdin, prints every response line to stdout, and checks/extracts what a
// driving script asks for:
//
//   --payload ID=FILE     require response ID to be ok and write its
//                         result.report string (unescaped) to FILE — for
//                         cmp'ing an experiment payload against the batch
//                         binary's report file
//   --expect-error ID     require response ID to be ok:false (use "null"
//                         for replies to id-less lines)
//   --shutdown            append a {"op":"shutdown"} request after stdin
//
// Exit code 0 only when every request got a response and every check
// passed. The CI serve smoke is the canonical usage:
//
//   $ printf '%s\n' '{"op":"experiment","id":"e1","smoke":true}' \
//       | ./shg_client --unix /tmp/shg.sock --payload e1=report.json --shutdown
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "shg/serve/json.hpp"

namespace {

using shg::serve::JsonValue;

int usage() {
  std::fprintf(stderr,
               "usage: shg_client (--unix PATH | --tcp PORT)\n"
               "                  [--payload ID=FILE] [--expect-error ID]\n"
               "                  [--shutdown]\n");
  return 2;
}

bool write_all(int fd, const std::string& data) {
  std::size_t done = 0;
  while (done < data.size()) {
    const ssize_t n = ::write(fd, data.data() + done, data.size() - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    done += static_cast<std::size_t>(n);
  }
  return true;
}

/// True when the response's "id" member renders to `want` ("null", "7",
/// or the unquoted text of a string id).
bool id_matches(const JsonValue& response, const std::string& want) {
  const JsonValue* id = response.find("id");
  if (id == nullptr) return want == "null";
  switch (id->kind()) {
    case JsonValue::Kind::kNull:
      return want == "null";
    case JsonValue::Kind::kBool:
      return want == (id->as_bool() ? "true" : "false");
    case JsonValue::Kind::kNumber:
      return want == shg::serve::json_double(id->as_double());
    case JsonValue::Kind::kString:
      return want == id->as_string();
    default:
      return false;
  }
}

struct PayloadCheck {
  std::string id;
  std::string path;
  bool satisfied = false;
};

struct ErrorCheck {
  std::string id;
  bool satisfied = false;
};

}  // namespace

int main(int argc, char** argv) {
  std::string unix_path;
  int port = -1;
  bool send_shutdown = false;
  std::vector<PayloadCheck> payloads;
  std::vector<ErrorCheck> expected_errors;

  for (int i = 1; i < argc; ++i) {
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (std::strcmp(argv[i], "--unix") == 0) {
      const char* v = next();
      if (v == nullptr) return usage();
      unix_path = v;
    } else if (std::strcmp(argv[i], "--tcp") == 0) {
      const char* v = next();
      if (v == nullptr) return usage();
      port = std::atoi(v);
    } else if (std::strcmp(argv[i], "--payload") == 0) {
      const char* v = next();
      const char* eq = v != nullptr ? std::strchr(v, '=') : nullptr;
      if (eq == nullptr || eq == v || eq[1] == '\0') return usage();
      payloads.push_back(
          PayloadCheck{std::string(v, eq), std::string(eq + 1), false});
    } else if (std::strcmp(argv[i], "--expect-error") == 0) {
      const char* v = next();
      if (v == nullptr) return usage();
      expected_errors.push_back(ErrorCheck{v, false});
    } else if (std::strcmp(argv[i], "--shutdown") == 0) {
      send_shutdown = true;
    } else {
      return usage();
    }
  }
  if (unix_path.empty() == (port < 0)) return usage();

  int fd = -1;
  if (!unix_path.empty()) {
    sockaddr_un addr{};
    if (unix_path.size() >= sizeof(addr.sun_path)) {
      std::fprintf(stderr, "shg_client: socket path too long\n");
      return 1;
    }
    fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, unix_path.c_str(), unix_path.size() + 1);
    if (fd < 0 || ::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                            sizeof(addr)) < 0) {
      std::perror("shg_client: connect");
      return 1;
    }
  } else {
    sockaddr_in addr{};
    fd = ::socket(AF_INET, SOCK_STREAM, 0);
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    if (fd < 0 || ::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                            sizeof(addr)) < 0) {
      std::perror("shg_client: connect");
      return 1;
    }
  }

  // Send every stdin line, then the optional shutdown, then half-close so
  // the server sees EOF and drains; responses may arrive in any order.
  std::size_t sent = 0;
  std::string line;
  while (std::getline(std::cin, line)) {
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    if (!write_all(fd, line + "\n")) {
      std::perror("shg_client: send");
      ::close(fd);
      return 1;
    }
    ++sent;
  }
  if (send_shutdown) {
    if (!write_all(fd, "{\"op\":\"shutdown\",\"id\":\"__shutdown__\"}\n")) {
      std::perror("shg_client: send");
      ::close(fd);
      return 1;
    }
    ++sent;
  }
  ::shutdown(fd, SHUT_WR);

  bool failed = false;
  std::size_t received = 0;
  std::string buffer;
  char chunk[4096];
  while (received < sent) {
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n < 0) {
      if (errno == EINTR) continue;
      std::perror("shg_client: recv");
      failed = true;
      break;
    }
    if (n == 0) break;  // server closed early
    buffer.append(chunk, static_cast<std::size_t>(n));
    std::size_t start = 0;
    while (true) {
      const std::size_t nl = buffer.find('\n', start);
      if (nl == std::string::npos) break;
      const std::string response_line = buffer.substr(start, nl - start);
      start = nl + 1;
      if (response_line.empty()) continue;
      ++received;
      std::printf("%s\n", response_line.c_str());

      JsonValue response;
      try {
        response = JsonValue::parse(response_line);
      } catch (const std::exception& e) {
        std::fprintf(stderr, "shg_client: bad response line: %s\n", e.what());
        failed = true;
        continue;
      }
      const JsonValue* ok = response.find("ok");
      const bool response_ok =
          ok != nullptr && ok->is_bool() && ok->as_bool();
      for (ErrorCheck& check : expected_errors) {
        if (!id_matches(response, check.id)) continue;
        if (response_ok) {
          std::fprintf(stderr,
                       "shg_client: response %s was ok, expected an error\n",
                       check.id.c_str());
          failed = true;
        } else {
          check.satisfied = true;
        }
      }
      for (PayloadCheck& check : payloads) {
        if (!id_matches(response, check.id)) continue;
        const JsonValue* result =
            response_ok ? response.find("result") : nullptr;
        const JsonValue* report =
            result != nullptr && result->is_object() ? result->find("report")
                                                     : nullptr;
        if (report == nullptr || !report->is_string()) {
          std::fprintf(stderr,
                       "shg_client: response %s has no result.report payload\n",
                       check.id.c_str());
          failed = true;
          continue;
        }
        std::ofstream out(check.path, std::ios::binary);
        out << report->as_string();
        out.close();
        if (!out) {
          std::fprintf(stderr, "shg_client: could not write %s\n",
                       check.path.c_str());
          failed = true;
        } else {
          check.satisfied = true;
        }
      }
    }
    buffer.erase(0, start);
  }

  ::close(fd);
  if (received < sent) {
    std::fprintf(stderr, "shg_client: got %zu of %zu responses\n", received,
                 sent);
    failed = true;
  }
  for (const PayloadCheck& check : payloads) {
    if (!check.satisfied) {
      std::fprintf(stderr, "shg_client: no payload for id %s\n",
                   check.id.c_str());
      failed = true;
    }
  }
  for (const ErrorCheck& check : expected_errors) {
    if (!check.satisfied) {
      std::fprintf(stderr, "shg_client: no error response for id %s\n",
                   check.id.c_str());
      failed = true;
    }
  }
  return failed ? 1 : 0;
}
