// Trace tool: record synthetic workloads into shg.trace.v1 files and
// inspect existing ones.
//
//   Record 1500 cycles of hotspot traffic on an 8x8 grid into a trace:
//     $ ./trace_tool --record hotspot:0,7:0.2 --grid 8x8 --cycles 1500 \
//           --rate 0.10 --out hotspot.trace
//
//   Validate a trace file and print a summary (non-zero exit on a bad
//   file, so scripts can gate on it):
//     $ ./trace_tool --dump hotspot.trace
//
// Recording replays the exact generation loop both simulator engines
// run (trace_from_spec), so feeding the file back through a
// `trace:<path>` traffic spec reproduces the live run bit for bit — the
// CI campaign smoke records a trace here, replays it through
// experiment_campaign's shard/merge pipeline, and cmp's the reports.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "shg/common/error.hpp"
#include "shg/sim/trace.hpp"
#include "shg/sim/traffic_spec.hpp"

namespace {

using namespace shg;

int usage() {
  std::fprintf(
      stderr,
      "usage: trace_tool --record SPEC --grid RxC --out FILE\n"
      "                  [--cycles N] [--rate R] [--packet-size P]\n"
      "                  [--seed S]\n"
      "       trace_tool --dump FILE\n");
  return 2;
}

int record(const std::string& spec_text, const sim::TraceRecordOptions& opt,
           const std::string& out_path) {
  const sim::TrafficSpec spec = sim::TrafficSpec::parse(spec_text);
  const sim::Trace trace = sim::trace_from_spec(spec, opt);
  sim::save_trace(trace, out_path);
  std::printf(
      "recorded %s: spec %s, grid %dx%d, %zu records, "
      "%u sources, %u terminals, content hash %016llx\n",
      out_path.c_str(), spec.canonical().c_str(), opt.rows, opt.cols,
      trace.records.size(), trace.num_sources, trace.num_terminals,
      static_cast<unsigned long long>(trace.content_hash()));
  return 0;
}

int dump(const std::string& path) {
  const sim::Trace trace = sim::load_trace(path);  // warns + throws on bad
  std::uint64_t last_abs = 0;
  std::uint64_t abs = 0;
  std::uint64_t total_flits = 0;
  std::size_t deps = 0;
  std::vector<std::uint64_t> per_source(trace.num_sources, 0);
  for (const sim::TraceRecord& r : trace.records) {
    per_source[r.source] += r.delta;
    abs = per_source[r.source];
    last_abs = std::max(last_abs, abs);
    total_flits += r.size_flits;
    if (r.dep != sim::kTraceNoDep) ++deps;
  }
  std::printf("%s: shg.trace.v1, %u sources, %u terminals\n", path.c_str(),
              trace.num_sources, trace.num_terminals);
  std::printf("  records:      %zu (%zu with dependency edges)\n",
              trace.records.size(), deps);
  std::printf("  total flits:  %llu\n",
              static_cast<unsigned long long>(total_flits));
  std::printf("  time span:    [0, %llu]\n",
              static_cast<unsigned long long>(last_abs));
  std::printf("  content hash: %016llx\n",
              static_cast<unsigned long long>(trace.content_hash()));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string record_spec;
  std::string dump_path;
  std::string out_path;
  sim::TraceRecordOptions opt;
  for (int i = 1; i < argc; ++i) {
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (std::strcmp(argv[i], "--record") == 0) {
      const char* v = next();
      if (v == nullptr) return usage();
      record_spec = v;
    } else if (std::strcmp(argv[i], "--dump") == 0) {
      const char* v = next();
      if (v == nullptr) return usage();
      dump_path = v;
    } else if (std::strcmp(argv[i], "--grid") == 0) {
      const char* v = next();
      if (v == nullptr || std::sscanf(v, "%dx%d", &opt.rows, &opt.cols) != 2 ||
          opt.rows < 1 || opt.cols < 1) {
        return usage();
      }
    } else if (std::strcmp(argv[i], "--cycles") == 0) {
      const char* v = next();
      if (v == nullptr || std::atoll(v) < 1) return usage();
      opt.cycles = std::atoll(v);
    } else if (std::strcmp(argv[i], "--rate") == 0) {
      const char* v = next();
      if (v == nullptr || std::atof(v) <= 0.0) return usage();
      opt.injection_rate = std::atof(v);
    } else if (std::strcmp(argv[i], "--packet-size") == 0) {
      const char* v = next();
      if (v == nullptr || std::atoi(v) < 1) return usage();
      opt.packet_size_flits = std::atoi(v);
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      const char* v = next();
      if (v == nullptr) return usage();
      opt.seed = static_cast<std::uint64_t>(std::atoll(v));
    } else if (std::strcmp(argv[i], "--out") == 0) {
      const char* v = next();
      if (v == nullptr) return usage();
      out_path = v;
    } else {
      return usage();
    }
  }
  if (record_spec.empty() == dump_path.empty()) return usage();
  try {
    if (!record_spec.empty()) {
      if (out_path.empty()) return usage();
      return record(record_spec, opt, out_path);
    }
    return dump(dump_path);
  } catch (const shg::Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
