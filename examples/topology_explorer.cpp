// Topology explorer: renders every established topology of Figure 1 on a
// small grid and prints its Table I compliance row — a visual + quantitative
// tour of the design principles of Section II — then batches a workload
// experiment (uniform / tornado / hotspot traffic at two load points)
// across all of them through the experiment engine.
//
//   $ ./topology_explorer [rows cols]
#include <cstdio>
#include <cstdlib>

#include "shg/common/strings.hpp"
#include "shg/common/table.hpp"
#include "shg/eval/experiment.hpp"
#include "shg/topo/generators.hpp"
#include "shg/topo/registry.hpp"
#include "shg/topo/render.hpp"
#include "shg/topo/traits.hpp"

int main(int argc, char** argv) {
  using namespace shg;
  const int rows = argc > 1 ? std::atoi(argv[1]) : 4;
  const int cols = argc > 2 ? std::atoi(argv[2]) : 8;
  if (rows < 2 || cols < 2) {
    std::fprintf(stderr, "usage: %s [rows cols], both >= 2\n", argv[0]);
    return 1;
  }

  std::vector<topo::Topology> topologies =
      topo::established_suite(rows, cols);
  // A couple of sparse Hamming graphs to show the customization axis.
  topologies.push_back(topo::make_sparse_hamming(rows, cols, {2}, {2}));
  if (cols > 3) {
    topologies.push_back(topo::make_sparse_hamming(rows, cols, {2, 3}, {2}));
  }
  topologies.push_back(topo::make_ruche(rows, cols, 3, 2));

  Table table({"topology", "radix", "diameter", "avg hops", "SL", "AL",
               "ULD", "OPP", "min paths", "min used"});
  for (const auto& topology : topologies) {
    std::printf("%s\n", topo::render_ascii(topology).c_str());
    const auto traits = topo::analyze(topology);
    table.add_row({topology.name(), std::to_string(traits.radix),
                   std::to_string(traits.diameter),
                   fmt_double(traits.avg_hops, 2),
                   topo::compliance_symbol(traits.short_links),
                   topo::compliance_symbol(traits.aligned_links),
                   topo::compliance_symbol(traits.uniform_link_density),
                   topo::compliance_symbol(traits.port_placement),
                   traits.minimal_paths_present ? "yes" : "no",
                   traits.minimal_paths_used ? "yes" : "no"});
  }
  std::printf("%s", table.to_string().c_str());

  // Workload tour through the experiment engine: one declarative spec
  // batches every (topology, workload, rate) cell — route tables are
  // built once per topology and the points fan out across cores.
  eval::ExperimentSpec spec;
  spec.name = "topology-explorer";
  for (const auto& topology : topologies) {
    spec.topologies.push_back(eval::TopologyCase{topology, {}, ""});
  }
  for (const char* workload :
       {"uniform", "tornado", "hotspot:0:0.25/onoff:0.05,0.15"}) {
    spec.traffic.push_back(eval::TrafficCase{workload, nullptr, ""});
  }
  spec.rates = {0.05, 0.20};
  spec.config.sim.warmup_cycles = 300;
  spec.config.sim.measure_cycles = 800;
  spec.config.sim.drain_cycles = 10000;
  const eval::ExperimentReport report = eval::run_experiment(spec);

  std::printf("\nworkload experiment (%zu simulations, batched):\n",
              spec.topologies.size() * spec.traffic.size() *
                  spec.rates.size());
  Table workloads({"topology", "workload", "rate", "accepted", "avg lat",
                   "p99", "drained"});
  for (const auto& point : report.points) {
    workloads.add_row({point.topology, point.traffic,
                       fmt_double(point.offered_rate, 2),
                       fmt_double(point.accepted_rate.mean, 3),
                       fmt_double(point.avg_latency.mean, 1),
                       fmt_double(point.p99_latency.mean, 1),
                       point.all_drained ? "yes" : "no"});
  }
  std::printf("%s", workloads.to_string().c_str());
  return 0;
}
