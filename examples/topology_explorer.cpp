// Topology explorer: renders every established topology of Figure 1 on a
// small grid and prints its Table I compliance row — a visual + quantitative
// tour of the design principles of Section II.
//
//   $ ./topology_explorer [rows cols]
#include <cstdio>
#include <cstdlib>

#include "shg/common/strings.hpp"
#include "shg/common/table.hpp"
#include "shg/topo/generators.hpp"
#include "shg/topo/registry.hpp"
#include "shg/topo/render.hpp"
#include "shg/topo/traits.hpp"

int main(int argc, char** argv) {
  using namespace shg;
  const int rows = argc > 1 ? std::atoi(argv[1]) : 4;
  const int cols = argc > 2 ? std::atoi(argv[2]) : 8;
  if (rows < 2 || cols < 2) {
    std::fprintf(stderr, "usage: %s [rows cols], both >= 2\n", argv[0]);
    return 1;
  }

  std::vector<topo::Topology> topologies =
      topo::established_suite(rows, cols);
  // A couple of sparse Hamming graphs to show the customization axis.
  topologies.push_back(topo::make_sparse_hamming(rows, cols, {2}, {2}));
  if (cols > 3) {
    topologies.push_back(topo::make_sparse_hamming(rows, cols, {2, 3}, {2}));
  }
  topologies.push_back(topo::make_ruche(rows, cols, 3, 2));

  Table table({"topology", "radix", "diameter", "avg hops", "SL", "AL",
               "ULD", "OPP", "min paths", "min used"});
  for (const auto& topology : topologies) {
    std::printf("%s\n", topo::render_ascii(topology).c_str());
    const auto traits = topo::analyze(topology);
    table.add_row({topology.name(), std::to_string(traits.radix),
                   std::to_string(traits.diameter),
                   fmt_double(traits.avg_hops, 2),
                   topo::compliance_symbol(traits.short_links),
                   topo::compliance_symbol(traits.aligned_links),
                   topo::compliance_symbol(traits.uniform_link_density),
                   topo::compliance_symbol(traits.port_placement),
                   traits.minimal_paths_present ? "yes" : "no",
                   traits.minimal_paths_used ? "yes" : "no"});
  }
  std::printf("%s", table.to_string().c_str());
  return 0;
}
