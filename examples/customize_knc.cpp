// Automated NoC customization (Section V-a) for a Knights-Corner-class
// chip: runs the greedy search over sparse-Hamming-graph parameters under
// the 40% area budget, prints the audit trail, and validates the winner
// with the full prediction toolchain against the established topologies.
//
//   $ ./customize_knc [a|b|c|d] [budget%]
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "shg/common/strings.hpp"
#include "shg/customize/search.hpp"
#include "shg/eval/scenario.hpp"
#include "shg/eval/toolchain.hpp"

int main(int argc, char** argv) {
  using namespace shg;
  tech::KncScenario which = tech::KncScenario::kA;
  if (argc > 1) {
    switch (argv[1][0]) {
      case 'a': which = tech::KncScenario::kA; break;
      case 'b': which = tech::KncScenario::kB; break;
      case 'c': which = tech::KncScenario::kC; break;
      case 'd': which = tech::KncScenario::kD; break;
      default:
        std::fprintf(stderr, "usage: %s [a|b|c|d] [budget%%]\n", argv[0]);
        return 1;
    }
  }
  customize::Goal goal;
  if (argc > 2) goal.max_area_overhead = std::atof(argv[2]) / 100.0;

  const eval::Scenario scenario = eval::figure6_scenario(which);
  std::printf("customizing for %s, area budget %.0f%%\n",
              scenario.arch.name.c_str(), 100.0 * goal.max_area_overhead);

  // --- Greedy search (design principles + fast cost model) ---------------
  const customize::SearchResult search =
      customize::customize_greedy(scenario.arch, goal);
  std::printf("\nsearch trail:\n");
  for (const auto& step : search.history) {
    std::printf("  %s\n", step.note.c_str());
  }
  std::printf("\nchosen: SR=%s SC=%s  (paper's choice for this scenario: "
              "SR=%s SC=%s)\n",
              fmt_int_set(search.params.row_skips).c_str(),
              fmt_int_set(search.params.col_skips).c_str(),
              fmt_int_set(scenario.shg.row_skips).c_str(),
              fmt_int_set(scenario.shg.col_skips).c_str());

  // --- Validate with the full toolchain -----------------------------------
  eval::PerfConfig perf = eval::default_perf_config(scenario.arch);
  perf.sim.warmup_cycles = 500;
  perf.sim.measure_cycles = 1500;
  perf.bisection_iterations = 5;

  const auto ours = topo::make_sparse_hamming(
      scenario.arch.rows, scenario.arch.cols, search.params.row_skips,
      search.params.col_skips);
  const auto papers = topo::make_sparse_hamming(
      scenario.arch.rows, scenario.arch.cols, scenario.shg.row_skips,
      scenario.shg.col_skips);
  for (const auto* topology : {&ours, &papers}) {
    const auto prediction = eval::predict(scenario.arch, *topology, perf);
    std::printf("\n%s:\n", topology->name().c_str());
    std::printf("  area overhead %.1f%%  power %.1f W  zero-load %.1f cyc  "
                "saturation %.1f%%\n",
                100.0 * prediction.cost.area_overhead,
                prediction.cost.noc_power_w,
                prediction.perf.zero_load_latency_cycles,
                100.0 * prediction.perf.saturation_throughput);
  }
  return 0;
}
