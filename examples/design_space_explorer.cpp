// Design-space exploration over sparse Hamming graph configurations:
// enumerates SR/SC subsets on a chosen architecture, screens each with the
// fast cost model, prints the Pareto-optimal trade-offs and emits CSV for
// plotting. Demonstrates the "fast exploration of a large design space" the
// prediction toolchain enables (Section IV).
//
//   $ ./design_space_explorer [a|b|c|d] [max_skips_per_dim]
#include <cstdio>
#include <cstdlib>

#include "shg/common/strings.hpp"
#include "shg/common/table.hpp"
#include "shg/customize/explore.hpp"
#include "shg/eval/scenario.hpp"

int main(int argc, char** argv) {
  using namespace shg;
  tech::KncScenario which = tech::KncScenario::kA;
  if (argc > 1) {
    switch (argv[1][0]) {
      case 'a': which = tech::KncScenario::kA; break;
      case 'b': which = tech::KncScenario::kB; break;
      case 'c': which = tech::KncScenario::kC; break;
      case 'd': which = tech::KncScenario::kD; break;
      default:
        std::fprintf(stderr, "usage: %s [a|b|c|d] [max_skips_per_dim]\n",
                     argv[0]);
        return 1;
    }
  }
  customize::ExploreOptions options;
  options.max_row_skips = argc > 2 ? std::atoi(argv[2]) : 2;
  options.max_col_skips = options.max_row_skips;

  const eval::Scenario scenario = eval::figure6_scenario(which);
  std::printf("exploring SHG configurations for %s (<= %d skips/dim)\n",
              scenario.arch.name.c_str(), options.max_row_skips);

  const auto points = customize::explore_shg(scenario.arch, options);
  const auto front = customize::trade_off_front(points);
  std::printf("%zu configurations screened, %zu on the trade-off front\n\n",
              points.size(), front.size());

  Table table({"config", "area ovh", "diam", "avg hops", "thpt bound"});
  for (const auto& point : front) {
    table.add_row({point.label,
                   fmt_double(100.0 * point.metrics.area_overhead, 1) + " %",
                   fmt_double(point.metrics.diameter, 0),
                   fmt_double(point.metrics.avg_hops, 2),
                   fmt_double(point.metrics.throughput_bound, 3)});
  }
  std::printf("%s", table.to_string().c_str());

  std::printf("\nCSV (all screened points):\n");
  std::printf("config,area_overhead,diameter,avg_hops,throughput_bound\n");
  for (const auto& point : points) {
    std::printf("\"%s\",%s,%s,%s,%s\n", point.label.c_str(),
                fmt_double(point.metrics.area_overhead, 4).c_str(),
                fmt_double(point.metrics.diameter, 0).c_str(),
                fmt_double(point.metrics.avg_hops, 3).c_str(),
                fmt_double(point.metrics.throughput_bound, 4).c_str());
  }
  return 0;
}
