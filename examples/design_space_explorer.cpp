// Design-space exploration over sparse Hamming graph configurations:
// enumerates SR/SC subsets on a chosen architecture, screens each with the
// fast cost model, prints the Pareto-optimal trade-offs and emits CSV for
// plotting. Demonstrates the "fast exploration of a large design space" the
// prediction toolchain enables (Section IV).
//
//   $ ./design_space_explorer [a|b|c|d] [max_skips_per_dim] [--refine]
//                             [--session FILE]
//
// --refine demonstrates the persistent-session two-pass refine loop of the
// customization methodology (Section V): pass 1 explores the requested
// space against a session, pass 2 re-explores with the per-dimension bound
// raised by one — the session serves every configuration pass 1 already
// screened from its cache, so pass 2 pays only for the newly reachable
// ones (the hit/miss counters printed after each pass show it).
// --session FILE persists the candidate cache across program runs in the
// checksummed `shg.cache.v1` format: re-running the same exploration is
// warm, and a corrupt or version-mismatched file is discarded with a
// warning (the run degrades to cold screening, results unchanged).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "shg/common/strings.hpp"
#include "shg/common/table.hpp"
#include "shg/customize/explore.hpp"
#include "shg/customize/session.hpp"
#include "shg/eval/scenario.hpp"

namespace {

void print_front(const std::vector<shg::customize::ExploredPoint>& points) {
  using namespace shg;
  const auto front = customize::trade_off_front(points);
  std::printf("%zu configurations screened, %zu on the trade-off front\n\n",
              points.size(), front.size());
  Table table({"config", "area ovh", "diam", "avg hops", "thpt bound"});
  for (const auto& point : front) {
    table.add_row({point.label,
                   fmt_double(100.0 * point.metrics.area_overhead, 1) + " %",
                   fmt_double(point.metrics.diameter, 0),
                   fmt_double(point.metrics.avg_hops, 2),
                   fmt_double(point.metrics.throughput_bound, 3)});
  }
  std::printf("%s", table.to_string().c_str());
}

void print_session_stats(const shg::customize::Session& session,
                         const char* label) {
  const auto& stats = session.stats();
  std::printf(
      "[session] %s: %llu hits, %llu misses, %llu entries cached\n", label,
      static_cast<unsigned long long>(stats.hits),
      static_cast<unsigned long long>(stats.misses),
      static_cast<unsigned long long>(stats.insertions));
}

}  // namespace

int main(int argc, char** argv) {
  using namespace shg;
  tech::KncScenario which = tech::KncScenario::kA;
  int max_skips = 2;
  bool refine = false;
  std::string session_path;
  bool positional_seen = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--refine") == 0) {
      refine = true;
    } else if (std::strcmp(argv[i], "--session") == 0 && i + 1 < argc) {
      session_path = argv[++i];
    } else if (!positional_seen && std::strlen(argv[i]) == 1 &&
               argv[i][0] >= 'a' && argv[i][0] <= 'd') {
      which = static_cast<tech::KncScenario>(argv[i][0] - 'a');
      positional_seen = true;
    } else if (std::atoi(argv[i]) > 0) {
      max_skips = std::atoi(argv[i]);
    } else {
      std::fprintf(stderr,
                   "usage: %s [a|b|c|d] [max_skips_per_dim] [--refine] "
                   "[--session FILE]\n",
                   argv[0]);
      return 1;
    }
  }

  customize::SessionOptions session_options;
  session_options.cache_path = session_path;
  customize::Session session(session_options);

  customize::ExploreOptions options;
  options.max_row_skips = max_skips;
  options.max_col_skips = max_skips;
  options.session = &session;

  const eval::Scenario scenario = eval::figure6_scenario(which);
  std::printf("exploring SHG configurations for %s (<= %d skips/dim)\n",
              scenario.arch.name.c_str(), options.max_row_skips);

  const auto points = customize::explore_shg(scenario.arch, options);
  print_front(points);
  print_session_stats(session, "pass 1");

  if (refine) {
    // Two-pass refine loop: widen the enumeration by one skip per
    // dimension. Every configuration of pass 1 is a prefix of this space,
    // so pass 2 re-screens only the newly reachable ones.
    options.max_row_skips = max_skips + 1;
    options.max_col_skips = max_skips + 1;
    std::printf("\nrefining: re-exploring with <= %d skips/dim\n",
                options.max_row_skips);
    const auto refined = customize::explore_shg(scenario.arch, options);
    print_front(refined);
    print_session_stats(session, "pass 2 (refined)");
    std::printf(
        "\nCSV (all refined points):\n"
        "config,area_overhead,diameter,avg_hops,throughput_bound\n");
    for (const auto& point : refined) {
      std::printf("\"%s\",%s,%s,%s,%s\n", point.label.c_str(),
                  fmt_double(point.metrics.area_overhead, 4).c_str(),
                  fmt_double(point.metrics.diameter, 0).c_str(),
                  fmt_double(point.metrics.avg_hops, 3).c_str(),
                  fmt_double(point.metrics.throughput_bound, 4).c_str());
    }
    return 0;
  }

  std::printf("\nCSV (all screened points):\n");
  std::printf("config,area_overhead,diameter,avg_hops,throughput_bound\n");
  for (const auto& point : points) {
    std::printf("\"%s\",%s,%s,%s,%s\n", point.label.c_str(),
                fmt_double(point.metrics.area_overhead, 4).c_str(),
                fmt_double(point.metrics.diameter, 0).c_str(),
                fmt_double(point.metrics.avg_hops, 3).c_str(),
                fmt_double(point.metrics.throughput_bound, 4).c_str());
  }
  return 0;
}
