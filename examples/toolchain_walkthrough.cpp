// Walkthrough of the five-step NoC model (Section IV-B, Fig. 4/5): prints
// every intermediate artifact — tile sizing, global-routing channel loads,
// spacing estimates, unit-cell discretization and detailed-routing results —
// for one topology on one architecture, then feeds the cost model's link
// latencies into a batched multi-workload, multi-seed experiment (the
// right half of the Fig. 3 toolchain, run through the experiment engine).
//
//   $ ./toolchain_walkthrough
#include <algorithm>
#include <cstdio>

#include "shg/common/strings.hpp"
#include "shg/common/table.hpp"
#include "shg/eval/experiment.hpp"
#include "shg/eval/toolchain.hpp"
#include "shg/model/cost_model.hpp"
#include "shg/phys/global_route.hpp"
#include "shg/tech/presets.hpp"
#include "shg/topo/generators.hpp"

int main() {
  using namespace shg;
  const tech::ArchParams arch = tech::knc_scenario(tech::KncScenario::kA);
  const topo::Topology topology =
      topo::make_sparse_hamming(8, 8, {4}, {2, 5});
  std::printf("architecture: %s\ntopology:     %s\n\n", arch.name.c_str(),
              topology.name().c_str());

  // Step 1: tile area estimate and placement.
  const model::CostReport report = model::evaluate_cost(arch, topology);
  std::printf("step 1 — tile area estimate and placement:\n");
  std::printf("  router area A_R = f_AR(m,s,B) = %.2f MGE\n",
              report.router_area_ge / 1e6);
  std::printf("  tile area  A_T = A_E + A_R   = %.2f MGE\n",
              report.tile_area_ge / 1e6);
  std::printf("  tile size  W_T x H_T = %.3f x %.3f mm\n\n",
              report.tile_w_mm, report.tile_h_mm);

  // Step 2: global routing in the grid of tiles.
  const phys::GlobalRoutingResult global = phys::global_route(topology);
  std::printf("step 2 — global routing channel loads (NL per channel):\n  ");
  std::printf("horizontal:");
  for (int i = 0; i <= topology.rows(); ++i) {
    std::printf(" %d", global.max_h_load(i));
  }
  std::printf("   vertical:");
  for (int j = 0; j <= topology.cols(); ++j) {
    std::printf(" %d", global.max_v_load(j));
  }
  int straight = 0;
  int l_shaped = 0;
  for (const auto& route : global.routes) {
    if (route.straight) ++straight;
    if (route.spans.size() == 2) ++l_shaped;
  }
  std::printf("\n  %d unit links cross channels directly, %d L-shaped "
              "routes\n\n",
              straight, l_shaped);

  // Step 3: spacing between rows and columns.
  const double wires = arch.wires_per_link();
  std::printf("step 3 — spacing: one link needs %.0f wires;\n", wires);
  std::printf("  peak loads: %d horizontal / %d vertical parallel links\n",
              report.peak_h_channel_load, report.peak_v_channel_load);
  std::printf("  widest channels: %.1f um horizontal, %.1f um vertical\n\n",
              1e3 * arch.tech.wires.h_wires_to_mm(
                        report.peak_h_channel_load * wires),
              1e3 * arch.tech.wires.v_wires_to_mm(
                        report.peak_v_channel_load * wires));

  // Step 4: unit cells.
  std::printf("step 4 — unit cells: W_C x H_C = %.2f x %.2f um, chip "
              "%.2f x %.2f mm\n\n",
              1e3 * report.cell_w_mm, 1e3 * report.cell_h_mm,
              report.chip_width_mm, report.chip_height_mm);

  // Step 5: detailed routing.
  std::printf("step 5 — detailed routing: %lld H-cells, %lld V-cells, "
              "%lld collision cells\n\n",
              report.h_cells, report.v_cells, report.collision_cells);

  // Outputs.
  std::printf("outputs:\n");
  std::printf("  area:  total %.1f mm^2, no-NoC %.1f mm^2, overhead %.1f%%\n",
              report.total_area_mm2, report.base_area_mm2,
              100.0 * report.area_overhead);
  std::printf("  power: total %.2f W = base %.2f + routers %.2f + wires "
              "%.2f\n",
              report.total_power_w, report.base_power_w,
              report.router_power_w, report.wire_power_w);
  std::printf("  link latency: avg %.2f cycles, max %.2f cycles\n",
              report.avg_link_latency_cycles, report.max_link_latency_cycles);
  const auto longest = std::max_element(
      report.links.begin(), report.links.end(),
      [](const model::LinkCost& a, const model::LinkCost& b) {
        return a.length_mm < b.length_mm;
      });
  std::printf("  longest link: %.2f mm -> %d pipeline stages\n",
              longest->length_mm, longest->latency_cycles);

  // Step 6: performance under declarative workloads. The cost model's
  // per-link latencies drive the cycle-accurate simulator through the
  // experiment engine: workloads x rates x seeds in one batched run, the
  // route table built once, seed replicas aggregated to mean +- stddev.
  eval::ExperimentSpec spec;
  spec.name = "toolchain-walkthrough";
  spec.config = eval::default_perf_config(arch);
  spec.config.sim.warmup_cycles = 300;
  spec.config.sim.measure_cycles = 1000;
  spec.config.sim.drain_cycles = 15000;
  spec.endpoints_per_tile = arch.endpoints_per_tile;
  spec.topologies.push_back(
      eval::TopologyCase{topology, report.link_latencies(), ""});
  for (const char* workload :
       {"uniform", "transpose", "hotspot:0,7:0.2", "uniform/onoff:0.05,0.2"}) {
    spec.traffic.push_back(eval::TrafficCase{workload, nullptr, ""});
  }
  spec.rates = {0.05, 0.15, 0.30};
  spec.seeds = {1, 2, 3};
  const eval::ExperimentReport experiment = eval::run_experiment(spec);

  std::printf("\nstep 6 — workload experiment (%zu sims: %zu workloads x "
              "%zu rates x %zu seeds, batched):\n",
              spec.traffic.size() * spec.rates.size() * spec.seeds.size(),
              spec.traffic.size(), spec.rates.size(), spec.seeds.size());
  Table table({"workload", "rate", "accepted", "avg lat +- sd", "p99",
               "drained"});
  for (const auto& point : experiment.points) {
    table.add_row({point.traffic, fmt_double(point.offered_rate, 2),
                   fmt_double(point.accepted_rate.mean, 3),
                   fmt_double(point.avg_latency.mean, 1) + " +- " +
                       fmt_double(point.avg_latency.stddev, 1),
                   fmt_double(point.p99_latency.mean, 1),
                   point.all_drained ? "yes" : "no"});
  }
  std::printf("%s", table.to_string().c_str());
  return 0;
}
