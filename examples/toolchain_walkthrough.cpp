// Walkthrough of the five-step NoC model (Section IV-B, Fig. 4/5): prints
// every intermediate artifact — tile sizing, global-routing channel loads,
// spacing estimates, unit-cell discretization and detailed-routing results —
// for one topology on one architecture.
//
//   $ ./toolchain_walkthrough
#include <algorithm>
#include <cstdio>

#include "shg/model/cost_model.hpp"
#include "shg/phys/global_route.hpp"
#include "shg/tech/presets.hpp"
#include "shg/topo/generators.hpp"

int main() {
  using namespace shg;
  const tech::ArchParams arch = tech::knc_scenario(tech::KncScenario::kA);
  const topo::Topology topology =
      topo::make_sparse_hamming(8, 8, {4}, {2, 5});
  std::printf("architecture: %s\ntopology:     %s\n\n", arch.name.c_str(),
              topology.name().c_str());

  // Step 1: tile area estimate and placement.
  const model::CostReport report = model::evaluate_cost(arch, topology);
  std::printf("step 1 — tile area estimate and placement:\n");
  std::printf("  router area A_R = f_AR(m,s,B) = %.2f MGE\n",
              report.router_area_ge / 1e6);
  std::printf("  tile area  A_T = A_E + A_R   = %.2f MGE\n",
              report.tile_area_ge / 1e6);
  std::printf("  tile size  W_T x H_T = %.3f x %.3f mm\n\n",
              report.tile_w_mm, report.tile_h_mm);

  // Step 2: global routing in the grid of tiles.
  const phys::GlobalRoutingResult global = phys::global_route(topology);
  std::printf("step 2 — global routing channel loads (NL per channel):\n  ");
  std::printf("horizontal:");
  for (int i = 0; i <= topology.rows(); ++i) {
    std::printf(" %d", global.max_h_load(i));
  }
  std::printf("   vertical:");
  for (int j = 0; j <= topology.cols(); ++j) {
    std::printf(" %d", global.max_v_load(j));
  }
  int straight = 0;
  int l_shaped = 0;
  for (const auto& route : global.routes) {
    if (route.straight) ++straight;
    if (route.spans.size() == 2) ++l_shaped;
  }
  std::printf("\n  %d unit links cross channels directly, %d L-shaped "
              "routes\n\n",
              straight, l_shaped);

  // Step 3: spacing between rows and columns.
  const double wires = arch.wires_per_link();
  std::printf("step 3 — spacing: one link needs %.0f wires;\n", wires);
  std::printf("  peak loads: %d horizontal / %d vertical parallel links\n",
              report.peak_h_channel_load, report.peak_v_channel_load);
  std::printf("  widest channels: %.1f um horizontal, %.1f um vertical\n\n",
              1e3 * arch.tech.wires.h_wires_to_mm(
                        report.peak_h_channel_load * wires),
              1e3 * arch.tech.wires.v_wires_to_mm(
                        report.peak_v_channel_load * wires));

  // Step 4: unit cells.
  std::printf("step 4 — unit cells: W_C x H_C = %.2f x %.2f um, chip "
              "%.2f x %.2f mm\n\n",
              1e3 * report.cell_w_mm, 1e3 * report.cell_h_mm,
              report.chip_width_mm, report.chip_height_mm);

  // Step 5: detailed routing.
  std::printf("step 5 — detailed routing: %lld H-cells, %lld V-cells, "
              "%lld collision cells\n\n",
              report.h_cells, report.v_cells, report.collision_cells);

  // Outputs.
  std::printf("outputs:\n");
  std::printf("  area:  total %.1f mm^2, no-NoC %.1f mm^2, overhead %.1f%%\n",
              report.total_area_mm2, report.base_area_mm2,
              100.0 * report.area_overhead);
  std::printf("  power: total %.2f W = base %.2f + routers %.2f + wires "
              "%.2f\n",
              report.total_power_w, report.base_power_w,
              report.router_power_w, report.wire_power_w);
  std::printf("  link latency: avg %.2f cycles, max %.2f cycles\n",
              report.avg_link_latency_cycles, report.max_link_latency_cycles);
  const auto longest = std::max_element(
      report.links.begin(), report.links.end(),
      [](const model::LinkCost& a, const model::LinkCost& b) {
        return a.length_mm < b.length_mm;
      });
  std::printf("  longest link: %.2f mm -> %d pipeline stages\n",
              longest->length_mm, longest->latency_cycles);
  return 0;
}
