// Resident customization server: one long-lived process holding a warm
// sharded Session, serving line-delimited JSON requests over stdio, TCP
// or a unix-domain socket (src/shg/serve/). Repeated screens, searches
// and experiment campaigns against the same process reuse every tier —
// a warm request runs zero BFS sweeps and zero simulations.
//
//   $ ./shg_server --stdio                      # pipe mode
//   $ ./shg_server --unix /tmp/shg.sock         # socket servers announce
//   $ ./shg_server --tcp 0 --workers 4          # "listening on ..." when up
//
// Protocol, one JSON object per line (see src/shg/serve/service.hpp and
// the README "Serving" section for the full grammar):
//
//   {"op":"ping","id":1}
//   {"op":"screen","id":2,"scenario":"a","row_skips":[4],"col_skips":[2,5]}
//   {"op":"customize","id":3,"scenario":"b","max_area_overhead":0.3}
//   {"op":"experiment","id":4,"grid":"6x6","seeds":2,"smoke":true}
//   {"op":"shutdown"}
//
// Responses carry the request id, per-op timing and tier hit/miss
// counters; malformed lines get {"ok":false,...} replies and never kill
// the process. Drive it with example_shg_client.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "shg/common/log.hpp"
#include "shg/serve/server.hpp"

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: shg_server [--stdio | --tcp PORT | --unix PATH]\n"
               "                  [--workers N]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  enum class Mode { kStdio, kTcp, kUnix } mode = Mode::kStdio;
  int port = 0;
  std::string unix_path;
  shg::serve::ServerOptions options;

  for (int i = 1; i < argc; ++i) {
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (std::strcmp(argv[i], "--stdio") == 0) {
      mode = Mode::kStdio;
    } else if (std::strcmp(argv[i], "--tcp") == 0) {
      const char* v = next();
      if (v == nullptr) return usage();
      mode = Mode::kTcp;
      port = std::atoi(v);
    } else if (std::strcmp(argv[i], "--unix") == 0) {
      const char* v = next();
      if (v == nullptr) return usage();
      mode = Mode::kUnix;
      unix_path = v;
    } else if (std::strcmp(argv[i], "--workers") == 0) {
      const char* v = next();
      if (v == nullptr || std::atoi(v) < 1) return usage();
      options.workers = std::atoi(v);
    } else {
      return usage();
    }
  }

  // A client that disconnects mid-response must not kill the server.
  std::signal(SIGPIPE, SIG_IGN);

  // Tag library warnings (cache-file discards etc.) with the id of the
  // request being served when they were emitted.
  shg::log::set_sink([](const std::string& context, const std::string& line) {
    if (context.empty()) {
      std::fputs(line.c_str(), stderr);
    } else {
      std::fprintf(stderr, "[%s] %s", context.c_str(), line.c_str());
    }
  });

  shg::serve::Server server(options);
  switch (mode) {
    case Mode::kTcp:
      return server.serve_tcp(port);
    case Mode::kUnix:
      return server.serve_unix(unix_path);
    case Mode::kStdio:
      break;
  }
  return server.serve_stdio();
}
