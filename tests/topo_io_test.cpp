// Tests for topology serialization: edge-list round trips and BookSim2
// anynet export.
#include <gtest/gtest.h>

#include "shg/graph/shortest_paths.hpp"
#include "shg/topo/generators.hpp"
#include "shg/topo/io.hpp"

namespace shg::topo {
namespace {

TEST(EdgeList, RoundTripPreservesStructure) {
  for (const auto& original :
       {make_mesh(4, 6), make_sparse_hamming(5, 5, {2, 3}, {2}),
        make_slim_noc(5, 10)}) {
    const std::string text = to_edge_list(original);
    const Topology parsed = from_edge_list(text);
    EXPECT_EQ(parsed.rows(), original.rows());
    EXPECT_EQ(parsed.cols(), original.cols());
    EXPECT_EQ(parsed.name(), original.name());
    EXPECT_EQ(parsed.graph().num_edges(), original.graph().num_edges());
    for (const auto& edge : original.graph().edges()) {
      EXPECT_TRUE(parsed.graph().has_edge(edge.u, edge.v));
    }
    EXPECT_EQ(graph::diameter(parsed.graph()),
              graph::diameter(original.graph()));
  }
}

TEST(EdgeList, ParsedKindIsCustom) {
  const Topology parsed = from_edge_list(to_edge_list(make_mesh(3, 3)));
  EXPECT_EQ(parsed.kind(), Kind::kCustom);
}

TEST(EdgeList, RejectsMalformedInput) {
  EXPECT_THROW(from_edge_list("not a topology"), Error);
  EXPECT_THROW(from_edge_list("shg-topology v1\nname x\n"), Error);
  EXPECT_THROW(from_edge_list("shg-topology v1\ngrid 2 2\nfrobnicate 1\n"),
               Error);
  EXPECT_THROW(from_edge_list("shg-topology v1\ngrid 2 2\nlink 0 0\n"),
               Error);
  // Link outside the grid.
  EXPECT_THROW(from_edge_list("shg-topology v1\ngrid 2 2\nlink 0 0 5 5\n"),
               Error);
}

TEST(Anynet, OneLinePerRouter) {
  const Topology topo = make_mesh(2, 3);
  const std::string anynet = to_booksim_anynet(topo);
  int router_lines = 0;
  std::istringstream is(anynet);
  std::string line;
  while (std::getline(is, line)) {
    if (line.rfind("router ", 0) == 0) ++router_lines;
  }
  EXPECT_EQ(router_lines, 6);
  // Every router line names itself and its node.
  EXPECT_NE(anynet.find("router 0 node 0"), std::string::npos);
  EXPECT_NE(anynet.find("router 5 node 5"), std::string::npos);
}

TEST(Anynet, IncludesLatenciesWhenGiven) {
  const Topology topo = make_mesh(2, 2);
  const std::vector<int> latencies = {7, 8, 9, 6};
  const std::string anynet = to_booksim_anynet(topo, latencies);
  EXPECT_NE(anynet.find(" 7"), std::string::npos);
  EXPECT_THROW(to_booksim_anynet(topo, {1, 2}), Error);
}

TEST(Anynet, MentionsEveryAdjacency) {
  const Topology topo = make_ring(2, 4);
  const std::string anynet = to_booksim_anynet(topo);
  // Node 0's two ring neighbors must appear on router 0's line.
  std::istringstream is(anynet);
  std::string line;
  std::string router0;
  while (std::getline(is, line)) {
    if (line.rfind("router 0 ", 0) == 0) router0 = line;
  }
  ASSERT_FALSE(router0.empty());
  int mentions = 0;
  for (const auto& n : topo.graph().neighbors(0)) {
    if (router0.find("router " + std::to_string(n.node)) !=
        std::string::npos) {
      ++mentions;
    }
  }
  EXPECT_EQ(mentions, 2);
}

}  // namespace
}  // namespace shg::topo
