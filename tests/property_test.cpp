// Parameterized property tests: structural and behavioural invariants swept
// across grid shapes, topology families and random SHG parameterizations.
#include <gtest/gtest.h>

#include "shg/common/prng.hpp"
#include "shg/graph/shortest_paths.hpp"
#include "shg/model/cost_model.hpp"
#include "shg/sim/routing.hpp"
#include "shg/tech/presets.hpp"
#include "shg/topo/generators.hpp"
#include "shg/topo/registry.hpp"
#include "shg/topo/traits.hpp"

namespace shg {
namespace {

using GridShape = std::pair<int, int>;

// ---------------------------------------------------------------------------
// Generator invariants across grid shapes
// ---------------------------------------------------------------------------

class GeneratorProperties : public ::testing::TestWithParam<GridShape> {};

TEST_P(GeneratorProperties, AllFamiliesConnectedWithConsistentCounts) {
  const auto [rows, cols] = GetParam();
  for (topo::Kind kind : topo::table1_families()) {
    const auto built = topo::try_make(kind, rows, cols,
                                      topo::ShgParams{{2}, {2}});
    if (!built.has_value()) continue;
    EXPECT_TRUE(graph::is_connected(built->graph())) << built->name();
    EXPECT_EQ(built->num_tiles(), rows * cols);
    EXPECT_GE(built->radix(), 2) << built->name();
    // Handshake: degree sum equals twice the link count.
    long long degree_sum = 0;
    for (graph::NodeId u = 0; u < built->num_tiles(); ++u) {
      degree_sum += built->graph().degree(u);
    }
    EXPECT_EQ(degree_sum, 2LL * built->graph().num_edges()) << built->name();
  }
}

TEST_P(GeneratorProperties, DiameterFormulasFromTableI) {
  const auto [rows, cols] = GetParam();
  EXPECT_EQ(graph::diameter(topo::make_mesh(rows, cols).graph()),
            rows + cols - 2);
  if (rows > 2 && cols > 2) {
    EXPECT_EQ(graph::diameter(topo::make_torus(rows, cols).graph()),
              rows / 2 + cols / 2);
  }
  EXPECT_EQ(graph::diameter(
                topo::make_flattened_butterfly(rows, cols).graph()),
            2);
  if (rows * cols % 2 == 0 && rows >= 2 && cols >= 2) {
    EXPECT_EQ(graph::diameter(topo::make_ring(rows, cols).graph()),
              rows * cols / 2);
  }
}

TEST_P(GeneratorProperties, ShgInterpolatesMeshAndFb) {
  const auto [rows, cols] = GetParam();
  const int mesh_links = topo::make_mesh(rows, cols).graph().num_edges();
  const int fb_links =
      topo::make_flattened_butterfly(rows, cols).graph().num_edges();
  const int shg_links =
      topo::make_sparse_hamming(rows, cols, {2}, {2}).graph().num_edges();
  EXPECT_GT(shg_links, mesh_links);
  EXPECT_LT(shg_links, fb_links);
}

INSTANTIATE_TEST_SUITE_P(Grids, GeneratorProperties,
                         ::testing::Values(GridShape{4, 4}, GridShape{4, 6},
                                           GridShape{6, 6}, GridShape{8, 8},
                                           GridShape{4, 8}, GridShape{8, 16},
                                           GridShape{6, 10}));

// ---------------------------------------------------------------------------
// Random SHG parameterizations (fixed-seed fuzz)
// ---------------------------------------------------------------------------

class ShgRandomConfig : public ::testing::TestWithParam<int> {};

TEST_P(ShgRandomConfig, MonotoneUnderSkipAddition) {
  Prng rng(static_cast<std::uint64_t>(GetParam()));
  const int rows = 6 + static_cast<int>(rng.below(3));
  const int cols = 6 + static_cast<int>(rng.below(5));
  std::set<int> sr;
  std::set<int> sc;
  for (int i = 0; i < 3; ++i) {
    sr.insert(rng.range(2, cols - 1));
    sc.insert(rng.range(2, rows - 1));
  }
  const auto base = topo::make_sparse_hamming(rows, cols, sr, sc);
  // Adding one more skip distance never hurts diameter or average hops and
  // never removes links.
  std::set<int> sr_more = sr;
  for (int x = 2; x < cols; ++x) {
    if (sr.count(x) == 0) {
      sr_more.insert(x);
      break;
    }
  }
  const auto more = topo::make_sparse_hamming(rows, cols, sr_more, sc);
  EXPECT_GE(more.graph().num_edges(), base.graph().num_edges());
  EXPECT_LE(graph::diameter(more.graph()), graph::diameter(base.graph()));
  EXPECT_LE(graph::average_hops(more.graph()),
            graph::average_hops(base.graph()) + 1e-12);
}

TEST_P(ShgRandomConfig, TraitsInvariants) {
  Prng rng(static_cast<std::uint64_t>(GetParam()) * 977);
  const int rows = 5 + static_cast<int>(rng.below(4));
  const int cols = 5 + static_cast<int>(rng.below(4));
  std::set<int> sr;
  std::set<int> sc;
  if (rng.chance(0.8)) sr.insert(rng.range(2, cols - 1));
  if (rng.chance(0.8)) sc.insert(rng.range(2, rows - 1));
  const auto topo = topo::make_sparse_hamming(rows, cols, sr, sc);
  const auto traits = topo::analyze(topo);
  // Always true for SHG (Table I): aligned links, optimal port placement,
  // physically minimal paths present (mesh sub-topology).
  EXPECT_EQ(traits.aligned_links, topo::Compliance::kYes);
  EXPECT_EQ(traits.port_placement, topo::Compliance::kYes);
  EXPECT_TRUE(traits.minimal_paths_present);
  EXPECT_GE(traits.diameter, 2);
  EXPECT_LE(traits.diameter, rows + cols - 2);
  EXPECT_GE(traits.radix, 4);
  EXPECT_LE(traits.radix, rows + cols - 2);
  EXPECT_LE(traits.avg_hops, traits.diameter);
}

TEST_P(ShgRandomConfig, RoutingDeliversOnRandomShg) {
  Prng rng(static_cast<std::uint64_t>(GetParam()) * 31337);
  const int rows = 5 + static_cast<int>(rng.below(3));
  const int cols = 5 + static_cast<int>(rng.below(3));
  std::set<int> sr;
  std::set<int> sc;
  if (rng.chance(0.7)) sr.insert(rng.range(2, cols - 1));
  if (rng.chance(0.7)) sc.insert(rng.range(2, rows - 1));
  const auto topo = topo::make_sparse_hamming(rows, cols, sr, sc);
  const auto routing = sim::make_xy_hamming_routing(topo, 4);
  // Sampled pairs: follow first candidates to the destination.
  for (int trial = 0; trial < 60; ++trial) {
    const int src = static_cast<int>(rng.below(
        static_cast<std::uint64_t>(topo.num_tiles())));
    const int dest = static_cast<int>(rng.below(
        static_cast<std::uint64_t>(topo.num_tiles())));
    if (src == dest) continue;
    int node = src;
    int from = -1;
    int in_vc = -1;
    int steps = 0;
    while (node != dest) {
      int in_port = -1;
      if (from >= 0) {
        const auto& nbrs = topo.graph().neighbors(node);
        for (std::size_t i = 0; i < nbrs.size(); ++i) {
          if (nbrs[i].node == from) in_port = static_cast<int>(i);
        }
      }
      const auto candidates = routing->route(node, in_port, in_vc, dest);
      ASSERT_FALSE(candidates.empty());
      from = node;
      node = topo.graph()
                 .neighbors(node)[static_cast<std::size_t>(
                     candidates.front().out_port)]
                 .node;
      in_vc = candidates.front().vc_begin;
      ASSERT_LE(++steps, topo.num_tiles());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ShgRandomConfig, ::testing::Range(1, 13));

// ---------------------------------------------------------------------------
// Cost model invariants across scenarios and families
// ---------------------------------------------------------------------------

class CostModelProperties
    : public ::testing::TestWithParam<tech::KncScenario> {};

TEST_P(CostModelProperties, EverySuiteTopologySatisfiesInvariants) {
  const auto arch = tech::knc_scenario(GetParam());
  for (const auto& topology :
       topo::established_suite(arch.rows, arch.cols)) {
    const auto report = model::evaluate_cost(arch, topology);
    EXPECT_GT(report.area_overhead, 0.0) << topology.name();
    EXPECT_LT(report.area_overhead, 1.0) << topology.name();
    EXPECT_GT(report.noc_power_w, 0.0) << topology.name();
    EXPECT_NEAR(report.total_area_mm2,
                report.base_area_mm2 + report.noc_area_mm2, 1e-9);
    // Epsilon: on rings all links are identical and the accumulated mean
    // can exceed the max by an ulp.
    EXPECT_GE(report.max_link_latency_cycles,
              report.avg_link_latency_cycles - 1e-9);
    for (const auto& link : report.links) {
      EXPECT_GE(link.latency_cycles, 1) << topology.name();
      EXPECT_GT(link.length_mm, 0.0) << topology.name();
    }
    // The chip must physically contain all tiles.
    EXPECT_GE(report.chip_width_mm, arch.cols * report.tile_w_mm - 1e-9);
    EXPECT_GE(report.chip_height_mm, arch.rows * report.tile_h_mm - 1e-9);
  }
}

TEST_P(CostModelProperties, RingIsAlwaysCheapestMeshSecond) {
  const auto arch = tech::knc_scenario(GetParam());
  const auto suite = topo::established_suite(arch.rows, arch.cols);
  // Suite order: ring, mesh, ... — design principle #1: the two lowest-radix
  // short-link topologies must be the two cheapest of the whole suite.
  const double ring_overhead =
      model::evaluate_cost(arch, suite[0]).area_overhead;
  const double mesh_overhead =
      model::evaluate_cost(arch, suite[1]).area_overhead;
  for (std::size_t i = 2; i < suite.size(); ++i) {
    const double overhead =
        model::evaluate_cost(arch, suite[i]).area_overhead;
    EXPECT_GT(overhead, ring_overhead) << suite[i].name();
    EXPECT_GT(overhead, mesh_overhead) << suite[i].name();
  }
}

INSTANTIATE_TEST_SUITE_P(Scenarios, CostModelProperties,
                         ::testing::Values(tech::KncScenario::kA,
                                           tech::KncScenario::kB,
                                           tech::KncScenario::kC,
                                           tech::KncScenario::kD));

}  // namespace
}  // namespace shg
