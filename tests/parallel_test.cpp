// Tests for the parallel_for contract and the determinism guarantee of the
// parallelized DSE screening / exploration / load sweeps: serial (1 worker)
// and parallel executions must produce identical results.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <numeric>
#include <thread>
#include <vector>

#include "shg/common/parallel.hpp"
#include "shg/customize/explore.hpp"
#include "shg/customize/search.hpp"
#include "shg/eval/sweep.hpp"
#include "shg/tech/presets.hpp"
#include "shg/topo/generators.hpp"

namespace shg {
namespace {

/// Restores the global thread cap on scope exit so tests do not leak their
/// setting into each other.
class ThreadCapGuard {
 public:
  explicit ThreadCapGuard(int cap) { set_max_threads(cap); }
  ~ThreadCapGuard() { set_max_threads(0); }
};

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  ThreadCapGuard guard(4);
  constexpr std::size_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  parallel_for(kN, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelFor, HandlesZeroAndOneTask) {
  ThreadCapGuard guard(4);
  int calls = 0;
  parallel_for(0, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  parallel_for(1, [&](std::size_t i) {
    EXPECT_EQ(i, 0u);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(ParallelFor, RethrowsTaskException) {
  ThreadCapGuard guard(4);
  EXPECT_THROW(parallel_for(64,
                            [](std::size_t i) {
                              if (i == 7) throw Error("task failure");
                            }),
               Error);
}

TEST(ParallelFor, ResultsIndependentOfWorkerCount) {
  std::vector<double> serial(257), parallel(257);
  {
    ThreadCapGuard guard(1);
    parallel_for(serial.size(), [&](std::size_t i) {
      serial[i] = static_cast<double>(i) * 1.5 + 1.0;
    });
  }
  {
    ThreadCapGuard guard(8);
    parallel_for(parallel.size(), [&](std::size_t i) {
      parallel[i] = static_cast<double>(i) * 1.5 + 1.0;
    });
  }
  EXPECT_EQ(serial, parallel);
}

TEST(ParallelDeterminism, GreedyDseIdenticalSerialVsParallel) {
  const tech::ArchParams arch = tech::knc_scenario(tech::KncScenario::kA);
  const customize::Goal goal{0.30};
  customize::SearchResult serial, parallel;
  {
    ThreadCapGuard guard(1);
    serial = customize::customize_greedy(arch, goal);
  }
  {
    ThreadCapGuard guard(8);
    parallel = customize::customize_greedy(arch, goal);
  }
  EXPECT_EQ(serial.params, parallel.params);
  EXPECT_EQ(serial.metrics.area_overhead, parallel.metrics.area_overhead);
  EXPECT_EQ(serial.metrics.avg_hops, parallel.metrics.avg_hops);
  EXPECT_EQ(serial.metrics.throughput_bound,
            parallel.metrics.throughput_bound);
  ASSERT_EQ(serial.history.size(), parallel.history.size());
  for (std::size_t i = 0; i < serial.history.size(); ++i) {
    EXPECT_EQ(serial.history[i].params, parallel.history[i].params);
    EXPECT_EQ(serial.history[i].note, parallel.history[i].note);
  }
}

TEST(ParallelDeterminism, ExploreIdenticalSerialVsParallel) {
  const tech::ArchParams arch = tech::knc_scenario(tech::KncScenario::kA);
  customize::ExploreOptions options;
  options.max_row_skips = 1;
  options.max_col_skips = 1;
  std::vector<customize::ExploredPoint> serial, parallel;
  {
    ThreadCapGuard guard(1);
    serial = customize::explore_shg(arch, options);
  }
  {
    ThreadCapGuard guard(8);
    parallel = customize::explore_shg(arch, options);
  }
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].params, parallel[i].params);
    EXPECT_EQ(serial[i].label, parallel[i].label);
    EXPECT_EQ(serial[i].metrics.area_overhead,
              parallel[i].metrics.area_overhead);
    EXPECT_EQ(serial[i].metrics.throughput_bound,
              parallel[i].metrics.throughput_bound);
  }
}

TEST(ParallelDeterminism, LoadSweepIdenticalSerialVsParallel) {
  const auto topo = topo::make_mesh(4, 4);
  const std::vector<int> latencies(
      static_cast<std::size_t>(topo.graph().num_edges()), 1);
  const auto pattern = sim::make_uniform(topo.num_tiles());
  eval::PerfConfig config;
  config.sim.warmup_cycles = 200;
  config.sim.measure_cycles = 600;
  const std::vector<double> rates = {0.02, 0.05, 0.10, 0.15};

  eval::LoadLatencyCurve serial, parallel;
  {
    ThreadCapGuard guard(1);
    serial = eval::sweep_load_latency(topo, latencies, 1, *pattern, config,
                                      rates, "serial");
  }
  {
    ThreadCapGuard guard(8);
    parallel = eval::sweep_load_latency(topo, latencies, 1, *pattern, config,
                                        rates, "parallel");
  }
  ASSERT_EQ(serial.points.size(), parallel.points.size());
  for (std::size_t i = 0; i < serial.points.size(); ++i) {
    EXPECT_EQ(serial.points[i].offered_rate, parallel.points[i].offered_rate);
    EXPECT_EQ(serial.points[i].accepted_rate,
              parallel.points[i].accepted_rate);
    EXPECT_EQ(serial.points[i].avg_latency, parallel.points[i].avg_latency);
    EXPECT_EQ(serial.points[i].p99_latency, parallel.points[i].p99_latency);
    EXPECT_EQ(serial.points[i].drained, parallel.points[i].drained);
  }
}

TEST(WorkerPool, ExecutesEveryTaskExactlyOnce) {
  constexpr int kTasks = 500;
  std::vector<std::atomic<int>> ran(kTasks);
  for (auto& r : ran) r.store(0);
  {
    WorkerPool pool(4);
    for (int i = 0; i < kTasks; ++i) {
      pool.submit([&ran, i] { ran[static_cast<std::size_t>(i)].fetch_add(1); });
    }
    pool.drain();
    for (int i = 0; i < kTasks; ++i) {
      EXPECT_EQ(ran[static_cast<std::size_t>(i)].load(), 1) << "task " << i;
    }
  }
}

TEST(WorkerPool, DestructorDrainsOutstandingTasks) {
  std::atomic<int> ran{0};
  {
    WorkerPool pool(2);
    for (int i = 0; i < 100; ++i) {
      pool.submit([&ran] {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        ran.fetch_add(1);
      });
    }
    // No drain: the destructor must finish the queue before joining.
  }
  EXPECT_EQ(ran.load(), 100);
}

TEST(WorkerPool, TaskExceptionIsContainedAndReported) {
  std::mutex mutex;
  std::vector<std::string> errors;
  std::atomic<int> ran{0};
  WorkerPool pool(2);
  pool.set_error_handler([&](std::exception_ptr error) {
    try {
      std::rethrow_exception(error);
    } catch (const std::exception& e) {
      const std::lock_guard<std::mutex> lock(mutex);
      errors.push_back(e.what());
    }
  });
  pool.submit([] { throw Error("request gone wrong"); });
  for (int i = 0; i < 10; ++i) {
    pool.submit([&ran] { ran.fetch_add(1); });
  }
  pool.drain();
  // The pool survived the throw and kept serving.
  EXPECT_EQ(ran.load(), 10);
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_NE(errors[0].find("request gone wrong"), std::string::npos);
}

TEST(WorkerPool, DrainAllowsFurtherSubmissions) {
  WorkerPool pool(3);
  std::atomic<int> ran{0};
  pool.submit([&ran] { ran.fetch_add(1); });
  pool.drain();
  EXPECT_EQ(ran.load(), 1);
  pool.submit([&ran] { ran.fetch_add(1); });
  pool.drain();
  EXPECT_EQ(ran.load(), 2);
}

TEST(WorkerPool, RejectsNullTask) {
  WorkerPool pool(1);
  EXPECT_THROW(pool.submit(nullptr), Error);
}

}  // namespace
}  // namespace shg
