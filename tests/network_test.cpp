// Network-assembly tests: wiring, interface wormhole continuity, in-flight
// accounting.
#include <gtest/gtest.h>

#include "shg/sim/network.hpp"
#include "shg/sim/routing.hpp"
#include "shg/topo/generators.hpp"

namespace shg::sim {
namespace {

SimConfig tiny_config() {
  SimConfig config;
  config.num_vcs = 2;
  config.buffer_depth_flits = 4;
  config.packet_size_flits = 2;
  return config;
}

std::vector<Flit> packet(int id, int src, int dest, int size) {
  std::vector<Flit> flits(static_cast<std::size_t>(size));
  for (int f = 0; f < size; ++f) {
    flits[static_cast<std::size_t>(f)].packet_id = id;
    flits[static_cast<std::size_t>(f)].src = src;
    flits[static_cast<std::size_t>(f)].dest = dest;
    flits[static_cast<std::size_t>(f)].head = f == 0;
    flits[static_cast<std::size_t>(f)].tail = f == size - 1;
  }
  return flits;
}

TEST(Network, DeliversAcrossTheMesh) {
  const auto topo = topo::make_mesh(3, 3);
  const SimConfig config = tiny_config();
  const auto routing = make_default_routing(topo, config.num_vcs);
  Network net(topo, std::vector<int>(12, 1), config, routing.get(), 1);
  net.interface(0).enqueue_packet(0, packet(0, 0, 8, 2));
  EXPECT_GT(net.flits_in_flight(), 0);
  bool arrived = false;
  for (Cycle now = 0; now < 50 && !arrived; ++now) {
    net.step(now);
    for (const Flit& flit : net.router(8).ejected()) {
      EXPECT_EQ(flit.dest, 8);
      EXPECT_EQ(flit.src, 0);
      if (flit.tail) arrived = true;
    }
    net.router(8).ejected().clear();
  }
  EXPECT_TRUE(arrived);
  EXPECT_EQ(net.flits_in_flight(), 0);
}

TEST(Network, RequiresMatchingLatencyCount) {
  const auto topo = topo::make_mesh(3, 3);
  const SimConfig config = tiny_config();
  const auto routing = make_default_routing(topo, config.num_vcs);
  EXPECT_THROW(Network(topo, std::vector<int>(5, 1), config, routing.get(), 1),
               Error);
  EXPECT_THROW(Network(topo, std::vector<int>(12, 1), config, routing.get(),
                       0),
               Error);
}

TEST(NetworkInterface, WormholeContinuityAcrossFullBuffers) {
  // A packet's body flits must continue on the head's VC even when other
  // VCs are free, and the interface must stall rather than interleave.
  const auto topo = topo::make_mesh(1, 2);
  SimConfig config = tiny_config();
  config.packet_size_flits = 6;  // longer than the 4-deep buffer
  const auto routing = make_default_routing(topo, config.num_vcs);
  Network net(topo, std::vector<int>(1, 1), config, routing.get(), 1);
  net.interface(0).enqueue_packet(0, packet(0, 0, 1, 6));
  net.interface(0).enqueue_packet(0, packet(1, 0, 1, 6));
  std::vector<std::pair<int, int>> arrivals;  // (packet, vc)
  for (Cycle now = 0; now < 80; ++now) {
    net.step(now);
    for (const Flit& flit : net.router(1).ejected()) {
      arrivals.emplace_back(flit.packet_id, flit.vc);
    }
    net.router(1).ejected().clear();
  }
  ASSERT_EQ(arrivals.size(), 12u);
  // First six flits belong to packet 0, next six to packet 1 (single
  // source port: strict FIFO), and each packet uses one VC throughout its
  // journey's last hop.
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(arrivals[static_cast<std::size_t>(i)].first, 0);
    EXPECT_EQ(arrivals[static_cast<std::size_t>(6 + i)].first, 1);
  }
}

TEST(NetworkInterface, QueueAccounting) {
  NetworkInterface ni(2, 2);
  ni.enqueue_packet(0, packet(0, 0, 1, 3));
  ni.enqueue_packet(1, packet(1, 0, 1, 2));
  EXPECT_EQ(ni.queued_flits(), 5);
  EXPECT_THROW(ni.enqueue_packet(2, packet(2, 0, 1, 2)), Error);
  // Malformed packets rejected.
  auto bad = packet(3, 0, 1, 2);
  bad.front().head = false;
  EXPECT_THROW(ni.enqueue_packet(0, bad), Error);
}

TEST(Network, EndpointsGetSeparatePorts) {
  const auto topo = topo::make_mesh(2, 2);
  const SimConfig config = tiny_config();
  const auto routing = make_default_routing(topo, config.num_vcs);
  Network net(topo, std::vector<int>(4, 1), config, routing.get(), 3);
  EXPECT_EQ(net.endpoints_per_tile(), 3);
  // Router ports = degree + locals.
  EXPECT_EQ(net.router(0).num_ports(), 2 + 3);
}

}  // namespace
}  // namespace shg::sim
