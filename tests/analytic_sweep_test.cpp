// Tests for the analytic performance model and load-latency sweeps,
// including cross-validation of the closed form against the simulator.
#include <gtest/gtest.h>

#include "shg/eval/analytic.hpp"
#include "shg/eval/sweep.hpp"
#include "shg/topo/generators.hpp"

namespace shg::eval {
namespace {

std::vector<int> unit_latencies(const topo::Topology& topo) {
  return std::vector<int>(static_cast<std::size_t>(topo.graph().num_edges()),
                          1);
}

TEST(Analytic, MeshClosedForm) {
  // 4x4 mesh, unit links, router delay 1, injection 1, 4-flit packets:
  // avg hops = 8/3; ZLL = 1 + (h+1) + h + 3 averaged over pairs.
  const auto topo = topo::make_mesh(4, 4);
  const auto perf = analytic_performance(topo, unit_latencies(topo), 1, 1, 4);
  EXPECT_NEAR(perf.avg_hops, 8.0 / 3.0, 1e-9);
  EXPECT_NEAR(perf.zero_load_latency_cycles, 1 + (8.0 / 3.0 + 1) + 8.0 / 3.0 + 3,
              1e-9);
  EXPECT_NEAR(perf.capacity_bound, 2.0 * 24 / (16 * 8.0 / 3.0), 1e-9);
}

TEST(Analytic, LinkLatenciesEnterThePathSum) {
  const auto topo = topo::make_mesh(3, 3);
  const auto fast = analytic_performance(topo, unit_latencies(topo), 1, 1, 1);
  std::vector<int> slow(static_cast<std::size_t>(topo.graph().num_edges()),
                        3);
  const auto slow_perf = analytic_performance(topo, slow, 1, 1, 1);
  // Each hop's link now costs 3 instead of 1: difference = 2 * avg_hops.
  EXPECT_NEAR(slow_perf.zero_load_latency_cycles -
                  fast.zero_load_latency_cycles,
              2.0 * fast.avg_hops, 1e-9);
}

TEST(Analytic, UsesCheapestMinHopPath) {
  // Two min-hop routes with different link latencies: the analytic model
  // must charge the cheaper one (idealized hop-minimizing router).
  auto topo = topo::Topology(topo::Kind::kCustom, "diamond", 2, 2);
  const auto a = topo.node(0, 0);
  const auto b = topo.node(0, 1);
  const auto c = topo.node(1, 0);
  const auto d = topo.node(1, 1);
  topo.add_link(a, b);
  topo.add_link(b, d);
  topo.add_link(a, c);
  topo.add_link(c, d);
  const std::vector<int> latencies = {1, 1, 5, 5};
  const auto perf = analytic_performance(topo, latencies, 0, 0, 1);
  // Pair (a, d): cheapest 2-hop path costs 2, not 10; contributes 2+0+0.
  // Check via the mean: all pairs: ab=1 ad=2 ac=5 bd=1 bc=6? hop-minimal
  // b->c is 2 hops (via a or d): min(1+5, 1+5) = 6; cd=5.
  const double expected_mean =
      (1 + 2 + 5 + 1 + 6 + 5) * 2 / 12.0;  // ordered pairs
  EXPECT_NEAR(perf.zero_load_latency_cycles, expected_mean, 1e-9);
}

TEST(Analytic, MatchesSimulatedZeroLoadOnSmallMesh) {
  // Cross-validation: the simulator at very low load must land close to
  // the closed form (within ~15%: the sim adds ejection-cycle and
  // quantization effects).
  const auto topo = topo::make_mesh(4, 4);
  const auto analytic =
      analytic_performance(topo, unit_latencies(topo), 1, 1, 4);
  PerfConfig config;
  config.sim.num_vcs = 2;
  config.sim.buffer_depth_flits = 8;
  config.sim.warmup_cycles = 500;
  config.sim.measure_cycles = 2000;
  const auto pattern = sim::make_uniform(16);
  const auto result = simulate_at_rate(topo, unit_latencies(topo), 1,
                                       *pattern, config, 0.005);
  ASSERT_TRUE(result.drained);
  EXPECT_NEAR(result.avg_packet_latency, analytic.zero_load_latency_cycles,
              0.15 * analytic.zero_load_latency_cycles);
}

TEST(Analytic, CapacityBoundIsAnUpperBound) {
  // Measured saturation throughput (per tile) can never exceed the
  // uniform-traffic capacity bound.
  for (const auto& topo :
       {topo::make_mesh(4, 4), topo::make_flattened_butterfly(4, 4),
        topo::make_ring(4, 4)}) {
    const auto analytic =
        analytic_performance(topo, unit_latencies(topo), 1, 1, 4);
    PerfConfig config;
    config.sim.num_vcs = 2;
    config.sim.buffer_depth_flits = 8;
    config.sim.warmup_cycles = 300;
    config.sim.measure_cycles = 1000;
    config.bisection_iterations = 4;
    const auto pattern = sim::make_uniform(16);
    const auto perf = evaluate_performance(topo, unit_latencies(topo), 1,
                                           *pattern, config);
    EXPECT_LE(perf.saturation_throughput,
              analytic.capacity_bound * 1.05)
        << topo.name();
  }
}

TEST(Analytic, Validation) {
  const auto topo = topo::make_mesh(3, 3);
  EXPECT_THROW(analytic_performance(topo, {}, 1, 1, 4), Error);
  EXPECT_THROW(analytic_performance(topo, unit_latencies(topo), -1, 1, 4),
               Error);
  EXPECT_THROW(analytic_performance(topo, unit_latencies(topo), 1, 1, 0),
               Error);
}

TEST(Sweep, LatencyRisesMonotonicallyTowardSaturation) {
  const auto topo = topo::make_mesh(4, 4);
  PerfConfig config;
  config.sim.num_vcs = 2;
  config.sim.buffer_depth_flits = 8;
  config.sim.warmup_cycles = 400;
  config.sim.measure_cycles = 1200;
  const auto pattern = sim::make_uniform(16);
  const auto curve =
      sweep_load_latency(topo, unit_latencies(topo), 1, *pattern, config,
                         {0.02, 0.1, 0.3, 0.6}, "mesh");
  ASSERT_EQ(curve.points.size(), 4u);
  EXPECT_EQ(curve.label, "mesh");
  // Weak monotonicity with slack for simulation noise at low loads.
  EXPECT_LE(curve.points[0].avg_latency, curve.points[2].avg_latency * 1.1);
  EXPECT_LT(curve.points[1].avg_latency, curve.points[3].avg_latency);
  // p99 dominates the mean everywhere.
  for (const auto& point : curve.points) {
    EXPECT_GE(point.p99_latency, point.avg_latency);
  }
}

TEST(Sweep, CsvShape) {
  LoadLatencyCurve curve;
  curve.label = "test";
  curve.points.push_back(SweepPoint{0.1, 0.099, 12.0, 30.0, true});
  curve.points.push_back(SweepPoint{0.5, 0.31, 210.0, 900.0, false});
  const std::string csv = curves_to_csv({curve});
  EXPECT_NE(csv.find("label,offered,accepted,avg_latency,p99_latency,drained"),
            std::string::npos);
  EXPECT_NE(csv.find("test,0.1000,0.0990,12.00,30.00,1"), std::string::npos);
  EXPECT_NE(csv.find("test,0.5000,0.3100,210.00,900.00,0"),
            std::string::npos);
}

TEST(Sweep, Validation) {
  const auto topo = topo::make_mesh(3, 3);
  PerfConfig config;
  const auto pattern = sim::make_uniform(9);
  EXPECT_THROW(sweep_load_latency(topo, unit_latencies(topo), 1, *pattern,
                                  config, {}, "x"),
               Error);
  EXPECT_THROW(sweep_load_latency(topo, unit_latencies(topo), 1, *pattern,
                                  config, {1.5}, "x"),
               Error);
}

}  // namespace
}  // namespace shg::eval
