// Trace subsystem battery (sim/trace.hpp):
//  * shg.trace.v1 round trip and content-hash sensitivity (one byte of one
//    record -> a different hash);
//  * the loader's corruption matrix — truncations, wrong magic/version,
//    checksum flips, out-of-range ids, zero sizes, forward dependencies,
//    timestamp-order violations — each rejected with a shg::log warning
//    and a clean shg::Error, never UB;
//  * the replay schedule semantics probed directly through the
//    InjectionProcess/TrafficPattern seam (multi-packet messages,
//    dependency stalls, same-source serialization, time scaling, reset);
//  * the differential replay oracle: a synthetic spec materialized by
//    trace_from_spec and replayed must produce a SimResult bit-identical
//    to the live run it was recorded from, across spec families and BOTH
//    engines;
//  * the trace: TrafficSpec grammar (parse/canonical round trip, errors).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <vector>

#include "shg/common/log.hpp"
#include "shg/sim/simulator.hpp"
#include "shg/sim/trace.hpp"
#include "shg/sim/traffic_spec.hpp"
#include "shg/topo/generators.hpp"

namespace shg::sim {
namespace {

/// Captures shg::log warnings for the duration of a test body.
struct WarningCapture {
  std::vector<std::string> lines;
  WarningCapture() {
    log::set_sink([this](const std::string&, const std::string& line) {
      lines.push_back(line);
    });
  }
  ~WarningCapture() { log::set_sink(nullptr); }
};

std::string temp_path(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

void write_bytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

std::string read_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void flip_byte(const std::string& path, std::size_t offset) {
  std::string bytes = read_bytes(path);
  ASSERT_LT(offset, bytes.size());
  bytes[offset] = static_cast<char>(bytes[offset] ^ 0x5a);
  write_bytes(path, bytes);
}

/// A small hand-built valid trace: 4 sources / 4 terminals, three records.
Trace small_trace() {
  Trace trace;
  trace.num_sources = 4;
  trace.num_terminals = 4;
  trace.records.push_back(TraceRecord{0, 0, 1, 2, kTraceNoDep});
  trace.records.push_back(TraceRecord{1, 2, 3, 4, 0});
  trace.records.push_back(TraceRecord{0, 5, 2, 1, kTraceNoDep});
  return trace;
}

/// Asserts load_trace(path) warns exactly once and throws shg::Error.
void expect_rejected(const std::string& path) {
  WarningCapture capture;
  EXPECT_THROW(load_trace(path), Error) << path;
  ASSERT_EQ(capture.lines.size(), 1u) << path;
  EXPECT_NE(capture.lines[0].find("trace file"), std::string::npos);
  EXPECT_NE(capture.lines[0].find("rejecting"), std::string::npos);
}

TEST(TraceFormat, SaveLoadRoundTrip) {
  const Trace trace = small_trace();
  const std::string path = temp_path("roundtrip.trace");
  save_trace(trace, path);
  const Trace loaded = load_trace(path);
  EXPECT_EQ(loaded, trace);
  EXPECT_EQ(loaded.content_hash(), trace.content_hash());
  // The writer is canonical: saving the loaded trace reproduces the bytes.
  const std::string again = temp_path("roundtrip2.trace");
  save_trace(loaded, again);
  EXPECT_EQ(read_bytes(path), read_bytes(again));
}

TEST(TraceFormat, ContentHashSensitiveToEveryRecordField) {
  const Trace base = small_trace();
  const std::uint64_t h = base.content_hash();
  Trace t = base;
  t.records[1].dest = 2;
  EXPECT_NE(t.content_hash(), h);
  t = base;
  t.records[2].delta += 1;
  EXPECT_NE(t.content_hash(), h);
  t = base;
  t.records[0].size_flits += 1;
  EXPECT_NE(t.content_hash(), h);
  t = base;
  t.records[1].dep = kTraceNoDep;
  EXPECT_NE(t.content_hash(), h);
  t = base;
  t.num_terminals = 5;
  EXPECT_NE(t.content_hash(), h);
  t = base;
  t.records.pop_back();
  EXPECT_NE(t.content_hash(), h);
}

// --- Corruption matrix ------------------------------------------------------

TEST(TraceCorruption, AbsentFileRejected) {
  expect_rejected(temp_path("no-such.trace"));
}

TEST(TraceCorruption, TruncatedHeaderRejected) {
  const std::string path = temp_path("trunc-header.trace");
  save_trace(small_trace(), path);
  write_bytes(path, read_bytes(path).substr(0, 20));
  expect_rejected(path);
}

TEST(TraceCorruption, TruncatedPayloadRejected) {
  const std::string path = temp_path("trunc-payload.trace");
  save_trace(small_trace(), path);
  const std::string bytes = read_bytes(path);
  write_bytes(path, bytes.substr(0, bytes.size() - 10));
  expect_rejected(path);
}

TEST(TraceCorruption, TrailingBytesRejected) {
  const std::string path = temp_path("trailing.trace");
  save_trace(small_trace(), path);
  write_bytes(path, read_bytes(path) + "extra");
  expect_rejected(path);
}

TEST(TraceCorruption, WrongMagicRejected) {
  const std::string path = temp_path("magic.trace");
  save_trace(small_trace(), path);
  flip_byte(path, 0);
  expect_rejected(path);
}

TEST(TraceCorruption, CacheFileFedToTraceLoaderRejected) {
  // A different shg on-disk format (same 8-byte-magic idiom) must not be
  // confused for a trace.
  const std::string path = temp_path("cachefile.trace");
  write_bytes(path, std::string("SHGCACHE") + std::string(40, '\0'));
  expect_rejected(path);
}

TEST(TraceCorruption, FutureVersionRejected) {
  const std::string path = temp_path("version.trace");
  save_trace(small_trace(), path);
  flip_byte(path, 8);
  expect_rejected(path);
}

TEST(TraceCorruption, FlippedChecksumRejected) {
  const std::string path = temp_path("checksum.trace");
  save_trace(small_trace(), path);
  flip_byte(path, 40);  // inside the stored checksum
  expect_rejected(path);
}

TEST(TraceCorruption, FlippedPayloadByteRejected) {
  const std::string path = temp_path("payload.trace");
  save_trace(small_trace(), path);
  flip_byte(path, 48 + 8);  // first record's destination field
  expect_rejected(path);
}

TEST(TraceCorruption, OutOfRangeSourceRejected) {
  Trace trace = small_trace();
  trace.records[1].source = 4;  // == num_sources
  const std::string path = temp_path("bad-source.trace");
  save_trace(trace, path);
  expect_rejected(path);
}

TEST(TraceCorruption, OutOfRangeDestinationRejected) {
  Trace trace = small_trace();
  trace.records[2].dest = 99;
  const std::string path = temp_path("bad-dest.trace");
  save_trace(trace, path);
  expect_rejected(path);
}

TEST(TraceCorruption, ZeroSizeMessageRejected) {
  Trace trace = small_trace();
  trace.records[0].size_flits = 0;
  const std::string path = temp_path("zero-size.trace");
  save_trace(trace, path);
  expect_rejected(path);
}

TEST(TraceCorruption, SelfOrForwardDependencyRejected) {
  Trace trace = small_trace();
  trace.records[1].dep = 1;  // self
  const std::string self_path = temp_path("self-dep.trace");
  save_trace(trace, self_path);
  expect_rejected(self_path);

  trace = small_trace();
  trace.records[0].dep = 2;  // forward
  const std::string fwd_path = temp_path("fwd-dep.trace");
  save_trace(trace, fwd_path);
  expect_rejected(fwd_path);
}

TEST(TraceCorruption, TimestampOrderViolationRejected) {
  // Reconstructed absolute cycles: record 0 at cycle 7, record 1 (other
  // source) at cycle 2 — file order is not global time order.
  Trace trace;
  trace.num_sources = 2;
  trace.num_terminals = 2;
  trace.records.push_back(TraceRecord{0, 7, 1, 1, kTraceNoDep});
  trace.records.push_back(TraceRecord{1, 2, 0, 1, kTraceNoDep});
  const std::string path = temp_path("ts-order.trace");
  save_trace(trace, path);
  expect_rejected(path);
}

TEST(TraceCorruption, GarbageBytesRejected) {
  const std::string path = temp_path("garbage.trace");
  std::string garbage;
  for (int i = 0; i < 4096; ++i) {
    garbage.push_back(static_cast<char>((i * 131 + 17) & 0xff));
  }
  write_bytes(path, garbage);
  expect_rejected(path);
}

// --- Replay schedule semantics ---------------------------------------------

/// Drives the replay pair through the engines' seam contract (one inject
/// per (source, cycle), sources ascending, dest queried immediately after
/// a positive draw) and returns the injections as (cycle, source, dest).
struct Injection {
  Cycle cycle;
  int source;
  int dest;
  friend bool operator==(const Injection&, const Injection&) = default;
};

std::vector<Injection> drive(const TraceWorkload& workload, int num_sources,
                             Cycle cycles) {
  Prng rng(1);
  workload.process->reset();
  std::vector<Injection> out;
  for (Cycle t = 0; t < cycles; ++t) {
    for (int s = 0; s < num_sources; ++s) {
      if (!workload.process->inject(s, rng)) continue;
      out.push_back(Injection{t, s, workload.pattern->dest(s, rng)});
    }
  }
  return out;
}

TEST(TraceReplay, MultiPacketMessagesSplitAcrossConsecutiveCycles) {
  Trace trace;
  trace.num_sources = 2;
  trace.num_terminals = 4;
  trace.records.push_back(TraceRecord{0, 0, 3, 5, kTraceNoDep});  // 3 packets
  const auto workload =
      make_trace_replay(std::make_shared<const Trace>(trace), 2, 4,
                        /*packet_size_flits=*/2);
  const std::vector<Injection> expected = {
      {0, 0, 3}, {1, 0, 3}, {2, 0, 3}};
  EXPECT_EQ(drive(workload, 2, 10), expected);
}

TEST(TraceReplay, DependencyStallsTheConsumer) {
  // Record 1 (source 1, timestamp 0) depends on record 0, which finishes
  // injecting at cycle 2 — so source 1 fires at cycle 2, not 0.
  Trace trace;
  trace.num_sources = 2;
  trace.num_terminals = 4;
  trace.records.push_back(TraceRecord{0, 0, 1, 4, kTraceNoDep});
  trace.records.push_back(TraceRecord{1, 0, 2, 2, 0});
  const auto workload =
      make_trace_replay(std::make_shared<const Trace>(trace), 2, 4,
                        /*packet_size_flits=*/2);
  const std::vector<Injection> expected = {
      {0, 0, 1}, {1, 0, 1}, {2, 1, 2}};
  EXPECT_EQ(drive(workload, 2, 10), expected);
}

TEST(TraceReplay, SameSourceMessagesSerialize) {
  // The second message's timestamp (cycle 1) lands inside the first's
  // 2-cycle injection; it is pushed to the source's next free cycle.
  Trace trace;
  trace.num_sources = 1;
  trace.num_terminals = 4;
  trace.records.push_back(TraceRecord{0, 0, 1, 4, kTraceNoDep});
  trace.records.push_back(TraceRecord{0, 1, 2, 2, kTraceNoDep});
  const auto workload =
      make_trace_replay(std::make_shared<const Trace>(trace), 1, 4,
                        /*packet_size_flits=*/2);
  const std::vector<Injection> expected = {
      {0, 0, 1}, {1, 0, 1}, {2, 0, 2}};
  EXPECT_EQ(drive(workload, 1, 10), expected);
}

TEST(TraceReplay, ScaleCompressesTime) {
  Trace trace;
  trace.num_sources = 1;
  trace.num_terminals = 2;
  trace.records.push_back(TraceRecord{0, 10, 1, 1, kTraceNoDep});
  const auto t = std::make_shared<const Trace>(trace);
  const auto at_1 = make_trace_replay(t, 1, 2, 1, 1.0);
  const auto at_2 = make_trace_replay(t, 1, 2, 1, 2.0);
  const auto at_half = make_trace_replay(t, 1, 2, 1, 0.5);
  EXPECT_EQ(drive(at_1, 1, 50), (std::vector<Injection>{{10, 0, 1}}));
  EXPECT_EQ(drive(at_2, 1, 50), (std::vector<Injection>{{5, 0, 1}}));
  EXPECT_EQ(drive(at_half, 1, 50), (std::vector<Injection>{{20, 0, 1}}));
}

TEST(TraceReplay, ResetRestartsTheSchedule) {
  Trace trace;
  trace.num_sources = 2;
  trace.num_terminals = 4;
  trace.records.push_back(TraceRecord{0, 1, 3, 1, kTraceNoDep});
  trace.records.push_back(TraceRecord{1, 4, 2, 1, kTraceNoDep});
  const auto workload =
      make_trace_replay(std::make_shared<const Trace>(trace), 2, 4, 1);
  const std::vector<Injection> first = drive(workload, 2, 10);
  const std::vector<Injection> second = drive(workload, 2, 10);
  EXPECT_EQ(first, second);
  EXPECT_EQ(first.size(), 2u);
}

TEST(TraceReplay, GridMismatchThrows) {
  const auto trace = std::make_shared<const Trace>(small_trace());
  EXPECT_THROW(make_trace_replay(trace, 5, 4, 1), Error);
  EXPECT_THROW(make_trace_replay(trace, 4, 3, 1), Error);
  EXPECT_THROW(make_trace_replay(nullptr, 4, 4, 1), Error);
  EXPECT_THROW(make_trace_replay(trace, 4, 4, 0), Error);
  EXPECT_THROW(make_trace_replay(trace, 4, 4, 1, 0.0), Error);
}

// --- Differential replay oracle --------------------------------------------

SimConfig fast_config() {
  SimConfig config;
  config.num_vcs = 2;
  config.buffer_depth_flits = 4;
  config.packet_size_flits = 4;
  config.warmup_cycles = 300;
  config.measure_cycles = 900;
  config.drain_cycles = 30000;
  return config;
}

std::vector<int> unit_latencies(const topo::Topology& topo) {
  return std::vector<int>(static_cast<std::size_t>(topo.graph().num_edges()),
                          1);
}

void expect_same_result(const SimResult& a, const SimResult& b,
                        const std::string& what) {
  EXPECT_EQ(a.cycles_run, b.cycles_run) << what;
  EXPECT_EQ(a.measured_packets, b.measured_packets) << what;
  EXPECT_EQ(a.drained, b.drained) << what;
  EXPECT_EQ(a.accepted_rate, b.accepted_rate) << what;
  EXPECT_EQ(a.avg_packet_latency, b.avg_packet_latency) << what;
  EXPECT_EQ(a.max_packet_latency, b.max_packet_latency) << what;
  EXPECT_EQ(a.p50_packet_latency, b.p50_packet_latency) << what;
  EXPECT_EQ(a.p95_packet_latency, b.p95_packet_latency) << what;
  EXPECT_EQ(a.p99_packet_latency, b.p99_packet_latency) << what;
  EXPECT_EQ(a.avg_hops, b.avg_hops) << what;
  EXPECT_EQ(a.fairness, b.fairness) << what;
  EXPECT_GT(a.measured_packets, 0) << what;
}

/// Live run vs. trace_from_spec + replay, on one engine. The recorded
/// trace reproduces the live generation schedule exactly, so every
/// SimResult field must match bit for bit.
void expect_replay_matches_live(const topo::Topology& topo, SimConfig config,
                                const std::string& spec_text, bool use_soa) {
  config.use_soa_engine = use_soa;
  const TrafficSpec spec = TrafficSpec::parse(spec_text);
  const int conc = topo.concentration();
  const int ports = conc > 1 ? conc : 1;
  const double packet_prob =
      config.injection_rate / static_cast<double>(config.packet_size_flits);

  const auto pattern = spec.make_pattern(topo.rows(), topo.cols(), conc);
  Simulator live(topo, unit_latencies(topo), config, *pattern, 1, nullptr,
                 nullptr,
                 spec.make_process(packet_prob, topo.num_tiles() * ports));
  const SimResult live_result = live.run();

  TraceRecordOptions opt;
  opt.rows = topo.rows();
  opt.cols = topo.cols();
  opt.concentration = conc;
  opt.endpoints_per_tile = 1;
  opt.injection_rate = config.injection_rate;
  opt.packet_size_flits = config.packet_size_flits;
  opt.cycles = config.warmup_cycles + config.measure_cycles;
  opt.seed = config.seed;
  const auto trace =
      std::make_shared<const Trace>(trace_from_spec(spec, opt));

  TraceWorkload workload = make_trace_replay(
      trace, topo.num_tiles() * ports,
      conc > 1 ? topo.num_tiles() * conc : topo.num_tiles(),
      config.packet_size_flits);
  Simulator replay(topo, unit_latencies(topo), config, *workload.pattern, 1,
                   nullptr, nullptr, std::move(workload.process));
  const SimResult replay_result = replay.run();

  expect_same_result(live_result, replay_result,
                     spec_text + (use_soa ? " [soa]" : " [aos]"));
}

TEST(TraceDifferential, ReplayBitIdenticalToLiveRun) {
  const auto topo = topo::make_mesh(4, 4);
  SimConfig config = fast_config();
  config.injection_rate = 0.05;
  for (const char* spec :
       {"uniform", "hotspot:0,5:0.4", "transpose/onoff:0.1,0.3",
        "randperm:7"}) {
    for (const bool soa : {false, true}) {
      SCOPED_TRACE(spec);
      expect_replay_matches_live(topo, config, spec, soa);
    }
  }
}

TEST(TraceDifferential, ReplayBitIdenticalOnConcentratedFabric) {
  const auto topo = topo::make_concentrated_mesh(4, 4, 4);
  SimConfig config = fast_config();
  config.injection_rate = 0.03;
  for (const bool soa : {false, true}) {
    expect_replay_matches_live(topo, config, "hotspot:0,9:0.4", soa);
  }
}

TEST(TraceDifferential, RoundTripThroughDiskPreservesTheOracle) {
  // The full pipeline: record -> save -> load -> replay == live.
  const auto topo = topo::make_torus(4, 4);
  SimConfig config = fast_config();
  config.injection_rate = 0.05;
  const TrafficSpec spec = TrafficSpec::parse("uniform");
  TraceRecordOptions opt;
  opt.rows = 4;
  opt.cols = 4;
  opt.injection_rate = config.injection_rate;
  opt.packet_size_flits = config.packet_size_flits;
  opt.cycles = config.warmup_cycles + config.measure_cycles;
  opt.seed = config.seed;
  const std::string path = temp_path("oracle.trace");
  save_trace(trace_from_spec(spec, opt), path);

  const auto pattern = spec.make_pattern(4, 4);
  Simulator live(topo, unit_latencies(topo), config, *pattern, 1, nullptr,
                 nullptr,
                 spec.make_process(config.injection_rate /
                                       config.packet_size_flits,
                                   16));
  TrafficSpec loaded = TrafficSpec::parse("trace:" + path);
  loaded.resolve_trace();
  TraceWorkload workload =
      loaded.make_trace_workload(4, 4, 1, 1, config.packet_size_flits);
  Simulator replay(topo, unit_latencies(topo), config, *workload.pattern, 1,
                   nullptr, nullptr, std::move(workload.process));
  expect_same_result(live.run(), replay.run(), "disk round trip");
}

// --- trace: spec grammar ----------------------------------------------------

TEST(TraceSpec, ParseCanonicalRoundTrip) {
  TrafficSpec spec = TrafficSpec::parse("trace:/tmp/a/b.trace");
  EXPECT_TRUE(spec.is_trace());
  EXPECT_EQ(spec.trace_path, "/tmp/a/b.trace");
  EXPECT_EQ(spec.trace_scale, 1.0);
  EXPECT_EQ(spec.canonical(), "trace:/tmp/a/b.trace");

  spec = TrafficSpec::parse("trace:rel/path.trace@2.5");
  EXPECT_EQ(spec.trace_path, "rel/path.trace");
  EXPECT_EQ(spec.trace_scale, 2.5);
  EXPECT_EQ(spec.canonical(), "trace:rel/path.trace@2.5");
  EXPECT_EQ(TrafficSpec::parse(spec.canonical()).canonical(),
            spec.canonical());

  // Scale 1 is the default and canonicalizes away.
  EXPECT_EQ(TrafficSpec::parse("trace:x.trace@1").canonical(),
            "trace:x.trace");
}

TEST(TraceSpec, MalformedSpecsRejected) {
  EXPECT_THROW(TrafficSpec::parse("trace:"), Error);
  EXPECT_THROW(TrafficSpec::parse("trace"), Error);
  EXPECT_THROW(TrafficSpec::parse("trace:file@zero"), Error);
  EXPECT_THROW(TrafficSpec::parse("trace:file@0"), Error);
  EXPECT_THROW(TrafficSpec::parse("trace:file@-1"), Error);
}

TEST(TraceSpec, SyntheticFactoriesRefuseTraceSpecs) {
  const TrafficSpec spec = TrafficSpec::parse("trace:x.trace");
  EXPECT_THROW(spec.make_pattern(4, 4), Error);
  EXPECT_THROW(spec.make_process(0.1, 16), Error);
  // And the trace factory refuses synthetic specs / unresolved traces.
  EXPECT_THROW(TrafficSpec::parse("uniform").make_trace_workload(4, 4, 1, 1,
                                                                 4),
               Error);
  EXPECT_THROW(spec.make_trace_workload(4, 4, 1, 1, 4), Error);
}

TEST(TraceSpec, ResolveTraceLoadsAndHashes) {
  const std::string path = temp_path("resolve.trace");
  save_trace(small_trace(), path);
  TrafficSpec spec = TrafficSpec::parse("trace:" + path);
  EXPECT_EQ(spec.trace_content_hash(), 0u);  // unresolved
  spec.resolve_trace();
  ASSERT_NE(spec.trace, nullptr);
  EXPECT_EQ(spec.trace_content_hash(), small_trace().content_hash());
  // Idempotent: resolving again keeps the same object.
  const Trace* before = spec.trace.get();
  spec.resolve_trace();
  EXPECT_EQ(spec.trace.get(), before);
}

TEST(TraceSpec, ResolveTraceRejectsBadFileCleanly) {
  const std::string path = temp_path("resolve-bad.trace");
  save_trace(small_trace(), path);
  flip_byte(path, 40);
  TrafficSpec spec = TrafficSpec::parse("trace:" + path);
  WarningCapture capture;
  EXPECT_THROW(spec.resolve_trace(), Error);
  EXPECT_EQ(capture.lines.size(), 1u);
}

}  // namespace
}  // namespace shg::sim
