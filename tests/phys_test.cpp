// Tests for the physical model substrate: floorplan geometry, global
// routing and detailed routing.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "shg/common/prng.hpp"
#include "shg/phys/detailed_route.hpp"
#include "shg/phys/floorplan.hpp"
#include "shg/phys/global_route.hpp"
#include "shg/topo/generators.hpp"

namespace shg::phys {
namespace {

Floorplan tiny_plan() {
  // 2x2 grid of 1x1 mm tiles with channels 0.1/0.2/0.3 horizontal and
  // 0.05/0.15/0.25 vertical; 10 um cells.
  return Floorplan(2, 2, 1.0, 1.0, {0.1, 0.2, 0.3}, {0.05, 0.15, 0.25},
                   0.01, 0.01);
}

TEST(Floorplan, PrefixGeometry) {
  const Floorplan plan = tiny_plan();
  EXPECT_DOUBLE_EQ(plan.chan_h_top(0), 0.0);
  EXPECT_DOUBLE_EQ(plan.row_top(0), 0.1);
  EXPECT_DOUBLE_EQ(plan.chan_h_top(1), 1.1);
  EXPECT_DOUBLE_EQ(plan.row_top(1), 1.3);
  EXPECT_DOUBLE_EQ(plan.chan_h_top(2), 2.3);
  EXPECT_DOUBLE_EQ(plan.chip_height(), 2.6);

  EXPECT_DOUBLE_EQ(plan.chan_v_left(0), 0.0);
  EXPECT_DOUBLE_EQ(plan.col_left(0), 0.05);
  EXPECT_DOUBLE_EQ(plan.chan_v_left(1), 1.05);
  EXPECT_DOUBLE_EQ(plan.col_left(1), 1.2);
  EXPECT_DOUBLE_EQ(plan.chip_width(), 2.45);
}

TEST(Floorplan, TileCenter) {
  const Floorplan plan = tiny_plan();
  const PointMM c = plan.tile_center(0, 0);
  EXPECT_DOUBLE_EQ(c.x, 0.55);
  EXPECT_DOUBLE_EQ(c.y, 0.6);
}

TEST(Floorplan, RejectsBadSpacingCounts) {
  EXPECT_THROW(Floorplan(2, 2, 1.0, 1.0, {0.1, 0.2}, {0.0, 0.0, 0.0}, 0.01,
                         0.01),
               Error);
  EXPECT_THROW(Floorplan(2, 2, 1.0, 1.0, {0.1, 0.2, -0.1}, {0.0, 0.0, 0.0},
                         0.01, 0.01),
               Error);
}

TEST(GlobalRoute, MeshIsAllStraight) {
  const auto topo = topo::make_mesh(4, 4);
  const GlobalRoutingResult result = global_route(topo);
  for (const auto& route : result.routes) {
    EXPECT_TRUE(route.straight);
    EXPECT_TRUE(route.spans.empty());
  }
  // Unit links occupy no channel capacity at all.
  for (int i = 0; i <= 4; ++i) {
    EXPECT_EQ(result.max_h_load(i), 0);
    EXPECT_EQ(result.max_v_load(i), 0);
  }
}

TEST(GlobalRoute, TorusWrapsSpreadOverChannels) {
  const auto topo = topo::make_torus(4, 4);
  const GlobalRoutingResult result = global_route(topo);
  int total_h = 0;
  int total_v = 0;
  for (int i = 0; i <= 4; ++i) {
    EXPECT_LE(result.max_h_load(i), 1) << "channel " << i;
    EXPECT_LE(result.max_v_load(i), 1) << "channel " << i;
    total_h += result.max_h_load(i);
    total_v += result.max_v_load(i);
  }
  // 4 row wraps and 4 column wraps must all be placed.
  EXPECT_EQ(total_h, 4);
  EXPECT_EQ(total_v, 4);
}

TEST(GlobalRoute, ShgSkipLoadsAreBalanced) {
  // Row skips of 4 on an 8x8 grid: 4 spans per row, all overlapping at the
  // center columns, so 32 spans over 9 channels cannot beat a peak of
  // ceil(32/9) = 4 — the greedy router must reach that optimum and must
  // spread load over many channels instead of piling onto one per row.
  const auto topo = topo::make_sparse_hamming(8, 8, {4}, {});
  const GlobalRoutingResult result = global_route(topo);
  int peak = 0;
  int used_channels = 0;
  for (int i = 0; i <= 8; ++i) {
    peak = std::max(peak, result.max_h_load(i));
    if (result.max_h_load(i) > 0) ++used_channels;
    EXPECT_EQ(result.max_v_load(i), 0);
  }
  EXPECT_EQ(peak, 4);
  EXPECT_GE(used_channels, 8);
}

TEST(GlobalRoute, DiagonalLinksGetLRoutes) {
  const auto topo = topo::make_slim_noc(5, 10);
  const GlobalRoutingResult result = global_route(topo);
  bool saw_l_route = false;
  for (graph::EdgeId e = 0; e < topo.graph().num_edges(); ++e) {
    if (!topo.link_axis_aligned(e)) {
      const auto& route = result.routes[static_cast<std::size_t>(e)];
      ASSERT_EQ(route.spans.size(), 2u);
      EXPECT_TRUE(route.spans[0].horizontal);
      EXPECT_FALSE(route.spans[1].horizontal);
      saw_l_route = true;
    }
  }
  EXPECT_TRUE(saw_l_route);
}

TEST(GlobalRoute, FacesMatchChannels) {
  const auto topo = topo::make_sparse_hamming(4, 4, {2}, {2});
  const GlobalRoutingResult result = global_route(topo);
  for (graph::EdgeId e = 0; e < topo.graph().num_edges(); ++e) {
    const auto& route = result.routes[static_cast<std::size_t>(e)];
    if (route.straight) continue;
    const auto& edge = topo.graph().edge(e);
    const auto [u, v] = std::minmax(edge.u, edge.v);
    const auto cu = topo.coord(u);
    if (route.spans[0].horizontal) {
      // North face iff the channel above u's row was chosen.
      if (route.spans[0].index == cu.row) {
        EXPECT_EQ(route.face_u, Face::kNorth);
      } else {
        EXPECT_EQ(route.face_u, Face::kSouth);
        EXPECT_EQ(route.spans[0].index, cu.row + 1);
      }
    }
  }
}

TEST(GlobalRoute, LoadConservation) {
  // Every channel-span position increments exactly one load counter, so the
  // total load mass must equal the sum of span extents.
  for (const auto& topo :
       {topo::make_torus(6, 6), topo::make_sparse_hamming(6, 8, {3, 5}, {2}),
        topo::make_slim_noc(5, 10)}) {
    const GlobalRoutingResult result = global_route(topo);
    long long span_mass = 0;
    for (const auto& route : result.routes) {
      for (const auto& span : route.spans) {
        span_mass += span.hi - span.lo + 1;
      }
    }
    long long load_mass = 0;
    for (const auto& channel : result.h_loads) {
      for (int load : channel) load_mass += load;
    }
    for (const auto& channel : result.v_loads) {
      for (int load : channel) load_mass += load;
    }
    EXPECT_EQ(load_mass, span_mass) << topo.name();
  }
}

TEST(GlobalRoute, EveryNonUnitLinkHasSpans) {
  const auto topo = topo::make_sparse_hamming(6, 6, {2, 4}, {3});
  const GlobalRoutingResult result = global_route(topo);
  for (graph::EdgeId e = 0; e < topo.graph().num_edges(); ++e) {
    const auto& route = result.routes[static_cast<std::size_t>(e)];
    if (topo.link_grid_length(e) == 1) {
      EXPECT_TRUE(route.straight);
    } else {
      EXPECT_FALSE(route.straight);
      EXPECT_FALSE(route.spans.empty());
    }
  }
}

TEST(GlobalRoute, LoadAccessorsRejectOutOfRangeChannels) {
  // Regression: max_h_load / max_v_load silently read out-of-range channel
  // indices (vector UB), feeding garbage spacing into the cost model; they
  // must throw instead.
  const auto topo = topo::make_sparse_hamming(4, 6, {3}, {2});
  const GlobalRoutingResult result = global_route(topo);
  EXPECT_THROW(result.max_h_load(-1), Error);
  EXPECT_THROW(result.max_h_load(topo.rows() + 1), Error);
  EXPECT_THROW(result.max_v_load(-1), Error);
  EXPECT_THROW(result.max_v_load(topo.cols() + 1), Error);
  // In-range channels stay fine, including both boundary channels.
  EXPECT_GE(result.max_h_load(0), 0);
  EXPECT_GE(result.max_h_load(topo.rows()), 0);
  EXPECT_GE(result.max_v_load(topo.cols()), 0);
}

/// Golden channel-load profiles for canonical fabrics. These pin the greedy
/// router's exact output: a refactor that silently shifts one decision
/// changes a peak load, and with it the spacing and area the cost model
/// reports — this test makes that a loud failure instead.
TEST(GlobalRoute, GoldenLoadProfiles) {
  struct Golden {
    topo::Topology topo;
    std::vector<int> h;  ///< max_h_load per channel [0, rows]
    std::vector<int> v;  ///< max_v_load per channel [0, cols]
  };
  const Golden cases[] = {
      // 8x8 mesh: unit links cross channels directly, no channel capacity.
      {topo::make_mesh(8, 8),
       {0, 0, 0, 0, 0, 0, 0, 0, 0},
       {0, 0, 0, 0, 0, 0, 0, 0, 0}},
      // The 10x10 SR={3,6} SC={3,6} SHG the benches customize toward.
      {topo::make_sparse_hamming(10, 10, {3, 6}, {3, 6}),
       {5, 6, 7, 8, 8, 8, 8, 8, 8, 7, 7},
       {5, 6, 7, 8, 8, 8, 8, 8, 8, 7, 7}},
      // SlimNoC 5x10 (p = 5): L-shaped diagonals load both orientations.
      {topo::make_slim_noc(5, 10),
       {19, 21, 20, 20, 5, 5},
       {8, 10, 10, 10, 11, 12, 12, 12, 11, 10, 9}},
      // Single skip distance on 8x8 (the balanced-loads example above).
      {topo::make_sparse_hamming(8, 8, {4}, {}),
       {2, 3, 4, 4, 4, 4, 4, 4, 3},
       {0, 0, 0, 0, 0, 0, 0, 0, 0}},
  };
  for (const Golden& c : cases) {
    const GlobalRoutingResult result = global_route_loads(c.topo);
    ASSERT_EQ(c.h.size(), static_cast<std::size_t>(c.topo.rows()) + 1);
    ASSERT_EQ(c.v.size(), static_cast<std::size_t>(c.topo.cols()) + 1);
    for (int i = 0; i <= c.topo.rows(); ++i) {
      EXPECT_EQ(result.max_h_load(i), c.h[static_cast<std::size_t>(i)])
          << c.topo.name() << " h channel " << i;
    }
    for (int j = 0; j <= c.topo.cols(); ++j) {
      EXPECT_EQ(result.max_v_load(j), c.v[static_cast<std::size_t>(j)])
          << c.topo.name() << " v channel " << j;
    }
  }
}

/// Checks the route-shape invariants documented in global_route.hpp for
/// every link of a routed topology.
void expect_route_shapes(const topo::Topology& topo) {
  const GlobalRoutingResult result = global_route(topo);
  ASSERT_EQ(result.routes.size(),
            static_cast<std::size_t>(topo.graph().num_edges()));
  for (graph::EdgeId e = 0; e < topo.graph().num_edges(); ++e) {
    const GlobalRoute& route = result.routes[static_cast<std::size_t>(e)];
    const auto& edge = topo.graph().edge(e);
    const auto [u, v] = std::minmax(edge.u, edge.v);
    const topo::TileCoord cu = topo.coord(u);
    const topo::TileCoord cv = topo.coord(v);
    const int len = topo.link_grid_length(e);
    if (len == 1) {
      // Unit links cross the shared channel directly.
      EXPECT_TRUE(route.straight) << topo.name() << " edge " << e;
      EXPECT_TRUE(route.spans.empty()) << topo.name() << " edge " << e;
      continue;
    }
    EXPECT_FALSE(route.straight) << topo.name() << " edge " << e;
    if (topo.link_axis_aligned(e)) {
      // Aligned links occupy exactly one span along their own row/column.
      ASSERT_EQ(route.spans.size(), 1u) << topo.name() << " edge " << e;
      const ChannelSpan& span = route.spans[0];
      EXPECT_EQ(span.horizontal, cu.row == cv.row);
      EXPECT_EQ(span.hi - span.lo, len) << "span covers the link extent";
      // Both ports sit on the same face, matching the chosen channel.
      EXPECT_EQ(route.face_u, route.face_v);
      if (span.horizontal) {
        EXPECT_TRUE(span.index == cu.row || span.index == cu.row + 1);
        EXPECT_EQ(route.face_u,
                  span.index == cu.row ? Face::kNorth : Face::kSouth);
        EXPECT_EQ(span.lo, std::min(cu.col, cv.col));
      } else {
        EXPECT_TRUE(span.index == cu.col || span.index == cu.col + 1);
        EXPECT_EQ(route.face_u,
                  span.index == cu.col ? Face::kWest : Face::kEast);
        EXPECT_EQ(span.lo, std::min(cu.row, cv.row));
      }
    } else {
      // Diagonal links take exactly one L: a horizontal span in u's row
      // channel pair, then a vertical span in v's column channel pair,
      // with the faces consistent with the chosen channels.
      ASSERT_EQ(route.spans.size(), 2u) << topo.name() << " edge " << e;
      const ChannelSpan& hspan = route.spans[0];
      const ChannelSpan& vspan = route.spans[1];
      EXPECT_TRUE(hspan.horizontal);
      EXPECT_FALSE(vspan.horizontal);
      EXPECT_TRUE(hspan.index == cu.row || hspan.index == cu.row + 1);
      EXPECT_TRUE(vspan.index == cv.col || vspan.index == cv.col + 1);
      EXPECT_EQ(route.face_u,
                hspan.index == cu.row ? Face::kNorth : Face::kSouth);
      EXPECT_EQ(route.face_v,
                vspan.index == cv.col ? Face::kWest : Face::kEast);
      EXPECT_EQ(hspan.lo, std::min(cu.col, cv.col));
      EXPECT_EQ(hspan.hi, std::max(cu.col, cv.col));
      EXPECT_EQ(vspan.lo, std::min(cu.row, cv.row));
      EXPECT_EQ(vspan.hi, std::max(cu.row, cv.row));
    }
  }
}

/// Property test over topo::for_each_skip_link: every skip-generated link
/// of randomized SHG parameterizations satisfies the shape invariants,
/// including degenerate one-row and one-column fabrics.
TEST(GlobalRoute, SkipLinkRouteShapeInvariants) {
  Prng prng(0x5ba9e5u);
  for (int trial = 0; trial < 12; ++trial) {
    const int rows = prng.range(1, 9);
    const int cols = rows == 1 ? prng.range(2, 9) : prng.range(1, 9);
    std::set<int> row_skips, col_skips;
    for (int x = 2; x < cols; ++x) {
      if (prng.chance(0.4)) row_skips.insert(x);
    }
    for (int x = 2; x < rows; ++x) {
      if (prng.chance(0.4)) col_skips.insert(x);
    }
    // The generated topology and the enumeration agree by construction;
    // assert it anyway so the route-shape claims below are anchored.
    const topo::Topology topo =
        topo::make_sparse_hamming(rows, cols, row_skips, col_skips);
    int skip_links = 0;
    topo::for_each_skip_link(rows, cols, row_skips, col_skips,
                             [&](topo::TileCoord a, topo::TileCoord b) {
                               EXPECT_TRUE(topo.graph().has_edge(
                                   topo.node(a), topo.node(b)));
                               ++skip_links;
                             });
    const int mesh_links =
        rows * (cols - 1) + cols * (rows - 1);
    EXPECT_EQ(topo.graph().num_edges(), mesh_links + skip_links);
    expect_route_shapes(topo);
  }
  // Degenerate fabrics with explicit skip sets.
  expect_route_shapes(topo::make_sparse_hamming(1, 8, {2, 3, 7}, {}));
  expect_route_shapes(topo::make_sparse_hamming(8, 1, {}, {2, 5, 7}));
  // Diagonal (SlimNoC) links exercise the L-shape invariants.
  expect_route_shapes(topo::make_slim_noc(5, 10));
  expect_route_shapes(topo::make_torus(5, 7));
}

class DetailedRouteFixture : public ::testing::Test {
 protected:
  // Builds a floorplan sized like the cost model would for the topology:
  // 1 mm tiles, spacing = peak load * cell size, 10 um cells.
  static Floorplan plan_for(const topo::Topology& topo,
                            const GlobalRoutingResult& global) {
    const double cell = 0.01;
    std::vector<double> h_spacing(static_cast<std::size_t>(topo.rows()) + 1);
    std::vector<double> v_spacing(static_cast<std::size_t>(topo.cols()) + 1);
    for (int i = 0; i <= topo.rows(); ++i) {
      h_spacing[static_cast<std::size_t>(i)] = global.max_h_load(i) * cell;
    }
    for (int j = 0; j <= topo.cols(); ++j) {
      v_spacing[static_cast<std::size_t>(j)] = global.max_v_load(j) * cell;
    }
    return Floorplan(topo.rows(), topo.cols(), 1.0, 1.0, std::move(h_spacing),
                     std::move(v_spacing), cell, cell);
  }
};

TEST_F(DetailedRouteFixture, MeshLinksAreTilePitchLong) {
  const auto topo = topo::make_mesh(4, 4);
  const auto global = global_route(topo);
  const auto plan = plan_for(topo, global);
  const auto detailed = detailed_route(topo, plan, global);
  ASSERT_EQ(detailed.routes.size(),
            static_cast<std::size_t>(topo.graph().num_edges()));
  for (const auto& route : detailed.routes) {
    // Zero-width channels: the channel crossing has zero length and the
    // total is the two half-tile runs from the ports to the router centers.
    EXPECT_NEAR(route.channel_length_mm, 0.0, 1e-9);
    EXPECT_NEAR(route.total_length_mm, 1.0, 1e-9);
  }
  EXPECT_EQ(detailed.collision_cells, 0);
}

TEST_F(DetailedRouteFixture, LongLinkLengthScalesWithSpan) {
  const auto topo = topo::make_sparse_hamming(4, 4, {3}, {});
  const auto global = global_route(topo);
  const auto plan = plan_for(topo, global);
  const auto detailed = detailed_route(topo, plan, global);
  for (graph::EdgeId e = 0; e < topo.graph().num_edges(); ++e) {
    if (topo.link_grid_length(e) == 3) {
      // Three tile pitches in the channel plus the two half-tile runs from
      // the north/south ports down to the router centers.
      EXPECT_GT(detailed.routes[static_cast<std::size_t>(e)].total_length_mm,
                3.5);
      EXPECT_LT(detailed.routes[static_cast<std::size_t>(e)].total_length_mm,
                4.8);
    }
  }
}

TEST_F(DetailedRouteFixture, ParallelRunsLandInDistinctCells) {
  // Flattened butterfly rows produce many parallel spans; with left-edge
  // track assignment inside adequately sized channels, the only possible
  // collisions are port jogs, which must stay a small fraction of cells.
  const auto topo = topo::make_flattened_butterfly(4, 4);
  const auto global = global_route(topo);
  const auto plan = plan_for(topo, global);
  const auto detailed = detailed_route(topo, plan, global);
  EXPECT_GT(detailed.h_cells, 0);
  EXPECT_GT(detailed.v_cells, 0);
  EXPECT_LT(static_cast<double>(detailed.collision_cells),
            0.05 * static_cast<double>(detailed.h_cells + detailed.v_cells));
}

TEST_F(DetailedRouteFixture, LengthsDominateManhattanLowerBound) {
  // No detailed route can be shorter than the Manhattan distance between
  // the two router centers (tile pitch 1 mm + channel widths).
  const auto topo = topo::make_sparse_hamming(5, 5, {3}, {2});
  const auto global = global_route(topo);
  const auto plan = plan_for(topo, global);
  const auto detailed = detailed_route(topo, plan, global);
  for (graph::EdgeId e = 0; e < topo.graph().num_edges(); ++e) {
    const auto& edge = topo.graph().edge(e);
    const auto cu = topo.coord(edge.u);
    const auto cv = topo.coord(edge.v);
    const PointMM a = plan.tile_center(cu.row, cu.col);
    const PointMM b = plan.tile_center(cv.row, cv.col);
    EXPECT_GE(detailed.routes[static_cast<std::size_t>(e)].total_length_mm,
              manhattan(a, b) - 1e-9)
        << "edge " << e;
  }
}

TEST_F(DetailedRouteFixture, SegmentsStartAndEndAtPorts) {
  const auto topo = topo::make_torus(4, 4);
  const auto global = global_route(topo);
  const auto plan = plan_for(topo, global);
  const auto detailed = detailed_route(topo, plan, global);
  for (graph::EdgeId e = 0; e < topo.graph().num_edges(); ++e) {
    const auto& segs = detailed.routes[static_cast<std::size_t>(e)].segments;
    ASSERT_FALSE(segs.empty());
    // Consecutive segments must be connected.
    for (std::size_t i = 0; i + 1 < segs.size(); ++i) {
      EXPECT_EQ(segs[i].b, segs[i + 1].a);
    }
  }
}

}  // namespace
}  // namespace shg::phys
