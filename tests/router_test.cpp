// Router-level protocol tests: manual wiring of routers and channels to
// verify credit-based backpressure, pipeline timing, ejection and wormhole
// continuity without a full network around them.
#include <gtest/gtest.h>

#include "shg/sim/router.hpp"

namespace shg::sim {
namespace {

/// Stub routing: always forward through port 0 on any VC.
class ForwardPort0 final : public RoutingFunction {
 public:
  explicit ForwardPort0(int num_vcs) : num_vcs_(num_vcs) {}
  std::vector<RouteCandidate> route(int, int, int, int) const override {
    return {RouteCandidate{0, 0, num_vcs_}};
  }
  std::string name() const override { return "forward-port0"; }

 private:
  int num_vcs_;
};

SimConfig small_config() {
  SimConfig config;
  config.num_vcs = 2;
  config.buffer_depth_flits = 4;
  config.packet_size_flits = 1;
  return config;
}

Flit make_flit(int id, int dest, bool head, bool tail) {
  Flit flit;
  flit.packet_id = id;
  flit.dest = dest;
  flit.head = head;
  flit.tail = tail;
  return flit;
}

TEST(Router, LoopbackEjection) {
  // A router with no network ports: packets to itself leave via the local
  // ports, spread by packet id.
  const SimConfig config = small_config();
  ForwardPort0 routing(config.num_vcs);
  Router router(0, 0, 2, config, &routing);
  ASSERT_TRUE(router.try_inject(0, 0, make_flit(0, 0, true, true), 0));
  ASSERT_TRUE(router.try_inject(1, 0, make_flit(1, 0, true, true), 0));
  // Ready at cycle 1 (injection costs one router delay).
  router.allocate_phase(0);
  EXPECT_EQ(router.ejected().size(), 0u);
  router.allocate_phase(1);
  ASSERT_EQ(router.ejected().size(), 2u);
  // packet 0 -> local port 0, packet 1 -> local port 1 (id % locals).
  EXPECT_EQ(router.ejected()[0].packet_id, 0);
  EXPECT_EQ(router.ejected()[1].packet_id, 1);
}

TEST(Router, InjectRespectsBufferDepth) {
  const SimConfig config = small_config();
  ForwardPort0 routing(config.num_vcs);
  Router router(0, 0, 1, config, &routing);
  for (int i = 0; i < config.buffer_depth_flits; ++i) {
    EXPECT_TRUE(router.try_inject(0, 0, make_flit(i, 0, true, true), 0));
  }
  EXPECT_FALSE(router.try_inject(0, 0, make_flit(99, 0, true, true), 0));
  EXPECT_EQ(router.local_vc_space(0, 0), 0);
  EXPECT_EQ(router.local_vc_space(0, 1), config.buffer_depth_flits);
}

struct Pair {
  SimConfig config = {};
  ForwardPort0 routing{2};
  Router a{0, 1, 1, SimConfig{}, nullptr};
  Router b{1, 1, 1, SimConfig{}, nullptr};
  Channel ab{1};
  Channel ba{1};

  explicit Pair(int link_latency, SimConfig cfg)
      : config(cfg),
        routing(cfg.num_vcs),
        a(0, 1, 1, cfg, &routing),
        b(1, 1, 1, cfg, &routing),
        ab(link_latency),
        ba(link_latency) {
    // a's port 0 sends on ab, receives on ba; b mirrored.
    a.attach(0, &ba, &ab);
    b.attach(0, &ab, &ba);
  }

  void step(Cycle now) {
    a.deliver_phase(now);
    b.deliver_phase(now);
    a.allocate_phase(now);
    b.allocate_phase(now);
  }
};

TEST(Router, TwoRouterTimingWithLinkLatency) {
  // Inject at cycle 0 into a; one router delay (ready at 1), link latency 3
  // (arrive at 4), one router delay at b (ready 5) -> ejected at cycle 5.
  Pair pair(3, small_config());
  ASSERT_TRUE(pair.a.try_inject(0, 0, make_flit(0, 1, true, true), 0));
  for (Cycle now = 0; now <= 10; ++now) {
    pair.step(now);
    if (!pair.b.ejected().empty()) {
      EXPECT_EQ(now, 5);
      return;
    }
  }
  FAIL() << "flit never ejected";
}

TEST(Router, CreditBackpressureStallsSender) {
  // Stall router b (never run its allocate phase): a may send exactly
  // buffer_depth flits into b's input VC, then must stop.
  SimConfig config = small_config();
  config.packet_size_flits = 8;  // one long packet on one VC
  Pair pair(1, config);
  // Feed one 8-flit packet into a's local port as space permits (the NI's
  // job), while b never runs its allocate phase: its buffers fill, credits
  // stop flowing, and a must hold the remaining flits.
  int fed = 0;
  long long received = 0;
  for (Cycle now = 0; now <= 30; ++now) {
    if (fed < 8 &&
        pair.a.try_inject(0, 0, make_flit(0, 1, fed == 0, fed == 7), now)) {
      ++fed;
    }
    pair.a.deliver_phase(now);
    pair.b.deliver_phase(now);
    pair.a.allocate_phase(now);
    received = pair.b.buffered_flits();
  }
  EXPECT_EQ(fed, 8);
  EXPECT_EQ(received, config.buffer_depth_flits);
  EXPECT_EQ(pair.a.buffered_flits(), 8 - config.buffer_depth_flits);

  // Un-stall b: everything drains.
  bool saw_tail = false;
  for (Cycle now = 21; now <= 60; ++now) {
    pair.step(now);
    for (const Flit& flit : pair.b.ejected()) {
      if (flit.tail) saw_tail = true;
    }
    pair.b.ejected().clear();
  }
  EXPECT_TRUE(saw_tail);
  EXPECT_EQ(pair.a.buffered_flits(), 0);
  EXPECT_EQ(pair.b.buffered_flits(), 0);
}

TEST(Router, WormholePacketsDoNotInterleaveOnAnOutputVc) {
  // Two 4-flit packets from different input VCs toward the same output
  // port: flits observed at b must be per-packet contiguous within a VC
  // (the output VC is held until the tail passes).
  SimConfig config = small_config();
  config.packet_size_flits = 4;
  Pair pair(1, config);
  for (int f = 0; f < 4; ++f) {
    ASSERT_TRUE(pair.a.try_inject(0, 0, make_flit(0, 1, f == 0, f == 3), 0));
    ASSERT_TRUE(pair.a.try_inject(0, 1, make_flit(1, 1, f == 0, f == 3), 0));
  }
  std::vector<std::vector<int>> order_per_vc(2);
  for (Cycle now = 0; now <= 40; ++now) {
    pair.step(now);
    for (const Flit& flit : pair.b.ejected()) {
      order_per_vc[static_cast<std::size_t>(flit.vc < 1 ? 0 : 1)].push_back(
          flit.packet_id);
    }
    pair.b.ejected().clear();
  }
  int total = 0;
  for (const auto& order : order_per_vc) {
    total += static_cast<int>(order.size());
    // Within a VC, packet ids must be contiguous runs.
    for (std::size_t i = 2; i < order.size(); ++i) {
      if (order[i] == order[i - 2]) {
        EXPECT_EQ(order[i], order[i - 1])
            << "interleaved packets on one VC";
      }
    }
  }
  EXPECT_EQ(total, 8);
}

TEST(Router, RejectsInvalidConstruction) {
  const SimConfig config = small_config();
  ForwardPort0 routing(config.num_vcs);
  EXPECT_THROW(Router(0, 1, 0, config, &routing), Error);
  EXPECT_THROW(Router(0, 1, 1, config, nullptr), Error);
  Router ok(0, 1, 1, config, &routing);
  EXPECT_THROW(ok.attach(1, nullptr, nullptr), Error);
  EXPECT_THROW(ok.try_inject(1, 0, make_flit(0, 0, true, true), 0), Error);
  EXPECT_THROW(ok.try_inject(0, 9, make_flit(0, 0, true, true), 0), Error);
}

}  // namespace
}  // namespace shg::sim
