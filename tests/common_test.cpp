// Unit tests for shg/common: error macros, geometry, PRNG, tables, strings,
// and the pluggable warning sink (shg/common/log.hpp).
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "shg/common/error.hpp"
#include "shg/common/log.hpp"
#include "shg/common/geometry.hpp"
#include "shg/common/prng.hpp"
#include "shg/common/strings.hpp"
#include "shg/common/table.hpp"

namespace shg {
namespace {

TEST(Error, RequireThrowsWithContext) {
  try {
    SHG_REQUIRE(1 == 2, "one is not two");
    FAIL() << "SHG_REQUIRE must throw";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("precondition"), std::string::npos);
    EXPECT_NE(what.find("one is not two"), std::string::npos);
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
  }
}

TEST(Error, AssertThrowsInvariant) {
  EXPECT_THROW(SHG_ASSERT(false, "broken"), Error);
}

TEST(Error, PassingConditionsDoNotThrow) {
  EXPECT_NO_THROW(SHG_REQUIRE(true, ""));
  EXPECT_NO_THROW(SHG_ASSERT(2 + 2 == 4, ""));
}

TEST(Geometry, ManhattanGrid) {
  EXPECT_EQ(manhattan(PointI{0, 0}, PointI{3, 4}), 7);
  EXPECT_EQ(manhattan(PointI{-2, 5}, PointI{1, 1}), 7);
  EXPECT_EQ(manhattan(PointI{2, 2}, PointI{2, 2}), 0);
}

TEST(Geometry, ManhattanAndEuclideanMM) {
  EXPECT_DOUBLE_EQ(manhattan(PointMM{0, 0}, PointMM{3, 4}), 7.0);
  EXPECT_DOUBLE_EQ(euclidean(PointMM{0, 0}, PointMM{3, 4}), 5.0);
}

TEST(Geometry, RectBasics) {
  const RectMM r{{1.0, 2.0}, {4.0, 6.0}};
  EXPECT_DOUBLE_EQ(r.width(), 3.0);
  EXPECT_DOUBLE_EQ(r.height(), 4.0);
  EXPECT_DOUBLE_EQ(r.area(), 12.0);
  EXPECT_EQ(r.center(), (PointMM{2.5, 4.0}));
  EXPECT_TRUE(r.contains(PointMM{1.0, 2.0}));
  EXPECT_TRUE(r.contains(PointMM{2.5, 4.0}));
  EXPECT_FALSE(r.contains(PointMM{0.9, 4.0}));
}

TEST(Geometry, RectOverlap) {
  const RectMM a{{0, 0}, {2, 2}};
  const RectMM b{{1, 1}, {3, 3}};
  const RectMM c{{2, 0}, {4, 2}};  // touching edge: not overlapping
  EXPECT_TRUE(a.overlaps(b));
  EXPECT_FALSE(a.overlaps(c));
}

TEST(Prng, DeterministicFromSeed) {
  Prng a(42);
  Prng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a(), b());
  }
}

TEST(Prng, DifferentSeedsDiffer) {
  Prng a(1);
  Prng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Prng, UniformInUnitInterval) {
  Prng rng(7);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Prng, BelowIsUnbiasedEnough) {
  Prng rng(11);
  int counts[5] = {};
  for (int i = 0; i < 50000; ++i) {
    ++counts[rng.below(5)];
  }
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c), 10000.0, 450.0);
  }
}

TEST(Prng, RangeInclusive) {
  Prng rng(3);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    const int v = rng.range(-2, 2);
    ASSERT_GE(v, -2);
    ASSERT_LE(v, 2);
    saw_lo = saw_lo || v == -2;
    saw_hi = saw_hi || v == 2;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Prng, BelowRejectsZero) {
  Prng rng(1);
  EXPECT_THROW(rng.below(0), Error);
}

TEST(Table, AlignsColumns) {
  Table t({"name", "value"});
  t.add_row({"a", "1"});
  t.add_row({"long-name", "22"});
  const std::string out = t.to_string();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("long-name"), std::string::npos);
  // Every line has the same length (besides the trailing newline split).
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(Table, RejectsMismatchedArity) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), Error);
}

TEST(Table, MarkdownShape) {
  Table t({"h1", "h2"});
  t.add_row({"x", "y"});
  const std::string md = t.to_markdown();
  EXPECT_NE(md.find("| h1 | h2 |"), std::string::npos);
  EXPECT_NE(md.find("|---|---|"), std::string::npos);
  EXPECT_NE(md.find("| x | y |"), std::string::npos);
}

TEST(Strings, FmtDouble) {
  EXPECT_EQ(fmt_double(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_double(2.0, 0), "2");
}

TEST(Strings, FmtIntSet) {
  EXPECT_EQ(fmt_int_set({}), "{}");
  EXPECT_EQ(fmt_int_set({4}), "{4}");
  EXPECT_EQ(fmt_int_set({2, 5}), "{2, 5}");
}

TEST(Strings, Join) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
}

/// Captures (context, line) pairs for the duration of a test and restores
/// the default stderr sink on destruction.
class SinkCapture {
 public:
  SinkCapture() {
    log::set_sink([this](const std::string& context, const std::string& line) {
      captured_.emplace_back(context, line);
    });
  }
  ~SinkCapture() { log::set_sink(nullptr); }

  const std::vector<std::pair<std::string, std::string>>& lines() const {
    return captured_;
  }

 private:
  std::vector<std::pair<std::string, std::string>> captured_;
};

TEST(Log, WarnfFormatsIntoInstalledSink) {
  SinkCapture capture;
  log::warnf("warning: %s %d\n", "code", 42);
  ASSERT_EQ(capture.lines().size(), 1u);
  EXPECT_EQ(capture.lines()[0].second, "warning: code 42\n");
  EXPECT_EQ(capture.lines()[0].first, "");  // no context set
}

TEST(Log, ScopedContextTagsAndNests) {
  SinkCapture capture;
  EXPECT_EQ(log::context(), "");
  {
    log::ScopedContext outer("req-1");
    EXPECT_EQ(log::context(), "req-1");
    log::warnf("outer\n");
    {
      log::ScopedContext inner("req-2");
      log::warnf("inner\n");
    }
    log::warnf("outer again\n");
  }
  EXPECT_EQ(log::context(), "");
  ASSERT_EQ(capture.lines().size(), 3u);
  EXPECT_EQ(capture.lines()[0].first, "req-1");
  EXPECT_EQ(capture.lines()[1].first, "req-2");
  EXPECT_EQ(capture.lines()[2].first, "req-1");
}

TEST(Log, ContextIsThreadLocal) {
  SinkCapture capture;
  const log::ScopedContext mine("main-thread");
  std::string other;
  std::thread worker([&other] { other = log::context(); });
  worker.join();
  EXPECT_EQ(other, "");  // the worker never set one
  EXPECT_EQ(log::context(), "main-thread");
}

TEST(Log, NullSinkRestoresDefault) {
  // After restoring the default sink, emission must not touch the old
  // capture (a dangling sink would crash or append).
  auto* captured = new std::vector<std::string>;
  log::set_sink([captured](const std::string&, const std::string& line) {
    captured->push_back(line);
  });
  log::warnf("one\n");
  log::set_sink(nullptr);
  EXPECT_EQ(captured->size(), 1u);
  delete captured;
  // Goes to stderr now; just must not crash.
  testing::internal::CaptureStderr();
  log::warnf("to stderr %d\n", 7);
  EXPECT_EQ(testing::internal::GetCapturedStderr(), "to stderr 7\n");
}

}  // namespace
}  // namespace shg
