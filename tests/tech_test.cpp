// Tests for the Table II technology / transport / router-area models.
#include <gtest/gtest.h>

#include "shg/tech/presets.hpp"

namespace shg::tech {
namespace {

TEST(WireStack, PaperExampleFormula) {
  // Section IV-B1 worked example: horizontal layers with 40/50/60 nm pitch,
  // vertical layers with 45/55 nm pitch.
  const WireLayerStack stack = paper_example_wire_stack();
  const double h_density = 1.0 / 40 + 1.0 / 50 + 1.0 / 60;  // wires per nm
  const double v_density = 1.0 / 45 + 1.0 / 55;
  EXPECT_NEAR(stack.h_wires_to_mm(1000.0), 1000.0 / h_density * 1e-6, 1e-12);
  EXPECT_NEAR(stack.v_wires_to_mm(1000.0), 1000.0 / v_density * 1e-6, 1e-12);
}

TEST(WireStack, Linearity) {
  const WireLayerStack stack = paper_example_wire_stack();
  EXPECT_NEAR(stack.h_wires_to_mm(2000.0), 2.0 * stack.h_wires_to_mm(1000.0),
              1e-12);
  EXPECT_NEAR(stack.v_wires_to_mm(0.0), 0.0, 1e-15);
}

TEST(WireStack, MoreLayersNeedLessSpace) {
  WireLayerStack one;
  one.horizontal_pitch_nm = {50.0};
  one.vertical_pitch_nm = {50.0};
  WireLayerStack two = one;
  two.horizontal_pitch_nm.push_back(50.0);
  EXPECT_NEAR(two.h_wires_to_mm(100.0), one.h_wires_to_mm(100.0) / 2.0, 1e-12);
}

TEST(WireStack, RejectsInvalid) {
  WireLayerStack empty;
  EXPECT_THROW(empty.h_wires_to_mm(10.0), Error);
  WireLayerStack bad;
  bad.horizontal_pitch_nm = {0.0};
  EXPECT_THROW(bad.h_wires_to_mm(10.0), Error);
  const WireLayerStack ok = paper_example_wire_stack();
  EXPECT_THROW(ok.h_wires_to_mm(-1.0), Error);
}

TEST(Technology, GeToMm2) {
  TechnologyModel tech = tech_22nm();
  // 0.2 um^2 per GE: 1 MGE = 0.2 mm^2 * 1e-... -> 1e6 * 0.2e-6 mm^2.
  EXPECT_NEAR(tech.ge_to_mm2(1e6), 0.2, 1e-9);
  EXPECT_NEAR(tech.ge_to_mm2(35e6), 7.0, 1e-6);
}

TEST(Technology, WireDelay) {
  const TechnologyModel tech = tech_22nm();
  // 150 ps/mm: 10 mm -> 1.5 ns.
  EXPECT_NEAR(tech.mm_to_s(10.0), 1.5e-9, 1e-15);
  // At 1.2 GHz that is 1.8 cycles.
  EXPECT_NEAR(tech.mm_to_s(10.0) * 1.2e9, 1.8, 1e-9);
}

TEST(Technology, PowerDensities) {
  const TechnologyModel tech = tech_22nm();
  EXPECT_NEAR(tech.logic_mm2_to_w(100.0), 100.0 * tech.logic_power_w_per_mm2,
              1e-12);
  EXPECT_NEAR(tech.wire_mm2_to_w(50.0), 50.0 * tech.wire_power_w_per_mm2,
              1e-12);
  EXPECT_THROW(tech.logic_mm2_to_w(-1.0), Error);
}

TEST(Transport, AxiWireCount) {
  const TransportModel axi{"axi", 2.4, 160.0};
  EXPECT_NEAR(axi.bw_to_wires(512.0), 512.0 * 2.4 + 160.0, 1e-9);
  EXPECT_THROW(axi.bw_to_wires(0.0), Error);
}

TEST(RouterArea, FormulaComposition) {
  const RouterAreaModel model{2.0, 0.3, 2000.0};
  const RouterArchitecture arch{8, 32};
  const double area = model.area_ge(5, 5, 512.0, arch);
  const double buffers = 5.0 * 8 * 32 * 512 * 2.0;
  const double xbar = 5.0 * 5.0 * 512 * 0.3;
  const double ctl = 10.0 * 2000.0;
  EXPECT_NEAR(area, buffers + xbar + ctl, 1e-6);
}

TEST(RouterArea, GrowsSuperlinearlyInRadix) {
  const RouterAreaModel model{};
  const RouterArchitecture arch{8, 32};
  const double r4 = model.area_ge(4, 4, 512.0, arch);
  const double r8 = model.area_ge(8, 8, 512.0, arch);
  // Crossbar term is quadratic: doubling the radix more than doubles area.
  EXPECT_GT(r8, 2.0 * r4 - 1e-9);
}

TEST(RouterArea, RejectsInvalid) {
  const RouterAreaModel model{};
  const RouterArchitecture arch{8, 32};
  EXPECT_THROW(model.area_ge(0, 4, 512.0, arch), Error);
  EXPECT_THROW(model.area_ge(4, 4, -1.0, arch), Error);
  EXPECT_THROW(model.area_ge(4, 4, 512.0, RouterArchitecture{0, 32}), Error);
}

TEST(Presets, KncScenarios) {
  const ArchParams a = knc_scenario(KncScenario::kA);
  EXPECT_EQ(a.num_tiles(), 64);
  EXPECT_NEAR(a.endpoint_area_ge, 35e6, 1);
  EXPECT_EQ(a.endpoints_per_tile, 1);
  EXPECT_NEAR(a.frequency_hz, 1.2e9, 1);
  EXPECT_NEAR(a.link_bandwidth_bits, 512.0, 1e-9);
  EXPECT_EQ(a.router_arch.num_vcs, 8);
  EXPECT_EQ(a.router_arch.buffer_depth_flits, 32);

  const ArchParams b = knc_scenario(KncScenario::kB);
  EXPECT_EQ(b.num_tiles(), 64);
  EXPECT_NEAR(b.endpoint_area_ge, 70e6, 1);
  EXPECT_EQ(b.endpoints_per_tile, 2);

  const ArchParams c = knc_scenario(KncScenario::kC);
  EXPECT_EQ(c.num_tiles(), 128);
  const ArchParams d = knc_scenario(KncScenario::kD);
  EXPECT_EQ(d.num_tiles(), 128);
  EXPECT_NEAR(d.endpoint_area_ge, 70e6, 1);
}

TEST(Presets, KncBaseAreaMatchesKnightsCornerScale) {
  // 64 tiles x 35 MGE at 0.2 um^2/GE = 448 mm^2 of endpoint silicon; with
  // the NoC on top this lands in Knights Corner's ~700 mm^2 die class.
  const ArchParams a = knc_scenario(KncScenario::kA);
  EXPECT_NEAR(a.tech.ge_to_mm2(a.num_tiles() * a.endpoint_area_ge), 448.0,
              1.0);
}

TEST(Presets, MempoolArch) {
  const ArchParams mp = mempool_arch();
  EXPECT_EQ(mp.num_tiles(), 64);
  EXPECT_EQ(mp.endpoints_per_tile, 4);
  EXPECT_NEAR(mp.frequency_hz, 0.5e9, 1);
  // Low-power node: far lower power density than the KNC-class node.
  EXPECT_LT(mp.tech.logic_power_w_per_mm2,
            tech_22nm().logic_power_w_per_mm2 / 3.0);
}

}  // namespace
}  // namespace shg::tech
