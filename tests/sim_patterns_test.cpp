// Behavioural tests of the simulator under non-uniform traffic: adversarial
// permutations, hotspots, and fairness measurements.
#include <gtest/gtest.h>

#include "shg/eval/perf.hpp"
#include "shg/sim/simulator.hpp"
#include "shg/topo/generators.hpp"

namespace shg::sim {
namespace {

SimConfig fast_config() {
  SimConfig config;
  config.num_vcs = 2;
  config.buffer_depth_flits = 4;
  config.packet_size_flits = 4;
  config.warmup_cycles = 500;
  config.measure_cycles = 1500;
  config.drain_cycles = 25000;
  return config;
}

std::vector<int> unit_latencies(const topo::Topology& topo) {
  return std::vector<int>(static_cast<std::size_t>(topo.graph().num_edges()),
                          1);
}

SimResult run(const topo::Topology& topo, const TrafficPattern& pattern,
              double rate, SimConfig config = fast_config()) {
  config.injection_rate = rate;
  return Simulator(topo, unit_latencies(topo), config, pattern, 1).run();
}

TEST(Patterns, TransposeIsAdversarialForMesh) {
  // Transpose concentrates traffic through the diagonal; at the same rate
  // the mesh must show substantially higher latency (or fail to drain)
  // compared to nearest-neighbor traffic.
  const auto mesh = topo::make_mesh(6, 6);
  const auto neighbor = make_neighbor(6, 6);
  const auto transpose = make_transpose(6, 6);
  const SimResult easy = run(mesh, *neighbor, 0.30);
  const SimResult hard = run(mesh, *transpose, 0.30);
  ASSERT_TRUE(easy.drained);
  EXPECT_TRUE(!hard.drained ||
              hard.avg_packet_latency > 1.5 * easy.avg_packet_latency);
}

TEST(Patterns, FlattenedButterflyShrugsOffTranspose) {
  // Direct row/column links make transpose a 2-hop pattern on the FB.
  const auto fb = topo::make_flattened_butterfly(6, 6);
  const auto transpose = make_transpose(6, 6);
  const SimResult result = run(fb, *transpose, 0.30);
  EXPECT_TRUE(result.drained);
  EXPECT_LT(result.avg_packet_latency, 40.0);
}

TEST(Patterns, HotspotThrottlesAcceptedRate)
{
  // 50% of traffic to one tile: the hotspot's ejection port (1 flit/cycle)
  // caps the whole network's accepted rate near 2/N per port.
  const auto mesh = topo::make_mesh(4, 4);
  const auto hotspot = make_hotspot(16, {5}, 0.5);
  const SimResult result = run(mesh, *hotspot, 0.6);
  // Per-port accepted can't exceed ~ 1 / (16 * 0.5) = 0.125 once the
  // hotspot's sink saturates; allow generous slack above the bound.
  EXPECT_LT(result.accepted_rate, 0.20);
  EXPECT_GT(result.accepted_rate, 0.02);
}

TEST(Patterns, BitComplementStressesBisection) {
  // Bit complement sends everything across the middle: mesh saturates far
  // below uniform capacity but must keep flowing.
  const auto mesh = topo::make_mesh(4, 4);
  const auto bitcomp = make_bit_complement(16);
  const SimResult result = run(mesh, *bitcomp, 0.8);
  EXPECT_GT(result.accepted_rate, 0.05);
}

TEST(Fairness, UniformLowLoadIsFair) {
  const auto mesh = topo::make_mesh(4, 4);
  const auto uniform = make_uniform(16);
  const SimResult result = run(mesh, *uniform, 0.05);
  ASSERT_TRUE(result.drained);
  // At low load every source sees near-identical service.
  EXPECT_LT(result.fairness, 1.5);
}

TEST(Fairness, SaturatedRingIsUnfair) {
  // Beyond saturation the ring starves sources far from their destinations'
  // free slots; fairness must degrade relative to low load.
  const auto ring = topo::make_ring(4, 4);
  const auto uniform = make_uniform(16);
  const SimResult low = run(ring, *uniform, 0.03);
  SimConfig config = fast_config();
  config.measure_cycles = 2000;
  const SimResult high = run(ring, *uniform, 0.6, config);
  ASSERT_TRUE(low.drained);
  EXPECT_GT(high.fairness, low.fairness);
}

TEST(Percentiles, TailDominatesMeanUnderLoad) {
  const auto mesh = topo::make_mesh(4, 4);
  const auto uniform = make_uniform(16);
  const SimResult result = run(mesh, *uniform, 0.35);
  ASSERT_GT(result.measured_packets, 0);
  EXPECT_GE(result.p50_packet_latency, 1.0);
  EXPECT_GE(result.p95_packet_latency, result.p50_packet_latency);
  EXPECT_GE(result.p99_packet_latency, result.p95_packet_latency);
  EXPECT_GE(result.max_packet_latency, result.p99_packet_latency);
  // The mean sits between the median and the tail under congestion.
  EXPECT_LE(result.p50_packet_latency, result.avg_packet_latency * 1.5);
}

TEST(Percentiles, ZeroLoadTailIsTight) {
  const auto fb = topo::make_flattened_butterfly(4, 4);
  const auto uniform = make_uniform(16);
  const SimResult result = run(fb, *uniform, 0.01);
  ASSERT_TRUE(result.drained);
  // Diameter-2 topology at zero load: p99 within a small factor of median.
  EXPECT_LT(result.p99_packet_latency, 2.5 * result.p50_packet_latency);
}

}  // namespace
}  // namespace shg::sim
