// Tests for simulation statistics: distributions and fairness.
#include <gtest/gtest.h>

#include "shg/sim/stats.hpp"

namespace shg::sim {
namespace {

TEST(Distribution, MeanMinMax) {
  Distribution d;
  for (double x : {4.0, 1.0, 3.0, 2.0}) d.add(x);
  EXPECT_DOUBLE_EQ(d.mean(), 2.5);
  EXPECT_DOUBLE_EQ(d.min(), 1.0);
  EXPECT_DOUBLE_EQ(d.max(), 4.0);
  EXPECT_EQ(d.count(), 4u);
}

TEST(Distribution, PercentilesNearestRank) {
  Distribution d;
  for (int i = 1; i <= 100; ++i) d.add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(d.percentile(0.50), 50.0);
  EXPECT_DOUBLE_EQ(d.percentile(0.95), 95.0);
  EXPECT_DOUBLE_EQ(d.percentile(0.99), 99.0);
  EXPECT_DOUBLE_EQ(d.percentile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(d.percentile(1.0), 100.0);
}

TEST(Distribution, PercentileAfterMoreSamples) {
  // The lazily sorted cache must refresh when samples are added.
  Distribution d;
  d.add(1.0);
  EXPECT_DOUBLE_EQ(d.percentile(1.0), 1.0);
  d.add(10.0);
  EXPECT_DOUBLE_EQ(d.percentile(1.0), 10.0);
}

TEST(Distribution, Stddev) {
  Distribution d;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) d.add(x);
  EXPECT_NEAR(d.stddev(), 2.0, 1e-12);
}

TEST(Distribution, EmptyThrows) {
  Distribution d;
  EXPECT_TRUE(d.empty());
  EXPECT_THROW(d.mean(), Error);
  EXPECT_THROW(d.percentile(0.5), Error);
  d.add(1.0);
  EXPECT_THROW(d.percentile(1.5), Error);
}

TEST(Distribution, CapFoldsIntoBins) {
  Distribution d(/*sample_cap=*/8);
  for (int i = 1; i <= 8; ++i) d.add(static_cast<double>(i));
  EXPECT_FALSE(d.binned());
  d.add(9.0);  // crosses the cap
  EXPECT_TRUE(d.binned());
  EXPECT_EQ(d.count(), 9u);
  // Golden values for 1..9: binned summaries must equal the exact ones.
  EXPECT_DOUBLE_EQ(d.mean(), 5.0);
  EXPECT_DOUBLE_EQ(d.min(), 1.0);
  EXPECT_DOUBLE_EQ(d.max(), 9.0);
  EXPECT_DOUBLE_EQ(d.percentile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(d.percentile(0.5), 5.0);
  EXPECT_DOUBLE_EQ(d.percentile(1.0), 9.0);
}

TEST(Distribution, BinnedMatchesExactOnIntegerSamples) {
  // Packet latencies are integer cycle counts: every summary the simulator
  // reports must agree between a capped and an uncapped distribution.
  Distribution exact;           // default cap, never folds at this size
  Distribution capped(/*sample_cap=*/0);  // bins from the first sample
  for (int i = 0; i < 1000; ++i) {
    const double sample = static_cast<double>((i * 37) % 211 + 3);
    exact.add(sample);
    capped.add(sample);
  }
  EXPECT_TRUE(capped.binned());
  EXPECT_FALSE(exact.binned());
  EXPECT_DOUBLE_EQ(capped.mean(), exact.mean());
  EXPECT_DOUBLE_EQ(capped.min(), exact.min());
  EXPECT_DOUBLE_EQ(capped.max(), exact.max());
  for (double q : {0.0, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(capped.percentile(q), exact.percentile(q)) << q;
  }
  EXPECT_NEAR(capped.stddev(), exact.stddev(), 1e-9);
}

TEST(Distribution, BinnedStddevGolden) {
  Distribution d(/*sample_cap=*/0);
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) d.add(x);
  EXPECT_TRUE(d.binned());
  EXPECT_NEAR(d.stddev(), 2.0, 1e-12);
}

TEST(Distribution, OverflowBucketReportsMax) {
  Distribution d(/*sample_cap=*/0);
  d.add(1.0);
  d.add(2.0);
  const double huge = static_cast<double>(Distribution::kMaxTrackedValue) * 4;
  d.add(huge);
  EXPECT_DOUBLE_EQ(d.max(), huge);
  // The overflow rank resolves to the exact max, not a bucket edge.
  EXPECT_DOUBLE_EQ(d.percentile(1.0), huge);
  EXPECT_DOUBLE_EQ(d.percentile(0.5), 2.0);
  EXPECT_DOUBLE_EQ(d.mean(), (1.0 + 2.0 + huge) / 3.0);
}

TEST(Distribution, MeanIsInsertionOrderSumAfterFold) {
  // The fold re-accumulates sum_ in insertion order, so mean() must be
  // bit-identical (==, not near) to the unbounded accumulate over the same
  // sequence — the property the bit-identity suite relies on.
  std::vector<double> samples;
  for (int i = 0; i < 64; ++i) {
    samples.push_back(static_cast<double>((i * 7919) % 101) + 0.0);
  }
  Distribution capped(/*sample_cap=*/16);
  double sum = 0.0;
  for (double s : samples) {
    capped.add(s);
    sum += s;
  }
  EXPECT_TRUE(capped.binned());
  EXPECT_EQ(capped.mean(), sum / static_cast<double>(samples.size()));
}

TEST(Fairness, PerfectlyFair) {
  EXPECT_DOUBLE_EQ(fairness_ratio({5.0, 5.0, 5.0}), 1.0);
}

TEST(Fairness, StarvedSourceShowsUp) {
  // One source sees 4x the latency of the others.
  const double ratio = fairness_ratio({10.0, 10.0, 40.0, 10.0});
  EXPECT_NEAR(ratio, 40.0 / 17.5, 1e-12);
}

TEST(Fairness, Validation) {
  EXPECT_THROW(fairness_ratio({}), Error);
  EXPECT_THROW(fairness_ratio({-1.0}), Error);
}

TEST(Fairness, AllZeroMeansArePerfectlyFair) {
  // Degenerate empty-measurement corner: every source saw identical (zero)
  // service, so aggregation must get 1.0 instead of a trap.
  EXPECT_DOUBLE_EQ(fairness_ratio({0.0, 0.0}), 1.0);
  EXPECT_DOUBLE_EQ(fairness_ratio({0.0}), 1.0);
}

}  // namespace
}  // namespace shg::sim
