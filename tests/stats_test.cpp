// Tests for simulation statistics: distributions and fairness.
#include <gtest/gtest.h>

#include "shg/sim/stats.hpp"

namespace shg::sim {
namespace {

TEST(Distribution, MeanMinMax) {
  Distribution d;
  for (double x : {4.0, 1.0, 3.0, 2.0}) d.add(x);
  EXPECT_DOUBLE_EQ(d.mean(), 2.5);
  EXPECT_DOUBLE_EQ(d.min(), 1.0);
  EXPECT_DOUBLE_EQ(d.max(), 4.0);
  EXPECT_EQ(d.count(), 4u);
}

TEST(Distribution, PercentilesNearestRank) {
  Distribution d;
  for (int i = 1; i <= 100; ++i) d.add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(d.percentile(0.50), 50.0);
  EXPECT_DOUBLE_EQ(d.percentile(0.95), 95.0);
  EXPECT_DOUBLE_EQ(d.percentile(0.99), 99.0);
  EXPECT_DOUBLE_EQ(d.percentile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(d.percentile(1.0), 100.0);
}

TEST(Distribution, PercentileAfterMoreSamples) {
  // The lazily sorted cache must refresh when samples are added.
  Distribution d;
  d.add(1.0);
  EXPECT_DOUBLE_EQ(d.percentile(1.0), 1.0);
  d.add(10.0);
  EXPECT_DOUBLE_EQ(d.percentile(1.0), 10.0);
}

TEST(Distribution, Stddev) {
  Distribution d;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) d.add(x);
  EXPECT_NEAR(d.stddev(), 2.0, 1e-12);
}

TEST(Distribution, EmptyThrows) {
  Distribution d;
  EXPECT_TRUE(d.empty());
  EXPECT_THROW(d.mean(), Error);
  EXPECT_THROW(d.percentile(0.5), Error);
  d.add(1.0);
  EXPECT_THROW(d.percentile(1.5), Error);
}

TEST(Fairness, PerfectlyFair) {
  EXPECT_DOUBLE_EQ(fairness_ratio({5.0, 5.0, 5.0}), 1.0);
}

TEST(Fairness, StarvedSourceShowsUp) {
  // One source sees 4x the latency of the others.
  const double ratio = fairness_ratio({10.0, 10.0, 40.0, 10.0});
  EXPECT_NEAR(ratio, 40.0 / 17.5, 1e-12);
}

TEST(Fairness, Validation) {
  EXPECT_THROW(fairness_ratio({}), Error);
  EXPECT_THROW(fairness_ratio({-1.0}), Error);
}

TEST(Fairness, AllZeroMeansArePerfectlyFair) {
  // Degenerate empty-measurement corner: every source saw identical (zero)
  // service, so aggregation must get 1.0 instead of a trap.
  EXPECT_DOUBLE_EQ(fairness_ratio({0.0, 0.0}), 1.0);
  EXPECT_DOUBLE_EQ(fairness_ratio({0.0}), 1.0);
}

}  // namespace
}  // namespace shg::sim
