// Tests for the batched experiment engine: spec validation, determinism
// across worker counts, multi-seed aggregation, the sweep_load_latency
// wrapper's bit-identity with the engine-free implementation it replaced,
// CSV/JSON rendering (including comma-label escaping), and the session
// simulation-result tier — warm-run bit-identity, overlap reuse, cell-key
// sensitivity (every SimConfig field), sharded campaigns, and the shard-
// file corruption matrix (cold fallback, never stale bits).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <iterator>

#include "shg/common/parallel.hpp"
#include "shg/customize/session.hpp"
#include "shg/eval/experiment.hpp"
#include "shg/eval/sweep.hpp"
#include "shg/sim/trace.hpp"
#include "shg/topo/generators.hpp"

namespace shg::eval {
namespace {

PerfConfig fast_config() {
  PerfConfig config;
  config.sim.num_vcs = 2;
  config.sim.buffer_depth_flits = 4;
  config.sim.warmup_cycles = 200;
  config.sim.measure_cycles = 600;
  config.sim.drain_cycles = 8000;
  return config;
}

ExperimentSpec small_spec() {
  ExperimentSpec spec;
  spec.name = "unit";
  spec.topologies.push_back(TopologyCase{topo::make_mesh(4, 4), {}, ""});
  spec.topologies.push_back(TopologyCase{topo::make_torus(4, 4), {}, ""});
  spec.traffic.push_back(TrafficCase{"uniform", nullptr, ""});
  spec.traffic.push_back(TrafficCase{"hotspot:0,7:0.2", nullptr, ""});
  spec.rates = {0.05, 0.15};
  spec.seeds = {1, 2, 3};
  spec.config = fast_config();
  return spec;
}

TEST(Experiment, Validation) {
  ExperimentSpec spec = small_spec();
  spec.rates = {};
  EXPECT_THROW(run_experiment(spec), Error);
  spec = small_spec();
  spec.rates = {1.5};
  EXPECT_THROW(run_experiment(spec), Error);
  spec = small_spec();
  spec.traffic[0].spec = "warp";  // unknown spec rejected up front
  EXPECT_THROW(run_experiment(spec), Error);
  spec = small_spec();
  spec.topologies[0].link_latencies = {1, 2};  // wrong edge count
  EXPECT_THROW(run_experiment(spec), Error);
}

TEST(Experiment, PointGridAndLabels) {
  const ExperimentReport report = run_experiment(small_spec());
  ASSERT_EQ(report.points.size(), 2u * 2u * 2u);  // topo x traffic x rate
  // Topology-major, then traffic, then rate.
  EXPECT_EQ(report.points[0].topology, "mesh");
  EXPECT_EQ(report.points[0].traffic, "uniform");
  EXPECT_EQ(report.points[0].offered_rate, 0.05);
  EXPECT_EQ(report.points[1].offered_rate, 0.15);
  EXPECT_EQ(report.points[2].traffic, "hotspot:0,7:0.2");
  EXPECT_EQ(report.points[4].topology, "torus");
  for (const ExperimentPoint& point : report.points) {
    EXPECT_EQ(point.replicas, 3);
    ASSERT_EQ(point.runs.size(), 3u);
  }
}

TEST(Experiment, DeterministicAcrossWorkerCounts) {
  // The acceptance property: aggregates identical with one worker and
  // with the default worker count.
  const ExperimentSpec spec = small_spec();
  set_max_threads(1);
  const ExperimentReport serial = run_experiment(spec);
  set_max_threads(0);
  const ExperimentReport parallel = run_experiment(spec);
  EXPECT_EQ(experiment_to_json(serial), experiment_to_json(parallel));
  EXPECT_EQ(experiment_to_csv(serial), experiment_to_csv(parallel));
}

TEST(Experiment, AggregatesMatchHandComputation) {
  ExperimentSpec spec = small_spec();
  spec.topologies.erase(spec.topologies.begin() + 1, spec.topologies.end());
  spec.traffic.resize(1);
  spec.rates = {0.10};
  const ExperimentReport report = run_experiment(spec);
  ASSERT_EQ(report.points.size(), 1u);
  const ExperimentPoint& point = report.points.front();
  ASSERT_EQ(point.runs.size(), 3u);
  double total = 0.0;
  double lo = point.runs[0].avg_packet_latency;
  double hi = lo;
  for (const sim::SimResult& run : point.runs) {
    total += run.avg_packet_latency;
    lo = std::min(lo, run.avg_packet_latency);
    hi = std::max(hi, run.avg_packet_latency);
  }
  const double mean = total / 3.0;
  EXPECT_DOUBLE_EQ(point.avg_latency.mean, mean);
  EXPECT_DOUBLE_EQ(point.avg_latency.min, lo);
  EXPECT_DOUBLE_EQ(point.avg_latency.max, hi);
  double sq = 0.0;
  for (const sim::SimResult& run : point.runs) {
    sq += (run.avg_packet_latency - mean) * (run.avg_packet_latency - mean);
  }
  EXPECT_DOUBLE_EQ(point.avg_latency.stddev, std::sqrt(sq / 3.0));
  // Distinct seeds really are distinct runs.
  EXPECT_NE(point.runs[0].avg_packet_latency,
            point.runs[1].avg_packet_latency);
}

TEST(Experiment, MultiSeedSameSeedCollapses) {
  ExperimentSpec spec = small_spec();
  spec.topologies.erase(spec.topologies.begin() + 1, spec.topologies.end());
  spec.traffic.resize(1);
  spec.rates = {0.10};
  spec.seeds = {7, 7};
  const ExperimentReport report = run_experiment(spec);
  const ExperimentPoint& point = report.points.front();
  EXPECT_EQ(point.runs[0].avg_packet_latency,
            point.runs[1].avg_packet_latency);
  EXPECT_DOUBLE_EQ(point.avg_latency.stddev, 0.0);
}

TEST(Experiment, SweepWrapperBitIdenticalToDirectLoop) {
  // sweep_load_latency is now a wrapper over the engine; its curve must be
  // bit-identical to the engine-free implementation it replaced (one
  // shared route table, one simulate_at_rate per rate).
  const auto topo = topo::make_mesh(4, 4);
  const std::vector<int> latencies(
      static_cast<std::size_t>(topo.graph().num_edges()), 1);
  const auto pattern = sim::make_uniform(16);
  const PerfConfig config = fast_config();
  const std::vector<double> rates = {0.05, 0.10, 0.20};

  const LoadLatencyCurve curve = sweep_load_latency(
      topo, latencies, 1, *pattern, config, rates, "mesh");

  const auto table = make_shared_route_table(topo, config);
  ASSERT_EQ(curve.points.size(), rates.size());
  for (std::size_t i = 0; i < rates.size(); ++i) {
    const sim::SimResult reference = simulate_at_rate(
        topo, latencies, 1, *pattern, config, rates[i], table);
    EXPECT_EQ(curve.points[i].offered_rate, reference.offered_rate);
    EXPECT_EQ(curve.points[i].accepted_rate, reference.accepted_rate);
    EXPECT_EQ(curve.points[i].avg_latency, reference.avg_packet_latency);
    EXPECT_EQ(curve.points[i].p99_latency, reference.p99_packet_latency);
    EXPECT_EQ(curve.points[i].drained, reference.drained);
  }
}

TEST(Experiment, CsvEscapesCommaLabels) {
  ExperimentSpec spec = small_spec();
  spec.topologies.erase(spec.topologies.begin() + 1, spec.topologies.end());
  spec.traffic = {TrafficCase{"hotspot:0,7:0.2", nullptr, ""}};
  spec.rates = {0.05};
  spec.seeds = {1};
  const std::string csv = experiment_to_csv(run_experiment(spec));
  EXPECT_NE(csv.find("\"hotspot:0,7:0.2\""), std::string::npos);
  // Every data row still has the same column count as the header.
  const auto count_cols = [](const std::string& line) {
    std::size_t cols = 1;
    bool quoted = false;
    for (char c : line) {
      if (c == '"') quoted = !quoted;
      if (c == ',' && !quoted) ++cols;
    }
    return cols;
  };
  const auto header_end = csv.find('\n');
  const auto row_end = csv.find('\n', header_end + 1);
  EXPECT_EQ(count_cols(csv.substr(0, header_end)),
            count_cols(csv.substr(header_end + 1,
                                  row_end - header_end - 1)));
}

TEST(Experiment, CurvesCsvEscapesLabels) {
  LoadLatencyCurve curve;
  curve.label = "hotspot:0,7:0.2 \"bursty\"";
  curve.points.push_back(SweepPoint{0.1, 0.1, 5.0, 9.0, true});
  const std::string csv = curves_to_csv({curve});
  EXPECT_NE(csv.find("\"hotspot:0,7:0.2 \"\"bursty\"\"\","),
            std::string::npos);
}

TEST(Experiment, JsonReportShape) {
  ExperimentSpec spec = small_spec();
  spec.topologies.erase(spec.topologies.begin() + 1, spec.topologies.end());
  spec.traffic.resize(1);
  spec.rates = {0.05};
  spec.seeds = {1};
  const std::string json = experiment_to_json(run_experiment(spec));
  EXPECT_NE(json.find("\"schema\": \"shg.experiment.v1\""),
            std::string::npos);
  EXPECT_NE(json.find("\"topology\": \"mesh\""), std::string::npos);
  EXPECT_NE(json.find("\"accepted_rate\""), std::string::npos);
  EXPECT_NE(json.find("\"stddev\""), std::string::npos);
  EXPECT_NE(json.find("\"route_tables\""), std::string::npos);
  EXPECT_NE(json.find("\"bytes_undeduped\""), std::string::npos);
}

TEST(Experiment, ReportsDedupedRouteTableFootprint) {
  ExperimentSpec spec = small_spec();
  const ExperimentReport report = run_experiment(spec);
  ASSERT_EQ(report.route_tables.size(), spec.topologies.size());
  for (const TableFootprint& table : report.route_tables) {
    EXPECT_GT(table.rows, table.unique_rows);
    EXPECT_LT(table.bytes, table.bytes_undeduped);
  }
}

TEST(Experiment, Figure6SpecRunsThroughEngine) {
  // The Figure 6 scenarios expressed as ExperimentSpecs: cost-model link
  // latencies per topology, uniform Bernoulli traffic. Shrunk here (two
  // topologies, short cycles) to keep the suite fast.
  ExperimentSpec spec =
      figure6_experiment(figure6_scenario(tech::KncScenario::kA),
                         {0.05, 0.10});
  ASSERT_GE(spec.topologies.size(), 5u);
  for (const TopologyCase& tc : spec.topologies) {
    EXPECT_EQ(tc.link_latencies.size(),
              static_cast<std::size_t>(tc.topology.graph().num_edges()));
  }
  // The customized SHG is the last entry (scenario_topologies contract).
  EXPECT_EQ(spec.topologies.back().topology.kind(),
            topo::Kind::kSparseHamming);
  spec.topologies.erase(spec.topologies.begin() + 1,
                        spec.topologies.end() - 1);
  spec.config.sim.warmup_cycles = 200;
  spec.config.sim.measure_cycles = 600;
  spec.config.sim.drain_cycles = 8000;
  const ExperimentReport report = run_experiment(spec);
  ASSERT_EQ(report.points.size(), 2u * 2u);
  for (const ExperimentPoint& point : report.points) {
    EXPECT_EQ(point.traffic, "uniform");
    EXPECT_TRUE(point.all_drained);
    EXPECT_GT(point.avg_latency.mean, 0.0);
  }
}

// ---------------------------------------------------------------------------
// Session simulation-result tier
// ---------------------------------------------------------------------------

std::string report_bytes(const ExperimentReport& report) {
  return experiment_to_json(report) + experiment_to_csv(report);
}

/// The session-free rendering of small_spec() — the oracle every
/// session-backed variant must reproduce byte for byte. Computed once.
const std::string& reference_bytes() {
  static const std::string bytes = report_bytes(run_experiment(small_spec()));
  return bytes;
}

TEST(ResultTier, WarmRunZeroSimsByteIdentical) {
  ExperimentSpec spec = small_spec();
  customize::Session session;
  spec.session = &session;

  const ExperimentReport cold = run_experiment(spec);
  const std::size_t cells = spec.topologies.size() * spec.traffic.size() *
                            spec.rates.size() * spec.seeds.size();
  EXPECT_EQ(cold.sim_cells, cells);
  EXPECT_EQ(cold.sim_cache_hits, 0u);
  EXPECT_EQ(cold.sim_simulated, cells);
  EXPECT_EQ(report_bytes(cold), reference_bytes());

  const ExperimentReport warm = run_experiment(spec);
  EXPECT_EQ(warm.sim_cache_hits, cells);
  EXPECT_EQ(warm.sim_simulated, 0u);  // a fully warm run simulates nothing
  EXPECT_EQ(report_bytes(warm), reference_bytes());
}

TEST(ResultTier, OverlapOnlySimulatesNewCells) {
  ExperimentSpec spec = small_spec();
  customize::Session session;
  spec.session = &session;
  spec.seeds = {1, 2};
  run_experiment(spec);

  // Widen the campaign by one seed: only the new cells simulate, and the
  // report matches a session-free run of the widened spec exactly.
  spec.seeds = {1, 2, 3};
  const ExperimentReport warm = run_experiment(spec);
  const std::size_t per_seed =
      spec.topologies.size() * spec.traffic.size() * spec.rates.size();
  EXPECT_EQ(warm.sim_cache_hits, 2u * per_seed);
  EXPECT_EQ(warm.sim_simulated, per_seed);
  EXPECT_EQ(report_bytes(warm), reference_bytes());
}

TEST(ResultTier, BorrowedPatternCellsAlwaysSimulate) {
  // Workloads passed as borrowed TrafficPattern pointers have no canonical
  // string, so they are never cached — a warm re-run re-simulates exactly
  // those cells, and both runs render identically.
  ExperimentSpec spec = small_spec();
  const auto pattern = sim::make_uniform(16);
  spec.traffic[1] = TrafficCase{"", pattern.get(), "borrowed-uniform"};
  customize::Session session;
  spec.session = &session;

  const ExperimentReport cold = run_experiment(spec);
  const ExperimentReport warm = run_experiment(spec);
  const std::size_t borrowed_cells =
      spec.topologies.size() * spec.rates.size() * spec.seeds.size();
  EXPECT_EQ(warm.sim_cache_hits, cold.sim_cells - borrowed_cells);
  EXPECT_EQ(warm.sim_simulated, borrowed_cells);
  EXPECT_EQ(report_bytes(warm), report_bytes(cold));
}

TEST(ResultTier, ShardMergeMatchesSingleProcess) {
  // The sharded campaign protocol end to end, including a shard count that
  // does not divide the grid evenly: workers partition the cells exactly,
  // and the merged session serves every cell without simulating.
  for (const int shard_count : {2, 5}) {
    customize::Session merged;
    std::size_t worker_simulated = 0;
    std::size_t owned = 0;
    for (int s = 0; s < shard_count; ++s) {
      const std::string path = testing::TempDir() + "/shard" +
                               std::to_string(s) + "of" +
                               std::to_string(shard_count) + ".cache";
      customize::Session worker;
      ExperimentSpec spec = small_spec();
      spec.session = &worker;
      const ShardRunStats stats =
          run_experiment_shard(spec, s, shard_count);
      EXPECT_EQ(stats.simulated, stats.shard_cells);  // fresh worker
      worker_simulated += stats.simulated;
      owned += stats.shard_cells;
      EXPECT_EQ(worker.sim_cache().save_file(path), stats.shard_cells);
      EXPECT_EQ(merged.sim_cache().load_file(path), stats.shard_cells);
      std::remove(path.c_str());
    }
    ExperimentSpec spec = small_spec();
    const std::size_t cells = spec.topologies.size() * spec.traffic.size() *
                              spec.rates.size() * spec.seeds.size();
    EXPECT_EQ(owned, cells);             // exact partition, no overlap
    EXPECT_EQ(worker_simulated, cells);  // each cell simulated exactly once
    spec.session = &merged;
    const ExperimentReport report = run_experiment(spec);
    EXPECT_EQ(report.sim_simulated, 0u) << shard_count << " shards";
    EXPECT_EQ(report_bytes(report), reference_bytes())
        << shard_count << " shards";
  }
}

TEST(ResultTier, ShardRunValidation) {
  ExperimentSpec spec = small_spec();
  EXPECT_THROW(run_experiment_shard(spec, 0, 2), Error);  // session required
  customize::Session session;
  spec.session = &session;
  EXPECT_THROW(run_experiment_shard(spec, 2, 2), Error);
  EXPECT_THROW(run_experiment_shard(spec, -1, 2), Error);
  EXPECT_THROW(run_experiment_shard(spec, 0, 0), Error);
}

/// Rewrites one byte of a file in place.
void flip_byte(const std::string& path, long offset) {
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(f.good());
  f.seekg(offset);
  char c = 0;
  f.read(&c, 1);
  c = static_cast<char>(c ^ 0x5a);
  f.seekp(offset);
  f.write(&c, 1);
}

/// Corruption matrix for per-shard result-tier files: every damaged file
/// must be discarded with a warning and the campaign must fall back to
/// cold simulation with a byte-identical report — never crash, never
/// serve stale bits.
class ShardCorruptionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = testing::TempDir() + "/sim-shard-corrupt.cache";
    customize::Session worker;
    ExperimentSpec spec = small_spec();
    spec.session = &worker;
    const ShardRunStats stats = run_experiment_shard(spec, 0, 1);
    ASSERT_EQ(worker.sim_cache().save_file(path_), stats.shard_cells);
  }
  void TearDown() override { std::remove(path_.c_str()); }

  void expect_cold_fallback() {
    customize::Session session;
    EXPECT_EQ(session.sim_cache().load_file(path_), 0u);
    EXPECT_EQ(session.sim_cache().size(), 0u);
    EXPECT_EQ(session.sim_stats().disk_discarded, 1u);
    ExperimentSpec spec = small_spec();
    spec.session = &session;
    const ExperimentReport report = run_experiment(spec);
    EXPECT_EQ(report.sim_cache_hits, 0u);
    EXPECT_EQ(report.sim_simulated, report.sim_cells);
    EXPECT_EQ(report_bytes(report), reference_bytes());
  }

  std::string path_;
};

TEST_F(ShardCorruptionTest, TruncatedHeaderFallsBackCold) {
  std::ofstream(path_, std::ios::binary | std::ios::trunc) << "SHGCACH";
  expect_cold_fallback();
}

TEST_F(ShardCorruptionTest, TruncatedPayloadFallsBackCold) {
  std::ifstream in(path_, std::ios::binary);
  std::vector<char> data((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
  in.close();
  data.resize(data.size() - 13);  // mid-entry truncation
  std::ofstream out(path_, std::ios::binary | std::ios::trunc);
  out.write(data.data(), static_cast<std::streamsize>(data.size()));
  out.close();
  expect_cold_fallback();
}

TEST_F(ShardCorruptionTest, FlippedChecksumByteFallsBackCold) {
  flip_byte(path_, 24);  // inside the stored checksum
  expect_cold_fallback();
}

TEST_F(ShardCorruptionTest, FlippedPayloadByteFallsBackCold) {
  flip_byte(path_, 32 + 50);  // inside the first entry's SimResult
  expect_cold_fallback();
}

TEST_F(ShardCorruptionTest, FutureVersionFallsBackCold) {
  flip_byte(path_, 8);  // version field
  expect_cold_fallback();
}

TEST_F(ShardCorruptionTest, WrongMagicFallsBackCold) {
  flip_byte(path_, 0);
  expect_cold_fallback();
}

TEST_F(ShardCorruptionTest, WrongPayloadKindFallsBackCold) {
  flip_byte(path_, 12);  // payload-kind field: no longer a sim-result file
  expect_cold_fallback();
}

TEST_F(ShardCorruptionTest, CandidateFileFedToSimLoaderFallsBackCold) {
  // A real, checksum-valid candidate-tier file is still the wrong payload
  // kind for the result tier — it must be rejected, not reinterpreted.
  customize::CandidateCache candidates(4);
  customize::CandidateMetrics metrics;
  metrics.area_overhead = 0.25;
  candidates.insert(
      customize::FingerprintBuilder().tag("test.key").u64(1).done(), metrics);
  ASSERT_EQ(candidates.save_file(path_), 1u);
  expect_cold_fallback();
}

TEST_F(ShardCorruptionTest, LostShardIsSimulatedByTheMerge) {
  // One good shard of two, the other corrupt: the merge discards the bad
  // file, serves the good shard's cells, simulates the rest, and still
  // renders the canonical bytes.
  const std::string good = testing::TempDir() + "/sim-shard-good.cache";
  customize::Session worker;
  ExperimentSpec spec = small_spec();
  spec.session = &worker;
  const ShardRunStats stats = run_experiment_shard(spec, 1, 2);
  ASSERT_EQ(worker.sim_cache().save_file(good), stats.shard_cells);
  flip_byte(path_, 32 + 5);  // the full-grid file from SetUp, now corrupt

  customize::Session merged;
  EXPECT_EQ(merged.sim_cache().load_file(path_), 0u);
  EXPECT_EQ(merged.sim_cache().load_file(good), stats.shard_cells);
  std::remove(good.c_str());
  ExperimentSpec merge_spec = small_spec();
  merge_spec.session = &merged;
  const ExperimentReport report = run_experiment(merge_spec);
  EXPECT_EQ(report.sim_cache_hits, stats.shard_cells);
  EXPECT_EQ(report.sim_simulated, report.sim_cells - stats.shard_cells);
  EXPECT_EQ(report_bytes(report), reference_bytes());
}

// ---------------------------------------------------------------------------
// Cell-key fingerprints
// ---------------------------------------------------------------------------

TEST(ResultTierKeys, SimConfigFingerprintCoversEveryField) {
  // Perturb every SimConfig field in turn: each must change the config
  // fingerprint, and no two perturbations may alias. When this test (or
  // the sizeof static_assert next to fingerprint_sim_config) fails after
  // adding a field, extend both the fingerprint and this list.
  const sim::SimConfig base;
  std::vector<sim::SimConfig> perturbed(17, base);
  perturbed[0].num_vcs += 1;
  perturbed[1].buffer_depth_flits += 1;
  perturbed[2].router_delay_cycles += 1;
  perturbed[3].packet_size_flits += 1;
  perturbed[4].injection_rate += 0.01;
  perturbed[5].concentration += 1;
  perturbed[6].warmup_cycles += 1;
  perturbed[7].measure_cycles += 1;
  perturbed[8].drain_cycles += 1;
  perturbed[9].use_route_table = !base.use_route_table;
  perturbed[10].verify_route_table = !base.verify_route_table;
  perturbed[11].use_soa_engine = !base.use_soa_engine;
  perturbed[12].latency_sample_cap += 1;
  perturbed[13].seed += 1;
  perturbed[14].routing_policy = sim::RoutingPolicy::kUgal;
  perturbed[15].ugal_bias_flits += 1;
  perturbed[16].ugal_via_seed += 1;

  std::vector<customize::Fingerprint> fps;
  fps.push_back(customize::fingerprint_sim_config(base));
  EXPECT_EQ(fps[0], customize::fingerprint_sim_config(base));
  for (std::size_t i = 0; i < perturbed.size(); ++i) {
    fps.push_back(customize::fingerprint_sim_config(perturbed[i]));
  }
  for (std::size_t i = 0; i < fps.size(); ++i) {
    for (std::size_t j = i + 1; j < fps.size(); ++j) {
      EXPECT_FALSE(fps[i] == fps[j]) << "field " << i << " aliases " << j;
    }
  }
}

TEST(ResultTierKeys, CellKeyTracksEveryIngredient) {
  const topo::Topology mesh = topo::make_mesh(4, 4);
  const std::vector<int> unit(
      static_cast<std::size_t>(mesh.graph().num_edges()), 1);
  const customize::Fingerprint topo_fp =
      customize::fingerprint_sim_topology(mesh, unit, 1);
  EXPECT_EQ(topo_fp, customize::fingerprint_sim_topology(mesh, unit, 1));

  // Link latencies and endpoint count are physical inputs to the cell.
  std::vector<int> slower = unit;
  slower[3] = 2;
  EXPECT_FALSE(topo_fp == customize::fingerprint_sim_topology(mesh, slower, 1));
  EXPECT_FALSE(topo_fp == customize::fingerprint_sim_topology(mesh, unit, 2));
  // Family kind feeds routing even on an identical edge set: an SHG with
  // empty skip sets has the mesh's edges but must not share its cells.
  const topo::Topology shg = topo::make_sparse_hamming(4, 4, {}, {});
  const std::vector<int> shg_unit(
      static_cast<std::size_t>(shg.graph().num_edges()), 1);
  EXPECT_FALSE(topo_fp ==
               customize::fingerprint_sim_topology(shg, shg_unit, 1));

  const sim::SimConfig config;
  const customize::Fingerprint cell =
      customize::fingerprint_sim_cell(topo_fp, "uniform", config);
  EXPECT_EQ(cell, customize::fingerprint_sim_cell(topo_fp, "uniform", config));
  EXPECT_FALSE(cell ==
               customize::fingerprint_sim_cell(topo_fp, "transpose", config));
  sim::SimConfig reseeded = config;
  reseeded.seed += 1;
  EXPECT_FALSE(cell ==
               customize::fingerprint_sim_cell(topo_fp, "uniform", reseeded));
}

// --- Trace cells through the result tier -----------------------------------

/// Records a small uniform trace for the 4x4 grids of small_spec().
sim::Trace unit_trace(std::uint64_t seed) {
  sim::TraceRecordOptions opt;
  opt.rows = 4;
  opt.cols = 4;
  opt.injection_rate = 0.05;
  opt.packet_size_flits = fast_config().sim.packet_size_flits;
  opt.cycles = 800;
  opt.seed = seed;
  return sim::trace_from_spec(sim::TrafficSpec::parse("uniform"), opt);
}

TEST(ResultTierKeys, TraceCellKeysDistinctForOneByteDifference) {
  // Two traces that differ in a single byte of a single record must key
  // distinct cells, even under an identical canonical spec string (same
  // path, edited file) — the content hash is the distinguishing
  // ingredient. A zero hash (synthetic workloads) keys the legacy bytes.
  const topo::Topology mesh = topo::make_mesh(4, 4);
  const std::vector<int> unit(
      static_cast<std::size_t>(mesh.graph().num_edges()), 1);
  const customize::Fingerprint topo_fp =
      customize::fingerprint_sim_topology(mesh, unit, 1);
  const sim::SimConfig config;

  sim::Trace a = unit_trace(1);
  sim::Trace b = a;
  b.records[0].dest ^= 1;  // one bit of one byte of one record
  const std::string canonical = "trace:same/path.trace";
  const customize::Fingerprint key_a = customize::fingerprint_sim_cell(
      topo_fp, canonical, config, a.content_hash());
  const customize::Fingerprint key_b = customize::fingerprint_sim_cell(
      topo_fp, canonical, config, b.content_hash());
  EXPECT_FALSE(key_a == key_b);
  EXPECT_EQ(key_a, customize::fingerprint_sim_cell(topo_fp, canonical, config,
                                                   a.content_hash()));
}

TEST(ResultTier, WarmTraceCampaignZeroSimsByteIdentical) {
  // Trace cells are fully cacheable: a warm campaign over a trace workload
  // re-simulates nothing and renders byte-identically, and the cold run
  // matches a session-free reference at any worker count.
  const std::string path = testing::TempDir() + "/warm-campaign.trace";
  sim::save_trace(unit_trace(3), path);
  ExperimentSpec spec = small_spec();
  spec.traffic[1] = TrafficCase{"trace:" + path, nullptr, ""};

  const std::string reference = report_bytes(run_experiment(spec));
  set_max_threads(1);
  const std::string serial = report_bytes(run_experiment(spec));
  set_max_threads(0);
  EXPECT_EQ(serial, reference);

  customize::Session session;
  spec.session = &session;
  const ExperimentReport cold = run_experiment(spec);
  EXPECT_EQ(cold.sim_simulated, cold.sim_cells);
  EXPECT_EQ(report_bytes(cold), reference);

  const ExperimentReport warm = run_experiment(spec);
  EXPECT_EQ(warm.sim_simulated, 0u);
  EXPECT_EQ(warm.sim_cache_hits, warm.sim_cells);
  EXPECT_EQ(report_bytes(warm), reference);
}

TEST(ResultTier, EditedTraceFileMissesTheOldCells) {
  // Overwriting the trace file in place (same path, different bytes) must
  // MISS every cached cell: the key carries the content hash, not just
  // the path string.
  const std::string path = testing::TempDir() + "/edited.trace";
  sim::save_trace(unit_trace(1), path);
  ExperimentSpec spec = small_spec();
  spec.traffic = {TrafficCase{"trace:" + path, nullptr, ""}};
  customize::Session session;
  spec.session = &session;
  const ExperimentReport cold = run_experiment(spec);
  EXPECT_EQ(cold.sim_simulated, cold.sim_cells);

  sim::save_trace(unit_trace(2), path);  // new bytes, same path
  const ExperimentReport edited = run_experiment(spec);
  EXPECT_EQ(edited.sim_cache_hits, 0u);
  EXPECT_EQ(edited.sim_simulated, edited.sim_cells);

  // And the original bytes restored hit all their old cells again.
  sim::save_trace(unit_trace(1), path);
  const ExperimentReport warm = run_experiment(spec);
  EXPECT_EQ(warm.sim_simulated, 0u);
  EXPECT_EQ(report_bytes(warm), report_bytes(cold));
}

TEST(ResultTier, TraceShardMergeMatchesSingleProcess) {
  // Trace cells flow through the sharded-campaign protocol unchanged: two
  // shards exchanging shg.cache.v1 files merge into a run that simulates
  // nothing and renders the single-process bytes.
  const std::string trace_path = testing::TempDir() + "/shardable.trace";
  sim::save_trace(unit_trace(5), trace_path);
  ExperimentSpec spec = small_spec();
  spec.traffic[0] = TrafficCase{"trace:" + trace_path, nullptr, ""};

  const std::string reference = report_bytes(run_experiment(spec));

  customize::Session merged;
  for (int shard = 0; shard < 2; ++shard) {
    customize::Session worker;
    ExperimentSpec worker_spec = spec;
    worker_spec.session = &worker;
    const ShardRunStats stats = run_experiment_shard(worker_spec, shard, 2);
    EXPECT_EQ(stats.simulated, stats.shard_cells);
    const std::string path = testing::TempDir() + "/trace-shard" +
                             std::to_string(shard) + ".cache";
    ASSERT_EQ(worker.sim_cache().save_file(path), stats.shard_cells);
    ASSERT_EQ(merged.sim_cache().load_file(path), stats.shard_cells);
    std::remove(path.c_str());
  }
  ExperimentSpec merged_spec = spec;
  merged_spec.session = &merged;
  const ExperimentReport report = run_experiment(merged_spec);
  EXPECT_EQ(report.sim_simulated, 0u);
  EXPECT_EQ(report_bytes(report), reference);
}

}  // namespace
}  // namespace shg::eval
