// Tests for the batched experiment engine: spec validation, determinism
// across worker counts, multi-seed aggregation, the sweep_load_latency
// wrapper's bit-identity with the engine-free implementation it replaced,
// and CSV/JSON rendering (including comma-label escaping).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "shg/common/parallel.hpp"
#include "shg/eval/experiment.hpp"
#include "shg/eval/sweep.hpp"
#include "shg/topo/generators.hpp"

namespace shg::eval {
namespace {

PerfConfig fast_config() {
  PerfConfig config;
  config.sim.num_vcs = 2;
  config.sim.buffer_depth_flits = 4;
  config.sim.warmup_cycles = 200;
  config.sim.measure_cycles = 600;
  config.sim.drain_cycles = 8000;
  return config;
}

ExperimentSpec small_spec() {
  ExperimentSpec spec;
  spec.name = "unit";
  spec.topologies.push_back(TopologyCase{topo::make_mesh(4, 4), {}, ""});
  spec.topologies.push_back(TopologyCase{topo::make_torus(4, 4), {}, ""});
  spec.traffic.push_back(TrafficCase{"uniform", nullptr, ""});
  spec.traffic.push_back(TrafficCase{"hotspot:0,7:0.2", nullptr, ""});
  spec.rates = {0.05, 0.15};
  spec.seeds = {1, 2, 3};
  spec.config = fast_config();
  return spec;
}

TEST(Experiment, Validation) {
  ExperimentSpec spec = small_spec();
  spec.rates = {};
  EXPECT_THROW(run_experiment(spec), Error);
  spec = small_spec();
  spec.rates = {1.5};
  EXPECT_THROW(run_experiment(spec), Error);
  spec = small_spec();
  spec.traffic[0].spec = "warp";  // unknown spec rejected up front
  EXPECT_THROW(run_experiment(spec), Error);
  spec = small_spec();
  spec.topologies[0].link_latencies = {1, 2};  // wrong edge count
  EXPECT_THROW(run_experiment(spec), Error);
}

TEST(Experiment, PointGridAndLabels) {
  const ExperimentReport report = run_experiment(small_spec());
  ASSERT_EQ(report.points.size(), 2u * 2u * 2u);  // topo x traffic x rate
  // Topology-major, then traffic, then rate.
  EXPECT_EQ(report.points[0].topology, "mesh");
  EXPECT_EQ(report.points[0].traffic, "uniform");
  EXPECT_EQ(report.points[0].offered_rate, 0.05);
  EXPECT_EQ(report.points[1].offered_rate, 0.15);
  EXPECT_EQ(report.points[2].traffic, "hotspot:0,7:0.2");
  EXPECT_EQ(report.points[4].topology, "torus");
  for (const ExperimentPoint& point : report.points) {
    EXPECT_EQ(point.replicas, 3);
    ASSERT_EQ(point.runs.size(), 3u);
  }
}

TEST(Experiment, DeterministicAcrossWorkerCounts) {
  // The acceptance property: aggregates identical with one worker and
  // with the default worker count.
  const ExperimentSpec spec = small_spec();
  set_max_threads(1);
  const ExperimentReport serial = run_experiment(spec);
  set_max_threads(0);
  const ExperimentReport parallel = run_experiment(spec);
  EXPECT_EQ(experiment_to_json(serial), experiment_to_json(parallel));
  EXPECT_EQ(experiment_to_csv(serial), experiment_to_csv(parallel));
}

TEST(Experiment, AggregatesMatchHandComputation) {
  ExperimentSpec spec = small_spec();
  spec.topologies.erase(spec.topologies.begin() + 1, spec.topologies.end());
  spec.traffic.resize(1);
  spec.rates = {0.10};
  const ExperimentReport report = run_experiment(spec);
  ASSERT_EQ(report.points.size(), 1u);
  const ExperimentPoint& point = report.points.front();
  ASSERT_EQ(point.runs.size(), 3u);
  double total = 0.0;
  double lo = point.runs[0].avg_packet_latency;
  double hi = lo;
  for (const sim::SimResult& run : point.runs) {
    total += run.avg_packet_latency;
    lo = std::min(lo, run.avg_packet_latency);
    hi = std::max(hi, run.avg_packet_latency);
  }
  const double mean = total / 3.0;
  EXPECT_DOUBLE_EQ(point.avg_latency.mean, mean);
  EXPECT_DOUBLE_EQ(point.avg_latency.min, lo);
  EXPECT_DOUBLE_EQ(point.avg_latency.max, hi);
  double sq = 0.0;
  for (const sim::SimResult& run : point.runs) {
    sq += (run.avg_packet_latency - mean) * (run.avg_packet_latency - mean);
  }
  EXPECT_DOUBLE_EQ(point.avg_latency.stddev, std::sqrt(sq / 3.0));
  // Distinct seeds really are distinct runs.
  EXPECT_NE(point.runs[0].avg_packet_latency,
            point.runs[1].avg_packet_latency);
}

TEST(Experiment, MultiSeedSameSeedCollapses) {
  ExperimentSpec spec = small_spec();
  spec.topologies.erase(spec.topologies.begin() + 1, spec.topologies.end());
  spec.traffic.resize(1);
  spec.rates = {0.10};
  spec.seeds = {7, 7};
  const ExperimentReport report = run_experiment(spec);
  const ExperimentPoint& point = report.points.front();
  EXPECT_EQ(point.runs[0].avg_packet_latency,
            point.runs[1].avg_packet_latency);
  EXPECT_DOUBLE_EQ(point.avg_latency.stddev, 0.0);
}

TEST(Experiment, SweepWrapperBitIdenticalToDirectLoop) {
  // sweep_load_latency is now a wrapper over the engine; its curve must be
  // bit-identical to the engine-free implementation it replaced (one
  // shared route table, one simulate_at_rate per rate).
  const auto topo = topo::make_mesh(4, 4);
  const std::vector<int> latencies(
      static_cast<std::size_t>(topo.graph().num_edges()), 1);
  const auto pattern = sim::make_uniform(16);
  const PerfConfig config = fast_config();
  const std::vector<double> rates = {0.05, 0.10, 0.20};

  const LoadLatencyCurve curve = sweep_load_latency(
      topo, latencies, 1, *pattern, config, rates, "mesh");

  const auto table = make_shared_route_table(topo, config);
  ASSERT_EQ(curve.points.size(), rates.size());
  for (std::size_t i = 0; i < rates.size(); ++i) {
    const sim::SimResult reference = simulate_at_rate(
        topo, latencies, 1, *pattern, config, rates[i], table);
    EXPECT_EQ(curve.points[i].offered_rate, reference.offered_rate);
    EXPECT_EQ(curve.points[i].accepted_rate, reference.accepted_rate);
    EXPECT_EQ(curve.points[i].avg_latency, reference.avg_packet_latency);
    EXPECT_EQ(curve.points[i].p99_latency, reference.p99_packet_latency);
    EXPECT_EQ(curve.points[i].drained, reference.drained);
  }
}

TEST(Experiment, CsvEscapesCommaLabels) {
  ExperimentSpec spec = small_spec();
  spec.topologies.erase(spec.topologies.begin() + 1, spec.topologies.end());
  spec.traffic = {TrafficCase{"hotspot:0,7:0.2", nullptr, ""}};
  spec.rates = {0.05};
  spec.seeds = {1};
  const std::string csv = experiment_to_csv(run_experiment(spec));
  EXPECT_NE(csv.find("\"hotspot:0,7:0.2\""), std::string::npos);
  // Every data row still has the same column count as the header.
  const auto count_cols = [](const std::string& line) {
    std::size_t cols = 1;
    bool quoted = false;
    for (char c : line) {
      if (c == '"') quoted = !quoted;
      if (c == ',' && !quoted) ++cols;
    }
    return cols;
  };
  const auto header_end = csv.find('\n');
  const auto row_end = csv.find('\n', header_end + 1);
  EXPECT_EQ(count_cols(csv.substr(0, header_end)),
            count_cols(csv.substr(header_end + 1,
                                  row_end - header_end - 1)));
}

TEST(Experiment, CurvesCsvEscapesLabels) {
  LoadLatencyCurve curve;
  curve.label = "hotspot:0,7:0.2 \"bursty\"";
  curve.points.push_back(SweepPoint{0.1, 0.1, 5.0, 9.0, true});
  const std::string csv = curves_to_csv({curve});
  EXPECT_NE(csv.find("\"hotspot:0,7:0.2 \"\"bursty\"\"\","),
            std::string::npos);
}

TEST(Experiment, JsonReportShape) {
  ExperimentSpec spec = small_spec();
  spec.topologies.erase(spec.topologies.begin() + 1, spec.topologies.end());
  spec.traffic.resize(1);
  spec.rates = {0.05};
  spec.seeds = {1};
  const std::string json = experiment_to_json(run_experiment(spec));
  EXPECT_NE(json.find("\"schema\": \"shg.experiment.v1\""),
            std::string::npos);
  EXPECT_NE(json.find("\"topology\": \"mesh\""), std::string::npos);
  EXPECT_NE(json.find("\"accepted_rate\""), std::string::npos);
  EXPECT_NE(json.find("\"stddev\""), std::string::npos);
  EXPECT_NE(json.find("\"route_tables\""), std::string::npos);
  EXPECT_NE(json.find("\"bytes_undeduped\""), std::string::npos);
}

TEST(Experiment, ReportsDedupedRouteTableFootprint) {
  ExperimentSpec spec = small_spec();
  const ExperimentReport report = run_experiment(spec);
  ASSERT_EQ(report.route_tables.size(), spec.topologies.size());
  for (const TableFootprint& table : report.route_tables) {
    EXPECT_GT(table.rows, table.unique_rows);
    EXPECT_LT(table.bytes, table.bytes_undeduped);
  }
}

TEST(Experiment, Figure6SpecRunsThroughEngine) {
  // The Figure 6 scenarios expressed as ExperimentSpecs: cost-model link
  // latencies per topology, uniform Bernoulli traffic. Shrunk here (two
  // topologies, short cycles) to keep the suite fast.
  ExperimentSpec spec =
      figure6_experiment(figure6_scenario(tech::KncScenario::kA),
                         {0.05, 0.10});
  ASSERT_GE(spec.topologies.size(), 5u);
  for (const TopologyCase& tc : spec.topologies) {
    EXPECT_EQ(tc.link_latencies.size(),
              static_cast<std::size_t>(tc.topology.graph().num_edges()));
  }
  // The customized SHG is the last entry (scenario_topologies contract).
  EXPECT_EQ(spec.topologies.back().topology.kind(),
            topo::Kind::kSparseHamming);
  spec.topologies.erase(spec.topologies.begin() + 1,
                        spec.topologies.end() - 1);
  spec.config.sim.warmup_cycles = 200;
  spec.config.sim.measure_cycles = 600;
  spec.config.sim.drain_cycles = 8000;
  const ExperimentReport report = run_experiment(spec);
  ASSERT_EQ(report.points.size(), 2u * 2u);
  for (const ExperimentPoint& point : report.points) {
    EXPECT_EQ(point.traffic, "uniform");
    EXPECT_TRUE(point.all_drained);
    EXPECT_GT(point.avg_latency.mean, 0.0);
  }
}

}  // namespace
}  // namespace shg::eval
