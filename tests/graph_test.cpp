// Unit tests for shg/graph: adjacency, shortest paths, spanning trees,
// up*/down* tables, and CDG cycle detection.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "shg/graph/adjacency.hpp"
#include "shg/graph/cdg.hpp"
#include "shg/graph/shortest_paths.hpp"
#include "shg/graph/spanning_tree.hpp"

namespace shg::graph {
namespace {

Graph path_graph(int n) {
  Graph g(n);
  for (int i = 0; i + 1 < n; ++i) g.add_edge(i, i + 1);
  return g;
}

Graph cycle_graph(int n) {
  Graph g = path_graph(n);
  g.add_edge(n - 1, 0);
  return g;
}

TEST(Graph, AddAndQueryEdges) {
  Graph g(4);
  const EdgeId e = g.add_edge(0, 2);
  EXPECT_EQ(g.num_nodes(), 4);
  EXPECT_EQ(g.num_edges(), 1);
  EXPECT_TRUE(g.has_edge(0, 2));
  EXPECT_TRUE(g.has_edge(2, 0));
  EXPECT_FALSE(g.has_edge(0, 1));
  EXPECT_EQ(g.edge(e).other(0), 2);
  EXPECT_EQ(g.edge(e).other(2), 0);
}

TEST(Graph, RejectsSelfLoopsAndParallelEdges) {
  Graph g(3);
  g.add_edge(0, 1);
  EXPECT_THROW(g.add_edge(1, 1), Error);
  EXPECT_THROW(g.add_edge(0, 1), Error);
  EXPECT_THROW(g.add_edge(1, 0), Error);
}

TEST(Graph, DegreeAndMaxDegree) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(0, 3);
  EXPECT_EQ(g.degree(0), 3);
  EXPECT_EQ(g.degree(1), 1);
  EXPECT_EQ(g.max_degree(), 3);
}

TEST(Graph, RejectsOutOfRange) {
  Graph g(2);
  EXPECT_THROW(g.add_edge(0, 2), Error);
  EXPECT_THROW(g.neighbors(5), Error);
}

TEST(ShortestPaths, BfsOnPath) {
  const Graph g = path_graph(5);
  const auto dist = bfs_distances(g, 0);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(dist[static_cast<std::size_t>(i)], i);
  }
}

TEST(ShortestPaths, UnreachableMarked) {
  Graph g(3);
  g.add_edge(0, 1);
  const auto dist = bfs_distances(g, 0);
  EXPECT_EQ(dist[2], kUnreachable);
  EXPECT_FALSE(is_connected(g));
}

TEST(ShortestPaths, DiameterOfCycle) {
  EXPECT_EQ(diameter(cycle_graph(8)), 4);
  EXPECT_EQ(diameter(cycle_graph(9)), 4);
  EXPECT_EQ(diameter(path_graph(6)), 5);
}

TEST(ShortestPaths, AverageHopsOfPath3) {
  // Path 0-1-2: distances: (0,1)=1 (0,2)=2 (1,2)=1 each twice (ordered).
  EXPECT_DOUBLE_EQ(average_hops(path_graph(3)), (1 + 2 + 1) * 2 / 6.0);
}

TEST(ShortestPaths, DiameterRequiresConnected) {
  Graph g(2);
  EXPECT_THROW(diameter(g), Error);
}

TEST(ShortestPaths, WorkspaceBfsMatchesAllocating) {
  const Graph g = cycle_graph(9);
  BfsWorkspace ws;
  for (NodeId src = 0; src < g.num_nodes(); ++src) {
    const auto expected = bfs_distances(g, src);
    bfs_distances(g, src, ws);
    for (int v = 0; v < g.num_nodes(); ++v) {
      EXPECT_EQ(ws.dist[static_cast<std::size_t>(v)],
                expected[static_cast<std::size_t>(v)]);
    }
  }
}

TEST(ShortestPaths, DistanceSummaryMatchesLegacyMetrics) {
  for (const Graph& g : {path_graph(7), cycle_graph(8), cycle_graph(9)}) {
    const DistanceSummary summary = distance_summary(g);
    EXPECT_TRUE(summary.connected);
    EXPECT_EQ(summary.diameter, diameter(g));
    EXPECT_DOUBLE_EQ(summary.avg_hops, average_hops(g));
  }
}

TEST(ShortestPaths, DistanceSummaryDisconnected) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  const DistanceSummary summary = distance_summary(g);
  EXPECT_FALSE(summary.connected);
  // Reachable ordered pairs: (0,1), (1,0), (2,3), (3,2) — all one hop.
  EXPECT_EQ(summary.diameter, 1);
  EXPECT_DOUBLE_EQ(summary.avg_hops, 1.0);
}

TEST(ShortestPaths, DistanceSummaryTrivialGraphs) {
  EXPECT_TRUE(distance_summary(Graph(1)).connected);
  EXPECT_EQ(distance_summary(Graph(1)).diameter, 0);
  EXPECT_EQ(distance_summary(Graph(0)).diameter, 0);
}

TEST(ShortestPaths, UpdateDistancesAddEdgesShortcut) {
  // Path 0-1-2-3-4-5 plus a shortcut 0-4: repaired distances from every
  // source must equal fresh sweeps over the new graph.
  const Graph before = path_graph(6);
  Graph after = path_graph(6);
  const std::vector<Edge> added = {Edge{0, 4}};
  after.add_edge(0, 4);
  for (NodeId s = 0; s < after.num_nodes(); ++s) {
    BfsWorkspace ws;
    bfs_distances(before, s, ws);
    update_distances_add_edges(after, added, ws);
    const auto expected = bfs_distances(after, s);
    for (NodeId v = 0; v < after.num_nodes(); ++v) {
      EXPECT_EQ(ws.dist[static_cast<std::size_t>(v)],
                expected[static_cast<std::size_t>(v)])
          << "src " << s << " node " << v;
    }
  }
}

TEST(ShortestPaths, UpdateDistancesAddEdgesConnectsComponents) {
  // Two components 0-1 and 2-3; the new edge 1-2 joins them, so formerly
  // unreachable nodes must pick up finite distances.
  Graph before(4);
  before.add_edge(0, 1);
  before.add_edge(2, 3);
  Graph after(4);
  after.add_edge(0, 1);
  after.add_edge(2, 3);
  after.add_edge(1, 2);
  BfsWorkspace ws;
  bfs_distances(before, 0, ws);
  EXPECT_EQ(ws.dist[2], kUnreachable);
  update_distances_add_edges(after, {Edge{1, 2}}, ws);
  EXPECT_EQ(ws.dist[0], 0);
  EXPECT_EQ(ws.dist[1], 1);
  EXPECT_EQ(ws.dist[2], 2);
  EXPECT_EQ(ws.dist[3], 3);
}

TEST(ShortestPaths, UpdateDistancesNoImprovementIsNoOp) {
  // A redundant edge between nodes equidistant from the source cannot
  // shrink anything; the row must be untouched.
  Graph after = cycle_graph(6);
  after.add_edge(2, 4);
  BfsWorkspace ws;
  bfs_distances(cycle_graph(6), 3, ws);
  const std::vector<int> snapshot(ws.dist.begin(), ws.dist.begin() + 6);
  update_distances_add_edges(after, {Edge{2, 4}}, ws);
  for (NodeId v = 0; v < 6; ++v) {
    EXPECT_EQ(ws.dist[static_cast<std::size_t>(v)],
              snapshot[static_cast<std::size_t>(v)]);
  }
}

TEST(ShortestPaths, UpdateDistancesFusedStatsStayExact) {
  // The statistics-fused overload must keep histogram, sum, max and
  // reachable-count identical to a from-scratch fold after the repair.
  const Graph before = path_graph(8);
  Graph after = path_graph(8);
  after.add_edge(0, 5);
  after.add_edge(2, 7);
  const std::vector<Edge> added = {Edge{0, 5}, Edge{2, 7}};
  for (NodeId s = 0; s < 8; ++s) {
    BfsWorkspace ws;
    bfs_distances(before, s, ws);
    std::vector<int> hist(8, 0);
    DistRowStats stats;
    for (NodeId v = 0; v < 8; ++v) {
      const int d = ws.dist[static_cast<std::size_t>(v)];
      stats.sum += d;
      ++stats.reachable;
      stats.max = std::max(stats.max, d);
      ++hist[static_cast<std::size_t>(d)];
    }
    update_distances_add_edges(after, added, ws, hist.data(), stats);
    long long sum = 0;
    int max = 0;
    std::vector<int> expected_hist(8, 0);
    for (NodeId v = 0; v < 8; ++v) {
      const int d = ws.dist[static_cast<std::size_t>(v)];
      sum += d;
      max = std::max(max, d);
      ++expected_hist[static_cast<std::size_t>(d)];
    }
    EXPECT_EQ(stats.sum, sum) << "src " << s;
    EXPECT_EQ(stats.max, max) << "src " << s;
    EXPECT_EQ(stats.reachable, 8) << "src " << s;
    EXPECT_EQ(hist, expected_hist) << "src " << s;
  }
}

TEST(ShortestPaths, DijkstraPrefersLightPath) {
  // Triangle where the direct edge is heavier than the two-hop detour.
  Graph g(3);
  const EdgeId direct = g.add_edge(0, 2);
  const EdgeId a = g.add_edge(0, 1);
  const EdgeId b = g.add_edge(1, 2);
  std::vector<double> w(3);
  w[static_cast<std::size_t>(direct)] = 10.0;
  w[static_cast<std::size_t>(a)] = 1.0;
  w[static_cast<std::size_t>(b)] = 2.0;
  const auto dist = dijkstra(g, 0, w);
  EXPECT_DOUBLE_EQ(dist[2], 3.0);
}

TEST(ShortestPaths, MinAndMaxOverMinHopPaths) {
  // Square 0-1-2-3-0 plus heavy diagonal 0-2: hop distance 0->2 is 1 via
  // the diagonal, so min == max == diagonal weight.
  Graph g(4);
  const EdgeId e01 = g.add_edge(0, 1);
  const EdgeId e12 = g.add_edge(1, 2);
  const EdgeId e23 = g.add_edge(2, 3);
  const EdgeId e30 = g.add_edge(3, 0);
  const EdgeId diag = g.add_edge(0, 2);
  std::vector<double> w(5, 1.0);
  w[static_cast<std::size_t>(diag)] = 9.0;
  (void)e01;
  (void)e12;
  (void)e23;
  (void)e30;
  const auto min_w = min_weight_over_min_hop_paths(g, 2, w);
  const auto max_w = max_weight_over_min_hop_paths(g, 2, w);
  EXPECT_DOUBLE_EQ(min_w[0], 9.0);
  EXPECT_DOUBLE_EQ(max_w[0], 9.0);
  // 1 -> 2 is a direct unit edge.
  EXPECT_DOUBLE_EQ(min_w[1], 1.0);
  // 3 -> 2 direct unit edge.
  EXPECT_DOUBLE_EQ(max_w[3], 1.0);
}

TEST(ShortestPaths, MaxDiffersFromMinWhenTwoMinHopPaths) {
  // Two parallel 2-hop routes 0-1-3 (light) and 0-2-3 (heavy).
  Graph g(4);
  std::vector<double> w;
  g.add_edge(0, 1);
  w.push_back(1.0);
  g.add_edge(1, 3);
  w.push_back(1.0);
  g.add_edge(0, 2);
  w.push_back(5.0);
  g.add_edge(2, 3);
  w.push_back(5.0);
  const auto min_w = min_weight_over_min_hop_paths(g, 3, w);
  const auto max_w = max_weight_over_min_hop_paths(g, 3, w);
  EXPECT_DOUBLE_EQ(min_w[0], 2.0);
  EXPECT_DOUBLE_EQ(max_w[0], 10.0);
}

TEST(ShortestPaths, AllPairsTotalsMatchDistanceSummary) {
  // The bit-parallel sweep and the per-source BFS fold must agree on the
  // exact integer totals (sum over ordered pairs, reachable count with self
  // pairs, diameter) — the screening fast path depends on that equality
  // being bit-perfect.
  auto check = [](const Graph& g) {
    BitSweepWorkspace ws;
    const AllPairsTotals totals = all_pairs_totals(g, nullptr, ws);
    long long sum = 0;
    long long reachable = 0;
    int diameter = 0;
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
      for (int d : bfs_distances(g, u)) {
        if (d == kUnreachable) continue;
        sum += d;
        ++reachable;
        diameter = std::max(diameter, d);
      }
    }
    EXPECT_EQ(totals.sum, sum);
    EXPECT_EQ(totals.reachable_pairs, reachable);
    EXPECT_EQ(totals.diameter, diameter);
  };
  {
    // Path of 5 nodes.
    Graph g(5);
    for (NodeId u = 0; u + 1 < 5; ++u) g.add_edge(u, u + 1);
    check(g);
  }
  {
    // 70-node cycle plus chords: crosses the 64-source batch boundary.
    Graph g(70);
    for (NodeId u = 0; u < 70; ++u) g.add_edge(u, (u + 1) % 70);
    for (NodeId u = 0; u < 70; u += 7) g.add_edge(u, (u + 20) % 70);
    check(g);
  }
  {
    // Disconnected: two components plus an isolated node.
    Graph g(9);
    g.add_edge(0, 1);
    g.add_edge(1, 2);
    g.add_edge(3, 4);
    g.add_edge(4, 5);
    g.add_edge(5, 6);
    g.add_edge(6, 3);
    check(g);
  }
  {
    // Trivial graphs.
    check(Graph(0));
    check(Graph(1));
    check(Graph(3));
  }
}

TEST(ShortestPaths, AllPairsTotalsWithOverlayMatchMaterializedChild) {
  // Base graph plus overlay edges must total exactly like the graph with
  // those edges added for real.
  Graph base(12);
  for (NodeId u = 0; u + 1 < 12; ++u) base.add_edge(u, u + 1);
  const std::vector<Edge> extra = {{0, 7}, {2, 11}, {5, 9}};
  Graph child = base;
  for (const Edge& e : extra) child.add_edge(e.u, e.v);

  EdgeOverlay overlay;
  overlay.assign(12, extra);
  BitSweepWorkspace ws;
  const AllPairsTotals with_overlay = all_pairs_totals(base, &overlay, ws);
  const AllPairsTotals materialized = all_pairs_totals(child, nullptr, ws);
  EXPECT_EQ(with_overlay.sum, materialized.sum);
  EXPECT_EQ(with_overlay.reachable_pairs, materialized.reachable_pairs);
  EXPECT_EQ(with_overlay.diameter, materialized.diameter);

  // Overlay reuse: reassigning for a different edge set must not leak the
  // previous one.
  overlay.assign(12, {{0, 11}});
  Graph child2 = base;
  child2.add_edge(0, 11);
  const AllPairsTotals reused = all_pairs_totals(base, &overlay, ws);
  const AllPairsTotals fresh2 = all_pairs_totals(child2, nullptr, ws);
  EXPECT_EQ(reused.sum, fresh2.sum);
  EXPECT_EQ(reused.diameter, fresh2.diameter);
}

TEST(ShortestPaths, EdgeOverlayRejectsOutOfRangeEndpoints) {
  EdgeOverlay overlay;
  EXPECT_THROW(overlay.assign(4, {{0, 4}}), Error);
  EXPECT_THROW(overlay.assign(4, {{-1, 2}}), Error);
  BitSweepWorkspace ws;
  Graph g(5);
  overlay.assign(4, {{0, 3}});
  EXPECT_THROW(all_pairs_totals(g, &overlay, ws), Error);
}

TEST(SpanningTree, ParentsAndLevels) {
  const Graph g = cycle_graph(6);
  const auto tree = bfs_spanning_tree(g, 0);
  EXPECT_EQ(tree.parent[0], 0);
  EXPECT_EQ(tree.level[0], 0);
  EXPECT_EQ(tree.level[1], 1);
  EXPECT_EQ(tree.level[5], 1);
  EXPECT_EQ(tree.level[3], 3);
}

TEST(SpanningTree, IsUpOrder) {
  const Graph g = cycle_graph(4);
  const auto tree = bfs_spanning_tree(g, 0);
  EXPECT_TRUE(tree.is_up(1, 0));
  EXPECT_FALSE(tree.is_up(0, 1));
  // Same level: lower id is "more up".
  EXPECT_TRUE(tree.is_up(3, 1));
  EXPECT_FALSE(tree.is_up(1, 3));
}

TEST(UpDown, TablesRouteEveryPair) {
  const Graph g = cycle_graph(7);
  const auto tree = bfs_spanning_tree(g, 0);
  const auto tables = up_down_tables(g, tree);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (NodeId d = 0; d < g.num_nodes(); ++d) {
      if (u == d) {
        EXPECT_EQ(tables.phase0[static_cast<std::size_t>(u)]
                               [static_cast<std::size_t>(d)],
                  -1);
        continue;
      }
      // Walk the tables and verify we reach d without ever going up after
      // going down (the up*/down* invariant).
      NodeId at = u;
      bool went_down = false;
      int steps = 0;
      while (at != d) {
        const NodeId next =
            went_down ? tables.phase1[static_cast<std::size_t>(at)]
                                     [static_cast<std::size_t>(d)]
                      : tables.phase0[static_cast<std::size_t>(at)]
                                     [static_cast<std::size_t>(d)];
        ASSERT_GE(next, 0) << "no next hop from " << at << " to " << d;
        ASSERT_TRUE(g.has_edge(at, next));
        if (!tree.is_up(at, next)) went_down = true;
        at = next;
        ASSERT_LE(++steps, g.num_nodes() * 2) << "path too long";
      }
    }
  }
}

TEST(Cdg, DetectsCycle) {
  EXPECT_TRUE(has_cycle(3, {{0, 1}, {1, 2}, {2, 0}}));
  EXPECT_TRUE(has_cycle(2, {{0, 1}, {1, 0}}));
}

TEST(Cdg, AcceptsDag) {
  EXPECT_FALSE(has_cycle(4, {{0, 1}, {0, 2}, {1, 3}, {2, 3}}));
  EXPECT_FALSE(has_cycle(3, {}));
  EXPECT_FALSE(has_cycle(0, {}));
}

TEST(Cdg, SelfLoopIsCycle) {
  EXPECT_TRUE(has_cycle(1, {{0, 0}}));
}

}  // namespace
}  // namespace shg::graph
