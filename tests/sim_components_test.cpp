// Unit tests for simulator components: channels, arbiters, traffic patterns.
#include <gtest/gtest.h>

#include <set>

#include "shg/sim/arbiter.hpp"
#include "shg/sim/channel.hpp"
#include "shg/sim/traffic.hpp"

namespace shg::sim {
namespace {

TEST(Channel, FlitsTakeLatencyCycles) {
  Channel ch(3);
  Flit flit;
  flit.packet_id = 7;
  ch.push_flit(flit, 10);
  EXPECT_FALSE(ch.pop_flit(10).has_value());
  EXPECT_FALSE(ch.pop_flit(12).has_value());
  const auto out = ch.pop_flit(13);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->packet_id, 7);
  EXPECT_FALSE(ch.pop_flit(14).has_value());
}

TEST(Channel, PreservesOrder) {
  Channel ch(1);
  for (int i = 0; i < 5; ++i) {
    Flit flit;
    flit.packet_id = i;
    ch.push_flit(flit, i);
  }
  for (int i = 0; i < 5; ++i) {
    const auto out = ch.pop_flit(100);
    ASSERT_TRUE(out.has_value());
    EXPECT_EQ(out->packet_id, i);
  }
}

TEST(Channel, CreditsFlowIndependently) {
  Channel ch(2);
  ch.push_credit(Credit{3}, 0);
  Flit flit;
  ch.push_flit(flit, 0);
  const auto credit = ch.pop_credit(2);
  ASSERT_TRUE(credit.has_value());
  EXPECT_EQ(credit->vc, 3);
  EXPECT_TRUE(ch.pop_flit(2).has_value());
  EXPECT_TRUE(ch.idle());
}

TEST(Channel, RejectsZeroLatency) {
  EXPECT_THROW(Channel(0), Error);
}

TEST(Arbiter, RotatesFairly) {
  RoundRobinArbiter arb(3);
  std::vector<bool> all{true, true, true};
  EXPECT_EQ(arb.arbitrate(all), 0);
  EXPECT_EQ(arb.arbitrate(all), 1);
  EXPECT_EQ(arb.arbitrate(all), 2);
  EXPECT_EQ(arb.arbitrate(all), 0);
}

TEST(Arbiter, SkipsNonRequesters) {
  RoundRobinArbiter arb(4);
  EXPECT_EQ(arb.arbitrate({false, false, true, false}), 2);
  EXPECT_EQ(arb.arbitrate({true, false, true, false}), 0);  // after 2 -> 3,0
  EXPECT_EQ(arb.arbitrate({false, false, false, false}), -1);
}

TEST(Traffic, UniformAvoidsSelfAndCoversAll) {
  const auto pattern = make_uniform(16);
  Prng rng(5);
  std::set<int> seen;
  for (int i = 0; i < 2000; ++i) {
    const int d = pattern->dest(3, rng);
    ASSERT_NE(d, 3);
    ASSERT_GE(d, 0);
    ASSERT_LT(d, 16);
    seen.insert(d);
  }
  EXPECT_EQ(seen.size(), 15u);
}

TEST(Traffic, TransposeAndFixedPoints) {
  const auto pattern = make_transpose(4, 4);
  Prng rng(1);
  EXPECT_EQ(pattern->dest(1, rng), 4);   // (0,1) -> (1,0)
  EXPECT_EQ(pattern->dest(7, rng), 13);  // (1,3) -> (3,1)
  EXPECT_EQ(pattern->dest(5, rng), 5);   // diagonal fixed point
  EXPECT_THROW(make_transpose(4, 8), Error);
}

TEST(Traffic, BitComplement) {
  const auto pattern = make_bit_complement(64);
  Prng rng(1);
  EXPECT_EQ(pattern->dest(0, rng), 63);
  EXPECT_EQ(pattern->dest(21, rng), 42);
}

TEST(Traffic, BitReverseAndShuffle) {
  const auto rev = make_bit_reverse(8);
  Prng rng(1);
  EXPECT_EQ(rev->dest(1, rng), 4);  // 001 -> 100
  EXPECT_EQ(rev->dest(3, rng), 6);  // 011 -> 110
  const auto shuffle = make_shuffle(8);
  EXPECT_EQ(shuffle->dest(5, rng), 3);  // 101 -> 011
  EXPECT_THROW(make_bit_reverse(12), Error);
}

TEST(Traffic, Tornado) {
  const auto pattern = make_tornado(4, 4);
  Prng rng(1);
  // (0,0) -> (1,1): half-way minus one in each dimension.
  EXPECT_EQ(pattern->dest(0, rng), 5);
}

TEST(Traffic, NeighborWrapsAround) {
  const auto pattern = make_neighbor(4, 4);
  Prng rng(1);
  EXPECT_EQ(pattern->dest(0, rng), 1);
  EXPECT_EQ(pattern->dest(3, rng), 0);  // (0,3) -> (0,0)
}

TEST(Traffic, HotspotBias) {
  const auto pattern = make_hotspot(16, {5}, 0.5);
  Prng rng(9);
  int to_hotspot = 0;
  for (int i = 0; i < 4000; ++i) {
    if (pattern->dest(0, rng) == 5) ++to_hotspot;
  }
  // 50% directed + ~1/15 of the uniform rest.
  EXPECT_NEAR(to_hotspot / 4000.0, 0.5 + 0.5 / 15.0, 0.04);
  EXPECT_THROW(make_hotspot(16, {}, 0.5), Error);
  EXPECT_THROW(make_hotspot(16, {20}, 0.5), Error);
}

}  // namespace
}  // namespace shg::sim
