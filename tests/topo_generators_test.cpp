// Tests for topology generators: structural invariants (node/link counts,
// radix, diameter formulas from Table I) and family-specific properties.
#include <gtest/gtest.h>

#include <cmath>

#include "shg/graph/shortest_paths.hpp"
#include "shg/topo/generators.hpp"
#include "shg/topo/registry.hpp"
#include "shg/topo/render.hpp"

namespace shg::topo {
namespace {

TEST(Ring, EvenGridIsHamiltonianCycle) {
  // Needs RC even and both dimensions >= 2; a 1xN grid is a path graph and
  // admits no unit-link cycle at all.
  for (const auto [r, c] : {std::pair{8, 8}, {4, 6}, {2, 5}, {6, 3}}) {
    const Topology topo = make_ring(r, c);
    EXPECT_EQ(topo.graph().num_edges(), r * c) << r << "x" << c;
    EXPECT_EQ(topo.radix(), 2);
    EXPECT_TRUE(graph::is_connected(topo.graph()));
    EXPECT_EQ(graph::diameter(topo.graph()), r * c / 2);
    // All links unit-length: a true Hamiltonian cycle of the grid graph.
    for (graph::EdgeId e = 0; e < topo.graph().num_edges(); ++e) {
      EXPECT_EQ(topo.link_grid_length(e), 1);
    }
  }
}

TEST(Ring, OddGridClosesWithOneLongLink) {
  const Topology topo = make_ring(3, 3);
  EXPECT_EQ(topo.graph().num_edges(), 9);
  EXPECT_EQ(topo.radix(), 2);
  int long_links = 0;
  for (graph::EdgeId e = 0; e < topo.graph().num_edges(); ++e) {
    if (topo.link_grid_length(e) > 1) ++long_links;
  }
  EXPECT_EQ(long_links, 1);
}

TEST(Ring, SingleRowGridClosesWithOneLongLink) {
  const Topology topo = make_ring(1, 4);
  EXPECT_EQ(topo.graph().num_edges(), 4);
  EXPECT_TRUE(graph::is_connected(topo.graph()));
  int long_links = 0;
  for (graph::EdgeId e = 0; e < topo.graph().num_edges(); ++e) {
    if (topo.link_grid_length(e) > 1) ++long_links;
  }
  EXPECT_EQ(long_links, 1);
}

TEST(Mesh, CountsAndDiameter) {
  const Topology topo = make_mesh(8, 8);
  EXPECT_EQ(topo.graph().num_edges(), 2 * 8 * 7);
  EXPECT_EQ(topo.radix(), 4);
  EXPECT_EQ(graph::diameter(topo.graph()), 8 + 8 - 2);
  const Topology rect = make_mesh(4, 16);
  EXPECT_EQ(graph::diameter(rect.graph()), 4 + 16 - 2);
}

TEST(Mesh, AllLinksUnit) {
  const Topology topo = make_mesh(5, 7);
  for (graph::EdgeId e = 0; e < topo.graph().num_edges(); ++e) {
    EXPECT_EQ(topo.link_grid_length(e), 1);
    EXPECT_TRUE(topo.link_axis_aligned(e));
  }
}

TEST(Torus, CountsAndDiameter) {
  const Topology topo = make_torus(8, 8);
  EXPECT_EQ(topo.graph().num_edges(), 2 * 8 * 7 + 16);
  EXPECT_EQ(topo.radix(), 4);
  EXPECT_EQ(graph::diameter(topo.graph()), 8 / 2 + 8 / 2);
}

TEST(Torus, DegenerateSmallDimensionsSkipWraps) {
  // 2-wide dimension: wrap would duplicate the mesh link.
  const Topology topo = make_torus(2, 4);
  EXPECT_EQ(topo.graph().num_edges(), 2 * 3 + 4 * 1 + 2);  // rows+cols+wraps
  EXPECT_TRUE(graph::is_connected(topo.graph()));
}

TEST(FoldedTorus, IsomorphicToTorusMetrics) {
  const Topology folded = make_folded_torus(8, 8);
  const Topology torus = make_torus(8, 8);
  EXPECT_EQ(folded.graph().num_edges(), torus.graph().num_edges());
  EXPECT_EQ(folded.radix(), 4);
  EXPECT_EQ(graph::diameter(folded.graph()),
            graph::diameter(torus.graph()));
  // The whole point of folding: no link longer than 2 tiles.
  int max_len = 0;
  for (graph::EdgeId e = 0; e < folded.graph().num_edges(); ++e) {
    max_len = std::max(max_len, folded.link_grid_length(e));
  }
  EXPECT_EQ(max_len, 2);
}

TEST(Hypercube, RequiresPowerOfTwoGrid) {
  EXPECT_THROW(make_hypercube(3, 4), Error);
  EXPECT_THROW(make_hypercube(4, 6), Error);
  EXPECT_NO_THROW(make_hypercube(4, 4));
}

TEST(Hypercube, DegreeDiameterAndEdgeCount) {
  const Topology topo = make_hypercube(8, 8);
  const int n = 64;
  const int dims = 6;
  EXPECT_EQ(topo.graph().num_edges(), n * dims / 2);
  EXPECT_EQ(topo.radix(), dims);
  EXPECT_EQ(graph::diameter(topo.graph()), dims);
  // Every node has exactly `dims` neighbors (regular graph).
  for (graph::NodeId u = 0; u < n; ++u) {
    EXPECT_EQ(topo.graph().degree(u), dims);
  }
}

TEST(Hypercube, GrayEmbeddingContainsMesh) {
  // Fig. 1e: grid neighbors differ in exactly one bit, so every mesh link
  // must be present in the hypercube.
  const Topology topo = make_hypercube(4, 8);
  for (int r = 0; r < 4; ++r) {
    for (int c = 0; c < 8; ++c) {
      if (c + 1 < 8) {
        EXPECT_TRUE(topo.graph().has_edge(topo.node(r, c), topo.node(r, c + 1)));
      }
      if (r + 1 < 4) {
        EXPECT_TRUE(topo.graph().has_edge(topo.node(r, c), topo.node(r + 1, c)));
      }
    }
  }
}

TEST(FlattenedButterfly, FullyConnectedRowsAndColumns) {
  const Topology topo = make_flattened_butterfly(8, 8);
  EXPECT_EQ(topo.graph().num_edges(), 8 * 28 * 2);
  EXPECT_EQ(topo.radix(), 8 + 8 - 2);
  EXPECT_EQ(graph::diameter(topo.graph()), 2);
}

TEST(FlattenedButterfly, RectangularGrid) {
  const Topology topo = make_flattened_butterfly(4, 6);
  EXPECT_EQ(topo.radix(), 4 + 6 - 2);
  EXPECT_EQ(graph::diameter(topo.graph()), 2);
}

TEST(SlimNoc, RequiresTwoPSquaredTiles) {
  EXPECT_THROW(make_slim_noc(8, 8), Error);    // 64 = 2*32, 32 not square
  EXPECT_THROW(make_slim_noc(6, 6), Error);    // 36 odd half
  EXPECT_NO_THROW(make_slim_noc(5, 10));       // 50 = 2*5^2
}

TEST(SlimNoc, ClassicMmsForPCongruentOneModFour) {
  // p = 5: degree (3p-1)/2 = 7, diameter 2 (McKay-Miller-Siran).
  const Topology topo = make_slim_noc(5, 10);
  EXPECT_EQ(topo.num_tiles(), 50);
  for (graph::NodeId u = 0; u < 50; ++u) {
    EXPECT_EQ(topo.graph().degree(u), 7);
  }
  EXPECT_EQ(graph::diameter(topo.graph()), 2);
  EXPECT_EQ(topo.graph().num_edges(), 50 * 7 / 2);
}

TEST(SlimNoc, EvenPrimePowerSearchFindsDiameterTwo) {
  // p = 8 (the paper's 128-tile scenarios): degree 3p/2 = 12, diameter 2.
  const Topology topo = make_slim_noc(8, 16);
  EXPECT_EQ(topo.num_tiles(), 128);
  for (graph::NodeId u = 0; u < 128; ++u) {
    EXPECT_EQ(topo.graph().degree(u), 12);
  }
  EXPECT_EQ(graph::diameter(topo.graph()), 2);
}

TEST(SlimNoc, RadixApproxSqrtN) {
  // Table I: radix ≈ sqrt(RC).
  const Topology topo = make_slim_noc(8, 16);
  EXPECT_NEAR(topo.radix(), std::sqrt(128.0), 0.1 * 128);
}

TEST(SparseHamming, EmptySkipSetsGiveMesh) {
  const Topology shg = make_sparse_hamming(8, 8, {}, {});
  const Topology mesh = make_mesh(8, 8);
  EXPECT_EQ(shg.graph().num_edges(), mesh.graph().num_edges());
  EXPECT_EQ(graph::diameter(shg.graph()), graph::diameter(mesh.graph()));
}

TEST(SparseHamming, FullSkipSetsGiveFlattenedButterfly) {
  std::set<int> all_row;
  std::set<int> all_col;
  for (int x = 2; x < 8; ++x) {
    all_row.insert(x);
    all_col.insert(x);
  }
  const Topology shg = make_sparse_hamming(8, 8, all_row, all_col);
  const Topology fb = make_flattened_butterfly(8, 8);
  EXPECT_EQ(shg.graph().num_edges(), fb.graph().num_edges());
  EXPECT_EQ(shg.radix(), fb.radix());
  EXPECT_EQ(graph::diameter(shg.graph()), 2);
}

TEST(SparseHamming, LinkCountFormula) {
  // Base mesh links plus, per skip x: R*(C-x) row links / C*(R-x) col links.
  const int R = 8;
  const int C = 8;
  const std::set<int> sr = {4};
  const std::set<int> sc = {2, 5};
  const Topology topo = make_sparse_hamming(R, C, sr, sc);
  int expected = R * (C - 1) + C * (R - 1);
  for (int x : sr) expected += R * (C - x);
  for (int x : sc) expected += C * (R - x);
  EXPECT_EQ(topo.graph().num_edges(), expected);
}

TEST(SparseHamming, DiameterShrinksWithMoreSkips) {
  const int d_mesh = graph::diameter(make_sparse_hamming(8, 8, {}, {}).graph());
  const int d_one =
      graph::diameter(make_sparse_hamming(8, 8, {4}, {4}).graph());
  const int d_two =
      graph::diameter(make_sparse_hamming(8, 8, {2, 4}, {2, 4}).graph());
  EXPECT_LT(d_one, d_mesh);
  EXPECT_LE(d_two, d_one);
}

TEST(SparseHamming, RejectsInvalidSkips) {
  EXPECT_THROW(make_sparse_hamming(8, 8, {1}, {}), Error);
  EXPECT_THROW(make_sparse_hamming(8, 8, {8}, {}), Error);
  EXPECT_THROW(make_sparse_hamming(8, 8, {}, {9}), Error);
  EXPECT_NO_THROW(make_sparse_hamming(8, 8, {7}, {7}));
}

TEST(SparseHamming, PaperScenarioConfigs) {
  // The four customized configurations from Figure 6 must construct fine.
  EXPECT_NO_THROW(make_sparse_hamming(8, 8, {4}, {2, 5}));
  EXPECT_NO_THROW(make_sparse_hamming(8, 8, {2, 4}, {2, 4}));
  EXPECT_NO_THROW(make_sparse_hamming(8, 16, {3}, {2, 5}));
  EXPECT_NO_THROW(make_sparse_hamming(8, 16, {2, 4}, {2, 4}));
}

TEST(SparseHamming, StoresParams) {
  const Topology topo = make_sparse_hamming(8, 8, {4}, {2, 5});
  EXPECT_EQ(topo.shg_params().row_skips, (std::set<int>{4}));
  EXPECT_EQ(topo.shg_params().col_skips, (std::set<int>{2, 5}));
}

TEST(Ruche, IsSubsetOfShgFamilies) {
  const Topology ruche = make_ruche(8, 8, 3, 3);
  const Topology shg = make_sparse_hamming(8, 8, {3}, {3});
  EXPECT_EQ(ruche.graph().num_edges(), shg.graph().num_edges());
  EXPECT_EQ(ruche.radix(), shg.radix());
}

TEST(Ruche, SkipBelowTwoMeansMesh) {
  const Topology ruche = make_ruche(8, 8, 0, 1);
  EXPECT_EQ(ruche.graph().num_edges(), make_mesh(8, 8).graph().num_edges());
}

TEST(Configurations, TableIValues) {
  // Last column of Table I for an 8x8 grid.
  EXPECT_DOUBLE_EQ(num_configurations(Kind::kRing, 8, 8), 1.0);
  EXPECT_DOUBLE_EQ(num_configurations(Kind::kMesh, 8, 8), 1.0);
  EXPECT_DOUBLE_EQ(num_configurations(Kind::kTorus, 8, 8), 1.0);
  EXPECT_DOUBLE_EQ(num_configurations(Kind::kFoldedTorus, 8, 8), 1.0);
  EXPECT_DOUBLE_EQ(num_configurations(Kind::kHypercube, 8, 8), 1.0);
  EXPECT_DOUBLE_EQ(num_configurations(Kind::kHypercube, 6, 8), 0.0);
  EXPECT_DOUBLE_EQ(num_configurations(Kind::kSlimNoc, 8, 8), 0.0);
  EXPECT_DOUBLE_EQ(num_configurations(Kind::kSlimNoc, 8, 16), 1.0);
  EXPECT_DOUBLE_EQ(num_configurations(Kind::kFlattenedButterfly, 8, 8), 1.0);
  // 2^(R+C-4) configurations for the sparse Hamming graph.
  EXPECT_DOUBLE_EQ(num_configurations(Kind::kSparseHamming, 8, 8),
                   std::pow(2.0, 12));
  EXPECT_DOUBLE_EQ(num_configurations(Kind::kSparseHamming, 8, 16),
                   std::pow(2.0, 20));
}

TEST(Registry, TryMakeRespectsApplicability) {
  EXPECT_FALSE(try_make(Kind::kHypercube, 6, 6).has_value());
  EXPECT_TRUE(try_make(Kind::kHypercube, 8, 8).has_value());
  EXPECT_FALSE(try_make(Kind::kSlimNoc, 8, 8).has_value());
  EXPECT_TRUE(try_make(Kind::kSlimNoc, 8, 16).has_value());
  const auto shg = try_make(Kind::kSparseHamming, 8, 8,
                            ShgParams{{4}, {2, 5}});
  ASSERT_TRUE(shg.has_value());
  EXPECT_EQ(shg->shg_params().row_skips, (std::set<int>{4}));
}

TEST(Registry, EstablishedSuite) {
  // 8x8: ring, mesh, torus, folded torus, hypercube, flattened butterfly
  // (SlimNoC not applicable).
  EXPECT_EQ(established_suite(8, 8).size(), 6u);
  // 8x16: SlimNoC joins.
  EXPECT_EQ(established_suite(8, 16).size(), 7u);
}

TEST(Render, ContainsGridAndLongLinks) {
  const Topology topo = make_sparse_hamming(4, 4, {2}, {});
  const std::string art = render_ascii(topo);
  EXPECT_NE(art.find("4x4 tiles"), std::string::npos);
  EXPECT_NE(art.find("row skip +2"), std::string::npos);
  EXPECT_NE(art.find("--"), std::string::npos);
  EXPECT_NE(art.find("||"), std::string::npos);
}

TEST(Topology, CoordRoundTrip) {
  const Topology topo = make_mesh(5, 9);
  for (graph::NodeId id = 0; id < topo.num_tiles(); ++id) {
    EXPECT_EQ(topo.node(topo.coord(id)), id);
  }
  EXPECT_THROW(topo.node(5, 0), Error);
  EXPECT_THROW(topo.coord(45), Error);
}

}  // namespace
}  // namespace shg::topo
