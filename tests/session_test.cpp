// Persistent DSE sessions (customize/session.hpp + customize/cache.hpp):
//
//  * fingerprint semantics (stability, sensitivity to every key component);
//  * LRU candidate cache behavior (hits refresh recency, eviction order);
//  * the on-disk tier: round trip, and the corruption matrix — truncated
//    file, flipped checksum/payload byte, future format version, wrong
//    magic — each of which must fall back to cold screening with a
//    warning, never crash, and never serve stale bits;
//  * the end-to-end warm-session oracle: randomized greedy trajectories
//    where cold (session-free), populating and warm re-invocation searches
//    must be bit-identical in winners, metric bits and history notes —
//    in-process and across an on-disk save/load boundary;
//  * the generic-family screening stack (TopologyScreeningContext) over
//    SHG, SlimNoC and torus parents with randomized added-link
//    trajectories, bit-identical to screen_topology on the materialized
//    child, cached or not;
//  * experiment-engine route-table reuse through the session artifact
//    tier, with byte-identical reports.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "shg/common/prng.hpp"
#include "shg/customize/explore.hpp"
#include "shg/customize/search.hpp"
#include "shg/customize/session.hpp"
#include "shg/eval/experiment.hpp"
#include "shg/tech/presets.hpp"
#include "shg/topo/generators.hpp"

namespace shg::customize {
namespace {

tech::ArchParams small_arch(int rows, int cols) {
  tech::ArchParams arch = tech::knc_scenario(tech::KncScenario::kA);
  arch.rows = rows;
  arch.cols = cols;
  return arch;
}

/// Field-exact search comparison: params, metric bits, every history step
/// including the rendered notes.
void expect_same_search(const SearchResult& a, const SearchResult& b,
                        const std::string& context) {
  EXPECT_EQ(a.params, b.params) << context;
  EXPECT_EQ(a.metrics, b.metrics) << context;
  ASSERT_EQ(a.history.size(), b.history.size()) << context;
  for (std::size_t i = 0; i < a.history.size(); ++i) {
    EXPECT_EQ(a.history[i].params, b.history[i].params) << context;
    EXPECT_EQ(a.history[i].metrics, b.history[i].metrics) << context;
    EXPECT_EQ(a.history[i].note, b.history[i].note) << context;
  }
  // The final report's headline fields too — warm runs serve it from the
  // artifact tier.
  EXPECT_EQ(a.cost.area_overhead, b.cost.area_overhead) << context;
  EXPECT_EQ(a.cost.total_area_mm2, b.cost.total_area_mm2) << context;
  EXPECT_EQ(a.cost.avg_link_latency_cycles, b.cost.avg_link_latency_cycles)
      << context;
}

std::string temp_cache_path(const char* name) {
  return testing::TempDir() + "/" + name;
}

// ---------------------------------------------------------------------------
// Fingerprints
// ---------------------------------------------------------------------------

TEST(Fingerprint, StableAndSensitive) {
  const tech::ArchParams arch = small_arch(6, 6);
  const Fingerprint base = fingerprint_arch(arch);
  EXPECT_EQ(base, fingerprint_arch(arch));  // deterministic

  tech::ArchParams other = arch;
  other.link_bandwidth_bits *= 2.0;
  EXPECT_FALSE(base == fingerprint_arch(other));
  other = arch;
  other.router_arch.num_vcs += 1;
  EXPECT_FALSE(base == fingerprint_arch(other));
  other = arch;
  other.rows += 1;
  EXPECT_FALSE(base == fingerprint_arch(other));
  // Pure labels are deliberately excluded from the key.
  other = arch;
  other.name = "renamed";
  EXPECT_EQ(base, fingerprint_arch(other));
}

TEST(Fingerprint, CandidateKeysDistinguishSkipSets) {
  const Fingerprint arch_fp = fingerprint_arch(small_arch(8, 8));
  const Fingerprint mesh = fingerprint_shg_candidate(arch_fp, {});
  EXPECT_EQ(mesh, fingerprint_shg_candidate(arch_fp, {}));
  EXPECT_FALSE(mesh == fingerprint_shg_candidate(arch_fp, {{3}, {}}));
  // Row skip 3 vs column skip 3 must not alias.
  EXPECT_FALSE(fingerprint_shg_candidate(arch_fp, {{3}, {}}) ==
               fingerprint_shg_candidate(arch_fp, {{}, {3}}));
}

TEST(Fingerprint, TopologyKeysTrackEdgesNotLabels) {
  const topo::Topology mesh = topo::make_mesh(4, 5);
  const topo::Topology shg = topo::make_sparse_hamming(4, 5, {}, {});
  // An SHG with empty skip sets has the mesh's edge set: same key even
  // though family labels differ (labels affect no metric).
  EXPECT_EQ(fingerprint_topology(mesh), fingerprint_topology(shg));
  EXPECT_FALSE(fingerprint_topology(mesh) ==
               fingerprint_topology(topo::make_torus(4, 5)));
}

// ---------------------------------------------------------------------------
// Candidate cache
// ---------------------------------------------------------------------------

CandidateMetrics metrics_of(double v) {
  CandidateMetrics m;
  m.area_overhead = v;
  m.avg_hops = v + 1.0;
  m.diameter = v + 2.0;
  m.throughput_bound = v + 3.0;
  return m;
}

Fingerprint key_of(std::uint64_t i) {
  return FingerprintBuilder().tag("test.key").u64(i).done();
}

TEST(CandidateCache, LruEvictsLeastRecentlyUsed) {
  CandidateCache cache(2);
  cache.insert(key_of(1), metrics_of(1.0));
  cache.insert(key_of(2), metrics_of(2.0));
  // Touch 1 so 2 becomes the LRU victim.
  EXPECT_TRUE(cache.lookup(key_of(1)).has_value());
  cache.insert(key_of(3), metrics_of(3.0));
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_TRUE(cache.lookup(key_of(1)).has_value());
  EXPECT_FALSE(cache.lookup(key_of(2)).has_value());
  EXPECT_TRUE(cache.lookup(key_of(3)).has_value());
  EXPECT_EQ(cache.stats().evictions, 1u);
  // Re-inserting an existing key updates in place, no eviction.
  cache.insert(key_of(3), metrics_of(30.0));
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.lookup(key_of(3))->area_overhead, 30.0);
}

TEST(CandidateCache, DiskRoundTripPreservesEntries) {
  const std::string path = temp_cache_path("roundtrip.cache");
  CandidateCache cache(16);
  for (std::uint64_t i = 0; i < 5; ++i) {
    cache.insert(key_of(i), metrics_of(static_cast<double>(i)));
  }
  EXPECT_EQ(cache.save_file(path), 5u);

  CandidateCache loaded(16);
  EXPECT_EQ(loaded.load_file(path), 5u);
  EXPECT_EQ(loaded.size(), 5u);
  for (std::uint64_t i = 0; i < 5; ++i) {
    const auto hit = loaded.lookup(key_of(i));
    ASSERT_TRUE(hit.has_value()) << i;
    EXPECT_EQ(hit->area_overhead, static_cast<double>(i));
    EXPECT_EQ(hit->throughput_bound, static_cast<double>(i) + 3.0);
  }
  std::remove(path.c_str());
}

/// Rewrites one byte of a file in place.
void flip_byte(const std::string& path, long offset) {
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(f.good());
  f.seekg(offset);
  char c = 0;
  f.read(&c, 1);
  c = static_cast<char>(c ^ 0x5a);
  f.seekp(offset);
  f.write(&c, 1);
}

class CacheCorruptionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = temp_cache_path("corrupt.cache");
    CandidateCache cache(16);
    for (std::uint64_t i = 0; i < 4; ++i) {
      cache.insert(key_of(i), metrics_of(static_cast<double>(i)));
    }
    ASSERT_EQ(cache.save_file(path_), 4u);
  }
  void TearDown() override { std::remove(path_.c_str()); }

  /// The file must be discarded: load adopts nothing, the cache stays
  /// empty, and a subsequent (cold) screen is unaffected.
  void expect_discarded() {
    CandidateCache cache(16);
    EXPECT_EQ(cache.load_file(path_), 0u);
    EXPECT_EQ(cache.size(), 0u);
    EXPECT_EQ(cache.stats().disk_discarded, 1u);
    for (std::uint64_t i = 0; i < 4; ++i) {
      EXPECT_FALSE(cache.lookup(key_of(i)).has_value());
    }
  }

  std::string path_;
};

TEST_F(CacheCorruptionTest, TruncatedHeaderIsDiscarded) {
  std::ofstream(path_, std::ios::binary | std::ios::trunc) << "SHGCACH";
  expect_discarded();
}

TEST_F(CacheCorruptionTest, TruncatedPayloadIsDiscarded) {
  std::ifstream in(path_, std::ios::binary);
  std::vector<char> data((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
  in.close();
  data.resize(data.size() - 7);  // mid-entry truncation
  std::ofstream out(path_, std::ios::binary | std::ios::trunc);
  out.write(data.data(), static_cast<std::streamsize>(data.size()));
  out.close();
  expect_discarded();
}

TEST_F(CacheCorruptionTest, FlippedChecksumByteIsDiscarded) {
  flip_byte(path_, 24);  // inside the stored checksum
  expect_discarded();
}

TEST_F(CacheCorruptionTest, FlippedPayloadByteIsDiscarded) {
  flip_byte(path_, 32 + 20);  // inside the first entry's metrics
  expect_discarded();
}

TEST_F(CacheCorruptionTest, FutureVersionIsDiscarded) {
  flip_byte(path_, 8);  // version field
  expect_discarded();
}

TEST_F(CacheCorruptionTest, WrongMagicIsDiscarded) {
  flip_byte(path_, 0);
  expect_discarded();
}

TEST_F(CacheCorruptionTest, SessionWithCorruptFileStillSearchesCorrectly) {
  flip_byte(path_, 40);  // payload corruption
  const tech::ArchParams arch = small_arch(6, 6);
  const Goal goal{0.40};
  const SearchResult reference = customize_greedy(arch, goal);

  SessionOptions options;
  options.cache_path = path_;
  options.autosave = false;
  Session session(options);  // load discards the corrupt file
  EXPECT_EQ(session.cache().size(), 0u);
  SearchOptions search;
  search.session = &session;
  expect_same_search(customize_greedy(arch, goal, search), reference,
                     "cold fallback after corrupt cache");
}

TEST(CandidateCache, AbsentFileIsASilentColdStart) {
  CandidateCache cache(4);
  EXPECT_EQ(cache.load_file(temp_cache_path("does-not-exist.cache")), 0u);
  EXPECT_EQ(cache.stats().disk_discarded, 0u);
}

// ---------------------------------------------------------------------------
// Simulation-result cache
// ---------------------------------------------------------------------------

sim::SimResult result_of(double v) {
  sim::SimResult r;
  r.offered_rate = v;
  r.accepted_rate = v + 0.5;
  r.avg_packet_latency = v + 1.0;
  r.max_packet_latency = v + 2.0;
  r.p50_packet_latency = v + 3.0;
  r.p95_packet_latency = v + 4.0;
  r.p99_packet_latency = v + 5.0;
  r.avg_hops = v + 6.0;
  r.fairness = v + 7.0;
  r.measured_packets = static_cast<long long>(v) + 8;
  r.drained = static_cast<long long>(v) % 2 == 0;
  r.cycles_run = static_cast<long long>(v) + 9;
  return r;
}

TEST(SimResultCache, LruEvictsLeastRecentlyUsed) {
  SimResultCache cache(2);
  cache.insert(key_of(1), result_of(1.0));
  cache.insert(key_of(2), result_of(2.0));
  EXPECT_TRUE(cache.lookup(key_of(1)).has_value());  // 2 becomes the victim
  cache.insert(key_of(3), result_of(3.0));
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_TRUE(cache.lookup(key_of(1)).has_value());
  EXPECT_FALSE(cache.lookup(key_of(2)).has_value());
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(SimResultCache, DiskRoundTripPreservesEveryField) {
  const std::string path = temp_cache_path("sim-roundtrip.cache");
  SimResultCache cache(16);
  for (std::uint64_t i = 0; i < 5; ++i) {
    cache.insert(key_of(i), result_of(static_cast<double>(i)));
  }
  EXPECT_EQ(cache.save_file(path), 5u);

  SimResultCache loaded(16);
  EXPECT_EQ(loaded.load_file(path), 5u);
  for (std::uint64_t i = 0; i < 5; ++i) {
    const auto hit = loaded.lookup(key_of(i));
    ASSERT_TRUE(hit.has_value()) << i;
    EXPECT_EQ(*hit, result_of(static_cast<double>(i))) << i;
  }
  std::remove(path.c_str());
}

TEST(SimResultCache, PayloadKindsNeverCrossLoad) {
  // Both tiers share the shg.cache.v1 container; the payload-kind header
  // field keeps their files apart. Feeding either kind to the other loader
  // must discard, not reinterpret.
  const std::string path = temp_cache_path("kind-cross.cache");
  CandidateCache candidates(4);
  candidates.insert(key_of(1), metrics_of(1.0));
  ASSERT_EQ(candidates.save_file(path), 1u);
  SimResultCache sims(4);
  EXPECT_EQ(sims.load_file(path), 0u);
  EXPECT_EQ(sims.stats().disk_discarded, 1u);

  sims.insert(key_of(2), result_of(2.0));
  ASSERT_EQ(sims.save_file(path), 1u);
  CandidateCache reloaded(4);
  EXPECT_EQ(reloaded.load_file(path), 0u);
  EXPECT_EQ(reloaded.stats().disk_discarded, 1u);
  std::remove(path.c_str());
}

TEST(SimResultCache, RepeatedLoadsMergeShards) {
  // The merge step of a sharded campaign: one session adopting several
  // shard files accumulates their union.
  const std::string a = temp_cache_path("sim-shard-a.cache");
  const std::string b = temp_cache_path("sim-shard-b.cache");
  {
    SimResultCache shard(8);
    shard.insert(key_of(1), result_of(1.0));
    shard.insert(key_of(2), result_of(2.0));
    ASSERT_EQ(shard.save_file(a), 2u);
  }
  {
    SimResultCache shard(8);
    shard.insert(key_of(3), result_of(3.0));
    ASSERT_EQ(shard.save_file(b), 1u);
  }
  SessionOptions options;
  options.autosave = false;
  Session session(options);
  EXPECT_EQ(session.sim_cache().load_file(a), 2u);
  EXPECT_EQ(session.sim_cache().load_file(b), 1u);
  EXPECT_EQ(session.sim_cache().size(), 3u);
  for (std::uint64_t i = 1; i <= 3; ++i) {
    const auto hit = session.lookup_sim(key_of(i));
    ASSERT_TRUE(hit.has_value()) << i;
    EXPECT_EQ(*hit, result_of(static_cast<double>(i))) << i;
  }
  std::remove(a.c_str());
  std::remove(b.c_str());
}

// ---------------------------------------------------------------------------
// Warm-session oracles
// ---------------------------------------------------------------------------

TEST(Session, GreedyWarmReinvocationBitIdenticalRandomized) {
  Prng prng(0x5e55u);
  for (int trial = 0; trial < 6; ++trial) {
    const int rows = prng.range(4, 9);
    const int cols = prng.range(4, 9);
    const tech::ArchParams arch = small_arch(rows, cols);
    const Goal goal{0.30 + 0.05 * static_cast<double>(prng.range(0, 3))};
    const std::string context = "trial " + std::to_string(trial) + " " +
                                std::to_string(rows) + "x" +
                                std::to_string(cols);

    const SearchResult reference = customize_greedy(arch, goal);
    Session session;
    SearchOptions options;
    options.session = &session;
    const SearchResult populating = customize_greedy(arch, goal, options);
    const std::uint64_t hits_before = session.stats().hits;
    const SearchResult warm = customize_greedy(arch, goal, options);
    expect_same_search(populating, reference, "populating " + context);
    expect_same_search(warm, reference, "warm " + context);
    EXPECT_GT(session.stats().hits, hits_before) << context;
  }
}

TEST(Session, GreedyWarmWorksWithIncrementalOff) {
  // The session must compose with every screening configuration — cached
  // bits come from oracle-equivalent paths, so mixing configurations
  // across invocations is also exact.
  const tech::ArchParams arch = small_arch(6, 7);
  const Goal goal{0.40};
  const SearchResult reference = customize_greedy(arch, goal);
  Session session;
  SearchOptions populate;
  populate.incremental = false;
  populate.session = &session;
  expect_same_search(customize_greedy(arch, goal, populate), reference,
                     "populate with incremental off");
  SearchOptions warm;
  warm.session = &session;  // incremental on, warm from the off-path run
  expect_same_search(customize_greedy(arch, goal, warm), reference,
                     "warm across configurations");
}

TEST(Session, GreedyWarmAcrossDiskBoundary) {
  const std::string path = temp_cache_path("disk-warm.cache");
  std::remove(path.c_str());
  const tech::ArchParams arch = small_arch(7, 6);
  const Goal goal{0.40};
  const SearchResult reference = customize_greedy(arch, goal);
  {
    SessionOptions options;
    options.cache_path = path;
    Session session(options);
    SearchOptions search;
    search.session = &session;
    expect_same_search(customize_greedy(arch, goal, search), reference,
                       "populating run");
  }  // autosave on destruction
  {
    SessionOptions options;
    options.cache_path = path;
    options.autosave = false;
    Session session(options);
    EXPECT_GT(session.cache().size(), 0u);
    SearchOptions search;
    search.session = &session;
    const SearchResult warm = customize_greedy(arch, goal, search);
    expect_same_search(warm, reference, "warm run from disk");
    // Candidate screening must be all hits; only the final cost report
    // (artifact tier, memory-only) is recomputed.
    EXPECT_EQ(session.stats().misses, 0u);
  }
  std::remove(path.c_str());
}

TEST(Session, ExhaustiveAndExploreHitAcrossInvocations) {
  const tech::ArchParams arch = small_arch(5, 5);
  const Goal goal{0.45};
  const std::vector<int> rows{2, 3};
  const std::vector<int> cols{3};

  const SearchResult reference =
      customize_exhaustive(arch, goal, rows, cols);
  Session session;
  SearchOptions options;
  options.session = &session;
  expect_same_search(customize_exhaustive(arch, goal, rows, cols, options),
                     reference, "exhaustive populating");
  const std::uint64_t misses_before = session.stats().misses;
  expect_same_search(customize_exhaustive(arch, goal, rows, cols, options),
                     reference, "exhaustive warm");
  EXPECT_EQ(session.stats().misses, misses_before) << "warm pass re-screened";

  // explore_shg shares the same candidate space keying: configurations the
  // exhaustive pass screened are warm here too.
  ExploreOptions explore;
  explore.max_row_skips = 2;
  explore.max_col_skips = 2;
  ExploreOptions explore_with_session = explore;
  explore_with_session.session = &session;
  const auto cold_points = explore_shg(arch, explore);
  const auto warm_points = explore_shg(arch, explore_with_session);
  ASSERT_EQ(cold_points.size(), warm_points.size());
  for (std::size_t i = 0; i < cold_points.size(); ++i) {
    EXPECT_EQ(cold_points[i].params, warm_points[i].params) << i;
    EXPECT_EQ(cold_points[i].metrics, warm_points[i].metrics) << i;
    EXPECT_EQ(cold_points[i].label, warm_points[i].label) << i;
  }
}

// ---------------------------------------------------------------------------
// Generic-family screening (SHG + SlimNoC + torus trajectories)
// ---------------------------------------------------------------------------

/// Random non-unit candidate links absent from `parent` (and from each
/// other), including diagonal ones.
std::vector<graph::Edge> random_new_edges(const topo::Topology& parent,
                                          Prng& prng, int count) {
  std::vector<graph::Edge> edges;
  topo::Topology probe = parent;  // tracks picked edges to avoid duplicates
  int attempts = 0;
  while (static_cast<int>(edges.size()) < count && attempts < 200) {
    ++attempts;
    const graph::NodeId u = static_cast<graph::NodeId>(
        prng.below(static_cast<std::uint64_t>(parent.num_tiles())));
    const graph::NodeId v = static_cast<graph::NodeId>(
        prng.below(static_cast<std::uint64_t>(parent.num_tiles())));
    if (u == v || probe.graph().has_edge(u, v)) continue;
    probe.add_link(u, v);
    edges.push_back(graph::Edge{u, v});
  }
  return edges;
}

topo::Topology materialize_child(const topo::Topology& parent,
                                 const std::vector<graph::Edge>& new_edges) {
  topo::Topology child = parent;
  for (const graph::Edge& e : new_edges) child.add_link(e.u, e.v);
  return child;
}

TEST(TopologyScreeningContext, RandomFamilyTrajectoriesBitIdentical) {
  struct Case {
    topo::Topology parent;
    tech::ArchParams arch;
  };
  std::vector<Case> cases;
  cases.push_back({topo::make_sparse_hamming(8, 8, {3}, {2}),
                   small_arch(8, 8)});
  cases.push_back({topo::make_slim_noc(5, 10), small_arch(5, 10)});
  cases.push_back({topo::make_torus(6, 7), small_arch(6, 7)});
  cases.push_back({topo::make_mesh(6, 6), small_arch(6, 6)});

  Prng prng(0xfa111e5u);
  for (const Case& c : cases) {
    const TopologyScreeningContext ctx(c.arch, c.parent);
    EXPECT_EQ(ctx.metrics(), screen_topology(c.arch, c.parent))
        << c.parent.name();
    TopologyScreeningContext::Workspace ws;
    model::TileGeometryCache tile_cache;
    for (int trial = 0; trial < 5; ++trial) {
      const std::vector<graph::Edge> delta =
          random_new_edges(c.parent, prng, 1 + trial);
      if (delta.empty()) continue;
      const CandidateMetrics fast = ctx.screen_child(delta, &tile_cache, &ws);
      const CandidateMetrics fresh =
          screen_topology(c.arch, materialize_child(c.parent, delta));
      EXPECT_EQ(fast, fresh)
          << c.parent.name() << " trial " << trial << " (" << delta.size()
          << " added links)";
    }
  }
}

TEST(TopologyScreeningContext, RejectsDuplicateDeltaEdges) {
  const tech::ArchParams arch = small_arch(4, 4);
  const topo::Topology parent = topo::make_mesh(4, 4);
  const TopologyScreeningContext ctx(arch, parent);
  // (0,0)-(0,1) is a mesh link — repairing it as "new" would double-count.
  EXPECT_THROW(ctx.screen_child({graph::Edge{0, 1}}), Error);
  // A repeat WITHIN the delta is just as unmaterializable (Graph rejects
  // parallel edges) and would double-route the link: must throw, in
  // either endpoint order.
  EXPECT_THROW(ctx.screen_child({graph::Edge{0, 5}, graph::Edge{0, 5}}),
               Error);
  EXPECT_THROW(ctx.screen_child({graph::Edge{0, 5}, graph::Edge{5, 0}}),
               Error);
}

TEST(Session, GenericChildrenWarmAcrossTrajectories) {
  const tech::ArchParams arch = small_arch(5, 10);
  const topo::Topology parent = topo::make_slim_noc(5, 10);
  const TopologyScreeningContext ctx(arch, parent);
  const Fingerprint arch_fp = fingerprint_arch(arch);
  const Fingerprint parent_fp = fingerprint_topology(parent);

  Prng prng(0x9e11e71cu);
  Session session;
  std::vector<std::vector<graph::Edge>> deltas;
  std::vector<CandidateMetrics> cold;
  for (int trial = 0; trial < 4; ++trial) {
    deltas.push_back(random_new_edges(parent, prng, 2 + trial));
    cold.push_back(screen_child_cached(session, ctx, arch_fp, parent_fp,
                                       deltas.back()));
    // Cold pass must agree with the fresh sweep on the materialized child.
    EXPECT_EQ(cold.back(),
              screen_topology(arch, materialize_child(parent, deltas.back())))
        << trial;
  }
  const std::uint64_t misses_before = session.stats().misses;
  for (std::size_t i = 0; i < deltas.size(); ++i) {
    EXPECT_EQ(screen_child_cached(session, ctx, arch_fp, parent_fp,
                                  deltas[i]),
              cold[i])
        << "warm " << i;
  }
  EXPECT_EQ(session.stats().misses, misses_before) << "warm pass re-screened";
}

// ---------------------------------------------------------------------------
// Experiment-engine route-table reuse
// ---------------------------------------------------------------------------

TEST(Session, ExperimentReusesRouteTablesAcrossRuns) {
  eval::ExperimentSpec spec;
  spec.name = "session-tables";
  spec.topologies.push_back(
      eval::TopologyCase{topo::make_mesh(4, 4), {}, "mesh"});
  spec.topologies.push_back(
      eval::TopologyCase{topo::make_torus(4, 4), {}, "torus"});
  spec.traffic.push_back(eval::TrafficCase{"uniform", nullptr, ""});
  spec.rates = {0.05};
  spec.seeds = {1, 2};
  spec.config.sim.warmup_cycles = 50;
  spec.config.sim.measure_cycles = 150;

  const std::string baseline = experiment_to_json(eval::run_experiment(spec));

  Session session;
  spec.session = &session;
  const std::string first = experiment_to_json(eval::run_experiment(spec));
  EXPECT_EQ(session.artifact_hits(), 0u);
  EXPECT_EQ(session.artifact_misses(), 2u);  // one per topology
  const std::string second = experiment_to_json(eval::run_experiment(spec));
  EXPECT_EQ(session.artifact_hits(), 2u);  // both tables reused

  EXPECT_EQ(first, baseline);
  EXPECT_EQ(second, baseline);
}

TEST(Session, RouteTableKeysDistinguishFamilyKinds) {
  // Regression: the default routing function switches on topo.kind()
  // (mesh -> xy-hamming, custom -> table-escape), so two topologies with
  // IDENTICAL edge sets but different kinds must not share a cached route
  // table — a kind-blind key served the mesh's xy-routed table to the
  // custom topology and changed its report.
  const topo::Topology mesh = topo::make_mesh(4, 4);
  topo::Topology custom(topo::Kind::kCustom, "mesh-edges-custom", 4, 4);
  for (const graph::Edge& e : mesh.graph().edges()) {
    custom.add_link(e.u, e.v);
  }
  ASSERT_EQ(fingerprint_topology(mesh), fingerprint_topology(custom));

  eval::ExperimentSpec spec;
  spec.name = "kind-keying";
  spec.traffic.push_back(eval::TrafficCase{"uniform", nullptr, ""});
  spec.rates = {0.05};
  spec.config.sim.warmup_cycles = 50;
  spec.config.sim.measure_cycles = 150;

  auto run_json = [&](const topo::Topology& t, Session* session) {
    eval::ExperimentSpec s = spec;
    s.topologies.push_back(eval::TopologyCase{t, {}, "t"});
    s.session = session;
    return experiment_to_json(eval::run_experiment(s));
  };
  const std::string mesh_ref = run_json(mesh, nullptr);
  const std::string custom_ref = run_json(custom, nullptr);

  Session session;
  EXPECT_EQ(run_json(mesh, &session), mesh_ref);
  EXPECT_EQ(run_json(custom, &session), custom_ref);
  EXPECT_EQ(session.artifact_hits(), 0u)
      << "different kinds must not share a table";
  // Same-kind, same-edges re-run still reuses its table.
  EXPECT_EQ(run_json(mesh, &session), mesh_ref);
  EXPECT_EQ(session.artifact_hits(), 1u);
}

}  // namespace
}  // namespace shg::customize
