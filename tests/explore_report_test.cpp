// Tests for the design-space explorer (SHG vs Ruche) and report CSV export.
#include <gtest/gtest.h>

#include "shg/customize/explore.hpp"
#include "shg/model/report_io.hpp"
#include "shg/tech/presets.hpp"
#include "shg/topo/generators.hpp"

namespace shg::customize {
namespace {

tech::ArchParams arch_a() {
  return tech::knc_scenario(tech::KncScenario::kA);
}

TEST(Explore, ShgEnumerationCounts) {
  ExploreOptions options;
  options.max_row_skips = 1;
  options.max_col_skips = 1;
  // SR: {} plus {x} for x in 2..7 -> 7 choices; same for SC: 49 configs.
  const auto points = explore_shg(arch_a(), options);
  EXPECT_EQ(points.size(), 49u);
}

TEST(Explore, RucheEnumerationCounts) {
  ExploreOptions options;
  // rx in {0, 2..7} (7 choices) x ry in {0, 2..7} (7 choices).
  const auto points = explore_ruche(arch_a(), options);
  EXPECT_EQ(points.size(), 49u);
}

TEST(Explore, RucheIsSubsetOfShg) {
  // With one skip per dimension the two enumerations screen identical
  // topologies, so every Ruche point must appear among SHG points.
  ExploreOptions options;
  options.max_row_skips = 1;
  options.max_col_skips = 1;
  const auto shg = explore_shg(arch_a(), options);
  const auto ruche = explore_ruche(arch_a(), options);
  for (const auto& rp : ruche) {
    bool found = false;
    for (const auto& sp : shg) {
      if (sp.params == rp.params) {
        EXPECT_NEAR(sp.metrics.area_overhead, rp.metrics.area_overhead,
                    1e-12);
        EXPECT_NEAR(sp.metrics.throughput_bound, rp.metrics.throughput_bound,
                    1e-12);
        found = true;
        break;
      }
    }
    EXPECT_TRUE(found) << rp.label;
  }
}

TEST(Explore, ShgFrontCoversAtLeastRuche) {
  // The Section VI claim, quantified: a superset family can only reach a
  // front coverage >= its subset's.
  ExploreOptions options;
  options.max_row_skips = 2;
  options.max_col_skips = 2;
  const auto shg_front = trade_off_front(explore_shg(arch_a(), options));
  const auto ruche_front = trade_off_front(explore_ruche(arch_a(), options));
  EXPECT_GE(front_coverage(shg_front, 0.40),
            front_coverage(ruche_front, 0.40) - 1e-12);
  // And with two skips per dimension it is strictly richer.
  EXPECT_GT(front_coverage(shg_front, 0.40),
            front_coverage(ruche_front, 0.40) * 1.02);
}

TEST(Explore, FrontIsNonDominatedAndSorted) {
  ExploreOptions options;
  options.max_row_skips = 1;
  options.max_col_skips = 1;
  const auto front = trade_off_front(explore_shg(arch_a(), options));
  ASSERT_GE(front.size(), 2u);
  for (std::size_t i = 1; i < front.size(); ++i) {
    EXPECT_GE(front[i].metrics.area_overhead,
              front[i - 1].metrics.area_overhead);
  }
  for (const auto& a : front) {
    for (const auto& b : front) {
      if (&a == &b) continue;
      const bool dominates =
          a.metrics.area_overhead <= b.metrics.area_overhead &&
          a.metrics.throughput_bound >= b.metrics.throughput_bound &&
          a.metrics.avg_hops <= b.metrics.avg_hops &&
          (a.metrics.area_overhead < b.metrics.area_overhead ||
           a.metrics.throughput_bound > b.metrics.throughput_bound ||
           a.metrics.avg_hops < b.metrics.avg_hops);
      EXPECT_FALSE(dominates);
    }
  }
}

TEST(Explore, CoverageStaircase) {
  // Hand-built front: bound 1.0 from overhead 0.1, bound 2.0 from 0.3.
  std::vector<ExploredPoint> front(2);
  front[0].metrics.area_overhead = 0.1;
  front[0].metrics.throughput_bound = 1.0;
  front[1].metrics.area_overhead = 0.3;
  front[1].metrics.throughput_bound = 2.0;
  // Integral over [0, 0.4]: 0 * 0.1 + 1.0 * 0.2 + 2.0 * 0.1 = 0.4.
  EXPECT_NEAR(front_coverage(front, 0.40), 0.4, 1e-12);
  EXPECT_THROW(front_coverage(front, 0.0), Error);
}

}  // namespace
}  // namespace shg::customize

namespace shg::model {
namespace {

TEST(ReportIo, CostReportCsv) {
  const auto arch = tech::knc_scenario(tech::KncScenario::kA);
  std::vector<NamedCostReport> reports;
  reports.push_back({"mesh", evaluate_cost(arch, topo::make_mesh(8, 8))});
  reports.push_back(
      {"torus", evaluate_cost(arch, topo::make_torus(8, 8))});
  const std::string csv = cost_reports_to_csv(reports);
  EXPECT_NE(csv.find("name,area_overhead"), std::string::npos);
  EXPECT_NE(csv.find("mesh,"), std::string::npos);
  EXPECT_NE(csv.find("torus,"), std::string::npos);
  // Header + 2 rows.
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 3);
}

TEST(ReportIo, LinkCostsCsv) {
  const auto arch = tech::knc_scenario(tech::KncScenario::kA);
  const auto report = evaluate_cost(arch, topo::make_mesh(8, 8));
  const std::string csv = link_costs_to_csv(report);
  // Header + one row per link.
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'),
            1 + static_cast<long>(report.links.size()));
}

}  // namespace
}  // namespace shg::model
