// UGAL-class adaptive routing: delivery and escape-band deadlock freedom
// of the routing function, the min-VC construction guard, the
// always-minimal sentinel differential oracle (SimConfig::routing_policy =
// kUgal with ugal_bias_flits = kUgalBiasAlwaysMinimal must be bit-identical
// to kMinimal), AoS/SoA engine bit-identity under live UGAL decisions, and
// saturation soak drains across every topology family.
#include <gtest/gtest.h>

#include <queue>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "shg/eval/experiment.hpp"
#include "shg/graph/cdg.hpp"
#include "shg/sim/route_table.hpp"
#include "shg/sim/simulator.hpp"
#include "shg/sim/traffic_spec.hpp"
#include "shg/topo/generators.hpp"

namespace shg::sim {
namespace {

std::vector<int> unit_latencies(const topo::Topology& topo) {
  return std::vector<int>(static_cast<std::size_t>(topo.graph().num_edges()),
                          1);
}

SimConfig ugal_config() {
  SimConfig config;
  config.routing_policy = RoutingPolicy::kUgal;
  config.num_vcs = 4;  // 2 escape classes + 2 adaptive VCs
  config.buffer_depth_flits = 4;
  config.packet_size_flits = 2;
  config.warmup_cycles = 200;
  config.measure_cycles = 500;
  config.drain_cycles = 30000;
  return config;
}

struct RunOutcome {
  SimResult result;
  long long nonminimal = 0;
};

RunOutcome run_once(const topo::Topology& topo, SimConfig config,
                    const std::string& spec_text, bool soa) {
  config.use_soa_engine = soa;
  const TrafficSpec spec = TrafficSpec::parse(spec_text);
  const auto pattern =
      spec.make_pattern(topo.rows(), topo.cols(), topo.concentration());
  Simulator sim(topo, unit_latencies(topo), config, *pattern, 1);
  RunOutcome out;
  out.result = sim.run();
  out.nonminimal = sim.ugal_nonminimal_choices();
  return out;
}

/// Both engines must agree on every SimResult field AND on the number of
/// non-minimal decisions (the decision inputs are engine-independent by
/// construction; this is the oracle that keeps them so).
RunOutcome expect_engines_identical(const topo::Topology& topo,
                                    const SimConfig& config,
                                    const std::string& spec_text) {
  const RunOutcome aos = run_once(topo, config, spec_text, false);
  const RunOutcome soa = run_once(topo, config, spec_text, true);
  EXPECT_TRUE(aos.result == soa.result)
      << topo.name() << " / " << spec_text << ": cycles " << aos.result.cycles_run
      << " vs " << soa.result.cycles_run << ", latency "
      << aos.result.avg_packet_latency << " vs " << soa.result.avg_packet_latency;
  EXPECT_EQ(aos.nonminimal, soa.nonminimal) << topo.name() << " / " << spec_text;
  EXPECT_GT(soa.result.measured_packets, 0) << topo.name() << " / " << spec_text;
  return soa;
}

// --- Routing-function level -------------------------------------------------

int channel_id(const topo::Topology& topo, int u, int v) {
  for (const auto& n : topo.graph().neighbors(u)) {
    if (n.node == v) {
      const auto& edge = topo.graph().edge(n.edge);
      return 2 * n.edge + (edge.u == u ? 0 : 1);
    }
  }
  ADD_FAILURE() << "not neighbors: " << u << " " << v;
  return -1;
}

int port_of(const topo::Topology& topo, int u, int v) {
  const auto& nbrs = topo.graph().neighbors(u);
  for (std::size_t i = 0; i < nbrs.size(); ++i) {
    if (nbrs[i].node == v) return static_cast<int>(i);
  }
  return -1;
}

/// Reachable channel dependency graph restricted to VCs below `band`: the
/// Duato condition only needs the escape subnetwork acyclic, because
/// adaptive VCs always have the escape candidate to fall back to. `band`
/// is kUgalEscapeVcs for most families; for families whose own default is
/// a Duato scheme (SlimNoc), the escape network nests one level deeper and
/// the acyclic root is its innermost VC (band = 1) — VC 1 is that scheme's
/// adaptive class, made safe by the same fallback protocol, not by
/// acyclicity.
std::vector<std::pair<int, int>> escape_band_cdg(const topo::Topology& topo,
                                                 const RoutingFunction& routing,
                                                 int num_vcs, int band) {
  auto vertex = [num_vcs](int channel, int vc) {
    return channel * num_vcs + vc;
  };
  std::set<std::pair<int, int>> dependencies;
  for (int dest = 0; dest < topo.num_tiles(); ++dest) {
    std::set<std::tuple<int, int, int>> visited;
    std::queue<std::tuple<int, int, int>> frontier;
    for (int src = 0; src < topo.num_tiles(); ++src) {
      if (src != dest) frontier.emplace(src, -1, -1);
    }
    while (!frontier.empty()) {
      const auto [node, in_vc, from] = frontier.front();
      frontier.pop();
      if (node == dest) continue;
      if (!visited.emplace(node, in_vc, from).second) continue;
      const int in_port = from < 0 ? -1 : port_of(topo, node, from);
      const auto candidates = routing.route(node, in_port, in_vc, dest);
      EXPECT_FALSE(candidates.empty());
      const int in_channel = from < 0 ? -1 : channel_id(topo, from, node);
      for (const auto& cand : candidates) {
        const int next = topo.graph()
                             .neighbors(node)[static_cast<std::size_t>(
                                 cand.out_port)]
                             .node;
        const int out_channel = channel_id(topo, node, next);
        for (int ov = cand.vc_begin; ov < cand.vc_end; ++ov) {
          if (in_channel >= 0 && in_vc >= 0 && in_vc < band && ov < band) {
            dependencies.emplace(vertex(in_channel, in_vc),
                                 vertex(out_channel, ov));
          }
          frontier.emplace(next, ov, node);
        }
      }
    }
  }
  return {dependencies.begin(), dependencies.end()};
}

/// Follows the first candidate from src to dest; returns hop count.
int walk_first(const topo::Topology& topo, const RoutingFunction& routing,
               int src, int dest) {
  int node = src;
  int in_vc = -1;
  int from = -1;
  int hops = 0;
  while (node != dest) {
    const int in_port = from < 0 ? -1 : port_of(topo, node, from);
    const auto candidates = routing.route(node, in_port, in_vc, dest);
    EXPECT_FALSE(candidates.empty());
    if (candidates.empty()) return -1;
    const auto& cand = candidates.front();
    from = node;
    node = topo.graph()
               .neighbors(node)[static_cast<std::size_t>(cand.out_port)]
               .node;
    in_vc = cand.vc_begin;
    if (++hops > topo.num_tiles() * 4) {
      ADD_FAILURE() << "routing loop " << src << " -> " << dest;
      return -1;
    }
  }
  return hops;
}

constexpr int kVcs = 4;

std::vector<topo::Topology> soak_topologies() {
  std::vector<topo::Topology> topos;
  topos.push_back(topo::make_ring(4, 4));
  topos.push_back(topo::make_mesh(4, 4));
  topos.push_back(topo::make_torus(4, 4));
  topos.push_back(topo::make_folded_torus(4, 4));
  topos.push_back(topo::make_hypercube(4, 4));
  topos.push_back(topo::make_flattened_butterfly(4, 4));
  topos.push_back(topo::make_sparse_hamming(4, 4, {2}, {2, 3}));
  topos.push_back(topo::make_slim_noc(4, 8));
  return topos;
}

TEST(UgalRouting, DeliversAllPairsEveryFamily) {
  for (const auto& topo : soak_topologies()) {
    SCOPED_TRACE(topo.name());
    const auto routing = make_ugal_routing(topo, kVcs, 0x1234);
    for (int s = 0; s < topo.num_tiles(); ++s) {
      for (int d = 0; d < topo.num_tiles(); ++d) {
        if (s == d) continue;
        ASSERT_GE(walk_first(topo, *routing, s, d), 1);
      }
    }
  }
}

TEST(UgalRouting, FirstCandidateIsMinimal) {
  const auto topo = topo::make_mesh(4, 4);
  const auto routing = make_ugal_routing(topo, kVcs, 0x1234);
  for (int s = 0; s < 16; ++s) {
    for (int d = 0; d < 16; ++d) {
      if (s == d) continue;
      const auto cs = topo.coord(s);
      const auto cd = topo.coord(d);
      EXPECT_EQ(walk_first(topo, *routing, s, d),
                std::abs(cs.row - cd.row) + std::abs(cs.col - cd.col));
    }
  }
}

TEST(UgalRouting, EscapeBandCdgAcyclicEveryFamily) {
  for (const auto& topo : soak_topologies()) {
    const auto routing = make_ugal_routing(topo, kVcs, 0x1234);
    const int band =
        topo.kind() == topo::Kind::kSlimNoc ? 1 : kUgalEscapeVcs;
    const auto edges = escape_band_cdg(topo, *routing, kVcs, band);
    EXPECT_FALSE(
        graph::has_cycle(2 * topo.graph().num_edges() * kVcs, edges))
        << topo.name();
  }
}

TEST(UgalRouting, AdaptiveRowEndsWithEscapeCandidate) {
  const auto topo = topo::make_torus(4, 4);
  const auto routing = make_ugal_routing(topo, kVcs, 0x1234);
  for (int s = 0; s < 16; ++s) {
    for (int d = 0; d < 16; ++d) {
      if (s == d) continue;
      const auto candidates = routing->route(s, -1, -1, d);
      ASSERT_GE(candidates.size(), 2u);
      // Adaptive candidates first (VCs [2, V)), escape last (VCs [0, 2)).
      EXPECT_EQ(candidates.front().vc_begin, kUgalEscapeVcs);
      EXPECT_EQ(candidates.front().vc_end, kVcs);
      EXPECT_LT(candidates.back().vc_begin, kUgalEscapeVcs);
      EXPECT_LE(candidates.back().vc_end, kUgalEscapeVcs);
    }
  }
}

TEST(UgalRouting, ViaDrawExcludesEndpointsAndIsSeedDeterministic) {
  const auto topo = topo::make_mesh(4, 4);
  const auto a = make_ugal_routing(topo, kVcs, 42);
  const auto b = make_ugal_routing(topo, kVcs, 42);
  const auto c = make_ugal_routing(topo, kVcs, 43);
  const UgalInfo* ia = a->ugal_info();
  const UgalInfo* ib = b->ugal_info();
  const UgalInfo* ic = c->ugal_info();
  ASSERT_NE(ia, nullptr);
  bool seed_changes_some_via = false;
  for (int s = 0; s < 16; ++s) {
    for (int d = 0; d < 16; ++d) {
      if (s == d) continue;
      const int via = ia->via_of(s, d);
      ASSERT_GE(via, 0);
      EXPECT_NE(via, s);
      EXPECT_NE(via, d);
      EXPECT_LT(via, 16);
      EXPECT_EQ(via, ib->via_of(s, d));  // pure function of the seed
      if (via != ic->via_of(s, d)) seed_changes_some_via = true;
      // hops are the real all-pairs distances.
      EXPECT_GE(ia->hops_between(s, d), 1);
      EXPECT_LE(ia->hops_between(s, via) + ia->hops_between(via, d),
                2 * 6 /* 2 * mesh diameter */);
    }
  }
  EXPECT_TRUE(seed_changes_some_via);
}

TEST(UgalRouting, RequiresEscapePlusAdaptiveVcs) {
  const auto topo = topo::make_mesh(4, 4);
  EXPECT_THROW(make_ugal_routing(topo, kUgalEscapeVcs, 1), Error);
  EXPECT_NO_THROW(make_ugal_routing(topo, kUgalEscapeVcs + 1, 1));
}

// --- Construction-time validation ------------------------------------------

TEST(UgalValidation, SimulatorNamesTheOffendingKnob) {
  const auto topo = topo::make_mesh(4, 4);
  SimConfig config = ugal_config();
  config.num_vcs = 2;  // ugal needs >= 3
  const auto pattern = TrafficSpec::parse("uniform").make_pattern(4, 4);
  try {
    Simulator sim(topo, unit_latencies(topo), config, *pattern, 1);
    FAIL() << "expected the min-VC guard to throw";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("SimConfig::num_vcs"), std::string::npos) << what;
    EXPECT_NE(what.find("ugal"), std::string::npos) << what;
  }
}

TEST(UgalValidation, DatelineFamiliesStillNeedTwoVcs) {
  const auto topo = topo::make_torus(4, 4);
  SimConfig config;
  config.num_vcs = 1;
  const auto pattern = TrafficSpec::parse("uniform").make_pattern(4, 4);
  try {
    Simulator sim(topo, unit_latencies(topo), config, *pattern, 1);
    FAIL() << "expected the min-VC guard to throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("SimConfig::num_vcs"),
              std::string::npos)
        << e.what();
  }
}

TEST(UgalValidation, SentinelBiasRelaxesTheVcFloor) {
  // kUgal with the always-minimal sentinel is EFFECTIVELY minimal, so the
  // minimal floor applies (mesh: 1 VC suffices).
  const auto topo = topo::make_mesh(4, 4);
  SimConfig config = ugal_config();
  config.ugal_bias_flits = SimConfig::kUgalBiasAlwaysMinimal;
  config.num_vcs = 1;
  const auto pattern = TrafficSpec::parse("uniform").make_pattern(4, 4);
  EXPECT_NO_THROW(
      Simulator(topo, unit_latencies(topo), config, *pattern, 1));
}

// --- Route-table propagation ------------------------------------------------

TEST(UgalRouteTable, CarriesUgalInfoOnlyForUgalRouting) {
  const auto topo = topo::make_mesh(4, 4);
  const auto ugal = make_ugal_routing(topo, kVcs, 7);
  const RouteTable ugal_table(topo, *ugal, kVcs);
  ASSERT_NE(ugal_table.ugal_info(), nullptr);
  EXPECT_EQ(ugal_table.ugal_info()->num_nodes, 16);

  const auto minimal = make_default_routing(topo, kVcs);
  const RouteTable minimal_table(topo, *minimal, kVcs);
  EXPECT_EQ(minimal_table.ugal_info(), nullptr);
}

TEST(UgalRouteTable, SimulatorRejectsPolicyMismatchedSharedTable) {
  const auto topo = topo::make_mesh(4, 4);
  const auto pattern = TrafficSpec::parse("uniform").make_pattern(4, 4);
  SimConfig config = ugal_config();
  // Minimal table handed to an ugal simulator:
  const auto minimal_table = std::make_shared<const RouteTable>(
      topo, *make_default_routing(topo, kVcs), kVcs);
  EXPECT_THROW(Simulator(topo, unit_latencies(topo), config, *pattern, 1,
                         nullptr, minimal_table),
               Error);
  // Ugal table handed to a minimal simulator:
  SimConfig minimal_config;
  minimal_config.num_vcs = kVcs;
  const auto ugal_table = std::make_shared<const RouteTable>(
      topo, *make_ugal_routing(topo, kVcs, config.ugal_via_seed), kVcs);
  EXPECT_THROW(Simulator(topo, unit_latencies(topo), minimal_config, *pattern,
                         1, nullptr, ugal_table),
               Error);
}

// --- The sentinel differential oracle ---------------------------------------

TEST(UgalSentinel, AlwaysMinimalBiasIsBitIdenticalToMinimalPolicy) {
  // The whole UGAL machinery must vanish under the sentinel: every
  // SimResult field equals the plain minimal run bit-for-bit, on both
  // engines, in table and live-routing mode.
  for (const auto& topo : {topo::make_mesh(4, 4), topo::make_torus(4, 4)}) {
    for (const char* spec : {"uniform", "transpose"}) {
      for (const bool soa : {false, true}) {
        for (const bool table : {true, false}) {
          SCOPED_TRACE(std::string(topo.name()) + " / " + spec +
                       (soa ? " soa" : " aos") +
                       (table ? " table" : " live"));
          SimConfig minimal;
          minimal.num_vcs = kVcs;
          minimal.injection_rate = 0.15;
          minimal.warmup_cycles = 200;
          minimal.measure_cycles = 500;
          minimal.use_route_table = table;
          SimConfig sentinel = minimal;
          sentinel.routing_policy = RoutingPolicy::kUgal;
          sentinel.ugal_bias_flits = SimConfig::kUgalBiasAlwaysMinimal;
          const RunOutcome a = run_once(topo, minimal, spec, soa);
          const RunOutcome b = run_once(topo, sentinel, spec, soa);
          EXPECT_TRUE(a.result == b.result);
          EXPECT_EQ(a.nonminimal, 0);
          EXPECT_EQ(b.nonminimal, 0);
          EXPECT_GT(a.result.measured_packets, 0);
        }
      }
    }
  }
}

TEST(UgalSentinel, HugeBiasNeverGoesNonminimal) {
  // A live ugal run (full machinery engaged) whose bias out-weighs any
  // occupancy difference must make zero non-minimal choices.
  const auto topo = topo::make_mesh(4, 4);
  SimConfig config = ugal_config();
  config.injection_rate = 0.4;
  config.ugal_bias_flits = 1000000;
  const RunOutcome out = expect_engines_identical(topo, config, "transpose");
  EXPECT_EQ(out.nonminimal, 0);
  EXPECT_TRUE(out.result.drained);
}

// --- Engine bit-identity under live UGAL ------------------------------------

TEST(UgalBitIdentity, FamiliesAndPatterns) {
  SimConfig config = ugal_config();
  config.injection_rate = 0.12;
  const topo::Topology topos[] = {
      topo::make_mesh(4, 4),
      topo::make_torus(4, 4),
      topo::make_sparse_hamming(4, 4, {2}, {2, 3}),
      topo::make_slim_noc(4, 8),
  };
  for (const auto& topo : topos) {
    SCOPED_TRACE(topo.name());
    expect_engines_identical(topo, config, "uniform");
    expect_engines_identical(topo, config, "randperm:7");
  }
}

TEST(UgalBitIdentity, SaturatedAdversarialAndLiveRouting) {
  const auto topo = topo::make_mesh(4, 4);
  SimConfig config = ugal_config();
  config.injection_rate = 0.5;
  config.drain_cycles = 40000;
  expect_engines_identical(topo, config, "transpose");
  config.use_route_table = false;  // live routing on both engines
  expect_engines_identical(topo, config, "hotspot:0,15:0.5");
}

TEST(UgalBitIdentity, NonminimalChoicesFireUnderAdversarialLoad) {
  // The machinery must actually engage: under a saturating permutation
  // with the default bias, some packets must take the Valiant leg.
  const auto topo = topo::make_mesh(4, 4);
  SimConfig config = ugal_config();
  config.injection_rate = 0.5;
  config.drain_cycles = 40000;
  const RunOutcome out = expect_engines_identical(topo, config, "transpose");
  EXPECT_GT(out.nonminimal, 0);
  EXPECT_TRUE(out.result.drained);
}

// --- Determinism ------------------------------------------------------------

TEST(UgalDeterminism, RepeatedRunsAndParallelCampaignsAreByteIdentical) {
  const auto topo = topo::make_mesh(4, 4);
  SimConfig config = ugal_config();
  config.injection_rate = 0.3;
  const RunOutcome once = run_once(topo, config, "randperm:3", true);
  const RunOutcome twice = run_once(topo, config, "randperm:3", true);
  EXPECT_TRUE(once.result == twice.result);
  EXPECT_EQ(once.nonminimal, twice.nonminimal);

  // Through the experiment engine (parallel workers, any interleaving):
  // the rendered report must be byte-identical run to run.
  eval::ExperimentSpec spec;
  spec.name = "ugal-determinism";
  spec.topologies.push_back(
      eval::TopologyCase{topo::make_mesh(4, 4), {}, ""});
  spec.traffic.push_back(eval::TrafficCase{"randperm:7", nullptr, ""});
  spec.rates = {0.1, 0.3};
  spec.seeds = {1, 2, 3};
  spec.config.sim = ugal_config();
  const eval::ExperimentReport r1 = eval::run_experiment(spec);
  const eval::ExperimentReport r2 = eval::run_experiment(spec);
  EXPECT_EQ(eval::experiment_to_json(r1), eval::experiment_to_json(r2));
}

// --- Saturation soak --------------------------------------------------------

TEST(UgalSoak, SaturationPermutationsDrainEveryFamilyBothPolicies) {
  // The deadlock-freedom soak: every family x {minimal, ugal} at a
  // saturating rate under adversarial permutations must drain inside the
  // drain budget. A deadlock shows up as drained == false (the watchdog
  // gives up after 20k ejection-free cycles with traffic in flight).
  for (const auto& topo : soak_topologies()) {
    for (const RoutingPolicy policy :
         {RoutingPolicy::kMinimal, RoutingPolicy::kUgal}) {
      for (const char* spec : {"bit-complement", "randperm:3"}) {
        SCOPED_TRACE(std::string(topo.name()) + " / " +
                     routing_policy_name(policy) + " / " + spec);
        SimConfig config = ugal_config();
        config.routing_policy = policy;
        config.injection_rate = 0.45;
        config.warmup_cycles = 150;
        config.measure_cycles = 350;
        const RunOutcome out = run_once(topo, config, spec, true);
        EXPECT_TRUE(out.result.drained);
        EXPECT_GT(out.result.measured_packets, 0);
      }
    }
  }
}

}  // namespace
}  // namespace shg::sim
