// Tests for the customization engine (Section V-a) and Pareto utilities.
#include <gtest/gtest.h>

#include "shg/customize/pareto.hpp"
#include "shg/customize/search.hpp"
#include "shg/tech/presets.hpp"

namespace shg::customize {
namespace {

using tech::ArchParams;
using tech::KncScenario;
using tech::knc_scenario;

TEST(Screening, MeshBaseline) {
  const ArchParams arch = knc_scenario(KncScenario::kA);
  const CandidateMetrics mesh = screen_candidate(arch, topo::ShgParams{});
  EXPECT_GT(mesh.area_overhead, 0.0);
  EXPECT_NEAR(mesh.diameter, 14.0, 1e-9);
  // Uniform-traffic bound for an 8x8 mesh: 2*112 links / (64 * ~5.33 hops).
  EXPECT_NEAR(mesh.avg_hops, 16.0 / 3.0, 0.01);
  EXPECT_NEAR(mesh.throughput_bound, 224.0 / (64.0 * 16.0 / 3.0), 1e-3);
}

TEST(Screening, SkipsRaiseThroughputBoundAndCost) {
  const ArchParams arch = knc_scenario(KncScenario::kA);
  const CandidateMetrics mesh = screen_candidate(arch, topo::ShgParams{});
  const CandidateMetrics shg =
      screen_candidate(arch, topo::ShgParams{{4}, {2, 5}});
  EXPECT_GT(shg.throughput_bound, mesh.throughput_bound);
  EXPECT_LT(shg.avg_hops, mesh.avg_hops);
  EXPECT_GT(shg.area_overhead, mesh.area_overhead);
}

TEST(Greedy, RespectsAreaBudget) {
  const ArchParams arch = knc_scenario(KncScenario::kA);
  const Goal goal{0.40};
  const SearchResult result = customize_greedy(arch, goal);
  EXPECT_LE(result.metrics.area_overhead, goal.max_area_overhead);
  EXPECT_LE(result.cost.area_overhead, goal.max_area_overhead + 1e-9);
  // The search must have moved beyond the plain mesh.
  EXPECT_FALSE(result.params.row_skips.empty() &&
               result.params.col_skips.empty());
  EXPECT_GE(result.history.size(), 2u);
}

TEST(Greedy, ImprovesOnMeshLexicographically) {
  const ArchParams arch = knc_scenario(KncScenario::kA);
  const SearchResult result = customize_greedy(arch, Goal{0.40});
  const CandidateMetrics mesh = screen_candidate(arch, topo::ShgParams{});
  EXPECT_GT(result.metrics.throughput_bound, mesh.throughput_bound);
  EXPECT_LT(result.metrics.avg_hops, mesh.avg_hops);
}

TEST(Greedy, TighterBudgetGivesSparserTopology) {
  const ArchParams arch = knc_scenario(KncScenario::kA);
  const SearchResult tight = customize_greedy(arch, Goal{0.15});
  const SearchResult loose = customize_greedy(arch, Goal{0.40});
  EXPECT_LE(tight.metrics.area_overhead, 0.15);
  const std::size_t tight_links =
      tight.params.row_skips.size() + tight.params.col_skips.size();
  const std::size_t loose_links =
      loose.params.row_skips.size() + loose.params.col_skips.size();
  EXPECT_LE(tight_links, loose_links);
  EXPECT_LE(tight.metrics.throughput_bound,
            loose.metrics.throughput_bound + 1e-12);
}

TEST(Greedy, StartNoteRendersActualSkipSets) {
  // The seed left literal "{}" placeholders in the start note. For the
  // (always-empty) mesh start the fixed rendering is indistinguishable
  // from the broken literal, so pin the shared formatting with non-empty
  // sets first — this is the assertion that fails if the fix regresses to
  // a hardcoded string.
  EXPECT_EQ(fmt_skip_sets(topo::ShgParams{{2, 5}, {3}}), "SR={2, 5} SC={3}");
  EXPECT_EQ(fmt_skip_sets(topo::ShgParams{}), "SR={} SC={}");

  const ArchParams arch = knc_scenario(KncScenario::kA);
  const SearchResult result = customize_greedy(arch, Goal{0.40});
  ASSERT_FALSE(result.history.empty());
  EXPECT_EQ(result.history.front().note, "start: mesh (SR={} SC={})");
  EXPECT_TRUE(result.history.front().params.row_skips.empty());
  EXPECT_TRUE(result.history.front().params.col_skips.empty());
  // Accept notes flow through the same helper.
  if (result.history.size() > 1) {
    EXPECT_EQ(result.history[1].note.rfind(
                  "accepted " + fmt_skip_sets(result.history[1].params), 0),
              0u);
  }
}

CandidateMetrics make_candidate(double area_overhead, double throughput) {
  CandidateMetrics m;
  m.area_overhead = area_overhead;
  m.avg_hops = 5.0;
  m.diameter = 10.0;
  m.throughput_bound = throughput;
  return m;
}

TEST(GreedyScore, FreeImprovementNeverLosesToPaidCandidate) {
  // Regression for the 1e-9 clamp: a free candidate with a tiny gain used
  // to score gain / 1e-9, yet for gains below ~extra_area * score_paid /
  // 1e9 the clamp flipped and ranked the paid candidate above the free one
  // — the ordering depended on an arbitrary constant. Candidate A is a
  // free improvement (no extra area, gain 5e-10), candidate B pays 1% area
  // for a gain of 0.8. Under the clamp A scored 0.5 and B scored 80, so B
  // won; the tiered rule takes the budget-free improvement first.
  const CandidateMetrics parent = make_candidate(0.20, 1.0);
  const std::vector<CandidateMetrics> candidates = {
      make_candidate(0.20, 1.0 + 5e-10),  // A: free, tiny gain
      make_candidate(0.21, 1.8),          // B: paid, large gain
  };
  const double clamp_score_a =
      (candidates[0].throughput_bound - parent.throughput_bound) / 1e-9;
  const double clamp_score_b =
      (candidates[1].throughput_bound - parent.throughput_bound) /
      (candidates[1].area_overhead - parent.area_overhead);
  ASSERT_LT(clamp_score_a, clamp_score_b);  // the clamp mis-ranked A below B
  EXPECT_EQ(select_greedy_candidate(parent, candidates, Goal{0.40}), 0u);
}

TEST(GreedyScore, FreeTierRanksByGainWithDeterministicTies) {
  const CandidateMetrics parent = make_candidate(0.20, 1.0);
  // Two free candidates: the larger gain wins regardless of order.
  EXPECT_EQ(select_greedy_candidate(
                parent,
                {make_candidate(0.20, 1.001), make_candidate(0.19, 1.002)},
                Goal{0.40}),
            1u);
  // Equal gains: the lower area overhead wins.
  EXPECT_EQ(select_greedy_candidate(
                parent,
                {make_candidate(0.20, 1.001), make_candidate(0.19, 1.001)},
                Goal{0.40}),
            1u);
  // Fully tied: the earliest enumeration index wins.
  EXPECT_EQ(select_greedy_candidate(
                parent,
                {make_candidate(0.20, 1.001), make_candidate(0.20, 1.001)},
                Goal{0.40}),
            0u);
}

TEST(GreedyScore, PaidTierStillRanksByGainPerArea) {
  const CandidateMetrics parent = make_candidate(0.20, 1.0);
  // B has the larger absolute gain but a worse gain-per-area ratio.
  EXPECT_EQ(select_greedy_candidate(
                parent,
                {make_candidate(0.22, 1.4), make_candidate(0.30, 1.8)},
                Goal{0.40}),
            0u);
  // Over-budget and non-improving candidates are rejected outright.
  EXPECT_EQ(select_greedy_candidate(
                parent,
                {make_candidate(0.45, 2.0), make_candidate(0.25, 0.9),
                 make_candidate(0.20, 1.0)},
                Goal{0.40}),
            kNoCandidate);
}

TEST(Greedy, HistoryIsMonotone) {
  const ArchParams arch = knc_scenario(KncScenario::kA);
  const SearchResult result = customize_greedy(arch, Goal{0.40});
  for (std::size_t i = 1; i < result.history.size(); ++i) {
    EXPECT_GT(result.history[i].metrics.throughput_bound,
              result.history[i - 1].metrics.throughput_bound);
    EXPECT_GE(result.history[i].metrics.area_overhead,
              result.history[i - 1].metrics.area_overhead);
  }
}

TEST(Exhaustive, MatchesOrBeatsGreedyOnSmallSpace) {
  // Restrict both searches to the same candidate space on scenario a.
  ArchParams arch = knc_scenario(KncScenario::kA);
  const Goal goal{0.30};
  const SearchResult exhaustive =
      customize_exhaustive(arch, goal, {2, 3, 4}, {2, 3, 4});
  EXPECT_LE(exhaustive.metrics.area_overhead, goal.max_area_overhead);
  // Exhaustive over the full subset lattice can only be at least as good as
  // any greedy path through it.
  const SearchResult greedy = customize_greedy(arch, goal);
  if (greedy.params.row_skips.size() <= 3 &&
      greedy.params.col_skips.size() <= 3) {
    EXPECT_GE(exhaustive.metrics.throughput_bound,
              greedy.metrics.throughput_bound * 0.8);
  }
}

TEST(Exhaustive, RejectsHugeSpaces) {
  const ArchParams arch = knc_scenario(KncScenario::kA);
  const std::vector<int> too_many = {2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12};
  EXPECT_THROW(
      customize_exhaustive(arch, Goal{0.4}, too_many, too_many), Error);
}

TEST(Pareto, DominanceRules) {
  const MetricPoint a{"a", 0.1, 1.0, 10.0, 0.5};
  const MetricPoint b{"b", 0.2, 2.0, 20.0, 0.4};  // worse everywhere
  const MetricPoint c{"c", 0.1, 1.0, 10.0, 0.5};  // equal to a
  const MetricPoint d{"d", 0.05, 3.0, 10.0, 0.5};  // trade-off vs a
  EXPECT_TRUE(dominates(a, b));
  EXPECT_FALSE(dominates(b, a));
  EXPECT_FALSE(dominates(a, c));  // equal points do not dominate
  EXPECT_FALSE(dominates(a, d));
  EXPECT_FALSE(dominates(d, a));
}

TEST(Pareto, FrontExtraction) {
  const std::vector<MetricPoint> points = {
      {"cheap-slow", 0.05, 0.5, 100.0, 0.05},
      {"expensive-fast", 0.60, 20.0, 10.0, 0.9},
      {"dominated", 0.60, 21.0, 15.0, 0.8},
      {"balanced", 0.30, 5.0, 30.0, 0.5},
  };
  const auto front = pareto_front(points);
  ASSERT_EQ(front.size(), 3u);
  EXPECT_EQ(front[0], 0u);
  EXPECT_EQ(front[1], 1u);
  EXPECT_EQ(front[2], 3u);
}

TEST(Pareto, AllEqualAllOnFront) {
  const std::vector<MetricPoint> points(3, MetricPoint{"x", 0.1, 1, 10, 0.5});
  EXPECT_EQ(pareto_front(points).size(), 3u);
}

}  // namespace
}  // namespace shg::customize
