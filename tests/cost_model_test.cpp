// Tests for the five-step cost model (Section IV-B): invariants, formula
// cross-checks and the qualitative orderings the paper's design principles
// predict.
#include <gtest/gtest.h>

#include "shg/model/cost_model.hpp"
#include "shg/phys/incremental_route.hpp"
#include "shg/tech/presets.hpp"
#include "shg/topo/generators.hpp"

namespace shg::model {
namespace {

using tech::ArchParams;
using tech::KncScenario;
using tech::knc_scenario;

TEST(CostModel, RejectsMismatchedGrid) {
  const ArchParams arch = knc_scenario(KncScenario::kA);  // 8x8
  EXPECT_THROW(evaluate_cost(arch, topo::make_mesh(4, 4)), Error);
}

TEST(CostModel, BasicInvariants) {
  const ArchParams arch = knc_scenario(KncScenario::kA);
  const CostReport report = evaluate_cost(arch, topo::make_mesh(8, 8));
  EXPECT_GT(report.router_area_ge, 0.0);
  EXPECT_NEAR(report.tile_area_ge,
              arch.endpoint_area_ge + report.router_area_ge, 1e-6);
  EXPECT_GT(report.tile_w_mm, 0.0);
  EXPECT_GT(report.tile_h_mm, 0.0);
  EXPECT_NEAR(report.noc_area_mm2,
              report.total_area_mm2 - report.base_area_mm2, 1e-9);
  EXPECT_GT(report.area_overhead, 0.0);
  EXPECT_LT(report.area_overhead, 1.0);
  EXPECT_NEAR(report.noc_power_w,
              report.total_power_w - report.base_power_w, 1e-9);
  EXPECT_NEAR(report.noc_power_w,
              report.router_power_w + report.wire_power_w, 1e-9);
  EXPECT_EQ(report.links.size(),
            static_cast<std::size_t>(topo::make_mesh(8, 8).graph().num_edges()));
}

TEST(CostModel, BaseAreaIndependentOfTopology) {
  const ArchParams arch = knc_scenario(KncScenario::kA);
  const CostReport mesh = evaluate_cost(arch, topo::make_mesh(8, 8));
  const CostReport fb =
      evaluate_cost(arch, topo::make_flattened_butterfly(8, 8));
  EXPECT_NEAR(mesh.base_area_mm2, fb.base_area_mm2, 1e-9);
  EXPECT_NEAR(mesh.base_area_mm2,
              arch.tech.ge_to_mm2(64 * arch.endpoint_area_ge), 1e-9);
}

TEST(CostModel, TileAspectRatioRespected) {
  ArchParams arch = knc_scenario(KncScenario::kA);
  arch.tile_aspect_ratio = 2.0;  // height : width
  const CostReport report = evaluate_cost(arch, topo::make_mesh(8, 8));
  EXPECT_NEAR(report.tile_h_mm / report.tile_w_mm, 2.0, 1e-9);
}

TEST(CostModel, MinimumLinkLatencyIsOneCycle) {
  const ArchParams arch = knc_scenario(KncScenario::kA);
  const CostReport report = evaluate_cost(arch, topo::make_mesh(8, 8));
  for (const LinkCost& link : report.links) {
    EXPECT_GE(link.latency_cycles, 1);
    EXPECT_GE(static_cast<double>(link.latency_cycles),
              link.latency_cycles_exact - 1e-9);
  }
}

TEST(CostModel, MeshLinkLatencyMatchesTilePitch) {
  const ArchParams arch = knc_scenario(KncScenario::kA);
  const CostReport report = evaluate_cost(arch, topo::make_mesh(8, 8));
  // A 35 MGE tile is ~2.68 mm wide; a neighbor link spans one tile pitch,
  // well within one 1.2 GHz cycle at 150 ps/mm.
  for (const LinkCost& link : report.links) {
    EXPECT_NEAR(link.length_mm, report.tile_w_mm, 0.2);
    EXPECT_EQ(link.latency_cycles, 1);
  }
}

TEST(CostModel, LongLinksAreSlower) {
  const ArchParams arch = knc_scenario(KncScenario::kA);
  const auto topo = topo::make_flattened_butterfly(8, 8);
  const CostReport report = evaluate_cost(arch, topo);
  double max_latency = 0.0;
  for (const LinkCost& link : report.links) {
    max_latency = std::max(max_latency, link.latency_cycles_exact);
  }
  // A 7-tile link (~19 mm) takes multiple cycles at 1.2 GHz / 150 ps/mm.
  EXPECT_GT(max_latency, 2.0);
}

TEST(CostModel, DesignPrincipleCostOrdering) {
  // Principle #1/#2: higher radix and longer links => more area and power.
  const ArchParams arch = knc_scenario(KncScenario::kA);
  const CostReport ring = evaluate_cost(arch, topo::make_ring(8, 8));
  const CostReport mesh = evaluate_cost(arch, topo::make_mesh(8, 8));
  const CostReport shg =
      evaluate_cost(arch, topo::make_sparse_hamming(8, 8, {4}, {2, 5}));
  const CostReport fb =
      evaluate_cost(arch, topo::make_flattened_butterfly(8, 8));
  EXPECT_LT(ring.area_overhead, mesh.area_overhead + 1e-12);
  EXPECT_LT(mesh.area_overhead, shg.area_overhead);
  EXPECT_LT(shg.area_overhead, fb.area_overhead);
  EXPECT_LT(mesh.noc_power_w, fb.noc_power_w);
}

TEST(CostModel, ShgCostGrowsMonotonicallyWithSkips) {
  const ArchParams arch = knc_scenario(KncScenario::kA);
  double prev_overhead = -1.0;
  for (const auto& skips : {std::set<int>{}, {4}, {2, 4}, {2, 4, 6}}) {
    const CostReport report =
        evaluate_cost(arch, topo::make_sparse_hamming(8, 8, skips, skips));
    EXPECT_GT(report.area_overhead, prev_overhead);
    prev_overhead = report.area_overhead;
  }
}

TEST(CostModel, SlimNocPaysForNonUniformDensity) {
  // SlimNoC has a similar bisection-class connectivity to the flattened
  // butterfly's rows but concentrates wires (ULD violation): its area
  // overhead must be substantial, and well above the mesh.
  const ArchParams arch = knc_scenario(KncScenario::kC);  // 8x16
  const CostReport slim = evaluate_cost(arch, topo::make_slim_noc(8, 16));
  const CostReport mesh = evaluate_cost(arch, topo::make_mesh(8, 16));
  EXPECT_GT(slim.area_overhead, 2.0 * mesh.area_overhead);
}

TEST(CostModel, CollisionsAreRare) {
  const ArchParams arch = knc_scenario(KncScenario::kA);
  const CostReport report =
      evaluate_cost(arch, topo::make_flattened_butterfly(8, 8));
  EXPECT_LT(static_cast<double>(report.collision_cells),
            0.05 * static_cast<double>(report.h_cells + report.v_cells));
}

TEST(CostModel, LinkLatenciesVectorMatches) {
  const ArchParams arch = knc_scenario(KncScenario::kA);
  const CostReport report = evaluate_cost(arch, topo::make_torus(8, 8));
  const auto latencies = report.link_latencies();
  ASSERT_EQ(latencies.size(), report.links.size());
  for (std::size_t i = 0; i < latencies.size(); ++i) {
    EXPECT_EQ(latencies[i], report.links[i].latency_cycles);
  }
}

TEST(ScreeningCost, LoadsOverloadMatchesTopologyOverload) {
  // The radix + precomputed-loads entry must reproduce the topology entry
  // bit for bit — it runs the same step 1/3/4 arithmetic, fed by loads the
  // incremental router guarantees are bit-identical to global_route_loads.
  // kA is the 8x8 grid; kC (8x16 = 128 tiles = 2 * 8^2) admits a SlimNoC,
  // whose diagonal links exercise both load profiles at once.
  struct Case {
    tech::ArchParams arch;
    topo::Topology topo;
  };
  const Case cases[] = {
      {tech::knc_scenario(tech::KncScenario::kA),
       topo::make_sparse_hamming(8, 8, {3, 6}, {4})},
      {tech::knc_scenario(tech::KncScenario::kA),
       topo::make_sparse_hamming(8, 8, {}, {})},
      {tech::knc_scenario(tech::KncScenario::kC),
       topo::make_slim_noc(8, 16)},
  };
  for (const auto& [arch, topo] : cases) {
    const ScreeningCost from_topo = evaluate_screening_cost(arch, topo);
    const phys::GlobalRoutingResult loads = phys::global_route_loads(topo);
    const ScreeningCost from_loads =
        evaluate_screening_cost(arch, topo.radix(), loads);
    EXPECT_EQ(from_topo.total_area_mm2, from_loads.total_area_mm2);
    EXPECT_EQ(from_topo.base_area_mm2, from_loads.base_area_mm2);
    EXPECT_EQ(from_topo.noc_area_mm2, from_loads.noc_area_mm2);
    EXPECT_EQ(from_topo.area_overhead, from_loads.area_overhead);

    // A tile-geometry cache warmed by one entry must not change the bits
    // of the other.
    TileGeometryCache cache;
    const ScreeningCost cached1 =
        evaluate_screening_cost(arch, topo.radix(), loads, &cache);
    const ScreeningCost cached2 =
        evaluate_screening_cost(arch, topo.radix(), loads, &cache);
    EXPECT_EQ(cached1.area_overhead, from_topo.area_overhead);
    EXPECT_EQ(cached2.area_overhead, from_topo.area_overhead);
  }
}

TEST(ScreeningCost, LoadsOverloadRejectsMismatchedProfiles) {
  tech::ArchParams arch = tech::knc_scenario(tech::KncScenario::kA);
  const auto topo = topo::make_mesh(arch.rows - 1, arch.cols);
  const phys::GlobalRoutingResult loads = phys::global_route_loads(topo);
  EXPECT_THROW(evaluate_screening_cost(arch, topo.radix(), loads), Error);
}

}  // namespace
}  // namespace shg::model
