// Route-table correctness: the precomputed table must agree with the live
// routing function on every reachable (node, in_port, in_vc, dest) state of
// every topology family, and the simulator must produce bit-identical
// results with the table on or off.
#include <gtest/gtest.h>

#include "shg/sim/route_table.hpp"
#include "shg/sim/simulator.hpp"
#include "shg/topo/generators.hpp"

namespace shg::sim {
namespace {

constexpr int kVcs = 4;

/// Exhaustive element-wise comparison of table lookups against live route()
/// calls, mirroring the lookup index logic independently of verify_against.
void expect_table_matches_live(const topo::Topology& topo,
                               const RoutingFunction& routing, int num_vcs) {
  const RouteTable table(topo, routing, num_vcs);
  EXPECT_EQ(table.num_vcs(), num_vcs);
  EXPECT_EQ(table.routing_name(), routing.name());
  long long states_checked = 0;
  for (int node = 0; node < topo.num_tiles(); ++node) {
    const int degree = topo.graph().degree(node);
    for (int slot = 0; slot < 1 + degree * num_vcs; ++slot) {
      const int in_port = slot == 0 ? -1 : (slot - 1) / num_vcs;
      const int in_vc = slot == 0 ? -1 : (slot - 1) % num_vcs;
      for (int dest = 0; dest < topo.num_tiles(); ++dest) {
        if (dest == node) continue;
        std::vector<RouteCandidate> expected;
        try {
          expected = routing.route(node, in_port, in_vc, dest);
        } catch (const Error&) {
          // State unreachable under the routing function's invariants: the
          // table must have stored an empty row.
          EXPECT_TRUE(table.lookup(node, in_port, in_vc, dest).empty())
              << topo.name() << " node " << node << " in_port " << in_port
              << " in_vc " << in_vc << " dest " << dest;
          continue;
        }
        const auto actual = table.lookup(node, in_port, in_vc, dest);
        ASSERT_EQ(actual.size(), expected.size())
            << topo.name() << " node " << node << " in_port " << in_port
            << " in_vc " << in_vc << " dest " << dest;
        for (std::size_t i = 0; i < expected.size(); ++i) {
          EXPECT_EQ(actual[i].out_port, expected[i].out_port);
          EXPECT_EQ(actual[i].vc_begin, expected[i].vc_begin);
          EXPECT_EQ(actual[i].vc_end, expected[i].vc_end);
        }
        ++states_checked;
      }
    }
  }
  EXPECT_GT(states_checked, 0);
  // The built-in equivalence checker must agree with the manual sweep.
  EXPECT_NO_THROW(table.verify_against(routing));
}

TEST(RouteTable, MatchesLiveRoutingOnMesh) {
  const auto topo = topo::make_mesh(4, 5);
  const auto routing = make_xy_hamming_routing(topo, kVcs);
  expect_table_matches_live(topo, *routing, kVcs);
}

TEST(RouteTable, MatchesLiveRoutingOnTorus) {
  const auto topo = topo::make_torus(4, 4);
  const auto routing = make_xy_hamming_routing(topo, kVcs);
  expect_table_matches_live(topo, *routing, kVcs);
}

TEST(RouteTable, MatchesLiveRoutingOnShg) {
  const auto topo = topo::make_sparse_hamming(5, 5, {2, 3}, {2, 4});
  const auto routing = make_xy_hamming_routing(topo, kVcs);
  expect_table_matches_live(topo, *routing, kVcs);
}

TEST(RouteTable, MatchesLiveRoutingOnSlimNoc) {
  const auto topo = topo::make_slim_noc(5, 10);
  const auto routing = make_table_escape_routing(topo, kVcs);
  expect_table_matches_live(topo, *routing, kVcs);
}

TEST(RouteTable, MatchesLiveRoutingOnRing) {
  const auto topo = topo::make_ring(4, 4);
  const auto routing = make_ring_routing(topo, 2);
  expect_table_matches_live(topo, *routing, 2);
}

TEST(RouteTable, VerifyAgainstRejectsDifferentRouting) {
  // A table built for a 4x4 mesh's XY routing must fail verification
  // against the escape-table routing of the same topology (different
  // candidate sets for most states).
  const auto topo = topo::make_mesh(4, 4);
  const auto xy = make_xy_hamming_routing(topo, kVcs);
  const auto escape = make_table_escape_routing(topo, kVcs);
  const RouteTable table(topo, *xy, kVcs);
  EXPECT_THROW(table.verify_against(*escape), Error);
}

TEST(RouteTable, RejectsVcMismatchInRouter) {
  const auto topo = topo::make_mesh(3, 3);
  const auto routing = make_xy_hamming_routing(topo, 2);
  const RouteTable table(topo, *routing, 2);
  SimConfig config;
  config.num_vcs = 4;  // != table's 2
  EXPECT_THROW(Router(0, 2, 1, config, routing.get(), &table), Error);
}

TEST(RouteTable, SimulatorRejectsSharedTableForDifferentTopology) {
  const auto built_for = topo::make_mesh(3, 3);
  const auto other = topo::make_mesh(4, 4);
  const auto routing = make_default_routing(built_for, kVcs);
  const auto table =
      std::make_shared<const RouteTable>(built_for, *routing, kVcs);
  EXPECT_TRUE(table->matches(built_for));
  EXPECT_FALSE(table->matches(other));
  SimConfig config;
  config.num_vcs = kVcs;
  const auto pattern = make_uniform(other.num_tiles());
  const std::vector<int> latencies(
      static_cast<std::size_t>(other.graph().num_edges()), 1);
  EXPECT_THROW(
      Simulator(other, latencies, config, *pattern, 1, nullptr, table),
      Error);
}

std::vector<int> unit_latencies(const topo::Topology& topo) {
  return std::vector<int>(static_cast<std::size_t>(topo.graph().num_edges()),
                          1);
}

/// The acceptance bar of the perf overhaul: latency distribution,
/// throughput and every other statistic must be identical with the route
/// table on or off.
void expect_bit_identical_sim(const topo::Topology& topo) {
  SimConfig config;
  config.num_vcs = kVcs;
  config.injection_rate = 0.08;
  config.warmup_cycles = 300;
  config.measure_cycles = 900;
  const auto pattern = make_uniform(topo.num_tiles());

  config.use_route_table = false;
  const SimResult live =
      Simulator(topo, unit_latencies(topo), config, *pattern, 1).run();
  config.use_route_table = true;
  config.verify_route_table = true;
  const SimResult tabled =
      Simulator(topo, unit_latencies(topo), config, *pattern, 1).run();

  EXPECT_EQ(live.offered_rate, tabled.offered_rate);
  EXPECT_EQ(live.accepted_rate, tabled.accepted_rate);
  EXPECT_EQ(live.avg_packet_latency, tabled.avg_packet_latency);
  EXPECT_EQ(live.max_packet_latency, tabled.max_packet_latency);
  EXPECT_EQ(live.p50_packet_latency, tabled.p50_packet_latency);
  EXPECT_EQ(live.p95_packet_latency, tabled.p95_packet_latency);
  EXPECT_EQ(live.p99_packet_latency, tabled.p99_packet_latency);
  EXPECT_EQ(live.avg_hops, tabled.avg_hops);
  EXPECT_EQ(live.fairness, tabled.fairness);
  EXPECT_EQ(live.measured_packets, tabled.measured_packets);
  EXPECT_EQ(live.drained, tabled.drained);
  EXPECT_EQ(live.cycles_run, tabled.cycles_run);
}

TEST(RouteTable, SimResultsBitIdenticalOnShg) {
  expect_bit_identical_sim(topo::make_sparse_hamming(6, 6, {3}, {2}));
}

TEST(RouteTable, SimResultsBitIdenticalOnTorus) {
  expect_bit_identical_sim(topo::make_torus(4, 4));
}

TEST(RouteTable, SimResultsBitIdenticalOnSlimNoc) {
  expect_bit_identical_sim(topo::make_slim_noc(5, 10));
}

TEST(RouteTable, DedupCollapsesVcInsensitiveRows) {
  // XY-Hamming routing on an SHG picks the same continuation regardless of
  // the arrival VC, so rows differing only in in_vc must collapse behind
  // the row-index indirection: far fewer unique rows than logical rows,
  // and a smaller byte footprint than the one-range-per-row layout.
  const auto topo = topo::make_sparse_hamming(5, 5, {2, 3}, {2, 4});
  const auto routing = make_xy_hamming_routing(topo, kVcs);
  const RouteTable table(topo, *routing, kVcs);
  EXPECT_GT(table.num_rows(), table.num_unique_rows());
  // At kVcs = 4 the vc-insensitive rows alone bound unique rows well below
  // half of the logical count.
  EXPECT_LT(table.num_unique_rows(), table.num_rows() / 2);
  EXPECT_LT(table.num_candidates(), table.num_candidates_undeduped());
  EXPECT_LT(table.memory_bytes(), table.undeduped_memory_bytes());
}

TEST(RouteTable, DedupPreservesEveryLookup) {
  // Dedup is content-addressed, so it must be invisible through lookup():
  // already covered family by family above, re-asserted here on the escape
  // routing whose rows are the least regular.
  const auto topo = topo::make_slim_noc(5, 10);
  const auto routing = make_table_escape_routing(topo, kVcs);
  const RouteTable table(topo, *routing, kVcs);
  EXPECT_NO_THROW(table.verify_against(*routing));
  EXPECT_GE(table.num_candidates_undeduped(), table.num_candidates());
}

TEST(RouteTable, SharedTableMatchesPrivateTable) {
  const auto topo = topo::make_mesh(4, 4);
  const auto routing = make_default_routing(topo, kVcs);
  const auto shared =
      std::make_shared<const RouteTable>(topo, *routing, kVcs);
  SimConfig config;
  config.num_vcs = kVcs;
  config.injection_rate = 0.05;
  config.warmup_cycles = 200;
  config.measure_cycles = 600;
  const auto pattern = make_uniform(topo.num_tiles());
  const SimResult with_private =
      Simulator(topo, unit_latencies(topo), config, *pattern, 1).run();
  const SimResult with_shared = Simulator(topo, unit_latencies(topo), config,
                                          *pattern, 1, nullptr, shared)
                                    .run();
  EXPECT_EQ(with_private.avg_packet_latency, with_shared.avg_packet_latency);
  EXPECT_EQ(with_private.accepted_rate, with_shared.accepted_rate);
  EXPECT_EQ(with_private.measured_packets, with_shared.measured_packets);
}

}  // namespace
}  // namespace shg::sim
