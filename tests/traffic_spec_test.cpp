// Tests for the declarative workload subsystem: TrafficSpec parsing and
// round-trips, pattern destination histograms, injection processes, and
// the Bernoulli process's bit-identity with the pre-refactor simulator
// (golden SimResults captured from the build before InjectionProcess was
// split out of the injection loop).
#include <gtest/gtest.h>

#include <map>

#include "shg/sim/simulator.hpp"
#include "shg/sim/traffic_spec.hpp"
#include "shg/topo/generators.hpp"

namespace shg::sim {
namespace {

// --- Spec parsing / round-trips -------------------------------------------

TEST(TrafficSpec, CanonicalRoundTrips) {
  for (const char* text :
       {"uniform", "transpose", "bit-complement", "bit-reverse", "shuffle",
        "tornado", "neighbor", "hotspot:0,7:0.2", "hotspot:5:0.5",
        "randperm:0", "randperm:12345",
        "uniform/onoff:0.05,0.2", "hotspot:0,7:0.2/onoff:0.01,0.1",
        "randperm:7/onoff:0.05,0.2"}) {
    EXPECT_EQ(TrafficSpec::parse(text).canonical(), text) << text;
  }
}

TEST(TrafficSpec, PatternNameMatchesSpecKey) {
  for (const char* key :
       {"uniform", "transpose", "bit-complement", "bit-reverse", "shuffle",
        "tornado", "neighbor"}) {
    const auto pattern = TrafficSpec::parse(key).make_pattern(4, 4);
    EXPECT_EQ(pattern->name(), key);
  }
  const auto hotspot =
      TrafficSpec::parse("hotspot:0,7:0.2").make_pattern(4, 4);
  EXPECT_EQ(hotspot->name(), "hotspot");
}

TEST(TrafficSpec, ProcessSelection) {
  EXPECT_EQ(TrafficSpec::parse("uniform").make_process(0.1, 16)->name(),
            "bernoulli");
  const TrafficSpec bursty = TrafficSpec::parse("uniform/onoff:0.05,0.2");
  EXPECT_EQ(bursty.on_off_alpha, 0.05);
  EXPECT_EQ(bursty.on_off_beta, 0.2);
  EXPECT_EQ(bursty.make_process(0.1, 16)->name(), "onoff");
}

TEST(TrafficSpec, UnknownOrMalformedSpecsThrow) {
  EXPECT_THROW(TrafficSpec::parse(""), Error);
  EXPECT_THROW(TrafficSpec::parse("warp"), Error);            // unknown pattern
  EXPECT_THROW(TrafficSpec::parse("uniform:3"), Error);       // stray args
  EXPECT_THROW(TrafficSpec::parse("hotspot"), Error);         // missing args
  EXPECT_THROW(TrafficSpec::parse("hotspot:x:0.2"), Error);   // bad tile
  EXPECT_THROW(TrafficSpec::parse("hotspot:0:1.5"), Error);   // bad fraction
  EXPECT_THROW(TrafficSpec::parse("randperm"), Error);        // missing seed
  EXPECT_THROW(TrafficSpec::parse("randperm:x"), Error);      // bad seed
  EXPECT_THROW(TrafficSpec::parse("randperm:-1"), Error);     // negative seed
  EXPECT_THROW(TrafficSpec::parse("uniform/poisson"), Error); // bad process
  EXPECT_THROW(TrafficSpec::parse("uniform/onoff:0.5"), Error);
  EXPECT_THROW(TrafficSpec::parse("uniform/onoff:0,0.5"), Error);
  EXPECT_THROW(TrafficSpec::parse("a/b/c"), Error);
}

TEST(TrafficSpec, PatternApplicabilityChecked) {
  // Applicability errors surface at make_pattern, where the grid is known.
  EXPECT_THROW(TrafficSpec::parse("transpose").make_pattern(2, 3), Error);
  EXPECT_THROW(TrafficSpec::parse("shuffle").make_pattern(3, 3), Error);
  EXPECT_THROW(TrafficSpec::parse("hotspot:99:0.2").make_pattern(4, 4),
               Error);
}

TEST(TrafficSpec, ApplicabilityErrorNamesSpecAndGrid) {
  // The rethrow must carry the canonical spec string and the terminal grid
  // the pattern was being instantiated on — the two facts a sweep over
  // many topologies needs to locate the offending cell.
  try {
    TrafficSpec::parse("transpose/onoff:0.05,0.2").make_pattern(2, 3);
    FAIL() << "expected an applicability error";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("transpose/onoff:0.05,0.2"), std::string::npos)
        << what;
    EXPECT_NE(what.find("2x3"), std::string::npos) << what;
  }
  // Concentration changes the grid the error reports: 4x4 routers at c=2
  // form a 4x8 terminal grid.
  try {
    TrafficSpec::parse("transpose").make_pattern(4, 4, 2);
    FAIL() << "expected an applicability error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("4x8"), std::string::npos)
        << e.what();
  }
}

TEST(TrafficSpec, RandPermIsASeedStablePermutation) {
  const auto pattern = TrafficSpec::parse("randperm:7").make_pattern(4, 4);
  EXPECT_EQ(pattern->name(), "randperm");
  Prng rng(1);
  // It is a permutation of the 16 tiles...
  std::vector<bool> hit(16, false);
  for (int src = 0; src < 16; ++src) {
    const int dest = pattern->dest(src, rng);
    ASSERT_GE(dest, 0);
    ASSERT_LT(dest, 16);
    EXPECT_FALSE(hit[static_cast<std::size_t>(dest)]);
    hit[static_cast<std::size_t>(dest)] = true;
  }
  // ...stable across instantiations of the same seed...
  const auto again = TrafficSpec::parse("randperm:7").make_pattern(4, 4);
  for (int src = 0; src < 16; ++src) {
    EXPECT_EQ(pattern->dest(src, rng), again->dest(src, rng));
  }
  // ...and a different seed draws a different permutation.
  const auto other = TrafficSpec::parse("randperm:8").make_pattern(4, 4);
  bool differs = false;
  for (int src = 0; src < 16; ++src) {
    if (pattern->dest(src, rng) != other->dest(src, rng)) differs = true;
  }
  EXPECT_TRUE(differs);
}

// --- Concentrated pattern instantiation -----------------------------------

TEST(TrafficSpec, ConcentrationSizesPatternsOnTerminalGrid) {
  // 4x4 routers, c=4 -> 2x2 sub-grids -> an 8x8 terminal grid with 64
  // terminals. Uniform must draw over all of them.
  const auto pattern = TrafficSpec::parse("uniform").make_pattern(4, 4, 4);
  Prng rng(5);
  std::vector<bool> hit(64, false);
  for (int i = 0; i < 20000; ++i) {
    const int dest = pattern->dest(0, rng);
    ASSERT_GE(dest, 0);
    ASSERT_LT(dest, 64);
    hit[static_cast<std::size_t>(dest)] = true;
  }
  // Every terminal except the source is reachable.
  for (int t = 1; t < 64; ++t) EXPECT_TRUE(hit[static_cast<std::size_t>(t)]);
  EXPECT_FALSE(hit[0]);
}

TEST(TrafficSpec, ConcentrationAppliesToGridShapedPatterns) {
  // c=4 makes a 4x4 router grid an 8x8 terminal grid: transpose (square
  // only) applies, and tornado rotates on terminal coordinates.
  const auto transpose =
      TrafficSpec::parse("transpose").make_pattern(4, 4, 4);
  Prng rng(1);
  // Terminal (row 1, col 3) -> (row 3, col 1) on the 8x8 terminal grid.
  EXPECT_EQ(transpose->dest(1 * 8 + 3, rng), 3 * 8 + 1);
  const auto tornado = TrafficSpec::parse("tornado").make_pattern(4, 4, 4);
  // Tornado shifts by ceil(k/2) - 1 per dimension: 3 on the 8x8 terminal
  // grid (vs 1 on the bare 4x4 router grid).
  EXPECT_EQ(tornado->dest(0, rng), 3 * 8 + 3);
  // c=2 -> 1x2 sub-grids -> a rectangular 4x8 terminal grid: transpose is
  // not applicable there.
  EXPECT_THROW(TrafficSpec::parse("transpose").make_pattern(4, 4, 2), Error);
}

TEST(TrafficSpec, ConcentrationHotspotIdsAreTerminalIds) {
  // Terminal 63 exists on the 8x8 terminal grid but not on the 16-tile
  // grid: valid at c=4, out of range at c=1.
  const auto pattern =
      TrafficSpec::parse("hotspot:63:0.9").make_pattern(4, 4, 4);
  Prng rng(3);
  int hot = 0;
  for (int i = 0; i < 1000; ++i) {
    if (pattern->dest(0, rng) == 63) ++hot;
  }
  EXPECT_GT(hot, 800);
  EXPECT_THROW(TrafficSpec::parse("hotspot:63:0.9").make_pattern(4, 4),
               Error);
}

// --- Destination histograms -----------------------------------------------

TEST(TrafficSpec, HotspotHistogramMatchesFraction) {
  const auto pattern =
      TrafficSpec::parse("hotspot:0,7:0.5").make_pattern(4, 4);
  Prng rng(123);
  std::map<int, int> histogram;
  const int draws = 40000;
  for (int i = 0; i < draws; ++i) ++histogram[pattern->dest(3, rng)];
  // Hotspot tiles receive fraction/2 each plus the uniform share
  // 0.5 * 1/15; everything else only the uniform share.
  const double hot = static_cast<double>(histogram[0] + histogram[7]) / draws;
  EXPECT_NEAR(hot, 0.5 + 2.0 * 0.5 / 15.0, 0.02);
  EXPECT_NEAR(static_cast<double>(histogram[12]) / draws, 0.5 / 15.0, 0.01);
  EXPECT_EQ(histogram.count(3), 0u);  // uniform never returns src
}

TEST(TrafficSpec, TornadoIsTheHalfwayPermutation) {
  const auto pattern = TrafficSpec::parse("tornado").make_pattern(4, 4);
  Prng rng(1);
  for (int src = 0; src < 16; ++src) {
    const int r = src / 4;
    const int c = src % 4;
    EXPECT_EQ(pattern->dest(src, rng), ((r + 1) % 4) * 4 + (c + 1) % 4);
  }
}

TEST(TrafficSpec, ShuffleRotatesIndexBits) {
  const auto pattern = TrafficSpec::parse("shuffle").make_pattern(4, 4);
  Prng rng(1);
  for (int src = 0; src < 16; ++src) {
    EXPECT_EQ(pattern->dest(src, rng), ((src << 1) | (src >> 3)) & 15);
  }
}

// --- Injection processes ---------------------------------------------------

TEST(InjectionProcess, BernoulliMatchesRawChanceDraws) {
  // The Bernoulli process must consume exactly one chance(prob) draw per
  // call — the pre-refactor injection loop's stream.
  const auto process = make_bernoulli(0.3);
  Prng a(99);
  Prng b(99);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(process->inject(i % 16, a), b.chance(0.3));
  }
}

TEST(InjectionProcess, OnOffPreservesMeanRate) {
  const double packet_prob = 0.02;
  const auto process = make_on_off(packet_prob, 0.05, 0.15, 1);
  Prng rng(7);
  long long injected = 0;
  const int cycles = 400000;
  for (int i = 0; i < cycles; ++i) {
    if (process->inject(0, rng)) ++injected;
  }
  EXPECT_NEAR(static_cast<double>(injected) / cycles, packet_prob,
              0.1 * packet_prob);
}

TEST(InjectionProcess, OnOffIsBurstier) {
  // Same mean rate, but the on-off process clusters injections: the
  // variance of per-window injection counts must exceed Bernoulli's.
  const double packet_prob = 0.02;
  const auto bernoulli = make_bernoulli(packet_prob);
  const auto onoff = make_on_off(packet_prob, 0.02, 0.08, 1);
  const int windows = 2000;
  const int window = 100;
  auto window_variance = [&](InjectionProcess& process) {
    Prng rng(11);
    process.reset();
    std::vector<double> counts;
    for (int w = 0; w < windows; ++w) {
      int n = 0;
      for (int i = 0; i < window; ++i) {
        if (process.inject(0, rng)) ++n;
      }
      counts.push_back(static_cast<double>(n));
    }
    double mean = 0.0;
    for (double c : counts) mean += c;
    mean /= windows;
    double var = 0.0;
    for (double c : counts) var += (c - mean) * (c - mean);
    return var / windows;
  };
  EXPECT_GT(window_variance(*onoff), 2.0 * window_variance(*bernoulli));
}

TEST(InjectionProcess, OnOffRejectsUnreachableRates) {
  // duty cycle alpha/(alpha+beta) = 1/4 -> burst prob would be 4 * 0.5 > 1.
  EXPECT_THROW(make_on_off(0.5, 0.1, 0.3, 4), Error);
  EXPECT_THROW(make_on_off(0.1, 0.0, 0.3, 4), Error);
}

// --- Bit-identity with the pre-refactor simulator --------------------------
//
// Golden values captured from the seed build (before InjectionProcess
// existed): same configs, same seeds. The default Bernoulli path must
// reproduce them exactly, and supplying the process explicitly must
// change nothing.

std::vector<int> unit_latencies(const topo::Topology& topo) {
  return std::vector<int>(static_cast<std::size_t>(topo.graph().num_edges()),
                          1);
}

void expect_result(const SimResult& r, double accepted, double avg,
                   double max, double p50, double p95, double p99,
                   double hops, double fairness, long long packets,
                   long long cycles) {
  EXPECT_EQ(r.accepted_rate, accepted);
  EXPECT_EQ(r.avg_packet_latency, avg);
  EXPECT_EQ(r.max_packet_latency, max);
  EXPECT_EQ(r.p50_packet_latency, p50);
  EXPECT_EQ(r.p95_packet_latency, p95);
  EXPECT_EQ(r.p99_packet_latency, p99);
  EXPECT_EQ(r.avg_hops, hops);
  EXPECT_EQ(r.fairness, fairness);
  EXPECT_EQ(r.measured_packets, packets);
  EXPECT_TRUE(r.drained);
  EXPECT_EQ(r.cycles_run, cycles);
}

TEST(BernoulliBitIdentity, MeshUniform) {
  const auto mesh = topo::make_mesh(4, 4);
  const auto pattern = make_uniform(16);
  SimConfig config;
  config.num_vcs = 2;
  config.buffer_depth_flits = 4;
  config.warmup_cycles = 500;
  config.measure_cycles = 1500;
  config.injection_rate = 0.10;
  const SimResult implicit =
      Simulator(mesh, unit_latencies(mesh), config, *pattern, 1).run();
  expect_result(implicit, 0.093666666666666662, 10.968028419182948, 26.0,
                11.0, 17.0, 21.0, 3.6554174067495557, 1.1499646176130172,
                563, 2008);
  // Explicitly supplying the equivalent Bernoulli process is a no-op.
  const SimResult explicit_process =
      Simulator(mesh, unit_latencies(mesh), config, *pattern, 1, nullptr,
                nullptr, make_bernoulli(0.10 / 4.0))
          .run();
  expect_result(explicit_process, 0.093666666666666662, 10.968028419182948,
                26.0, 11.0, 17.0, 21.0, 3.6554174067495557,
                1.1499646176130172, 563, 2008);
}

TEST(BernoulliBitIdentity, ShgTranspose) {
  const auto shg = topo::make_sparse_hamming(6, 6, {3}, {2});
  const auto pattern = make_transpose(6, 6);
  SimConfig config;
  config.num_vcs = 4;
  config.buffer_depth_flits = 8;
  config.warmup_cycles = 400;
  config.measure_cycles = 1200;
  config.injection_rate = 0.25;
  config.seed = 0xabcdef;
  const SimResult result =
      Simulator(shg, unit_latencies(shg), config, *pattern, 1).run();
  expect_result(result, 0.21824074074074074, 14.731520815632965, 59.0, 13.0,
                26.0, 35.0, 4.0458793542905696, 1.7594658928937081, 2354,
                1612);
}

TEST(BernoulliBitIdentity, TorusHotspotTwoEndpoints) {
  const auto torus = topo::make_torus(4, 4);
  const auto pattern = make_hotspot(16, {0, 7}, 0.2);
  SimConfig config;
  config.num_vcs = 2;
  config.buffer_depth_flits = 4;
  config.warmup_cycles = 300;
  config.measure_cycles = 900;
  config.injection_rate = 0.15;
  config.seed = 42;
  const SimResult result =
      Simulator(torus, unit_latencies(torus), config, *pattern, 2).run();
  expect_result(result, 0.1476736111111111, 11.470149253731343, 38.0, 11.0,
                20.0, 29.0, 3.125, 1.1082813966092768, 1072, 1224);
}

}  // namespace
}  // namespace shg::sim
