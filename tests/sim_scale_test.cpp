// Scale smoke test: a 32x32 mesh run through the SoA engine must finish in
// seconds (CI-friendly) and produce sane statistics. This is the "can we
// even size up" guard — throughput ratios live in bench_sim_scale.
#include <gtest/gtest.h>

#include <vector>

#include "shg/sim/simulator.hpp"
#include "shg/sim/traffic_spec.hpp"
#include "shg/topo/generators.hpp"

namespace shg::sim {
namespace {

std::vector<int> unit_latencies(const topo::Topology& topo) {
  return std::vector<int>(static_cast<std::size_t>(topo.graph().num_edges()),
                          1);
}

TEST(SimScale, Mesh32x32UniformCompletes) {
  const auto topo = topo::make_mesh(32, 32);
  SimConfig config;
  config.num_vcs = 2;
  config.buffer_depth_flits = 4;
  config.injection_rate = 0.02;
  config.warmup_cycles = 500;
  config.measure_cycles = 1500;
  // The route table at 32x32 is large but affordable; live routing is
  // covered by the 64x64 bench tier.
  const auto pattern = TrafficSpec::parse("uniform").make_pattern(32, 32);
  Simulator simulator(topo, unit_latencies(topo), config, *pattern, 1);
  const SimResult result = simulator.run();
  EXPECT_TRUE(result.drained);
  EXPECT_GT(result.measured_packets, 5000);
  EXPECT_GT(result.avg_packet_latency, 0.0);
  EXPECT_GT(result.accepted_rate, 0.015);
  EXPECT_LE(result.accepted_rate, 0.025);
}

TEST(SimScale, Mesh32x32LiveRoutingCompletes) {
  // Live routing (no table) is what makes 64x64+ feasible; smoke it at
  // 32x32 where the reference table would already be ~1 GiB-scale work.
  const auto topo = topo::make_mesh(32, 32);
  SimConfig config;
  config.num_vcs = 2;
  config.buffer_depth_flits = 4;
  config.injection_rate = 0.02;
  config.warmup_cycles = 300;
  config.measure_cycles = 700;
  config.use_route_table = false;
  const auto pattern = TrafficSpec::parse("uniform").make_pattern(32, 32);
  Simulator simulator(topo, unit_latencies(topo), config, *pattern, 1);
  const SimResult result = simulator.run();
  EXPECT_TRUE(result.drained);
  EXPECT_GT(result.measured_packets, 0);
}

TEST(SimScale, ConcentratedMesh16x16x4Completes) {
  // 1024 terminals on a 16x16 router fabric: the concentration path at the
  // same terminal count as the 32x32 mesh.
  const auto topo = topo::make_concentrated_mesh(16, 16, 4);
  SimConfig config;
  config.num_vcs = 2;
  config.buffer_depth_flits = 8;
  config.injection_rate = 0.01;
  config.warmup_cycles = 500;
  config.measure_cycles = 1500;
  const auto pattern = TrafficSpec::parse("uniform").make_pattern(16, 16, 4);
  Simulator simulator(topo, unit_latencies(topo), config, *pattern, 1);
  const SimResult result = simulator.run();
  EXPECT_TRUE(result.drained);
  EXPECT_GT(result.measured_packets, 0);
}

}  // namespace
}  // namespace shg::sim
