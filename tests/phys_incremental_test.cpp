// Randomized differential oracle for incremental global routing
// (phys/incremental_route.hpp): for random topologies and random
// skip-insertion trajectories, a RoutingContext's repaired channel loads
// must be bit-identical to phys::global_route_loads run from scratch on the
// materialized child (default exact mode), and within the documented bound
// in relaxed mode. The suite runs under both CI configurations (Release and
// ASan/UBSan Debug).
#include <gtest/gtest.h>

#include <cstdlib>
#include <limits>
#include <set>
#include <vector>

#include "shg/common/prng.hpp"
#include "shg/phys/global_route.hpp"
#include "shg/phys/incremental_route.hpp"
#include "shg/topo/generators.hpp"

namespace shg::phys {
namespace {

void expect_same_loads(const GlobalRoutingResult& got,
                       const GlobalRoutingResult& want,
                       const std::string& context) {
  EXPECT_EQ(got.h_loads, want.h_loads) << context;
  EXPECT_EQ(got.v_loads, want.v_loads) << context;
}

/// Appends the skip links of (row_skips, col_skips) to a copy of `base`,
/// skipping links the base already has (SlimNoC and torus bases own links
/// of skip shape).
topo::Topology append_skips(const topo::Topology& base,
                            const std::set<int>& row_skips,
                            const std::set<int>& col_skips) {
  topo::Topology child = base;
  topo::for_each_skip_link(
      base.rows(), base.cols(), row_skips, col_skips,
      [&](topo::TileCoord a, topo::TileCoord b) {
        if (!child.graph().has_edge(child.node(a), child.node(b))) {
          child.add_link(a, b);
        }
      });
  return child;
}

std::string fmt_case(int rows, int cols, const std::set<int>& pr,
                     const std::set<int>& pc, const std::set<int>& cr,
                     const std::set<int>& cc) {
  std::string s = std::to_string(rows) + "x" + std::to_string(cols) +
                  " parent SR={";
  for (int x : pr) s += std::to_string(x) + ",";
  s += "} SC={";
  for (int x : pc) s += std::to_string(x) + ",";
  s += "} child SR={";
  for (int x : cr) s += std::to_string(x) + ",";
  s += "} SC={";
  for (int x : cc) s += std::to_string(x) + ",";
  return s + "}";
}

TEST(RoutingContext, ParentLoadsMatchFromScratchRoute) {
  for (const auto& topo :
       {topo::make_mesh(6, 6), topo::make_sparse_hamming(8, 8, {3, 5}, {2}),
        topo::make_torus(5, 7), topo::make_slim_noc(5, 10)}) {
    const RoutingContext ctx(topo);
    expect_same_loads(ctx.loads(), global_route_loads(topo), topo.name());
  }
}

/// The core oracle: random SHG parents, random skip-superset children,
/// repaired via both the generic compare-based path and the skip fast
/// path — every load profile bit-identical to a fresh greedy run.
TEST(RoutingContext, RandomShgTrajectoriesBitIdentical) {
  Prng prng(0x1c0de5u);
  for (int trial = 0; trial < 40; ++trial) {
    const int rows = prng.range(2, 11);
    const int cols = prng.range(2, 11);
    std::set<int> parent_rows, parent_cols;
    for (int x = 2; x < cols; ++x) {
      if (prng.chance(0.35)) parent_rows.insert(x);
    }
    for (int x = 2; x < rows; ++x) {
      if (prng.chance(0.35)) parent_cols.insert(x);
    }
    const topo::Topology parent =
        topo::make_sparse_hamming(rows, cols, parent_rows, parent_cols);
    const RoutingContext ctx(parent);

    std::set<int> child_rows = parent_rows;
    std::set<int> child_cols = parent_cols;
    std::vector<int> new_rows, new_cols;
    for (int x = 2; x < cols; ++x) {
      if (child_rows.count(x) == 0 && prng.chance(0.4)) {
        child_rows.insert(x);
        new_rows.push_back(x);
      }
    }
    for (int x = 2; x < rows; ++x) {
      if (child_cols.count(x) == 0 && prng.chance(0.4)) {
        child_cols.insert(x);
        new_cols.push_back(x);
      }
    }
    const topo::Topology child =
        topo::make_sparse_hamming(rows, cols, child_rows, child_cols);
    const GlobalRoutingResult fresh = global_route_loads(child);
    const std::string ctx_str =
        fmt_case(rows, cols, parent_rows, parent_cols, child_rows,
                 child_cols);
    expect_same_loads(ctx.route_child_loads(child), fresh,
                      "generic: " + ctx_str);
    GlobalRoutingResult fast;
    ctx.route_child_loads(new_rows, new_cols, &fast);
    expect_same_loads(fast, fresh, "fast: " + ctx_str);
  }
}

/// Multi-step insertion trajectories: each accepted step re-keys the
/// context (fresh construction, as the screening engine does) and every
/// intermediate repair must stay exact.
TEST(RoutingContext, MultiStepTrajectoriesStayExact) {
  Prng prng(0xdac23u);
  for (int trial = 0; trial < 6; ++trial) {
    const int rows = prng.range(4, 9);
    const int cols = prng.range(4, 9);
    std::set<int> row_skips, col_skips;
    for (int step = 0; step < 5; ++step) {
      const topo::Topology parent =
          topo::make_sparse_hamming(rows, cols, row_skips, col_skips);
      const RoutingContext ctx(parent);
      std::vector<std::pair<bool, int>> choices;
      for (int x = 2; x < cols; ++x) {
        if (row_skips.count(x) == 0) choices.emplace_back(false, x);
      }
      for (int x = 2; x < rows; ++x) {
        if (col_skips.count(x) == 0) choices.emplace_back(true, x);
      }
      if (choices.empty()) break;
      const auto [is_col, x] = choices[prng.below(choices.size())];
      std::vector<int> new_rows, new_cols;
      if (is_col) {
        col_skips.insert(x);
        new_cols.push_back(x);
      } else {
        row_skips.insert(x);
        new_rows.push_back(x);
      }
      const topo::Topology child =
          topo::make_sparse_hamming(rows, cols, row_skips, col_skips);
      GlobalRoutingResult fast;
      ctx.route_child_loads(new_rows, new_cols, &fast);
      expect_same_loads(fast, global_route_loads(child),
                        "step " + std::to_string(step));
    }
  }
}

TEST(RoutingContext, SlimNocInsertionsUseJointRepair) {
  // Diagonal links couple the channel orientations, so SlimNoC children
  // exercise the joint-replay branch of the generic path.
  const topo::Topology parent = topo::make_slim_noc(5, 10);
  const RoutingContext ctx(parent);
  Prng prng(0x511Du);
  for (int trial = 0; trial < 6; ++trial) {
    std::set<int> row_skips, col_skips;
    for (int x = 2; x < 10; ++x) {
      if (prng.chance(0.3)) row_skips.insert(x);
    }
    for (int x = 2; x < 5; ++x) {
      if (prng.chance(0.3)) col_skips.insert(x);
    }
    const topo::Topology child = append_skips(parent, row_skips, col_skips);
    expect_same_loads(ctx.route_child_loads(child),
                      global_route_loads(child),
                      "slimnoc trial " + std::to_string(trial));
  }
  // The skip fast path requires the orientation split, which diagonals
  // invalidate — it must refuse rather than return non-identical loads.
  GlobalRoutingResult out;
  EXPECT_THROW(ctx.route_child_loads({3}, {}, &out), Error);
}

TEST(RoutingContext, TorusAppendSharesLengthClassWithWraps) {
  // A 6-wide torus owns row links of length 3 (none — wraps are length 5);
  // use an 8-wide torus whose wraps have length 7 and append skip 7 links:
  // the new links extend an existing length class, exercising the
  // parent-first-then-appended replay order of the fast path.
  const topo::Topology parent = topo::make_torus(4, 8);
  const RoutingContext ctx(parent);
  {
    // Appending a brand-new class (skip 3).
    const topo::Topology child = append_skips(parent, {3}, {});
    const GlobalRoutingResult fresh = global_route_loads(child);
    expect_same_loads(ctx.route_child_loads(child), fresh, "torus +3 generic");
    GlobalRoutingResult fast;
    ctx.route_child_loads({3}, {}, &fast);
    expect_same_loads(fast, fresh, "torus +3 fast");
  }
  {
    // Appending into the wraps' class (skip 7): for_each_skip_link yields
    // exactly the (r,0)-(r,7) links, which the torus already has — the
    // appended set is empty and the child equals the parent.
    const topo::Topology child = append_skips(parent, {7}, {});
    EXPECT_EQ(child.graph().num_edges(), parent.graph().num_edges());
    expect_same_loads(ctx.route_child_loads(child), ctx.loads(),
                      "torus +7 no-op");
  }
}

TEST(RoutingContext, ArbitraryChildrenFallBackToFullReroute) {
  // The generic path promises bit-identical loads for ANY child over the
  // grid — a child missing parent links simply diverges at its largest
  // class and re-routes from there (possibly everything).
  const topo::Topology parent =
      topo::make_sparse_hamming(6, 6, {2, 4}, {3});
  const RoutingContext ctx(parent);
  for (const auto& child :
       {topo::make_sparse_hamming(6, 6, {3}, {}),
        topo::make_sparse_hamming(6, 6, {}, {}),
        topo::make_sparse_hamming(6, 6, {5}, {2, 4})}) {
    expect_same_loads(ctx.route_child_loads(child),
                      global_route_loads(child), child.name());
  }
}

TEST(RoutingContext, DegenerateSingleRowAndColumnFabrics) {
  {
    const topo::Topology parent = topo::make_sparse_hamming(1, 9, {}, {});
    const RoutingContext ctx(parent);
    const topo::Topology child =
        topo::make_sparse_hamming(1, 9, {2, 5, 8}, {});
    const GlobalRoutingResult fresh = global_route_loads(child);
    GlobalRoutingResult fast;
    ctx.route_child_loads({2, 5, 8}, {}, &fast);
    expect_same_loads(fast, fresh, "1xN");
    expect_same_loads(ctx.route_child_loads(child), fresh, "1xN generic");
  }
  {
    const topo::Topology parent = topo::make_sparse_hamming(9, 1, {}, {});
    const RoutingContext ctx(parent);
    const topo::Topology child =
        topo::make_sparse_hamming(9, 1, {}, {2, 7});
    const GlobalRoutingResult fresh = global_route_loads(child);
    GlobalRoutingResult fast;
    ctx.route_child_loads({}, {2, 7}, &fast);
    expect_same_loads(fast, fresh, "Nx1");
  }
}

TEST(RoutingContext, EmptyDeltaReturnsParentLoads) {
  const topo::Topology parent = topo::make_sparse_hamming(7, 7, {3}, {4});
  const RoutingContext ctx(parent);
  GlobalRoutingResult out;
  ctx.route_child_loads({}, {}, &out);
  expect_same_loads(out, ctx.loads(), "empty delta");
  expect_same_loads(ctx.route_child_loads(parent), ctx.loads(),
                    "identical child");
}

/// Relaxed mode: per-channel peak error bounded by the number of child
/// links in the divergent suffix, and total load mass conserved (channel
/// choice never changes a span's extent, so relaxed and exact runs commit
/// exactly the same mass).
TEST(RoutingContext, RelaxedModeObeysDocumentedBound) {
  Prng prng(0x4e1a7u);
  for (int trial = 0; trial < 12; ++trial) {
    const int rows = prng.range(4, 10);
    const int cols = prng.range(4, 10);
    std::set<int> parent_rows, parent_cols;
    for (int x = 2; x < cols; ++x) {
      if (prng.chance(0.3)) parent_rows.insert(x);
    }
    for (int x = 2; x < rows; ++x) {
      if (prng.chance(0.3)) parent_cols.insert(x);
    }
    const topo::Topology parent =
        topo::make_sparse_hamming(rows, cols, parent_rows, parent_cols);
    const RoutingContext relaxed_ctx(parent, RoutingOptions{/*relaxed=*/true});

    std::set<int> child_rows = parent_rows;
    std::set<int> child_cols = parent_cols;
    std::vector<int> new_rows, new_cols;
    int max_new = 0;
    for (int x = 2; x < cols; ++x) {
      if (child_rows.count(x) == 0 && prng.chance(0.4)) {
        child_rows.insert(x);
        new_rows.push_back(x);
        max_new = std::max(max_new, x);
      }
    }
    for (int x = 2; x < rows; ++x) {
      if (child_cols.count(x) == 0 && prng.chance(0.4)) {
        child_cols.insert(x);
        new_cols.push_back(x);
        max_new = std::max(max_new, x);
      }
    }
    if (new_rows.empty() && new_cols.empty()) continue;
    const topo::Topology child =
        topo::make_sparse_hamming(rows, cols, child_rows, child_cols);
    const GlobalRoutingResult exact = global_route_loads(child);
    GlobalRoutingResult relaxed;
    relaxed_ctx.route_child_loads(new_rows, new_cols, &relaxed);

    // D = child links with grid length in [2, L], L the largest new class.
    int suffix_links = 0;
    for (graph::EdgeId e = 0; e < child.graph().num_edges(); ++e) {
      const int len = child.link_grid_length(e);
      if (len >= 2 && len <= max_new) ++suffix_links;
    }
    long long exact_mass = 0;
    long long relaxed_mass = 0;
    for (int i = 0; i <= rows; ++i) {
      EXPECT_LE(std::abs(relaxed.max_h_load(i) - exact.max_h_load(i)),
                suffix_links)
          << "h channel " << i;
      for (int p = 0; p < cols; ++p) {
        exact_mass += exact.h_loads[static_cast<std::size_t>(i)]
                                   [static_cast<std::size_t>(p)];
        relaxed_mass += relaxed.h_loads[static_cast<std::size_t>(i)]
                                       [static_cast<std::size_t>(p)];
      }
    }
    for (int j = 0; j <= cols; ++j) {
      EXPECT_LE(std::abs(relaxed.max_v_load(j) - exact.max_v_load(j)),
                suffix_links)
          << "v channel " << j;
      for (int p = 0; p < rows; ++p) {
        exact_mass += exact.v_loads[static_cast<std::size_t>(j)]
                                   [static_cast<std::size_t>(p)];
        relaxed_mass += relaxed.v_loads[static_cast<std::size_t>(j)]
                                       [static_cast<std::size_t>(p)];
      }
    }
    EXPECT_EQ(relaxed_mass, exact_mass) << "span mass is decision-invariant";
  }
}

TEST(RoutingContext, DiagonalInterleavingWithinClassIsDivergence) {
  // Regression: per-kind subsequence comparison alone misses a class whose
  // link *multiset* matches per kind but whose interleaving differs — a
  // diagonal's channel choice depends on the loads committed by same-class
  // aligned links routed before it, so reordering changes its decision.
  // The parent routes [h-link, diagonal], the child [diagonal, h-link];
  // every per-kind subsequence is equal, yet the loads differ, and the
  // repair must detect that and re-route rather than return parent loads.
  topo::Topology parent(topo::Kind::kCustom, "interleave-parent", 4, 4);
  parent.add_link({1, 0}, {1, 3});  // same-row, length 3
  parent.add_link({1, 0}, {2, 2});  // diagonal, length 3
  topo::Topology child(topo::Kind::kCustom, "interleave-child", 4, 4);
  child.add_link({1, 0}, {2, 2});
  child.add_link({1, 0}, {1, 3});

  const RoutingContext ctx(parent);
  expect_same_loads(ctx.route_child_loads(child), global_route_loads(child),
                    "reordered diagonal class");
  // Sanity: the orders genuinely route differently, so the case is not
  // vacuous.
  const GlobalRoutingResult parent_loads = global_route_loads(parent);
  const GlobalRoutingResult child_loads = global_route_loads(child);
  EXPECT_NE(parent_loads.h_loads, child_loads.h_loads);
}

/// The generic added-links overload: arbitrary links (diagonals included)
/// appended to arbitrary-family parents, bit-identical to a fresh greedy
/// run on the materialized child — the repair the family-generic screening
/// stack (customize::TopologyScreeningContext) drives.
TEST(RoutingContext, AddedLinksFastPathMatchesFreshRoute) {
  Prng prng(0xadd11u);
  const auto parents = {topo::make_mesh(6, 8),
                        topo::make_sparse_hamming(8, 8, {3, 5}, {2}),
                        topo::make_torus(5, 7), topo::make_slim_noc(5, 10)};
  for (const auto& parent : parents) {
    const RoutingContext ctx(parent);
    for (int trial = 0; trial < 6; ++trial) {
      // Random extra links absent from the parent, in random append order;
      // roughly a third end up diagonal, exercising the joint replay.
      topo::Topology child = parent;
      std::vector<GridLink> links;
      for (int k = 0; k < 1 + trial; ++k) {
        for (int attempt = 0; attempt < 50; ++attempt) {
          const int u = static_cast<int>(
              prng.below(static_cast<std::uint64_t>(parent.num_tiles())));
          const int v = static_cast<int>(
              prng.below(static_cast<std::uint64_t>(parent.num_tiles())));
          if (u == v || child.graph().has_edge(u, v)) continue;
          child.add_link(u, v);
          links.push_back(GridLink{child.coord(u), child.coord(v)});
          break;
        }
      }
      if (links.empty()) continue;
      GlobalRoutingResult repaired;
      ctx.route_child_loads(links, &repaired);
      const GlobalRoutingResult fresh = global_route_loads(child);
      expect_same_loads(repaired, fresh,
                        parent.name() + " trial " + std::to_string(trial));
    }
  }
}

TEST(RoutingContext, AddedLinksEmptyOrUnitDeltaReturnsParentLoads) {
  const topo::Topology parent = topo::make_sparse_hamming(6, 6, {3}, {});
  const RoutingContext ctx(parent);
  GlobalRoutingResult out;
  ctx.route_child_loads(std::vector<GridLink>{}, &out);
  expect_same_loads(out, ctx.loads(), "empty delta");
  // Unit links occupy no channel capacity: adding one leaves every load
  // profile bit-identical to the parent's (6x6 mesh+skip lacks no unit
  // link, so use a parent with a gap).
  topo::Topology gappy(topo::Kind::kCustom, "gappy", 3, 3);
  for (int r = 0; r < 3; ++r) {
    for (int c = 0; c < 3; ++c) {
      if (r + 1 < 3) gappy.add_link({r, c}, {r + 1, c});
      if (c + 1 < 3 && r != 1) gappy.add_link({r, c}, {r, c + 1});
    }
  }
  const RoutingContext gap_ctx(gappy);
  GlobalRoutingResult unit_out;
  gap_ctx.route_child_loads(std::vector<GridLink>{GridLink{{1, 0}, {1, 1}}},
                            &unit_out);
  expect_same_loads(unit_out, gap_ctx.loads(), "unit-link delta");
}

TEST(RoutingContext, AddedLinksRelaxedConservesMass) {
  // Relaxed added-links repair: same spans are committed (channel choice
  // never changes a span's extent), so total load mass must equal the
  // exact run's even though the per-channel placement may differ.
  const topo::Topology parent = topo::make_torus(5, 6);
  const RoutingContext relaxed_ctx(parent, RoutingOptions{/*relaxed=*/true});
  topo::Topology child = parent;
  std::vector<GridLink> links;
  for (const auto& [a, b] : std::initializer_list<std::pair<topo::TileCoord,
                                                            topo::TileCoord>>{
           {{0, 1}, {3, 4}}, {{1, 0}, {1, 3}}, {{0, 2}, {3, 2}}}) {
    child.add_link(a, b);
    links.push_back(GridLink{a, b});
  }
  GlobalRoutingResult relaxed;
  relaxed_ctx.route_child_loads(links, &relaxed);
  const GlobalRoutingResult exact = global_route_loads(child);
  auto mass = [](const GlobalRoutingResult& r) {
    long long total = 0;
    for (const auto& ch : r.h_loads) {
      for (int v : ch) total += v;
    }
    for (const auto& ch : r.v_loads) {
      for (int v : ch) total += v;
    }
    return total;
  };
  EXPECT_EQ(mass(relaxed), mass(exact));
}

TEST(RoutingContext, AddedLinksRejectsOutOfGridEndpoints) {
  const topo::Topology parent = topo::make_mesh(4, 4);
  const RoutingContext ctx(parent);
  GlobalRoutingResult out;
  EXPECT_THROW(ctx.route_child_loads(
                   std::vector<GridLink>{GridLink{{0, 0}, {0, 4}}}, &out),
               Error);
  EXPECT_THROW(ctx.route_child_loads(
                   std::vector<GridLink>{GridLink{{2, 2}, {2, 2}}}, &out),
               Error);
}

TEST(RoutingContext, FastPathRequiresAscendingSkips) {
  // Regression: the suffix replay walks the new skips with one descending
  // cursor; an unsorted list would silently drop whole link classes, so
  // it must throw instead.
  const topo::Topology parent = topo::make_sparse_hamming(8, 8, {}, {});
  const RoutingContext ctx(parent);
  GlobalRoutingResult out;
  EXPECT_THROW(ctx.route_child_loads({5, 3}, {}, &out), Error);
  EXPECT_THROW(ctx.route_child_loads({}, {4, 4}, &out), Error);
  ctx.route_child_loads({3, 5}, {}, &out);  // ascending is fine
  expect_same_loads(out,
                    global_route_loads(
                        topo::make_sparse_hamming(8, 8, {3, 5}, {})),
                    "ascending fast path");
}

TEST(RoutingContext, RejectsMismatchedGridsAndBadSkips) {
  const topo::Topology parent = topo::make_sparse_hamming(6, 6, {}, {});
  const RoutingContext ctx(parent);
  EXPECT_THROW(ctx.route_child_loads(topo::make_mesh(6, 7)), Error);
  GlobalRoutingResult out;
  EXPECT_THROW(ctx.route_child_loads({1}, {}, &out), Error);
  EXPECT_THROW(ctx.route_child_loads({6}, {}, &out), Error);
  EXPECT_THROW(ctx.route_child_loads({}, {0}, &out), Error);
}

}  // namespace
}  // namespace shg::phys
