// Concurrency contract of the sharded session tiers and the serving layer
// (Session::ConcurrencyMode::kSharded): concurrent readers/writers are
// safe (run this suite under ThreadSanitizer — the CI tsan job does),
// no cache store is lost, and every concurrently-served response's
// "result" is byte-identical to its solo twin. Also pins the canonical
// on-disk serialization across shard counts.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <fstream>
#include <iterator>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "shg/customize/cache.hpp"
#include "shg/customize/search.hpp"
#include "shg/customize/session.hpp"
#include "shg/serve/json.hpp"
#include "shg/serve/service.hpp"
#include "shg/tech/presets.hpp"
#include "shg/topo/topology.hpp"

namespace shg {
namespace {

using customize::CandidateCache;
using customize::CandidateMetrics;
using customize::Fingerprint;

std::string temp_path(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

/// Synthetic keys spread over all shard prefixes (the shard selector uses
/// hi >> 48, so vary the top bits too).
Fingerprint key_of(std::uint64_t i) {
  return Fingerprint{i * 0x9e3779b97f4a7c15ULL + (i << 48), i ^ 0xabcdef};
}

CandidateMetrics metrics_of(std::uint64_t i) {
  CandidateMetrics m;
  m.area_overhead = 0.01 * static_cast<double>(i % 40);
  m.avg_hops = 2.0 + 0.001 * static_cast<double>(i);
  m.diameter = static_cast<double>(3 + i % 5);
  m.throughput_bound = 1.0 / (1.0 + static_cast<double>(i));
  return m;
}

// --- Sharded cache semantics ----------------------------------------------

TEST(ShardedCache, LookupsAgreeAcrossShardCounts) {
  CandidateCache one(1024, 1);
  CandidateCache four(1024, 4);
  CandidateCache seven(1024, 7);
  for (std::uint64_t i = 0; i < 300; ++i) {
    one.insert(key_of(i), metrics_of(i));
    four.insert(key_of(i), metrics_of(i));
    seven.insert(key_of(i), metrics_of(i));
  }
  EXPECT_EQ(one.size(), 300u);
  EXPECT_EQ(four.size(), 300u);
  EXPECT_EQ(seven.size(), 300u);
  for (std::uint64_t i = 0; i < 300; ++i) {
    const auto a = one.lookup(key_of(i));
    const auto b = four.lookup(key_of(i));
    const auto c = seven.lookup(key_of(i));
    ASSERT_TRUE(a && b && c);
    EXPECT_EQ(*a, metrics_of(i));
    EXPECT_EQ(*b, *a);
    EXPECT_EQ(*c, *a);
  }
}

TEST(ShardedCache, LockingForcedOnWhenSharded) {
  EXPECT_FALSE(CandidateCache(16, 1).locking());
  EXPECT_TRUE(CandidateCache(16, 1, true).locking());
  EXPECT_TRUE(CandidateCache(16, 4).locking());
}

TEST(ShardedCache, PerShardEvictionKeepsHotShardsIndependent) {
  // 4 shards x 4 entries each; flooding one shard must not evict others.
  CandidateCache cache(16, 4);
  const Fingerprint other{std::uint64_t{1} << 48, 1};  // shard 1
  cache.insert(other, metrics_of(1));
  for (std::uint64_t i = 0; i < 64; ++i) {
    cache.insert(Fingerprint{i << 52, i}, metrics_of(i));  // all shard 0
  }
  EXPECT_TRUE(cache.lookup(other).has_value());
  EXPECT_GT(cache.stats().evictions, 0u);
}

TEST(ShardedCache, CanonicalFileBytesAcrossShardCountsAndOrders) {
  // Same contents inserted in different orders at different shard counts
  // must serialize to identical bytes (sharded saves sort by fingerprint).
  CandidateCache two(1024, 2);
  CandidateCache five(1024, 5);
  for (std::uint64_t i = 0; i < 200; ++i) {
    two.insert(key_of(i), metrics_of(i));
  }
  for (std::uint64_t i = 200; i-- > 0;) {  // reverse insertion order
    five.insert(key_of(i), metrics_of(i));
  }
  const std::string path_two = temp_path("canon_two.cache");
  const std::string path_five = temp_path("canon_five.cache");
  EXPECT_EQ(two.save_file(path_two), 200u);
  EXPECT_EQ(five.save_file(path_five), 200u);
  EXPECT_EQ(read_file(path_two), read_file(path_five));
  EXPECT_FALSE(read_file(path_two).empty());
}

TEST(ShardedCache, FilesLoadAcrossShardCounts) {
  // Legacy single-shard files load into sharded caches and vice versa.
  CandidateCache legacy(1024, 1);
  for (std::uint64_t i = 0; i < 150; ++i) {
    legacy.insert(key_of(i), metrics_of(i));
  }
  const std::string legacy_path = temp_path("cross_legacy.cache");
  EXPECT_EQ(legacy.save_file(legacy_path), 150u);

  CandidateCache sharded(1024, 8);
  EXPECT_EQ(sharded.load_file(legacy_path), 150u);
  for (std::uint64_t i = 0; i < 150; ++i) {
    const auto hit = sharded.lookup(key_of(i));
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(*hit, metrics_of(i));
  }

  const std::string sharded_path = temp_path("cross_sharded.cache");
  EXPECT_EQ(sharded.save_file(sharded_path), 150u);
  CandidateCache back(1024, 1);
  EXPECT_EQ(back.load_file(sharded_path), 150u);
  for (std::uint64_t i = 0; i < 150; ++i) {
    EXPECT_TRUE(back.lookup(key_of(i)).has_value());
  }
}

// --- Concurrent readers/writers -------------------------------------------

TEST(ShardedCache, ConcurrentStoresAreNeverLost) {
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 2000;
  constexpr std::uint64_t kTotal = kThreads * kPerThread;
  constexpr std::size_t kShards = 16;
  CandidateCache cache(kTotal, kShards);
  // Keys spread round-robin over the shard selector (hi >> 48) so every
  // shard receives exactly total/kShards entries — at per-shard capacity,
  // meaning any lost or double store would show up as an eviction.
  const auto spread_key = [](std::uint64_t id) {
    return Fingerprint{((id % kShards) << 48) | id, ~id};
  };
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, &spread_key, t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        const std::uint64_t id =
            static_cast<std::uint64_t>(t) * kPerThread + i;
        cache.insert(spread_key(id), metrics_of(id));
        // Interleave reads of other threads' ranges.
        cache.lookup(spread_key((id * 7) % kTotal));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(cache.size(), kTotal);
  for (std::uint64_t id = 0; id < kTotal; ++id) {
    const auto hit = cache.lookup(spread_key(id));
    ASSERT_TRUE(hit.has_value()) << "lost store " << id;
    EXPECT_EQ(*hit, metrics_of(id));
  }
  const customize::CacheStats stats = cache.stats();
  EXPECT_EQ(stats.insertions, kTotal);
  EXPECT_EQ(stats.evictions, 0u);
}

TEST(ShardedSession, ConcurrentArtifactTierIsSafe) {
  customize::SessionOptions options;
  options.concurrency = customize::ConcurrencyMode::kSharded;
  customize::Session session(options);
  constexpr int kThreads = 6;
  std::vector<std::thread> threads;
  std::atomic<int> mismatches{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&session, &mismatches, t] {
      for (std::uint64_t i = 0; i < 200; ++i) {
        const Fingerprint key = key_of(i % 16);
        auto value = std::make_shared<const std::uint64_t>(i % 16);
        session.store_artifact(key, value);
        const auto found = session.find_artifact(key);
        if (found != nullptr) {
          // Keys map 1:1 to payload values, so any hit must agree.
          const auto* payload =
              static_cast<const std::uint64_t*>(found.get());
          if (*payload != i % 16) mismatches.fetch_add(1);
        }
        (void)t;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_GT(session.artifact_hits(), 0u);
}

TEST(ShardedSession, ScreenBatchMatchesSingleThreadSession) {
  const tech::ArchParams arch = tech::knc_scenario(tech::KncScenario::kA);
  std::vector<topo::ShgParams> batch;
  for (int skip = 2; skip <= 7; ++skip) {
    batch.push_back(topo::ShgParams{{skip}, {}});
    batch.push_back(topo::ShgParams{{}, {skip}});
  }
  customize::Session single;  // kSingleThread defaults
  customize::SessionOptions sharded_options;
  sharded_options.concurrency = customize::ConcurrencyMode::kSharded;
  customize::Session sharded(sharded_options);

  customize::ScreenBatchStats single_stats;
  customize::ScreenBatchStats sharded_stats;
  const auto a = customize::screen_batch_cached(arch, batch, single, true, {},
                                               &single_stats);
  const auto b = customize::screen_batch_cached(arch, batch, sharded, true,
                                               {}, &sharded_stats);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i], b[i]) << "batch index " << i;
  }
  EXPECT_EQ(single_stats.misses, batch.size());
  EXPECT_EQ(sharded_stats.misses, batch.size());
  ASSERT_EQ(sharded_stats.hit.size(), batch.size());
  EXPECT_FALSE(sharded_stats.hit[0]);
}

// --- Concurrent service: solo-twin byte-identity ---------------------------

TEST(ConcurrentService, MixedRequestsMatchSoloTwinsByteForByte) {
  // The request mix: screens, two experiment campaigns, two searches. The
  // experiments keep the smoke cycle counts so the suite stays fast enough
  // for TSan.
  std::vector<std::string> lines;
  for (int skip = 2; skip <= 6; ++skip) {
    lines.push_back("{\"op\":\"screen\",\"id\":\"s" + std::to_string(skip) +
                    "\",\"scenario\":\"a\",\"row_skips\":[" +
                    std::to_string(skip) + "]}");
    lines.push_back("{\"op\":\"screen\",\"id\":\"t" + std::to_string(skip) +
                    "\",\"scenario\":\"a\",\"col_skips\":[" +
                    std::to_string(skip) + "]}");
  }
  lines.push_back(
      "{\"op\":\"experiment\",\"id\":\"e1\",\"grid\":\"6x6\","
      "\"traffic\":[\"uniform\"],\"rates\":[0.05],\"seeds\":1,"
      "\"smoke\":true}");
  lines.push_back(
      "{\"op\":\"experiment\",\"id\":\"e2\",\"grid\":\"6x6\","
      "\"traffic\":[\"transpose\"],\"rates\":[0.08],\"seeds\":1,"
      "\"smoke\":true}");
  lines.push_back(
      "{\"op\":\"customize\",\"id\":\"c1\",\"scenario\":\"a\","
      "\"max_area_overhead\":0.3}");
  lines.push_back("{\"op\":\"customize\",\"id\":\"c2\",\"scenario\":\"a\"}");

  // Solo twins: each request served alone on its own cold single-thread
  // service — the reference bytes.
  std::vector<serve::Request> requests;
  std::vector<std::string> solo_results;
  for (const std::string& line : lines) {
    serve::ServiceOptions solo_options;
    solo_options.session.concurrency =
        customize::ConcurrencyMode::kSingleThread;
    serve::Service solo(solo_options);
    requests.push_back(solo.parse_request(line));
    ASSERT_TRUE(requests.back().valid) << requests.back().error;
    const serve::Response response = solo.execute(requests.back());
    ASSERT_TRUE(response.ok) << response.error;
    solo_results.push_back(response.result_json);
  }

  // Concurrent pass: one sharded service, every thread issues the full
  // mix in a different rotation — maximal interleaving over one session.
  serve::Service shared;
  constexpr int kThreads = 4;
  std::atomic<int> mismatches{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (std::size_t i = 0; i < requests.size(); ++i) {
        const std::size_t pick =
            (i + static_cast<std::size_t>(t) * 3) % requests.size();
        const serve::Response response = shared.execute(requests[pick]);
        if (!response.ok) failures.fetch_add(1);
        if (response.result_json != solo_results[pick]) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(mismatches.load(), 0);

  // No lost stores: a serial re-pass over every request must be fully
  // warm — zero candidate-tier misses on screens, zero simulated cells on
  // experiments (each key was stored by at least one concurrent twin).
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const serve::Response warm = shared.execute(requests[i]);
    ASSERT_TRUE(warm.ok) << warm.error;
    EXPECT_EQ(warm.result_json, solo_results[i]) << lines[i];
    if (requests[i].op == serve::Op::kScreen) {
      EXPECT_EQ(warm.op_misses, 0u) << "lost candidate store: " << lines[i];
    }
    if (requests[i].op == serve::Op::kExperiment) {
      EXPECT_EQ(warm.op_simulated, 0u) << "lost sim store: " << lines[i];
    }
  }
}

TEST(ConcurrentService, CoalescedBatchesMatchSoloUnderConcurrency) {
  // Two threads fire coalesced screen batches over overlapping skip grids
  // while a third screens the same keys solo; everyone must agree with the
  // cold direct screen.
  const tech::ArchParams arch = tech::knc_scenario(tech::KncScenario::kA);
  std::vector<std::string> lines;
  for (int skip = 2; skip <= 7; ++skip) {
    lines.push_back("{\"op\":\"screen\",\"id\":" + std::to_string(skip) +
                    ",\"scenario\":\"a\",\"row_skips\":[" +
                    std::to_string(skip) + "]}");
  }
  serve::Service shared;
  std::vector<serve::Request> requests;
  for (const std::string& line : lines) {
    requests.push_back(shared.parse_request(line));
    ASSERT_TRUE(requests.back().valid);
  }
  std::vector<std::string> reference;
  for (int skip = 2; skip <= 7; ++skip) {
    const CandidateMetrics direct =
        customize::screen_candidate(arch, topo::ShgParams{{skip}, {}});
    reference.push_back(serve::json_double(direct.throughput_bound));
  }

  std::atomic<int> mismatches{0};
  auto batcher = [&] {
    for (int round = 0; round < 3; ++round) {
      const std::vector<serve::Response> responses =
          shared.execute_screen_batch(requests);
      for (std::size_t i = 0; i < responses.size(); ++i) {
        if (!responses[i].ok ||
            responses[i].result_json.find(reference[i]) ==
                std::string::npos) {
          mismatches.fetch_add(1);
        }
      }
    }
  };
  auto soloist = [&] {
    for (int round = 0; round < 3; ++round) {
      for (std::size_t i = 0; i < requests.size(); ++i) {
        const serve::Response response = shared.execute(requests[i]);
        if (!response.ok || response.result_json.find(reference[i]) ==
                                std::string::npos) {
          mismatches.fetch_add(1);
        }
      }
    }
  };
  std::thread a(batcher), b(batcher), c(soloist);
  a.join();
  b.join();
  c.join();
  EXPECT_EQ(mismatches.load(), 0);
}

}  // namespace
}  // namespace shg
