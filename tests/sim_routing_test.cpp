// Routing-function correctness: delivery, progress, and deadlock freedom
// via exact-reachability channel dependency graphs (Dally & Seitz).
#include <gtest/gtest.h>

#include <map>
#include <queue>
#include <set>

#include "shg/graph/cdg.hpp"
#include "shg/sim/routing.hpp"
#include "shg/topo/generators.hpp"

namespace shg::sim {
namespace {

/// Directed channel id for the hop u -> v.
int channel_id(const topo::Topology& topo, int u, int v) {
  for (const auto& n : topo.graph().neighbors(u)) {
    if (n.node == v) {
      const auto& edge = topo.graph().edge(n.edge);
      return 2 * n.edge + (edge.u == u ? 0 : 1);
    }
  }
  ADD_FAILURE() << "not neighbors: " << u << " " << v;
  return -1;
}

int port_of(const topo::Topology& topo, int u, int v) {
  const auto& nbrs = topo.graph().neighbors(u);
  for (std::size_t i = 0; i < nbrs.size(); ++i) {
    if (nbrs[i].node == v) return static_cast<int>(i);
  }
  return -1;
}

/// Builds the *reachable* channel dependency graph of a routing function:
/// states (channel u->v, vc, dest) are expanded exactly as a head flit
/// would experience them, so no spurious dependencies are added. Returns
/// the dependency edges over (channel, vc) vertices, optionally restricted
/// to a VC predicate (e.g. only the escape class).
std::vector<std::pair<int, int>> reachable_cdg(
    const topo::Topology& topo, const RoutingFunction& routing, int num_vcs,
    bool escape_only = false) {
  const int num_channels = 2 * topo.graph().num_edges();
  auto vertex = [num_vcs](int channel, int vc) {
    return channel * num_vcs + vc;
  };
  std::set<std::pair<int, int>> dependencies;

  for (int dest = 0; dest < topo.num_tiles(); ++dest) {
    // State: (node, in_vc, came_from) with came_from == -1 for injection.
    std::set<std::tuple<int, int, int>> visited;
    std::queue<std::tuple<int, int, int>> frontier;
    for (int src = 0; src < topo.num_tiles(); ++src) {
      if (src != dest) frontier.emplace(src, -1, -1);
    }
    while (!frontier.empty()) {
      const auto [node, in_vc, from] = frontier.front();
      frontier.pop();
      if (node == dest) continue;
      if (!visited.emplace(node, in_vc, from).second) continue;
      const int in_port = from < 0 ? -1 : port_of(topo, node, from);
      const auto candidates = routing.route(node, in_port, in_vc, dest);
      EXPECT_FALSE(candidates.empty());
      const int in_channel = from < 0 ? -1 : channel_id(topo, from, node);
      for (const auto& cand : candidates) {
        const int next =
            topo.graph().neighbors(node)[static_cast<std::size_t>(
                cand.out_port)].node;
        const int out_channel = channel_id(topo, node, next);
        for (int ov = cand.vc_begin; ov < cand.vc_end; ++ov) {
          if (in_channel >= 0) {
            if (!escape_only || (in_vc == 0 && ov == 0)) {
              dependencies.emplace(vertex(in_channel, in_vc),
                                   vertex(out_channel, ov));
            }
          }
          frontier.emplace(next, ov, node);
        }
      }
    }
  }
  (void)num_channels;
  return {dependencies.begin(), dependencies.end()};
}

/// Follows the first candidate from src to dest; returns hop count.
int walk(const topo::Topology& topo, const RoutingFunction& routing, int src,
         int dest) {
  int node = src;
  int in_vc = -1;
  int from = -1;
  int hops = 0;
  while (node != dest) {
    const int in_port = from < 0 ? -1 : port_of(topo, node, from);
    const auto candidates = routing.route(node, in_port, in_vc, dest);
    EXPECT_FALSE(candidates.empty());
    if (candidates.empty()) return -1;
    const auto& cand = candidates.front();
    from = node;
    node = topo.graph()
               .neighbors(node)[static_cast<std::size_t>(cand.out_port)]
               .node;
    in_vc = cand.vc_begin;
    if (++hops > topo.num_tiles() * 2) {
      ADD_FAILURE() << "routing loop " << src << " -> " << dest;
      return -1;
    }
  }
  return hops;
}

void expect_delivers_all_pairs(const topo::Topology& topo,
                               const RoutingFunction& routing) {
  for (int s = 0; s < topo.num_tiles(); ++s) {
    for (int d = 0; d < topo.num_tiles(); ++d) {
      if (s == d) continue;
      ASSERT_GE(walk(topo, routing, s, d), 1);
    }
  }
}

constexpr int kVcs = 4;

TEST(XYRouting, DeliversOnMesh) {
  const auto topo = topo::make_mesh(5, 7);
  const auto routing = make_xy_hamming_routing(topo, kVcs);
  expect_delivers_all_pairs(topo, *routing);
}

TEST(XYRouting, MeshHopsAreMinimal) {
  const auto topo = topo::make_mesh(6, 6);
  const auto routing = make_xy_hamming_routing(topo, kVcs);
  for (int s = 0; s < topo.num_tiles(); ++s) {
    for (int d = 0; d < topo.num_tiles(); ++d) {
      if (s == d) continue;
      const auto cs = topo.coord(s);
      const auto cd = topo.coord(d);
      EXPECT_EQ(walk(topo, *routing, s, d),
                std::abs(cs.row - cd.row) + std::abs(cs.col - cd.col));
    }
  }
}

TEST(XYRouting, ShgSkipsShortenPaths) {
  const auto mesh = topo::make_mesh(8, 8);
  const auto shg = topo::make_sparse_hamming(8, 8, {4}, {2, 5});
  const auto mesh_routing = make_xy_hamming_routing(mesh, kVcs);
  const auto shg_routing = make_xy_hamming_routing(shg, kVcs);
  long long mesh_total = 0;
  long long shg_total = 0;
  for (int s = 0; s < 64; ++s) {
    for (int d = 0; d < 64; ++d) {
      if (s == d) continue;
      mesh_total += walk(mesh, *mesh_routing, s, d);
      shg_total += walk(shg, *shg_routing, s, d);
    }
  }
  EXPECT_LT(shg_total, mesh_total * 2 / 3);
}

TEST(XYRouting, CdgAcyclicOnMeshFbShg) {
  for (const auto& topo :
       {topo::make_mesh(4, 4), topo::make_flattened_butterfly(4, 4),
        topo::make_sparse_hamming(5, 5, {2, 3}, {2, 4})}) {
    const auto routing = make_xy_hamming_routing(topo, kVcs);
    const auto edges = reachable_cdg(topo, *routing, kVcs);
    EXPECT_FALSE(graph::has_cycle(2 * topo.graph().num_edges() * kVcs, edges))
        << topo.name();
  }
}

TEST(XYRouting, CdgAcyclicOnTorusAndFoldedTorus) {
  for (const auto& topo :
       {topo::make_torus(4, 4), topo::make_torus(4, 6),
        topo::make_folded_torus(4, 4), topo::make_folded_torus(6, 4)}) {
    const auto routing = make_xy_hamming_routing(topo, kVcs);
    const auto edges = reachable_cdg(topo, *routing, kVcs);
    EXPECT_FALSE(graph::has_cycle(2 * topo.graph().num_edges() * kVcs, edges))
        << topo.name();
  }
}

TEST(XYRouting, DeliversOnTorusFamilies) {
  for (const auto& topo :
       {topo::make_torus(4, 6), topo::make_folded_torus(4, 6)}) {
    const auto routing = make_xy_hamming_routing(topo, kVcs);
    expect_delivers_all_pairs(topo, *routing);
  }
}

TEST(XYRouting, RequiresTwoVcsOnlyForCycles) {
  EXPECT_NO_THROW(make_xy_hamming_routing(topo::make_mesh(4, 4), 1));
  EXPECT_THROW(make_xy_hamming_routing(topo::make_torus(4, 4), 1), Error);
}

TEST(RingRouting, DeliversAndMinimal) {
  const auto topo = topo::make_ring(4, 4);
  const auto routing = make_ring_routing(topo, 2);
  expect_delivers_all_pairs(topo, *routing);
  // The cycle has 16 nodes: no pair is more than 8 hops apart.
  for (int s = 0; s < 16; ++s) {
    for (int d = 0; d < 16; ++d) {
      if (s != d) EXPECT_LE(walk(topo, *routing, s, d), 8);
    }
  }
}

TEST(RingRouting, CdgAcyclic) {
  const auto topo = topo::make_ring(4, 4);
  const auto routing = make_ring_routing(topo, 2);
  const auto edges = reachable_cdg(topo, *routing, 2);
  EXPECT_FALSE(graph::has_cycle(2 * topo.graph().num_edges() * 2, edges));
}

TEST(EcubeRouting, DeliversWithMinimalHops) {
  const auto topo = topo::make_hypercube(4, 8);
  const auto routing = make_ecube_routing(topo, kVcs);
  expect_delivers_all_pairs(topo, *routing);
  // Hop count equals the Hamming distance of the labels; spot-check the
  // diameter: opposite corner labels differ in all 5 bits.
  int max_hops = 0;
  for (int s = 0; s < 32; ++s) {
    for (int d = 0; d < 32; ++d) {
      if (s != d) max_hops = std::max(max_hops, walk(topo, *routing, s, d));
    }
  }
  EXPECT_EQ(max_hops, 5);
}

TEST(EcubeRouting, CdgAcyclic) {
  const auto topo = topo::make_hypercube(4, 4);
  const auto routing = make_ecube_routing(topo, 2);
  const auto edges = reachable_cdg(topo, *routing, 2);
  EXPECT_FALSE(graph::has_cycle(2 * topo.graph().num_edges() * 2, edges));
}

TEST(TableEscapeRouting, DeliversOnSlimNoc) {
  const auto topo = topo::make_slim_noc(5, 10);
  const auto routing = make_table_escape_routing(topo, kVcs);
  expect_delivers_all_pairs(topo, *routing);
}

TEST(TableEscapeRouting, AdaptiveHopsAreMinimal) {
  const auto topo = topo::make_slim_noc(5, 10);
  const auto routing = make_table_escape_routing(topo, kVcs);
  // First candidate is adaptive-minimal; diameter-2 graph: at most 2 hops.
  for (int s = 0; s < 50; ++s) {
    for (int d = 0; d < 50; ++d) {
      if (s != d) EXPECT_LE(walk(topo, *routing, s, d), 2);
    }
  }
}

TEST(TableEscapeRouting, EscapeSubnetworkCdgAcyclic) {
  for (const auto& topo :
       {topo::make_slim_noc(5, 10), topo::make_torus(4, 4),
        topo::make_mesh(4, 4)}) {
    const auto routing = make_table_escape_routing(topo, kVcs);
    const auto edges =
        reachable_cdg(topo, *routing, kVcs, /*escape_only=*/true);
    EXPECT_FALSE(graph::has_cycle(2 * topo.graph().num_edges() * kVcs, edges))
        << topo.name();
  }
}

TEST(TableEscapeRouting, EscapeCandidateAlwaysPresent) {
  const auto topo = topo::make_slim_noc(5, 10);
  const auto routing = make_table_escape_routing(topo, kVcs);
  for (int s = 0; s < 50; ++s) {
    for (int d = 0; d < 50; ++d) {
      if (s == d) continue;
      const auto candidates = routing->route(s, -1, -1, d);
      ASSERT_FALSE(candidates.empty());
      // Last candidate is the escape hop on VC 0.
      EXPECT_EQ(candidates.back().vc_begin, 0);
      EXPECT_EQ(candidates.back().vc_end, 1);
    }
  }
}

TEST(DefaultRouting, PicksFamilySpecificAlgorithm) {
  EXPECT_EQ(make_default_routing(topo::make_mesh(4, 4), 4)->name(),
            "xy-hamming-o1turn");
  EXPECT_EQ(make_default_routing(topo::make_mesh(4, 4), 1)->name(),
            "xy-hamming");
  EXPECT_EQ(make_default_routing(topo::make_ring(4, 4), 4)->name(),
            "ring-dateline");
  EXPECT_EQ(make_default_routing(topo::make_hypercube(4, 4), 4)->name(),
            "e-cube");
  EXPECT_EQ(make_default_routing(topo::make_slim_noc(5, 10), 4)->name(),
            "minimal-adaptive+escape");
  EXPECT_EQ(make_default_routing(topo::make_torus(4, 4), 4)->name(),
            "xy-hamming");
}

TEST(XYRouting, O1TurnOffersBothOrdersAtInjection) {
  const auto topo = topo::make_mesh(4, 4);
  const auto routing = make_xy_hamming_routing(topo, 4);
  // Corner to corner: XY candidates (east, class-0 VCs) and YX candidates
  // (south, class-1 VCs) must both be offered.
  const auto candidates = routing->route(topo.node(0, 0), -1, -1,
                                         topo.node(3, 3));
  ASSERT_EQ(candidates.size(), 2u);
  EXPECT_EQ(candidates[0].vc_begin, 0);
  EXPECT_EQ(candidates[0].vc_end, 2);
  EXPECT_EQ(candidates[1].vc_begin, 2);
  EXPECT_EQ(candidates[1].vc_end, 4);
  EXPECT_NE(candidates[0].out_port, candidates[1].out_port);
}

TEST(XYRouting, O1TurnClassesStickAfterInjection) {
  const auto topo = topo::make_mesh(4, 4);
  const auto routing = make_xy_hamming_routing(topo, 4);
  // A packet on a class-1 (YX) VC mid-route must only receive class-1
  // column moves while rows differ.
  const int node = topo.node(1, 0);
  const int dest = topo.node(3, 3);
  // Arrived from (0,0) going south on VC 2 (class 1).
  int in_port = -1;
  const auto& nbrs = topo.graph().neighbors(node);
  for (std::size_t i = 0; i < nbrs.size(); ++i) {
    if (nbrs[i].node == topo.node(0, 0)) in_port = static_cast<int>(i);
  }
  ASSERT_GE(in_port, 0);
  const auto candidates = routing->route(node, in_port, 2, dest);
  ASSERT_FALSE(candidates.empty());
  for (const auto& cand : candidates) {
    EXPECT_EQ(cand.vc_begin, 2);
    EXPECT_EQ(cand.vc_end, 4);
    // Column move: next hop must stay in column 0.
    const int next = topo.graph()
                         .neighbors(node)[static_cast<std::size_t>(
                             cand.out_port)]
                         .node;
    EXPECT_EQ(topo.coord(next).col, 0);
  }
}

}  // namespace
}  // namespace shg::sim
