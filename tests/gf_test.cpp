// Property tests for the finite field GF(p^e) used by the SlimNoC generator.
#include <gtest/gtest.h>

#include <set>

#include "shg/topo/gf.hpp"

namespace shg::topo {
namespace {

TEST(PrimePower, Recognition) {
  int p = 0;
  int e = 0;
  EXPECT_TRUE(is_prime_power(2, &p, &e));
  EXPECT_EQ(p, 2);
  EXPECT_EQ(e, 1);
  EXPECT_TRUE(is_prime_power(8, &p, &e));
  EXPECT_EQ(p, 2);
  EXPECT_EQ(e, 3);
  EXPECT_TRUE(is_prime_power(27, &p, &e));
  EXPECT_EQ(p, 3);
  EXPECT_EQ(e, 3);
  EXPECT_FALSE(is_prime_power(1));
  EXPECT_FALSE(is_prime_power(6));
  EXPECT_FALSE(is_prime_power(12));
  EXPECT_FALSE(is_prime_power(0));
}

TEST(GaloisField, RejectsNonPrimePowers) {
  EXPECT_THROW(GaloisField(6), Error);
  EXPECT_THROW(GaloisField(1), Error);
}

class GaloisFieldAxioms : public ::testing::TestWithParam<int> {};

TEST_P(GaloisFieldAxioms, AdditiveGroup) {
  const GaloisField f(GetParam());
  const int q = f.order();
  for (int a = 0; a < q; ++a) {
    EXPECT_EQ(f.add(a, 0), a);
    EXPECT_EQ(f.add(a, f.neg(a)), 0);
    for (int b = 0; b < q; ++b) {
      EXPECT_EQ(f.add(a, b), f.add(b, a));
    }
  }
}

TEST_P(GaloisFieldAxioms, MultiplicativeGroup) {
  const GaloisField f(GetParam());
  const int q = f.order();
  for (int a = 0; a < q; ++a) {
    EXPECT_EQ(f.mul(a, 1), a);
    EXPECT_EQ(f.mul(a, 0), 0);
    if (a != 0) {
      EXPECT_EQ(f.mul(a, f.inv(a)), 1);
    }
    for (int b = 0; b < q; ++b) {
      EXPECT_EQ(f.mul(a, b), f.mul(b, a));
    }
  }
}

TEST_P(GaloisFieldAxioms, AssociativityAndDistributivity) {
  const GaloisField f(GetParam());
  const int q = f.order();
  // Full triple loops are O(q^3); cap the field size in this suite's
  // parameter list so this stays fast.
  for (int a = 0; a < q; ++a) {
    for (int b = 0; b < q; ++b) {
      for (int c = 0; c < q; ++c) {
        EXPECT_EQ(f.add(f.add(a, b), c), f.add(a, f.add(b, c)));
        EXPECT_EQ(f.mul(f.mul(a, b), c), f.mul(a, f.mul(b, c)));
        EXPECT_EQ(f.mul(a, f.add(b, c)), f.add(f.mul(a, b), f.mul(a, c)));
      }
    }
  }
}

TEST_P(GaloisFieldAxioms, PrimitiveElementGeneratesEverything) {
  const GaloisField f(GetParam());
  const int q = f.order();
  const int xi = f.primitive_element();
  EXPECT_EQ(f.element_order(xi), q - 1);
  std::set<int> generated;
  int x = 1;
  for (int i = 0; i < q - 1; ++i) {
    generated.insert(x);
    x = f.mul(x, xi);
  }
  EXPECT_EQ(static_cast<int>(generated.size()), q - 1);
}

TEST_P(GaloisFieldAxioms, FrobeniusInCharacteristicP) {
  const GaloisField f(GetParam());
  const int q = f.order();
  const int p = f.characteristic();
  // (a + b)^p == a^p + b^p in characteristic p.
  for (int a = 0; a < q; ++a) {
    for (int b = 0; b < q; ++b) {
      EXPECT_EQ(f.pow(f.add(a, b), p), f.add(f.pow(a, p), f.pow(b, p)));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(SmallFields, GaloisFieldAxioms,
                         ::testing::Values(2, 3, 4, 5, 7, 8, 9, 11, 13, 16,
                                           25, 27));

}  // namespace
}  // namespace shg::topo
