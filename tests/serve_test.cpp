// Tests for the serving layer (src/shg/serve/): the minimal JSON parser,
// the op dispatch of Service, protocol error handling, and the coalesced
// screen path — each service result is checked against the direct library
// call it must match byte for byte.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "shg/common/error.hpp"
#include "shg/customize/search.hpp"
#include "shg/customize/session.hpp"
#include "shg/eval/experiment.hpp"
#include "shg/serve/json.hpp"
#include "shg/serve/server.hpp"
#include "shg/serve/service.hpp"
#include "shg/tech/presets.hpp"

namespace shg::serve {
namespace {

// --- JSON parser -----------------------------------------------------------

TEST(Json, ParsesScalars) {
  EXPECT_TRUE(JsonValue::parse("null").is_null());
  EXPECT_EQ(JsonValue::parse("true").as_bool(), true);
  EXPECT_EQ(JsonValue::parse("false").as_bool(), false);
  EXPECT_EQ(JsonValue::parse("42").as_int(), 42);
  EXPECT_EQ(JsonValue::parse("-7.5e2").as_double(), -750.0);
  EXPECT_EQ(JsonValue::parse("\"hi\"").as_string(), "hi");
}

TEST(Json, ParsesNestedStructures) {
  const JsonValue doc = JsonValue::parse(
      "{\"a\": [1, 2, {\"b\": \"x\"}], \"c\": {\"d\": null}} ");
  ASSERT_TRUE(doc.is_object());
  const JsonValue* a = doc.find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_EQ(a->items().size(), 3u);
  EXPECT_EQ(a->items()[0].as_int(), 1);
  EXPECT_EQ(a->items()[2].find("b")->as_string(), "x");
  EXPECT_TRUE(doc.find("c")->find("d")->is_null());
  EXPECT_EQ(doc.find("missing"), nullptr);
}

TEST(Json, PreservesMemberOrder) {
  const JsonValue doc = JsonValue::parse("{\"z\":1,\"a\":2,\"m\":3}");
  ASSERT_EQ(doc.members().size(), 3u);
  EXPECT_EQ(doc.members()[0].first, "z");
  EXPECT_EQ(doc.members()[1].first, "a");
  EXPECT_EQ(doc.members()[2].first, "m");
}

TEST(Json, UnescapesStrings) {
  EXPECT_EQ(JsonValue::parse("\"a\\n\\t\\\"b\\\\c\\/\"").as_string(),
            "a\n\t\"b\\c/");
  EXPECT_EQ(JsonValue::parse("\"\\u0041\\u00e9\"").as_string(), "A\xc3\xa9");
  // Surrogate pair: U+1F600 -> 4-byte UTF-8.
  EXPECT_EQ(JsonValue::parse("\"\\ud83d\\ude00\"").as_string(),
            "\xf0\x9f\x98\x80");
}

TEST(Json, RejectsMalformedDocuments) {
  const char* bad[] = {
      "",           "{",           "[1,",          "{\"a\":}",
      "tru",        "\"unclosed",  "1.2.3",        "01",
      "1e",         "-",           "{\"a\" 1}",    "[1] trailing",
      "\"\\q\"",    "\"\\ud800\"", "\"\\u12g4\"",  "nan",
      "infinity",   "{,}",         "[1,,2]",       "'single'",
  };
  for (const char* text : bad) {
    EXPECT_THROW(JsonValue::parse(text), Error) << "input: " << text;
  }
}

TEST(Json, RejectsHostileNesting) {
  std::string deep;
  for (int i = 0; i < 200; ++i) deep += '[';
  EXPECT_THROW(JsonValue::parse(deep), Error);
}

TEST(Json, AsIntRejectsNonIntegers) {
  EXPECT_THROW(JsonValue::parse("1.5").as_int(), Error);
  EXPECT_THROW(JsonValue::parse("1e300").as_int(), Error);
  EXPECT_EQ(JsonValue::parse("-3").as_int(), -3);
}

TEST(Json, QuoteRoundTripsThroughParse) {
  const std::string nasty = "line\nwith \"quotes\", back\\slash, tab\t, "
                            "control\x01 bytes and utf-8 \xc3\xa9";
  EXPECT_EQ(JsonValue::parse(json_quote(nasty)).as_string(), nasty);
}

TEST(Json, DoubleFormatsShortestRoundTrip) {
  EXPECT_EQ(json_double(0.0), "0");
  EXPECT_EQ(json_double(2.0), "2");
  EXPECT_EQ(json_double(0.1), "0.1");
  for (double value : {0.1, 1.0 / 3.0, 2.416193181818182, 1e-300, -5.5}) {
    EXPECT_EQ(JsonValue::parse(json_double(value)).as_double(), value);
  }
}

// --- Request parsing -------------------------------------------------------

TEST(Service, ParsesScreenRequest) {
  Service service;
  const Request request = service.parse_request(
      "{\"op\":\"screen\",\"id\":\"r1\",\"scenario\":\"b\","
      "\"row_skips\":[2,4],\"col_skips\":[3]}");
  ASSERT_TRUE(request.valid) << request.error;
  EXPECT_EQ(request.op, Op::kScreen);
  EXPECT_EQ(request.id_json, "\"r1\"");
  EXPECT_EQ(request.scenario, "b");
  EXPECT_EQ(request.params.row_skips, (std::set<int>{2, 4}));
  EXPECT_EQ(request.params.col_skips, (std::set<int>{3}));
}

TEST(Service, MalformedLinesAreInvalidNotFatal) {
  Service service;
  const char* bad[] = {
      "not json",
      "[1,2,3]",                                    // not an object
      "{\"id\":1}",                                 // missing op
      "{\"op\":\"frobnicate\"}",                    // unknown op
      "{\"op\":\"screen\",\"scneario\":\"a\"}",     // typo'd field
      "{\"op\":\"screen\",\"row_skips\":[99]}",     // out-of-range skip
      "{\"op\":\"screen\",\"scenario\":\"z\"}",     // unknown scenario
      "{\"op\":\"ping\",\"id\":[1]}",               // non-scalar id
      "{\"op\":\"experiment\",\"grid\":\"1x1\"}",   // grid too small
      "{\"op\":\"experiment\",\"rates\":[2.0]}",    // rate out of (0,1]
      "{\"op\":\"experiment\",\"seeds\":0}",        // seeds < 1
      "{\"op\":\"customize\",\"max_area_overhead\":0}",
  };
  for (const char* line : bad) {
    const Request request = service.parse_request(line);
    EXPECT_FALSE(request.valid) << "line: " << line;
    EXPECT_FALSE(request.error.empty()) << "line: " << line;
    const Response response = service.execute(request);
    EXPECT_FALSE(response.ok) << "line: " << line;
    const std::string rendered = response.to_line();
    EXPECT_NE(rendered.find("\"ok\":false"), std::string::npos);
    // Every reply is itself valid JSON.
    EXPECT_NO_THROW(JsonValue::parse(rendered)) << rendered;
  }
}

TEST(Service, ErrorRepliesKeepTheRequestId) {
  Service service;
  const Response response = service.execute(
      service.parse_request("{\"op\":\"nope\",\"id\":\"req-9\"}"));
  EXPECT_FALSE(response.ok);
  EXPECT_EQ(response.id_json, "\"req-9\"");
  EXPECT_NE(response.to_line().find("\"id\":\"req-9\""), std::string::npos);
}

// --- Op execution ----------------------------------------------------------

TEST(Service, PingAndShutdown) {
  Service service;
  EXPECT_FALSE(service.shutdown_requested());
  const Response pong =
      service.execute(service.parse_request("{\"op\":\"ping\",\"id\":1}"));
  EXPECT_TRUE(pong.ok);
  EXPECT_EQ(pong.result_json, "{\"pong\":true}");
  const Response stop =
      service.execute(service.parse_request("{\"op\":\"shutdown\"}"));
  EXPECT_TRUE(stop.ok);
  EXPECT_TRUE(service.shutdown_requested());
}

TEST(Service, ScreenMatchesDirectLibraryCall) {
  Service service;
  const Response response = service.execute(service.parse_request(
      "{\"op\":\"screen\",\"id\":\"s\",\"scenario\":\"a\","
      "\"row_skips\":[4],\"col_skips\":[2,5]}"));
  ASSERT_TRUE(response.ok) << response.error;
  EXPECT_TRUE(response.has_counters);
  EXPECT_EQ(response.op_hits, 0u);
  EXPECT_EQ(response.op_misses, 1u);

  const tech::ArchParams arch = tech::knc_scenario(tech::KncScenario::kA);
  const customize::CandidateMetrics direct =
      customize::screen_candidate(arch, topo::ShgParams{{4}, {2, 5}});
  const JsonValue result = JsonValue::parse(response.result_json);
  const JsonValue* metrics = result.find("metrics");
  ASSERT_NE(metrics, nullptr);
  // Bit-exact: json_double round-trips the exact double.
  EXPECT_EQ(metrics->find("area_overhead")->as_double(), direct.area_overhead);
  EXPECT_EQ(metrics->find("avg_hops")->as_double(), direct.avg_hops);
  EXPECT_EQ(metrics->find("diameter")->as_double(), direct.diameter);
  EXPECT_EQ(metrics->find("throughput_bound")->as_double(),
            direct.throughput_bound);

  // A repeat is a tier hit with identical result bytes.
  const Response warm = service.execute(service.parse_request(
      "{\"op\":\"screen\",\"id\":\"s2\",\"scenario\":\"a\","
      "\"row_skips\":[4],\"col_skips\":[2,5]}"));
  ASSERT_TRUE(warm.ok);
  EXPECT_EQ(warm.op_hits, 1u);
  EXPECT_EQ(warm.op_misses, 0u);
  EXPECT_EQ(warm.result_json, response.result_json);
}

TEST(Service, CoalescedScreenBatchMatchesSoloResponses) {
  // Solo twins on one service...
  Service solo;
  std::vector<Request> requests;
  std::vector<std::string> solo_results;
  for (int skip = 2; skip <= 6; ++skip) {
    const std::string line =
        "{\"op\":\"screen\",\"id\":" + std::to_string(skip) +
        ",\"scenario\":\"a\",\"row_skips\":[" + std::to_string(skip) + "]}";
    requests.push_back(solo.parse_request(line));
    ASSERT_TRUE(requests.back().valid);
    solo_results.push_back(solo.execute(requests.back()).result_json);
  }
  // ...must equal one coalesced batch on a fresh service, byte for byte.
  Service batched;
  const std::vector<Response> responses =
      batched.execute_screen_batch(requests);
  ASSERT_EQ(responses.size(), requests.size());
  for (std::size_t i = 0; i < responses.size(); ++i) {
    ASSERT_TRUE(responses[i].ok) << responses[i].error;
    EXPECT_EQ(responses[i].result_json, solo_results[i]);
    EXPECT_EQ(responses[i].id_json, requests[i].id_json);
    EXPECT_EQ(responses[i].op_misses, 1u);  // all cold, screened together
  }
}

TEST(Service, CustomizeMatchesDirectSearch) {
  Service service;
  const Response response = service.execute(service.parse_request(
      "{\"op\":\"customize\",\"id\":\"c\",\"scenario\":\"a\","
      "\"max_area_overhead\":0.3}"));
  ASSERT_TRUE(response.ok) << response.error;

  customize::SearchOptions options;  // session-free reference run
  const customize::SearchResult direct = customize::customize_greedy(
      tech::knc_scenario(tech::KncScenario::kA), customize::Goal{0.3},
      options);
  const JsonValue result = JsonValue::parse(response.result_json);
  std::set<int> row_skips;
  for (const JsonValue& v : result.find("row_skips")->items()) {
    row_skips.insert(static_cast<int>(v.as_int()));
  }
  std::set<int> col_skips;
  for (const JsonValue& v : result.find("col_skips")->items()) {
    col_skips.insert(static_cast<int>(v.as_int()));
  }
  EXPECT_EQ(row_skips, direct.params.row_skips);
  EXPECT_EQ(col_skips, direct.params.col_skips);
  EXPECT_EQ(result.find("steps")->as_int(),
            static_cast<long long>(direct.history.size()));
  EXPECT_EQ(result.find("metrics")->find("throughput_bound")->as_double(),
            direct.metrics.throughput_bound);
}

TEST(Service, ExperimentPayloadMatchesBatchEngine) {
  Service service;
  const Response response = service.execute(service.parse_request(
      "{\"op\":\"experiment\",\"id\":\"e\",\"grid\":\"6x6\","
      "\"traffic\":[\"uniform\"],\"rates\":[0.05],\"seeds\":1,"
      "\"smoke\":true}"));
  ASSERT_TRUE(response.ok) << response.error;

  CampaignParams params;
  params.rows = 6;
  params.cols = 6;
  params.traffic = {"uniform"};
  params.rates = {0.05};
  params.num_seeds = 1;
  params.smoke = true;
  eval::ExperimentSpec spec = make_campaign_spec(params);
  const std::string direct = eval::experiment_to_json(eval::run_experiment(spec));

  // The embedded report unescapes to the batch engine's exact bytes.
  const JsonValue result = JsonValue::parse(response.result_json);
  ASSERT_NE(result.find("report"), nullptr);
  EXPECT_EQ(result.find("report")->as_string(), direct);

  // Cold counters: every cell simulated; warm repeat: none.
  EXPECT_TRUE(response.has_counters);
  EXPECT_EQ(response.op_hits, 0u);
  EXPECT_GT(response.op_simulated, 0u);
  const Response warm = service.execute(service.parse_request(
      "{\"op\":\"experiment\",\"id\":\"e2\",\"grid\":\"6x6\","
      "\"traffic\":[\"uniform\"],\"rates\":[0.05],\"seeds\":1,"
      "\"smoke\":true}"));
  ASSERT_TRUE(warm.ok);
  EXPECT_EQ(warm.op_simulated, 0u);
  EXPECT_EQ(warm.result_json, response.result_json);
}

TEST(Service, ResponseLineShapeIsStable) {
  Service service;
  const Response response =
      service.execute(service.parse_request("{\"op\":\"ping\",\"id\":7}"));
  const std::string line = response.to_line();
  const JsonValue parsed = JsonValue::parse(line);
  EXPECT_EQ(parsed.find("id")->as_int(), 7);
  EXPECT_EQ(parsed.find("op")->as_string(), "ping");
  EXPECT_TRUE(parsed.find("ok")->as_bool());
  EXPECT_NE(parsed.find("elapsed_us"), nullptr);
  const JsonValue* tiers = parsed.find("tiers");
  ASSERT_NE(tiers, nullptr);
  EXPECT_NE(tiers->find("candidate"), nullptr);
  EXPECT_NE(tiers->find("sim"), nullptr);
  EXPECT_NE(tiers->find("artifact"), nullptr);
}

TEST(Service, CampaignSpecDefaultsMatchTheBatchDriver) {
  // The shared builder IS the campaign of examples/experiment_campaign.cpp;
  // pin the spec shape so a drive-by edit cannot silently fork the two.
  const eval::ExperimentSpec spec = make_campaign_spec(CampaignParams{});
  EXPECT_EQ(spec.name, "campaign-8x8");
  ASSERT_EQ(spec.topologies.size(), 3u);
  EXPECT_EQ(spec.traffic.size(), 3u);
  EXPECT_EQ(spec.rates.size(), 4u);
  EXPECT_EQ(spec.seeds.size(), 3u);
  EXPECT_EQ(spec.config.sim.num_vcs, 2);
  EXPECT_EQ(spec.config.sim.buffer_depth_flits, 8);
  EXPECT_EQ(spec.config.sim.warmup_cycles, 500);
  EXPECT_EQ(spec.config.sim.routing_policy, sim::RoutingPolicy::kMinimal);
}

TEST(Service, ExperimentRoutingFieldSelectsUgalCampaign) {
  Service service;
  const Request request = service.parse_request(
      "{\"op\":\"experiment\",\"id\":1,\"grid\":\"6x6\","
      "\"traffic\":[\"uniform\"],\"rates\":[0.05],\"seeds\":1,"
      "\"smoke\":true,\"routing\":\"ugal\"}");
  ASSERT_TRUE(request.valid) << request.error;
  EXPECT_EQ(request.campaign.routing, "ugal");

  // The shared builder flips the policy, raises the VC count to the UGAL
  // floor (2 escape + 2 adaptive classes), and tags the campaign name so
  // reports from the two policies can never be confused.
  const eval::ExperimentSpec spec = make_campaign_spec(request.campaign);
  EXPECT_EQ(spec.config.sim.routing_policy, sim::RoutingPolicy::kUgal);
  EXPECT_EQ(spec.config.sim.num_vcs, 4);
  EXPECT_EQ(spec.name, "campaign-6x6-ugal");

  // Bad policy spellings are rejected at parse time, naming the offender.
  const Request bad = service.parse_request(
      "{\"op\":\"experiment\",\"id\":2,\"routing\":\"adaptive\"}");
  EXPECT_FALSE(bad.valid);
  EXPECT_NE(bad.error.find("adaptive"), std::string::npos) << bad.error;
}

}  // namespace
}  // namespace shg::serve
