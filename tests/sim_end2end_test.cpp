// End-to-end simulator tests: latency composition, flit conservation,
// throughput orderings, saturation behaviour and deadlock stress.
#include <gtest/gtest.h>

#include "shg/eval/perf.hpp"
#include "shg/sim/simulator.hpp"
#include "shg/topo/generators.hpp"

namespace shg::sim {
namespace {

SimConfig fast_config() {
  SimConfig config;
  config.num_vcs = 2;
  config.buffer_depth_flits = 4;
  config.packet_size_flits = 4;
  config.warmup_cycles = 500;
  config.measure_cycles = 1500;
  config.drain_cycles = 30000;
  return config;
}

std::vector<int> unit_latencies(const topo::Topology& topo) {
  return std::vector<int>(static_cast<std::size_t>(topo.graph().num_edges()),
                          1);
}

TEST(Simulator, LowRateDrainsAndConservesFlits) {
  const auto topo = topo::make_mesh(4, 4);
  SimConfig config = fast_config();
  config.injection_rate = 0.05;
  const auto pattern = make_uniform(16);
  Simulator simulator(topo, unit_latencies(topo), config, *pattern, 1);
  const SimResult result = simulator.run();
  EXPECT_TRUE(result.drained);
  EXPECT_GT(result.measured_packets, 0);
  EXPECT_NEAR(result.accepted_rate, 0.05, 0.015);
}

TEST(Simulator, ZeroLoadLatencyDecomposition) {
  // Neighbor traffic on a 4x4 mesh with unit links: 12 of 16 sources reach
  // their neighbor in 1 link (2 routers), the 4 wrap pairs need 3 links
  // (4 routers). With 4-flit serialization, per-packet latency is
  // ~5 cycles for the short pairs and ~9 for the wrap pairs.
  const auto topo = topo::make_mesh(4, 4);
  SimConfig config = fast_config();
  config.injection_rate = 0.01;
  const auto pattern = make_neighbor(4, 4);
  Simulator simulator(topo, unit_latencies(topo), config, *pattern, 1);
  const SimResult result = simulator.run();
  EXPECT_TRUE(result.drained);
  EXPECT_GE(result.avg_packet_latency, 5.0);
  EXPECT_LE(result.avg_packet_latency, 9.0);
  EXPECT_GE(result.avg_hops, 2.0);
  EXPECT_LE(result.avg_hops, 3.0);
}

TEST(Simulator, LinkLatencyRaisesPacketLatency) {
  const auto topo = topo::make_mesh(4, 4);
  SimConfig config = fast_config();
  config.injection_rate = 0.02;
  const auto pattern = make_uniform(16);
  Simulator fast(topo, unit_latencies(topo), config, *pattern, 1);
  std::vector<int> slow_links(
      static_cast<std::size_t>(topo.graph().num_edges()), 4);
  Simulator slow(topo, slow_links, config, *pattern, 1);
  const SimResult fast_result = fast.run();
  const SimResult slow_result = slow.run();
  ASSERT_TRUE(fast_result.drained);
  ASSERT_TRUE(slow_result.drained);
  EXPECT_GT(slow_result.avg_packet_latency,
            fast_result.avg_packet_latency + 3.0);
}

TEST(Simulator, MoreEndpointsInjectMoreTraffic) {
  const auto topo = topo::make_mesh(4, 4);
  SimConfig config = fast_config();
  config.injection_rate = 0.05;
  const auto pattern = make_uniform(16);
  Simulator one(topo, unit_latencies(topo), config, *pattern, 1);
  Simulator two(topo, unit_latencies(topo), config, *pattern, 2);
  const SimResult r1 = one.run();
  const SimResult r2 = two.run();
  ASSERT_TRUE(r1.drained);
  ASSERT_TRUE(r2.drained);
  // Rate is per endpoint port: two endpoints double the measured packets.
  EXPECT_NEAR(static_cast<double>(r2.measured_packets) /
                  static_cast<double>(r1.measured_packets),
              2.0, 0.5);
}

TEST(Simulator, SaturationLatencyExplodes) {
  const auto topo = topo::make_mesh(4, 4);
  SimConfig config = fast_config();
  const auto pattern = make_uniform(16);
  config.injection_rate = 0.03;
  Simulator low(topo, unit_latencies(topo), config, *pattern, 1);
  config.injection_rate = 0.9;
  Simulator high(topo, unit_latencies(topo), config, *pattern, 1);
  const SimResult low_result = low.run();
  const SimResult high_result = high.run();
  ASSERT_TRUE(low_result.drained);
  // At 0.9 flits/port/cycle a 4x4 mesh is far beyond saturation: either the
  // drain fails or latency explodes.
  EXPECT_TRUE(!high_result.drained ||
              high_result.avg_packet_latency >
                  3.0 * low_result.avg_packet_latency);
  // But it must keep moving flits (no deadlock): accepted rate well over 0.
  EXPECT_GT(high_result.accepted_rate, 0.05);
}

TEST(Simulator, FlattenedButterflyBeatsMeshUnderLoad) {
  SimConfig config = fast_config();
  config.injection_rate = 0.30;
  const auto pattern = make_uniform(16);
  const auto mesh = topo::make_mesh(4, 4);
  const auto fb = topo::make_flattened_butterfly(4, 4);
  const SimResult mesh_result =
      Simulator(mesh, unit_latencies(mesh), config, *pattern, 1).run();
  const SimResult fb_result =
      Simulator(fb, unit_latencies(fb), config, *pattern, 1).run();
  // The FB either still drains where the mesh cannot, or has lower latency.
  if (mesh_result.drained && fb_result.drained) {
    EXPECT_LT(fb_result.avg_packet_latency, mesh_result.avg_packet_latency);
  } else {
    EXPECT_TRUE(fb_result.drained || !mesh_result.drained);
  }
}

TEST(Simulator, RingSaturatesFirst) {
  SimConfig config = fast_config();
  config.injection_rate = 0.15;
  const auto pattern = make_uniform(16);
  const auto ring = topo::make_ring(4, 4);
  const auto mesh = topo::make_mesh(4, 4);
  const SimResult ring_result =
      Simulator(ring, unit_latencies(ring), config, *pattern, 1).run();
  const SimResult mesh_result =
      Simulator(mesh, unit_latencies(mesh), config, *pattern, 1).run();
  ASSERT_TRUE(mesh_result.drained);
  EXPECT_TRUE(!ring_result.drained ||
              ring_result.avg_packet_latency >
                  mesh_result.avg_packet_latency);
}

TEST(Simulator, DeadlockStressTorusHighLoad) {
  // Dateline VCs must keep the torus deadlock-free even far beyond
  // saturation with adversarial wrap-heavy traffic.
  const auto topo = topo::make_torus(4, 4);
  SimConfig config = fast_config();
  config.injection_rate = 0.8;
  config.measure_cycles = 2500;
  const auto pattern = make_tornado(4, 4);
  Simulator simulator(topo, unit_latencies(topo), config, *pattern, 1);
  const SimResult result = simulator.run();
  EXPECT_GT(result.accepted_rate, 0.05);
}

TEST(Simulator, DeadlockStressSlimNocHighLoad) {
  // The up*/down* escape VC must keep the irregular SlimNoC graph live
  // beyond saturation.
  const auto topo = topo::make_slim_noc(5, 10);
  SimConfig config = fast_config();
  config.num_vcs = 4;
  config.injection_rate = 0.8;
  config.measure_cycles = 2500;
  const auto pattern = make_uniform(50);
  Simulator simulator(topo, unit_latencies(topo), config, *pattern, 1);
  const SimResult result = simulator.run();
  EXPECT_GT(result.accepted_rate, 0.05);
}

TEST(Simulator, DeadlockStressRing) {
  const auto topo = topo::make_ring(4, 4);
  SimConfig config = fast_config();
  config.injection_rate = 0.7;
  const auto pattern = make_uniform(16);
  Simulator simulator(topo, unit_latencies(topo), config, *pattern, 1);
  const SimResult result = simulator.run();
  EXPECT_GT(result.accepted_rate, 0.02);
}

TEST(Simulator, DeterministicForFixedSeed) {
  const auto topo = topo::make_mesh(4, 4);
  SimConfig config = fast_config();
  config.injection_rate = 0.2;
  const auto pattern = make_uniform(16);
  const SimResult a =
      Simulator(topo, unit_latencies(topo), config, *pattern, 1).run();
  const SimResult b =
      Simulator(topo, unit_latencies(topo), config, *pattern, 1).run();
  EXPECT_EQ(a.measured_packets, b.measured_packets);
  EXPECT_DOUBLE_EQ(a.avg_packet_latency, b.avg_packet_latency);
  EXPECT_DOUBLE_EQ(a.accepted_rate, b.accepted_rate);
}

TEST(Simulator, SeedChangesTraffic) {
  const auto topo = topo::make_mesh(4, 4);
  SimConfig config = fast_config();
  config.injection_rate = 0.2;
  const auto pattern = make_uniform(16);
  SimConfig other = config;
  other.seed = config.seed + 1;
  const SimResult a =
      Simulator(topo, unit_latencies(topo), config, *pattern, 1).run();
  const SimResult b =
      Simulator(topo, unit_latencies(topo), other, *pattern, 1).run();
  EXPECT_NE(a.measured_packets, b.measured_packets);
}

TEST(PerfEval, MeshPerformanceEnvelope) {
  const auto topo = topo::make_mesh(4, 4);
  eval::PerfConfig config;
  config.sim = fast_config();
  const auto pattern = make_uniform(16);
  const auto perf = eval::evaluate_performance(topo, unit_latencies(topo), 1,
                                               *pattern, config);
  EXPECT_GT(perf.zero_load_latency_cycles, 5.0);
  EXPECT_LT(perf.zero_load_latency_cycles, 25.0);
  EXPECT_GT(perf.saturation_throughput, 0.15);
  EXPECT_LT(perf.saturation_throughput, 0.9);
}

TEST(PerfEval, FbOutperformsRing) {
  eval::PerfConfig config;
  config.sim = fast_config();
  config.bisection_iterations = 5;
  const auto pattern = make_uniform(16);
  const auto ring = topo::make_ring(4, 4);
  const auto fb = topo::make_flattened_butterfly(4, 4);
  const auto ring_perf = eval::evaluate_performance(
      ring, unit_latencies(ring), 1, *pattern, config);
  const auto fb_perf =
      eval::evaluate_performance(fb, unit_latencies(fb), 1, *pattern, config);
  EXPECT_GT(fb_perf.saturation_throughput, ring_perf.saturation_throughput);
  EXPECT_LT(fb_perf.zero_load_latency_cycles,
            ring_perf.zero_load_latency_cycles);
}

}  // namespace
}  // namespace shg::sim
