// Bit-identity oracle for the SoA simulation engine: every SimResult field
// must equal the reference AoS path EXACTLY (==, not near) across topology
// families, traffic patterns, injection processes, endpoint counts, link
// latencies, routing modes (table and live) and concentration — plus the
// quiescence fast-forward regime (rates low enough that the network goes
// fully idle between injections).
#include <gtest/gtest.h>

#include <vector>

#include "shg/sim/concentration.hpp"
#include "shg/sim/simulator.hpp"
#include "shg/sim/trace.hpp"
#include "shg/sim/traffic_spec.hpp"
#include "shg/topo/generators.hpp"

namespace shg::sim {
namespace {

SimConfig fast_config() {
  SimConfig config;
  config.num_vcs = 2;
  config.buffer_depth_flits = 4;
  config.packet_size_flits = 4;
  config.warmup_cycles = 300;
  config.measure_cycles = 900;
  config.drain_cycles = 30000;
  return config;
}

std::vector<int> unit_latencies(const topo::Topology& topo) {
  return std::vector<int>(static_cast<std::size_t>(topo.graph().num_edges()),
                          1);
}

/// Runs the same simulation on both engines and requires exact equality of
/// every SimResult field. `spec_text` drives pattern AND process through
/// the TrafficSpec path (the experiment engine's shape).
void expect_bit_identical(const topo::Topology& topo,
                          const std::vector<int>& latencies, SimConfig config,
                          const std::string& spec_text,
                          int endpoints_per_tile) {
  const TrafficSpec spec = TrafficSpec::parse(spec_text);
  const auto pattern = spec.make_pattern(topo.rows(), topo.cols(),
                                         topo.concentration() > 1
                                             ? topo.concentration()
                                             : config.concentration);
  const int conc =
      topo.concentration() > 1 ? topo.concentration() : config.concentration;
  const int ports = conc > 1 ? conc : endpoints_per_tile;
  const double packet_prob =
      config.injection_rate / static_cast<double>(config.packet_size_flits);

  config.use_soa_engine = false;
  Simulator aos(topo, latencies, config, *pattern, endpoints_per_tile,
                nullptr, nullptr,
                spec.make_process(packet_prob, topo.num_tiles() * ports));
  const SimResult a = aos.run();

  config.use_soa_engine = true;
  Simulator soa(topo, latencies, config, *pattern, endpoints_per_tile,
                nullptr, nullptr,
                spec.make_process(packet_prob, topo.num_tiles() * ports));
  const SimResult s = soa.run();

  EXPECT_EQ(a.cycles_run, s.cycles_run) << spec_text;
  EXPECT_EQ(a.measured_packets, s.measured_packets) << spec_text;
  EXPECT_EQ(a.drained, s.drained) << spec_text;
  EXPECT_EQ(a.offered_rate, s.offered_rate) << spec_text;
  EXPECT_EQ(a.accepted_rate, s.accepted_rate) << spec_text;
  EXPECT_EQ(a.avg_packet_latency, s.avg_packet_latency) << spec_text;
  EXPECT_EQ(a.max_packet_latency, s.max_packet_latency) << spec_text;
  EXPECT_EQ(a.p50_packet_latency, s.p50_packet_latency) << spec_text;
  EXPECT_EQ(a.p95_packet_latency, s.p95_packet_latency) << spec_text;
  EXPECT_EQ(a.p99_packet_latency, s.p99_packet_latency) << spec_text;
  EXPECT_EQ(a.avg_hops, s.avg_hops) << spec_text;
  EXPECT_EQ(a.fairness, s.fairness) << spec_text;
  // The run must have done real work, or the comparison proves nothing.
  EXPECT_GT(s.measured_packets, 0) << spec_text;
}

TEST(SoaBitIdentity, AllTopologyFamiliesUniform) {
  SimConfig config = fast_config();
  config.injection_rate = 0.04;
  const topo::Topology topos[] = {
      topo::make_ring(4, 4),        topo::make_mesh(4, 4),
      topo::make_torus(4, 4),       topo::make_folded_torus(4, 4),
      topo::make_hypercube(4, 4),   topo::make_flattened_butterfly(4, 4),
      topo::make_sparse_hamming(4, 4, {2}, {2, 3}),
  };
  for (const auto& topo : topos) {
    SCOPED_TRACE(topo.name());
    expect_bit_identical(topo, unit_latencies(topo), config, "uniform", 1);
  }
}

TEST(SoaBitIdentity, SlimNocAdaptiveEscapeRouting) {
  // TableEscapeRouting exercises multi-candidate adaptive routes, the
  // hardest case for allocator-order equivalence.
  const auto topo = topo::make_slim_noc(4, 8);
  SimConfig config = fast_config();
  config.injection_rate = 0.06;
  expect_bit_identical(topo, unit_latencies(topo), config, "uniform", 1);
}

TEST(SoaBitIdentity, EveryPatternOnMesh) {
  const auto topo = topo::make_mesh(4, 4);
  SimConfig config = fast_config();
  config.injection_rate = 0.05;
  for (const char* spec :
       {"uniform", "transpose", "bit-complement", "bit-reverse", "shuffle",
        "tornado", "neighbor", "hotspot:0,5:0.5"}) {
    SCOPED_TRACE(spec);
    expect_bit_identical(topo, unit_latencies(topo), config, spec, 1);
  }
}

TEST(SoaBitIdentity, OnOffProcessAndMultiEndpoint) {
  const auto topo = topo::make_mesh(4, 4);
  SimConfig config = fast_config();
  config.injection_rate = 0.05;
  expect_bit_identical(topo, unit_latencies(topo), config,
                       "uniform/onoff:0.05,0.2", 1);
  expect_bit_identical(topo, unit_latencies(topo), config,
                       "transpose/onoff:0.1,0.3", 2);
  // Endpoint spreading without concentration (eject port by packet id).
  expect_bit_identical(topo, unit_latencies(topo), config, "uniform", 3);
}

TEST(SoaBitIdentity, NonUnitLinkLatenciesAndDeeperBuffers) {
  const auto topo = topo::make_torus(4, 4);
  SimConfig config = fast_config();
  config.injection_rate = 0.08;
  config.num_vcs = 4;
  config.buffer_depth_flits = 8;
  config.router_delay_cycles = 2;
  std::vector<int> latencies(
      static_cast<std::size_t>(topo.graph().num_edges()));
  for (std::size_t e = 0; e < latencies.size(); ++e) {
    latencies[e] = 1 + static_cast<int>(e % 3);
  }
  expect_bit_identical(topo, latencies, config, "uniform", 1);
}

TEST(SoaBitIdentity, LiveRoutingWithoutTable) {
  // No route table: the SoA engine calls the routing function per head
  // flit, exactly like the reference router's live mode.
  const auto topo = topo::make_mesh(5, 5);
  SimConfig config = fast_config();
  config.injection_rate = 0.05;
  config.use_route_table = false;
  expect_bit_identical(topo, unit_latencies(topo), config, "uniform", 1);
}

TEST(SoaBitIdentity, QuiescentLowRateFastForward) {
  // Rate low enough that the fabric is empty most cycles: the SoA engine
  // spends its time in quiescence fast-forward and must still reproduce
  // the reference cycle count exactly.
  const auto topo = topo::make_mesh(4, 4);
  SimConfig config = fast_config();
  config.injection_rate = 0.001;
  config.warmup_cycles = 2000;
  config.measure_cycles = 6000;
  expect_bit_identical(topo, unit_latencies(topo), config, "uniform", 1);
}

TEST(SoaBitIdentity, SaturatedHotspot) {
  // Saturation exercises backpressure, credit stalls and the drain-phase
  // watchdog paths.
  const auto topo = topo::make_mesh(4, 4);
  SimConfig config = fast_config();
  config.injection_rate = 0.6;
  config.drain_cycles = 4000;
  expect_bit_identical(topo, unit_latencies(topo), config, "hotspot:5:0.8",
                       1);
}

TEST(SoaBitIdentity, ConcentratedMesh) {
  SimConfig config = fast_config();
  config.injection_rate = 0.03;
  for (int conc : {2, 4}) {
    const auto topo = topo::make_concentrated_mesh(4, 4, conc);
    SCOPED_TRACE(conc);
    expect_bit_identical(topo, unit_latencies(topo), config, "uniform", 1);
    if (conc == 4) {
      // The 4x4-router, c=4 terminal grid is the square 8x8 (2x2 sub-grids);
      // c=2 gives a 4x8 terminal grid, on which transpose is undefined.
      expect_bit_identical(topo, unit_latencies(topo), config, "transpose",
                           1);
    }
    expect_bit_identical(topo, unit_latencies(topo), config,
                         "hotspot:0,9:0.4", 1);
  }
}

TEST(SoaBitIdentity, ZeroTrafficRun) {
  // A rate so low the PRNG may never inject: both engines must agree on
  // the degenerate all-idle run (cycles_run = generation end, drained).
  const auto topo = topo::make_mesh(3, 3);
  SimConfig config = fast_config();
  config.injection_rate = 1e-9;
  config.warmup_cycles = 50;
  config.measure_cycles = 100;
  const TrafficSpec spec = TrafficSpec::parse("uniform");
  const auto pattern = spec.make_pattern(3, 3);
  config.use_soa_engine = false;
  Simulator aos(topo, unit_latencies(topo), config, *pattern, 1);
  const SimResult a = aos.run();
  config.use_soa_engine = true;
  Simulator soa(topo, unit_latencies(topo), config, *pattern, 1);
  const SimResult s = soa.run();
  EXPECT_EQ(a.cycles_run, s.cycles_run);
  EXPECT_EQ(a.measured_packets, s.measured_packets);
  EXPECT_EQ(a.drained, s.drained);
}

/// Replays `trace` on both engines and requires exact SimResult equality —
/// trace injection must preserve the engine-identity contract exactly like
/// the synthetic processes do.
void expect_trace_bit_identical(const topo::Topology& topo, SimConfig config,
                                const Trace& trace,
                                const std::string& what) {
  const auto shared = std::make_shared<const Trace>(trace);
  const int conc = topo.concentration();
  const int num_sources = conc > 1 ? topo.num_tiles() * conc
                                   : topo.num_tiles();
  const int num_terminals = num_sources;

  SimResult results[2];
  for (const bool soa : {false, true}) {
    config.use_soa_engine = soa;
    TraceWorkload workload = make_trace_replay(shared, num_sources,
                                               num_terminals,
                                               config.packet_size_flits);
    Simulator simulator(topo, unit_latencies(topo), config,
                        *workload.pattern, 1, nullptr, nullptr,
                        std::move(workload.process));
    results[soa ? 1 : 0] = simulator.run();
  }
  const SimResult& a = results[0];
  const SimResult& s = results[1];
  EXPECT_EQ(a.cycles_run, s.cycles_run) << what;
  EXPECT_EQ(a.measured_packets, s.measured_packets) << what;
  EXPECT_EQ(a.drained, s.drained) << what;
  EXPECT_EQ(a.accepted_rate, s.accepted_rate) << what;
  EXPECT_EQ(a.avg_packet_latency, s.avg_packet_latency) << what;
  EXPECT_EQ(a.max_packet_latency, s.max_packet_latency) << what;
  EXPECT_EQ(a.p50_packet_latency, s.p50_packet_latency) << what;
  EXPECT_EQ(a.p95_packet_latency, s.p95_packet_latency) << what;
  EXPECT_EQ(a.p99_packet_latency, s.p99_packet_latency) << what;
  EXPECT_EQ(a.avg_hops, s.avg_hops) << what;
  EXPECT_EQ(a.fairness, s.fairness) << what;
  EXPECT_GT(s.measured_packets, 0) << what;
}

TEST(SoaBitIdentity, TraceReplayAcrossFamilies) {
  // A recorded synthetic trace replayed on both engines, across families.
  SimConfig config = fast_config();
  config.injection_rate = 0.05;
  TraceRecordOptions opt;
  opt.rows = 4;
  opt.cols = 4;
  opt.injection_rate = config.injection_rate;
  opt.packet_size_flits = config.packet_size_flits;
  opt.cycles = config.warmup_cycles + config.measure_cycles;
  opt.seed = config.seed;
  const Trace trace =
      trace_from_spec(TrafficSpec::parse("hotspot:0,7:0.3/onoff:0.1,0.3"),
                      opt);
  for (const auto& topo :
       {topo::make_mesh(4, 4), topo::make_torus(4, 4),
        topo::make_flattened_butterfly(4, 4)}) {
    expect_trace_bit_identical(topo, config, trace, topo.name());
  }
}

TEST(SoaBitIdentity, TraceWithNonUnitMessageSizes) {
  // Message sizes that are not multiples of the packet size: messages of
  // 1..10 flits over 4-flit packets split into ceil(size/4) packets on
  // consecutive cycles in both engines.
  SimConfig config = fast_config();
  config.warmup_cycles = 0;  // the whole hand-built trace is measured
  Trace trace;
  trace.num_sources = 16;
  trace.num_terminals = 16;
  for (std::uint32_t i = 0; i < 160; ++i) {
    TraceRecord rec;
    rec.source = i % 16;
    rec.delta = 7;  // every source fires every 7th "time unit"
    rec.dest = (i * 5 + 3) % 16;
    rec.size_flits = 1 + i % 10;
    trace.records.push_back(rec);
  }
  // Interleave sources so reconstructed timestamps stay globally
  // nondecreasing: record i has absolute time 7 * (1 + i / 16).
  expect_trace_bit_identical(topo::make_mesh(4, 4), config, trace,
                             "non-unit sizes");
}

TEST(SoaBitIdentity, TraceWithDependencyStalledSources) {
  // Request/reply shape: every reply record depends on its request and
  // fires only after the request finished injecting.
  SimConfig config = fast_config();
  config.warmup_cycles = 0;  // the whole hand-built trace is measured
  Trace trace;
  trace.num_sources = 16;
  trace.num_terminals = 16;
  for (std::uint32_t i = 0; i < 60; ++i) {
    const std::uint32_t requester = (i * 3) % 8;       // sources 0..7
    const std::uint32_t responder = 8 + (i * 5) % 8;   // sources 8..15
    const std::uint64_t request_index = trace.records.size();
    TraceRecord request;
    request.source = requester;
    request.delta = 20;
    request.dest = responder;
    request.size_flits = 8;
    trace.records.push_back(request);
    TraceRecord reply;
    reply.source = responder;
    reply.delta = 20;
    reply.dest = requester;
    reply.size_flits = 16;
    reply.dep = request_index;
    trace.records.push_back(reply);
  }
  expect_trace_bit_identical(topo::make_mesh(4, 4), config, trace,
                             "dependency-stalled");
}

TEST(SoaBitIdentity, TraceDrainsToQuiescenceMidRun) {
  // Long idle gaps between bursts: the SoA engine's whole-network
  // quiescence fast-forward must jump the gaps and still match the AoS
  // cycle count exactly.
  SimConfig config = fast_config();
  config.warmup_cycles = 100;
  config.measure_cycles = 2900;
  Trace trace;
  trace.num_sources = 16;
  trace.num_terminals = 16;
  for (const std::uint32_t burst_start : {0u, 1100u, 2500u}) {
    for (std::uint32_t i = 0; i < 16; ++i) {
      TraceRecord rec;
      rec.source = i;
      rec.delta = burst_start == 0 ? 0 : 1100 + (burst_start == 2500 ? 300 : 0);
      rec.dest = 15 - i;
      rec.size_flits = 4;
      trace.records.push_back(rec);
    }
  }
  expect_trace_bit_identical(topo::make_mesh(4, 4), config, trace,
                             "quiescent gaps");
}

TEST(Concentration, TerminalMappingRoundTrips) {
  for (int factor : {1, 2, 3, 4, 6, 8, 9}) {
    const Concentration conc = Concentration::make(3, 5, factor);
    EXPECT_EQ(conc.sub_rows * conc.sub_cols, factor);
    EXPECT_LE(conc.sub_rows, conc.sub_cols);
    EXPECT_EQ(conc.terminals(), 3 * 5 * factor);
    for (int tile = 0; tile < 15; ++tile) {
      for (int port = 0; port < factor; ++port) {
        const int term = conc.terminal(tile, port);
        EXPECT_GE(term, 0);
        EXPECT_LT(term, conc.terminals());
        EXPECT_EQ(conc.tile_of(term), tile);
        EXPECT_EQ(conc.port_of(term), port);
      }
    }
  }
}

TEST(Concentration, DegenerateFactorOneIsIdentity) {
  const Concentration conc = Concentration::make(4, 4, 1);
  for (int tile = 0; tile < 16; ++tile) {
    EXPECT_EQ(conc.terminal(tile, 0), tile);
    EXPECT_EQ(conc.tile_of(tile), tile);
    EXPECT_EQ(conc.port_of(tile), 0);
  }
}

TEST(Concentration, ConcentratedMeshCarriesFactor) {
  const auto topo = topo::make_concentrated_mesh(4, 4, 4);
  EXPECT_EQ(topo.concentration(), 4);
  EXPECT_EQ(topo.num_tiles(), 16);
  // The link graph is the plain mesh.
  EXPECT_EQ(topo.graph().num_edges(),
            topo::make_mesh(4, 4).graph().num_edges());
}

TEST(Concentration, SimulatorRejectsMultiEndpointConcentration) {
  const auto topo = topo::make_concentrated_mesh(4, 4, 2);
  SimConfig config = fast_config();
  const auto pattern = TrafficSpec::parse("uniform").make_pattern(4, 4, 2);
  EXPECT_THROW(
      Simulator(topo, unit_latencies(topo), config, *pattern, 2),
      shg::Error);
}

}  // namespace
}  // namespace shg::sim
