// Incremental-vs-full screening equivalence (customize/incremental.hpp):
// delta-BFS repair must match fresh sweeps bit-for-bit, and every search
// surface (greedy, exhaustive, explore) must return identical results with
// the incremental context on and off.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "shg/common/prng.hpp"
#include "shg/customize/explore.hpp"
#include "shg/customize/incremental.hpp"
#include "shg/customize/search.hpp"
#include "shg/graph/shortest_paths.hpp"
#include "shg/tech/presets.hpp"
#include "shg/topo/generators.hpp"

namespace shg::customize {
namespace {

using tech::ArchParams;
using tech::KncScenario;
using tech::knc_scenario;

void expect_same_metrics(const CandidateMetrics& a, const CandidateMetrics& b) {
  // Bit-identical, not approximately equal: the repair reproduces the same
  // integer distance matrix, and the area side runs the same arithmetic.
  EXPECT_EQ(a.area_overhead, b.area_overhead);
  EXPECT_EQ(a.avg_hops, b.avg_hops);
  EXPECT_EQ(a.diameter, b.diameter);
  EXPECT_EQ(a.throughput_bound, b.throughput_bound);
}

void expect_same_search_result(const SearchResult& a, const SearchResult& b) {
  EXPECT_EQ(a.params, b.params);
  expect_same_metrics(a.metrics, b.metrics);
  ASSERT_EQ(a.history.size(), b.history.size());
  for (std::size_t i = 0; i < a.history.size(); ++i) {
    EXPECT_EQ(a.history[i].params, b.history[i].params);
    expect_same_metrics(a.history[i].metrics, b.history[i].metrics);
    EXPECT_EQ(a.history[i].note, b.history[i].note);
  }
  EXPECT_EQ(a.cost.area_overhead, b.cost.area_overhead);
  EXPECT_EQ(a.cost.total_area_mm2, b.cost.total_area_mm2);
}

/// Draws a random SHG trajectory (one extra skip distance per step) and
/// checks the delta-BFS repair against fresh sweeps at every step.
TEST(DeltaBfs, RandomTrajectoriesMatchFreshSweeps) {
  Prng prng(20260729);
  for (int trial = 0; trial < 8; ++trial) {
    const int rows = prng.range(4, 8);
    const int cols = prng.range(4, 8);
    topo::ShgParams params;  // start from the mesh
    for (int step = 0; step < 4; ++step) {
      // Collect the skip distances not yet used, pick one at random.
      std::vector<std::pair<bool, int>> choices;  // (is_col, x)
      for (int x = 2; x < cols; ++x) {
        if (params.row_skips.count(x) == 0) choices.emplace_back(false, x);
      }
      for (int x = 2; x < rows; ++x) {
        if (params.col_skips.count(x) == 0) choices.emplace_back(true, x);
      }
      if (choices.empty()) break;
      const auto [is_col, x] =
          choices[prng.below(choices.size())];
      topo::ShgParams child = params;
      std::vector<graph::Edge> new_edges;
      const topo::Topology parent_topo = topo::make_sparse_hamming(
          rows, cols, params.row_skips, params.col_skips);
      if (is_col) {
        child.col_skips.insert(x);
        for (int c = 0; c < cols; ++c) {
          for (int i = 0; i + x < rows; ++i) {
            new_edges.push_back(
                graph::Edge{i * cols + c, (i + x) * cols + c});
          }
        }
      } else {
        child.row_skips.insert(x);
        for (int r = 0; r < rows; ++r) {
          for (int i = 0; i + x < cols; ++i) {
            new_edges.push_back(graph::Edge{r * cols + i, r * cols + i + x});
          }
        }
      }
      const topo::Topology child_topo = topo::make_sparse_hamming(
          rows, cols, child.row_skips, child.col_skips);

      graph::BfsWorkspace parent_ws;
      graph::BfsWorkspace repair_ws;
      graph::BfsWorkspace fresh_ws;
      for (graph::NodeId s = 0; s < child_topo.graph().num_nodes(); ++s) {
        graph::bfs_distances(parent_topo.graph(), s, parent_ws);
        repair_ws.resize(child_topo.graph().num_nodes());
        std::copy(parent_ws.dist.begin(),
                  parent_ws.dist.begin() + child_topo.graph().num_nodes(),
                  repair_ws.dist.begin());
        graph::update_distances_add_edges(child_topo.graph(), new_edges,
                                          repair_ws);
        graph::bfs_distances(child_topo.graph(), s, fresh_ws);
        for (graph::NodeId v = 0; v < child_topo.graph().num_nodes(); ++v) {
          ASSERT_EQ(repair_ws.dist[static_cast<std::size_t>(v)],
                    fresh_ws.dist[static_cast<std::size_t>(v)])
              << rows << "x" << cols << " src " << s << " node " << v;
        }
      }
      // The repair must also match the fused summary when driven through
      // the screening context (histogram-fused statistics path).
      params = child;
    }
  }
}

TEST(ScreeningContext, ChildMatchesScreenCandidate) {
  const ArchParams arch = knc_scenario(KncScenario::kA);
  const ScreeningContext mesh_ctx(arch, topo::ShgParams{});
  expect_same_metrics(mesh_ctx.metrics(),
                      screen_candidate(arch, topo::ShgParams{}));
  for (const topo::ShgParams& child :
       {topo::ShgParams{{2}, {}}, topo::ShgParams{{5}, {}},
        topo::ShgParams{{}, {3}}, topo::ShgParams{{3, 4}, {2, 6}}}) {
    expect_same_metrics(mesh_ctx.screen_child(child),
                        screen_candidate(arch, child));
  }
  // Non-mesh parent, including derive() and rebase() chains.
  const topo::ShgParams parent{{3}, {2}};
  ScreeningContext ctx(arch, parent);
  const topo::ShgParams step1{{3}, {2, 5}};
  const topo::ShgParams step2{{3, 6}, {2, 5}};
  const ScreeningContext derived = ctx.derive(step1);
  expect_same_metrics(derived.metrics(), screen_candidate(arch, step1));
  expect_same_metrics(derived.screen_child(step2),
                      screen_candidate(arch, step2));
  ctx.rebase(step1);
  expect_same_metrics(ctx.metrics(), screen_candidate(arch, step1));
  expect_same_metrics(ctx.screen_child(step2),
                      screen_candidate(arch, step2));
}

TEST(ScreeningContext, RejectsNonSupersetChildren) {
  const ArchParams arch = knc_scenario(KncScenario::kA);
  const ScreeningContext ctx(arch, topo::ShgParams{{3}, {}});
  // Removing a skip distance deletes edges; distances can then grow, which
  // the add-edge repair cannot express — the context must refuse.
  EXPECT_THROW(ctx.screen_child(topo::ShgParams{}), Error);
  EXPECT_THROW(ctx.screen_child(topo::ShgParams{{4}, {}}), Error);
}

TEST(ScreeningBatch, RandomBatchesMatchFullScreening) {
  const ArchParams arch = knc_scenario(KncScenario::kA);
  Prng prng(42);
  std::vector<topo::ShgParams> batch;
  batch.push_back(topo::ShgParams{});  // the mesh
  for (int i = 0; i < 24; ++i) {
    topo::ShgParams params;
    for (int x = 2; x < arch.cols; ++x) {
      if (prng.chance(0.3)) params.row_skips.insert(x);
    }
    for (int x = 2; x < arch.rows; ++x) {
      if (prng.chance(0.3)) params.col_skips.insert(x);
    }
    batch.push_back(std::move(params));
  }
  batch.push_back(batch[3]);  // duplicates must screen consistently

  const std::vector<CandidateMetrics> incremental =
      screen_batch_incremental(arch, batch);
  ASSERT_EQ(incremental.size(), batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    expect_same_metrics(incremental[i], screen_candidate(arch, batch[i]));
  }
  // The oracle wraps exactly this comparison and must agree.
  EXPECT_NO_THROW(verify_incremental_equivalence(arch, batch));
}

TEST(ScreeningContext, RoutingReuseBitIdenticalToRowRepairPath) {
  // The topology-free fast path (routing context + overlay bit sweep) and
  // the row-repair path must produce the same bits candidate by candidate,
  // and both must match screen_candidate.
  const ArchParams arch = knc_scenario(KncScenario::kA);
  const topo::ShgParams parent{{3}, {2}};
  const ScreeningContext with_routing(arch, parent, ScreeningOptions{true});
  const ScreeningContext without_routing(arch, parent,
                                         ScreeningOptions{false});
  expect_same_metrics(with_routing.metrics(), without_routing.metrics());
  ScreeningContext::Workspace ws;
  model::TileGeometryCache tile_cache;
  for (const topo::ShgParams& child :
       {topo::ShgParams{{3, 4}, {2}}, topo::ShgParams{{3}, {2, 6}},
        topo::ShgParams{{3, 5, 7}, {2, 4}}, parent}) {
    const CandidateMetrics fast =
        with_routing.screen_child(child, &tile_cache, &ws);
    expect_same_metrics(fast, without_routing.screen_child(child));
    expect_same_metrics(fast, screen_candidate(arch, child));
  }
  // Non-superset children are rejected on both paths.
  EXPECT_THROW(with_routing.screen_child(topo::ShgParams{}), Error);
  // Rebase keeps the routing context keyed to the new parent.
  ScreeningContext rebased(arch, parent, ScreeningOptions{true});
  rebased.rebase(topo::ShgParams{{3, 4}, {2}});
  expect_same_metrics(
      rebased.screen_child(topo::ShgParams{{3, 4}, {2, 6}}),
      screen_candidate(arch, topo::ShgParams{{3, 4}, {2, 6}}));
}

TEST(ScreeningBatch, RoutingReuseTogglesBitIdentical) {
  const ArchParams arch = knc_scenario(KncScenario::kA);
  Prng prng(7);
  std::vector<topo::ShgParams> batch;
  batch.push_back(topo::ShgParams{});
  for (int i = 0; i < 16; ++i) {
    topo::ShgParams params;
    for (int x = 2; x < arch.cols; ++x) {
      if (prng.chance(0.3)) params.row_skips.insert(x);
    }
    for (int x = 2; x < arch.rows; ++x) {
      if (prng.chance(0.3)) params.col_skips.insert(x);
    }
    batch.push_back(std::move(params));
  }
  const auto with_routing =
      screen_batch_incremental(arch, batch, ScreeningOptions{true});
  const auto without_routing =
      screen_batch_incremental(arch, batch, ScreeningOptions{false});
  ASSERT_EQ(with_routing.size(), without_routing.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    expect_same_metrics(with_routing[i], without_routing[i]);
    expect_same_metrics(with_routing[i], screen_candidate(arch, batch[i]));
  }
  EXPECT_NO_THROW(
      verify_incremental_equivalence(arch, batch, ScreeningOptions{true}));
  EXPECT_NO_THROW(
      verify_incremental_equivalence(arch, batch, ScreeningOptions{false}));
}

TEST(Greedy, RoutingReuseIdenticalOnAndOff) {
  const ArchParams arch = knc_scenario(KncScenario::kA);
  SearchOptions routing_off;
  routing_off.incremental = true;
  routing_off.incremental_routing = false;
  SearchOptions routing_on;
  routing_on.incremental = true;
  routing_on.incremental_routing = true;
  for (double budget : {0.15, 0.40}) {
    expect_same_search_result(
        customize_greedy(arch, Goal{budget}, routing_off),
        customize_greedy(arch, Goal{budget}, routing_on));
  }
}

TEST(Exhaustive, RoutingReuseIdenticalOnAndOff) {
  const ArchParams arch = knc_scenario(KncScenario::kA);
  SearchOptions routing_off;
  routing_off.incremental_routing = false;
  SearchOptions routing_on;
  expect_same_search_result(
      customize_exhaustive(arch, Goal{0.30}, {2, 3, 4}, {2, 3}, routing_off),
      customize_exhaustive(arch, Goal{0.30}, {2, 3, 4}, {2, 3}, routing_on));
}

TEST(Explore, RoutingReuseIdenticalOnAndOff) {
  const ArchParams arch = knc_scenario(KncScenario::kA);
  ExploreOptions routing_off;
  routing_off.incremental_routing = false;
  ExploreOptions routing_on;
  for (auto explore : {explore_shg, explore_ruche}) {
    const auto a = explore(arch, routing_off);
    const auto b = explore(arch, routing_on);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].params, b[i].params);
      EXPECT_EQ(a[i].label, b[i].label);
      expect_same_metrics(a[i].metrics, b[i].metrics);
    }
  }
}

TEST(Greedy, IncrementalIdenticalToFull) {
  const ArchParams arch = knc_scenario(KncScenario::kA);
  SearchOptions full;
  full.incremental = false;
  SearchOptions incremental;
  incremental.incremental = true;
  for (double budget : {0.15, 0.40}) {
    expect_same_search_result(
        customize_greedy(arch, Goal{budget}, full),
        customize_greedy(arch, Goal{budget}, incremental));
  }
}

TEST(Exhaustive, IncrementalIdenticalToFull) {
  const ArchParams arch = knc_scenario(KncScenario::kA);
  SearchOptions full;
  full.incremental = false;
  SearchOptions incremental;
  incremental.incremental = true;
  expect_same_search_result(
      customize_exhaustive(arch, Goal{0.30}, {2, 3, 4}, {2, 3}, full),
      customize_exhaustive(arch, Goal{0.30}, {2, 3, 4}, {2, 3}, incremental));
  // Unsorted candidate lists exercise the canonical element ordering.
  expect_same_search_result(
      customize_exhaustive(arch, Goal{0.35}, {5, 2}, {4, 3}, full),
      customize_exhaustive(arch, Goal{0.35}, {5, 2}, {4, 3}, incremental));
}

TEST(Explore, IncrementalIdenticalToFull) {
  const ArchParams arch = knc_scenario(KncScenario::kA);
  ExploreOptions full;
  full.incremental = false;
  ExploreOptions incremental;
  incremental.incremental = true;
  for (auto explore : {explore_shg, explore_ruche}) {
    const auto a = explore(arch, full);
    const auto b = explore(arch, incremental);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].params, b[i].params);
      EXPECT_EQ(a[i].label, b[i].label);
      expect_same_metrics(a[i].metrics, b[i].metrics);
    }
  }
}

}  // namespace
}  // namespace shg::customize
