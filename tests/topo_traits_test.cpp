// Reproduction tests for Table I: the trait analyzer must recover the
// paper's qualitative judgments from the actual embedded graphs at the
// paper's evaluation scale (8x8 / 8x16 grids).
#include <gtest/gtest.h>

#include "shg/topo/generators.hpp"
#include "shg/topo/traits.hpp"

namespace shg::topo {
namespace {

using enum Compliance;

TEST(TableI, Ring8x8) {
  const auto t = analyze(make_ring(8, 8));
  EXPECT_EQ(t.radix, 2);
  EXPECT_EQ(t.diameter, 64 / 2);  // RC/2
  EXPECT_EQ(t.short_links, kYes);
  EXPECT_EQ(t.aligned_links, kYes);
  EXPECT_EQ(t.uniform_link_density, kPartial);
  EXPECT_EQ(t.port_placement, kNo);
  EXPECT_FALSE(t.minimal_paths_present);
  EXPECT_FALSE(t.minimal_paths_used);
}

TEST(TableI, Mesh8x8) {
  const auto t = analyze(make_mesh(8, 8));
  EXPECT_EQ(t.radix, 4);
  EXPECT_EQ(t.diameter, 8 + 8 - 2);
  EXPECT_EQ(t.short_links, kYes);
  EXPECT_EQ(t.aligned_links, kYes);
  EXPECT_EQ(t.uniform_link_density, kYes);
  EXPECT_EQ(t.port_placement, kYes);
  EXPECT_TRUE(t.minimal_paths_present);
  EXPECT_TRUE(t.minimal_paths_used);
}

TEST(TableI, Torus8x8) {
  const auto t = analyze(make_torus(8, 8));
  EXPECT_EQ(t.radix, 4);
  EXPECT_EQ(t.diameter, 8 / 2 + 8 / 2);
  EXPECT_EQ(t.short_links, kNo);
  EXPECT_EQ(t.aligned_links, kYes);
  EXPECT_EQ(t.uniform_link_density, kYes);
  EXPECT_EQ(t.port_placement, kYes);
  EXPECT_TRUE(t.minimal_paths_present);
  EXPECT_FALSE(t.minimal_paths_used);
}

TEST(TableI, FoldedTorus8x8) {
  const auto t = analyze(make_folded_torus(8, 8));
  EXPECT_EQ(t.radix, 4);
  EXPECT_EQ(t.diameter, 8 / 2 + 8 / 2);
  EXPECT_EQ(t.short_links, kPartial);
  EXPECT_EQ(t.aligned_links, kYes);
  EXPECT_EQ(t.uniform_link_density, kYes);
  EXPECT_EQ(t.port_placement, kYes);
  EXPECT_FALSE(t.minimal_paths_present);
  EXPECT_FALSE(t.minimal_paths_used);
}

TEST(TableI, Hypercube8x8) {
  const auto t = analyze(make_hypercube(8, 8));
  EXPECT_EQ(t.radix, 6);  // log2(RC)
  EXPECT_EQ(t.diameter, 6);
  EXPECT_EQ(t.short_links, kNo);
  EXPECT_EQ(t.aligned_links, kYes);
  EXPECT_EQ(t.uniform_link_density, kYes);
  EXPECT_EQ(t.port_placement, kYes);
  EXPECT_TRUE(t.minimal_paths_present);
  EXPECT_FALSE(t.minimal_paths_used);
}

TEST(TableI, SlimNoc8x16) {
  const auto t = analyze(make_slim_noc(8, 16));
  EXPECT_EQ(t.diameter, 2);
  EXPECT_EQ(t.short_links, kNo);
  EXPECT_EQ(t.aligned_links, kNo);
  EXPECT_EQ(t.uniform_link_density, kNo);
  EXPECT_EQ(t.port_placement, kNo);
  EXPECT_FALSE(t.minimal_paths_present);
  EXPECT_FALSE(t.minimal_paths_used);
}

TEST(TableI, FlattenedButterfly8x8) {
  const auto t = analyze(make_flattened_butterfly(8, 8));
  EXPECT_EQ(t.radix, 8 + 8 - 2);
  EXPECT_EQ(t.diameter, 2);
  EXPECT_EQ(t.short_links, kNo);
  EXPECT_EQ(t.aligned_links, kYes);
  EXPECT_EQ(t.uniform_link_density, kNo);
  EXPECT_EQ(t.port_placement, kYes);
  EXPECT_TRUE(t.minimal_paths_present);
  EXPECT_TRUE(t.minimal_paths_used);
}

TEST(TableI, SparseHammingSpansTheAdvertisedIntervals) {
  // Radix in [4, R+C-2], diameter in [2, R+C-2].
  const auto mesh_like = analyze(make_sparse_hamming(8, 8, {}, {}));
  EXPECT_EQ(mesh_like.radix, 4);
  EXPECT_EQ(mesh_like.diameter, 14);

  std::set<int> all;
  for (int x = 2; x < 8; ++x) all.insert(x);
  const auto fb_like = analyze(make_sparse_hamming(8, 8, all, all));
  EXPECT_EQ(fb_like.radix, 14);
  EXPECT_EQ(fb_like.diameter, 2);
}

TEST(TableI, SparseHammingParenthesizedColumns) {
  // (SL): achieved only for some parametrizations.
  EXPECT_EQ(analyze(make_sparse_hamming(8, 8, {}, {})).short_links, kYes);
  EXPECT_EQ(analyze(make_sparse_hamming(8, 8, {4}, {})).short_links, kNo);
  // AL: always yes (all skip links stay in their row/column).
  EXPECT_EQ(analyze(make_sparse_hamming(8, 8, {4}, {2, 5})).aligned_links,
            kYes);
  // (ULD): some parametrizations uniform, some not.
  EXPECT_EQ(analyze(make_sparse_hamming(8, 8, {2}, {2})).uniform_link_density,
            kYes);
  EXPECT_NE(analyze(make_sparse_hamming(8, 8, {4}, {4})).uniform_link_density,
            kYes);
  // OPP: always yes.
  EXPECT_EQ(analyze(make_sparse_hamming(8, 8, {4}, {2, 5})).port_placement,
            kYes);
  // Minimal paths present: always (mesh sub-topology).
  EXPECT_TRUE(
      analyze(make_sparse_hamming(8, 8, {4}, {2, 5})).minimal_paths_present);
  // (Used): holds for the mesh, broken by overshooting skips.
  EXPECT_TRUE(analyze(make_sparse_hamming(8, 8, {}, {})).minimal_paths_used);
  EXPECT_FALSE(
      analyze(make_sparse_hamming(8, 8, {4}, {})).minimal_paths_used);
}

TEST(TableI, PaperScenarioShgTraits) {
  // The customized configurations used in Figure 6 keep OPP and AL while
  // trading SL/ULD for diameter, exactly the design-principle trade the
  // paper describes.
  for (const auto& [rows, cols, sr, sc] :
       {std::tuple<int, int, std::set<int>, std::set<int>>{8, 8, {4}, {2, 5}},
        {8, 8, {2, 4}, {2, 4}},
        {8, 16, {3}, {2, 5}},
        {8, 16, {2, 4}, {2, 4}}}) {
    const auto t = analyze(make_sparse_hamming(rows, cols, sr, sc));
    EXPECT_EQ(t.aligned_links, kYes);
    EXPECT_EQ(t.port_placement, kYes);
    EXPECT_TRUE(t.minimal_paths_present);
    EXPECT_LT(t.diameter, rows + cols - 2);
    EXPECT_GE(t.diameter, 2);
  }
}

TEST(Traits, MetricsExposeEvidence) {
  const auto mesh = analyze(make_mesh(8, 8));
  EXPECT_EQ(mesh.metrics.max_link_length, 1);
  EXPECT_TRUE(mesh.metrics.all_axis_aligned);
  EXPECT_NEAR(mesh.metrics.cut_load_ratio, 1.0, 1e-9);
  EXPECT_NEAR(mesh.metrics.worst_channel_util, 1.0, 1e-9);
  EXPECT_EQ(mesh.metrics.max_row_links_per_tile, 2);
  EXPECT_EQ(mesh.metrics.max_col_links_per_tile, 2);

  const auto fb = analyze(make_flattened_butterfly(8, 8));
  // Peak cut load in a fully connected row of 8: 4*4 = 16; mean 12.
  EXPECT_NEAR(fb.metrics.cut_load_ratio, 16.0 / 12.0, 1e-9);
}

TEST(Traits, AverageHopsConsistentWithDiameter) {
  for (int dim = 4; dim <= 8; dim += 2) {
    const auto t = analyze(make_mesh(dim, dim));
    EXPECT_GT(t.avg_hops, 0.0);
    EXPECT_LE(t.avg_hops, t.diameter);
  }
}

}  // namespace
}  // namespace shg::topo
