// Integration tests for the full prediction toolchain (Fig. 3): cost model
// feeding link latencies into the cycle-accurate simulator.
#include <gtest/gtest.h>

#include "shg/eval/scenario.hpp"
#include "shg/eval/toolchain.hpp"
#include "shg/topo/generators.hpp"

namespace shg::eval {
namespace {

/// A small 4x4 architecture so the integration tests stay fast.
tech::ArchParams small_arch() {
  tech::ArchParams arch = tech::knc_scenario(tech::KncScenario::kA);
  arch.name = "small-4x4";
  arch.rows = 4;
  arch.cols = 4;
  return arch;
}

PerfConfig fast_perf(const tech::ArchParams& arch) {
  PerfConfig config = default_perf_config(arch);
  config.sim.num_vcs = 2;
  config.sim.buffer_depth_flits = 8;
  config.sim.warmup_cycles = 300;
  config.sim.measure_cycles = 1000;
  config.sim.drain_cycles = 20000;
  config.bisection_iterations = 5;
  return config;
}

TEST(Toolchain, PredictsMesh) {
  const tech::ArchParams arch = small_arch();
  const auto topo = topo::make_mesh(4, 4);
  const Prediction prediction = predict(arch, topo, fast_perf(arch));
  EXPECT_GT(prediction.cost.area_overhead, 0.0);
  EXPECT_LT(prediction.cost.area_overhead, 0.3);
  EXPECT_GT(prediction.perf.zero_load_latency_cycles, 4.0);
  EXPECT_LT(prediction.perf.zero_load_latency_cycles, 40.0);
  EXPECT_GT(prediction.perf.saturation_throughput, 0.1);
}

TEST(Toolchain, LinkLatenciesFeedTheSimulator) {
  // Same topology, but a technology with 4x slower wires: the cost model
  // must produce higher link latencies and the simulated zero-load latency
  // must rise accordingly.
  const auto topo = topo::make_flattened_butterfly(4, 4);
  tech::ArchParams fast_arch = small_arch();
  tech::ArchParams slow_arch = small_arch();
  slow_arch.tech.wire_delay_ps_per_mm *= 6.0;
  const Prediction fast = predict(fast_arch, topo, fast_perf(fast_arch));
  const Prediction slow = predict(slow_arch, topo, fast_perf(slow_arch));
  EXPECT_GT(slow.cost.avg_link_latency_cycles,
            fast.cost.avg_link_latency_cycles);
  EXPECT_GT(slow.perf.zero_load_latency_cycles,
            fast.perf.zero_load_latency_cycles);
}

TEST(Toolchain, FbTradesAreaForPerformance) {
  const tech::ArchParams arch = small_arch();
  const PerfConfig config = fast_perf(arch);
  const Prediction mesh = predict(arch, topo::make_mesh(4, 4), config);
  const Prediction fb =
      predict(arch, topo::make_flattened_butterfly(4, 4), config);
  EXPECT_GT(fb.cost.area_overhead, mesh.cost.area_overhead);
  EXPECT_GT(fb.perf.saturation_throughput, mesh.perf.saturation_throughput);
}

TEST(Scenarios, MatchThePaper) {
  const auto scenarios = figure6_scenarios();
  ASSERT_EQ(scenarios.size(), 4u);
  EXPECT_EQ(scenarios[0].label, "a");
  EXPECT_EQ(scenarios[0].arch.num_tiles(), 64);
  EXPECT_EQ(scenarios[0].shg, (topo::ShgParams{{4}, {2, 5}}));
  EXPECT_EQ(scenarios[1].shg, (topo::ShgParams{{2, 4}, {2, 4}}));
  EXPECT_EQ(scenarios[2].arch.num_tiles(), 128);
  EXPECT_EQ(scenarios[2].shg, (topo::ShgParams{{3}, {2, 5}}));
  EXPECT_EQ(scenarios[3].shg, (topo::ShgParams{{2, 4}, {2, 4}}));
}

TEST(Scenarios, TopologySuites) {
  // Scenario a (64 tiles): 6 established topologies + SHG.
  const auto a = scenario_topologies(figure6_scenario(tech::KncScenario::kA));
  EXPECT_EQ(a.size(), 7u);
  EXPECT_EQ(a.back().kind(), topo::Kind::kSparseHamming);
  // Scenario c (128 tiles): SlimNoC applies too.
  const auto c = scenario_topologies(figure6_scenario(tech::KncScenario::kC));
  EXPECT_EQ(c.size(), 8u);
}

TEST(Scenarios, ShgConfigsStayUnderBudgetInOurCalibration) {
  // The paper customizes to at most 40% NoC area overhead; our calibrated
  // model must agree that the published configurations respect that budget.
  for (const auto& scenario : figure6_scenarios()) {
    const auto topo = topo::make_sparse_hamming(
        scenario.arch.rows, scenario.arch.cols, scenario.shg.row_skips,
        scenario.shg.col_skips);
    const auto cost = predict_cost(scenario.arch, topo);
    EXPECT_LE(cost.area_overhead, 0.40)
        << "scenario " << scenario.label;
  }
}

}  // namespace
}  // namespace shg::eval
