#include "shg/phys/detailed_route.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <map>
#include <queue>
#include <unordered_map>
#include <unordered_set>

namespace shg::phys {

namespace {

/// Identifies one endpoint's port: which tile, which face.
struct PortKey {
  int tile = 0;
  Face face = Face::kNorth;

  friend bool operator<(const PortKey& a, const PortKey& b) {
    if (a.tile != b.tile) return a.tile < b.tile;
    return static_cast<int>(a.face) < static_cast<int>(b.face);
  }
};

/// Port position as a fraction along the face (0 = left/top corner).
using PortFractions =
    std::map<std::pair<graph::EdgeId, bool /*is_u*/>, double>;

/// Assigns port offsets: unit links take the face center (each face hosts at
/// most one unit link), longer links are spread evenly over the face.
PortFractions assign_ports(const topo::Topology& topo,
                           const GlobalRoutingResult& global) {
  // Collect the non-straight link endpoints per (tile, face).
  std::map<PortKey, std::vector<std::pair<graph::EdgeId, bool>>> by_face;
  PortFractions fractions;
  for (graph::EdgeId e = 0; e < topo.graph().num_edges(); ++e) {
    const auto& route = global.routes[static_cast<std::size_t>(e)];
    const auto& edge = topo.graph().edge(e);
    const auto [u, v] = std::minmax(edge.u, edge.v);
    if (route.straight) {
      fractions[{e, true}] = 0.5;
      fractions[{e, false}] = 0.5;
      continue;
    }
    by_face[PortKey{u, route.face_u}].emplace_back(e, true);
    by_face[PortKey{v, route.face_v}].emplace_back(e, false);
  }
  for (auto& [key, endpoints] : by_face) {
    std::sort(endpoints.begin(), endpoints.end());
    const double n = static_cast<double>(endpoints.size());
    for (std::size_t k = 0; k < endpoints.size(); ++k) {
      fractions[endpoints[k]] = (static_cast<double>(k) + 1.0) / (n + 1.0);
    }
  }
  return fractions;
}

PointMM port_position(const Floorplan& plan, const topo::TileCoord& tile,
                      Face face, double fraction) {
  const double x0 = plan.col_left(tile.col);
  const double y0 = plan.row_top(tile.row);
  switch (face) {
    case Face::kNorth:
      return {x0 + fraction * plan.tile_w(), y0};
    case Face::kSouth:
      return {x0 + fraction * plan.tile_w(), y0 + plan.tile_h()};
    case Face::kWest:
      return {x0, y0 + fraction * plan.tile_h()};
    case Face::kEast:
      return {x0 + plan.tile_w(), y0 + fraction * plan.tile_h()};
  }
  SHG_ASSERT(false, "unreachable");
  return {};
}

/// Left-edge track assignment: spans sorted by start position, each takes
/// the lowest-numbered track that is free at its start. Uses exactly
/// max-overlap tracks, which is what the step-3 spacing provides.
struct TrackAssignment {
  // Keyed by (channel horizontal?, channel index, edge id) -> track.
  std::map<std::tuple<bool, int, graph::EdgeId>, int> track;
};

TrackAssignment assign_tracks(const topo::Topology& topo,
                              const GlobalRoutingResult& global) {
  struct Item {
    int lo, hi;
    graph::EdgeId edge;
  };
  std::map<std::pair<bool, int>, std::vector<Item>> by_channel;
  for (graph::EdgeId e = 0; e < topo.graph().num_edges(); ++e) {
    for (const auto& span : global.routes[static_cast<std::size_t>(e)].spans) {
      by_channel[{span.horizontal, span.index}].push_back(
          Item{span.lo, span.hi, e});
    }
  }
  TrackAssignment result;
  for (auto& [channel, items] : by_channel) {
    std::sort(items.begin(), items.end(), [](const Item& a, const Item& b) {
      if (a.lo != b.lo) return a.lo < b.lo;
      if (a.hi != b.hi) return a.hi > b.hi;  // longer first at equal start
      return a.edge < b.edge;
    });
    // Min-heap of (end position, track id) for busy tracks; free list of
    // reusable track ids.
    std::priority_queue<std::pair<int, int>, std::vector<std::pair<int, int>>,
                        std::greater<>> busy;
    std::priority_queue<int, std::vector<int>, std::greater<>> free_tracks;
    int next_track = 0;
    for (const Item& item : items) {
      while (!busy.empty() && busy.top().first < item.lo) {
        free_tracks.push(busy.top().second);
        busy.pop();
      }
      int track;
      if (!free_tracks.empty()) {
        track = free_tracks.top();
        free_tracks.pop();
      } else {
        track = next_track++;
      }
      busy.emplace(item.hi, track);
      result.track[{channel.first, channel.second, item.edge}] = track;
    }
  }
  return result;
}

/// Accumulates unit-cell occupancy. Cells are deduplicated per link first so
/// a link visiting a cell twice (jog corner) is counted once.
class CellCounter {
 public:
  CellCounter(double cell_w, double cell_h)
      : cell_w_(cell_w), cell_h_(cell_h) {}

  void begin_link() {
    link_h_.clear();
    link_v_.clear();
  }

  void add_segment(const Segment& seg) {
    if (seg.length() <= 0.0) return;
    if (seg.horizontal) {
      const std::int64_t iy = cell_index(seg.a.y, cell_h_);
      const std::int64_t x0 = cell_index(std::min(seg.a.x, seg.b.x), cell_w_);
      const std::int64_t x1 = cell_index(std::max(seg.a.x, seg.b.x), cell_w_);
      for (std::int64_t ix = x0; ix <= x1; ++ix) {
        link_h_.insert(key(ix, iy));
      }
    } else {
      const std::int64_t ix = cell_index(seg.a.x, cell_w_);
      const std::int64_t y0 = cell_index(std::min(seg.a.y, seg.b.y), cell_h_);
      const std::int64_t y1 = cell_index(std::max(seg.a.y, seg.b.y), cell_h_);
      for (std::int64_t iy = y0; iy <= y1; ++iy) {
        link_v_.insert(key(ix, iy));
      }
    }
  }

  void end_link() {
    for (std::int64_t k : link_h_) ++h_counts_[k];
    for (std::int64_t k : link_v_) ++v_counts_[k];
  }

  long long h_cells() const { return static_cast<long long>(h_counts_.size()); }
  long long v_cells() const { return static_cast<long long>(v_counts_.size()); }

  long long collision_cells() const {
    long long collisions = 0;
    for (const auto& [k, count] : h_counts_) {
      if (count >= 2) ++collisions;
    }
    for (const auto& [k, count] : v_counts_) {
      if (count >= 2) ++collisions;
    }
    return collisions;
  }

 private:
  static std::int64_t cell_index(double coord, double cell) {
    return static_cast<std::int64_t>(std::floor(coord / cell));
  }
  static std::int64_t key(std::int64_t ix, std::int64_t iy) {
    return (iy << 24) ^ ix;
  }

  double cell_w_;
  double cell_h_;
  std::unordered_set<std::int64_t> link_h_;
  std::unordered_set<std::int64_t> link_v_;
  std::unordered_map<std::int64_t, int> h_counts_;
  std::unordered_map<std::int64_t, int> v_counts_;
};

double manhattan_to_center(const Floorplan& plan, const topo::TileCoord& tile,
                           PointMM port) {
  const PointMM center = plan.tile_center(tile.row, tile.col);
  return std::abs(center.x - port.x) + std::abs(center.y - port.y);
}

}  // namespace

DetailedRoutingResult detailed_route(const topo::Topology& topo,
                                     const Floorplan& plan,
                                     const GlobalRoutingResult& global) {
  SHG_REQUIRE(static_cast<int>(global.routes.size()) ==
                  topo.graph().num_edges(),
              "global routing result does not match topology");
  const PortFractions ports = assign_ports(topo, global);
  const TrackAssignment tracks = assign_tracks(topo, global);

  DetailedRoutingResult result;
  result.routes.resize(static_cast<std::size_t>(topo.graph().num_edges()));
  CellCounter cells(plan.cell_w(), plan.cell_h());

  for (graph::EdgeId e = 0; e < topo.graph().num_edges(); ++e) {
    const auto& groute = global.routes[static_cast<std::size_t>(e)];
    const auto& edge = topo.graph().edge(e);
    const auto [u, v] = std::minmax(edge.u, edge.v);
    const topo::TileCoord cu = topo.coord(u);
    const topo::TileCoord cv = topo.coord(v);
    const PointMM pu =
        port_position(plan, cu, groute.face_u, ports.at({e, true}));
    const PointMM pv =
        port_position(plan, cv, groute.face_v, ports.at({e, false}));

    DetailedRoute& route = result.routes[static_cast<std::size_t>(e)];
    auto add = [&route](PointMM a, PointMM b, bool horizontal) {
      route.segments.push_back(Segment{a, b, horizontal});
    };

    if (groute.straight) {
      // Adjacent tiles: straight crossing plus (usually zero-length) jog.
      if (cu.row == cv.row) {
        add(pu, {pv.x, pu.y}, true);
        add({pv.x, pu.y}, pv, false);
      } else {
        add(pu, {pu.x, pv.y}, false);
        add({pu.x, pv.y}, pv, true);
      }
    } else if (groute.spans.size() == 1 && groute.spans[0].horizontal) {
      // Same-row link through a horizontal channel.
      const auto& span = groute.spans[0];
      const int track = tracks.track.at({true, span.index, e});
      const double yt = plan.chan_h_top(span.index) +
                        (static_cast<double>(track) + 0.5) * plan.cell_h();
      add(pu, {pu.x, yt}, false);
      add({pu.x, yt}, {pv.x, yt}, true);
      add({pv.x, yt}, pv, false);
    } else if (groute.spans.size() == 1) {
      // Same-column link through a vertical channel.
      const auto& span = groute.spans[0];
      const int track = tracks.track.at({false, span.index, e});
      const double xt = plan.chan_v_left(span.index) +
                        (static_cast<double>(track) + 0.5) * plan.cell_w();
      add(pu, {xt, pu.y}, true);
      add({xt, pu.y}, {xt, pv.y}, false);
      add({xt, pv.y}, pv, true);
    } else {
      // Diagonal link: horizontal channel at u's row, vertical channel at
      // v's column.
      SHG_ASSERT(groute.spans.size() == 2, "L route must have two spans");
      const auto& hspan = groute.spans[0];
      const auto& vspan = groute.spans[1];
      const int htrack = tracks.track.at({true, hspan.index, e});
      const int vtrack = tracks.track.at({false, vspan.index, e});
      const double yt = plan.chan_h_top(hspan.index) +
                        (static_cast<double>(htrack) + 0.5) * plan.cell_h();
      const double xt = plan.chan_v_left(vspan.index) +
                        (static_cast<double>(vtrack) + 0.5) * plan.cell_w();
      add(pu, {pu.x, yt}, false);       // jog from u's port into the channel
      add({pu.x, yt}, {xt, yt}, true);  // run to the turning column
      add({xt, yt}, {xt, pv.y}, false);  // descend/ascend to v's row
      add({xt, pv.y}, pv, true);        // jog into v's port
    }

    cells.begin_link();
    for (const Segment& seg : route.segments) {
      route.channel_length_mm += seg.length();
      cells.add_segment(seg);
    }
    cells.end_link();
    route.total_length_mm = route.channel_length_mm +
                            manhattan_to_center(plan, cu, pu) +
                            manhattan_to_center(plan, cv, pv);
  }

  result.h_cells = cells.h_cells();
  result.v_cells = cells.v_cells();
  result.collision_cells = cells.collision_cells();
  return result;
}

}  // namespace shg::phys
