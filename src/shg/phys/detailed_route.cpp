#include "shg/phys/detailed_route.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <map>
#include <queue>
#include <unordered_map>
#include <unordered_set>

namespace shg::phys {

namespace {

/// Port positions as fractions along the owning face (0 = left/top corner),
/// one entry per edge endpoint (`u` = the lower-node-id end).
struct PortFractions {
  std::vector<double> u;
  std::vector<double> v;

  double at(graph::EdgeId e, bool is_u) const {
    return is_u ? u[static_cast<std::size_t>(e)]
                : v[static_cast<std::size_t>(e)];
  }
};

/// Assigns port offsets: unit links take the face center (each face hosts at
/// most one unit link), longer links are spread evenly over the face.
PortFractions assign_ports(const topo::Topology& topo,
                           const GlobalRoutingResult& global) {
  const std::size_t num_edges =
      static_cast<std::size_t>(topo.graph().num_edges());
  PortFractions fractions;
  fractions.u.assign(num_edges, 0.5);
  fractions.v.assign(num_edges, 0.5);
  // Collect the non-straight link endpoints per (tile, face); flat-indexed
  // buckets filled in ascending edge order, then sorted with the same
  // (edge, is_u) comparison the old map-of-vectors used — identical
  // per-face orders, identical fractions.
  std::vector<std::vector<std::pair<graph::EdgeId, bool>>> by_face(
      static_cast<std::size_t>(topo.num_tiles()) * 4);
  auto face_slot = [](int tile, Face face) {
    return static_cast<std::size_t>(tile) * 4 +
           static_cast<std::size_t>(face);
  };
  for (graph::EdgeId e = 0; e < topo.graph().num_edges(); ++e) {
    const auto& route = global.routes[static_cast<std::size_t>(e)];
    if (route.straight) continue;
    const auto& edge = topo.graph().edge(e);
    const auto [u, v] = std::minmax(edge.u, edge.v);
    by_face[face_slot(u, route.face_u)].emplace_back(e, true);
    by_face[face_slot(v, route.face_v)].emplace_back(e, false);
  }
  for (auto& endpoints : by_face) {
    if (endpoints.empty()) continue;
    std::sort(endpoints.begin(), endpoints.end());
    const double n = static_cast<double>(endpoints.size());
    for (std::size_t k = 0; k < endpoints.size(); ++k) {
      const double fraction = (static_cast<double>(k) + 1.0) / (n + 1.0);
      auto& side = endpoints[k].second ? fractions.u : fractions.v;
      side[static_cast<std::size_t>(endpoints[k].first)] = fraction;
    }
  }
  return fractions;
}

PointMM port_position(const Floorplan& plan, const topo::TileCoord& tile,
                      Face face, double fraction) {
  const double x0 = plan.col_left(tile.col);
  const double y0 = plan.row_top(tile.row);
  switch (face) {
    case Face::kNorth:
      return {x0 + fraction * plan.tile_w(), y0};
    case Face::kSouth:
      return {x0 + fraction * plan.tile_w(), y0 + plan.tile_h()};
    case Face::kWest:
      return {x0, y0 + fraction * plan.tile_h()};
    case Face::kEast:
      return {x0 + plan.tile_w(), y0 + fraction * plan.tile_h()};
  }
  SHG_ASSERT(false, "unreachable");
  return {};
}

/// Left-edge track assignment: spans sorted by start position, each takes
/// the lowest-numbered track that is free at its start. Uses exactly
/// max-overlap tracks, which is what the step-3 spacing provides. A link
/// occupies at most one span per orientation (aligned: one; L-shape: one of
/// each), so the assignment is stored per (edge, orientation).
struct TrackAssignment {
  std::vector<int> h;  ///< per edge; -1 = no horizontal span
  std::vector<int> v;

  int at(bool horizontal, graph::EdgeId e) const {
    const auto& side = horizontal ? h : v;
    const int track = side[static_cast<std::size_t>(e)];
    SHG_ASSERT(track >= 0, "link has no span in this orientation");
    return track;
  }
};

TrackAssignment assign_tracks(const topo::Topology& topo,
                              const GlobalRoutingResult& global) {
  struct Item {
    int lo, hi;
    graph::EdgeId edge;
  };
  // Channels flat-indexed: horizontal channels first ([0, rows]), then
  // vertical ([0, cols]); buckets fill in ascending edge order, as the old
  // map-of-vectors did.
  const std::size_t num_h = global.h_loads.size();
  std::vector<std::vector<Item>> by_channel(num_h + global.v_loads.size());
  for (graph::EdgeId e = 0; e < topo.graph().num_edges(); ++e) {
    for (const auto& span : global.routes[static_cast<std::size_t>(e)].spans) {
      const std::size_t slot =
          span.horizontal ? static_cast<std::size_t>(span.index)
                          : num_h + static_cast<std::size_t>(span.index);
      by_channel[slot].push_back(Item{span.lo, span.hi, e});
    }
  }
  TrackAssignment result;
  result.h.assign(static_cast<std::size_t>(topo.graph().num_edges()), -1);
  result.v.assign(static_cast<std::size_t>(topo.graph().num_edges()), -1);
  for (std::size_t slot = 0; slot < by_channel.size(); ++slot) {
    std::vector<Item>& items = by_channel[slot];
    if (items.empty()) continue;
    const bool horizontal = slot < num_h;
    std::sort(items.begin(), items.end(), [](const Item& a, const Item& b) {
      if (a.lo != b.lo) return a.lo < b.lo;
      if (a.hi != b.hi) return a.hi > b.hi;  // longer first at equal start
      return a.edge < b.edge;
    });
    // Min-heap of (end position, track id) for busy tracks; free list of
    // reusable track ids.
    std::priority_queue<std::pair<int, int>, std::vector<std::pair<int, int>>,
                        std::greater<>> busy;
    std::priority_queue<int, std::vector<int>, std::greater<>> free_tracks;
    int next_track = 0;
    for (const Item& item : items) {
      while (!busy.empty() && busy.top().first < item.lo) {
        free_tracks.push(busy.top().second);
        busy.pop();
      }
      int track;
      if (!free_tracks.empty()) {
        track = free_tracks.top();
        free_tracks.pop();
      } else {
        track = next_track++;
      }
      busy.emplace(item.hi, track);
      (horizontal ? result.h : result.v)[static_cast<std::size_t>(item.edge)] =
          track;
    }
  }
  return result;
}

/// Accumulates unit-cell occupancy. Cells are deduplicated per link (a link
/// visiting a cell twice — a jog corner — is counted once), and the three
/// outputs are exact cardinalities: distinct occupied cells per direction
/// and distinct cells holding >= 2 links.
///
/// Two interchangeable backends compute those cardinalities:
///
///  * a flat per-cell grid sized from the chip dimensions, with a per-link
///    stamp array for the dedup — O(1) unhashed work per visited cell.
///    Counting is folded into the visit (0->1 occupies a cell, 1->2 makes
///    it a collision), so no final scan is needed either;
///  * the original unordered hash containers, kept for chips whose cell
///    grid would not reasonably fit in memory.
///
/// Both count the same cells, so the reported numbers are identical; only
/// the constant factor differs (the hash path dominated the whole cost
/// model's runtime — see PERF.md).
class CellCounter {
 public:
  CellCounter(double cell_w, double cell_h, double chip_w, double chip_h)
      : cell_w_(cell_w), cell_h_(cell_h) {
    const std::int64_t nx = cell_index(chip_w, cell_w) + 2;
    const std::int64_t ny = cell_index(chip_h, cell_h) + 2;
    if (nx > 0 && ny > 0 && nx * ny <= kMaxGridCells) {
      nx_ = nx;
      ny_ = ny;
      const std::size_t cells = static_cast<std::size_t>(nx * ny);
      h_grid_.assign(cells, 0);
      v_grid_.assign(cells, 0);
      h_stamp_.assign(cells, 0);
      v_stamp_.assign(cells, 0);
    }
  }

  void begin_link() {
    if (grid()) {
      ++link_id_;
    } else {
      link_h_.clear();
      link_v_.clear();
    }
  }

  void add_segment(const Segment& seg) {
    if (seg.length() <= 0.0) return;
    if (seg.horizontal) {
      const std::int64_t iy = cell_index(seg.a.y, cell_h_);
      const std::int64_t x0 = cell_index(std::min(seg.a.x, seg.b.x), cell_w_);
      const std::int64_t x1 = cell_index(std::max(seg.a.x, seg.b.x), cell_w_);
      for (std::int64_t ix = x0; ix <= x1; ++ix) {
        if (grid()) {
          visit(ix, iy, h_grid_, h_stamp_, h_cells_);
        } else {
          link_h_.insert(key(ix, iy));
        }
      }
    } else {
      const std::int64_t ix = cell_index(seg.a.x, cell_w_);
      const std::int64_t y0 = cell_index(std::min(seg.a.y, seg.b.y), cell_h_);
      const std::int64_t y1 = cell_index(std::max(seg.a.y, seg.b.y), cell_h_);
      for (std::int64_t iy = y0; iy <= y1; ++iy) {
        if (grid()) {
          visit(ix, iy, v_grid_, v_stamp_, v_cells_);
        } else {
          link_v_.insert(key(ix, iy));
        }
      }
    }
  }

  void end_link() {
    if (grid()) return;  // the grid path counts at visit time
    for (std::int64_t k : link_h_) ++h_counts_[k];
    for (std::int64_t k : link_v_) ++v_counts_[k];
  }

  long long h_cells() const {
    return grid() ? h_cells_ : static_cast<long long>(h_counts_.size());
  }
  long long v_cells() const {
    return grid() ? v_cells_ : static_cast<long long>(v_counts_.size());
  }

  long long collision_cells() const {
    if (grid()) return collision_cells_;
    long long collisions = 0;
    for (const auto& [k, count] : h_counts_) {
      if (count >= 2) ++collisions;
    }
    for (const auto& [k, count] : v_counts_) {
      if (count >= 2) ++collisions;
    }
    return collisions;
  }

 private:
  /// Grid backend cap: ~16M cells (~256 MB of grids would be the next power
  /// of two; at the cap the four arrays hold ~160 MB less — still far below
  /// what the hash containers would consume for that many occupied cells,
  /// but large fabrics with micron cells fall back to hashing).
  static constexpr std::int64_t kMaxGridCells = std::int64_t{1} << 24;

  bool grid() const { return nx_ > 0; }

  void visit(std::int64_t ix, std::int64_t iy, std::vector<std::int32_t>& g,
             std::vector<std::int32_t>& stamp, long long& cells) {
    SHG_ASSERT(ix >= 0 && ix < nx_ && iy >= 0 && iy < ny_,
               "detailed-route segment leaves the chip cell grid");
    const std::size_t idx = static_cast<std::size_t>(iy * nx_ + ix);
    if (stamp[idx] == link_id_) return;  // this link already counted it
    stamp[idx] = link_id_;
    const std::int32_t count = ++g[idx];
    if (count == 1) {
      ++cells;
    } else if (count == 2) {
      ++collision_cells_;
    }
  }

  static std::int64_t cell_index(double coord, double cell) {
    return static_cast<std::int64_t>(std::floor(coord / cell));
  }
  static std::int64_t key(std::int64_t ix, std::int64_t iy) {
    return (iy << 24) ^ ix;
  }

  double cell_w_;
  double cell_h_;

  // Grid backend (active when nx_ > 0).
  std::int64_t nx_ = 0;
  std::int64_t ny_ = 0;
  std::int32_t link_id_ = 0;  ///< 0 = "never visited" stamp
  std::vector<std::int32_t> h_grid_;
  std::vector<std::int32_t> v_grid_;
  std::vector<std::int32_t> h_stamp_;
  std::vector<std::int32_t> v_stamp_;
  long long h_cells_ = 0;
  long long v_cells_ = 0;
  long long collision_cells_ = 0;

  // Hash backend.
  std::unordered_set<std::int64_t> link_h_;
  std::unordered_set<std::int64_t> link_v_;
  std::unordered_map<std::int64_t, int> h_counts_;
  std::unordered_map<std::int64_t, int> v_counts_;
};

double manhattan_to_center(const Floorplan& plan, const topo::TileCoord& tile,
                           PointMM port) {
  const PointMM center = plan.tile_center(tile.row, tile.col);
  return std::abs(center.x - port.x) + std::abs(center.y - port.y);
}

}  // namespace

DetailedRoutingResult detailed_route(const topo::Topology& topo,
                                     const Floorplan& plan,
                                     const GlobalRoutingResult& global) {
  SHG_REQUIRE(static_cast<int>(global.routes.size()) ==
                  topo.graph().num_edges(),
              "global routing result does not match topology");
  const PortFractions ports = assign_ports(topo, global);
  const TrackAssignment tracks = assign_tracks(topo, global);

  DetailedRoutingResult result;
  result.routes.resize(static_cast<std::size_t>(topo.graph().num_edges()));
  CellCounter cells(plan.cell_w(), plan.cell_h(), plan.chip_width(),
                    plan.chip_height());

  for (graph::EdgeId e = 0; e < topo.graph().num_edges(); ++e) {
    const auto& groute = global.routes[static_cast<std::size_t>(e)];
    const auto& edge = topo.graph().edge(e);
    const auto [u, v] = std::minmax(edge.u, edge.v);
    const topo::TileCoord cu = topo.coord(u);
    const topo::TileCoord cv = topo.coord(v);
    const PointMM pu =
        port_position(plan, cu, groute.face_u, ports.at(e, true));
    const PointMM pv =
        port_position(plan, cv, groute.face_v, ports.at(e, false));

    DetailedRoute& route = result.routes[static_cast<std::size_t>(e)];
    auto add = [&route](PointMM a, PointMM b, bool horizontal) {
      route.segments.push_back(Segment{a, b, horizontal});
    };

    if (groute.straight) {
      // Adjacent tiles: straight crossing plus (usually zero-length) jog.
      if (cu.row == cv.row) {
        add(pu, {pv.x, pu.y}, true);
        add({pv.x, pu.y}, pv, false);
      } else {
        add(pu, {pu.x, pv.y}, false);
        add({pu.x, pv.y}, pv, true);
      }
    } else if (groute.spans.size() == 1 && groute.spans[0].horizontal) {
      // Same-row link through a horizontal channel.
      const auto& span = groute.spans[0];
      const int track = tracks.at(true, e);
      const double yt = plan.chan_h_top(span.index) +
                        (static_cast<double>(track) + 0.5) * plan.cell_h();
      add(pu, {pu.x, yt}, false);
      add({pu.x, yt}, {pv.x, yt}, true);
      add({pv.x, yt}, pv, false);
    } else if (groute.spans.size() == 1) {
      // Same-column link through a vertical channel.
      const auto& span = groute.spans[0];
      const int track = tracks.at(false, e);
      const double xt = plan.chan_v_left(span.index) +
                        (static_cast<double>(track) + 0.5) * plan.cell_w();
      add(pu, {xt, pu.y}, true);
      add({xt, pu.y}, {xt, pv.y}, false);
      add({xt, pv.y}, pv, true);
    } else {
      // Diagonal link: horizontal channel at u's row, vertical channel at
      // v's column.
      SHG_ASSERT(groute.spans.size() == 2, "L route must have two spans");
      const auto& hspan = groute.spans[0];
      const auto& vspan = groute.spans[1];
      const int htrack = tracks.at(true, e);
      const int vtrack = tracks.at(false, e);
      const double yt = plan.chan_h_top(hspan.index) +
                        (static_cast<double>(htrack) + 0.5) * plan.cell_h();
      const double xt = plan.chan_v_left(vspan.index) +
                        (static_cast<double>(vtrack) + 0.5) * plan.cell_w();
      add(pu, {pu.x, yt}, false);       // jog from u's port into the channel
      add({pu.x, yt}, {xt, yt}, true);  // run to the turning column
      add({xt, yt}, {xt, pv.y}, false);  // descend/ascend to v's row
      add({xt, pv.y}, pv, true);        // jog into v's port
    }

    cells.begin_link();
    for (const Segment& seg : route.segments) {
      route.channel_length_mm += seg.length();
      cells.add_segment(seg);
    }
    cells.end_link();
    route.total_length_mm = route.channel_length_mm +
                            manhattan_to_center(plan, cu, pu) +
                            manhattan_to_center(plan, cv, pv);
  }

  result.h_cells = cells.h_cells();
  result.v_cells = cells.v_cells();
  result.collision_cells = cells.collision_cells();
  return result;
}

}  // namespace shg::phys
