// Global routing in the grid of tiles (step 2 of the model, Fig. 5b).
//
// Links cannot be routed over tiles (Section II-A: tiles occupy all metal
// layers), so every link is assigned a path through the channels between
// tile rows/columns. As in real VLSI design, a greedy heuristic assigns
// each link (longest first) the channel(s) that minimize congestion, then
// the per-channel peak loads drive the spacing estimate of step 3.
//
// Route shapes:
//  * unit-length links cross the single channel between the two adjacent
//    tiles directly ("short links come with minuscule area overheads");
//  * same-row links of length >= 2 run in the horizontal channel above or
//    below their row (ports on the tile's north/south face);
//  * same-column links run in a vertical channel (east/west ports);
//  * diagonal links (SlimNoC) take an L: one horizontal + one vertical
//    channel span.
#pragma once

#include <vector>

#include "shg/topo/topology.hpp"

namespace shg::phys {

/// Tile face a port sits on.
enum class Face { kNorth, kSouth, kEast, kWest };

/// A contiguous occupation of one channel. For horizontal channels,
/// positions lo..hi are tile-column indices the wire runs alongside; for
/// vertical channels they are tile-row indices.
struct ChannelSpan {
  bool horizontal = true;
  int index = 0;  ///< channel index: [0, R] horizontal / [0, C] vertical
  int lo = 0;
  int hi = 0;  ///< inclusive; lo <= hi
};

/// Global route of one link.
struct GlobalRoute {
  bool straight = false;  ///< unit link: direct port-to-port crossing
  std::vector<ChannelSpan> spans;  ///< empty / 1 (aligned) / 2 (L-shape)
  Face face_u = Face::kEast;  ///< port face at the lower-id endpoint
  Face face_v = Face::kWest;  ///< port face at the other endpoint
};

/// Result of global routing: per-link routes plus channel load profiles.
struct GlobalRoutingResult {
  std::vector<GlobalRoute> routes;        ///< indexed by EdgeId
  std::vector<std::vector<int>> h_loads;  ///< [rows+1][cols] cut loads
  std::vector<std::vector<int>> v_loads;  ///< [cols+1][rows] cut loads

  /// Peak number of parallel links in horizontal channel i (the NL of the
  /// spacing formula in step 3). Throws shg::Error when `channel` is outside
  /// [0, rows] — a silent out-of-range read here would feed garbage spacing
  /// into the cost model.
  int max_h_load(int channel) const;
  /// Peak number of parallel links in vertical channel j. Throws shg::Error
  /// when `channel` is outside [0, cols].
  int max_v_load(int channel) const;
};

/// Runs greedy global routing for all links of a topology.
GlobalRoutingResult global_route(const topo::Topology& topo);

/// Loads-only variant for screening: takes exactly the same routing
/// decisions (same greedy order, same candidate evaluation and tie-breaks,
/// so h_loads / v_loads are bit-identical to global_route's) but does not
/// materialize the per-link GlobalRoute objects, whose span vectors
/// dominate the routine's cost. `routes` is left empty. Step 3 of the cost
/// model only reads the load profiles, which makes this the hot-path entry
/// for DSE screening.
GlobalRoutingResult global_route_loads(const topo::Topology& topo);

}  // namespace shg::phys
