#include "shg/phys/floorplan.hpp"

namespace shg::phys {

Floorplan::Floorplan(int rows, int cols, double tile_w, double tile_h,
                     std::vector<double> h_spacing,
                     std::vector<double> v_spacing, double cell_w,
                     double cell_h)
    : rows_(rows),
      cols_(cols),
      tile_w_(tile_w),
      tile_h_(tile_h),
      h_spacing_(std::move(h_spacing)),
      v_spacing_(std::move(v_spacing)),
      cell_w_(cell_w),
      cell_h_(cell_h) {
  SHG_REQUIRE(rows_ >= 1 && cols_ >= 1, "grid must be non-empty");
  SHG_REQUIRE(tile_w_ > 0.0 && tile_h_ > 0.0, "tile dims must be positive");
  SHG_REQUIRE(cell_w_ > 0.0 && cell_h_ > 0.0, "cell dims must be positive");
  SHG_REQUIRE(static_cast<int>(h_spacing_.size()) == rows_ + 1,
              "need rows+1 horizontal channel spacings");
  SHG_REQUIRE(static_cast<int>(v_spacing_.size()) == cols_ + 1,
              "need cols+1 vertical channel spacings");
  for (double s : h_spacing_) SHG_REQUIRE(s >= 0.0, "spacing must be >= 0");
  for (double s : v_spacing_) SHG_REQUIRE(s >= 0.0, "spacing must be >= 0");

  chan_h_top_.resize(h_spacing_.size());
  double y = 0.0;
  for (int i = 0; i <= rows_; ++i) {
    chan_h_top_[static_cast<std::size_t>(i)] = y;
    y += h_spacing_[static_cast<std::size_t>(i)];
    if (i < rows_) y += tile_h_;
  }
  chip_height_ = y;

  chan_v_left_.resize(v_spacing_.size());
  double x = 0.0;
  for (int j = 0; j <= cols_; ++j) {
    chan_v_left_[static_cast<std::size_t>(j)] = x;
    x += v_spacing_[static_cast<std::size_t>(j)];
    if (j < cols_) x += tile_w_;
  }
  chip_width_ = x;
}

double Floorplan::chan_h_top(int i) const {
  SHG_REQUIRE(i >= 0 && i <= rows_, "horizontal channel index out of range");
  return chan_h_top_[static_cast<std::size_t>(i)];
}

double Floorplan::chan_h_height(int i) const {
  SHG_REQUIRE(i >= 0 && i <= rows_, "horizontal channel index out of range");
  return h_spacing_[static_cast<std::size_t>(i)];
}

double Floorplan::chan_v_left(int j) const {
  SHG_REQUIRE(j >= 0 && j <= cols_, "vertical channel index out of range");
  return chan_v_left_[static_cast<std::size_t>(j)];
}

double Floorplan::chan_v_width(int j) const {
  SHG_REQUIRE(j >= 0 && j <= cols_, "vertical channel index out of range");
  return v_spacing_[static_cast<std::size_t>(j)];
}

double Floorplan::row_top(int r) const {
  SHG_REQUIRE(r >= 0 && r < rows_, "row out of range");
  return chan_h_top(r) + h_spacing_[static_cast<std::size_t>(r)];
}

double Floorplan::col_left(int c) const {
  SHG_REQUIRE(c >= 0 && c < cols_, "column out of range");
  return chan_v_left(c) + v_spacing_[static_cast<std::size_t>(c)];
}

PointMM Floorplan::tile_center(int r, int c) const {
  return PointMM{col_left(c) + tile_w_ / 2.0, row_top(r) + tile_h_ / 2.0};
}

}  // namespace shg::phys
