// Incremental global routing for DSE screening (cost-model step 2).
//
// The customization flow prices every screened candidate through the greedy
// channel router, yet consecutive candidates differ from a cached parent by
// a handful of added skip links. This module reuses the parent's routing
// work across such children.
//
// Why a naive load patch is wrong: the router assigns channels longest link
// first, and every decision reads the loads committed by all earlier
// decisions. Inserting a new link of grid length x therefore perturbs the
// decisions of every link routed after it — but of NO link routed before
// it. Links are ordered by length class (descending; original edge order
// within a class), so:
//
//   * classes with length > x see exactly the same links in the same order
//     against the same load state — their decisions, and the load profile
//     they leave behind, are bit-identical to the parent run;
//   * classes with length <= x must be re-routed ("the affected suffix").
//
// A `RoutingContext` runs the parent once, recording the channel-load
// snapshot at every length-class boundary (the per-link channel assignments
// of the prefix are aggregated in those snapshots). Repairing a child means
// restoring the boundary snapshot of the largest divergent class and
// replaying the shared greedy core (route_core.hpp) over the suffix — the
// same decision code `global_route` runs, started from a state it provably
// reaches, so the repaired loads are bit-identical to `global_route_loads`
// on the child. The randomized differential oracle in
// tests/phys_incremental_test.cpp asserts exactly that.
//
// Orientation split: same-row links read and write only horizontal-channel
// loads, same-column links only vertical ones. When neither parent nor
// child has a diagonal (L-shaped, SlimNoC-style) link in the divergent
// suffix, the two orientations are independent decision streams, and each
// is repaired from its own divergence class — adding a row skip leaves the
// vertical profile untouched entirely. Diagonal links couple the streams
// (their channel choice reads both profiles), so any diagonal at or below
// the divergence class forces a joint replay of both.
//
// Relaxed mode (`RoutingOptions::relaxed`): instead of re-routing the
// suffix, the parent's placements are frozen and only the child's new links
// are routed greedily on top of the parent's final loads. The result is
// NOT bit-identical; its error is bounded: relaxed and exact runs differ
// only in the placement of suffix links, each of which shifts at most one
// unit of load between candidate channels, so for every channel
//
//   |peak_relaxed - peak_exact| <= D,
//
// where D is the number of child links with grid length in [2, L] and L is
// the largest divergent class. The oracle checks this bound. Relaxed mode
// exists for throwaway screening sweeps where a constant-time repair
// matters more than exactness; the DSE flow always uses the exact mode
// (search winners must be bit-identical with the reuse on or off).
//
// == Exactness & concurrency ==============================================
//
//  * Exactness. With `RoutingOptions::relaxed == false` (the default),
//    every `route_child_loads` overload returns load profiles BIT-IDENTICAL
//    to `global_route_loads` on the materialized child — guaranteed by
//    executing the shared decision core (phys/route_core.hpp) over a state
//    the from-scratch run provably reaches, and asserted by the randomized
//    differential oracle in tests/phys_incremental_test.cpp. With
//    `relaxed == true` the result is bounded-error only (per-channel peak
//    within D of exact, total load mass exact); never feed relaxed loads
//    into a flow that promises bit-identical outcomes.
//  * Concurrency. A constructed RoutingContext is immutable; every
//    `route_child_loads` overload is const and touches only caller-owned
//    output state, so ANY number of threads may repair children against
//    one shared context concurrently (the screening engines do exactly
//    that, with one `GlobalRoutingResult` scratch per worker).
//    Construction itself must be exclusive — build the context before
//    fanning out.
#pragma once

#include <vector>

#include "shg/phys/global_route.hpp"

namespace shg::phys {

/// One router-to-router link in grid coordinates — the currency of the
/// generic added-links repair below. Endpoint order is normalized
/// internally (lower node id first), so callers may pass either order.
struct GridLink {
  topo::TileCoord a;
  topo::TileCoord b;

  friend bool operator==(const GridLink&, const GridLink&) = default;
};

/// Knobs of the incremental router.
struct RoutingOptions {
  /// Relaxed-equivalence mode: place only new links on top of the parent's
  /// frozen placements. Bounded per-channel peak error (see file comment);
  /// never bit-identical unless the suffix replay would not have moved any
  /// link. Default off = exact suffix replay.
  bool relaxed = false;
};

/// Cached global-routing state of one parent topology.
class RoutingContext {
 public:
  /// Routes `parent` once (loads only), recording the length-class boundary
  /// snapshots the repairs below restore. The parent topology is not
  /// retained; re-keying a context onto a new parent is a fresh
  /// construction (one loads-only route — the same cost the cache saves per
  /// screened child, paid once per accepted DSE step).
  explicit RoutingContext(const topo::Topology& parent,
                          RoutingOptions options = {});

  const RoutingOptions& options() const { return options_; }
  int rows() const { return rows_; }
  int cols() const { return cols_; }

  /// Channel loads of the parent itself; bit-identical to
  /// `global_route_loads(parent)` (routes are not materialized).
  const GlobalRoutingResult& loads() const { return final_; }

  /// Repairs the cached profiles for an arbitrary `child` over the same
  /// grid. Divergence is detected per length class by comparing link
  /// geometry, so any child works — a child sharing no long-link prefix
  /// with the parent simply degenerates to a full re-route. Exact mode is
  /// bit-identical to `global_route_loads(child)`; relaxed mode obeys the
  /// documented bound. `routes` is left empty.
  GlobalRoutingResult route_child_loads(const topo::Topology& child) const;

  /// SHG fast path: the child is the parent plus the skip links of the
  /// given new skip distances, in `topo::for_each_skip_link` order (what
  /// `make_sparse_hamming` produces for a skip-superset child, appended
  /// after any same-length parent links). No child Topology is
  /// materialized — the replay enumerates the new links directly from the
  /// skip definition — which removes the child graph construction from the
  /// screening hot path. Requires a parent without diagonal links (the
  /// orientation split must apply); new skips must be strictly ascending
  /// (checked) and absent from the parent's same-orientation classes
  /// produced by skips.
  ///
  /// `out` is overwritten and may be reused across calls to keep the load
  /// grids' heap allocations warm.
  void route_child_loads(const std::vector<int>& new_row_skips,
                         const std::vector<int>& new_col_skips,
                         GlobalRoutingResult* out) const;

  /// Generic added-links fast path: the child is the parent plus
  /// `new_links`, appended after the parent's edges in the given order —
  /// exactly the child a copy of the parent plus `add_link` calls in that
  /// order would produce (links absent from the parent; the context cannot
  /// check this, it no longer holds the parent graph). No child Topology
  /// is materialized. Unlike the skip-distance overload, diagonal links
  /// are allowed anywhere: a diagonal at or below the divergence class
  /// (largest new non-unit class) couples the channel orientations and
  /// forces a joint replay of both; otherwise each orientation replays
  /// from its own divergence. Exact mode is bit-identical to
  /// `global_route_loads` on the materialized child; relaxed mode obeys
  /// the documented bound. This is what lets non-SHG families (SlimNoC,
  /// torus, arbitrary overlay children) flow through the same incremental
  /// screening stack as SHG candidates.
  ///
  /// `out` is overwritten and may be reused across calls.
  void route_child_loads(const std::vector<GridLink>& new_links,
                         GlobalRoutingResult* out) const;

 private:
  /// One link in greedy-order position: `a` is the lower-node-id endpoint
  /// (the L-shape of a diagonal turns at b's column, so the pair is
  /// ordered).
  using LinkRec = GridLink;
  /// All non-unit links of one length class, in greedy (edge-id) order,
  /// preceded by the load state the greedy run reaches just before routing
  /// the class.
  struct ClassEntry {
    int len = 0;
    std::vector<LinkRec> links;
    std::vector<std::vector<int>> h_before;
    std::vector<std::vector<int>> v_before;
  };

  static bool is_h(const LinkRec& r) { return r.a.row == r.b.row; }
  static bool is_v(const LinkRec& r) { return r.a.col == r.b.col; }
  static bool is_diag(const LinkRec& r) { return !is_h(r) && !is_v(r); }

  /// Load state after all parent classes with length > `len` (the boundary
  /// a suffix replay starting at class `len` restores).
  void state_before(int len, std::vector<std::vector<int>>* h,
                    std::vector<std::vector<int>>* v) const;

  void replay_new_row_skip(int skip, GlobalRoutingResult& result) const;
  void replay_new_col_skip(int skip, GlobalRoutingResult& result) const;

  int rows_ = 0;
  int cols_ = 0;
  RoutingOptions options_;
  std::vector<ClassEntry> classes_;  ///< descending by len; len >= 2 only
  GlobalRoutingResult final_;        ///< parent loads; routes empty
  int min_diag_len_ = 0;  ///< smallest diagonal class; INT_MAX if none
};

}  // namespace shg::phys
