#include "shg/phys/incremental_route.hpp"

#include <algorithm>
#include <cstdlib>
#include <limits>
#include <map>
#include <tuple>

#include "shg/phys/route_core.hpp"

namespace shg::phys {

RoutingContext::RoutingContext(const topo::Topology& parent,
                               RoutingOptions options)
    : rows_(parent.rows()),
      cols_(parent.cols()),
      options_(options),
      min_diag_len_(std::numeric_limits<int>::max()) {
  // Bucket the parent's non-unit links by grid length. Iterating edges in
  // ascending id order and appending keeps each bucket in the greedy
  // routine's within-class order (its counting sort is stable).
  const graph::Graph& g = parent.graph();
  int max_len = 1;
  std::vector<std::vector<LinkRec>> buckets;
  for (graph::EdgeId e = 0; e < g.num_edges(); ++e) {
    const int len = parent.link_grid_length(e);
    if (len <= 1) continue;  // unit links occupy no channel capacity
    if (len > max_len) {
      max_len = len;
      if (static_cast<int>(buckets.size()) <= max_len) {
        buckets.resize(static_cast<std::size_t>(max_len) + 1);
      }
    }
    const auto& edge = g.edge(e);
    const auto [u, v] = std::minmax(edge.u, edge.v);
    const LinkRec rec{parent.coord(u), parent.coord(v)};
    if (is_diag(rec)) min_diag_len_ = std::min(min_diag_len_, len);
    buckets[static_cast<std::size_t>(len)].push_back(rec);
  }

  // Route the classes longest first, photographing the load state at every
  // class boundary — the states a suffix replay restores.
  final_.h_loads.assign(static_cast<std::size_t>(rows_) + 1,
                        std::vector<int>(static_cast<std::size_t>(cols_), 0));
  final_.v_loads.assign(static_cast<std::size_t>(cols_) + 1,
                        std::vector<int>(static_cast<std::size_t>(rows_), 0));
  for (int len = max_len; len >= 2; --len) {
    if (len >= static_cast<int>(buckets.size()) ||
        buckets[static_cast<std::size_t>(len)].empty()) {
      continue;
    }
    ClassEntry entry;
    entry.len = len;
    entry.links = std::move(buckets[static_cast<std::size_t>(len)]);
    entry.h_before = final_.h_loads;
    entry.v_before = final_.v_loads;
    for (const LinkRec& rec : entry.links) {
      detail::route_and_commit(rec.a, rec.b, final_.h_loads, final_.v_loads);
    }
    classes_.push_back(std::move(entry));
  }
}

void RoutingContext::state_before(int len, std::vector<std::vector<int>>* h,
                                  std::vector<std::vector<int>>* v) const {
  // classes_ is descending; the first class with length <= len owns the
  // boundary snapshot "after everything longer than len" (no parent class
  // lies strictly between). With no such class every parent class is
  // longer, i.e. the state is the parent's final one.
  for (const ClassEntry& entry : classes_) {
    if (entry.len <= len) {
      if (h != nullptr) *h = entry.h_before;
      if (v != nullptr) *v = entry.v_before;
      return;
    }
  }
  if (h != nullptr) *h = final_.h_loads;
  if (v != nullptr) *v = final_.v_loads;
}

void RoutingContext::replay_new_row_skip(int skip,
                                         GlobalRoutingResult& result) const {
  // for_each_skip_link order for one row-skip class: rows ascending, start
  // columns ascending; the lower node id is always the left endpoint.
  for (int r = 0; r < rows_; ++r) {
    for (int i = 0; i + skip < cols_; ++i) {
      detail::route_and_commit(topo::TileCoord{r, i},
                               topo::TileCoord{r, i + skip}, result.h_loads,
                               result.v_loads);
    }
  }
}

void RoutingContext::replay_new_col_skip(int skip,
                                         GlobalRoutingResult& result) const {
  for (int c = 0; c < cols_; ++c) {
    for (int i = 0; i + skip < rows_; ++i) {
      detail::route_and_commit(topo::TileCoord{i, c},
                               topo::TileCoord{i + skip, c}, result.h_loads,
                               result.v_loads);
    }
  }
}

void RoutingContext::route_child_loads(const std::vector<int>& new_row_skips,
                                       const std::vector<int>& new_col_skips,
                                       GlobalRoutingResult* out) const {
  SHG_REQUIRE(out != nullptr, "output result required");
  SHG_REQUIRE(min_diag_len_ == std::numeric_limits<int>::max(),
              "the skip fast path requires a parent without diagonal links");
  // The replay below walks the new skips in descending class order via a
  // single reverse cursor; an unsorted list would silently skip classes,
  // so sortedness is a checked precondition (skip_delta and std::set
  // iteration produce ascending lists naturally).
  int max_row_skip = 0;
  for (std::size_t i = 0; i < new_row_skips.size(); ++i) {
    const int x = new_row_skips[i];
    SHG_REQUIRE(x >= 2 && x < cols_,
                "row skip distances must lie in {2..C-1} (Section III-b)");
    SHG_REQUIRE(i == 0 || new_row_skips[i - 1] < x,
                "new row skips must be strictly ascending");
    max_row_skip = std::max(max_row_skip, x);
  }
  int max_col_skip = 0;
  for (std::size_t i = 0; i < new_col_skips.size(); ++i) {
    const int x = new_col_skips[i];
    SHG_REQUIRE(x >= 2 && x < rows_,
                "column skip distances must lie in {2..R-1} (Section III-b)");
    SHG_REQUIRE(i == 0 || new_col_skips[i - 1] < x,
                "new column skips must be strictly ascending");
    max_col_skip = std::max(max_col_skip, x);
  }

  out->routes.clear();
  if (options_.relaxed) {
    // Frozen parent placements: only the new links are routed, on top of
    // the parent's final loads (bounded error; see header).
    out->h_loads = final_.h_loads;
    out->v_loads = final_.v_loads;
    for (auto it = new_row_skips.rbegin(); it != new_row_skips.rend(); ++it) {
      replay_new_row_skip(*it, *out);
    }
    for (auto it = new_col_skips.rbegin(); it != new_col_skips.rend(); ++it) {
      replay_new_col_skip(*it, *out);
    }
    return;
  }

  // Exact mode, orientation-split repair: with no diagonal links anywhere
  // (REQUIREd above for the parent; skip links are axis-aligned by
  // construction), horizontal and vertical channels are independent
  // decision streams — adding row skips leaves the vertical profile
  // bit-identical to the parent's, and vice versa.
  auto repair_orientation =
      [&](int divergence, const std::vector<int>& new_skips, bool horizontal,
          std::vector<std::vector<int>>& loads,
          const std::vector<std::vector<int>>& parent_final) {
        if (divergence == 0) {
          loads = parent_final;
          return;
        }
        state_before(divergence, horizontal ? &loads : nullptr,
                     horizontal ? nullptr : &loads);
        // Replay every class of this orientation at or below the divergence
        // class: parent links of the class first (their edge ids precede any
        // appended skip link's), then the new skip class if one lands here.
        auto next_new = new_skips.rbegin();  // descending over new skips
        for (int len = divergence; len >= 2; --len) {
          for (const ClassEntry& entry : classes_) {
            if (entry.len != len) continue;
            for (const LinkRec& rec : entry.links) {
              if (is_h(rec) == horizontal) {
                detail::route_and_commit(rec.a, rec.b, out->h_loads,
                                         out->v_loads);
              }
            }
          }
          if (next_new != new_skips.rend() && *next_new == len) {
            if (horizontal) {
              replay_new_row_skip(len, *out);
            } else {
              replay_new_col_skip(len, *out);
            }
            ++next_new;
          }
        }
      };

  repair_orientation(max_row_skip, new_row_skips, /*horizontal=*/true,
                     out->h_loads, final_.h_loads);
  repair_orientation(max_col_skip, new_col_skips, /*horizontal=*/false,
                     out->v_loads, final_.v_loads);
}

void RoutingContext::route_child_loads(const std::vector<GridLink>& new_links,
                                       GlobalRoutingResult* out) const {
  SHG_REQUIRE(out != nullptr, "output result required");
  // Normalize endpoint order (lower node id first — the L-shape of a
  // diagonal depends on it) and bucket by grid length, preserving the
  // given order within each class: that is the order the links enter the
  // child's greedy classes after the parent's same-length links.
  int divergence = 0;
  int div_h = 0;
  int div_v = 0;
  int new_min_diag = std::numeric_limits<int>::max();
  std::vector<std::vector<LinkRec>> new_buckets;
  for (const GridLink& link : new_links) {
    SHG_REQUIRE(link.a.row >= 0 && link.a.row < rows_ && link.a.col >= 0 &&
                    link.a.col < cols_ && link.b.row >= 0 &&
                    link.b.row < rows_ && link.b.col >= 0 &&
                    link.b.col < cols_,
                "added link endpoint outside the grid");
    const int id_a = link.a.row * cols_ + link.a.col;
    const int id_b = link.b.row * cols_ + link.b.col;
    SHG_REQUIRE(id_a != id_b, "added link endpoints must differ");
    const LinkRec rec =
        id_a < id_b ? LinkRec{link.a, link.b} : LinkRec{link.b, link.a};
    const int len = std::abs(rec.a.row - rec.b.row) +
                    std::abs(rec.a.col - rec.b.col);
    if (len <= 1) continue;  // unit links occupy no channel capacity
    if (static_cast<int>(new_buckets.size()) <= len) {
      new_buckets.resize(static_cast<std::size_t>(len) + 1);
    }
    new_buckets[static_cast<std::size_t>(len)].push_back(rec);
    divergence = std::max(divergence, len);
    if (is_diag(rec)) {
      new_min_diag = std::min(new_min_diag, len);
    } else if (is_h(rec)) {
      div_h = std::max(div_h, len);
    } else {
      div_v = std::max(div_v, len);
    }
  }
  auto new_class = [&](int len) -> const std::vector<LinkRec>* {
    if (len < static_cast<int>(new_buckets.size())) {
      return &new_buckets[static_cast<std::size_t>(len)];
    }
    return nullptr;
  };

  out->routes.clear();
  if (divergence == 0) {
    out->h_loads = final_.h_loads;
    out->v_loads = final_.v_loads;
    return;
  }

  if (options_.relaxed) {
    // Frozen parent placements: only the new links are routed, on the
    // parent's final loads, in descending class order (bounded error).
    out->h_loads = final_.h_loads;
    out->v_loads = final_.v_loads;
    for (int len = divergence; len >= 2; --len) {
      if (const std::vector<LinkRec>* links = new_class(len)) {
        for (const LinkRec& rec : *links) {
          detail::route_and_commit(rec.a, rec.b, out->h_loads, out->v_loads);
        }
      }
    }
    return;
  }

  // A diagonal (parent's or new) at or below the divergence class couples
  // the orientations: restore the joint boundary and replay every class of
  // the suffix — parent links of the class first (their edge ids precede
  // any appended link's), then the new links in append order.
  if (std::min(min_diag_len_, new_min_diag) <= divergence) {
    state_before(divergence, &out->h_loads, &out->v_loads);
    for (int len = divergence; len >= 2; --len) {
      for (const ClassEntry& entry : classes_) {
        if (entry.len != len) continue;
        for (const LinkRec& rec : entry.links) {
          detail::route_and_commit(rec.a, rec.b, out->h_loads, out->v_loads);
        }
      }
      if (const std::vector<LinkRec>* links = new_class(len)) {
        for (const LinkRec& rec : *links) {
          detail::route_and_commit(rec.a, rec.b, out->h_loads, out->v_loads);
        }
      }
    }
    return;
  }

  // Orientation split: no new link is diagonal (a new diagonal would make
  // the branch above joint, since its class is at most the divergence) and
  // every parent diagonal sits strictly above the divergence, i.e. in the
  // shared prefix of both streams — so each orientation is an independent
  // decision stream repaired from its own divergence class, exactly as in
  // the skip fast path.
  auto repair = [&](int div, bool horizontal,
                    std::vector<std::vector<int>>& loads,
                    const std::vector<std::vector<int>>& parent_final) {
    if (div == 0) {
      loads = parent_final;
      return;
    }
    state_before(div, horizontal ? &loads : nullptr,
                 horizontal ? nullptr : &loads);
    for (int len = div; len >= 2; --len) {
      for (const ClassEntry& entry : classes_) {
        if (entry.len != len) continue;
        for (const LinkRec& rec : entry.links) {
          if (is_h(rec) == horizontal && is_v(rec) == !horizontal) {
            detail::route_and_commit(rec.a, rec.b, out->h_loads,
                                     out->v_loads);
          }
        }
      }
      if (const std::vector<LinkRec>* links = new_class(len)) {
        for (const LinkRec& rec : *links) {
          if (is_h(rec) == horizontal) {
            detail::route_and_commit(rec.a, rec.b, out->h_loads,
                                     out->v_loads);
          }
        }
      }
    }
  };
  repair(div_h, /*horizontal=*/true, out->h_loads, final_.h_loads);
  repair(div_v, /*horizontal=*/false, out->v_loads, final_.v_loads);
}

namespace {

/// Compares the pred-filtered subsequences of two link lists.
template <typename Rec, typename Pred>
bool filtered_subseq_equal(const std::vector<Rec>& a, const std::vector<Rec>& b,
                           Pred pred) {
  std::size_t i = 0;
  std::size_t j = 0;
  while (true) {
    while (i < a.size() && !pred(a[i])) ++i;
    while (j < b.size() && !pred(b[j])) ++j;
    if (i == a.size() || j == b.size()) {
      return i == a.size() && j == b.size();
    }
    if (!(a[i] == b[j])) return false;
    ++i;
    ++j;
  }
}

}  // namespace

GlobalRoutingResult RoutingContext::route_child_loads(
    const topo::Topology& child) const {
  SHG_REQUIRE(child.rows() == rows_ && child.cols() == cols_,
              "child topology grid does not match the routing context");

  // Bucket the child's non-unit links exactly as the constructor bucketed
  // the parent's.
  const graph::Graph& g = child.graph();
  int child_max_len = 1;
  int child_min_diag = std::numeric_limits<int>::max();
  std::vector<std::vector<LinkRec>> child_buckets;
  for (graph::EdgeId e = 0; e < g.num_edges(); ++e) {
    const int len = child.link_grid_length(e);
    if (len <= 1) continue;
    if (len > child_max_len) {
      child_max_len = len;
      if (static_cast<int>(child_buckets.size()) <= child_max_len) {
        child_buckets.resize(static_cast<std::size_t>(child_max_len) + 1);
      }
    }
    const auto& edge = g.edge(e);
    const auto [u, v] = std::minmax(edge.u, edge.v);
    const LinkRec rec{child.coord(u), child.coord(v)};
    if (is_diag(rec)) child_min_diag = std::min(child_min_diag, len);
    child_buckets[static_cast<std::size_t>(len)].push_back(rec);
  }

  // Per-kind divergence class: the largest length at which the child's
  // link subsequence of that kind differs from the parent's. Everything
  // above the divergence is the shared prefix. Kind-filtered comparison is
  // only sound for classes WITHOUT diagonal links: same-row and
  // same-column links are independent decision streams, so their
  // interleaving within a class is irrelevant — but a diagonal reads both
  // load profiles, so reordering it against same-class aligned links
  // changes its decision even when every per-kind subsequence matches.
  // Classes containing a diagonal therefore require the full interleaved
  // sequence to match to count as shared prefix.
  static const std::vector<LinkRec> kNoLinks;
  auto parent_class = [&](int len) -> const std::vector<LinkRec>& {
    for (const ClassEntry& entry : classes_) {
      if (entry.len == len) return entry.links;
    }
    return kNoLinks;
  };
  auto child_class = [&](int len) -> const std::vector<LinkRec>& {
    if (len < static_cast<int>(child_buckets.size())) {
      return child_buckets[static_cast<std::size_t>(len)];
    }
    return kNoLinks;
  };
  auto has_diag = [](const std::vector<LinkRec>& links) {
    return std::any_of(links.begin(), links.end(),
                       [](const LinkRec& r) { return is_diag(r); });
  };
  const int parent_max_len = classes_.empty() ? 1 : classes_.front().len;
  int div_h = 0;
  int div_v = 0;
  int div_d = 0;
  for (int len = std::max(parent_max_len, child_max_len); len >= 2; --len) {
    const std::vector<LinkRec>& p = parent_class(len);
    const std::vector<LinkRec>& c = child_class(len);
    if (div_h == 0 && !filtered_subseq_equal(p, c, is_h)) div_h = len;
    if (div_v == 0 && !filtered_subseq_equal(p, c, is_v)) div_v = len;
    if (div_d == 0 && !filtered_subseq_equal(p, c, is_diag)) div_d = len;
    if (div_d == 0 && (has_diag(p) || has_diag(c)) && !(p == c)) {
      div_d = len;  // same multiset per kind, different interleaving
    }
  }

  GlobalRoutingResult result;
  const int divergence = std::max({div_h, div_v, div_d});
  if (divergence == 0) {
    result.h_loads = final_.h_loads;
    result.v_loads = final_.v_loads;
    return result;
  }

  if (options_.relaxed) {
    // Frozen parent placements: route only the links the child adds (the
    // per-class multiset difference, in child order). Links the child
    // *removed* keep contributing the parent's load — both effects stay
    // within the documented per-channel bound.
    result.h_loads = final_.h_loads;
    result.v_loads = final_.v_loads;
    for (int len = divergence; len >= 2; --len) {
      std::map<std::tuple<int, int, int, int>, int> parent_count;
      for (const LinkRec& rec : parent_class(len)) {
        ++parent_count[{rec.a.row, rec.a.col, rec.b.row, rec.b.col}];
      }
      for (const LinkRec& rec : child_class(len)) {
        auto it =
            parent_count.find({rec.a.row, rec.a.col, rec.b.row, rec.b.col});
        if (it != parent_count.end() && it->second > 0) {
          --it->second;
          continue;
        }
        detail::route_and_commit(rec.a, rec.b, result.h_loads,
                                 result.v_loads);
      }
    }
    return result;
  }

  // A diagonal link reads both load profiles to pick its L, so any
  // diagonal in the divergent suffix couples the orientations: restore the
  // joint boundary and replay everything at or below it. Otherwise the
  // orientations are independent and each replays from its own divergence.
  const bool joint = std::min(min_diag_len_, child_min_diag) <= divergence;
  if (joint) {
    state_before(divergence, &result.h_loads, &result.v_loads);
    for (int len = divergence; len >= 2; --len) {
      for (const LinkRec& rec : child_class(len)) {
        detail::route_and_commit(rec.a, rec.b, result.h_loads,
                                 result.v_loads);
      }
    }
    return result;
  }

  auto repair = [&](int div, auto pred, std::vector<std::vector<int>>& loads,
                    const std::vector<std::vector<int>>& parent_final,
                    bool horizontal) {
    if (div == 0) {
      loads = parent_final;
      return;
    }
    state_before(div, horizontal ? &loads : nullptr,
                 horizontal ? nullptr : &loads);
    for (int len = div; len >= 2; --len) {
      for (const LinkRec& rec : child_class(len)) {
        if (pred(rec)) {
          detail::route_and_commit(rec.a, rec.b, result.h_loads,
                                   result.v_loads);
        }
      }
    }
  };
  repair(div_h, [](const LinkRec& r) { return is_h(r); }, result.h_loads,
         final_.h_loads, /*horizontal=*/true);
  repair(div_v, [](const LinkRec& r) { return is_v(r); }, result.v_loads,
         final_.v_loads, /*horizontal=*/false);
  return result;
}

}  // namespace shg::phys
