// Internal greedy-routing core shared by global_route (from-scratch runs)
// and incremental_route (length-class suffix replay).
//
// The channel router's result depends on the order links are considered and
// on every cost comparison along the way, so "bit-identical loads" between
// the from-scratch router and the incremental repair is only defensible if
// both execute literally the same decision code. This header is that code:
// one function that evaluates the candidate channels of one link against the
// current load profiles (same candidate generation order, same cost
// arithmetic, same first-strict-minimum tie-break), and one that commits the
// winner. global_route.cpp drives it over the full greedy order;
// incremental_route.cpp drives it over the replayed suffix. Neither may
// re-implement any part of the decision.
//
// == Exactness & concurrency ==============================================
//
//  * Exactness. These functions ARE the definition of the greedy router's
//    behavior: a driver that feeds them the child's links in greedy order
//    (longest class first, edge-id order within a class) from a load state
//    the from-scratch run reaches produces BIT-IDENTICAL loads to
//    global_route / global_route_loads, by construction. Any caller that
//    duplicates part of the decision (candidate order, cost arithmetic,
//    tie-break) instead of calling these forfeits that guarantee.
//  * Concurrency. Free functions with no hidden state: safe to call from
//    any number of threads, provided each call chain owns its h_loads /
//    v_loads profiles exclusively (choose_route reads them, commit_route
//    mutates them — never share one profile pair across concurrent
//    repairs).
#pragma once

#include <algorithm>
#include <vector>

#include "shg/phys/global_route.hpp"

namespace shg::phys::detail {

/// Secondary cost weight on wirelength: congestion dominates, length breaks
/// ties between equally congested channels.
inline constexpr double kLengthWeight = 0.01;

/// Candidate route under evaluation by the greedy router: at most two
/// channel spans (aligned links use one, L-shapes two), held inline so
/// candidate evaluation performs no heap allocation.
struct Candidate {
  ChannelSpan spans[2];
  int num_spans = 0;
  Face face_u = Face::kEast;
  Face face_v = Face::kWest;
  double cost = 0.0;
};

/// Peak load over [lo, hi] of `loads` if one more link were added there.
inline int peak_after_insert(const std::vector<int>& loads, int lo, int hi) {
  int peak = 0;
  for (int p = lo; p <= hi; ++p) {
    peak = std::max(peak, loads[static_cast<std::size_t>(p)] + 1);
  }
  return peak;
}

inline void commit(std::vector<int>& loads, int lo, int hi) {
  for (int p = lo; p <= hi; ++p) {
    ++loads[static_cast<std::size_t>(p)];
  }
}

/// Greedy channel choice for one non-unit link between tiles `cu` and `cv`,
/// where `cu` is the endpoint with the LOWER node id (the L-shape of a
/// diagonal link turns at cv's column, so swapping the endpoints changes the
/// candidates). Reads the current load profiles, returns the winner without
/// committing it.
inline Candidate choose_route(const topo::TileCoord cu,
                              const topo::TileCoord cv,
                              const std::vector<std::vector<int>>& h_loads,
                              const std::vector<std::vector<int>>& v_loads) {
  // Evaluate candidates in generation order, keeping the first strict
  // minimum — the same winner std::min_element picked over the old
  // candidate vector.
  Candidate best;
  bool have_best = false;
  auto consider = [&](const Candidate& cand) {
    if (!have_best || cand.cost < best.cost) {
      best = cand;
      have_best = true;
    }
  };
  if (cu.row == cv.row) {
    // Same-row link: horizontal channel above (index row) or below
    // (index row+1); ports on north/south faces.
    const auto [lo, hi] = std::minmax(cu.col, cv.col);
    for (const int channel : {cu.row, cu.row + 1}) {
      Candidate cand;
      cand.spans[0] = ChannelSpan{true, channel, lo, hi};
      cand.num_spans = 1;
      cand.face_u = channel == cu.row ? Face::kNorth : Face::kSouth;
      cand.face_v = cand.face_u;
      cand.cost =
          peak_after_insert(h_loads[static_cast<std::size_t>(channel)], lo,
                            hi) +
          kLengthWeight * (hi - lo + 1);
      consider(cand);
    }
  } else if (cu.col == cv.col) {
    const auto [lo, hi] = std::minmax(cu.row, cv.row);
    for (const int channel : {cu.col, cu.col + 1}) {
      Candidate cand;
      cand.spans[0] = ChannelSpan{false, channel, lo, hi};
      cand.num_spans = 1;
      cand.face_u = channel == cu.col ? Face::kWest : Face::kEast;
      cand.face_v = cand.face_u;
      cand.cost =
          peak_after_insert(v_loads[static_cast<std::size_t>(channel)], lo,
                            hi) +
          kLengthWeight * (hi - lo + 1);
      consider(cand);
    }
  } else {
    // Diagonal link: L-shaped route, horizontal segment at the u end
    // (u is the lower node id; the wire leaves u's row channel, turns
    // into a vertical channel at v's column and descends to v).
    const auto [clo, chi] = std::minmax(cu.col, cv.col);
    const auto [rlo, rhi] = std::minmax(cu.row, cv.row);
    for (const int hch : {cu.row, cu.row + 1}) {
      for (const int vch : {cv.col, cv.col + 1}) {
        Candidate cand;
        cand.spans[0] = ChannelSpan{true, hch, clo, chi};
        cand.spans[1] = ChannelSpan{false, vch, rlo, rhi};
        cand.num_spans = 2;
        cand.face_u = hch == cu.row ? Face::kNorth : Face::kSouth;
        cand.face_v = vch == cv.col ? Face::kWest : Face::kEast;
        cand.cost =
            peak_after_insert(h_loads[static_cast<std::size_t>(hch)], clo,
                              chi) +
            peak_after_insert(v_loads[static_cast<std::size_t>(vch)], rlo,
                              rhi) +
            kLengthWeight * (chi - clo + rhi - rlo + 2);
        consider(cand);
      }
    }
  }
  SHG_ASSERT(have_best, "no route candidates generated");
  return best;
}

inline void commit_route(const Candidate& best,
                         std::vector<std::vector<int>>& h_loads,
                         std::vector<std::vector<int>>& v_loads) {
  for (int s = 0; s < best.num_spans; ++s) {
    const ChannelSpan& span = best.spans[s];
    auto& loads = span.horizontal
                      ? h_loads[static_cast<std::size_t>(span.index)]
                      : v_loads[static_cast<std::size_t>(span.index)];
    commit(loads, span.lo, span.hi);
  }
}

/// Routes one non-unit link and commits the winner; the one-call form both
/// drivers use in their inner loops.
inline Candidate route_and_commit(const topo::TileCoord cu,
                                  const topo::TileCoord cv,
                                  std::vector<std::vector<int>>& h_loads,
                                  std::vector<std::vector<int>>& v_loads) {
  const Candidate best = choose_route(cu, cv, h_loads, v_loads);
  commit_route(best, h_loads, v_loads);
  return best;
}

}  // namespace shg::phys::detail
