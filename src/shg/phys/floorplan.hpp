// Floorplan geometry: tile placement in an R x C grid with per-channel
// spacing (steps 1, 3 and 4 of the paper's model, Fig. 5a/c/d).
//
// Coordinate system: x grows to the right (columns), y grows downward
// (rows), all in millimeters. The chip alternates channels and tiles in
// both directions:
//   vertical:   hchannel[0], tile row 0, hchannel[1], ..., hchannel[R]
//   horizontal: vchannel[0], tile col 0, vchannel[1], ..., vchannel[C]
// hchannel[i] lies above tile row i (hchannel[R] below the last row);
// vchannel[j] lies left of tile column j.
#pragma once

#include <vector>

#include "shg/common/error.hpp"
#include "shg/common/geometry.hpp"

namespace shg::phys {

class Floorplan {
 public:
  /// Builds a floorplan from tile dimensions, channel spacings
  /// (h_spacing.size() == rows+1, v_spacing.size() == cols+1) and the unit
  /// cell dimensions of step 4 (cell_w = W_C, cell_h = H_C).
  Floorplan(int rows, int cols, double tile_w, double tile_h,
            std::vector<double> h_spacing, std::vector<double> v_spacing,
            double cell_w, double cell_h);

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  double tile_w() const { return tile_w_; }
  double tile_h() const { return tile_h_; }
  double cell_w() const { return cell_w_; }
  double cell_h() const { return cell_h_; }

  /// Top y of the horizontal channel above tile row i (i in [0, rows]).
  double chan_h_top(int i) const;
  /// Height of horizontal channel i.
  double chan_h_height(int i) const;
  /// Left x of the vertical channel left of tile column j (j in [0, cols]).
  double chan_v_left(int j) const;
  /// Width of vertical channel j.
  double chan_v_width(int j) const;

  /// Top y of tile row r.
  double row_top(int r) const;
  /// Left x of tile column c.
  double col_left(int c) const;

  /// Center of the tile (local router location) at (r, c).
  PointMM tile_center(int r, int c) const;

  double chip_width() const { return chip_width_; }
  double chip_height() const { return chip_height_; }
  double chip_area_mm2() const { return chip_width_ * chip_height_; }

  /// Unit-cell area A_C = H_C * W_C (step 4).
  double cell_area_mm2() const { return cell_w_ * cell_h_; }

 private:
  int rows_;
  int cols_;
  double tile_w_;
  double tile_h_;
  std::vector<double> h_spacing_;
  std::vector<double> v_spacing_;
  double cell_w_;
  double cell_h_;
  // Prefix sums: chan_h_top_[i] for i in [0, rows], etc.
  std::vector<double> chan_h_top_;
  std::vector<double> chan_v_left_;
  double chip_width_ = 0.0;
  double chip_height_ = 0.0;
};

}  // namespace shg::phys
