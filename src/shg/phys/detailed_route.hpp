// Detailed routing in the grid of unit cells (step 5 of the model, Fig. 5e).
//
// Within each channel, overlapping spans are assigned to parallel tracks by
// the classic left-edge (interval partitioning) algorithm — the channel
// spacing from step 3 provides exactly peak-load many tracks, so parallel
// runs land in distinct unit cells. Remaining collisions (several links
// occupying the same unit cell in the same direction) can only come from
// the short port jogs and are counted and reported.
//
// The detailed route of every link is an axis-aligned polyline in chip
// coordinates; its length drives the link latency estimate and its
// unit-cell footprint drives the power estimate.
#pragma once

#include <vector>

#include "shg/common/geometry.hpp"
#include "shg/phys/floorplan.hpp"
#include "shg/phys/global_route.hpp"
#include "shg/topo/topology.hpp"

namespace shg::phys {

/// One axis-aligned piece of a detailed route.
struct Segment {
  PointMM a;
  PointMM b;
  bool horizontal = true;

  double length() const {
    return horizontal ? std::abs(b.x - a.x) : std::abs(b.y - a.y);
  }
};

/// Detailed route of one link.
struct DetailedRoute {
  std::vector<Segment> segments;   ///< channel polyline (port to port)
  double channel_length_mm = 0.0;  ///< sum of segment lengths
  double total_length_mm = 0.0;    ///< + intra-tile port-to-router runs
};

/// Result of detailed routing for a whole topology.
struct DetailedRoutingResult {
  std::vector<DetailedRoute> routes;  ///< indexed by EdgeId
  long long h_cells = 0;     ///< distinct unit cells with a horizontal part
  long long v_cells = 0;     ///< distinct unit cells with a vertical part
  long long collision_cells = 0;  ///< cells with >= 2 same-direction links
};

/// Runs track assignment and geometry construction for all links.
DetailedRoutingResult detailed_route(const topo::Topology& topo,
                                     const Floorplan& plan,
                                     const GlobalRoutingResult& global);

}  // namespace shg::phys
