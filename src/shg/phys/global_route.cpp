#include "shg/phys/global_route.hpp"

#include <algorithm>
#include <limits>
#include <numeric>

namespace shg::phys {

namespace {

/// Candidate route under evaluation by the greedy router: at most two
/// channel spans (aligned links use one, L-shapes two), held inline so
/// candidate evaluation performs no heap allocation.
struct Candidate {
  ChannelSpan spans[2];
  int num_spans = 0;
  Face face_u = Face::kEast;
  Face face_v = Face::kWest;
  double cost = 0.0;
};

/// Peak load over [lo, hi] of `loads` if one more link were added there.
int peak_after_insert(const std::vector<int>& loads, int lo, int hi) {
  int peak = 0;
  for (int p = lo; p <= hi; ++p) {
    peak = std::max(peak, loads[static_cast<std::size_t>(p)] + 1);
  }
  return peak;
}

void commit(std::vector<int>& loads, int lo, int hi) {
  for (int p = lo; p <= hi; ++p) {
    ++loads[static_cast<std::size_t>(p)];
  }
}

}  // namespace

int GlobalRoutingResult::max_h_load(int channel) const {
  const auto& loads = h_loads[static_cast<std::size_t>(channel)];
  return loads.empty() ? 0 : *std::max_element(loads.begin(), loads.end());
}

int GlobalRoutingResult::max_v_load(int channel) const {
  const auto& loads = v_loads[static_cast<std::size_t>(channel)];
  return loads.empty() ? 0 : *std::max_element(loads.begin(), loads.end());
}

namespace {

/// Shared greedy-routing core. The template flag only controls whether the
/// winning candidates are materialized into GlobalRoute objects — every
/// decision (greedy order, candidate generation order, cost arithmetic,
/// first-minimum tie-break) is the same code either way, so the committed
/// channel loads are bit-identical with routes kept or dropped.
template <bool kKeepRoutes>
void route_all_links(const topo::Topology& topo, GlobalRoutingResult& result) {
  const int rows = topo.rows();
  const int cols = topo.cols();
  if (kKeepRoutes) {
    result.routes.resize(static_cast<std::size_t>(topo.graph().num_edges()));
  }
  result.h_loads.assign(static_cast<std::size_t>(rows) + 1,
                        std::vector<int>(static_cast<std::size_t>(cols), 0));
  result.v_loads.assign(static_cast<std::size_t>(cols) + 1,
                        std::vector<int>(static_cast<std::size_t>(rows), 0));

  // Greedy order: longest links first — they constrain channel capacity the
  // most, short links fill the remaining space. Counting sort by length
  // bucket (descending, original order within a bucket) produces exactly
  // the stable_sort order the routine always used, without the comparison
  // sort showing up in screening profiles.
  const int num_edges = topo.graph().num_edges();
  int max_len = 0;
  std::vector<int> lengths(static_cast<std::size_t>(num_edges));
  for (graph::EdgeId e = 0; e < num_edges; ++e) {
    lengths[static_cast<std::size_t>(e)] = topo.link_grid_length(e);
    max_len = std::max(max_len, lengths[static_cast<std::size_t>(e)]);
  }
  std::vector<int> bucket_start(static_cast<std::size_t>(max_len) + 2, 0);
  for (int len : lengths) ++bucket_start[static_cast<std::size_t>(len)];
  // Descending lengths: bucket max_len first.
  int offset = 0;
  for (int len = max_len; len >= 0; --len) {
    const int count = bucket_start[static_cast<std::size_t>(len)];
    bucket_start[static_cast<std::size_t>(len)] = offset;
    offset += count;
  }
  std::vector<graph::EdgeId> order(static_cast<std::size_t>(num_edges));
  for (graph::EdgeId e = 0; e < num_edges; ++e) {
    order[static_cast<std::size_t>(
        bucket_start[static_cast<std::size_t>(
            lengths[static_cast<std::size_t>(e)])]++)] = e;
  }

  // Secondary cost weight on wirelength: congestion dominates, length
  // breaks ties between equally congested channels.
  constexpr double kLengthWeight = 0.01;

  for (graph::EdgeId e : order) {
    const auto& edge = topo.graph().edge(e);
    const auto [u, v] = std::minmax(edge.u, edge.v);
    const topo::TileCoord cu = topo.coord(u);
    const topo::TileCoord cv = topo.coord(v);

    if (lengths[static_cast<std::size_t>(e)] == 1) {
      // Adjacent tiles: cross the shared channel directly (no channel
      // load; nothing to record unless routes are kept).
      if (kKeepRoutes) {
        GlobalRoute& route = result.routes[static_cast<std::size_t>(e)];
        route.straight = true;
        if (cu.row == cv.row) {
          route.face_u = cu.col < cv.col ? Face::kEast : Face::kWest;
          route.face_v = cu.col < cv.col ? Face::kWest : Face::kEast;
        } else {
          route.face_u = cu.row < cv.row ? Face::kSouth : Face::kNorth;
          route.face_v = cu.row < cv.row ? Face::kNorth : Face::kSouth;
        }
      }
      continue;
    }

    // Evaluate candidates in generation order, keeping the first strict
    // minimum — the same winner std::min_element picked over the old
    // candidate vector.
    Candidate best;
    bool have_best = false;
    auto consider = [&](const Candidate& cand) {
      if (!have_best || cand.cost < best.cost) {
        best = cand;
        have_best = true;
      }
    };
    if (cu.row == cv.row) {
      // Same-row link: horizontal channel above (index row) or below
      // (index row+1); ports on north/south faces.
      const auto [lo, hi] = std::minmax(cu.col, cv.col);
      for (const int channel : {cu.row, cu.row + 1}) {
        Candidate cand;
        cand.spans[0] = ChannelSpan{true, channel, lo, hi};
        cand.num_spans = 1;
        cand.face_u = channel == cu.row ? Face::kNorth : Face::kSouth;
        cand.face_v = cand.face_u;
        cand.cost = peak_after_insert(
                        result.h_loads[static_cast<std::size_t>(channel)], lo,
                        hi) +
                    kLengthWeight * (hi - lo + 1);
        consider(cand);
      }
    } else if (cu.col == cv.col) {
      const auto [lo, hi] = std::minmax(cu.row, cv.row);
      for (const int channel : {cu.col, cu.col + 1}) {
        Candidate cand;
        cand.spans[0] = ChannelSpan{false, channel, lo, hi};
        cand.num_spans = 1;
        cand.face_u = channel == cu.col ? Face::kWest : Face::kEast;
        cand.face_v = cand.face_u;
        cand.cost = peak_after_insert(
                        result.v_loads[static_cast<std::size_t>(channel)], lo,
                        hi) +
                    kLengthWeight * (hi - lo + 1);
        consider(cand);
      }
    } else {
      // Diagonal link: L-shaped route, horizontal segment at the u end
      // (u is the lower node id; the wire leaves u's row channel, turns
      // into a vertical channel at v's column and descends to v).
      const auto [clo, chi] = std::minmax(cu.col, cv.col);
      const auto [rlo, rhi] = std::minmax(cu.row, cv.row);
      for (const int hch : {cu.row, cu.row + 1}) {
        for (const int vch : {cv.col, cv.col + 1}) {
          Candidate cand;
          cand.spans[0] = ChannelSpan{true, hch, clo, chi};
          cand.spans[1] = ChannelSpan{false, vch, rlo, rhi};
          cand.num_spans = 2;
          cand.face_u = hch == cu.row ? Face::kNorth : Face::kSouth;
          cand.face_v = vch == cv.col ? Face::kWest : Face::kEast;
          cand.cost =
              peak_after_insert(
                  result.h_loads[static_cast<std::size_t>(hch)], clo, chi) +
              peak_after_insert(
                  result.v_loads[static_cast<std::size_t>(vch)], rlo, rhi) +
              kLengthWeight * (chi - clo + rhi - rlo + 2);
          consider(cand);
        }
      }
    }

    SHG_ASSERT(have_best, "no route candidates generated");
    for (int s = 0; s < best.num_spans; ++s) {
      const ChannelSpan& span = best.spans[s];
      auto& loads = span.horizontal
                        ? result.h_loads[static_cast<std::size_t>(span.index)]
                        : result.v_loads[static_cast<std::size_t>(span.index)];
      commit(loads, span.lo, span.hi);
    }
    if (kKeepRoutes) {
      GlobalRoute& route = result.routes[static_cast<std::size_t>(e)];
      route.spans.assign(best.spans, best.spans + best.num_spans);
      route.face_u = best.face_u;
      route.face_v = best.face_v;
    }
  }
}

}  // namespace

GlobalRoutingResult global_route(const topo::Topology& topo) {
  GlobalRoutingResult result;
  route_all_links<true>(topo, result);
  return result;
}

GlobalRoutingResult global_route_loads(const topo::Topology& topo) {
  GlobalRoutingResult result;
  route_all_links<false>(topo, result);
  return result;
}

}  // namespace shg::phys
