#include "shg/phys/global_route.hpp"

#include <algorithm>

#include "shg/phys/route_core.hpp"

namespace shg::phys {

int GlobalRoutingResult::max_h_load(int channel) const {
  SHG_REQUIRE(channel >= 0 &&
                  channel < static_cast<int>(h_loads.size()),
              "horizontal channel index out of range (valid: [0, rows])");
  const auto& loads = h_loads[static_cast<std::size_t>(channel)];
  return loads.empty() ? 0 : *std::max_element(loads.begin(), loads.end());
}

int GlobalRoutingResult::max_v_load(int channel) const {
  SHG_REQUIRE(channel >= 0 &&
                  channel < static_cast<int>(v_loads.size()),
              "vertical channel index out of range (valid: [0, cols])");
  const auto& loads = v_loads[static_cast<std::size_t>(channel)];
  return loads.empty() ? 0 : *std::max_element(loads.begin(), loads.end());
}

namespace {

/// Shared greedy-routing driver. The decision code itself (candidate
/// generation, cost arithmetic, tie-breaks, commits) lives in
/// route_core.hpp, where incremental_route.cpp replays it over divergent
/// length-class suffixes — any change there is automatically shared, which
/// is what keeps repaired loads bit-identical to from-scratch runs. The
/// template flag only controls whether the winning candidates are
/// materialized into GlobalRoute objects; the committed channel loads are
/// bit-identical with routes kept or dropped.
template <bool kKeepRoutes>
void route_all_links(const topo::Topology& topo, GlobalRoutingResult& result) {
  const int rows = topo.rows();
  const int cols = topo.cols();
  if (kKeepRoutes) {
    result.routes.resize(static_cast<std::size_t>(topo.graph().num_edges()));
  }
  result.h_loads.assign(static_cast<std::size_t>(rows) + 1,
                        std::vector<int>(static_cast<std::size_t>(cols), 0));
  result.v_loads.assign(static_cast<std::size_t>(cols) + 1,
                        std::vector<int>(static_cast<std::size_t>(rows), 0));

  // Greedy order: longest links first — they constrain channel capacity the
  // most, short links fill the remaining space. Counting sort by length
  // bucket (descending, original order within a bucket) produces exactly
  // the stable_sort order the routine always used, without the comparison
  // sort showing up in screening profiles.
  const int num_edges = topo.graph().num_edges();
  int max_len = 0;
  std::vector<int> lengths(static_cast<std::size_t>(num_edges));
  for (graph::EdgeId e = 0; e < num_edges; ++e) {
    lengths[static_cast<std::size_t>(e)] = topo.link_grid_length(e);
    max_len = std::max(max_len, lengths[static_cast<std::size_t>(e)]);
  }
  std::vector<int> bucket_start(static_cast<std::size_t>(max_len) + 2, 0);
  for (int len : lengths) ++bucket_start[static_cast<std::size_t>(len)];
  // Descending lengths: bucket max_len first.
  int offset = 0;
  for (int len = max_len; len >= 0; --len) {
    const int count = bucket_start[static_cast<std::size_t>(len)];
    bucket_start[static_cast<std::size_t>(len)] = offset;
    offset += count;
  }
  std::vector<graph::EdgeId> order(static_cast<std::size_t>(num_edges));
  for (graph::EdgeId e = 0; e < num_edges; ++e) {
    order[static_cast<std::size_t>(
        bucket_start[static_cast<std::size_t>(
            lengths[static_cast<std::size_t>(e)])]++)] = e;
  }

  for (graph::EdgeId e : order) {
    const auto& edge = topo.graph().edge(e);
    const auto [u, v] = std::minmax(edge.u, edge.v);
    const topo::TileCoord cu = topo.coord(u);
    const topo::TileCoord cv = topo.coord(v);

    if (lengths[static_cast<std::size_t>(e)] == 1) {
      // Adjacent tiles: cross the shared channel directly (no channel
      // load; nothing to record unless routes are kept).
      if (kKeepRoutes) {
        GlobalRoute& route = result.routes[static_cast<std::size_t>(e)];
        route.straight = true;
        if (cu.row == cv.row) {
          route.face_u = cu.col < cv.col ? Face::kEast : Face::kWest;
          route.face_v = cu.col < cv.col ? Face::kWest : Face::kEast;
        } else {
          route.face_u = cu.row < cv.row ? Face::kSouth : Face::kNorth;
          route.face_v = cu.row < cv.row ? Face::kNorth : Face::kSouth;
        }
      }
      continue;
    }

    const detail::Candidate best =
        detail::route_and_commit(cu, cv, result.h_loads, result.v_loads);
    if (kKeepRoutes) {
      GlobalRoute& route = result.routes[static_cast<std::size_t>(e)];
      route.spans.assign(best.spans, best.spans + best.num_spans);
      route.face_u = best.face_u;
      route.face_v = best.face_v;
    }
  }
}

}  // namespace

GlobalRoutingResult global_route(const topo::Topology& topo) {
  GlobalRoutingResult result;
  route_all_links<true>(topo, result);
  return result;
}

GlobalRoutingResult global_route_loads(const topo::Topology& topo) {
  GlobalRoutingResult result;
  route_all_links<false>(topo, result);
  return result;
}

}  // namespace shg::phys
