#include "shg/phys/global_route.hpp"

#include <algorithm>
#include <limits>
#include <numeric>

namespace shg::phys {

namespace {

/// Candidate route under evaluation by the greedy router.
struct Candidate {
  GlobalRoute route;
  double cost = 0.0;
};

/// Peak load over [lo, hi] of `loads` if one more link were added there.
int peak_after_insert(const std::vector<int>& loads, int lo, int hi) {
  int peak = 0;
  for (int p = lo; p <= hi; ++p) {
    peak = std::max(peak, loads[static_cast<std::size_t>(p)] + 1);
  }
  return peak;
}

void commit(std::vector<int>& loads, int lo, int hi) {
  for (int p = lo; p <= hi; ++p) {
    ++loads[static_cast<std::size_t>(p)];
  }
}

}  // namespace

int GlobalRoutingResult::max_h_load(int channel) const {
  const auto& loads = h_loads[static_cast<std::size_t>(channel)];
  return loads.empty() ? 0 : *std::max_element(loads.begin(), loads.end());
}

int GlobalRoutingResult::max_v_load(int channel) const {
  const auto& loads = v_loads[static_cast<std::size_t>(channel)];
  return loads.empty() ? 0 : *std::max_element(loads.begin(), loads.end());
}

GlobalRoutingResult global_route(const topo::Topology& topo) {
  const int rows = topo.rows();
  const int cols = topo.cols();
  GlobalRoutingResult result;
  result.routes.resize(static_cast<std::size_t>(topo.graph().num_edges()));
  result.h_loads.assign(static_cast<std::size_t>(rows) + 1,
                        std::vector<int>(static_cast<std::size_t>(cols), 0));
  result.v_loads.assign(static_cast<std::size_t>(cols) + 1,
                        std::vector<int>(static_cast<std::size_t>(rows), 0));

  // Greedy order: longest links first — they constrain channel capacity the
  // most, short links fill the remaining space.
  std::vector<graph::EdgeId> order(
      static_cast<std::size_t>(topo.graph().num_edges()));
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](graph::EdgeId a, graph::EdgeId b) {
                     return topo.link_grid_length(a) >
                            topo.link_grid_length(b);
                   });

  // Secondary cost weight on wirelength: congestion dominates, length
  // breaks ties between equally congested channels.
  constexpr double kLengthWeight = 0.01;

  for (graph::EdgeId e : order) {
    const auto& edge = topo.graph().edge(e);
    const auto [u, v] = std::minmax(edge.u, edge.v);
    const topo::TileCoord cu = topo.coord(u);
    const topo::TileCoord cv = topo.coord(v);

    GlobalRoute& route = result.routes[static_cast<std::size_t>(e)];
    if (topo.link_grid_length(e) == 1) {
      // Adjacent tiles: cross the shared channel directly.
      route.straight = true;
      if (cu.row == cv.row) {
        route.face_u = cu.col < cv.col ? Face::kEast : Face::kWest;
        route.face_v = cu.col < cv.col ? Face::kWest : Face::kEast;
      } else {
        route.face_u = cu.row < cv.row ? Face::kSouth : Face::kNorth;
        route.face_v = cu.row < cv.row ? Face::kNorth : Face::kSouth;
      }
      continue;
    }

    std::vector<Candidate> candidates;
    if (cu.row == cv.row) {
      // Same-row link: horizontal channel above (index row) or below
      // (index row+1); ports on north/south faces.
      const auto [lo, hi] = std::minmax(cu.col, cv.col);
      for (const int channel : {cu.row, cu.row + 1}) {
        Candidate cand;
        cand.route.spans = {
            ChannelSpan{true, channel, lo, hi}};
        cand.route.face_u = channel == cu.row ? Face::kNorth : Face::kSouth;
        cand.route.face_v = cand.route.face_u;
        cand.cost = peak_after_insert(
                        result.h_loads[static_cast<std::size_t>(channel)], lo,
                        hi) +
                    kLengthWeight * (hi - lo + 1);
        candidates.push_back(std::move(cand));
      }
    } else if (cu.col == cv.col) {
      const auto [lo, hi] = std::minmax(cu.row, cv.row);
      for (const int channel : {cu.col, cu.col + 1}) {
        Candidate cand;
        cand.route.spans = {
            ChannelSpan{false, channel, lo, hi}};
        cand.route.face_u = channel == cu.col ? Face::kWest : Face::kEast;
        cand.route.face_v = cand.route.face_u;
        cand.cost = peak_after_insert(
                        result.v_loads[static_cast<std::size_t>(channel)], lo,
                        hi) +
                    kLengthWeight * (hi - lo + 1);
        candidates.push_back(std::move(cand));
      }
    } else {
      // Diagonal link: L-shaped route, horizontal segment at the u end
      // (u is the lower node id; the wire leaves u's row channel, turns
      // into a vertical channel at v's column and descends to v).
      const auto [clo, chi] = std::minmax(cu.col, cv.col);
      const auto [rlo, rhi] = std::minmax(cu.row, cv.row);
      for (const int hch : {cu.row, cu.row + 1}) {
        for (const int vch : {cv.col, cv.col + 1}) {
          Candidate cand;
          cand.route.spans = {
              ChannelSpan{true, hch, clo, chi},
              ChannelSpan{false, vch, rlo, rhi}};
          cand.route.face_u = hch == cu.row ? Face::kNorth : Face::kSouth;
          cand.route.face_v = vch == cv.col ? Face::kWest : Face::kEast;
          cand.cost =
              peak_after_insert(
                  result.h_loads[static_cast<std::size_t>(hch)], clo, chi) +
              peak_after_insert(
                  result.v_loads[static_cast<std::size_t>(vch)], rlo, rhi) +
              kLengthWeight * (chi - clo + rhi - rlo + 2);
          candidates.push_back(std::move(cand));
        }
      }
    }

    SHG_ASSERT(!candidates.empty(), "no route candidates generated");
    const auto best = std::min_element(
        candidates.begin(), candidates.end(),
        [](const Candidate& a, const Candidate& b) { return a.cost < b.cost; });
    route = best->route;
    for (const ChannelSpan& span : route.spans) {
      auto& loads = span.horizontal
                        ? result.h_loads[static_cast<std::size_t>(span.index)]
                        : result.v_loads[static_cast<std::size_t>(span.index)];
      commit(loads, span.lo, span.hi);
    }
  }
  return result;
}

}  // namespace shg::phys
