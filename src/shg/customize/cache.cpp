#include "shg/customize/cache.hpp"

#include <cstdio>
#include <cstring>

#include "shg/common/log.hpp"

namespace shg::customize {

namespace {

// On-disk layout of `shg.cache.v1` (all integers little-endian):
//   [0, 8)    magic "SHGCACHE"
//   [8, 12)   format version (1)
//   [12, 16)  payload kind (0 = candidate metrics, 1 = simulation results;
//             the field reuses bytes every pre-kind writer left zero, so
//             old candidate files load unchanged)
//   [16, 24)  entry count
//   [24, 32)  FNV-1a 64 checksum of the payload bytes
//   [32, ...) payload: count fixed-size entries of (hi, lo, kind-specific
//             fields); 48 B for candidate metrics, 112 B for sim results
constexpr char kMagic[8] = {'S', 'H', 'G', 'C', 'A', 'C', 'H', 'E'};
constexpr std::uint32_t kFormatVersion = 1;
constexpr std::uint32_t kKindCandidate = 0;
constexpr std::uint32_t kKindSimResult = 1;
constexpr std::size_t kHeaderBytes = 32;
constexpr std::size_t kCandidateEntryBytes = 48;
constexpr std::size_t kSimResultEntryBytes = 112;

void put_u32(std::vector<unsigned char>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<unsigned char>(v >> (8 * i)));
  }
}

void put_u64(std::vector<unsigned char>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<unsigned char>(v >> (8 * i)));
  }
}

void put_f64(std::vector<unsigned char>& out, double v) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  put_u64(out, bits);
}

std::uint32_t get_u32(const unsigned char* p) {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

std::uint64_t get_u64(const unsigned char* p) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

double get_f64(const unsigned char* p) {
  const std::uint64_t bits = get_u64(p);
  double v = 0.0;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::uint64_t fnv1a(const unsigned char* data, std::size_t size) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::size_t i = 0; i < size; ++i) {
    h = (h ^ data[i]) * 0x00000100000001b3ULL;
  }
  return h;
}

void warn_discard(const std::string& path, const char* reason) {
  log::warnf(
      "shg: warning: cache file '%s' %s; discarding it and falling "
      "back to cold recomputation\n",
      path.c_str(), reason);
}

/// Writes header + payload; warns and returns false on I/O failure.
bool write_cache_file(const std::string& path, std::uint32_t kind,
                      const std::vector<unsigned char>& payload,
                      std::uint64_t count) {
  std::vector<unsigned char> header;
  header.reserve(kHeaderBytes);
  header.insert(header.end(), kMagic, kMagic + sizeof(kMagic));
  put_u32(header, kFormatVersion);
  put_u32(header, kind);
  put_u64(header, count);
  put_u64(header, fnv1a(payload.data(), payload.size()));

  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    log::warnf("shg: warning: cannot write cache file '%s'\n", path.c_str());
    return false;
  }
  const bool ok =
      std::fwrite(header.data(), 1, header.size(), f) == header.size() &&
      (payload.empty() ||
       std::fwrite(payload.data(), 1, payload.size(), f) == payload.size());
  const bool closed = std::fclose(f) == 0;
  if (!ok || !closed) {
    log::warnf("shg: warning: short write to cache file '%s'\n", path.c_str());
    return false;
  }
  return true;
}

enum class ReadStatus { kOk, kAbsent, kDiscarded };

/// Reads and fully validates one cache file of the expected kind. On
/// success fills `data` (whole file) and `count`; an absent file is a
/// silent normal cold start; any validation failure warns through the
/// shg::log sink and reports kDiscarded so the caller can bump its
/// disk-discarded counter.
ReadStatus read_cache_file(const std::string& path, std::uint32_t kind,
                           std::size_t entry_bytes,
                           std::vector<unsigned char>& data,
                           std::uint64_t& count) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return ReadStatus::kAbsent;  // normal cold start

  data.clear();
  unsigned char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    data.insert(data.end(), buf, buf + n);
  }
  const bool read_ok = std::ferror(f) == 0;
  std::fclose(f);

  const char* reason = nullptr;
  count = 0;
  if (!read_ok) {
    reason = "could not be read";
  } else if (data.size() < kHeaderBytes) {
    reason = "is truncated (shorter than the header)";
  } else if (std::memcmp(data.data(), kMagic, sizeof(kMagic)) != 0) {
    reason = "has a wrong magic (not an shg.cache file)";
  } else if (get_u32(data.data() + 8) != kFormatVersion) {
    reason = "has an unsupported format version";
  } else if (get_u32(data.data() + 12) != kind) {
    reason = "holds a different payload kind";
  } else {
    count = get_u64(data.data() + 16);
    // Guard the size arithmetic against absurd counts before multiplying.
    if (count > (data.size() / entry_bytes) + 1) {
      reason = "is truncated (entry count exceeds the file size)";
    } else if (data.size() != kHeaderBytes + count * entry_bytes) {
      reason = "is truncated (size does not match the entry count)";
    } else if (get_u64(data.data() + 24) !=
               fnv1a(data.data() + kHeaderBytes, count * entry_bytes)) {
      reason = "fails its payload checksum";
    }
  }
  if (reason != nullptr) {
    warn_discard(path, reason);
    return ReadStatus::kDiscarded;
  }
  return ReadStatus::kOk;
}

}  // namespace

FingerprintBuilder& FingerprintBuilder::bytes(const void* data,
                                              std::size_t size) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    // Two lanes over the same byte stream: FNV-1a and a rotate-multiply
    // lane with independent constants.
    lo_ = (lo_ ^ p[i]) * 0x00000100000001b3ULL;
    hi_ ^= (static_cast<std::uint64_t>(p[i]) + 0x9e3779b97f4a7c15ULL);
    hi_ = ((hi_ << 23) | (hi_ >> 41)) * 0xd6e8feb86659fd93ULL;
  }
  return *this;
}

FingerprintBuilder& FingerprintBuilder::u64(std::uint64_t value) {
  unsigned char buf[8];
  for (int i = 0; i < 8; ++i) {
    buf[i] = static_cast<unsigned char>(value >> (8 * i));
  }
  return bytes(buf, sizeof(buf));
}

FingerprintBuilder& FingerprintBuilder::f64(double value) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &value, sizeof(bits));
  return u64(bits);
}

FingerprintBuilder& FingerprintBuilder::str(const std::string& value) {
  u64(value.size());
  return bytes(value.data(), value.size());
}

FingerprintBuilder& FingerprintBuilder::tag(const char* name) {
  const std::size_t len = std::strlen(name);
  u64(len);
  return bytes(name, len);
}

Fingerprint FingerprintBuilder::done() const {
  // splitmix64-style finalization of each lane, cross-mixed so that the
  // (hi, lo) pair depends on both accumulators.
  auto mix = [](std::uint64_t z) {
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  };
  Fingerprint out;
  out.hi = mix(hi_ + 0x9e3779b97f4a7c15ULL * lo_);
  out.lo = mix(lo_ ^ ((hi_ << 32) | (hi_ >> 32)));
  return out;
}

Fingerprint fingerprint_arch(const tech::ArchParams& arch) {
  FingerprintBuilder b;
  b.tag("shg.arch.v1");
  b.i64(arch.rows).i64(arch.cols);
  b.f64(arch.endpoint_area_ge).f64(arch.tile_aspect_ratio);
  b.i64(arch.endpoints_per_tile);
  b.f64(arch.frequency_hz).f64(arch.link_bandwidth_bits);
  const tech::TechnologyModel& t = arch.tech;
  b.f64(t.ge_area_um2);
  b.u64(t.wires.horizontal_pitch_nm.size());
  for (double p : t.wires.horizontal_pitch_nm) b.f64(p);
  b.u64(t.wires.vertical_pitch_nm.size());
  for (double p : t.wires.vertical_pitch_nm) b.f64(p);
  b.f64(t.wire_delay_ps_per_mm);
  b.f64(t.logic_power_w_per_mm2).f64(t.wire_power_w_per_mm2);
  b.f64(arch.transport.wires_per_bit).f64(arch.transport.overhead_wires);
  b.f64(arch.router_area.ge_per_buffer_bit);
  b.f64(arch.router_area.ge_per_crosspoint_bit);
  b.f64(arch.router_area.ge_per_port_control);
  b.i64(arch.router_arch.num_vcs).i64(arch.router_arch.buffer_depth_flits);
  return b.done();
}

Fingerprint fingerprint_shg_candidate(const Fingerprint& arch_fp,
                                      const topo::ShgParams& params) {
  // "exact" screening-mode domain separation lives in the tag: every
  // current screening path is bit-identical to screen_candidate, so they
  // all share this key; a future non-exact mode needs a new tag.
  FingerprintBuilder b;
  b.tag("shg.candidate.shg.exact.v1");
  b.fp(arch_fp);
  b.u64(params.row_skips.size());
  for (int x : params.row_skips) b.i64(x);
  b.u64(params.col_skips.size());
  for (int x : params.col_skips) b.i64(x);
  return b.done();
}

Fingerprint fingerprint_topology(const topo::Topology& topo) {
  FingerprintBuilder b;
  b.tag("shg.topology.v1");
  b.i64(topo.rows()).i64(topo.cols());
  const graph::Graph& g = topo.graph();
  b.u64(static_cast<std::uint64_t>(g.num_edges()));
  for (const graph::Edge& e : g.edges()) {
    b.i64(e.u).i64(e.v);
  }
  return b.done();
}

Fingerprint fingerprint_child(const Fingerprint& arch_fp,
                              const Fingerprint& parent_fp,
                              const std::vector<graph::Edge>& new_edges) {
  FingerprintBuilder b;
  b.tag("shg.candidate.child.exact.v1");
  b.fp(arch_fp).fp(parent_fp);
  b.u64(new_edges.size());
  for (const graph::Edge& e : new_edges) {
    b.i64(e.u).i64(e.v);
  }
  return b.done();
}

// Tripwire: a new SimConfig field changes the struct size on the LP64
// platforms CI runs, forcing whoever adds it to extend
// fingerprint_sim_config below (and the perturb-every-field test in
// tests/experiment_test.cpp) before cached cells can silently alias.
static_assert(sizeof(void*) != 8 || sizeof(sim::SimConfig) == 96,
              "SimConfig changed size: add the new field to "
              "fingerprint_sim_config and to the perturbation test, then "
              "update this assertion");

Fingerprint fingerprint_sim_config(const sim::SimConfig& config) {
  FingerprintBuilder b;
  // v2: routing_policy / ugal_bias_flits / ugal_via_seed joined the key.
  // The raw fields are hashed (not effective_routing_policy) so a sentinel
  // always-minimal UGAL run and a plain minimal run occupy distinct cache
  // cells even though their results are bit-identical — cheaper than
  // proving the degeneracy at every lookup site.
  b.tag("shg.simconfig.v2");
  b.i64(config.num_vcs).i64(config.buffer_depth_flits);
  b.i64(config.router_delay_cycles);
  b.i64(config.packet_size_flits);
  b.f64(config.injection_rate);
  b.i64(config.concentration);
  b.i64(config.warmup_cycles).i64(config.measure_cycles);
  b.i64(config.drain_cycles);
  b.u64(config.use_route_table ? 1 : 0);
  b.u64(config.verify_route_table ? 1 : 0);
  b.u64(config.use_soa_engine ? 1 : 0);
  b.u64(static_cast<std::uint64_t>(config.latency_sample_cap));
  b.i64(static_cast<long long>(config.routing_policy));
  b.i64(config.ugal_bias_flits);
  b.u64(config.ugal_via_seed);
  b.u64(config.seed);
  return b.done();
}

Fingerprint fingerprint_sim_topology(const topo::Topology& topo,
                                     const std::vector<int>& link_latencies,
                                     int endpoints_per_tile) {
  FingerprintBuilder b;
  b.tag("shg.simtopo.v1");
  b.fp(fingerprint_topology(topo));
  // The family kind selects the default routing function, and the
  // concentration remaps terminals; both change simulation results for
  // equal edge sets, so both are keyed (unlike in the screening keys).
  b.i64(static_cast<long long>(topo.kind()));
  b.i64(topo.concentration());
  b.u64(link_latencies.size());
  for (int latency : link_latencies) b.i64(latency);
  b.i64(endpoints_per_tile);
  return b.done();
}

Fingerprint fingerprint_sim_cell(const Fingerprint& sim_topo_fp,
                                 const std::string& traffic_canonical,
                                 const sim::SimConfig& config,
                                 std::uint64_t trace_content_hash) {
  // "exact" domain separation as for the screening keys: both simulation
  // engines are bit-identical by the oracle-tested engine contract, so
  // they share this tag; any future approximate simulation mode must mint
  // a new one.
  FingerprintBuilder b;
  b.tag("shg.simcell.exact.v1");
  b.fp(sim_topo_fp);
  b.str(traffic_canonical);
  b.fp(fingerprint_sim_config(config));
  // Appended only for trace cells so every pre-trace key is unchanged.
  if (trace_content_hash != 0) {
    b.tag("shg.trace.content");
    b.u64(trace_content_hash);
  }
  return b.done();
}

std::size_t CandidateCache::save_file(const std::string& path) const {
  std::vector<unsigned char> payload;
  payload.reserve(size() * kCandidateEntryBytes);
  std::size_t count = 0;
  for_each_serialized([&](const Fingerprint& key, const CandidateMetrics& m) {
    put_u64(payload, key.hi);
    put_u64(payload, key.lo);
    put_f64(payload, m.area_overhead);
    put_f64(payload, m.avg_hops);
    put_f64(payload, m.diameter);
    put_f64(payload, m.throughput_bound);
    ++count;
  });
  return write_cache_file(path, kKindCandidate, payload, count) ? count : 0;
}

std::size_t CandidateCache::load_file(const std::string& path) {
  std::vector<unsigned char> data;
  std::uint64_t count = 0;
  const ReadStatus status =
      read_cache_file(path, kKindCandidate, kCandidateEntryBytes, data, count);
  if (status != ReadStatus::kOk) {
    if (status == ReadStatus::kDiscarded) note_disk_discarded();
    return 0;
  }
  const unsigned char* p = data.data() + kHeaderBytes;
  for (std::uint64_t i = 0; i < count; ++i, p += kCandidateEntryBytes) {
    Fingerprint key;
    key.hi = get_u64(p);
    key.lo = get_u64(p + 8);
    CandidateMetrics metrics;
    metrics.area_overhead = get_f64(p + 16);
    metrics.avg_hops = get_f64(p + 24);
    metrics.diameter = get_f64(p + 32);
    metrics.throughput_bound = get_f64(p + 40);
    insert(key, metrics);
  }
  note_disk_loaded(count);
  return static_cast<std::size_t>(count);
}

std::size_t SimResultCache::save_file(const std::string& path) const {
  std::vector<unsigned char> payload;
  payload.reserve(size() * kSimResultEntryBytes);
  std::size_t count = 0;
  for_each_serialized([&](const Fingerprint& key, const sim::SimResult& r) {
    put_u64(payload, key.hi);
    put_u64(payload, key.lo);
    put_f64(payload, r.offered_rate);
    put_f64(payload, r.accepted_rate);
    put_f64(payload, r.avg_packet_latency);
    put_f64(payload, r.max_packet_latency);
    put_f64(payload, r.p50_packet_latency);
    put_f64(payload, r.p95_packet_latency);
    put_f64(payload, r.p99_packet_latency);
    put_f64(payload, r.avg_hops);
    put_f64(payload, r.fairness);
    put_u64(payload, static_cast<std::uint64_t>(r.measured_packets));
    put_u64(payload, r.drained ? 1 : 0);
    put_u64(payload, static_cast<std::uint64_t>(r.cycles_run));
    ++count;
  });
  return write_cache_file(path, kKindSimResult, payload, count) ? count : 0;
}

std::size_t SimResultCache::load_file(const std::string& path) {
  std::vector<unsigned char> data;
  std::uint64_t count = 0;
  const ReadStatus status =
      read_cache_file(path, kKindSimResult, kSimResultEntryBytes, data, count);
  if (status != ReadStatus::kOk) {
    if (status == ReadStatus::kDiscarded) note_disk_discarded();
    return 0;
  }
  const unsigned char* p = data.data() + kHeaderBytes;
  for (std::uint64_t i = 0; i < count; ++i, p += kSimResultEntryBytes) {
    Fingerprint key;
    key.hi = get_u64(p);
    key.lo = get_u64(p + 8);
    sim::SimResult r;
    r.offered_rate = get_f64(p + 16);
    r.accepted_rate = get_f64(p + 24);
    r.avg_packet_latency = get_f64(p + 32);
    r.max_packet_latency = get_f64(p + 40);
    r.p50_packet_latency = get_f64(p + 48);
    r.p95_packet_latency = get_f64(p + 56);
    r.p99_packet_latency = get_f64(p + 64);
    r.avg_hops = get_f64(p + 72);
    r.fairness = get_f64(p + 80);
    r.measured_packets = static_cast<long long>(get_u64(p + 88));
    r.drained = get_u64(p + 96) != 0;
    r.cycles_run = static_cast<long long>(get_u64(p + 104));
    insert(key, r);
  }
  note_disk_loaded(count);
  return static_cast<std::size_t>(count);
}

}  // namespace shg::customize
