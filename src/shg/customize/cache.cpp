#include "shg/customize/cache.hpp"

#include <cstdio>
#include <cstring>

namespace shg::customize {

namespace {

// On-disk layout of `shg.cache.v1` (all integers little-endian):
//   [0, 8)    magic "SHGCACHE"
//   [8, 12)   format version (1)
//   [12, 16)  reserved (0)
//   [16, 24)  entry count
//   [24, 32)  FNV-1a 64 checksum of the payload bytes
//   [32, ...) payload: count entries of (hi, lo, 4 metric doubles) = 48 B
constexpr char kMagic[8] = {'S', 'H', 'G', 'C', 'A', 'C', 'H', 'E'};
constexpr std::uint32_t kFormatVersion = 1;
constexpr std::size_t kHeaderBytes = 32;
constexpr std::size_t kEntryBytes = 48;

void put_u32(std::vector<unsigned char>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<unsigned char>(v >> (8 * i)));
  }
}

void put_u64(std::vector<unsigned char>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<unsigned char>(v >> (8 * i)));
  }
}

void put_f64(std::vector<unsigned char>& out, double v) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  put_u64(out, bits);
}

std::uint32_t get_u32(const unsigned char* p) {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

std::uint64_t get_u64(const unsigned char* p) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

double get_f64(const unsigned char* p) {
  const std::uint64_t bits = get_u64(p);
  double v = 0.0;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::uint64_t fnv1a(const unsigned char* data, std::size_t size) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::size_t i = 0; i < size; ++i) {
    h = (h ^ data[i]) * 0x00000100000001b3ULL;
  }
  return h;
}

void warn_discard(const std::string& path, const char* reason) {
  std::fprintf(stderr,
               "shg: warning: candidate cache '%s' %s; discarding it and "
               "falling back to cold screening\n",
               path.c_str(), reason);
}

}  // namespace

FingerprintBuilder& FingerprintBuilder::bytes(const void* data,
                                              std::size_t size) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    // Two lanes over the same byte stream: FNV-1a and a rotate-multiply
    // lane with independent constants.
    lo_ = (lo_ ^ p[i]) * 0x00000100000001b3ULL;
    hi_ ^= (static_cast<std::uint64_t>(p[i]) + 0x9e3779b97f4a7c15ULL);
    hi_ = ((hi_ << 23) | (hi_ >> 41)) * 0xd6e8feb86659fd93ULL;
  }
  return *this;
}

FingerprintBuilder& FingerprintBuilder::u64(std::uint64_t value) {
  unsigned char buf[8];
  for (int i = 0; i < 8; ++i) {
    buf[i] = static_cast<unsigned char>(value >> (8 * i));
  }
  return bytes(buf, sizeof(buf));
}

FingerprintBuilder& FingerprintBuilder::f64(double value) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &value, sizeof(bits));
  return u64(bits);
}

FingerprintBuilder& FingerprintBuilder::str(const std::string& value) {
  u64(value.size());
  return bytes(value.data(), value.size());
}

FingerprintBuilder& FingerprintBuilder::tag(const char* name) {
  const std::size_t len = std::strlen(name);
  u64(len);
  return bytes(name, len);
}

Fingerprint FingerprintBuilder::done() const {
  // splitmix64-style finalization of each lane, cross-mixed so that the
  // (hi, lo) pair depends on both accumulators.
  auto mix = [](std::uint64_t z) {
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  };
  Fingerprint out;
  out.hi = mix(hi_ + 0x9e3779b97f4a7c15ULL * lo_);
  out.lo = mix(lo_ ^ ((hi_ << 32) | (hi_ >> 32)));
  return out;
}

Fingerprint fingerprint_arch(const tech::ArchParams& arch) {
  FingerprintBuilder b;
  b.tag("shg.arch.v1");
  b.i64(arch.rows).i64(arch.cols);
  b.f64(arch.endpoint_area_ge).f64(arch.tile_aspect_ratio);
  b.i64(arch.endpoints_per_tile);
  b.f64(arch.frequency_hz).f64(arch.link_bandwidth_bits);
  const tech::TechnologyModel& t = arch.tech;
  b.f64(t.ge_area_um2);
  b.u64(t.wires.horizontal_pitch_nm.size());
  for (double p : t.wires.horizontal_pitch_nm) b.f64(p);
  b.u64(t.wires.vertical_pitch_nm.size());
  for (double p : t.wires.vertical_pitch_nm) b.f64(p);
  b.f64(t.wire_delay_ps_per_mm);
  b.f64(t.logic_power_w_per_mm2).f64(t.wire_power_w_per_mm2);
  b.f64(arch.transport.wires_per_bit).f64(arch.transport.overhead_wires);
  b.f64(arch.router_area.ge_per_buffer_bit);
  b.f64(arch.router_area.ge_per_crosspoint_bit);
  b.f64(arch.router_area.ge_per_port_control);
  b.i64(arch.router_arch.num_vcs).i64(arch.router_arch.buffer_depth_flits);
  return b.done();
}

Fingerprint fingerprint_shg_candidate(const Fingerprint& arch_fp,
                                      const topo::ShgParams& params) {
  // "exact" screening-mode domain separation lives in the tag: every
  // current screening path is bit-identical to screen_candidate, so they
  // all share this key; a future non-exact mode needs a new tag.
  FingerprintBuilder b;
  b.tag("shg.candidate.shg.exact.v1");
  b.fp(arch_fp);
  b.u64(params.row_skips.size());
  for (int x : params.row_skips) b.i64(x);
  b.u64(params.col_skips.size());
  for (int x : params.col_skips) b.i64(x);
  return b.done();
}

Fingerprint fingerprint_topology(const topo::Topology& topo) {
  FingerprintBuilder b;
  b.tag("shg.topology.v1");
  b.i64(topo.rows()).i64(topo.cols());
  const graph::Graph& g = topo.graph();
  b.u64(static_cast<std::uint64_t>(g.num_edges()));
  for (const graph::Edge& e : g.edges()) {
    b.i64(e.u).i64(e.v);
  }
  return b.done();
}

Fingerprint fingerprint_child(const Fingerprint& arch_fp,
                              const Fingerprint& parent_fp,
                              const std::vector<graph::Edge>& new_edges) {
  FingerprintBuilder b;
  b.tag("shg.candidate.child.exact.v1");
  b.fp(arch_fp).fp(parent_fp);
  b.u64(new_edges.size());
  for (const graph::Edge& e : new_edges) {
    b.i64(e.u).i64(e.v);
  }
  return b.done();
}

CandidateCache::CandidateCache(std::size_t capacity) : capacity_(capacity) {
  SHG_REQUIRE(capacity_ > 0, "candidate cache capacity must be positive");
}

void CandidateCache::unlink(std::size_t idx) {
  Entry& e = entries_[idx];
  if (e.newer != npos) {
    entries_[e.newer].older = e.older;
  } else {
    head_ = e.older;
  }
  if (e.older != npos) {
    entries_[e.older].newer = e.newer;
  } else {
    tail_ = e.newer;
  }
  e.newer = e.older = npos;
}

void CandidateCache::push_front(std::size_t idx) {
  Entry& e = entries_[idx];
  e.newer = npos;
  e.older = head_;
  if (head_ != npos) entries_[head_].newer = idx;
  head_ = idx;
  if (tail_ == npos) tail_ = idx;
}

void CandidateCache::evict_to_capacity() {
  while (index_.size() > capacity_) {
    const std::size_t victim = tail_;
    SHG_ASSERT(victim != npos, "LRU list empty while over capacity");
    unlink(victim);
    index_.erase(entries_[victim].key);
    free_.push_back(victim);
    ++stats_.evictions;
  }
}

std::optional<CandidateMetrics> CandidateCache::lookup(const Fingerprint& key) {
  const auto it = index_.find(key);
  if (it == index_.end()) {
    ++stats_.misses;
    return std::nullopt;
  }
  ++stats_.hits;
  unlink(it->second);
  push_front(it->second);
  return entries_[it->second].metrics;
}

void CandidateCache::insert(const Fingerprint& key,
                            const CandidateMetrics& metrics) {
  const auto it = index_.find(key);
  if (it != index_.end()) {
    entries_[it->second].metrics = metrics;
    unlink(it->second);
    push_front(it->second);
    return;
  }
  std::size_t idx;
  if (!free_.empty()) {
    idx = free_.back();
    free_.pop_back();
    entries_[idx].key = key;
    entries_[idx].metrics = metrics;
  } else {
    idx = entries_.size();
    entries_.push_back(Entry{key, metrics, npos, npos});
  }
  index_.emplace(key, idx);
  push_front(idx);
  ++stats_.insertions;
  evict_to_capacity();
}

void CandidateCache::clear() {
  entries_.clear();
  free_.clear();
  index_.clear();
  head_ = tail_ = npos;
}

std::size_t CandidateCache::size() const { return index_.size(); }

std::size_t CandidateCache::save_file(const std::string& path) const {
  std::vector<unsigned char> payload;
  payload.reserve(index_.size() * kEntryBytes);
  // Least-recent first: load_file re-inserts in file order, so a saved and
  // reloaded cache has the same recency (and thus eviction) order.
  std::size_t count = 0;
  for (std::size_t idx = tail_; idx != npos; idx = entries_[idx].newer) {
    const Entry& e = entries_[idx];
    put_u64(payload, e.key.hi);
    put_u64(payload, e.key.lo);
    put_f64(payload, e.metrics.area_overhead);
    put_f64(payload, e.metrics.avg_hops);
    put_f64(payload, e.metrics.diameter);
    put_f64(payload, e.metrics.throughput_bound);
    ++count;
  }

  std::vector<unsigned char> header;
  header.reserve(kHeaderBytes);
  header.insert(header.end(), kMagic, kMagic + sizeof(kMagic));
  put_u32(header, kFormatVersion);
  put_u32(header, 0);  // reserved
  put_u64(header, count);
  put_u64(header, fnv1a(payload.data(), payload.size()));

  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    std::fprintf(stderr, "shg: warning: cannot write candidate cache '%s'\n",
                 path.c_str());
    return 0;
  }
  const bool ok =
      std::fwrite(header.data(), 1, header.size(), f) == header.size() &&
      (payload.empty() ||
       std::fwrite(payload.data(), 1, payload.size(), f) == payload.size());
  const bool closed = std::fclose(f) == 0;
  if (!ok || !closed) {
    std::fprintf(stderr, "shg: warning: short write to candidate cache '%s'\n",
                 path.c_str());
    return 0;
  }
  return count;
}

std::size_t CandidateCache::load_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return 0;  // absent is a normal cold start, not an error

  std::vector<unsigned char> data;
  unsigned char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    data.insert(data.end(), buf, buf + n);
  }
  const bool read_ok = std::ferror(f) == 0;
  std::fclose(f);

  const char* reason = nullptr;
  std::uint64_t count = 0;
  if (!read_ok) {
    reason = "could not be read";
  } else if (data.size() < kHeaderBytes) {
    reason = "is truncated (shorter than the header)";
  } else if (std::memcmp(data.data(), kMagic, sizeof(kMagic)) != 0) {
    reason = "has a wrong magic (not an shg.cache file)";
  } else if (get_u32(data.data() + 8) != kFormatVersion) {
    reason = "has an unsupported format version";
  } else {
    count = get_u64(data.data() + 16);
    // Guard the size arithmetic against absurd counts before multiplying.
    if (count > (data.size() / kEntryBytes) + 1) {
      reason = "is truncated (entry count exceeds the file size)";
    } else if (data.size() != kHeaderBytes + count * kEntryBytes) {
      reason = "is truncated (size does not match the entry count)";
    } else if (get_u64(data.data() + 24) !=
               fnv1a(data.data() + kHeaderBytes, count * kEntryBytes)) {
      reason = "fails its payload checksum";
    }
  }
  if (reason != nullptr) {
    warn_discard(path, reason);
    ++stats_.disk_discarded;
    return 0;
  }

  const unsigned char* p = data.data() + kHeaderBytes;
  for (std::uint64_t i = 0; i < count; ++i, p += kEntryBytes) {
    Fingerprint key;
    key.hi = get_u64(p);
    key.lo = get_u64(p + 8);
    CandidateMetrics metrics;
    metrics.area_overhead = get_f64(p + 16);
    metrics.avg_hops = get_f64(p + 24);
    metrics.diameter = get_f64(p + 32);
    metrics.throughput_bound = get_f64(p + 40);
    insert(key, metrics);
  }
  stats_.disk_loaded += count;
  return static_cast<std::size_t>(count);
}

}  // namespace shg::customize
