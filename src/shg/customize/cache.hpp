// Content-addressed caches: the storage layer of persistent DSE sessions
// (customize/session.hpp).
//
// The customization methodology (Section V) iterates: the designer re-runs
// DSE with tweaked cost weights, budgets or candidate bounds over largely
// the same candidate space, and every re-invocation used to re-screen every
// candidate from scratch. The same pressure exists one level up: the
// evaluation campaigns behind Figure 6 / Tables 1 and 3 re-run largely
// overlapping (topology x traffic x rate x seed) simulation grids. This
// module stores both kinds of results keyed by a canonical *fingerprint* of
// everything the result depends on, so repeated invocations skip the work
// entirely on a hit:
//
//  * `Fingerprint` / `FingerprintBuilder` — a 128-bit content hash over a
//    platform-independent byte stream (values are fed as explicit
//    little-endian bytes, doubles by bit pattern). Not cryptographic;
//    collision probability at DSE scales (<= millions of candidates) is
//    negligible, and a collision can only return a *screened* metric for a
//    different candidate — it cannot corrupt memory or crash.
//  * `fingerprint_arch` — every numeric field of `tech::ArchParams` that any
//    cost-model step reads (grid, areas, frequency, bandwidth, technology
//    wire stack, transport, router-area coefficients, router architecture).
//    Pure labels (`ArchParams::name`, technology/transport names) are
//    excluded: they affect no computed metric, and including them would only
//    shrink hit rates.
//  * `fingerprint_shg_candidate` — an SHG parameterization under an arch
//    fingerprint. The parent/delta decomposition the incremental screeners
//    use is deliberately NOT part of the key: screening is bit-identical
//    for any decomposition (oracle-tested), so the canonical key is the
//    *union* (the child's final skip sets) and hits transfer across
//    different search trajectories.
//  * `fingerprint_topology` / `fingerprint_child` — arbitrary-family
//    parents (edge list in edge-id order) and their added-edge children.
//    The delta is fingerprinted in *append order*: channel routing depends
//    on the order links enter their length class, so two deltas with equal
//    edge sets but different orders are distinct candidates.
//  * `fingerprint_sim_config` / `fingerprint_sim_topology` /
//    `fingerprint_sim_cell` — one experiment cell of the evaluation engine
//    (eval/experiment.hpp): the simulated topology (edges, family kind —
//    the kind selects the default routing function — concentration, link
//    latencies, endpoint count), the workload's canonical TrafficSpec
//    string, and EVERY field of `sim::SimConfig` including the injection
//    rate and seed. The engine-selection flags (use_route_table /
//    verify_route_table / use_soa_engine) are bit-identity-neutral by the
//    simulator's oracle-tested contract, but they are keyed anyway: the
//    cell key is deliberately total over SimConfig so that a new config
//    field can never silently alias existing cache entries — the
//    static_assert on sizeof(SimConfig) next to the routine (cache.cpp)
//    and the perturb-every-field unit test enforce totality.
//  * Screening-mode domain separation: every key mixes a version/mode tag.
//    All current screening paths are exact (bit-identical to a fresh
//    `screen_candidate` / `screen_topology` run) and share one tag; a
//    future non-exact mode (e.g. relaxed routing) must use a new tag so its
//    values can never be served to an exact caller.
//
// `FingerprintLruCache<Value>` is the store itself: an LRU-bounded hash map
// from fingerprint to a fixed-size value. `CandidateCache` (screening
// metrics) and `SimResultCache` (complete per-cell `sim::SimResult`s,
// every double by bit pattern) instantiate it and add an on-disk tier in
// the versioned binary format `shg.cache.v1` (magic + version + payload
// kind + entry count + payload checksum). The payload-kind field keeps the
// two tiers' files mutually unloadable: a sim-result file handed to the
// candidate loader (or vice versa) is rejected like any other corrupt
// file. Loading validates magic, version, kind, size and checksum and
// DISCARDS the file on any mismatch — a corrupt, truncated or
// future-version cache file degrades to cold screening/simulation with a
// warning on stderr, never to a crash or a stale result.
//
// Exactness & concurrency: cached values are the bits a cold
// screen/simulation produced, so hits are bit-identical to recomputing by
// construction. The store is split into `shards` independent LRU shards
// selected by a fingerprint prefix (`(hi >> 48) % shards`), each with its
// own mutex when locking is on:
//  * shards = 1 without locking (the default) is the single-threaded mode
//    every batch caller uses — one LRU list, no mutex acquisition,
//    bit-identical to the pre-sharding cache in every observable (hit/miss
//    sequence, eviction order, on-disk bytes);
//  * shards > 1 (locking forced on) serves concurrent readers/writers: a
//    lookup or insert locks only its key's shard. Values are exact bits
//    either way, so concurrency can only reorder RECENCY (and therefore
//    eviction victims) across interleavings — never change a returned
//    value. Eviction is per shard (capacity is split evenly), so one hot
//    shard cannot evict another shard's entries.
// On-disk files stay canonical across all of this: save_file serializes in
// ascending fingerprint order whenever shards > 1, so equal contents
// produce equal bytes regardless of shard count or the interleaving that
// built them; shards = 1 keeps the legacy least-recent-first order (the
// bytes every pre-sharding file and oracle pinned). Loaders accept either
// order — entries are re-inserted in file order, which reconstructs the
// recency order deterministically.
#pragma once

#include <algorithm>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "shg/customize/search.hpp"
#include "shg/sim/simulator.hpp"

namespace shg::customize {

/// 128-bit content fingerprint (see file comment for what goes in one).
struct Fingerprint {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  friend bool operator==(const Fingerprint&, const Fingerprint&) = default;
};

/// Hash adaptor for unordered containers keyed by Fingerprint.
struct FingerprintHash {
  std::size_t operator()(const Fingerprint& f) const {
    return static_cast<std::size_t>(f.hi ^ (f.lo * 0x9e3779b97f4a7c15ULL));
  }
};

/// Incremental fingerprint accumulator. Values are serialized to explicit
/// little-endian bytes before hashing, so fingerprints are identical across
/// platforms; strings and lists are length-prefixed so adjacent fields can
/// never alias ("ab","c" vs "a","bc").
class FingerprintBuilder {
 public:
  FingerprintBuilder& bytes(const void* data, std::size_t size);
  FingerprintBuilder& u64(std::uint64_t value);
  FingerprintBuilder& i64(long long value) {
    return u64(static_cast<std::uint64_t>(value));
  }
  FingerprintBuilder& f64(double value);  ///< by bit pattern
  FingerprintBuilder& str(const std::string& value);  ///< length-prefixed
  /// Domain-separation tag; start every keyed object with one.
  FingerprintBuilder& tag(const char* name);
  /// Mixes a finished fingerprint in (for composing keys from keys).
  FingerprintBuilder& fp(const Fingerprint& value) {
    return u64(value.hi).u64(value.lo);
  }
  /// Finalizes (the builder may keep accumulating afterwards; `done` is a
  /// pure function of the bytes fed so far).
  Fingerprint done() const;

 private:
  std::uint64_t lo_ = 0xcbf29ce484222325ULL;  // FNV-1a offset basis
  std::uint64_t hi_ = 0x6c62272e07bb0142ULL;  // independent second lane
};

/// Fingerprint of every ArchParams field the cost model reads (labels
/// excluded; see file comment).
Fingerprint fingerprint_arch(const tech::ArchParams& arch);

/// Canonical key of one SHG candidate under `arch_fp`: the final skip-set
/// union, independent of any parent/delta decomposition.
Fingerprint fingerprint_shg_candidate(const Fingerprint& arch_fp,
                                      const topo::ShgParams& params);

/// Fingerprint of an arbitrary-family topology: grid shape plus the edge
/// list in edge-id order (family labels excluded — equal edge sets screen
/// identically). Edge-id order matters: it is the channel router's greedy
/// order within each length class.
Fingerprint fingerprint_topology(const topo::Topology& topo);

/// Key of a generic added-edge child: (arch, parent topology, delta in
/// append order).
Fingerprint fingerprint_child(const Fingerprint& arch_fp,
                              const Fingerprint& parent_fp,
                              const std::vector<graph::Edge>& new_edges);

/// Fingerprint of EVERY `sim::SimConfig` field, in declaration order —
/// including the injection rate and seed (the experiment engine overrides
/// them per cell before keying) and the result-neutral engine-selection
/// flags (totality over the struct beats a marginally higher hit rate; see
/// file comment). The static_assert on sizeof(SimConfig) in cache.cpp
/// trips when a field is added without extending this routine.
Fingerprint fingerprint_sim_config(const sim::SimConfig& config);

/// The topology half of an experiment-cell key: everything a simulation
/// reads from the `eval::TopologyCase` — the graph (edge list in edge-id
/// order), the family kind (it selects the default routing function), the
/// concentration, the per-link latencies (cost-model output; materialize
/// the unit-latency default before keying) and the endpoint count.
Fingerprint fingerprint_sim_topology(const topo::Topology& topo,
                                     const std::vector<int>& link_latencies,
                                     int endpoints_per_tile);

/// Key of one experiment cell: (simulated topology, canonical TrafficSpec
/// string, full per-cell SimConfig — rate and seed already applied).
/// Workloads given as borrowed `TrafficPattern` pointers have no canonical
/// string and are not content-addressable; the engine never keys them.
/// Trace workloads pass the trace's content hash (sim/trace.hpp,
/// Trace::content_hash) as `trace_content_hash`, mixing the trace BYTES
/// into the key — the canonical string only names the path, and a trace
/// file edited in place must not hit the old cells. Synthetic workloads
/// pass 0 (the default), which leaves their keys byte-identical to the
/// pre-trace era.
Fingerprint fingerprint_sim_cell(const Fingerprint& sim_topo_fp,
                                 const std::string& traffic_canonical,
                                 const sim::SimConfig& config,
                                 std::uint64_t trace_content_hash = 0);

/// Counters of one cache's traffic (monotonic over its lifetime).
struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;
  std::uint64_t disk_loaded = 0;     ///< entries adopted from load_file
  std::uint64_t disk_discarded = 0;  ///< files rejected by validation
};

/// LRU-bounded fingerprint -> Value store: the in-memory tier shared by the
/// candidate and simulation-result caches, split into independent shards
/// keyed by a fingerprint prefix (see the file comment's concurrency
/// section). Values are small fixed-size structs stored by value in a slab
/// per shard; each shard's recency list is intrusive (indices, no
/// allocation per touch) and deterministic on its own.
template <class Value>
class FingerprintLruCache {
 public:
  /// `capacity` is the total entry budget, split evenly over `shards`
  /// independent LRU shards. `locking` arms the per-shard mutexes; it is
  /// forced on whenever shards > 1 and defaults off for the single-shard
  /// single-threaded mode (which is bit-identical to the pre-sharding
  /// cache and pays no lock acquisition).
  explicit FingerprintLruCache(std::size_t capacity, std::size_t shards = 1,
                               bool locking = false)
      : capacity_(capacity),
        locking_(locking || shards > 1),
        shards_(shards == 0 ? 1 : shards) {
    SHG_REQUIRE(capacity_ > 0, "cache capacity must be positive");
    SHG_REQUIRE(shards > 0, "shard count must be positive");
    // Even split, rounded up so the total never drops below `capacity`.
    const std::size_t per_shard = (capacity_ + shards_.size() - 1) / shards_.size();
    for (Shard& shard : shards_) shard.capacity = per_shard;
  }

  std::size_t capacity() const { return capacity_; }
  std::size_t shard_count() const { return shards_.size(); }
  bool locking() const { return locking_; }

  std::size_t size() const {
    std::size_t total = 0;
    for (const Shard& shard : shards_) {
      const auto lock = guard(shard);
      total += shard.index.size();
    }
    return total;
  }

  /// Aggregated counters over every shard plus the file-level disk
  /// counters (by value: the per-shard counters live under their locks).
  CacheStats stats() const {
    CacheStats total;
    {
      const auto lock = guard_disk();
      total = disk_stats_;
    }
    for (const Shard& shard : shards_) {
      const auto lock = guard(shard);
      total.hits += shard.stats.hits;
      total.misses += shard.stats.misses;
      total.insertions += shard.stats.insertions;
      total.evictions += shard.stats.evictions;
    }
    return total;
  }

  /// Returns the cached value and refreshes the entry's recency within its
  /// shard, or nullopt on a miss.
  std::optional<Value> lookup(const Fingerprint& key) {
    Shard& shard = shard_of(key);
    const auto lock = guard(shard);
    const auto it = shard.index.find(key);
    if (it == shard.index.end()) {
      ++shard.stats.misses;
      return std::nullopt;
    }
    ++shard.stats.hits;
    shard.unlink(it->second);
    shard.push_front(it->second);
    return shard.entries[it->second].value;
  }

  /// Inserts (or refreshes) an entry, evicting the least-recently-used
  /// entries of its shard beyond the shard capacity.
  void insert(const Fingerprint& key, const Value& value) {
    Shard& shard = shard_of(key);
    const auto lock = guard(shard);
    const auto it = shard.index.find(key);
    if (it != shard.index.end()) {
      shard.entries[it->second].value = value;
      shard.unlink(it->second);
      shard.push_front(it->second);
      return;
    }
    std::size_t idx;
    if (!shard.free.empty()) {
      idx = shard.free.back();
      shard.free.pop_back();
      shard.entries[idx].key = key;
      shard.entries[idx].value = value;
    } else {
      idx = shard.entries.size();
      shard.entries.push_back(Entry{key, value, npos, npos});
    }
    shard.index.emplace(key, idx);
    shard.push_front(idx);
    ++shard.stats.insertions;
    shard.evict_to_capacity();
  }

  void clear() {
    for (Shard& shard : shards_) {
      const auto lock = guard(shard);
      shard.entries.clear();
      shard.free.clear();
      shard.index.clear();
      shard.head = shard.tail = npos;
    }
  }

  /// Visits every (key, value) shard by shard, least-recent first within
  /// each shard. With one shard this is the legacy whole-cache LRU order —
  /// the save order whose loader reconstructs the same recency (and thus
  /// eviction) order by re-inserting in visit order. Not synchronized
  /// against concurrent writers beyond per-shard locking; snapshot callers
  /// quiesce writers first (save paths run on one thread).
  template <class Fn>
  void for_each_lru(Fn&& fn) const {
    for (const Shard& shard : shards_) {
      const auto lock = guard(shard);
      for (std::size_t idx = shard.tail; idx != npos;
           idx = shard.entries[idx].newer) {
        fn(shard.entries[idx].key, shard.entries[idx].value);
      }
    }
  }

 protected:
  /// Visit order of save_file: the legacy LRU order for a single shard
  /// (byte-identical files to the pre-sharding cache), ascending
  /// fingerprint order otherwise (canonical bytes for equal contents
  /// regardless of shard count or interleaving).
  template <class Fn>
  void for_each_serialized(Fn&& fn) const {
    if (shards_.size() == 1) {
      for_each_lru(fn);
      return;
    }
    std::vector<std::pair<Fingerprint, Value>> all;
    all.reserve(size());
    for_each_lru([&](const Fingerprint& key, const Value& value) {
      all.emplace_back(key, value);
    });
    std::sort(all.begin(), all.end(),
              [](const auto& a, const auto& b) {
                return a.first.hi != b.first.hi ? a.first.hi < b.first.hi
                                                : a.first.lo < b.first.lo;
              });
    for (const auto& [key, value] : all) fn(key, value);
  }

  void note_disk_loaded(std::uint64_t count) {
    const auto lock = guard_disk();
    disk_stats_.disk_loaded += count;
  }
  void note_disk_discarded() {
    const auto lock = guard_disk();
    ++disk_stats_.disk_discarded;
  }

 private:
  struct Entry {
    Fingerprint key;
    Value value;
    /// Neighbors in the shard's recency list (indices into the shard's
    /// entries; npos = end).
    std::size_t newer = npos;
    std::size_t older = npos;
  };
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  struct Shard {
    std::size_t capacity = 0;
    std::vector<Entry> entries;  ///< slab; freed slots recycled via free
    std::vector<std::size_t> free;
    std::size_t head = npos;  ///< most recent
    std::size_t tail = npos;  ///< least recent
    std::unordered_map<Fingerprint, std::size_t, FingerprintHash> index;
    CacheStats stats;
    mutable std::mutex mutex;

    void unlink(std::size_t idx) {
      Entry& e = entries[idx];
      if (e.newer != npos) {
        entries[e.newer].older = e.older;
      } else {
        head = e.older;
      }
      if (e.older != npos) {
        entries[e.older].newer = e.newer;
      } else {
        tail = e.newer;
      }
      e.newer = e.older = npos;
    }

    void push_front(std::size_t idx) {
      Entry& e = entries[idx];
      e.newer = npos;
      e.older = head;
      if (head != npos) entries[head].newer = idx;
      head = idx;
      if (tail == npos) tail = idx;
    }

    void evict_to_capacity() {
      while (index.size() > capacity) {
        const std::size_t victim = tail;
        SHG_ASSERT(victim != npos, "LRU list empty while over capacity");
        unlink(victim);
        index.erase(entries[victim].key);
        free.push_back(victim);
        ++stats.evictions;
      }
    }
  };

  /// The shard of a key: a fingerprint prefix (the top 16 bits of the
  /// mixed hi lane) modulo the shard count, so equal keys always land in
  /// the same shard and the mapping is a pure function of (key, shards).
  Shard& shard_of(const Fingerprint& key) {
    return shards_[static_cast<std::size_t>(key.hi >> 48) % shards_.size()];
  }

  std::unique_lock<std::mutex> guard(const Shard& shard) const {
    return locking_ ? std::unique_lock<std::mutex>(shard.mutex)
                    : std::unique_lock<std::mutex>();
  }
  std::unique_lock<std::mutex> guard_disk() const {
    return locking_ ? std::unique_lock<std::mutex>(disk_mutex_)
                    : std::unique_lock<std::mutex>();
  }

  std::size_t capacity_;
  bool locking_;
  std::vector<Shard> shards_;
  CacheStats disk_stats_;  ///< disk_loaded / disk_discarded only
  mutable std::mutex disk_mutex_;
};

/// Screening-metrics store (48 B/entry on disk, payload kind 0 — the
/// original `shg.cache.v1` layout, byte-compatible with files written
/// before the kind field existed).
class CandidateCache : public FingerprintLruCache<CandidateMetrics> {
 public:
  using FingerprintLruCache::FingerprintLruCache;

  /// Writes every entry to `path` in the canonical serialization order
  /// (legacy least-recent first for a single shard — byte-identical to
  /// pre-sharding files, and a later load_file reconstructs the same
  /// recency order; ascending fingerprint order when sharded, so equal
  /// contents give equal bytes at any shard count). Returns the number of
  /// entries written; on I/O failure warns through shg::log and returns 0.
  std::size_t save_file(const std::string& path) const;

  /// Merges the entries of a `shg.cache.v1` candidate file into the cache
  /// (insert semantics: capacity and recency apply). Validation failures —
  /// missing file, bad magic, version or payload-kind mismatch,
  /// truncation, checksum mismatch — discard the file with a warning
  /// through the shg::log sink (stderr by default) and return 0, leaving
  /// the cache untouched. Returns the number of entries adopted.
  std::size_t load_file(const std::string& path);
};

/// Simulation-result store: complete per-cell `sim::SimResult`s (every
/// double by bit pattern, so a hit reproduces the cold report bytes).
/// 112 B/entry on disk, payload kind 1; per-shard files of this tier are
/// the exchange medium of sharded experiment campaigns
/// (eval::run_experiment_shard).
class SimResultCache : public FingerprintLruCache<sim::SimResult> {
 public:
  using FingerprintLruCache::FingerprintLruCache;

  /// Same contract as CandidateCache::save_file.
  std::size_t save_file(const std::string& path) const;

  /// Same contract as CandidateCache::load_file, for payload kind 1 —
  /// repeated calls with different shard files merge them into one tier.
  std::size_t load_file(const std::string& path);
};

}  // namespace shg::customize
