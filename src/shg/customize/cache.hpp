// Content-addressed caches: the storage layer of persistent DSE sessions
// (customize/session.hpp).
//
// The customization methodology (Section V) iterates: the designer re-runs
// DSE with tweaked cost weights, budgets or candidate bounds over largely
// the same candidate space, and every re-invocation used to re-screen every
// candidate from scratch. The same pressure exists one level up: the
// evaluation campaigns behind Figure 6 / Tables 1 and 3 re-run largely
// overlapping (topology x traffic x rate x seed) simulation grids. This
// module stores both kinds of results keyed by a canonical *fingerprint* of
// everything the result depends on, so repeated invocations skip the work
// entirely on a hit:
//
//  * `Fingerprint` / `FingerprintBuilder` — a 128-bit content hash over a
//    platform-independent byte stream (values are fed as explicit
//    little-endian bytes, doubles by bit pattern). Not cryptographic;
//    collision probability at DSE scales (<= millions of candidates) is
//    negligible, and a collision can only return a *screened* metric for a
//    different candidate — it cannot corrupt memory or crash.
//  * `fingerprint_arch` — every numeric field of `tech::ArchParams` that any
//    cost-model step reads (grid, areas, frequency, bandwidth, technology
//    wire stack, transport, router-area coefficients, router architecture).
//    Pure labels (`ArchParams::name`, technology/transport names) are
//    excluded: they affect no computed metric, and including them would only
//    shrink hit rates.
//  * `fingerprint_shg_candidate` — an SHG parameterization under an arch
//    fingerprint. The parent/delta decomposition the incremental screeners
//    use is deliberately NOT part of the key: screening is bit-identical
//    for any decomposition (oracle-tested), so the canonical key is the
//    *union* (the child's final skip sets) and hits transfer across
//    different search trajectories.
//  * `fingerprint_topology` / `fingerprint_child` — arbitrary-family
//    parents (edge list in edge-id order) and their added-edge children.
//    The delta is fingerprinted in *append order*: channel routing depends
//    on the order links enter their length class, so two deltas with equal
//    edge sets but different orders are distinct candidates.
//  * `fingerprint_sim_config` / `fingerprint_sim_topology` /
//    `fingerprint_sim_cell` — one experiment cell of the evaluation engine
//    (eval/experiment.hpp): the simulated topology (edges, family kind —
//    the kind selects the default routing function — concentration, link
//    latencies, endpoint count), the workload's canonical TrafficSpec
//    string, and EVERY field of `sim::SimConfig` including the injection
//    rate and seed. The engine-selection flags (use_route_table /
//    verify_route_table / use_soa_engine) are bit-identity-neutral by the
//    simulator's oracle-tested contract, but they are keyed anyway: the
//    cell key is deliberately total over SimConfig so that a new config
//    field can never silently alias existing cache entries — the
//    static_assert on sizeof(SimConfig) next to the routine (cache.cpp)
//    and the perturb-every-field unit test enforce totality.
//  * Screening-mode domain separation: every key mixes a version/mode tag.
//    All current screening paths are exact (bit-identical to a fresh
//    `screen_candidate` / `screen_topology` run) and share one tag; a
//    future non-exact mode (e.g. relaxed routing) must use a new tag so its
//    values can never be served to an exact caller.
//
// `FingerprintLruCache<Value>` is the store itself: an LRU-bounded hash map
// from fingerprint to a fixed-size value. `CandidateCache` (screening
// metrics) and `SimResultCache` (complete per-cell `sim::SimResult`s,
// every double by bit pattern) instantiate it and add an on-disk tier in
// the versioned binary format `shg.cache.v1` (magic + version + payload
// kind + entry count + payload checksum). The payload-kind field keeps the
// two tiers' files mutually unloadable: a sim-result file handed to the
// candidate loader (or vice versa) is rejected like any other corrupt
// file. Loading validates magic, version, kind, size and checksum and
// DISCARDS the file on any mismatch — a corrupt, truncated or
// future-version cache file degrades to cold screening/simulation with a
// warning on stderr, never to a crash or a stale result.
//
// Exactness & concurrency: cached values are the bits a cold
// screen/simulation produced, so hits are bit-identical to recomputing by
// construction. The caches are NOT thread-safe (lookup mutates recency);
// callers do cache traffic on one thread and fan out only the misses (see
// session.cpp / eval/experiment.cpp).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "shg/customize/search.hpp"
#include "shg/sim/simulator.hpp"

namespace shg::customize {

/// 128-bit content fingerprint (see file comment for what goes in one).
struct Fingerprint {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  friend bool operator==(const Fingerprint&, const Fingerprint&) = default;
};

/// Hash adaptor for unordered containers keyed by Fingerprint.
struct FingerprintHash {
  std::size_t operator()(const Fingerprint& f) const {
    return static_cast<std::size_t>(f.hi ^ (f.lo * 0x9e3779b97f4a7c15ULL));
  }
};

/// Incremental fingerprint accumulator. Values are serialized to explicit
/// little-endian bytes before hashing, so fingerprints are identical across
/// platforms; strings and lists are length-prefixed so adjacent fields can
/// never alias ("ab","c" vs "a","bc").
class FingerprintBuilder {
 public:
  FingerprintBuilder& bytes(const void* data, std::size_t size);
  FingerprintBuilder& u64(std::uint64_t value);
  FingerprintBuilder& i64(long long value) {
    return u64(static_cast<std::uint64_t>(value));
  }
  FingerprintBuilder& f64(double value);  ///< by bit pattern
  FingerprintBuilder& str(const std::string& value);  ///< length-prefixed
  /// Domain-separation tag; start every keyed object with one.
  FingerprintBuilder& tag(const char* name);
  /// Mixes a finished fingerprint in (for composing keys from keys).
  FingerprintBuilder& fp(const Fingerprint& value) {
    return u64(value.hi).u64(value.lo);
  }
  /// Finalizes (the builder may keep accumulating afterwards; `done` is a
  /// pure function of the bytes fed so far).
  Fingerprint done() const;

 private:
  std::uint64_t lo_ = 0xcbf29ce484222325ULL;  // FNV-1a offset basis
  std::uint64_t hi_ = 0x6c62272e07bb0142ULL;  // independent second lane
};

/// Fingerprint of every ArchParams field the cost model reads (labels
/// excluded; see file comment).
Fingerprint fingerprint_arch(const tech::ArchParams& arch);

/// Canonical key of one SHG candidate under `arch_fp`: the final skip-set
/// union, independent of any parent/delta decomposition.
Fingerprint fingerprint_shg_candidate(const Fingerprint& arch_fp,
                                      const topo::ShgParams& params);

/// Fingerprint of an arbitrary-family topology: grid shape plus the edge
/// list in edge-id order (family labels excluded — equal edge sets screen
/// identically). Edge-id order matters: it is the channel router's greedy
/// order within each length class.
Fingerprint fingerprint_topology(const topo::Topology& topo);

/// Key of a generic added-edge child: (arch, parent topology, delta in
/// append order).
Fingerprint fingerprint_child(const Fingerprint& arch_fp,
                              const Fingerprint& parent_fp,
                              const std::vector<graph::Edge>& new_edges);

/// Fingerprint of EVERY `sim::SimConfig` field, in declaration order —
/// including the injection rate and seed (the experiment engine overrides
/// them per cell before keying) and the result-neutral engine-selection
/// flags (totality over the struct beats a marginally higher hit rate; see
/// file comment). The static_assert on sizeof(SimConfig) in cache.cpp
/// trips when a field is added without extending this routine.
Fingerprint fingerprint_sim_config(const sim::SimConfig& config);

/// The topology half of an experiment-cell key: everything a simulation
/// reads from the `eval::TopologyCase` — the graph (edge list in edge-id
/// order), the family kind (it selects the default routing function), the
/// concentration, the per-link latencies (cost-model output; materialize
/// the unit-latency default before keying) and the endpoint count.
Fingerprint fingerprint_sim_topology(const topo::Topology& topo,
                                     const std::vector<int>& link_latencies,
                                     int endpoints_per_tile);

/// Key of one experiment cell: (simulated topology, canonical TrafficSpec
/// string, full per-cell SimConfig — rate and seed already applied).
/// Workloads given as borrowed `TrafficPattern` pointers have no canonical
/// string and are not content-addressable; the engine never keys them.
Fingerprint fingerprint_sim_cell(const Fingerprint& sim_topo_fp,
                                 const std::string& traffic_canonical,
                                 const sim::SimConfig& config);

/// Counters of one cache's traffic (monotonic over its lifetime).
struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;
  std::uint64_t disk_loaded = 0;     ///< entries adopted from load_file
  std::uint64_t disk_discarded = 0;  ///< files rejected by validation
};

/// LRU-bounded fingerprint -> Value store: the in-memory tier shared by the
/// candidate and simulation-result caches. Values are small fixed-size
/// structs stored by value in a slab; the recency list is intrusive
/// (indices, no allocation per touch).
template <class Value>
class FingerprintLruCache {
 public:
  explicit FingerprintLruCache(std::size_t capacity) : capacity_(capacity) {
    SHG_REQUIRE(capacity_ > 0, "cache capacity must be positive");
  }

  std::size_t capacity() const { return capacity_; }
  std::size_t size() const { return index_.size(); }
  const CacheStats& stats() const { return stats_; }

  /// Returns the cached value and refreshes the entry's recency, or
  /// nullopt on a miss.
  std::optional<Value> lookup(const Fingerprint& key) {
    const auto it = index_.find(key);
    if (it == index_.end()) {
      ++stats_.misses;
      return std::nullopt;
    }
    ++stats_.hits;
    unlink(it->second);
    push_front(it->second);
    return entries_[it->second].value;
  }

  /// Inserts (or refreshes) an entry, evicting the least-recently-used
  /// entries beyond capacity.
  void insert(const Fingerprint& key, const Value& value) {
    const auto it = index_.find(key);
    if (it != index_.end()) {
      entries_[it->second].value = value;
      unlink(it->second);
      push_front(it->second);
      return;
    }
    std::size_t idx;
    if (!free_.empty()) {
      idx = free_.back();
      free_.pop_back();
      entries_[idx].key = key;
      entries_[idx].value = value;
    } else {
      idx = entries_.size();
      entries_.push_back(Entry{key, value, npos, npos});
    }
    index_.emplace(key, idx);
    push_front(idx);
    ++stats_.insertions;
    evict_to_capacity();
  }

  void clear() {
    entries_.clear();
    free_.clear();
    index_.clear();
    head_ = tail_ = npos;
  }

  /// Visits every (key, value) least-recent first — the save order: a
  /// loader re-inserting in visit order reconstructs the same recency (and
  /// thus eviction) order.
  template <class Fn>
  void for_each_lru(Fn&& fn) const {
    for (std::size_t idx = tail_; idx != npos; idx = entries_[idx].newer) {
      fn(entries_[idx].key, entries_[idx].value);
    }
  }

 protected:
  CacheStats stats_;  ///< subclasses bump the disk counters

 private:
  struct Entry {
    Fingerprint key;
    Value value;
    /// Neighbors in the recency list (indices into entries_; npos = end).
    std::size_t newer = npos;
    std::size_t older = npos;
  };
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  void unlink(std::size_t idx) {
    Entry& e = entries_[idx];
    if (e.newer != npos) {
      entries_[e.newer].older = e.older;
    } else {
      head_ = e.older;
    }
    if (e.older != npos) {
      entries_[e.older].newer = e.newer;
    } else {
      tail_ = e.newer;
    }
    e.newer = e.older = npos;
  }

  void push_front(std::size_t idx) {
    Entry& e = entries_[idx];
    e.newer = npos;
    e.older = head_;
    if (head_ != npos) entries_[head_].newer = idx;
    head_ = idx;
    if (tail_ == npos) tail_ = idx;
  }

  void evict_to_capacity() {
    while (index_.size() > capacity_) {
      const std::size_t victim = tail_;
      SHG_ASSERT(victim != npos, "LRU list empty while over capacity");
      unlink(victim);
      index_.erase(entries_[victim].key);
      free_.push_back(victim);
      ++stats_.evictions;
    }
  }

  std::size_t capacity_;
  std::vector<Entry> entries_;  ///< slab; freed slots recycled via free_
  std::vector<std::size_t> free_;
  std::size_t head_ = npos;  ///< most recent
  std::size_t tail_ = npos;  ///< least recent
  std::unordered_map<Fingerprint, std::size_t, FingerprintHash> index_;
};

/// Screening-metrics store (48 B/entry on disk, payload kind 0 — the
/// original `shg.cache.v1` layout, byte-compatible with files written
/// before the kind field existed).
class CandidateCache : public FingerprintLruCache<CandidateMetrics> {
 public:
  using FingerprintLruCache::FingerprintLruCache;

  /// Writes every entry to `path` (least-recent first, so a later
  /// load_file reconstructs the same recency order). Returns the number of
  /// entries written; on I/O failure warns on stderr and returns 0.
  std::size_t save_file(const std::string& path) const;

  /// Merges the entries of a `shg.cache.v1` candidate file into the cache
  /// (insert semantics: capacity and recency apply). Validation failures —
  /// missing file, bad magic, version or payload-kind mismatch,
  /// truncation, checksum mismatch — discard the file with a warning on
  /// stderr and return 0, leaving the cache untouched. Returns the number
  /// of entries adopted.
  std::size_t load_file(const std::string& path);
};

/// Simulation-result store: complete per-cell `sim::SimResult`s (every
/// double by bit pattern, so a hit reproduces the cold report bytes).
/// 112 B/entry on disk, payload kind 1; per-shard files of this tier are
/// the exchange medium of sharded experiment campaigns
/// (eval::run_experiment_shard).
class SimResultCache : public FingerprintLruCache<sim::SimResult> {
 public:
  using FingerprintLruCache::FingerprintLruCache;

  /// Same contract as CandidateCache::save_file.
  std::size_t save_file(const std::string& path) const;

  /// Same contract as CandidateCache::load_file, for payload kind 1 —
  /// repeated calls with different shard files merge them into one tier.
  std::size_t load_file(const std::string& path);
};

}  // namespace shg::customize
