// Content-addressed candidate cache: the storage layer of persistent DSE
// sessions (customize/session.hpp).
//
// The customization methodology (Section V) iterates: the designer re-runs
// DSE with tweaked cost weights, budgets or candidate bounds over largely
// the same candidate space, and every re-invocation used to re-screen every
// candidate from scratch. This module stores screening results keyed by a
// canonical *fingerprint* of everything the result depends on, so repeated
// invocations skip the screen entirely on a hit:
//
//  * `Fingerprint` / `FingerprintBuilder` — a 128-bit content hash over a
//    platform-independent byte stream (values are fed as explicit
//    little-endian bytes, doubles by bit pattern). Not cryptographic;
//    collision probability at DSE scales (<= millions of candidates) is
//    negligible, and a collision can only return a *screened* metric for a
//    different candidate — it cannot corrupt memory or crash.
//  * `fingerprint_arch` — every numeric field of `tech::ArchParams` that any
//    cost-model step reads (grid, areas, frequency, bandwidth, technology
//    wire stack, transport, router-area coefficients, router architecture).
//    Pure labels (`ArchParams::name`, technology/transport names) are
//    excluded: they affect no computed metric, and including them would only
//    shrink hit rates.
//  * `fingerprint_shg_candidate` — an SHG parameterization under an arch
//    fingerprint. The parent/delta decomposition the incremental screeners
//    use is deliberately NOT part of the key: screening is bit-identical
//    for any decomposition (oracle-tested), so the canonical key is the
//    *union* (the child's final skip sets) and hits transfer across
//    different search trajectories.
//  * `fingerprint_topology` / `fingerprint_child` — arbitrary-family
//    parents (edge list in edge-id order) and their added-edge children.
//    The delta is fingerprinted in *append order*: channel routing depends
//    on the order links enter their length class, so two deltas with equal
//    edge sets but different orders are distinct candidates.
//  * Screening-mode domain separation: every key mixes a version/mode tag.
//    All current screening paths are exact (bit-identical to a fresh
//    `screen_candidate` / `screen_topology` run) and share one tag; a
//    future non-exact mode (e.g. relaxed routing) must use a new tag so its
//    values can never be served to an exact caller.
//
// `CandidateCache` is the store itself: an LRU-bounded hash map from
// fingerprint to `CandidateMetrics`, with an optional on-disk tier in the
// versioned binary format `shg.cache.v1` (magic + version + entry count +
// payload checksum). Loading validates magic, version, size and checksum
// and DISCARDS the file on any mismatch — a corrupt, truncated or
// future-version cache file degrades to cold screening with a warning on
// stderr, never to a crash or a stale result.
//
// Exactness & concurrency: cached values are the bits a cold screen
// produced, so hits are bit-identical to re-screening by construction.
// The cache is NOT thread-safe (lookup mutates recency); callers do cache
// traffic on one thread and fan out only the misses (see session.cpp).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "shg/customize/search.hpp"

namespace shg::customize {

/// 128-bit content fingerprint (see file comment for what goes in one).
struct Fingerprint {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  friend bool operator==(const Fingerprint&, const Fingerprint&) = default;
};

/// Hash adaptor for unordered containers keyed by Fingerprint.
struct FingerprintHash {
  std::size_t operator()(const Fingerprint& f) const {
    return static_cast<std::size_t>(f.hi ^ (f.lo * 0x9e3779b97f4a7c15ULL));
  }
};

/// Incremental fingerprint accumulator. Values are serialized to explicit
/// little-endian bytes before hashing, so fingerprints are identical across
/// platforms; strings and lists are length-prefixed so adjacent fields can
/// never alias ("ab","c" vs "a","bc").
class FingerprintBuilder {
 public:
  FingerprintBuilder& bytes(const void* data, std::size_t size);
  FingerprintBuilder& u64(std::uint64_t value);
  FingerprintBuilder& i64(long long value) {
    return u64(static_cast<std::uint64_t>(value));
  }
  FingerprintBuilder& f64(double value);  ///< by bit pattern
  FingerprintBuilder& str(const std::string& value);  ///< length-prefixed
  /// Domain-separation tag; start every keyed object with one.
  FingerprintBuilder& tag(const char* name);
  /// Mixes a finished fingerprint in (for composing keys from keys).
  FingerprintBuilder& fp(const Fingerprint& value) {
    return u64(value.hi).u64(value.lo);
  }
  /// Finalizes (the builder may keep accumulating afterwards; `done` is a
  /// pure function of the bytes fed so far).
  Fingerprint done() const;

 private:
  std::uint64_t lo_ = 0xcbf29ce484222325ULL;  // FNV-1a offset basis
  std::uint64_t hi_ = 0x6c62272e07bb0142ULL;  // independent second lane
};

/// Fingerprint of every ArchParams field the cost model reads (labels
/// excluded; see file comment).
Fingerprint fingerprint_arch(const tech::ArchParams& arch);

/// Canonical key of one SHG candidate under `arch_fp`: the final skip-set
/// union, independent of any parent/delta decomposition.
Fingerprint fingerprint_shg_candidate(const Fingerprint& arch_fp,
                                      const topo::ShgParams& params);

/// Fingerprint of an arbitrary-family topology: grid shape plus the edge
/// list in edge-id order (family labels excluded — equal edge sets screen
/// identically). Edge-id order matters: it is the channel router's greedy
/// order within each length class.
Fingerprint fingerprint_topology(const topo::Topology& topo);

/// Key of a generic added-edge child: (arch, parent topology, delta in
/// append order).
Fingerprint fingerprint_child(const Fingerprint& arch_fp,
                              const Fingerprint& parent_fp,
                              const std::vector<graph::Edge>& new_edges);

/// Counters of one cache's traffic (monotonic over its lifetime).
struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;
  std::uint64_t disk_loaded = 0;     ///< entries adopted from load_file
  std::uint64_t disk_discarded = 0;  ///< files rejected by validation
};

/// LRU-bounded fingerprint -> CandidateMetrics store with an optional
/// on-disk tier (format `shg.cache.v1`; see file comment).
class CandidateCache {
 public:
  explicit CandidateCache(std::size_t capacity);

  std::size_t capacity() const { return capacity_; }
  std::size_t size() const;
  const CacheStats& stats() const { return stats_; }

  /// Returns the cached metrics and refreshes the entry's recency, or
  /// nullopt on a miss.
  std::optional<CandidateMetrics> lookup(const Fingerprint& key);

  /// Inserts (or refreshes) an entry, evicting the least-recently-used
  /// entries beyond capacity.
  void insert(const Fingerprint& key, const CandidateMetrics& metrics);

  void clear();

  /// Writes every entry to `path` (least-recent first, so a later
  /// load_file reconstructs the same recency order). Returns the number of
  /// entries written; on I/O failure warns on stderr and returns 0.
  std::size_t save_file(const std::string& path) const;

  /// Merges the entries of a `shg.cache.v1` file into the cache (insert
  /// semantics: capacity and recency apply). Validation failures — missing
  /// file, bad magic, version mismatch, truncation, checksum mismatch —
  /// discard the file with a warning on stderr and return 0, leaving the
  /// cache untouched. Returns the number of entries adopted.
  std::size_t load_file(const std::string& path);

 private:
  struct Entry {
    Fingerprint key;
    CandidateMetrics metrics;
    /// Neighbors in the recency list (indices into entries_; npos = end).
    std::size_t newer = npos;
    std::size_t older = npos;
  };
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  void unlink(std::size_t idx);
  void push_front(std::size_t idx);
  void evict_to_capacity();

  std::size_t capacity_;
  std::vector<Entry> entries_;  ///< slab; freed slots recycled via free_
  std::vector<std::size_t> free_;
  std::size_t head_ = npos;  ///< most recent
  std::size_t tail_ = npos;  ///< least recent
  std::unordered_map<Fingerprint, std::size_t, FingerprintHash> index_;
  CacheStats stats_;
};

}  // namespace shg::customize
