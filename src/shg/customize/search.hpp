// Sparse-Hamming-graph customization: the iterative strategy of Section V-a.
//
//  Step 1: start with the simplest SHG, the mesh (SR = SC = {});
//  Step 2: predict cost/performance of the current topology;
//  Step 3: compare against the design goals;
//  Step 4: adjust SR / SC following the design principles;
//  Step 5: repeat until satisfied.
//
// The automated strategy adds, per iteration, the skip distance with the
// best predicted benefit-per-area among all candidates that keep the NoC
// within the area budget. "Benefit" uses the fast analytic throughput bound
// for uniform traffic (2E / (N * avg_hops) flits/node/cycle — every flit
// occupies avg_hops of the 2E directed-link slots per cycle), so thousands
// of candidate topologies can be screened without simulation; the final
// configuration is then validated with the full toolchain.
#pragma once

#include <string>
#include <vector>

#include "shg/model/cost_model.hpp"
#include "shg/tech/arch_params.hpp"
#include "shg/topo/topology.hpp"

namespace shg::customize {

/// Design goals (Section V-b: maximize throughput, then minimize latency,
/// without exceeding 40% NoC area overhead).
struct Goal {
  double max_area_overhead = 0.40;
};

/// Analytic screening metrics of one SHG parameterization.
struct CandidateMetrics {
  double area_overhead = 0.0;
  double avg_hops = 0.0;
  double diameter = 0.0;
  double throughput_bound = 0.0;  ///< flits/node/cycle, uniform traffic
};

/// One step of the greedy search (for audit / the examples' logs).
struct SearchStep {
  topo::ShgParams params;
  CandidateMetrics metrics;
  std::string note;
};

/// Search outcome: the chosen parameters, their full cost report, and the
/// audit trail of accepted steps.
struct SearchResult {
  topo::ShgParams params;
  CandidateMetrics metrics;
  model::CostReport cost;
  std::vector<SearchStep> history;
};

/// Computes the screening metrics of one parameterization.
CandidateMetrics screen_candidate(const tech::ArchParams& arch,
                                  const topo::ShgParams& params);

/// Greedy customization: grows SR / SC one skip distance at a time, always
/// taking the best throughput-bound gain per added area, until no candidate
/// fits the budget.
SearchResult customize_greedy(const tech::ArchParams& arch, const Goal& goal);

/// Exhaustive customization over all subsets of the given candidate skip
/// distances (exponential; intended for small grids and for validating the
/// greedy strategy in tests).
SearchResult customize_exhaustive(const tech::ArchParams& arch,
                                  const Goal& goal,
                                  const std::vector<int>& row_candidates,
                                  const std::vector<int>& col_candidates);

}  // namespace shg::customize
