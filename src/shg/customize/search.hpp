// Sparse-Hamming-graph customization: the iterative strategy of Section V-a.
//
//  Step 1: start with the simplest SHG, the mesh (SR = SC = {});
//  Step 2: predict cost/performance of the current topology;
//  Step 3: compare against the design goals;
//  Step 4: adjust SR / SC following the design principles;
//  Step 5: repeat until satisfied.
//
// The automated strategy adds, per iteration, the skip distance with the
// best predicted benefit-per-area among all candidates that keep the NoC
// within the area budget. "Benefit" uses the fast analytic throughput bound
// for uniform traffic (2E / (N * avg_hops) flits/node/cycle — every flit
// occupies avg_hops of the 2E directed-link slots per cycle), so thousands
// of candidate topologies can be screened without simulation; the final
// configuration is then validated with the full toolchain.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "shg/model/cost_model.hpp"
#include "shg/tech/arch_params.hpp"
#include "shg/topo/topology.hpp"

namespace shg::customize {

class Session;  // customize/session.hpp: cross-invocation candidate cache

/// Design goals (Section V-b: maximize throughput, then minimize latency,
/// without exceeding 40% NoC area overhead).
struct Goal {
  double max_area_overhead = 0.40;
};

/// Analytic screening metrics of one SHG parameterization.
struct CandidateMetrics {
  double area_overhead = 0.0;
  double avg_hops = 0.0;
  double diameter = 0.0;
  double throughput_bound = 0.0;  ///< flits/node/cycle, uniform traffic

  /// Bitwise field equality — what the incremental-screening equivalence
  /// oracle and benches mean by "bit-identical".
  friend bool operator==(const CandidateMetrics&,
                         const CandidateMetrics&) = default;
};

/// One step of the greedy search (for audit / the examples' logs).
struct SearchStep {
  topo::ShgParams params;
  CandidateMetrics metrics;
  std::string note;
};

/// Search outcome: the chosen parameters, their full cost report, and the
/// audit trail of accepted steps.
struct SearchResult {
  topo::ShgParams params;
  CandidateMetrics metrics;
  model::CostReport cost;
  std::vector<SearchStep> history;
};

/// Knobs of the search engines. `incremental` turns on the delta-BFS
/// screening reuse (customize/incremental.hpp); `incremental_routing`
/// additionally reuses the parent's channel routing and prices children
/// without materializing their topologies (phys/incremental_route.hpp) —
/// it has no effect with `incremental` off. Results are bit-identical with
/// any combination (oracle-tested); the flags exist for the equivalence
/// tests and the benchmark's old-vs-new comparisons.
///
/// `session` (default off) attaches a persistent DSE session
/// (customize/session.hpp): candidates whose fingerprints hit the
/// session's cache skip re-screening entirely, and the screening context
/// is only (re)built when a miss actually needs it — a warm re-invocation
/// over an already-screened space runs no BFS sweep and no channel
/// routing at all, yet produces a bit-identical SearchResult (history
/// notes included; oracle-tested). The session is read and written on the
/// calling thread only.
struct SearchOptions {
  bool incremental = true;
  bool incremental_routing = true;
  Session* session = nullptr;  ///< not owned; must outlive the call
};

/// Renders a parameterization's skip sets as `SR={...} SC={...}` — the
/// one formatting every history note goes through (exposed so tests can
/// pin it with non-empty sets; the mesh start note alone cannot, since
/// empty sets render as the literal "{}").
std::string fmt_skip_sets(const topo::ShgParams& params);

/// Computes the screening metrics of one parameterization.
CandidateMetrics screen_candidate(const tech::ArchParams& arch,
                                  const topo::ShgParams& params);

/// Family-generic screening entry: the metrics of an arbitrary topology
/// over the arch grid (SlimNoC, torus, custom overlays, ...). Runs exactly
/// the arithmetic of `screen_candidate` — which is now a thin wrapper that
/// materializes the SHG and calls this — so SHG results are unchanged bit
/// for bit. Incremental variants live in
/// `customize::TopologyScreeningContext` (customize/incremental.hpp).
CandidateMetrics screen_topology(const tech::ArchParams& arch,
                                 const topo::Topology& topo);

/// Picks the winner of one greedy iteration among `candidates` (screened
/// neighbors of a parent with metrics `parent`), or returns npos when no
/// candidate is acceptable. Exposed for the scoring regression tests.
///
/// Selection rules:
///  * candidates over the area budget or without a strict throughput-bound
///    gain are rejected;
///  * candidates whose area overhead does not exceed the parent's are
///    "free improvements": they consume no budget, so any of them is taken
///    before any paid candidate. Within the tier the largest gain wins,
///    ties prefer the lower area overhead, then the earliest enumeration
///    index. (The previous implementation clamped the area delta to 1e-9
///    and scored gain / delta, which both inflated free candidates by ~1e9
///    and, for tiny gains, let a paid candidate outrank a free one — the
///    ordering depended on an arbitrary constant.)
///  * paid candidates are ranked by gain per extra area; ties prefer the
///    larger gain, then the earliest enumeration index.
inline constexpr std::size_t kNoCandidate = static_cast<std::size_t>(-1);
std::size_t select_greedy_candidate(const CandidateMetrics& parent,
                                    const std::vector<CandidateMetrics>& candidates,
                                    const Goal& goal);

/// Greedy customization: grows SR / SC one skip distance at a time, always
/// taking the best throughput-bound gain per added area, until no candidate
/// fits the budget.
SearchResult customize_greedy(const tech::ArchParams& arch, const Goal& goal,
                              const SearchOptions& options = {});

/// Exhaustive customization over all subsets of the given candidate skip
/// distances (exponential; intended for small grids and for validating the
/// greedy strategy in tests).
SearchResult customize_exhaustive(const tech::ArchParams& arch,
                                  const Goal& goal,
                                  const std::vector<int>& row_candidates,
                                  const std::vector<int>& col_candidates,
                                  const SearchOptions& options = {});

}  // namespace shg::customize
