// Incremental DSE screening with delta-BFS reuse.
//
// The customization flow (Section IV / V-a) screens neighborhoods of SHG
// parameterizations that differ from a parent by exactly one skip distance,
// yet `screen_candidate` re-runs a full all-pairs BFS sweep and cost-model
// steps 1-4 for every neighbor. This module exploits the structure of that
// neighborhood:
//
//  * Distance reuse. A `ScreeningContext` caches the parent candidate's
//    per-source BFS distance rows. Adding a skip distance only ever ADDS
//    edges, and added edges can only SHRINK hop distances, so each cached
//    row is repaired by a bounded multi-source relaxation seeded at the new
//    links' endpoints (`graph::update_distances_add_edges`) instead of a
//    fresh sweep. Hop distances are unique, so the repaired rows — and the
//    avg-hops / diameter / throughput-bound metrics folded over them in the
//    same accumulation order — are bit-identical to `distance_summary`.
//
//  * Tile-geometry reuse. The cost model assumes identical tiles sized for
//    the worst-case radix, so step 1 is a pure function of the radix;
//    `model::TileGeometryCache` recomputes it only when a candidate's radix
//    actually changed.
//
//  * Routing reuse (ScreeningOptions::incremental_routing, default on). A
//    naive patch of cached channel loads would not be bit-identical — the
//    greedy router assigns channels longest-link-first with
//    congestion-dependent tie-breaks, so a new skip link can legally
//    re-route previously placed links. `phys::RoutingContext` instead
//    replays the divergent length-class suffix of the greedy order from a
//    recorded boundary snapshot, which IS bit-identical (see
//    phys/incremental_route.hpp), and unlocks a topology-free child
//    evaluation: hop metrics come from a bit-parallel all-pairs sweep over
//    the parent graph plus an edge overlay, the radix from bumped parent
//    degrees, and the area from the repaired loads — no child Topology is
//    ever materialized on the screening hot path.
//
//  * Shared-prefix reuse. `screen_batch_incremental` organizes an arbitrary
//    candidate batch (greedy neighborhoods, exhaustive mask enumerations,
//    explore_* subset sweeps) into a prefix forest ordered by canonical
//    skip-element order, derives one context per interior node, and screens
//    each candidate from its longest cached ancestor — 2^k candidates cost
//    one full sweep plus 2^k bounded repairs.
//
// Cache invalidation is by construction: a context is keyed to one parent
// parameterization and one ArchParams; `screen_child` only accepts children
// whose skip sets are supersets of the parent's (checked), and `rebase`
// re-keys the context by repairing its rows in place. Removing a skip
// distance (edge deletion) can only INCREASE distances and is not
// repairable by relaxation — such children are rejected rather than
// screened wrongly.
//
// Equivalence oracle: `verify_incremental_equivalence` screens a batch both
// ways and throws on the first metric that is not bit-identical; the bench
// and CI gate on it.
//
// == Exactness & concurrency ==============================================
//
//  * Exactness. Every screening API in this header is EXACT: metrics are
//    bit-identical to `screen_candidate` / `screen_topology` on the
//    materialized child, for any combination of options (the oracle and
//    the randomized trajectory tests enforce it). Nothing here has a
//    bounded-error mode; the only bounded-error path in the codebase is
//    `phys::RoutingOptions::relaxed`, which no screening flow uses.
//  * Concurrency. `ScreeningContext::screen_child` and
//    `TopologyScreeningContext::screen_child` are const and safe to call
//    concurrently on ONE shared context, provided each caller passes its
//    own `tile_cache` / `ws` (use `parallel_for_with_worker` for
//    worker-pinned scratch). `rebase` and `derive` mutate / read-snapshot
//    the context and require exclusive access — no concurrent
//    `screen_child` may be in flight. `screen_batch_incremental` and
//    `verify_incremental_equivalence` parallelize internally; call them
//    from one thread and let them own the fan-out.
#pragma once

#include <optional>
#include <vector>

#include "shg/customize/search.hpp"
#include "shg/graph/shortest_paths.hpp"
#include "shg/phys/incremental_route.hpp"

namespace shg::customize {

/// Knobs of the incremental screening engine.
struct ScreeningOptions {
  /// Channel-router reuse (phys::RoutingContext) plus the topology-free
  /// child evaluation it unlocks: children are priced from the parent graph
  /// with an edge overlay (bit-parallel all-pairs sweep) and repaired
  /// channel loads, never materializing a child Topology. Metrics are
  /// bit-identical either way (oracle-tested); off preserves the previous
  /// per-child path — fresh `global_route_loads` and a per-row delta-BFS
  /// repair — for equivalence tests and as the benchmark baseline.
  bool incremental_routing = true;
};

/// Cached screening state of one parent parameterization.
class ScreeningContext {
 public:
  /// Full screen of `params`: one all-pairs sweep plus cost steps 1-4. The
  /// context keeps a pointer to `arch`, which must outlive it.
  ScreeningContext(const tech::ArchParams& arch,
                   const topo::ShgParams& params,
                   const ScreeningOptions& options = {});

  const topo::ShgParams& params() const { return params_; }
  const ScreeningOptions& screening_options() const { return options_; }

  /// Per-caller scratch for screen_child's fast path; reusing one across
  /// children keeps its heap allocations warm. One per thread when
  /// screening concurrently (see parallel_for_with_worker).
  struct Workspace {
    std::vector<graph::Edge> new_edges;
    graph::EdgeOverlay overlay;
    graph::BitSweepWorkspace bitsweep;
    std::vector<int> degrees;
    phys::GlobalRoutingResult loads;
  };

  /// Screening metrics of the parent itself; bit-identical to
  /// `screen_candidate(arch, params())`.
  const CandidateMetrics& metrics() const { return metrics_; }

  /// Screens `child`, whose skip sets must be supersets of `params()`.
  /// With incremental routing on this runs the topology-free fast path
  /// (edge-overlay bit sweep + channel-load repair); otherwise it repairs a
  /// copy of the cached distance rows and routes from scratch. Either way
  /// the result is bit-identical to `screen_candidate(arch, child)`. Safe
  /// to call concurrently on one context; `tile_cache` and `ws` (both
  /// optional) must then be per-caller.
  CandidateMetrics screen_child(const topo::ShgParams& child,
                                model::TileGeometryCache* tile_cache =
                                    nullptr,
                                Workspace* ws = nullptr) const;

  /// Re-keys the context onto `child` (a superset of `params()`) by
  /// repairing the cached rows in place — the greedy search uses this when
  /// it accepts a step. `known_metrics`, when given, must be the result of
  /// screening `child` (e.g. the screen_child return the caller just
  /// ranked); the re-keyed context then adopts it instead of re-running
  /// the cost model for a candidate whose metrics are already known.
  void rebase(const topo::ShgParams& child,
              const CandidateMetrics* known_metrics = nullptr);

  /// Derives an independent context for `child` without re-sweeping; the
  /// shared-prefix forest walk uses this for interior nodes. With
  /// `need_metrics` false the cost model is skipped and the derived
  /// context's metrics() are unspecified — for stepping-stone prefixes
  /// that only exist to repair rows for their descendants, the cost model
  /// (the dominant screening cost) would be wasted work.
  ScreeningContext derive(const topo::ShgParams& child,
                          model::TileGeometryCache* tile_cache = nullptr,
                          bool need_metrics = true) const;

 private:
  struct ChildScreen;
  ChildScreen screen_impl(const topo::ShgParams& child,
                          model::TileGeometryCache* tile_cache,
                          bool capture_rows,
                          const CandidateMetrics* known_metrics = nullptr,
                          bool need_metrics = true) const;
  CandidateMetrics screen_child_fast(const topo::ShgParams& child,
                                     model::TileGeometryCache* tile_cache,
                                     Workspace* ws) const;
  /// Rebuilds the reuse state derived from topo_ (the routing context and
  /// the per-node degrees the fast path bumps for child radices); called
  /// after every re-keying of the context.
  void refresh_reuse_state();

  ScreeningContext(const tech::ArchParams* arch,
                   const ScreeningOptions& options, topo::ShgParams params,
                   topo::Topology topo, std::vector<int> dist,
                   std::vector<int> hist,
                   std::vector<graph::DistRowStats> row_stats,
                   const CandidateMetrics& metrics)
      : arch_(arch),
        options_(options),
        params_(std::move(params)),
        topo_(std::move(topo)),
        dist_(std::move(dist)),
        hist_(std::move(hist)),
        row_stats_(std::move(row_stats)),
        metrics_(metrics) {
    refresh_reuse_state();
  }

  const tech::ArchParams* arch_;
  ScreeningOptions options_;
  topo::ShgParams params_;
  topo::Topology topo_;
  /// Fast-path reuse state, rebuilt with topo_: the parent's incremental
  /// router (absent when incremental routing is off) and per-node degrees.
  std::optional<phys::RoutingContext> routing_;
  std::vector<int> degrees_;
  /// Per-source cached state, all row-major n x n (plus one stats entry per
  /// source): the distance rows the repair starts from, the per-row
  /// distance histograms, and the per-row aggregates. The histograms let
  /// the statistics-fused repair keep sum/max/reachable exact at label
  /// changes instead of re-folding O(n) per repaired row — that re-fold
  /// costs as much as the repair itself.
  std::vector<int> dist_;  ///< dist_[src * n + node]
  std::vector<int> hist_;  ///< hist_[src * n + d] = nodes at distance d
  std::vector<graph::DistRowStats> row_stats_;
  CandidateMetrics metrics_;
};

/// Incremental screening for non-SHG families: a parent topology of ANY
/// family (SlimNoC, torus, mesh, custom) plus added-edge children. Before
/// this existed, screening such children meant a fresh sweep and a
/// from-scratch channel route per child; now they flow through the same
/// incremental stack as SHG candidates — `graph::EdgeOverlay` plus the
/// bit-parallel all-pairs sweep for the hop metrics, bumped parent degrees
/// for the radix, and the `phys::RoutingContext` added-links suffix replay
/// (which handles diagonal links with a joint-orientation replay) for the
/// channel loads. No child Topology is ever materialized.
///
/// Exactness: `screen_child` is bit-identical to `screen_topology` on the
/// parent-copy-plus-add_link child (randomized trajectory oracle in
/// tests/session_test.cpp over SHG, SlimNoC and torus parents).
/// Concurrency: `screen_child` is const and safe to share across threads
/// with per-caller `tile_cache` / `ws`.
class TopologyScreeningContext {
 public:
  /// Full screen of `parent` (one routing run + one all-pairs sweep); the
  /// context keeps a pointer to `arch`, which must outlive it.
  TopologyScreeningContext(const tech::ArchParams& arch,
                           topo::Topology parent);

  const topo::Topology& parent() const { return parent_; }

  /// Screening metrics of the parent itself; bit-identical to
  /// `screen_topology(arch, parent())`.
  const CandidateMetrics& metrics() const { return metrics_; }

  /// Per-caller scratch; one per thread when screening concurrently.
  struct Workspace {
    graph::EdgeOverlay overlay;
    graph::BitSweepWorkspace bitsweep;
    std::vector<int> degrees;
    std::vector<phys::GridLink> links;
    phys::GlobalRoutingResult loads;
  };

  /// Screens the child "parent plus `new_edges`" (node ids on the parent
  /// grid, edges absent from the parent — checked; append order matters,
  /// it is the order the links enter the router's greedy classes).
  /// Bit-identical to `screen_topology` on the materialized child.
  CandidateMetrics screen_child(const std::vector<graph::Edge>& new_edges,
                                model::TileGeometryCache* tile_cache = nullptr,
                                Workspace* ws = nullptr) const;

 private:
  const tech::ArchParams* arch_;
  topo::Topology parent_;
  phys::RoutingContext routing_;
  std::vector<int> degrees_;
  CandidateMetrics metrics_;
};

/// Screens every parameterization of `batch` (any order, duplicates
/// allowed) with shared-prefix reuse; the returned metrics are indexed like
/// the input and bit-identical to screening each entry with
/// `screen_candidate`. Interior prefixes missing from the batch are
/// screened as stepping stones. Parallelises over prefix subtrees via
/// `parallel_for`; the output is deterministic regardless of worker count.
std::vector<CandidateMetrics> screen_batch_incremental(
    const tech::ArchParams& arch, const std::vector<topo::ShgParams>& batch,
    const ScreeningOptions& options = {});

/// Equivalence oracle: screens `batch` incrementally (under `options`) and
/// with the full per-candidate path, and throws shg::Error naming the first
/// candidate whose metrics are not bit-identical. Returns the (verified)
/// incremental metrics.
std::vector<CandidateMetrics> verify_incremental_equivalence(
    const tech::ArchParams& arch, const std::vector<topo::ShgParams>& batch,
    const ScreeningOptions& options = {});

}  // namespace shg::customize
