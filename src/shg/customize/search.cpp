#include "shg/customize/search.hpp"

#include <algorithm>
#include <memory>
#include <optional>
#include <sstream>

#include "shg/common/parallel.hpp"
#include "shg/common/strings.hpp"
#include "shg/customize/incremental.hpp"
#include "shg/customize/session.hpp"
#include "shg/graph/shortest_paths.hpp"
#include "shg/topo/generators.hpp"

namespace shg::customize {

namespace {

/// Lexicographic objective: higher throughput bound first, then lower
/// average hop count (throughput priority 1, latency priority 2).
bool better(const CandidateMetrics& a, const CandidateMetrics& b) {
  if (a.throughput_bound != b.throughput_bound) {
    return a.throughput_bound > b.throughput_bound;
  }
  return a.avg_hops < b.avg_hops;
}

/// Screens a batch of parameterizations concurrently; results are indexed
/// like the input, so downstream reductions see the same order as a serial
/// loop (deterministic regardless of the worker count).
std::vector<CandidateMetrics> screen_batch(
    const tech::ArchParams& arch, const std::vector<topo::ShgParams>& batch) {
  std::vector<CandidateMetrics> metrics(batch.size());
  parallel_for(batch.size(), [&](std::size_t i) {
    metrics[i] = screen_candidate(arch, batch[i]);
  });
  return metrics;
}

/// Final cost report of a search winner, through the session's artifact
/// tier when one is attached: the full five-step model is deterministic,
/// so the report cached under (arch, winner) is bit-identical to
/// re-evaluating it — a warm re-invocation skips even the final
/// evaluate_cost.
model::CostReport final_cost_report(const tech::ArchParams& arch,
                                    const topo::ShgParams& params,
                                    Session* session) {
  if (session == nullptr) {
    return model::evaluate_cost(
        arch, topo::make_sparse_hamming(arch.rows, arch.cols,
                                        params.row_skips, params.col_skips));
  }
  FingerprintBuilder b;
  b.tag("shg.artifact.cost_report.v1");
  b.fp(fingerprint_shg_candidate(fingerprint_arch(arch), params));
  const Fingerprint key = b.done();
  if (const auto artifact = session->find_artifact(key)) {
    return *std::static_pointer_cast<const model::CostReport>(artifact);
  }
  auto report = std::make_shared<const model::CostReport>(model::evaluate_cost(
      arch, topo::make_sparse_hamming(arch.rows, arch.cols, params.row_skips,
                                      params.col_skips)));
  session->store_artifact(key, report);
  return *report;
}

}  // namespace

std::string fmt_skip_sets(const topo::ShgParams& params) {
  return "SR=" + fmt_int_set(params.row_skips) +
         " SC=" + fmt_int_set(params.col_skips);
}

CandidateMetrics screen_candidate(const tech::ArchParams& arch,
                                  const topo::ShgParams& params) {
  return screen_topology(arch,
                         topo::make_sparse_hamming(arch.rows, arch.cols,
                                                   params.row_skips,
                                                   params.col_skips));
}

CandidateMetrics screen_topology(const tech::ArchParams& arch,
                                 const topo::Topology& topo) {
  SHG_REQUIRE(topo.rows() == arch.rows && topo.cols() == arch.cols,
              "topology grid does not match the architecture");
  // Screening needs only the area overhead, so the cost model's area-only
  // fast path (steps 1-4) replaces the full evaluation — detailed routing
  // only feeds power/latency numbers no screening decision reads.
  const model::ScreeningCost cost = model::evaluate_screening_cost(arch, topo);
  // One fused all-pairs sweep replaces the average_hops + diameter pair,
  // which ran two full sweeps plus two connectivity probes.
  const graph::DistanceSummary summary = graph::distance_summary(topo.graph());
  SHG_REQUIRE(summary.connected, "screening requires a connected topology");
  CandidateMetrics metrics;
  metrics.area_overhead = cost.area_overhead;
  metrics.avg_hops = summary.avg_hops;
  metrics.diameter = static_cast<double>(summary.diameter);
  const double directed_links = 2.0 * topo.graph().num_edges();
  metrics.throughput_bound =
      directed_links /
      (static_cast<double>(topo.num_tiles()) * metrics.avg_hops);
  return metrics;
}

std::size_t select_greedy_candidate(
    const CandidateMetrics& parent,
    const std::vector<CandidateMetrics>& candidates, const Goal& goal) {
  std::size_t best = kNoCandidate;
  bool best_free = false;
  double best_gain = 0.0;
  double best_score = 0.0;     // gain per extra area; paid tier only
  double best_overhead = 0.0;  // free-tier tie-break
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    const CandidateMetrics& metrics = candidates[i];
    if (metrics.area_overhead > goal.max_area_overhead) continue;
    const double gain = metrics.throughput_bound - parent.throughput_bound;
    if (gain <= 0.0) continue;
    const double extra_area = metrics.area_overhead - parent.area_overhead;
    const bool free = extra_area <= 0.0;
    const double score = free ? 0.0 : gain / extra_area;
    bool take = false;
    if (best == kNoCandidate) {
      take = true;
    } else if (free != best_free) {
      // A free improvement consumes no budget, so it never loses to a paid
      // one — and never wins by an arbitrary 1e-9 clamp either.
      take = free;
    } else if (free) {
      take = gain > best_gain ||
             (gain == best_gain && metrics.area_overhead < best_overhead);
    } else {
      take = score > best_score || (score == best_score && gain > best_gain);
    }
    if (take) {
      best = i;
      best_free = free;
      best_gain = gain;
      best_score = score;
      best_overhead = metrics.area_overhead;
    }
  }
  return best;
}

SearchResult customize_greedy(const tech::ArchParams& arch, const Goal& goal,
                              const SearchOptions& options) {
  SHG_REQUIRE(goal.max_area_overhead > 0.0 && goal.max_area_overhead < 1.0,
              "area budget must be a fraction in (0, 1)");
  SearchResult result;
  result.params = topo::ShgParams{};
  Session* const session = options.session;
  std::optional<Fingerprint> arch_fp;
  if (session != nullptr) arch_fp = fingerprint_arch(arch);

  // The screening context is built LAZILY: with a session attached, a
  // candidate that hits the cache never needs the context, and a fully
  // warm re-invocation therefore runs no BFS sweep and no channel routing
  // at all. The context, once built, is always keyed to the current
  // result.params (ensure_ctx constructs it there; the accept step rebases
  // it).
  std::optional<ScreeningContext> ctx;
  auto ensure_ctx = [&]() -> ScreeningContext* {
    if (!options.incremental) return nullptr;
    if (!ctx) {
      ctx.emplace(arch, result.params,
                  ScreeningOptions{options.incremental_routing});
    }
    return &*ctx;
  };

  bool have_metrics = false;
  if (session != nullptr) {
    if (const auto hit =
            session->lookup(fingerprint_shg_candidate(*arch_fp,
                                                      result.params))) {
      result.metrics = *hit;
      have_metrics = true;
    }
  }
  if (!have_metrics) {
    // The context's construction sweep doubles as the mesh screening, so
    // the incremental path pays no extra full sweep up front.
    if (ScreeningContext* c = ensure_ctx()) {
      result.metrics = c->metrics();
    } else {
      result.metrics = screen_candidate(arch, result.params);
    }
    if (session != nullptr) {
      session->store(fingerprint_shg_candidate(*arch_fp, result.params),
                     result.metrics);
    }
  }
  // Per-worker scratch for the fast screening path, reused across
  // iterations (the first neighborhood is the largest, so the worker count
  // never grows after this).
  struct Scratch {
    model::TileGeometryCache tile_cache;
    ScreeningContext::Workspace ws;
  };
  std::vector<Scratch> scratch;
  SHG_REQUIRE(result.metrics.area_overhead <= goal.max_area_overhead,
              "even the mesh exceeds the area budget");
  result.history.push_back(SearchStep{
      result.params, result.metrics,
      "start: mesh (" + fmt_skip_sets(result.params) + ")"});

  while (true) {
    // Enumerate this iteration's neighborhood (one extra skip distance per
    // candidate), screen the whole batch in parallel, then reduce serially
    // in enumeration order — identical winner and tie-breaks to the old
    // one-candidate-at-a-time loop.
    std::vector<topo::ShgParams> batch;
    for (int x = 2; x < arch.cols; ++x) {
      if (result.params.row_skips.count(x) != 0) continue;
      topo::ShgParams candidate = result.params;
      candidate.row_skips.insert(x);
      batch.push_back(std::move(candidate));
    }
    for (int x = 2; x < arch.rows; ++x) {
      if (result.params.col_skips.count(x) != 0) continue;
      topo::ShgParams candidate = result.params;
      candidate.col_skips.insert(x);
      batch.push_back(std::move(candidate));
    }

    // Session lookups run serially on this thread (the cache is not
    // thread-safe; serial traffic keeps LRU order deterministic); only
    // cache misses reach the screening engines below.
    std::vector<CandidateMetrics> screened(batch.size());
    std::vector<Fingerprint> keys;
    std::vector<std::size_t> miss;
    if (session != nullptr) {
      keys.resize(batch.size());
      for (std::size_t i = 0; i < batch.size(); ++i) {
        keys[i] = fingerprint_shg_candidate(*arch_fp, batch[i]);
        if (const auto hit = session->lookup(keys[i])) {
          screened[i] = *hit;
        } else {
          miss.push_back(i);
        }
      }
    } else {
      miss.resize(batch.size());
      for (std::size_t i = 0; i < batch.size(); ++i) miss[i] = i;
    }

    if (!miss.empty()) {
      ScreeningContext* const c = ensure_ctx();
      if (c != nullptr && options.incremental_routing) {
        // Every neighbor is the parent plus one skip distance — the exact
        // shape both the routing suffix replay and the overlay sweep are
        // built for. Worker-pinned scratch keeps the fast path's buffers
        // and the tile-geometry memo warm across candidates and
        // iterations.
        const std::size_t workers = parallel_worker_count(miss.size());
        if (scratch.size() < workers) scratch.resize(workers);
        parallel_for_with_worker(miss.size(), [&](std::size_t k,
                                                  std::size_t w) {
          screened[miss[k]] =
              c->screen_child(batch[miss[k]], &scratch[w].tile_cache,
                              &scratch[w].ws);
        });
      } else if (c != nullptr) {
        // Delta-BFS reuse without the routing context — the screening path
        // of the PR before incremental routing, preserved as the benchmark
        // baseline and for the on/off equivalence tests.
        parallel_for(miss.size(), [&](std::size_t k) {
          screened[miss[k]] = c->screen_child(batch[miss[k]]);
        });
      } else {
        parallel_for(miss.size(), [&](std::size_t k) {
          screened[miss[k]] = screen_candidate(arch, batch[miss[k]]);
        });
      }
      if (session != nullptr) {
        for (std::size_t k : miss) session->store(keys[k], screened[k]);
      }
    }

    const std::size_t pick =
        select_greedy_candidate(result.metrics, screened, goal);
    if (pick == kNoCandidate) break;

    result.params = batch[pick];
    result.metrics = screened[pick];
    if (ctx) ctx->rebase(result.params, &result.metrics);
    std::ostringstream note;
    note << "accepted " << fmt_skip_sets(result.params) << " (overhead "
         << fmt_double(100.0 * result.metrics.area_overhead, 1)
         << "%, throughput bound "
         << fmt_double(result.metrics.throughput_bound, 3) << ")";
    result.history.push_back(
        SearchStep{result.params, result.metrics, note.str()});
  }

  result.cost = final_cost_report(arch, result.params, session);
  return result;
}

SearchResult customize_exhaustive(const tech::ArchParams& arch,
                                  const Goal& goal,
                                  const std::vector<int>& row_candidates,
                                  const std::vector<int>& col_candidates,
                                  const SearchOptions& options) {
  SHG_REQUIRE(row_candidates.size() + col_candidates.size() <= 20,
              "exhaustive search is exponential; use fewer candidates");
  SearchResult best;
  bool have_best = false;

  const std::size_t row_masks = std::size_t{1} << row_candidates.size();
  const std::size_t col_masks = std::size_t{1} << col_candidates.size();
  std::vector<topo::ShgParams> batch;
  batch.reserve(row_masks * col_masks);
  for (std::size_t rm = 0; rm < row_masks; ++rm) {
    for (std::size_t cm = 0; cm < col_masks; ++cm) {
      topo::ShgParams params;
      for (std::size_t i = 0; i < row_candidates.size(); ++i) {
        if ((rm >> i) & 1) params.row_skips.insert(row_candidates[i]);
      }
      for (std::size_t i = 0; i < col_candidates.size(); ++i) {
        if ((cm >> i) & 1) params.col_skips.insert(col_candidates[i]);
      }
      batch.push_back(std::move(params));
    }
  }
  // The subset lattice is a prefix forest: every mask is some other mask
  // plus one element, so the incremental path reuses the shared-prefix
  // distance rows across the whole enumeration; an attached session
  // additionally serves repeated invocations from its cache and screens
  // only the misses. Either way the serial reduction below sees
  // bit-identical metrics in the same order.
  const std::vector<CandidateMetrics> screened =
      options.session != nullptr
          ? screen_batch_cached(arch, batch, *options.session,
                                options.incremental,
                                ScreeningOptions{options.incremental_routing})
          : (options.incremental
                 ? screen_batch_incremental(
                       arch, batch,
                       ScreeningOptions{options.incremental_routing})
                 : screen_batch(arch, batch));
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const CandidateMetrics& metrics = screened[i];
    if (metrics.area_overhead > goal.max_area_overhead) continue;
    if (!have_best || better(metrics, best.metrics)) {
      have_best = true;
      best.params = std::move(batch[i]);
      best.metrics = metrics;
    }
  }
  SHG_REQUIRE(have_best, "no parameterization fits the area budget");
  best.cost = final_cost_report(arch, best.params, options.session);
  best.history.push_back(SearchStep{best.params, best.metrics, "exhaustive"});
  return best;
}

}  // namespace shg::customize
