#include "shg/customize/search.hpp"

#include <algorithm>
#include <sstream>

#include "shg/common/parallel.hpp"
#include "shg/common/strings.hpp"
#include "shg/graph/shortest_paths.hpp"
#include "shg/topo/generators.hpp"

namespace shg::customize {

namespace {

/// Lexicographic objective: higher throughput bound first, then lower
/// average hop count (throughput priority 1, latency priority 2).
bool better(const CandidateMetrics& a, const CandidateMetrics& b) {
  if (a.throughput_bound != b.throughput_bound) {
    return a.throughput_bound > b.throughput_bound;
  }
  return a.avg_hops < b.avg_hops;
}

/// Screens a batch of parameterizations concurrently; results are indexed
/// like the input, so downstream reductions see the same order as a serial
/// loop (deterministic regardless of the worker count).
std::vector<CandidateMetrics> screen_batch(
    const tech::ArchParams& arch, const std::vector<topo::ShgParams>& batch) {
  std::vector<CandidateMetrics> metrics(batch.size());
  parallel_for(batch.size(), [&](std::size_t i) {
    metrics[i] = screen_candidate(arch, batch[i]);
  });
  return metrics;
}

}  // namespace

CandidateMetrics screen_candidate(const tech::ArchParams& arch,
                                  const topo::ShgParams& params) {
  const topo::Topology topo = topo::make_sparse_hamming(
      arch.rows, arch.cols, params.row_skips, params.col_skips);
  // Screening needs only the area overhead, so the cost model's area-only
  // fast path (steps 1-4) replaces the full evaluation — detailed routing
  // only feeds power/latency numbers no screening decision reads.
  const model::ScreeningCost cost = model::evaluate_screening_cost(arch, topo);
  // One fused all-pairs sweep replaces the average_hops + diameter pair,
  // which ran two full sweeps plus two connectivity probes.
  const graph::DistanceSummary summary = graph::distance_summary(topo.graph());
  SHG_REQUIRE(summary.connected, "screening requires a connected topology");
  CandidateMetrics metrics;
  metrics.area_overhead = cost.area_overhead;
  metrics.avg_hops = summary.avg_hops;
  metrics.diameter = static_cast<double>(summary.diameter);
  const double directed_links = 2.0 * topo.graph().num_edges();
  metrics.throughput_bound =
      directed_links /
      (static_cast<double>(topo.num_tiles()) * metrics.avg_hops);
  return metrics;
}

SearchResult customize_greedy(const tech::ArchParams& arch, const Goal& goal) {
  SHG_REQUIRE(goal.max_area_overhead > 0.0 && goal.max_area_overhead < 1.0,
              "area budget must be a fraction in (0, 1)");
  SearchResult result;
  result.params = topo::ShgParams{};
  result.metrics = screen_candidate(arch, result.params);
  SHG_REQUIRE(result.metrics.area_overhead <= goal.max_area_overhead,
              "even the mesh exceeds the area budget");
  result.history.push_back(
      SearchStep{result.params, result.metrics, "start: mesh (SR={}, SC={})"});

  while (true) {
    // Enumerate this iteration's neighborhood (one extra skip distance per
    // candidate), screen the whole batch in parallel, then reduce serially
    // in enumeration order — identical winner and tie-breaks to the old
    // one-candidate-at-a-time loop.
    std::vector<topo::ShgParams> batch;
    for (int x = 2; x < arch.cols; ++x) {
      if (result.params.row_skips.count(x) != 0) continue;
      topo::ShgParams candidate = result.params;
      candidate.row_skips.insert(x);
      batch.push_back(std::move(candidate));
    }
    for (int x = 2; x < arch.rows; ++x) {
      if (result.params.col_skips.count(x) != 0) continue;
      topo::ShgParams candidate = result.params;
      candidate.col_skips.insert(x);
      batch.push_back(std::move(candidate));
    }
    const std::vector<CandidateMetrics> screened = screen_batch(arch, batch);

    topo::ShgParams best_params;
    CandidateMetrics best_metrics;
    double best_score = 0.0;
    bool found = false;
    for (std::size_t i = 0; i < batch.size(); ++i) {
      const CandidateMetrics& metrics = screened[i];
      if (metrics.area_overhead > goal.max_area_overhead) continue;
      const double gain =
          metrics.throughput_bound - result.metrics.throughput_bound;
      const double extra_area =
          std::max(1e-9, metrics.area_overhead - result.metrics.area_overhead);
      const double score = gain / extra_area;
      if (gain <= 0.0) continue;
      if (!found || score > best_score) {
        found = true;
        best_score = score;
        best_params = batch[i];
        best_metrics = metrics;
      }
    }
    if (!found) break;

    result.params = best_params;
    result.metrics = best_metrics;
    std::ostringstream note;
    note << "accepted SR=" << fmt_int_set(best_params.row_skips)
         << " SC=" << fmt_int_set(best_params.col_skips) << " (overhead "
         << fmt_double(100.0 * best_metrics.area_overhead, 1)
         << "%, throughput bound "
         << fmt_double(best_metrics.throughput_bound, 3) << ")";
    result.history.push_back(SearchStep{best_params, best_metrics, note.str()});
  }

  const topo::Topology final_topo = topo::make_sparse_hamming(
      arch.rows, arch.cols, result.params.row_skips, result.params.col_skips);
  result.cost = model::evaluate_cost(arch, final_topo);
  return result;
}

SearchResult customize_exhaustive(const tech::ArchParams& arch,
                                  const Goal& goal,
                                  const std::vector<int>& row_candidates,
                                  const std::vector<int>& col_candidates) {
  SHG_REQUIRE(row_candidates.size() + col_candidates.size() <= 20,
              "exhaustive search is exponential; use fewer candidates");
  SearchResult best;
  bool have_best = false;

  const std::size_t row_masks = std::size_t{1} << row_candidates.size();
  const std::size_t col_masks = std::size_t{1} << col_candidates.size();
  std::vector<topo::ShgParams> batch;
  batch.reserve(row_masks * col_masks);
  for (std::size_t rm = 0; rm < row_masks; ++rm) {
    for (std::size_t cm = 0; cm < col_masks; ++cm) {
      topo::ShgParams params;
      for (std::size_t i = 0; i < row_candidates.size(); ++i) {
        if ((rm >> i) & 1) params.row_skips.insert(row_candidates[i]);
      }
      for (std::size_t i = 0; i < col_candidates.size(); ++i) {
        if ((cm >> i) & 1) params.col_skips.insert(col_candidates[i]);
      }
      batch.push_back(std::move(params));
    }
  }
  const std::vector<CandidateMetrics> screened = screen_batch(arch, batch);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const CandidateMetrics& metrics = screened[i];
    if (metrics.area_overhead > goal.max_area_overhead) continue;
    if (!have_best || better(metrics, best.metrics)) {
      have_best = true;
      best.params = std::move(batch[i]);
      best.metrics = metrics;
    }
  }
  SHG_REQUIRE(have_best, "no parameterization fits the area budget");
  const topo::Topology final_topo = topo::make_sparse_hamming(
      arch.rows, arch.cols, best.params.row_skips, best.params.col_skips);
  best.cost = model::evaluate_cost(arch, final_topo);
  best.history.push_back(SearchStep{best.params, best.metrics, "exhaustive"});
  return best;
}

}  // namespace shg::customize
