// Design-space exploration: enumerate topology configurations, screen them
// with the fast cost model, and compare achievable trade-off curves.
//
// Backs the related-work claim of Section VI: sparse Hamming graphs are a
// superset of Ruche networks and "offer a more fine-grained adjustment of
// the cost-performance trade-off" — quantified here as the set of
// (area, throughput-bound) points each family can reach.
#pragma once

#include <string>
#include <vector>

#include "shg/customize/search.hpp"

namespace shg::customize {

/// One screened configuration.
struct ExploredPoint {
  topo::ShgParams params;
  CandidateMetrics metrics;
  std::string label;
};

/// Options bounding the enumeration (the full SHG space is 2^(R+C-4)).
struct ExploreOptions {
  int max_row_skips = 2;  ///< enumerate SR subsets up to this size
  int max_col_skips = 2;
  double max_area_overhead = 1.0;  ///< screen-out threshold
  /// Shared-prefix screening reuse (customize/incremental.hpp); results are
  /// bit-identical on or off — off exists for the equivalence tests.
  bool incremental = true;
  /// Channel-router reuse + topology-free child pricing
  /// (phys/incremental_route.hpp); bit-identical on or off, no effect with
  /// `incremental` off.
  bool incremental_routing = true;
  /// Persistent DSE session (customize/session.hpp, default off): screened
  /// candidates are served from the session's cache across explore / search
  /// invocations — a refined re-enumeration (e.g. max_*_skips bumped by
  /// one) re-screens only the configurations the previous pass never saw.
  /// Results are bit-identical with or without a session (not owned; must
  /// outlive the call).
  Session* session = nullptr;
};

/// Enumerates sparse Hamming graph configurations (all SR/SC subsets up to
/// the given sizes) and screens each with the cost model.
std::vector<ExploredPoint> explore_shg(const tech::ArchParams& arch,
                                       const ExploreOptions& options);

/// Enumerates all Ruche configurations (at most one skip distance per
/// dimension — the comparison baseline from related work [41]).
std::vector<ExploredPoint> explore_ruche(const tech::ArchParams& arch,
                                         const ExploreOptions& options);

/// Non-dominated subset under (area_overhead down, throughput_bound up,
/// avg_hops down).
std::vector<ExploredPoint> trade_off_front(std::vector<ExploredPoint> points);

/// Hypervolume-style coverage indicator: the area under the front in the
/// (area_overhead, throughput_bound) plane up to `max_overhead` — a scalar
/// measure of how much of the trade-off space a family covers.
double front_coverage(const std::vector<ExploredPoint>& front,
                      double max_overhead);

}  // namespace shg::customize
