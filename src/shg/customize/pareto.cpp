#include "shg/customize/pareto.hpp"

namespace shg::customize {

bool dominates(const MetricPoint& a, const MetricPoint& b) {
  const bool no_worse = a.area_overhead <= b.area_overhead &&
                        a.noc_power_w <= b.noc_power_w &&
                        a.zero_load_latency <= b.zero_load_latency &&
                        a.saturation_throughput >= b.saturation_throughput;
  const bool strictly_better = a.area_overhead < b.area_overhead ||
                               a.noc_power_w < b.noc_power_w ||
                               a.zero_load_latency < b.zero_load_latency ||
                               a.saturation_throughput >
                                   b.saturation_throughput;
  return no_worse && strictly_better;
}

std::vector<std::size_t> pareto_front(const std::vector<MetricPoint>& points) {
  std::vector<std::size_t> front;
  for (std::size_t i = 0; i < points.size(); ++i) {
    bool dominated = false;
    for (std::size_t j = 0; j < points.size() && !dominated; ++j) {
      if (j != i && dominates(points[j], points[i])) dominated = true;
    }
    if (!dominated) front.push_back(i);
  }
  return front;
}

}  // namespace shg::customize
