// Persistent DSE sessions: cross-invocation reuse of screening work.
//
// The paper's customization methodology (Section V) is iterative — the
// designer re-runs DSE with tweaked budgets, enumeration bounds or traffic
// assumptions over largely the same candidate space. A `Session` carries
// everything reusable across those invocations:
//
//  * a content-addressed candidate tier (customize/cache.hpp): screening
//    metrics keyed by canonical fingerprints, in-memory LRU plus an
//    optional on-disk tier (`shg.cache.v1`, checksummed; corrupt or
//    version-mismatched files are discarded with a warning — the session
//    degrades to cold screening, it never trusts a bad file);
//  * an artifact tier: shared immutable in-memory objects too large or too
//    structured for the serialized tier — final `model::CostReport`s of
//    accepted search winners, `sim::RouteTable`s the experiment engine
//    shares across runs (eval/experiment.hpp). Artifacts are type-erased
//    `shared_ptr<const void>`; type safety comes from the keying
//    convention (every artifact kind mixes its own domain tag into the
//    fingerprint, so keys of different kinds can never collide). This tier
//    is memory-only: it dies with the process.
//  * a simulation-result tier (SimResultCache): complete per-cell
//    `sim::SimResult`s keyed by `fingerprint_sim_cell` — (topology, link
//    latencies, endpoint count, canonical traffic spec, full SimConfig
//    with rate and seed). `eval::run_experiment` consults it before
//    simulating, so overlapping campaigns (added seeds, widened rate
//    grids, refined sweeps) only simulate the new cells, and its per-shard
//    `shg.cache.v1` files (payload kind 1) are the exchange medium of
//    sharded campaigns (`eval::run_experiment_shard` + a merge load).
//
// Wiring: pass a Session through `SearchOptions::session` /
// `ExploreOptions::session` (default off) or `eval::ExperimentSpec::
// session`. With a session attached, re-invocations with overlapping
// candidate spaces skip re-screening on cache hits.
//
// Exactness & concurrency: hits return the exact bits a cold screen
// produced (inserted from the same oracle-tested screening paths), so a
// warm search's history is bit-identical to a cold run's — the randomized
// oracle in tests/session_test.cpp and the `dse_session_warm` bench gate
// assert this end to end. Thread safety is selected by
// `SessionOptions::concurrency` (the `Session::ConcurrencyMode` contract):
//
//  * kSingleThread (default): exactly the pre-concurrency session — one
//    LRU per tier, no locking, all traffic on one thread of control. The
//    DSE engines do session traffic on the calling thread and fan out only
//    the cache-miss screening work (whose outputs land in index-addressed
//    slots per the parallel_for contract), which keeps LRU eviction order
//    — and therefore warm-run behavior — bit-for-bit deterministic.
//  * kSharded: every tier is safe for concurrent readers AND writers — the
//    candidate and simulation-result tiers become `shards` independent
//    lock-protected LRU shards keyed by fingerprint prefix, and the
//    artifact tier takes a mutex per operation. The determinism contract
//    under concurrency: any individual request's RESULT is byte-identical
//    whether served solo or interleaved with others (cached values are the
//    exact bits a cold computation produced, and misses recompute them
//    from scratch — cache state can change WHICH work runs, never its
//    outcome). Only LRU recency — and therefore which entries an eviction
//    removes, and hit/miss counter values — may vary across interleavings.
//    tests/concurrent_session_test.cpp pins this contract under
//    ThreadSanitizer.
#pragma once

#include <memory>
#include <mutex>

#include "shg/customize/cache.hpp"
#include "shg/customize/incremental.hpp"

namespace shg::customize {

/// Threading contract of one session (see the file comment for the full
/// determinism argument). Referenced as `Session::ConcurrencyMode`.
enum class ConcurrencyMode {
  /// One thread of control, no locking, one LRU per tier — bit-identical
  /// to the pre-concurrency session (eviction order included).
  kSingleThread,
  /// Concurrent readers/writers over sharded lock-protected tiers. Request
  /// results stay byte-identical to their solo runs; only LRU recency (and
  /// thus eviction victims and counter values) may vary with interleaving.
  kSharded,
};

/// Knobs of one session.
struct SessionOptions {
  /// Threading contract; kSharded makes every tier concurrency-safe.
  ConcurrencyMode concurrency = ConcurrencyMode::kSingleThread;
  /// Shard count of the candidate and simulation-result tiers under
  /// kSharded (ignored — forced to 1 — under kSingleThread). More shards
  /// mean less lock contention; the fingerprint-prefix mapping spreads
  /// keys uniformly.
  std::size_t shards = 8;
  /// Candidate-tier LRU capacity, in entries (48 B each plus index
  /// overhead; the default comfortably holds every candidate of a
  /// 2-skips-per-dimension exploration sweep hundreds of times over).
  std::size_t capacity = std::size_t{1} << 16;
  /// Artifact-tier LRU capacity, in artifacts (route tables, cost
  /// reports; each may be MBs — keep this small).
  std::size_t artifact_capacity = 64;
  /// Simulation-result-tier LRU capacity, in cells (112 B each on disk;
  /// the default holds the largest Figure-6-class campaign hundreds of
  /// times over).
  std::size_t sim_capacity = std::size_t{1} << 16;
  /// On-disk tier for the candidate cache; empty = memory-only.
  std::string cache_path;
  /// On-disk tier for the simulation-result cache (a campaign's cache
  /// file, or one worker's shard file); empty = memory-only.
  std::string sim_cache_path;
  /// Load `cache_path` / `sim_cache_path` on construction (no-op when a
  /// file is absent; corrupt files are discarded with a warning).
  bool autoload = true;
  /// Save `cache_path` / `sim_cache_path` on destruction (best effort;
  /// never throws).
  bool autosave = true;
};

/// Cross-invocation reuse state. See the file comment.
class Session {
 public:
  /// The session's threading contract (customize::ConcurrencyMode).
  using ConcurrencyMode = customize::ConcurrencyMode;

  explicit Session(SessionOptions options = {});
  ~Session();
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  const SessionOptions& options() const { return options_; }
  ConcurrencyMode concurrency() const { return options_.concurrency; }

  // -- Candidate tier -------------------------------------------------------

  /// Cached screening metrics for `key`, or nullopt. Hits refresh recency.
  std::optional<CandidateMetrics> lookup(const Fingerprint& key) {
    return cache_.lookup(key);
  }
  /// Stores a screened result (evicting LRU entries beyond capacity).
  void store(const Fingerprint& key, const CandidateMetrics& metrics) {
    cache_.insert(key, metrics);
  }

  CacheStats stats() const { return cache_.stats(); }
  CandidateCache& cache() { return cache_; }

  /// Loads the on-disk tier now (also called by the constructor when
  /// `autoload`); returns entries adopted, 0 on absent/discarded files.
  std::size_t load();
  /// Saves the candidate tier to `options().cache_path`; returns entries
  /// written (0 when no path is configured or the write failed).
  std::size_t save();

  // -- Simulation-result tier -----------------------------------------------

  /// Cached simulation result for an experiment-cell key
  /// (fingerprint_sim_cell), or nullopt. Hits refresh recency and return
  /// the exact bits the cold simulation produced.
  std::optional<sim::SimResult> lookup_sim(const Fingerprint& key) {
    return sim_results_.lookup(key);
  }
  /// Stores one simulated cell (evicting LRU entries beyond capacity).
  void store_sim(const Fingerprint& key, const sim::SimResult& result) {
    sim_results_.insert(key, result);
  }

  CacheStats sim_stats() const { return sim_results_.stats(); }
  /// Direct tier access: campaign drivers merge shard files with
  /// `sim_cache().load_file(shard_path)` and write per-shard files with
  /// `sim_cache().save_file(...)` (repeated loads merge; corrupt shards
  /// are discarded with a warning and the affected cells simulate cold).
  SimResultCache& sim_cache() { return sim_results_; }

  /// Loads `options().sim_cache_path` now (also called by the constructor
  /// when `autoload`); returns cells adopted.
  std::size_t load_sim();
  /// Saves the result tier to `options().sim_cache_path`; returns cells
  /// written (0 when no path is configured or the write failed).
  std::size_t save_sim();

  // -- Artifact tier --------------------------------------------------------

  /// Shared immutable artifact for `key`, or null. Hits refresh recency.
  /// Callers static_pointer_cast to the type their keying convention
  /// guarantees (see file comment). Thread-safe under kSharded (one mutex
  /// guards the tier; artifacts themselves are immutable by contract).
  std::shared_ptr<const void> find_artifact(const Fingerprint& key);
  void store_artifact(const Fingerprint& key,
                      std::shared_ptr<const void> artifact);
  std::uint64_t artifact_hits() const;
  std::uint64_t artifact_misses() const;

 private:
  struct Artifact {
    Fingerprint key;
    std::shared_ptr<const void> value;
    std::uint64_t last_used = 0;
  };

  std::unique_lock<std::mutex> artifact_guard() const;

  SessionOptions options_;
  CandidateCache cache_;
  SimResultCache sim_results_;
  std::vector<Artifact> artifacts_;  ///< tiny; linear scan, tick-stamped LRU
  std::uint64_t artifact_tick_ = 0;
  std::uint64_t artifact_hits_ = 0;
  std::uint64_t artifact_misses_ = 0;
  mutable std::mutex artifact_mutex_;  ///< armed under kSharded only
};

/// Per-call accounting of one screen_batch_cached invocation (unlike the
/// session-lifetime CacheStats, these are exact for this call even when
/// other threads drive the same session concurrently).
struct ScreenBatchStats {
  std::size_t hits = 0;    ///< batch entries served from the candidate tier
  std::size_t misses = 0;  ///< batch entries screened (BFS/routing ran)
  /// Per-batch-index hit flags (hit[i] == true when batch[i] came from the
  /// tier), for callers that account per entry — the serve layer's
  /// coalesced screen responses report each request's own hit/miss.
  /// Duplicate keys within one batch all miss together (the forest screens
  /// them once), whereas served one by one only the first would miss.
  std::vector<bool> hit;
};

/// Screens `batch` through the session cache: hits come from the cache,
/// misses are screened with the incremental stack (`screen_batch_incremental`
/// under `screening`, or per-candidate `screen_candidate` sweeps when
/// `incremental` is false) and stored. The result is indexed like the input
/// and bit-identical to a session-free screen of the same batch. `stats`,
/// when non-null, receives this call's exact hit/miss split.
std::vector<CandidateMetrics> screen_batch_cached(
    const tech::ArchParams& arch, const std::vector<topo::ShgParams>& batch,
    Session& session, bool incremental = true,
    const ScreeningOptions& screening = {},
    ScreenBatchStats* stats = nullptr);

/// Cached generic-family screen: looks up (arch, parent, delta) in the
/// session, pricing a miss through `ctx` (the incremental stack — overlay
/// bit sweep + routing suffix replay) and storing it. `arch_fp` /
/// `parent_fp` are the precomputed fingerprints of ctx's arch and parent
/// (compute them once per trajectory, not per child). Bit-identical to
/// `ctx.screen_child(new_edges)` and so to `screen_topology` on the
/// materialized child.
CandidateMetrics screen_child_cached(Session& session,
                                     const TopologyScreeningContext& ctx,
                                     const Fingerprint& arch_fp,
                                     const Fingerprint& parent_fp,
                                     const std::vector<graph::Edge>& new_edges);

}  // namespace shg::customize
