// Pareto-front utilities over the four Figure 6 metrics.
//
// "A topology is usually not strictly better than another topology,
// instead, each topology reaches a certain trade-off between those four
// metrics" — these helpers identify the non-dominated trade-offs.
#pragma once

#include <string>
#include <vector>

namespace shg::customize {

/// One topology's evaluation: two cost metrics (lower is better) and two
/// performance metrics (latency lower / throughput higher is better).
struct MetricPoint {
  std::string name;
  double area_overhead = 0.0;          ///< fraction, lower better
  double noc_power_w = 0.0;            ///< watts, lower better
  double zero_load_latency = 0.0;      ///< cycles, lower better
  double saturation_throughput = 0.0;  ///< flits/cycle/port, higher better
};

/// True iff `a` dominates `b`: no worse in all four metrics, strictly
/// better in at least one.
bool dominates(const MetricPoint& a, const MetricPoint& b);

/// Indices of the non-dominated points (the Pareto front), in input order.
std::vector<std::size_t> pareto_front(const std::vector<MetricPoint>& points);

}  // namespace shg::customize
