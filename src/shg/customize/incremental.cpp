#include "shg/customize/incremental.hpp"

#include <algorithm>
#include <map>
#include <memory>
#include <sstream>
#include <utility>

#include "shg/common/parallel.hpp"
#include "shg/common/strings.hpp"
#include "shg/topo/generators.hpp"

namespace shg::customize {

namespace {

/// Running all-pairs statistics, one update per source row. Sum, diameter
/// and reachable count are exact integers, so accumulating them from
/// per-row aggregates yields the same values as graph::distance_summary's
/// per-pair fold — and therefore a bit-identical avg-hops division.
struct SummaryAccum {
  int diameter = 0;
  long long total = 0;
  long long reachable_pairs = 0;

  void add_row(const graph::DistRowStats& row) {
    total += row.sum;
    reachable_pairs += row.reachable;
    if (row.max > diameter) diameter = row.max;
  }
};

/// Scans one freshly swept row into its histogram + aggregate form (the
/// one-time cost at context construction; repairs keep both exact after
/// that without re-scanning).
void build_row_stats(const int* dist, int n, int* hist,
                     graph::DistRowStats& row) {
  std::fill(hist, hist + n, 0);
  row = graph::DistRowStats{};
  for (int v = 0; v < n; ++v) {
    const int d = dist[v];
    if (d == graph::kUnreachable) continue;
    row.sum += d;
    ++row.reachable;
    if (d > row.max) row.max = d;
    ++hist[d];
  }
}

/// Assembles CandidateMetrics with the same expressions screen_candidate
/// evaluates (same operands, same order — bit-identical doubles).
CandidateMetrics make_metrics(const model::ScreeningCost& cost,
                              const SummaryAccum& acc,
                              const topo::Topology& topo) {
  const long long n = topo.graph().num_nodes();
  SHG_REQUIRE(acc.reachable_pairs == n * n,
              "screening requires a connected topology");
  CandidateMetrics metrics;
  metrics.area_overhead = cost.area_overhead;
  const long long pairs = acc.reachable_pairs - n;  // exclude (u, u)
  if (pairs > 0) {
    metrics.avg_hops =
        static_cast<double>(acc.total) / static_cast<double>(pairs);
  }
  metrics.diameter = static_cast<double>(acc.diameter);
  const double directed_links = 2.0 * topo.graph().num_edges();
  metrics.throughput_bound =
      directed_links /
      (static_cast<double>(topo.num_tiles()) * metrics.avg_hops);
  return metrics;
}

/// Skip distances present in `child` but not `parent`; throws unless the
/// child is a superset (edge deletions are not repairable by relaxation).
std::vector<int> skip_delta(const std::set<int>& parent,
                            const std::set<int>& child, const char* dim) {
  std::vector<int> delta;
  for (int x : child) {
    if (parent.count(x) == 0) delta.push_back(x);
  }
  SHG_REQUIRE(delta.size() == child.size() - parent.size(),
              std::string("incremental screening requires the child's ") +
                  dim + " skips to be a superset of the parent's");
  return delta;
}

}  // namespace

struct ScreeningContext::ChildScreen {
  topo::Topology topo;
  CandidateMetrics metrics;
  /// Captured per-source state; empty unless requested.
  std::vector<int> dist;
  std::vector<int> hist;
  std::vector<graph::DistRowStats> row_stats;
};

ScreeningContext::ScreeningContext(const tech::ArchParams& arch,
                                   const topo::ShgParams& params,
                                   const ScreeningOptions& options)
    : arch_(&arch),
      options_(options),
      params_(params),
      topo_(topo::make_sparse_hamming(arch.rows, arch.cols, params.row_skips,
                                      params.col_skips)) {
  refresh_reuse_state();
  const graph::Graph& g = topo_.graph();
  const int n = g.num_nodes();
  const std::size_t cells =
      static_cast<std::size_t>(n) * static_cast<std::size_t>(n);
  dist_.resize(cells);
  hist_.resize(cells);
  row_stats_.resize(static_cast<std::size_t>(n));
  SummaryAccum acc;
  graph::BfsWorkspace ws;
  for (graph::NodeId s = 0; s < n; ++s) {
    graph::bfs_distances(g, s, ws);
    std::copy(ws.dist.begin(), ws.dist.begin() + n,
              dist_.begin() + static_cast<std::size_t>(s) * n);
    build_row_stats(ws.dist.data(), n,
                    hist_.data() + static_cast<std::size_t>(s) * n,
                    row_stats_[static_cast<std::size_t>(s)]);
    acc.add_row(row_stats_[static_cast<std::size_t>(s)]);
  }
  // With the routing context built, its parent loads feed the cost model
  // directly (same arithmetic, bit-identical areas) instead of a second
  // from-scratch route of the same topology.
  const model::ScreeningCost cost =
      routing_.has_value()
          ? model::evaluate_screening_cost(arch, topo_.radix(),
                                           routing_->loads())
          : model::evaluate_screening_cost(arch, topo_);
  metrics_ = make_metrics(cost, acc, topo_);
}

void ScreeningContext::refresh_reuse_state() {
  const graph::Graph& g = topo_.graph();
  degrees_.resize(static_cast<std::size_t>(g.num_nodes()));
  for (graph::NodeId u = 0; u < g.num_nodes(); ++u) {
    degrees_[static_cast<std::size_t>(u)] = g.degree(u);
  }
  if (options_.incremental_routing) {
    routing_.emplace(topo_);
  } else {
    routing_.reset();
  }
}

ScreeningContext::ChildScreen ScreeningContext::screen_impl(
    const topo::ShgParams& child, model::TileGeometryCache* tile_cache,
    bool capture_rows, const CandidateMetrics* known_metrics,
    bool need_metrics) const {
  const std::vector<int> new_row_skips =
      skip_delta(params_.row_skips, child.row_skips, "row");
  const std::vector<int> new_col_skips =
      skip_delta(params_.col_skips, child.col_skips, "column");

  ChildScreen out{topo::make_sparse_hamming(arch_->rows, arch_->cols,
                                            child.row_skips, child.col_skips),
                  CandidateMetrics{},
                  {},
                  {},
                  {}};
  if (new_row_skips.empty() && new_col_skips.empty()) {
    out.metrics = metrics_;
    if (capture_rows) {
      out.dist = dist_;
      out.hist = hist_;
      out.row_stats = row_stats_;
    }
    return out;
  }

  // The links the new skip distances contribute, from the generator's own
  // enumeration — the repair's new-edge list and the child graph's edge
  // set come from one definition and cannot diverge.
  std::vector<graph::Edge> new_edges;
  topo::for_each_skip_link(
      arch_->rows, arch_->cols, new_row_skips, new_col_skips,
      [&](topo::TileCoord a, topo::TileCoord b) {
        new_edges.push_back(graph::Edge{out.topo.node(a.row, a.col),
                                        out.topo.node(b.row, b.col)});
      });

  const graph::Graph& g = out.topo.graph();
  const int n = g.num_nodes();
  const std::size_t cells =
      static_cast<std::size_t>(n) * static_cast<std::size_t>(n);
  SummaryAccum acc;
  graph::BfsWorkspace ws;
  ws.resize(n);
  std::vector<int> hist_row(static_cast<std::size_t>(n));
  if (capture_rows) {
    out.dist.resize(cells);
    out.hist.resize(cells);
    out.row_stats.resize(static_cast<std::size_t>(n));
  }
  for (graph::NodeId s = 0; s < n; ++s) {
    const std::size_t base = static_cast<std::size_t>(s) * n;
    std::copy(dist_.begin() + base, dist_.begin() + base + n,
              ws.dist.begin());
    std::copy(hist_.begin() + base, hist_.begin() + base + n,
              hist_row.begin());
    graph::DistRowStats row = row_stats_[static_cast<std::size_t>(s)];
    graph::update_distances_add_edges(g, new_edges, ws, hist_row.data(), row);
    acc.add_row(row);
    if (capture_rows) {
      std::copy(ws.dist.begin(), ws.dist.begin() + n, out.dist.begin() + base);
      std::copy(hist_row.begin(), hist_row.end(), out.hist.begin() + base);
      out.row_stats[static_cast<std::size_t>(s)] = row;
    }
  }
  if (known_metrics != nullptr) {
    // The caller screened this exact child already (screen_child during
    // candidate ranking); re-running the cost model — the dominant
    // screening cost — would only reproduce the same bits.
    out.metrics = *known_metrics;
  } else if (need_metrics) {
    // With a routing context available, price the child from a suffix
    // repair of the parent's loads (bit-identical to the from-scratch
    // route the topology overload would run) — rebase/derive pricing then
    // shares the hot path's step-2 reuse.
    model::ScreeningCost cost;
    if (routing_.has_value()) {
      const phys::GlobalRoutingResult loads =
          routing_->route_child_loads(out.topo);
      cost = model::evaluate_screening_cost(*arch_, out.topo.radix(), loads,
                                            tile_cache);
    } else {
      cost = model::evaluate_screening_cost(*arch_, out.topo, tile_cache);
    }
    out.metrics = make_metrics(cost, acc, out.topo);
  }
  return out;
}

CandidateMetrics ScreeningContext::screen_child(
    const topo::ShgParams& child, model::TileGeometryCache* tile_cache,
    Workspace* ws) const {
  if (routing_.has_value()) {
    return screen_child_fast(child, tile_cache, ws);
  }
  return screen_impl(child, tile_cache, /*capture_rows=*/false).metrics;
}

CandidateMetrics ScreeningContext::screen_child_fast(
    const topo::ShgParams& child, model::TileGeometryCache* tile_cache,
    Workspace* ws) const {
  const std::vector<int> new_row_skips =
      skip_delta(params_.row_skips, child.row_skips, "row");
  const std::vector<int> new_col_skips =
      skip_delta(params_.col_skips, child.col_skips, "column");
  if (new_row_skips.empty() && new_col_skips.empty()) return metrics_;

  Workspace local;
  if (ws == nullptr) ws = &local;
  const graph::Graph& g = topo_.graph();
  const int n = g.num_nodes();

  // The links the new skip distances contribute, from the generator's own
  // enumeration, with node ids on the parent grid (the child grid is the
  // same — no child Topology exists on this path).
  ws->new_edges.clear();
  topo::for_each_skip_link(
      arch_->rows, arch_->cols, new_row_skips, new_col_skips,
      [&](topo::TileCoord a, topo::TileCoord b) {
        ws->new_edges.push_back(graph::Edge{topo_.node(a), topo_.node(b)});
      });

  // Distance metrics: bit-parallel all-pairs sweep over parent + overlay.
  // Exact integer totals, so the assembled metrics match make_metrics /
  // screen_candidate bit for bit.
  ws->overlay.assign(n, ws->new_edges);
  const graph::AllPairsTotals totals =
      graph::all_pairs_totals(g, &ws->overlay, ws->bitsweep);
  SHG_REQUIRE(totals.reachable_pairs ==
                  static_cast<long long>(n) * static_cast<long long>(n),
              "screening requires a connected topology");

  // Child radix: the parent degrees bumped at the new links' endpoints.
  ws->degrees.assign(degrees_.begin(), degrees_.end());
  for (const graph::Edge& e : ws->new_edges) {
    ++ws->degrees[static_cast<std::size_t>(e.u)];
    ++ws->degrees[static_cast<std::size_t>(e.v)];
  }
  int radix = 0;
  for (const int d : ws->degrees) radix = std::max(radix, d);

  // Channel loads: suffix replay against the parent's routing context —
  // bit-identical to global_route_loads on the materialized child.
  routing_->route_child_loads(new_row_skips, new_col_skips, &ws->loads);
  const model::ScreeningCost cost =
      model::evaluate_screening_cost(*arch_, radix, ws->loads, tile_cache);

  // Same expressions as make_metrics over the same integers.
  CandidateMetrics metrics;
  metrics.area_overhead = cost.area_overhead;
  const long long pairs = totals.reachable_pairs - n;  // exclude (u, u)
  if (pairs > 0) {
    metrics.avg_hops =
        static_cast<double>(totals.sum) / static_cast<double>(pairs);
  }
  metrics.diameter = static_cast<double>(totals.diameter);
  const long long child_edges =
      g.num_edges() + static_cast<long long>(ws->new_edges.size());
  const double directed_links = 2.0 * static_cast<double>(child_edges);
  metrics.throughput_bound =
      directed_links /
      (static_cast<double>(topo_.num_tiles()) * metrics.avg_hops);
  return metrics;
}

void ScreeningContext::rebase(const topo::ShgParams& child,
                              const CandidateMetrics* known_metrics) {
  ChildScreen screened =
      screen_impl(child, nullptr, /*capture_rows=*/true, known_metrics);
  params_ = child;
  topo_ = std::move(screened.topo);
  dist_ = std::move(screened.dist);
  hist_ = std::move(screened.hist);
  row_stats_ = std::move(screened.row_stats);
  metrics_ = screened.metrics;
  refresh_reuse_state();
}

ScreeningContext ScreeningContext::derive(const topo::ShgParams& child,
                                          model::TileGeometryCache* tile_cache,
                                          bool need_metrics) const {
  ChildScreen screened = screen_impl(child, tile_cache, /*capture_rows=*/true,
                                     nullptr, need_metrics);
  return ScreeningContext(arch_, options_, child, std::move(screened.topo),
                          std::move(screened.dist), std::move(screened.hist),
                          std::move(screened.row_stats), screened.metrics);
}

TopologyScreeningContext::TopologyScreeningContext(
    const tech::ArchParams& arch, topo::Topology parent)
    : arch_(&arch), parent_(std::move(parent)), routing_(parent_) {
  SHG_REQUIRE(parent_.rows() == arch.rows && parent_.cols() == arch.cols,
              "parent topology grid does not match the architecture");
  const graph::Graph& g = parent_.graph();
  degrees_.resize(static_cast<std::size_t>(g.num_nodes()));
  for (graph::NodeId u = 0; u < g.num_nodes(); ++u) {
    degrees_[static_cast<std::size_t>(u)] = g.degree(u);
  }
  // The routing run doubles as cost-model step 2 for the parent: the
  // radix+loads overload runs the same step 1/3/4 arithmetic as the
  // topology overload (pinned bit-identical in tests/cost_model_test.cpp),
  // so metrics() matches screen_topology(arch, parent) bit for bit.
  const model::ScreeningCost cost =
      model::evaluate_screening_cost(arch, parent_.radix(), routing_.loads());
  const graph::DistanceSummary summary =
      graph::distance_summary(parent_.graph());
  SHG_REQUIRE(summary.connected, "screening requires a connected topology");
  metrics_.area_overhead = cost.area_overhead;
  metrics_.avg_hops = summary.avg_hops;
  metrics_.diameter = static_cast<double>(summary.diameter);
  const double directed_links = 2.0 * g.num_edges();
  metrics_.throughput_bound =
      directed_links /
      (static_cast<double>(parent_.num_tiles()) * metrics_.avg_hops);
}

CandidateMetrics TopologyScreeningContext::screen_child(
    const std::vector<graph::Edge>& new_edges,
    model::TileGeometryCache* tile_cache, Workspace* ws) const {
  if (new_edges.empty()) return metrics_;
  Workspace local;
  if (ws == nullptr) ws = &local;
  const graph::Graph& g = parent_.graph();
  const int n = g.num_nodes();

  // Grid links for the routing repair, in append order (the order they
  // enter the child's greedy classes after the parent's same-length
  // links); the phys layer normalizes endpoint order itself. The child
  // must be materializable (Graph rejects parallel edges), so the delta
  // may neither overlap the parent nor repeat an edge within itself —
  // a duplicate would silently double-route the link and double-bump its
  // endpoint degrees, producing metrics for a child that cannot exist.
  ws->links.clear();
  std::vector<long long> seen;
  seen.reserve(new_edges.size());
  for (const graph::Edge& e : new_edges) {
    SHG_REQUIRE(!g.has_edge(e.u, e.v),
                "child delta edges must be absent from the parent");
    const auto [lo, hi] = std::minmax(e.u, e.v);
    seen.push_back(static_cast<long long>(lo) * g.num_nodes() + hi);
    ws->links.push_back(phys::GridLink{parent_.coord(e.u), parent_.coord(e.v)});
  }
  std::sort(seen.begin(), seen.end());
  SHG_REQUIRE(std::adjacent_find(seen.begin(), seen.end()) == seen.end(),
              "child delta edges must be distinct");

  // Hop metrics: bit-parallel all-pairs sweep over parent + overlay (exact
  // integer totals — same division operands as screen_topology).
  ws->overlay.assign(n, new_edges);
  const graph::AllPairsTotals totals =
      graph::all_pairs_totals(g, &ws->overlay, ws->bitsweep);
  SHG_REQUIRE(totals.reachable_pairs ==
                  static_cast<long long>(n) * static_cast<long long>(n),
              "screening requires a connected topology");

  // Child radix from bumped parent degrees.
  ws->degrees.assign(degrees_.begin(), degrees_.end());
  for (const graph::Edge& e : new_edges) {
    ++ws->degrees[static_cast<std::size_t>(e.u)];
    ++ws->degrees[static_cast<std::size_t>(e.v)];
  }
  int radix = 0;
  for (const int d : ws->degrees) radix = std::max(radix, d);

  // Channel loads: added-links suffix replay (joint replay when a diagonal
  // is in the divergent suffix) — bit-identical to routing the
  // materialized child from scratch.
  routing_.route_child_loads(ws->links, &ws->loads);
  const model::ScreeningCost cost =
      model::evaluate_screening_cost(*arch_, radix, ws->loads, tile_cache);

  // Same expressions as make_metrics / screen_topology over the same
  // integers.
  CandidateMetrics metrics;
  metrics.area_overhead = cost.area_overhead;
  const long long pairs = totals.reachable_pairs - n;  // exclude (u, u)
  if (pairs > 0) {
    metrics.avg_hops =
        static_cast<double>(totals.sum) / static_cast<double>(pairs);
  }
  metrics.diameter = static_cast<double>(totals.diameter);
  const long long child_edges =
      g.num_edges() + static_cast<long long>(new_edges.size());
  const double directed_links = 2.0 * static_cast<double>(child_edges);
  metrics.throughput_bound =
      directed_links /
      (static_cast<double>(parent_.num_tiles()) * metrics.avg_hops);
  return metrics;
}

namespace {

/// Prefix forest over a candidate batch: every node's parameterization is
/// its parent's plus exactly one skip distance (canonical element order:
/// row skips ascending, then column skips ascending), so a child context
/// is always derivable from its parent by edge-addition repair.
struct TrieNode {
  topo::ShgParams params;
  std::vector<std::size_t> batch_indices;  ///< batch entries equal to params
  std::vector<std::size_t> children;       ///< node ids, insertion order
};

constexpr int kColElementBase = 1 << 20;  ///< col skip x encodes as base + x

struct Trie {
  std::vector<TrieNode> nodes;
  std::vector<std::map<int, std::size_t>> child_by_code;

  Trie() : nodes(1), child_by_code(1) {}

  std::size_t descend(std::size_t from, int code) {
    auto [it, inserted] = child_by_code[from].emplace(code, nodes.size());
    if (inserted) {
      TrieNode node;
      node.params = nodes[from].params;
      if (code >= kColElementBase) {
        node.params.col_skips.insert(code - kColElementBase);
      } else {
        node.params.row_skips.insert(code);
      }
      nodes[from].children.push_back(it->second);
      nodes.push_back(std::move(node));
      child_by_code.emplace_back();
    }
    return it->second;
  }
};

}  // namespace

std::vector<CandidateMetrics> screen_batch_incremental(
    const tech::ArchParams& arch, const std::vector<topo::ShgParams>& batch,
    const ScreeningOptions& options) {
  std::vector<CandidateMetrics> out(batch.size());
  if (batch.empty()) return out;

  Trie trie;
  for (std::size_t b = 0; b < batch.size(); ++b) {
    std::size_t cur = 0;
    for (int x : batch[b].row_skips) cur = trie.descend(cur, x);
    for (int x : batch[b].col_skips) {
      cur = trie.descend(cur, kColElementBase + x);
    }
    trie.nodes[cur].batch_indices.push_back(b);
  }
  const std::vector<TrieNode>& nodes = trie.nodes;

  auto record = [&](const TrieNode& node, const CandidateMetrics& metrics) {
    for (std::size_t b : node.batch_indices) out[b] = metrics;
  };

  // Per-worker scratch: geometry memo plus the fast path's workspace.
  struct Scratch {
    model::TileGeometryCache tile_cache;
    ScreeningContext::Workspace ws;
  };

  // Recursive subtree walk: derive a context per interior node, screen
  // leaves from the parent context without capturing rows.
  auto dfs = [&](auto&& self, const ScreeningContext& parent_ctx,
                 std::size_t node_id, Scratch& scratch) -> void {
    const TrieNode& node = nodes[node_id];
    if (node.children.empty()) {
      record(node, parent_ctx.screen_child(node.params, &scratch.tile_cache,
                                           &scratch.ws));
      return;
    }
    // Stepping-stone prefixes absent from the batch only exist to repair
    // rows for their descendants — skip their cost model entirely.
    const bool in_batch = !node.batch_indices.empty();
    const ScreeningContext ctx =
        parent_ctx.derive(node.params, &scratch.tile_cache, in_batch);
    if (in_batch) record(node, ctx.metrics());
    for (std::size_t child : node.children) {
      self(self, ctx, child, scratch);
    }
  };

  // One full sweep at the root; everything below is repair-only. The
  // interior depth-1 contexts fan out via one parallel_for (each derive
  // touches disjoint state and disjoint batch indices — a serial loop
  // here would be an Amdahl bottleneck, one cost-model run per interior
  // node before any subtree starts), then the depth-1 leaves and depth-2
  // subtrees fan out via a second one. Output slots are disjoint
  // throughout, so the result is deterministic per the parallel_for
  // contract.
  const ScreeningContext root_ctx(arch, nodes[0].params, options);
  record(nodes[0], root_ctx.metrics());

  struct Task {
    const ScreeningContext* ctx;
    std::size_t node_id;
  };
  std::vector<Task> tasks;
  std::vector<std::size_t> interior1;
  for (std::size_t c1 : nodes[0].children) {
    if (nodes[c1].children.empty()) {
      // Depth-1 leaves fan out with everything else (screen_child is
      // const-safe on a shared context) — batches made entirely of
      // single-skip candidates would otherwise run serially.
      tasks.push_back(Task{&root_ctx, c1});
    } else {
      interior1.push_back(c1);
    }
  }
  std::vector<std::unique_ptr<ScreeningContext>> level1(interior1.size());
  {
    std::vector<Scratch> scratch(parallel_worker_count(interior1.size()));
    parallel_for_with_worker(
        interior1.size(), [&](std::size_t i, std::size_t w) {
          const std::size_t c1 = interior1[i];
          const bool in_batch = !nodes[c1].batch_indices.empty();
          level1[i] = std::make_unique<ScreeningContext>(root_ctx.derive(
              nodes[c1].params, &scratch[w].tile_cache, in_batch));
          if (in_batch) record(nodes[c1], level1[i]->metrics());
        });
  }
  for (std::size_t i = 0; i < interior1.size(); ++i) {
    for (std::size_t c2 : nodes[interior1[i]].children) {
      tasks.push_back(Task{level1[i].get(), c2});
    }
  }
  std::vector<Scratch> scratch(parallel_worker_count(tasks.size()));
  parallel_for_with_worker(tasks.size(), [&](std::size_t t, std::size_t w) {
    dfs(dfs, *tasks[t].ctx, tasks[t].node_id, scratch[w]);
  });
  return out;
}

std::vector<CandidateMetrics> verify_incremental_equivalence(
    const tech::ArchParams& arch, const std::vector<topo::ShgParams>& batch,
    const ScreeningOptions& options) {
  const std::vector<CandidateMetrics> incremental =
      screen_batch_incremental(arch, batch, options);
  std::vector<CandidateMetrics> full(batch.size());
  parallel_for(batch.size(), [&](std::size_t i) {
    full[i] = screen_candidate(arch, batch[i]);
  });
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const CandidateMetrics& a = incremental[i];
    const CandidateMetrics& b = full[i];
    if (a == b) continue;
    std::ostringstream os;
    os << "incremental screening mismatch at batch index " << i << " ("
       << fmt_skip_sets(batch[i]) << "): incremental {"
       << a.area_overhead << ", " << a.avg_hops << ", " << a.diameter << ", "
       << a.throughput_bound << "} vs full {" << b.area_overhead << ", "
       << b.avg_hops << ", " << b.diameter << ", " << b.throughput_bound
       << "}";
    throw Error(os.str());
  }
  return incremental;
}

}  // namespace shg::customize
