#include "shg/customize/explore.hpp"

#include <algorithm>
#include <functional>
#include <sstream>

#include "shg/common/parallel.hpp"
#include "shg/common/strings.hpp"
#include "shg/customize/incremental.hpp"
#include "shg/customize/session.hpp"

namespace shg::customize {

namespace {

/// Enumerates subsets of {2..limit-1} with at most `max_size` elements.
void for_each_skip_subset(int limit, int max_size,
                          const std::function<void(const std::set<int>&)>& fn) {
  std::set<int> current;
  std::function<void(int, int)> rec = [&](int next, int remaining) {
    fn(current);
    if (remaining == 0) return;
    for (int x = next; x < limit; ++x) {
      current.insert(x);
      rec(x + 1, remaining - 1);
      current.erase(x);
    }
  };
  rec(2, max_size);
}

std::string label_for(const topo::ShgParams& params, const char* family) {
  std::ostringstream os;
  os << family << " SR=" << fmt_int_set(params.row_skips)
     << " SC=" << fmt_int_set(params.col_skips);
  return os.str();
}

/// Screens every enumerated parameterization (shared-prefix incremental
/// reuse by default, per-candidate parallel sweeps otherwise), then filters
/// and labels in enumeration order — the returned points are identical
/// (values and order) to the old screen-inside-the-enumeration serial loop.
std::vector<ExploredPoint> screen_all(const tech::ArchParams& arch,
                                      std::vector<topo::ShgParams> batch,
                                      const ExploreOptions& options,
                                      const char* family) {
  std::vector<CandidateMetrics> metrics;
  if (options.session != nullptr) {
    metrics = screen_batch_cached(arch, batch, *options.session,
                                  options.incremental,
                                  ScreeningOptions{options.incremental_routing});
  } else if (options.incremental) {
    metrics = screen_batch_incremental(
        arch, batch, ScreeningOptions{options.incremental_routing});
  } else {
    metrics.resize(batch.size());
    parallel_for(batch.size(), [&](std::size_t i) {
      metrics[i] = screen_candidate(arch, batch[i]);
    });
  }
  std::vector<ExploredPoint> points;
  points.reserve(batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    if (metrics[i].area_overhead > options.max_area_overhead) continue;
    std::string label = label_for(batch[i], family);
    points.push_back(
        ExploredPoint{std::move(batch[i]), metrics[i], std::move(label)});
  }
  return points;
}

}  // namespace

std::vector<ExploredPoint> explore_shg(const tech::ArchParams& arch,
                                       const ExploreOptions& options) {
  std::vector<topo::ShgParams> batch;
  for_each_skip_subset(arch.cols, options.max_row_skips,
                       [&](const std::set<int>& row_skips) {
    for_each_skip_subset(arch.rows, options.max_col_skips,
                         [&](const std::set<int>& col_skips) {
      batch.push_back(topo::ShgParams{row_skips, col_skips});
    });
  });
  return screen_all(arch, std::move(batch), options, "shg");
}

std::vector<ExploredPoint> explore_ruche(const tech::ArchParams& arch,
                                         const ExploreOptions& options) {
  // Ruche networks: exactly one skip distance (or none) per dimension.
  std::vector<topo::ShgParams> batch;
  for (int rx = 0; rx < arch.cols; ++rx) {
    if (rx == 1) continue;  // 0 = no skip; skips start at 2
    for (int ry = 0; ry < arch.rows; ++ry) {
      if (ry == 1) continue;
      topo::ShgParams params;
      if (rx >= 2) params.row_skips.insert(rx);
      if (ry >= 2) params.col_skips.insert(ry);
      batch.push_back(std::move(params));
    }
  }
  return screen_all(arch, std::move(batch), options, "ruche");
}

std::vector<ExploredPoint> trade_off_front(std::vector<ExploredPoint> points) {
  std::vector<ExploredPoint> front;
  for (const auto& candidate : points) {
    bool dominated = false;
    for (const auto& other : points) {
      const bool no_worse =
          other.metrics.area_overhead <= candidate.metrics.area_overhead &&
          other.metrics.throughput_bound >=
              candidate.metrics.throughput_bound &&
          other.metrics.avg_hops <= candidate.metrics.avg_hops;
      const bool strictly_better =
          other.metrics.area_overhead < candidate.metrics.area_overhead ||
          other.metrics.throughput_bound >
              candidate.metrics.throughput_bound ||
          other.metrics.avg_hops < candidate.metrics.avg_hops;
      if (no_worse && strictly_better) {
        dominated = true;
        break;
      }
    }
    if (!dominated) front.push_back(candidate);
  }
  std::sort(front.begin(), front.end(),
            [](const ExploredPoint& a, const ExploredPoint& b) {
              return a.metrics.area_overhead < b.metrics.area_overhead;
            });
  return front;
}

double front_coverage(const std::vector<ExploredPoint>& front,
                      double max_overhead) {
  SHG_REQUIRE(max_overhead > 0.0, "coverage bound must be positive");
  // Staircase integral of throughput_bound over [0, max_overhead]: at each
  // overhead level, the best bound achievable at or below it.
  std::vector<const ExploredPoint*> sorted;
  for (const auto& p : front) sorted.push_back(&p);
  std::sort(sorted.begin(), sorted.end(),
            [](const ExploredPoint* a, const ExploredPoint* b) {
              return a->metrics.area_overhead < b->metrics.area_overhead;
            });
  double coverage = 0.0;
  double best = 0.0;
  double prev_overhead = 0.0;
  for (const auto* p : sorted) {
    const double overhead = std::min(p->metrics.area_overhead, max_overhead);
    if (overhead > prev_overhead) {
      coverage += best * (overhead - prev_overhead);
      prev_overhead = overhead;
    }
    best = std::max(best, p->metrics.throughput_bound);
  }
  coverage += best * std::max(0.0, max_overhead - prev_overhead);
  return coverage;
}

}  // namespace shg::customize
