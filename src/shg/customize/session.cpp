#include "shg/customize/session.hpp"

#include <algorithm>

#include "shg/common/parallel.hpp"

namespace shg::customize {

namespace {

/// Tier shard count for the selected concurrency mode: kSingleThread is
/// pinned to one unlocked shard (the bit-identical legacy layout)
/// regardless of `options.shards`.
std::size_t tier_shards(const SessionOptions& options) {
  if (options.concurrency == ConcurrencyMode::kSingleThread) return 1;
  return options.shards == 0 ? 1 : options.shards;
}

bool tier_locking(const SessionOptions& options) {
  return options.concurrency == ConcurrencyMode::kSharded;
}

}  // namespace

Session::Session(SessionOptions options)
    : options_(std::move(options)),
      cache_(options_.capacity == 0 ? 1 : options_.capacity,
             tier_shards(options_), tier_locking(options_)),
      sim_results_(options_.sim_capacity == 0 ? 1 : options_.sim_capacity,
                   tier_shards(options_), tier_locking(options_)) {
  SHG_REQUIRE(options_.capacity > 0, "session capacity must be positive");
  SHG_REQUIRE(options_.artifact_capacity > 0,
              "artifact capacity must be positive");
  SHG_REQUIRE(options_.sim_capacity > 0,
              "simulation-result capacity must be positive");
  SHG_REQUIRE(options_.concurrency == ConcurrencyMode::kSingleThread ||
                  options_.shards > 0,
              "a sharded session needs at least one shard");
  if (options_.autoload) {
    if (!options_.cache_path.empty()) load();
    if (!options_.sim_cache_path.empty()) load_sim();
  }
}

Session::~Session() {
  if (options_.autosave) {
    // Best effort: destructors must not throw, and save_file reports its
    // own failures on stderr.
    if (!options_.cache_path.empty()) save();
    if (!options_.sim_cache_path.empty()) save_sim();
  }
}

std::size_t Session::load() {
  if (options_.cache_path.empty()) return 0;
  return cache_.load_file(options_.cache_path);
}

std::size_t Session::save() {
  if (options_.cache_path.empty()) return 0;
  return cache_.save_file(options_.cache_path);
}

std::size_t Session::load_sim() {
  if (options_.sim_cache_path.empty()) return 0;
  return sim_results_.load_file(options_.sim_cache_path);
}

std::size_t Session::save_sim() {
  if (options_.sim_cache_path.empty()) return 0;
  return sim_results_.save_file(options_.sim_cache_path);
}

std::unique_lock<std::mutex> Session::artifact_guard() const {
  // kSingleThread keeps the legacy lock-free path; kSharded serializes the
  // (tiny, linear-scan) artifact tier behind one mutex.
  return tier_locking(options_) ? std::unique_lock<std::mutex>(artifact_mutex_)
                                : std::unique_lock<std::mutex>();
}

std::uint64_t Session::artifact_hits() const {
  const auto lock = artifact_guard();
  return artifact_hits_;
}

std::uint64_t Session::artifact_misses() const {
  const auto lock = artifact_guard();
  return artifact_misses_;
}

std::shared_ptr<const void> Session::find_artifact(const Fingerprint& key) {
  const auto lock = artifact_guard();
  for (Artifact& a : artifacts_) {
    if (a.key == key) {
      a.last_used = ++artifact_tick_;
      ++artifact_hits_;
      return a.value;
    }
  }
  ++artifact_misses_;
  return nullptr;
}

void Session::store_artifact(const Fingerprint& key,
                             std::shared_ptr<const void> artifact) {
  SHG_REQUIRE(artifact != nullptr, "cannot store a null artifact");
  const auto lock = artifact_guard();
  for (Artifact& a : artifacts_) {
    if (a.key == key) {
      a.value = std::move(artifact);
      a.last_used = ++artifact_tick_;
      return;
    }
  }
  if (artifacts_.size() >= options_.artifact_capacity) {
    auto victim = std::min_element(
        artifacts_.begin(), artifacts_.end(),
        [](const Artifact& a, const Artifact& b) {
          return a.last_used < b.last_used;
        });
    *victim = Artifact{key, std::move(artifact), ++artifact_tick_};
    return;
  }
  artifacts_.push_back(Artifact{key, std::move(artifact), ++artifact_tick_});
}

std::vector<CandidateMetrics> screen_batch_cached(
    const tech::ArchParams& arch, const std::vector<topo::ShgParams>& batch,
    Session& session, bool incremental, const ScreeningOptions& screening,
    ScreenBatchStats* stats) {
  std::vector<CandidateMetrics> out(batch.size());
  if (stats != nullptr) *stats = ScreenBatchStats{};
  if (batch.empty()) return out;

  // All session traffic on this thread (under kSingleThread the cache is
  // not locked and serial access keeps LRU order deterministic; under
  // kSharded the tiers lock per shard); only the miss screening fans out,
  // inside screen_batch_incremental / parallel_for.
  const Fingerprint arch_fp = fingerprint_arch(arch);
  std::vector<Fingerprint> keys(batch.size());
  std::vector<std::size_t> miss;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    keys[i] = fingerprint_shg_candidate(arch_fp, batch[i]);
    if (const auto hit = session.lookup(keys[i])) {
      out[i] = *hit;
    } else {
      miss.push_back(i);
    }
  }
  if (stats != nullptr) {
    stats->misses = miss.size();
    stats->hits = batch.size() - miss.size();
    stats->hit.assign(batch.size(), true);
    for (std::size_t i : miss) stats->hit[i] = false;
  }
  if (miss.empty()) return out;

  std::vector<topo::ShgParams> miss_batch;
  miss_batch.reserve(miss.size());
  for (std::size_t i : miss) miss_batch.push_back(batch[i]);
  std::vector<CandidateMetrics> screened;
  if (incremental) {
    // Duplicate misses are fine: the prefix forest collapses equal
    // parameterizations onto one node.
    screened = screen_batch_incremental(arch, miss_batch, screening);
  } else {
    screened.resize(miss_batch.size());
    parallel_for(miss_batch.size(), [&](std::size_t k) {
      screened[k] = screen_candidate(arch, miss_batch[k]);
    });
  }
  for (std::size_t k = 0; k < miss.size(); ++k) {
    out[miss[k]] = screened[k];
    session.store(keys[miss[k]], screened[k]);
  }
  return out;
}

CandidateMetrics screen_child_cached(
    Session& session, const TopologyScreeningContext& ctx,
    const Fingerprint& arch_fp, const Fingerprint& parent_fp,
    const std::vector<graph::Edge>& new_edges) {
  const Fingerprint key = fingerprint_child(arch_fp, parent_fp, new_edges);
  if (const auto hit = session.lookup(key)) return *hit;
  const CandidateMetrics metrics = ctx.screen_child(new_edges);
  session.store(key, metrics);
  return metrics;
}

}  // namespace shg::customize
