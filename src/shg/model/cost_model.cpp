#include "shg/model/cost_model.hpp"

#include <algorithm>
#include <cmath>

namespace shg::model {

std::vector<int> CostReport::link_latencies() const {
  std::vector<int> latencies;
  latencies.reserve(links.size());
  for (const LinkCost& link : links) {
    latencies.push_back(link.latency_cycles);
  }
  return latencies;
}

namespace {

/// Steps 1, 3 and 4 of the model given a step-2 result, shared by every
/// entry point (full evaluation, topology screening, and the screening
/// fast path that supplies loads from the incremental router). One body
/// means one set of arithmetic expressions — which is what makes the area
/// figures bit-identical across entry points when the loads are.
phys::Floorplan steps_1_3_4(const tech::ArchParams& arch, int radix,
                            const phys::GlobalRoutingResult& global,
                            CostReport& report,
                            TileGeometryCache* tile_cache) {
  const tech::TechnologyModel& tech = arch.tech;

  // ---- Step 1: tile area estimate and placement -------------------------
  // Router ports: one manager + one subordinate port per topology link plus
  // the local endpoint ports. Identical tiles => worst-case radix, so the
  // whole step is a pure function of the radix and can be memoized across
  // screening candidates whose radix did not change.
  const int ports = radix + arch.endpoints_per_tile;
  if (const TileGeometryCache::Entry* hit =
          tile_cache != nullptr ? tile_cache->find(ports) : nullptr) {
    report.router_area_ge = hit->router_area_ge;
    report.tile_area_ge = hit->tile_area_ge;
    report.tile_w_mm = hit->tile_w_mm;
    report.tile_h_mm = hit->tile_h_mm;
  } else {
    report.router_area_ge = arch.router_area.area_ge(
        ports, ports, arch.link_bandwidth_bits, arch.router_arch);
    report.tile_area_ge = arch.endpoint_area_ge + report.router_area_ge;
    const double tile_area_mm2 = tech.ge_to_mm2(report.tile_area_ge);
    report.tile_h_mm = std::sqrt(arch.tile_aspect_ratio * tile_area_mm2);
    report.tile_w_mm = std::sqrt(tile_area_mm2 / arch.tile_aspect_ratio);
    if (tile_cache != nullptr) {
      tile_cache->insert(ports,
                         TileGeometryCache::Entry{report.router_area_ge,
                                                  report.tile_area_ge,
                                                  report.tile_w_mm,
                                                  report.tile_h_mm});
    }
  }

  // ---- Step 3: spacing between rows and columns of tiles -----------------
  const double wires = arch.wires_per_link();
  std::vector<double> h_spacing(static_cast<std::size_t>(arch.rows) + 1);
  std::vector<double> v_spacing(static_cast<std::size_t>(arch.cols) + 1);
  for (int i = 0; i <= arch.rows; ++i) {
    const int nl = global.max_h_load(i);
    report.peak_h_channel_load = std::max(report.peak_h_channel_load, nl);
    h_spacing[static_cast<std::size_t>(i)] =
        tech.wires.h_wires_to_mm(nl * wires);
  }
  for (int j = 0; j <= arch.cols; ++j) {
    const int nl = global.max_v_load(j);
    report.peak_v_channel_load = std::max(report.peak_v_channel_load, nl);
    v_spacing[static_cast<std::size_t>(j)] =
        tech.wires.v_wires_to_mm(nl * wires);
  }

  // ---- Step 4: discretization into unit cells ----------------------------
  report.cell_h_mm = tech.wires.h_wires_to_mm(wires);
  report.cell_w_mm = tech.wires.v_wires_to_mm(wires);
  phys::Floorplan plan(arch.rows, arch.cols, report.tile_w_mm,
                       report.tile_h_mm, std::move(h_spacing),
                       std::move(v_spacing), report.cell_w_mm,
                       report.cell_h_mm);
  report.chip_width_mm = plan.chip_width();
  report.chip_height_mm = plan.chip_height();

  // ---- Area estimate (IV-B2b) --------------------------------------------
  report.total_area_mm2 = plan.chip_area_mm2();
  report.base_area_mm2 =
      tech.ge_to_mm2(static_cast<double>(arch.num_tiles()) *
                     arch.endpoint_area_ge);
  report.noc_area_mm2 = report.total_area_mm2 - report.base_area_mm2;
  report.area_overhead = report.noc_area_mm2 / report.total_area_mm2;
  return plan;
}

/// Steps 1-4 of the model, shared by the full evaluation and the area-only
/// screening path. Fills the step 1-4 fields of `report` and returns the
/// floorplan (plus the global routing via `global_out` when the caller needs
/// step 5).
phys::Floorplan floorplan_steps_1_to_4(const tech::ArchParams& arch,
                                       const topo::Topology& topo,
                                       CostReport& report,
                                       phys::GlobalRoutingResult* global_out,
                                       TileGeometryCache* tile_cache = nullptr) {
  SHG_REQUIRE(topo.rows() == arch.rows && topo.cols() == arch.cols,
              "topology grid does not match the architecture parameters");

  // ---- Step 2: global routing in the grid of tiles -----------------------
  // Screening callers never read the per-link routes (step 5 is skipped),
  // so take the loads-only fast path — bit-identical channel loads without
  // materializing a GlobalRoute per link.
  phys::GlobalRoutingResult global = global_out != nullptr
                                         ? phys::global_route(topo)
                                         : phys::global_route_loads(topo);
  phys::Floorplan plan =
      steps_1_3_4(arch, topo.radix(), global, report, tile_cache);
  if (global_out != nullptr) *global_out = std::move(global);
  return plan;
}

ScreeningCost screening_cost_from_report(const CostReport& report) {
  ScreeningCost cost;
  cost.total_area_mm2 = report.total_area_mm2;
  cost.base_area_mm2 = report.base_area_mm2;
  cost.noc_area_mm2 = report.noc_area_mm2;
  cost.area_overhead = report.area_overhead;
  return cost;
}

}  // namespace

ScreeningCost evaluate_screening_cost(const tech::ArchParams& arch,
                                      const topo::Topology& topo,
                                      TileGeometryCache* tile_cache) {
  CostReport report;
  floorplan_steps_1_to_4(arch, topo, report, nullptr, tile_cache);
  return screening_cost_from_report(report);
}

ScreeningCost evaluate_screening_cost(
    const tech::ArchParams& arch, int radix,
    const phys::GlobalRoutingResult& global_loads,
    TileGeometryCache* tile_cache) {
  SHG_REQUIRE(static_cast<int>(global_loads.h_loads.size()) == arch.rows + 1 &&
                  static_cast<int>(global_loads.v_loads.size()) ==
                      arch.cols + 1,
              "channel-load profiles do not match the architecture grid");
  CostReport report;
  steps_1_3_4(arch, radix, global_loads, report, tile_cache);
  return screening_cost_from_report(report);
}

CostReport evaluate_cost(const tech::ArchParams& arch,
                         const topo::Topology& topo) {
  const tech::TechnologyModel& tech = arch.tech;
  CostReport report;
  phys::GlobalRoutingResult global;
  const phys::Floorplan plan =
      floorplan_steps_1_to_4(arch, topo, report, &global);
  const double tile_area_mm2 = tech.ge_to_mm2(report.tile_area_ge);

  // ---- Step 5: detailed routing in the grid of unit cells ----------------
  const phys::DetailedRoutingResult detailed =
      phys::detailed_route(topo, plan, global);
  report.h_cells = detailed.h_cells;
  report.v_cells = detailed.v_cells;
  report.collision_cells = detailed.collision_cells;

  // ---- Power estimate (IV-B2c) --------------------------------------------
  // N^L_cell * A_C == total tile silicon area (logic-dominated);
  // (N^H + N^V) * A_C / 2: a unit cell holds one horizontal and one vertical
  // link part, so one directional part fills half a cell.
  const double cell_area = plan.cell_area_mm2();
  const double logic_area =
      static_cast<double>(arch.num_tiles()) * tile_area_mm2;
  const double wire_area =
      static_cast<double>(detailed.h_cells + detailed.v_cells) * cell_area /
      2.0;
  report.total_power_w =
      tech.logic_mm2_to_w(logic_area) + tech.wire_mm2_to_w(wire_area);
  report.base_power_w = tech.logic_mm2_to_w(report.base_area_mm2);
  report.noc_power_w = report.total_power_w - report.base_power_w;
  report.wire_power_w = tech.wire_mm2_to_w(wire_area);
  report.router_power_w = report.noc_power_w - report.wire_power_w;

  // ---- Link latency estimate (IV-B2d) --------------------------------------
  report.links.resize(static_cast<std::size_t>(topo.graph().num_edges()));
  double latency_sum = 0.0;
  for (graph::EdgeId e = 0; e < topo.graph().num_edges(); ++e) {
    LinkCost& link = report.links[static_cast<std::size_t>(e)];
    link.length_mm =
        detailed.routes[static_cast<std::size_t>(e)].total_length_mm;
    link.latency_cycles_exact =
        tech.mm_to_s(link.length_mm) * arch.frequency_hz;
    link.latency_cycles =
        std::max(1, static_cast<int>(std::ceil(link.latency_cycles_exact)));
    latency_sum += link.latency_cycles_exact;
    report.max_link_latency_cycles =
        std::max(report.max_link_latency_cycles, link.latency_cycles_exact);
  }
  if (!report.links.empty()) {
    report.avg_link_latency_cycles =
        latency_sum / static_cast<double>(report.links.size());
  }
  return report;
}

}  // namespace shg::model
