#include "shg/model/report_io.hpp"

#include <sstream>

#include "shg/common/strings.hpp"

namespace shg::model {

std::string cost_reports_to_csv(const std::vector<NamedCostReport>& reports) {
  std::ostringstream os;
  os << "name,area_overhead,total_area_mm2,noc_area_mm2,noc_power_w,"
        "router_power_w,wire_power_w,avg_link_latency,max_link_latency,"
        "collision_cells\n";
  for (const auto& [name, r] : reports) {
    os << name << ',' << fmt_double(r.area_overhead, 6) << ','
       << fmt_double(r.total_area_mm2, 3) << ','
       << fmt_double(r.noc_area_mm2, 3) << ','
       << fmt_double(r.noc_power_w, 4) << ','
       << fmt_double(r.router_power_w, 4) << ','
       << fmt_double(r.wire_power_w, 4) << ','
       << fmt_double(r.avg_link_latency_cycles, 4) << ','
       << fmt_double(r.max_link_latency_cycles, 4) << ','
       << r.collision_cells << '\n';
  }
  return os.str();
}

std::string link_costs_to_csv(const CostReport& report) {
  std::ostringstream os;
  os << "edge,length_mm,latency_cycles_exact,latency_cycles\n";
  for (std::size_t e = 0; e < report.links.size(); ++e) {
    const LinkCost& link = report.links[e];
    os << e << ',' << fmt_double(link.length_mm, 4) << ','
       << fmt_double(link.latency_cycles_exact, 4) << ','
       << link.latency_cycles << '\n';
  }
  return os.str();
}

}  // namespace shg::model
