// The NoC cost model of Section IV-B (Fig. 4): area overhead, power
// consumption and per-link latency prediction via approximate floorplanning
// and link routing.
//
// Five steps, implemented 1:1:
//  1. tile area estimate (A_T = A_E + A_R) and placement in the R x C grid;
//  2. global routing in the grid of tiles (shg::phys::global_route);
//  3. spacing between rows/columns: S = f_wires->mm(NL * f_bw->wires(B));
//  4. discretization into unit cells (H_C x W_C holds one link per
//     direction);
//  5. detailed routing in the grid of unit cells
//     (shg::phys::detailed_route).
#pragma once

#include <vector>

#include "shg/phys/detailed_route.hpp"
#include "shg/phys/floorplan.hpp"
#include "shg/phys/global_route.hpp"
#include "shg/tech/arch_params.hpp"
#include "shg/topo/topology.hpp"

namespace shg::model {

/// Physical cost of one link.
struct LinkCost {
  double length_mm = 0.0;          ///< detailed-route length (router to router)
  double latency_cycles_exact = 0.0;  ///< f_mm->s(length) * F
  int latency_cycles = 1;          ///< ceil, at least one cycle (Section II-A)
};

/// Complete output of the cost model.
struct CostReport {
  // Step 1.
  double router_area_ge = 0.0;  ///< A_R = f_AR(m, s, B)
  double tile_area_ge = 0.0;    ///< A_T = A_E + A_R
  double tile_w_mm = 0.0;       ///< W_T
  double tile_h_mm = 0.0;       ///< H_T

  // Steps 2-4.
  int peak_h_channel_load = 0;  ///< max NL over horizontal channels
  int peak_v_channel_load = 0;
  double cell_w_mm = 0.0;  ///< W_C
  double cell_h_mm = 0.0;  ///< H_C
  double chip_width_mm = 0.0;
  double chip_height_mm = 0.0;

  // Area estimate (Section IV-B2b).
  double total_area_mm2 = 0.0;  ///< A_tot
  double base_area_mm2 = 0.0;   ///< A_noNoC
  double noc_area_mm2 = 0.0;    ///< A_tot - A_noNoC
  double area_overhead = 0.0;   ///< (A_tot - A_noNoC) / A_tot

  // Power estimate (Section IV-B2c).
  double total_power_w = 0.0;  ///< P_tot
  double base_power_w = 0.0;   ///< P_noNoC
  double noc_power_w = 0.0;    ///< P_NoC
  double router_power_w = 0.0;  ///< logic share of P_NoC (router area)
  double wire_power_w = 0.0;    ///< wire share of P_NoC

  // Link latency estimate (Section IV-B2d).
  std::vector<LinkCost> links;  ///< indexed by EdgeId
  double avg_link_latency_cycles = 0.0;
  double max_link_latency_cycles = 0.0;

  // Step-5 diagnostics.
  long long h_cells = 0;
  long long v_cells = 0;
  long long collision_cells = 0;

  /// Integer per-link latencies for the cycle-accurate simulator.
  std::vector<int> link_latencies() const;
};

/// Runs the full five-step model for a topology under the given
/// architectural parameters. The topology grid must match arch.rows/cols.
CostReport evaluate_cost(const tech::ArchParams& arch,
                         const topo::Topology& topo);

/// Area-only fast path for DSE screening. Chip area depends only on steps
/// 1-4 (tile area, global routing, channel spacing, floorplan); step 5
/// (detailed routing) feeds the power and per-link latency estimates alone
/// and dominates the full model's runtime. The returned overhead is
/// identical to evaluate_cost(...).area_overhead.
struct ScreeningCost {
  double total_area_mm2 = 0.0;
  double base_area_mm2 = 0.0;
  double noc_area_mm2 = 0.0;
  double area_overhead = 0.0;
};

/// Step-1 memo for screening sweeps. Under a fixed `ArchParams`, the tile
/// geometry (router area, tile area, tile width/height) is a pure function
/// of the router port count, i.e. of the topology radix — the model assumes
/// identical tiles sized for the worst-case radix. Incremental screening
/// therefore recomputes the tile-area step only for candidates whose radix
/// actually changed; the stored values are exactly the ones the formula
/// yields, so cached and uncached runs are bit-identical.
///
/// The memo is only valid for one `ArchParams`; not thread-safe — use one
/// per worker.
class TileGeometryCache {
 public:
  struct Entry {
    double router_area_ge = 0.0;
    double tile_area_ge = 0.0;
    double tile_w_mm = 0.0;
    double tile_h_mm = 0.0;
  };

  /// Returns the memoized geometry for `ports`, or nullptr.
  const Entry* find(int ports) const {
    for (const auto& [p, entry] : entries_) {
      if (p == ports) return &entry;
    }
    return nullptr;
  }

  void insert(int ports, const Entry& entry) {
    entries_.emplace_back(ports, entry);
  }

 private:
  std::vector<std::pair<int, Entry>> entries_;  ///< tiny; linear scan
};

ScreeningCost evaluate_screening_cost(const tech::ArchParams& arch,
                                      const topo::Topology& topo,
                                      TileGeometryCache* tile_cache = nullptr);

/// Screening cost from a precomputed step-2 result: `radix` is the
/// topology's router radix (Table I) and `global_loads` its channel-load
/// profiles (e.g. from `phys::RoutingContext`, whose repaired loads are
/// bit-identical to `phys::global_route_loads`). Runs the same step 1/3/4
/// arithmetic as the overload above — same operands in the same order —
/// so the returned areas are bit-identical when the loads are. This is the
/// cost-model entry of the screening fast path, which never materializes a
/// child Topology.
ScreeningCost evaluate_screening_cost(
    const tech::ArchParams& arch, int radix,
    const phys::GlobalRoutingResult& global_loads,
    TileGeometryCache* tile_cache = nullptr);

}  // namespace shg::model
