// CSV serialization of cost reports and joint predictions, for downstream
// plotting/processing outside the library.
#pragma once

#include <string>
#include <vector>

#include "shg/model/cost_model.hpp"

namespace shg::model {

/// One named cost report row.
struct NamedCostReport {
  std::string name;
  CostReport report;
};

/// CSV with one row per report:
/// name,area_overhead,total_area_mm2,noc_area_mm2,noc_power_w,
/// router_power_w,wire_power_w,avg_link_latency,max_link_latency,
/// collision_cells
std::string cost_reports_to_csv(const std::vector<NamedCostReport>& reports);

/// CSV of the per-link latency estimates of one report:
/// edge,length_mm,latency_cycles_exact,latency_cycles
std::string link_costs_to_csv(const CostReport& report);

}  // namespace shg::model
