#include "shg/topo/traits.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "shg/graph/shortest_paths.hpp"

namespace shg::topo {

std::string compliance_symbol(Compliance c) {
  switch (c) {
    case Compliance::kYes:
      return "yes";
    case Compliance::kPartial:
      return "~";
    case Compliance::kNo:
      return "no";
  }
  return "?";
}

namespace {

// Thresholds calibrated (see tests/topo_traits_test.cpp) so that the
// computed labels reproduce the authors' qualitative judgments in Table I
// at the paper's evaluation sizes:
//  * a topology has uniform link density when the global peak-to-mean
//    channel-cut load stays below kUniformRatio (mesh/torus = 1.0,
//    hypercube ~1.25, flattened butterfly >= 1.33), and
//  * it only earns a full "yes" when no channel is mostly empty either
//    (the ring's turn columns carry links on under half their length).
constexpr double kUniformRatio = 1.26;
constexpr double kWorstChannelUtil = 0.6;

/// Channel-cut load analysis for axis-aligned topologies: for every row
/// channel, the number of links crossing each column boundary (and vice
/// versa for column channels). This measures exactly the quantity the paper
/// uses to define uniform link density: the spacing between rows/columns is
/// dictated by the maximum-density section of the channel (Section IV-B2,
/// step 3).
struct CutLoads {
  double ratio = 1.0;       ///< global max / global mean
  double worst_util = 1.0;  ///< min over channels of sum(load)/(max*len)
};

CutLoads cut_loads(const Topology& topo) {
  const int rows = topo.rows();
  const int cols = topo.cols();
  // loads_row[r][c] = links of row r crossing the boundary between columns
  // c and c+1; loads_col[c][r] analogous.
  std::vector<std::vector<int>> loads_row(
      static_cast<std::size_t>(rows),
      std::vector<int>(static_cast<std::size_t>(std::max(0, cols - 1)), 0));
  std::vector<std::vector<int>> loads_col(
      static_cast<std::size_t>(cols),
      std::vector<int>(static_cast<std::size_t>(std::max(0, rows - 1)), 0));
  for (const auto& edge : topo.graph().edges()) {
    const TileCoord a = topo.coord(edge.u);
    const TileCoord b = topo.coord(edge.v);
    if (a.row == b.row && a.col != b.col) {
      const auto [lo, hi] = std::minmax(a.col, b.col);
      for (int c = lo; c < hi; ++c) {
        ++loads_row[static_cast<std::size_t>(a.row)][static_cast<std::size_t>(c)];
      }
    } else if (a.col == b.col && a.row != b.row) {
      const auto [lo, hi] = std::minmax(a.row, b.row);
      for (int r = lo; r < hi; ++r) {
        ++loads_col[static_cast<std::size_t>(a.col)][static_cast<std::size_t>(r)];
      }
    }
  }

  CutLoads result;
  long long total = 0;
  long long cuts = 0;
  int global_max = 0;
  double worst_util = 1.0;
  auto scan_channel = [&](const std::vector<int>& channel) {
    const int channel_max = channel.empty()
                                ? 0
                                : *std::max_element(channel.begin(),
                                                    channel.end());
    if (channel_max == 0) return;  // empty channels occupy no area
    long long channel_sum = 0;
    for (int load : channel) channel_sum += load;
    total += channel_sum;
    cuts += static_cast<long long>(channel.size());
    global_max = std::max(global_max, channel_max);
    const double util =
        static_cast<double>(channel_sum) /
        (static_cast<double>(channel_max) * static_cast<double>(channel.size()));
    worst_util = std::min(worst_util, util);
  };
  for (const auto& channel : loads_row) scan_channel(channel);
  for (const auto& channel : loads_col) scan_channel(channel);
  if (cuts > 0) {
    const double mean = static_cast<double>(total) / static_cast<double>(cuts);
    result.ratio = static_cast<double>(global_max) / mean;
    result.worst_util = worst_util;
  }
  return result;
}

}  // namespace

TopologyTraits analyze(const Topology& topo) {
  const auto& g = topo.graph();
  SHG_REQUIRE(g.num_edges() > 0, "cannot analyze a topology without links");
  // One fused all-pairs sweep yields connectivity, diameter and mean hops.
  const graph::DistanceSummary summary = graph::distance_summary(g);
  SHG_REQUIRE(summary.connected, "cannot analyze a disconnected topology");

  TopologyTraits traits;
  traits.radix = topo.radix();
  traits.diameter = summary.diameter;
  traits.avg_hops = topo.num_tiles() >= 2 ? summary.avg_hops : 0.0;

  // --- Routability metrics --------------------------------------------
  auto& m = traits.metrics;
  for (graph::EdgeId e = 0; e < g.num_edges(); ++e) {
    m.max_link_length = std::max(m.max_link_length, topo.link_grid_length(e));
    m.all_axis_aligned = m.all_axis_aligned && topo.link_axis_aligned(e);
  }
  std::vector<int> row_links(static_cast<std::size_t>(topo.num_tiles()), 0);
  std::vector<int> col_links(static_cast<std::size_t>(topo.num_tiles()), 0);
  for (const auto& edge : g.edges()) {
    const TileCoord a = topo.coord(edge.u);
    const TileCoord b = topo.coord(edge.v);
    if (a.row == b.row) {
      ++row_links[static_cast<std::size_t>(edge.u)];
      ++row_links[static_cast<std::size_t>(edge.v)];
    } else if (a.col == b.col) {
      ++col_links[static_cast<std::size_t>(edge.u)];
      ++col_links[static_cast<std::size_t>(edge.v)];
    }
  }
  m.max_row_links_per_tile =
      *std::max_element(row_links.begin(), row_links.end());
  m.max_col_links_per_tile =
      *std::max_element(col_links.begin(), col_links.end());

  // --- SL: short links --------------------------------------------------
  // Adjacent-tile links are free; length-2 links (folded torus) cost little;
  // anything longer violates the criterion.
  traits.short_links = m.max_link_length <= 1   ? Compliance::kYes
                       : m.max_link_length <= 2 ? Compliance::kPartial
                                                : Compliance::kNo;

  // --- AL: aligned links -------------------------------------------------
  traits.aligned_links =
      m.all_axis_aligned ? Compliance::kYes : Compliance::kNo;

  // --- ULD: uniform link density -----------------------------------------
  if (!m.all_axis_aligned) {
    traits.uniform_link_density = Compliance::kNo;
    m.cut_load_ratio = std::numeric_limits<double>::infinity();
    m.worst_channel_util = 0.0;
  } else {
    const CutLoads loads = cut_loads(topo);
    m.cut_load_ratio = loads.ratio;
    m.worst_channel_util = loads.worst_util;
    if (loads.ratio <= kUniformRatio) {
      traits.uniform_link_density = loads.worst_util >= kWorstChannelUtil
                                        ? Compliance::kYes
                                        : Compliance::kPartial;
    } else {
      traits.uniform_link_density = Compliance::kNo;
    }
  }

  // --- OPP: optimized port placement --------------------------------------
  // A single tile-type port template (identical across tiles, as required by
  // the modular tiled design) can place every link on its ideal face exactly
  // when the per-dimension worst-case demands fit in the radix. Row and
  // column demands are attained simultaneously at some tile, so the template
  // is optimal iff max_row + max_col == radix.
  traits.port_placement =
      (m.all_axis_aligned &&
       m.max_row_links_per_tile + m.max_col_links_per_tile == traits.radix)
          ? Compliance::kYes
          : Compliance::kNo;

  // --- Minimal physical paths (design principle #4) -----------------------
  const auto weights = topo.link_grid_lengths();
  bool present = true;
  bool used = true;
  for (graph::NodeId dest = 0; dest < topo.num_tiles() && (present || used);
       ++dest) {
    const auto physical = graph::dijkstra(g, dest, weights);
    const auto worst_min_hop =
        graph::max_weight_over_min_hop_paths(g, dest, weights);
    const TileCoord d = topo.coord(dest);
    for (graph::NodeId src = 0; src < topo.num_tiles(); ++src) {
      if (src == dest) continue;
      const TileCoord s = topo.coord(src);
      const double lower_bound =
          std::abs(s.row - d.row) + std::abs(s.col - d.col);
      if (physical[static_cast<std::size_t>(src)] > lower_bound + 1e-9) {
        present = false;
      }
      if (worst_min_hop[static_cast<std::size_t>(src)] > lower_bound + 1e-9) {
        used = false;
      }
    }
  }
  traits.minimal_paths_present = present;
  // A path that is not present cannot be used.
  traits.minimal_paths_used = present && used;

  return traits;
}

}  // namespace shg::topo
