// Generators for all topologies of the paper (Figure 1 + Section III).
//
// Every generator returns a connected Topology over an R x C tile grid and
// throws shg::Error when the family is not applicable to the given grid
// (e.g. hypercube requires R and C to be powers of two; SlimNoC requires
// R*C = 2*p^2 for a prime power p — the footnotes of Table I).
#pragma once

#include <set>

#include "shg/topo/topology.hpp"

namespace shg::topo {

/// Enumerates the links a set of SHG skip distances contributes on an
/// R x C grid (Section III-b): for each row r, each x in SR, each start i
/// with i + x < C, a link T(r,i) <-> T(r,i+x); columns analogously, rows
/// first. This is THE definition of skip connectivity — make_sparse_hamming
/// adds links in exactly this order, and the incremental screening repair
/// derives its new-edge lists from the same enumeration, so the two can
/// never diverge. Skip containers need only be iterable in ascending order
/// (std::set, sorted vector).
template <typename RowSkips, typename ColSkips, typename Fn>
void for_each_skip_link(int rows, int cols, const RowSkips& row_skips,
                        const ColSkips& col_skips, Fn&& fn) {
  for (int r = 0; r < rows; ++r) {
    for (int x : row_skips) {
      for (int i = 0; i + x < cols; ++i) {
        fn(TileCoord{r, i}, TileCoord{r, i + x});
      }
    }
  }
  for (int c = 0; c < cols; ++c) {
    for (int x : col_skips) {
      for (int i = 0; i + x < rows; ++i) {
        fn(TileCoord{i, c}, TileCoord{i + x, c});
      }
    }
  }
}

/// Ring (Fig. 1a): links form a single cycle through all tiles. When R*C is
/// even the cycle is a Hamiltonian cycle of the grid graph (all links of
/// length 1); for odd R*C no such cycle exists and the boustrophedon path is
/// closed with one long link.
Topology make_ring(int rows, int cols);

/// 2D mesh (Fig. 1b): neighboring tiles are connected.
Topology make_mesh(int rows, int cols);

/// Concentrated 2D mesh (booksim2 cmesh-style): a mesh of R x C routers
/// where every router serves `concentration` terminals. The link graph is
/// the plain mesh; the concentration factor rides on the topology so the
/// simulator gives each router that many endpoint ports and traffic
/// patterns address the (R * sub_rows) x (C * sub_cols) terminal grid
/// (sim/concentration.hpp). concentration == 1 is exactly make_mesh.
Topology make_concentrated_mesh(int rows, int cols, int concentration);

/// 2D torus (Fig. 1c): mesh plus row/column wrap-around links.
Topology make_torus(int rows, int cols);

/// Folded 2D torus (Fig. 1d): torus re-embedded so no link is longer than
/// two tiles (each row/column is a folded cycle: i <-> i+2 plus the two end
/// links).
Topology make_folded_torus(int rows, int cols);

/// Hypercube (Fig. 1e): tiles are labeled with Gray-coded row/column bits so
/// grid neighbors differ in exactly one bit; tiles whose labels differ in one
/// bit are connected. Requires R and C to be powers of two.
Topology make_hypercube(int rows, int cols);

/// Flattened butterfly (Fig. 1g): fully connected rows and columns.
Topology make_flattened_butterfly(int rows, int cols);

/// SlimNoC (Fig. 1f): McKay-Miller-Siran-style graph over GF(p) with
/// 2*p^2 = R*C vertices, degree ~ 3p/2 and diameter 2. Requires p to be a
/// prime power; for even p the quadratic-residue split does not exist and a
/// deterministic search selects the connection sets (see slim_noc.cpp).
Topology make_slim_noc(int rows, int cols);

/// Sparse Hamming graph (Section III-b): 2D mesh plus, for every row, links
/// (r, i) <-> (r, i + x) for all x in row_skips, and, for every column, links
/// (i, c) <-> (i + x, c) for all x in col_skips.
/// Requires row_skips subset of {2..C-1} and col_skips subset of {2..R-1}.
Topology make_sparse_hamming(int rows, int cols, const std::set<int>& row_skips,
                             const std::set<int>& col_skips);

/// Ruche network (related work [41]): mesh plus one fixed skip distance per
/// dimension — exactly the sparse Hamming graph with SR = {row_skip} and
/// SC = {col_skip}. Skip values < 2 mean "no skip links in that dimension".
Topology make_ruche(int rows, int cols, int row_skip, int col_skip);

/// Number of distinct parameterizations of a topology family for a given
/// grid, as reported in the last column of Table I (0 when not applicable).
/// Sparse Hamming graph: 2^(R+C-4); all others: 0 or 1.
double num_configurations(Kind kind, int rows, int cols);

}  // namespace shg::topo
