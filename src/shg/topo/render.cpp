#include "shg/topo/render.hpp"

#include <iomanip>
#include <map>
#include <sstream>
#include <vector>

namespace shg::topo {

std::string render_ascii(const Topology& topo) {
  const int rows = topo.rows();
  const int cols = topo.cols();
  const auto& g = topo.graph();

  auto has_unit = [&](int r1, int c1, int r2, int c2) {
    return g.has_edge(topo.node(r1, c1), topo.node(r2, c2));
  };

  std::ostringstream os;
  os << topo.name() << "  (" << rows << "x" << cols << " tiles, "
     << g.num_edges() << " links, radix " << topo.radix() << ")\n";
  // Fixed-width cells: "[dd]" (4 chars) + 2-char horizontal connector.
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      os << "[" << std::setw(2) << g.degree(topo.node(r, c)) << "]";
      if (c + 1 < cols) {
        os << (has_unit(r, c, r, c + 1) ? "--" : "  ");
      }
    }
    os << "\n";
    if (r + 1 < rows) {
      for (int c = 0; c < cols; ++c) {
        os << (has_unit(r, c, r + 1, c) ? " || " : "    ");
        if (c + 1 < cols) os << "  ";
      }
      os << "\n";
    }
  }

  // Long links grouped by shape.
  std::map<std::string, int> groups;
  for (graph::EdgeId e = 0; e < g.num_edges(); ++e) {
    if (topo.link_grid_length(e) <= 1) continue;
    const auto& edge = g.edge(e);
    const TileCoord a = topo.coord(edge.u);
    const TileCoord b = topo.coord(edge.v);
    std::ostringstream key;
    if (a.row == b.row) {
      key << "row skip +" << std::abs(a.col - b.col);
    } else if (a.col == b.col) {
      key << "column skip +" << std::abs(a.row - b.row);
    } else {
      key << "diagonal (" << std::abs(a.row - b.row) << ","
          << std::abs(a.col - b.col) << ")";
    }
    ++groups[key.str()];
  }
  if (!groups.empty()) {
    os << "long links:";
    for (const auto& [key, count] : groups) {
      os << "  " << key << " x" << count;
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace shg::topo
