// Topology trait analysis: computes every column of the paper's Table I
// from the actual embedded graph (nothing is hard-coded per family).
//
// Geometry at this level is measured in whole tiles: a mesh link has length
// 1, the grid Manhattan distance is the physical lower bound for any path
// (design principle #4).
#pragma once

#include <string>

#include "shg/topo/topology.hpp"

namespace shg::topo {

/// Three-valued compliance as printed in Table I: ✔ / ∼ / ✘.
enum class Compliance { kYes, kPartial, kNo };

/// "yes" / "~" / "no" (ASCII-safe rendering of ✔ / ∼ / ✘).
std::string compliance_symbol(Compliance c);

/// Raw measurements backing the compliance judgments; exposed so benches can
/// print the quantitative evidence next to the qualitative labels.
struct RoutabilityMetrics {
  int max_link_length = 0;        ///< in tiles; 1 = adjacent-tile links only
  bool all_axis_aligned = true;   ///< no link changes both row and column
  double cut_load_ratio = 1.0;    ///< max / mean channel-cut load
  double worst_channel_util = 1.0;  ///< min over channels of used/peak area
  int max_row_links_per_tile = 0;
  int max_col_links_per_tile = 0;
};

/// One row of Table I.
struct TopologyTraits {
  int radix = 0;      ///< max router-to-router links at any tile
  int diameter = 0;   ///< max hops between any tile pair
  double avg_hops = 0.0;

  Compliance short_links = Compliance::kYes;        // SL
  Compliance aligned_links = Compliance::kYes;      // AL
  Compliance uniform_link_density = Compliance::kYes;  // ULD
  Compliance port_placement = Compliance::kYes;     // OPP

  bool minimal_paths_present = false;  ///< physically minimal paths exist
  bool minimal_paths_used = false;     ///< every hop-minimal path is minimal

  RoutabilityMetrics metrics;
};

/// Computes all Table I traits of a topology. Cost: O(N * E) graph sweeps —
/// instantaneous at NoC scale.
TopologyTraits analyze(const Topology& topo);

}  // namespace shg::topo
