// Topology serialization: a plain edge-list text format (round-trippable)
// and BookSim2 "anynet" export for cross-validation against the simulator
// the paper used.
#pragma once

#include <string>

#include "shg/topo/topology.hpp"

namespace shg::topo {

/// Serializes a topology as a text edge list:
///   shg-topology v1
///   name <name>
///   grid <rows> <cols>
///   link <r1> <c1> <r2> <c2>   (one per link)
std::string to_edge_list(const Topology& topo);

/// Parses the edge-list format back into a topology (kind = kCustom unless
/// the name matches a known generator family).
Topology from_edge_list(const std::string& text);

/// Exports the topology in BookSim2's anynet_file format, optionally with
/// per-link latencies:
///   router 0 node 0 router 1 [latency]
/// One line per router; `link_latencies` may be empty (all latency 1).
std::string to_booksim_anynet(const Topology& topo,
                              const std::vector<int>& link_latencies = {});

}  // namespace shg::topo
