// ASCII rendering of topologies (the Figure 1 / Figure 2 visualizations).
#pragma once

#include <string>

#include "shg/topo/topology.hpp"

namespace shg::topo {

/// Renders the tile grid with unit-length links drawn between neighbors and
/// a per-tile degree annotation; longer links are listed below the grid
/// grouped by shape (row skip +x, column skip +x, diagonal).
std::string render_ascii(const Topology& topo);

}  // namespace shg::topo
