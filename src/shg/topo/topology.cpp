#include "shg/topo/topology.hpp"

#include "shg/common/geometry.hpp"

namespace shg::topo {

std::string kind_name(Kind kind) {
  switch (kind) {
    case Kind::kRing:
      return "Ring";
    case Kind::kMesh:
      return "2D Mesh";
    case Kind::kTorus:
      return "2D Torus";
    case Kind::kFoldedTorus:
      return "Folded 2D Torus";
    case Kind::kHypercube:
      return "Hypercube";
    case Kind::kSlimNoc:
      return "SlimNoC";
    case Kind::kFlattenedButterfly:
      return "Flattened Butterfly";
    case Kind::kSparseHamming:
      return "Sparse Hamming Graph";
    case Kind::kRuche:
      return "Ruche Network";
    case Kind::kCustom:
      return "Custom";
  }
  return "Unknown";
}

Topology::Topology(Kind kind, std::string name, int rows, int cols)
    : kind_(kind),
      name_(std::move(name)),
      rows_(rows),
      cols_(cols),
      graph_(rows * cols) {
  SHG_REQUIRE(rows >= 1 && cols >= 1, "grid must have positive dimensions");
}

int Topology::link_grid_length(graph::EdgeId e) const {
  const auto& edge = graph_.edge(e);
  const TileCoord a = coord(edge.u);
  const TileCoord b = coord(edge.v);
  return manhattan(PointI{a.col, a.row}, PointI{b.col, b.row});
}

bool Topology::link_axis_aligned(graph::EdgeId e) const {
  const auto& edge = graph_.edge(e);
  const TileCoord a = coord(edge.u);
  const TileCoord b = coord(edge.v);
  return a.row == b.row || a.col == b.col;
}

std::vector<double> Topology::link_grid_lengths() const {
  std::vector<double> lengths;
  lengths.reserve(static_cast<std::size_t>(graph_.num_edges()));
  for (graph::EdgeId e = 0; e < graph_.num_edges(); ++e) {
    lengths.push_back(static_cast<double>(link_grid_length(e)));
  }
  return lengths;
}

}  // namespace shg::topo
