#include "shg/topo/generators.hpp"

#include <cmath>
#include <sstream>
#include <vector>

#include "shg/common/strings.hpp"
#include "shg/graph/shortest_paths.hpp"
#include "shg/topo/gf.hpp"

namespace shg::topo {

namespace {

bool is_power_of_two(int x) { return x >= 1 && (x & (x - 1)) == 0; }

int log2_exact(int x) {
  SHG_REQUIRE(is_power_of_two(x), "value must be a power of two");
  int bits = 0;
  while ((1 << bits) < x) ++bits;
  return bits;
}

/// Binary-reflected Gray code.
unsigned gray(unsigned i) { return i ^ (i >> 1); }

}  // namespace

Topology make_ring(int rows, int cols) {
  Topology topo(Kind::kRing, "ring", rows, cols);
  const int n = rows * cols;
  SHG_REQUIRE(n >= 3, "ring requires at least 3 tiles");

  // Build the visiting order of a cycle through the grid.
  std::vector<TileCoord> order;
  order.reserve(static_cast<std::size_t>(n));
  if (rows % 2 == 0 || cols % 2 == 0) {
    // Hamiltonian cycle of the grid graph: boustrophedon over all columns
    // except column 0, then return along column 0. (Transpose the pattern
    // when only the column count is even.)
    const bool transpose = rows % 2 != 0;
    const int major = transpose ? cols : rows;   // even
    const int minor = transpose ? rows : cols;
    auto emit = [&](int r, int c) {
      order.push_back(transpose ? TileCoord{c, r} : TileCoord{r, c});
    };
    if (minor == 1) {
      for (int r = 0; r < major; ++r) emit(r, 0);
    } else {
      for (int c = 1; c < minor; ++c) emit(0, c);
      for (int r = 1; r < major; ++r) {
        if (r % 2 == 1) {
          for (int c = minor - 1; c >= 1; --c) emit(r, c);
        } else {
          for (int c = 1; c < minor; ++c) emit(r, c);
        }
      }
      for (int r = major - 1; r >= 0; --r) emit(r, 0);
    }
  } else {
    // Odd x odd grid: no Hamiltonian cycle exists in a bipartite grid graph
    // with an odd number of vertices; close a boustrophedon path with one
    // long link instead.
    for (int r = 0; r < rows; ++r) {
      if (r % 2 == 0) {
        for (int c = 0; c < cols; ++c) order.push_back(TileCoord{r, c});
      } else {
        for (int c = cols - 1; c >= 0; --c) order.push_back(TileCoord{r, c});
      }
    }
  }
  SHG_ASSERT(static_cast<int>(order.size()) == n, "cycle must cover the grid");
  for (int i = 0; i < n; ++i) {
    topo.add_link(order[static_cast<std::size_t>(i)],
                  order[static_cast<std::size_t>((i + 1) % n)]);
  }
  return topo;
}

Topology make_mesh(int rows, int cols) {
  Topology topo(Kind::kMesh, "mesh", rows, cols);
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      if (c + 1 < cols) topo.add_link({r, c}, {r, c + 1});
      if (r + 1 < rows) topo.add_link({r, c}, {r + 1, c});
    }
  }
  SHG_REQUIRE(graph::is_connected(topo.graph()), "mesh must be connected");
  return topo;
}

Topology make_concentrated_mesh(int rows, int cols, int concentration) {
  Topology topo = make_mesh(rows, cols);
  topo.set_concentration(concentration);
  return topo;
}

Topology make_torus(int rows, int cols) {
  Topology topo(Kind::kTorus, "torus", rows, cols);
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      if (c + 1 < cols) topo.add_link({r, c}, {r, c + 1});
      if (r + 1 < rows) topo.add_link({r, c}, {r + 1, c});
    }
  }
  // Wrap-around links; for dimension size 2 the wrap would duplicate the
  // mesh link, for size 1 it would be a self loop — skip in both cases.
  for (int r = 0; r < rows && cols > 2; ++r) {
    topo.add_link({r, 0}, {r, cols - 1});
  }
  for (int c = 0; c < cols && rows > 2; ++c) {
    topo.add_link({0, c}, {rows - 1, c});
  }
  return topo;
}

Topology make_folded_torus(int rows, int cols) {
  Topology topo(Kind::kFoldedTorus, "folded_torus", rows, cols);
  // Each row/column is the folded embedding of a cycle: neighbors on the
  // cycle sit two tiles apart, except for the two end links.
  auto add_folded_line = [&](auto tile_at, int len) {
    if (len < 2) return;
    topo.add_link(tile_at(0), tile_at(1));
    if (len > 2) topo.add_link(tile_at(len - 2), tile_at(len - 1));
    for (int i = 0; i + 2 < len; ++i) {
      topo.add_link(tile_at(i), tile_at(i + 2));
    }
  };
  for (int r = 0; r < rows; ++r) {
    add_folded_line([r](int i) { return TileCoord{r, i}; }, cols);
  }
  for (int c = 0; c < cols; ++c) {
    add_folded_line([c](int i) { return TileCoord{i, c}; }, rows);
  }
  SHG_REQUIRE(graph::is_connected(topo.graph()),
              "folded torus must be connected");
  return topo;
}

Topology make_hypercube(int rows, int cols) {
  SHG_REQUIRE(is_power_of_two(rows) && is_power_of_two(cols),
              "hypercube requires R and C to be powers of two (Table I)");
  const int n = rows * cols;
  SHG_REQUIRE(n >= 2, "hypercube requires at least 2 tiles");
  Topology topo(Kind::kHypercube, "hypercube", rows, cols);

  const int col_bits = log2_exact(cols);
  const int dims = log2_exact(rows) + col_bits;
  // Gray-coded labels: grid neighbors differ in exactly one bit (Fig. 1e),
  // so the hypercube contains the 2D mesh as a subgraph.
  std::vector<graph::NodeId> label_to_node(static_cast<std::size_t>(n));
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      const unsigned label =
          (gray(static_cast<unsigned>(r)) << col_bits) |
          gray(static_cast<unsigned>(c));
      label_to_node[label] = topo.node(r, c);
    }
  }
  for (int label = 0; label < n; ++label) {
    for (int bit = 0; bit < dims; ++bit) {
      const int peer = label ^ (1 << bit);
      if (peer > label) {
        topo.add_link(label_to_node[static_cast<std::size_t>(label)],
                      label_to_node[static_cast<std::size_t>(peer)]);
      }
    }
  }
  return topo;
}

Topology make_flattened_butterfly(int rows, int cols) {
  Topology topo(Kind::kFlattenedButterfly, "flattened_butterfly", rows, cols);
  for (int r = 0; r < rows; ++r) {
    for (int c1 = 0; c1 < cols; ++c1) {
      for (int c2 = c1 + 1; c2 < cols; ++c2) {
        topo.add_link({r, c1}, {r, c2});
      }
    }
  }
  for (int c = 0; c < cols; ++c) {
    for (int r1 = 0; r1 < rows; ++r1) {
      for (int r2 = r1 + 1; r2 < rows; ++r2) {
        topo.add_link({r1, c}, {r2, c});
      }
    }
  }
  return topo;
}

Topology make_sparse_hamming(int rows, int cols,
                             const std::set<int>& row_skips,
                             const std::set<int>& col_skips) {
  for (int x : row_skips) {
    SHG_REQUIRE(x >= 2 && x < cols,
                "row skip distances must lie in {2..C-1} (Section III-b)");
  }
  for (int x : col_skips) {
    SHG_REQUIRE(x >= 2 && x < rows,
                "column skip distances must lie in {2..R-1} (Section III-b)");
  }
  std::ostringstream name;
  name << "sparse_hamming SR=" << fmt_int_set(row_skips)
       << " SC=" << fmt_int_set(col_skips);
  Topology topo(Kind::kSparseHamming, name.str(), rows, cols);
  topo.set_shg_params(ShgParams{row_skips, col_skips});

  // Base links: the 2D mesh.
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      if (c + 1 < cols) topo.add_link({r, c}, {r, c + 1});
      if (r + 1 < rows) topo.add_link({r, c}, {r + 1, c});
    }
  }
  // Additional links: the skip connectivity, via the shared enumeration
  // the incremental screening repair also builds its edge lists from.
  for_each_skip_link(rows, cols, row_skips, col_skips,
                     [&](TileCoord a, TileCoord b) { topo.add_link(a, b); });
  return topo;
}

Topology make_ruche(int rows, int cols, int row_skip, int col_skip) {
  std::set<int> row_skips;
  std::set<int> col_skips;
  if (row_skip >= 2) row_skips.insert(row_skip);
  if (col_skip >= 2) col_skips.insert(col_skip);
  Topology shg = make_sparse_hamming(rows, cols, row_skips, col_skips);
  std::ostringstream name;
  name << "ruche rx=" << row_skip << " ry=" << col_skip;
  Topology topo(Kind::kRuche, name.str(), rows, cols);
  topo.set_shg_params(shg.shg_params());
  for (const auto& edge : shg.graph().edges()) {
    topo.add_link(edge.u, edge.v);
  }
  return topo;
}

double num_configurations(Kind kind, int rows, int cols) {
  switch (kind) {
    case Kind::kRing:
    case Kind::kMesh:
    case Kind::kTorus:
    case Kind::kFoldedTorus:
    case Kind::kFlattenedButterfly:
      return 1.0;
    case Kind::kHypercube:
      return is_power_of_two(rows) && is_power_of_two(cols) ? 1.0 : 0.0;
    case Kind::kSlimNoc: {
      const int n = rows * cols;
      if (n % 2 != 0) return 0.0;
      const int half = n / 2;
      const int p = static_cast<int>(std::lround(std::sqrt(half)));
      return (p * p == half && is_prime_power(p)) ? 1.0 : 0.0;
    }
    case Kind::kSparseHamming:
      // SR has 2^(C-2) subsets of {2..C-1}, SC has 2^(R-2) subsets.
      return std::pow(2.0, rows + cols - 4);
    case Kind::kRuche:
      // One skip distance (or none) per dimension.
      return static_cast<double>((cols - 1) * (rows - 1));
    case Kind::kCustom:
      return 0.0;
  }
  return 0.0;
}

}  // namespace shg::topo
