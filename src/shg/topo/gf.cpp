#include "shg/topo/gf.hpp"

#include <algorithm>

namespace shg::topo {

namespace {

bool is_prime(int n) {
  if (n < 2) return false;
  for (int d = 2; d * d <= n; ++d) {
    if (n % d == 0) return false;
  }
  return true;
}

/// Polynomial coefficients of `poly` (encoded base p) as a vector, index =
/// power of x.
std::vector<int> digits(int poly, int p) {
  std::vector<int> out;
  while (poly > 0) {
    out.push_back(poly % p);
    poly /= p;
  }
  return out;
}

int degree(int poly, int p) {
  int deg = -1;
  int k = 0;
  while (poly > 0) {
    if (poly % p != 0) deg = k;
    poly /= p;
    ++k;
  }
  return deg;
}

/// Multiplies two polynomials over GF(p) without reduction.
std::vector<int> poly_mul(const std::vector<int>& a, const std::vector<int>& b,
                          int p) {
  if (a.empty() || b.empty()) return {};
  std::vector<int> out(a.size() + b.size() - 1, 0);
  for (std::size_t i = 0; i < a.size(); ++i) {
    for (std::size_t j = 0; j < b.size(); ++j) {
      out[i + j] = (out[i + j] + a[i] * b[j]) % p;
    }
  }
  return out;
}

/// Remainder of polynomial `a` modulo monic polynomial `m` over GF(p).
std::vector<int> poly_mod(std::vector<int> a, const std::vector<int>& m,
                          int p) {
  const int dm = static_cast<int>(m.size()) - 1;
  SHG_ASSERT(dm >= 0 && m.back() == 1, "modulus must be monic");
  while (true) {
    while (!a.empty() && a.back() == 0) a.pop_back();
    const int da = static_cast<int>(a.size()) - 1;
    if (da < dm) break;
    const int factor = a.back();  // monic modulus: no inverse needed
    const int shift = da - dm;
    for (int i = 0; i <= dm; ++i) {
      a[static_cast<std::size_t>(i + shift)] =
          ((a[static_cast<std::size_t>(i + shift)] - factor * m[static_cast<std::size_t>(i)]) % p + p) % p;
    }
  }
  return a;
}

int encode(const std::vector<int>& coeffs, int p) {
  int out = 0;
  for (auto it = coeffs.rbegin(); it != coeffs.rend(); ++it) {
    out = out * p + *it;
  }
  return out;
}

/// Tests irreducibility over GF(p) by trial division with every monic
/// polynomial of degree 1 .. deg/2. Fine for the tiny fields we build.
bool is_irreducible(int poly, int p) {
  const int deg = degree(poly, p);
  if (deg < 1) return false;
  const auto pcoef = digits(poly, p);
  int divisor_space = p;  // number of monic polys of degree d is p^d
  for (int d = 1; d <= deg / 2; ++d) {
    for (int low = 0; low < divisor_space; ++low) {
      // monic divisor: x^d + (digits of low)
      std::vector<int> div = digits(low, p);
      div.resize(static_cast<std::size_t>(d) + 1, 0);
      div[static_cast<std::size_t>(d)] = 1;
      const auto rem = poly_mod(pcoef, div, p);
      if (std::all_of(rem.begin(), rem.end(), [](int c) { return c == 0; })) {
        return false;
      }
    }
    divisor_space *= p;
  }
  return true;
}

}  // namespace

bool is_prime_power(int q, int* p_out, int* e_out) {
  if (q < 2) return false;
  for (int p = 2; p <= q; ++p) {
    if (!is_prime(p)) continue;
    if (q % p != 0) continue;
    int e = 0;
    int rest = q;
    while (rest % p == 0) {
      rest /= p;
      ++e;
    }
    if (rest == 1) {
      if (p_out != nullptr) *p_out = p;
      if (e_out != nullptr) *e_out = e;
      return true;
    }
    return false;
  }
  return false;
}

GaloisField::GaloisField(int q) : q_(q) {
  SHG_REQUIRE(q >= 2 && q <= 4096, "field order out of supported range");
  SHG_REQUIRE(is_prime_power(q, &p_, &e_), "field order must be a prime power");

  if (e_ == 1) {
    reduction_poly_ = 0;  // plain modular arithmetic
  } else {
    // Search for a monic irreducible polynomial of degree e:
    // encoded value = p^e (the x^e term) + low part.
    int base = 1;
    for (int i = 0; i < e_; ++i) base *= p_;
    reduction_poly_ = 0;
    for (int low = 1; low < base; ++low) {
      if (is_irreducible(base + low, p_)) {
        reduction_poly_ = base + low;
        break;
      }
    }
    SHG_ASSERT(reduction_poly_ != 0, "no irreducible polynomial found");
  }

  // Cache inverses by brute force and locate a primitive element.
  inverse_.assign(static_cast<std::size_t>(q_), 0);
  for (int a = 1; a < q_; ++a) {
    for (int b = 1; b < q_; ++b) {
      if (mul_raw(a, b) == 1) {
        inverse_[static_cast<std::size_t>(a)] = b;
        break;
      }
    }
    SHG_ASSERT(inverse_[static_cast<std::size_t>(a)] != 0,
               "every nonzero element must be invertible");
  }
  primitive_ = 0;
  for (int a = 2; a < q_; ++a) {
    if (element_order(a) == q_ - 1) {
      primitive_ = a;
      break;
    }
  }
  if (primitive_ == 0 && q_ == 2) primitive_ = 1;
  SHG_ASSERT(primitive_ != 0, "field must have a primitive element");
}

int GaloisField::add(int a, int b) const {
  check(a);
  check(b);
  if (e_ == 1) return (a + b) % p_;
  int out = 0;
  int mult = 1;
  while (a > 0 || b > 0) {
    out += ((a % p_ + b % p_) % p_) * mult;
    a /= p_;
    b /= p_;
    mult *= p_;
  }
  return out;
}

int GaloisField::neg(int a) const {
  check(a);
  if (e_ == 1) return (p_ - a) % p_;
  int out = 0;
  int mult = 1;
  while (a > 0) {
    out += ((p_ - a % p_) % p_) * mult;
    a /= p_;
    mult *= p_;
  }
  return out;
}

int GaloisField::sub(int a, int b) const { return add(a, neg(b)); }

int GaloisField::mul_raw(int a, int b) const {
  if (e_ == 1) return (a * b) % p_;
  const auto prod = poly_mul(digits(a, p_), digits(b, p_), p_);
  auto mod_coeffs = digits(reduction_poly_, p_);
  const auto rem = poly_mod(prod, mod_coeffs, p_);
  return encode(rem, p_);
}

int GaloisField::mul(int a, int b) const {
  check(a);
  check(b);
  return mul_raw(a, b);
}

int GaloisField::inv(int a) const {
  check(a);
  SHG_REQUIRE(a != 0, "zero has no multiplicative inverse");
  return inverse_[static_cast<std::size_t>(a)];
}

int GaloisField::pow(int a, int k) const {
  check(a);
  SHG_REQUIRE(k >= 0, "negative exponents not supported");
  int result = 1;
  int base = a;
  while (k > 0) {
    if (k & 1) result = mul_raw(result, base);
    base = mul_raw(base, base);
    k >>= 1;
  }
  return result;
}

int GaloisField::element_order(int a) const {
  check(a);
  SHG_REQUIRE(a != 0, "zero has no multiplicative order");
  int x = a;
  int order = 1;
  while (x != 1) {
    x = mul_raw(x, a);
    ++order;
    SHG_ASSERT(order <= q_, "order computation diverged");
  }
  return order;
}

}  // namespace shg::topo
