// Topology registry: build topologies by family for a given grid, and
// enumerate the comparison suite used throughout the paper's evaluation.
#pragma once

#include <optional>
#include <vector>

#include "shg/topo/generators.hpp"
#include "shg/topo/topology.hpp"

namespace shg::topo {

/// Builds the topology of family `kind` on an R x C grid.
/// For kSparseHamming / kRuche, `params` supplies the skip sets.
/// Returns std::nullopt when the family is not applicable to the grid
/// (hypercube on non-power-of-two grids, SlimNoC when RC != 2p^2 — the
/// "0 or 1 configurations" cases of Table I).
std::optional<Topology> try_make(Kind kind, int rows, int cols,
                                 const ShgParams& params = {});

/// The families compared in Table I / Figure 6, in the paper's row order
/// (ring, mesh, torus, folded torus, hypercube, SlimNoC, flattened
/// butterfly, sparse Hamming graph).
std::vector<Kind> table1_families();

/// All applicable established topologies for a grid (everything from
/// table1_families() except the sparse Hamming graph itself).
std::vector<Topology> established_suite(int rows, int cols);

}  // namespace shg::topo
