// NoC topology: a graph of router-to-router links over an R x C tile grid.
//
// Mirrors the paper's Section II-A assumptions: the chip is an R x C grid of
// identical tiles, each with one local router; the topology is the set of
// inter-tile links. Tiles are addressed by (row, col) or by the flattened
// NodeId row * C + col. The physical embedding (millimeters, channels,
// detailed routes) lives in shg::phys; at this level geometry is measured in
// whole tiles (grid Manhattan distance), which is what the Table I topology
// traits need.
#pragma once

#include <set>
#include <string>
#include <vector>

#include "shg/graph/adjacency.hpp"

namespace shg::topo {

/// Identifies the generator family a topology came from.
enum class Kind {
  kRing,
  kMesh,
  kTorus,
  kFoldedTorus,
  kHypercube,
  kSlimNoc,
  kFlattenedButterfly,
  kSparseHamming,
  kRuche,
  kCustom,
};

/// Human-readable family name ("2D Mesh", "Sparse Hamming Graph", ...).
std::string kind_name(Kind kind);

/// Tile position in the grid.
struct TileCoord {
  int row = 0;
  int col = 0;

  friend bool operator==(const TileCoord&, const TileCoord&) = default;
};

/// Skip-distance parameter sets of a sparse Hamming graph (Section III-b).
/// `row_skips` = SR (subset of {2..C-1}), applied within every row;
/// `col_skips` = SC (subset of {2..R-1}), applied within every column.
struct ShgParams {
  std::set<int> row_skips;
  std::set<int> col_skips;

  friend bool operator==(const ShgParams&, const ShgParams&) = default;
};

/// A NoC topology over an R x C tile grid.
class Topology {
 public:
  Topology(Kind kind, std::string name, int rows, int cols);

  Kind kind() const { return kind_; }
  const std::string& name() const { return name_; }
  int rows() const { return rows_; }
  int cols() const { return cols_; }
  int num_tiles() const { return rows_ * cols_; }

  const graph::Graph& graph() const { return graph_; }

  graph::NodeId node(int row, int col) const {
    SHG_REQUIRE(row >= 0 && row < rows_ && col >= 0 && col < cols_,
                "tile coordinate out of range");
    return row * cols_ + col;
  }
  graph::NodeId node(TileCoord t) const { return node(t.row, t.col); }

  TileCoord coord(graph::NodeId id) const {
    SHG_REQUIRE(id >= 0 && id < num_tiles(), "node id out of range");
    return TileCoord{id / cols_, id % cols_};
  }

  /// Adds an undirected link between two tiles; returns its edge id.
  graph::EdgeId add_link(TileCoord a, TileCoord b) {
    return graph_.add_edge(node(a), node(b));
  }
  graph::EdgeId add_link(graph::NodeId a, graph::NodeId b) {
    return graph_.add_edge(a, b);
  }

  /// Grid Manhattan length of a link, in tiles (a mesh link has length 1).
  int link_grid_length(graph::EdgeId e) const;

  /// True iff the link stays within one row or one column.
  bool link_axis_aligned(graph::EdgeId e) const;

  /// Grid Manhattan lengths of all links, indexed by edge id. Used as edge
  /// weights for the physical-path-length analyses (design principle #4).
  std::vector<double> link_grid_lengths() const;

  /// Router radix as reported in Table I: the maximum number of
  /// router-to-router links at any tile (local endpoint ports excluded).
  int radix() const { return graph_.max_degree(); }

  /// Sparse Hamming graph parameters; empty sets for other families
  /// (a plain mesh is the SHG with SR = SC = {}).
  const ShgParams& shg_params() const { return shg_params_; }
  void set_shg_params(ShgParams params) { shg_params_ = std::move(params); }

  /// Terminals per router (booksim2 cmesh-style concentration); 1 for all
  /// classic families. Carried on the topology so experiment/simulator
  /// layers size traffic patterns and endpoint ports consistently.
  int concentration() const { return concentration_; }
  void set_concentration(int c) {
    SHG_REQUIRE(c >= 1, "need at least one terminal per router");
    concentration_ = c;
  }

 private:
  Kind kind_;
  std::string name_;
  int rows_;
  int cols_;
  graph::Graph graph_;
  ShgParams shg_params_;
  int concentration_ = 1;
};

}  // namespace shg::topo
