// Finite field arithmetic GF(p^e) for small prime powers.
//
// Needed by the SlimNoC generator: McKay–Miller–Širáň-style graphs are
// defined over GF(q) for prime powers q (the paper's evaluation needs q = 8
// for the 128-tile scenarios, since 128 = 2 * 8^2). Elements are represented
// as integers in [0, q): the base-p digits of the integer are the
// coefficients of a polynomial over GF(p), reduced modulo a monic
// irreducible polynomial found by exhaustive search at construction time.
#pragma once

#include <cstdint>
#include <vector>

#include "shg/common/error.hpp"

namespace shg::topo {

/// The finite field GF(p^e), p prime, p^e <= 4096.
class GaloisField {
 public:
  /// Constructs GF(q) where q = p^e. Throws if q is not a prime power.
  explicit GaloisField(int q);

  int order() const { return q_; }
  int characteristic() const { return p_; }
  int extension_degree() const { return e_; }

  /// Field addition (coefficient-wise mod p).
  int add(int a, int b) const;
  /// Field subtraction.
  int sub(int a, int b) const;
  /// Additive inverse.
  int neg(int a) const;
  /// Field multiplication (polynomial product mod the reduction polynomial).
  int mul(int a, int b) const;
  /// Multiplicative inverse of a != 0.
  int inv(int a) const;
  /// a^k for k >= 0.
  int pow(int a, int k) const;

  /// A generator of the multiplicative group (order q - 1).
  int primitive_element() const { return primitive_; }

  /// Multiplicative order of a != 0.
  int element_order(int a) const;

 private:
  void check(int a) const {
    SHG_REQUIRE(a >= 0 && a < q_, "element out of field range");
  }
  int mul_raw(int a, int b) const;

  int q_ = 0;
  int p_ = 0;
  int e_ = 0;
  int reduction_poly_ = 0;  ///< monic irreducible, encoded base p, degree e
  int primitive_ = 0;
  std::vector<int> inverse_;  ///< cached inverses, inverse_[0] unused
};

/// True iff q = p^e for a prime p and e >= 1; outputs p and e when true.
bool is_prime_power(int q, int* p_out = nullptr, int* e_out = nullptr);

}  // namespace shg::topo
