// SlimNoC topology generator (Fig. 1f, reference [26]).
//
// SlimNoC instantiates McKay-Miller-Siran-style (MMS) graphs: N = 2*p^2
// vertices (s, x, y) with s in {0,1} and x, y in GF(p), diameter 2, degree
// about 1.5*p. Vertex groups (s, x) of p vertices each are placed as
// rectangular blocks in the tile grid, which produces the characteristic
// non-uniform link density the paper uses as a counter-example for design
// principle #2.
//
// Connection rule (Hafner's generalization):
//   (0, x, y) ~ (0, x, y')  iff  y - y' in X
//   (1, m, c) ~ (1, m, c')  iff  c - c' in X'
//   (0, x, y) ~ (1, m, c)   iff  y = m * x + c
//
// For p ≡ 1 (mod 4), X = nonzero squares and X' = non-squares (the classic
// MMS choice; both sets are closed under negation because -1 is a square).
// For even p (a power of two) every element is a square, so no
// quadratic-residue split exists; since -a = a in characteristic 2, *any*
// subset is symmetric, and we select X, X' of size p/2 by deterministic
// exhaustive search for a diameter-2 pair. For p ≡ 3 (mod 4) no symmetric
// set of size (p-1)/2 exists (it would need to pair {a, -a} but has odd
// cardinality); those orders are rejected, matching footnote ‡ of Table I in
// spirit: SlimNoC is only applicable for particular tile counts.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <functional>
#include <vector>

#include "shg/graph/shortest_paths.hpp"
#include "shg/topo/generators.hpp"
#include "shg/topo/gf.hpp"

namespace shg::topo {

namespace {

/// Dense adjacency as bitsets for fast diameter-2 checks during set search.
class AdjacencyMask {
 public:
  explicit AdjacencyMask(int n)
      : n_(n), words_((static_cast<std::size_t>(n) + 63) / 64),
        bits_(static_cast<std::size_t>(n) * words_, 0) {}

  void add(int u, int v) {
    bits_[static_cast<std::size_t>(u) * words_ + static_cast<std::size_t>(v) / 64] |=
        std::uint64_t{1} << (v % 64);
    bits_[static_cast<std::size_t>(v) * words_ + static_cast<std::size_t>(u) / 64] |=
        std::uint64_t{1} << (u % 64);
  }

  bool adjacent(int u, int v) const {
    return (bits_[static_cast<std::size_t>(u) * words_ +
                  static_cast<std::size_t>(v) / 64] >>
            (v % 64)) &
           1;
  }

  bool share_neighbor(int u, int v) const {
    const auto* a = &bits_[static_cast<std::size_t>(u) * words_];
    const auto* b = &bits_[static_cast<std::size_t>(v) * words_];
    for (std::size_t w = 0; w < words_; ++w) {
      if ((a[w] & b[w]) != 0) return true;
    }
    return false;
  }

  bool diameter_at_most_two() const {
    for (int u = 0; u < n_; ++u) {
      for (int v = u + 1; v < n_; ++v) {
        if (!adjacent(u, v) && !share_neighbor(u, v)) return false;
      }
    }
    return true;
  }

 private:
  int n_;
  std::size_t words_;
  std::vector<std::uint64_t> bits_;
};

struct MmsSets {
  std::vector<int> x;        ///< X for group s=0
  std::vector<int> x_prime;  ///< X' for group s=1
};

/// Vertex numbering: (s, x, y) -> s*p^2 + x*p + y.
int vertex_index(int s, int x, int y, int p) { return (s * p + x) * p + y; }

/// Builds the full MMS edge list for given connection sets.
std::vector<std::pair<int, int>> mms_edges(const GaloisField& field,
                                           const MmsSets& sets) {
  const int p = field.order();
  std::vector<std::pair<int, int>> edges;
  // Within-group edges, group s=0 (rule: y - y' in X).
  for (int x = 0; x < p; ++x) {
    for (int y = 0; y < p; ++y) {
      for (int y2 = y + 1; y2 < p; ++y2) {
        const int diff = field.sub(y, y2);
        if (std::find(sets.x.begin(), sets.x.end(), diff) != sets.x.end()) {
          edges.emplace_back(vertex_index(0, x, y, p),
                             vertex_index(0, x, y2, p));
        }
      }
    }
  }
  // Within-group edges, group s=1.
  for (int m = 0; m < p; ++m) {
    for (int c = 0; c < p; ++c) {
      for (int c2 = c + 1; c2 < p; ++c2) {
        const int diff = field.sub(c, c2);
        if (std::find(sets.x_prime.begin(), sets.x_prime.end(), diff) !=
            sets.x_prime.end()) {
          edges.emplace_back(vertex_index(1, m, c, p),
                             vertex_index(1, m, c2, p));
        }
      }
    }
  }
  // Cross edges: (0, x, y) ~ (1, m, c) iff y = m*x + c.
  for (int x = 0; x < p; ++x) {
    for (int m = 0; m < p; ++m) {
      for (int c = 0; c < p; ++c) {
        const int y = field.add(field.mul(m, x), c);
        edges.emplace_back(vertex_index(0, x, y, p),
                           vertex_index(1, m, c, p));
      }
    }
  }
  return edges;
}

bool has_diameter_two(const GaloisField& field, const MmsSets& sets) {
  const int p = field.order();
  AdjacencyMask mask(2 * p * p);
  for (const auto& [u, v] : mms_edges(field, sets)) mask.add(u, v);
  return mask.diameter_at_most_two();
}

/// Enumerates all k-subsets of `universe` in lexicographic order.
void for_each_subset(const std::vector<int>& universe, int k,
                     const std::function<bool(const std::vector<int>&)>& fn) {
  std::vector<int> pick(static_cast<std::size_t>(k));
  std::function<bool(int, int)> rec = [&](int start, int depth) -> bool {
    if (depth == k) return fn(pick);
    for (int i = start; i <= static_cast<int>(universe.size()) - (k - depth);
         ++i) {
      pick[static_cast<std::size_t>(depth)] =
          universe[static_cast<std::size_t>(i)];
      if (rec(i + 1, depth + 1)) return true;
    }
    return false;
  };
  rec(0, 0);
}

MmsSets select_sets(const GaloisField& field) {
  const int p = field.order();
  MmsSets sets;
  if (p % 4 == 1) {
    // Classic MMS: X = nonzero squares, X' = non-squares.
    std::vector<bool> is_square(static_cast<std::size_t>(p), false);
    for (int a = 1; a < p; ++a) {
      is_square[static_cast<std::size_t>(field.mul(a, a))] = true;
    }
    for (int a = 1; a < p; ++a) {
      (is_square[static_cast<std::size_t>(a)] ? sets.x : sets.x_prime)
          .push_back(a);
    }
    return sets;
  }
  if (p % 2 == 0) {
    // Characteristic 2: exhaustively search size-p/2 subsets for a
    // diameter-2 pair; deterministic (lexicographic) order.
    std::vector<int> universe;
    for (int a = 1; a < p; ++a) universe.push_back(a);
    const int k = p / 2;
    bool found = false;
    for_each_subset(universe, k, [&](const std::vector<int>& x) {
      MmsSets candidate;
      candidate.x = x;
      bool inner_found = false;
      for_each_subset(universe, k, [&](const std::vector<int>& xp) {
        candidate.x_prime = xp;
        if (has_diameter_two(field, candidate)) {
          sets = candidate;
          inner_found = true;
          return true;
        }
        return false;
      });
      found = inner_found;
      return inner_found;
    });
    SHG_REQUIRE(found, "no diameter-2 MMS connection sets found for even p");
    return sets;
  }
  throw Error(
      "SlimNoC: p ≡ 3 (mod 4) is unsupported — no symmetric connection set "
      "of size (p-1)/2 exists; choose a tile count with p ≡ 1 (mod 4) or p a "
      "power of two");
}

/// Chooses block dimensions (block_rows x block_cols) holding one p-vertex
/// group, such that blocks tile the R x C grid exactly.
std::pair<int, int> choose_block_shape(int rows, int cols, int p) {
  std::pair<int, int> best{-1, -1};
  double best_badness = 1e300;
  for (int br = 1; br <= p; ++br) {
    if (p % br != 0) continue;
    const int bc = p / br;
    if (rows % br != 0 || cols % bc != 0) continue;
    // Prefer square-ish blocks: minimizes intra-group link length.
    const double badness = std::abs(std::log2(static_cast<double>(br) / bc));
    if (badness < best_badness) {
      best_badness = badness;
      best = {br, bc};
    }
  }
  SHG_REQUIRE(best.first > 0,
              "SlimNoC groups cannot be arranged as blocks in this grid");
  return best;
}

}  // namespace

Topology make_slim_noc(int rows, int cols) {
  const int n = rows * cols;
  SHG_REQUIRE(n >= 2 && n % 2 == 0,
              "SlimNoC requires an even number of tiles");
  const int half = n / 2;
  const int p = static_cast<int>(std::lround(std::sqrt(half)));
  SHG_REQUIRE(p * p == half && is_prime_power(p),
              "SlimNoC requires R*C = 2*p^2 for a prime power p (Table I ‡)");

  const GaloisField field(p);
  const MmsSets sets = select_sets(field);

  // Grid embedding: 2p groups of p vertices, each group a block.
  const auto [block_rows, block_cols] = choose_block_shape(rows, cols, p);
  const int group_grid_cols = cols / block_cols;

  Topology topo(Kind::kSlimNoc, "slim_noc", rows, cols);
  auto tile_of_vertex = [&](int vertex) {
    const int group = vertex / p;   // s*p + x
    const int within = vertex % p;  // y
    const int g_row = group / group_grid_cols;
    const int g_col = group % group_grid_cols;
    return TileCoord{g_row * block_rows + within / block_cols,
                     g_col * block_cols + within % block_cols};
  };
  for (const auto& [u, v] : mms_edges(field, sets)) {
    topo.add_link(tile_of_vertex(u), tile_of_vertex(v));
  }
  SHG_REQUIRE(graph::is_connected(topo.graph()), "SlimNoC must be connected");
  return topo;
}

}  // namespace shg::topo
