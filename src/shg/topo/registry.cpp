#include "shg/topo/registry.hpp"

namespace shg::topo {

std::optional<Topology> try_make(Kind kind, int rows, int cols,
                                 const ShgParams& params) {
  if (num_configurations(kind, rows, cols) < 1.0) return std::nullopt;
  switch (kind) {
    case Kind::kRing:
      return make_ring(rows, cols);
    case Kind::kMesh:
      return make_mesh(rows, cols);
    case Kind::kTorus:
      return make_torus(rows, cols);
    case Kind::kFoldedTorus:
      return make_folded_torus(rows, cols);
    case Kind::kHypercube:
      return make_hypercube(rows, cols);
    case Kind::kSlimNoc:
      return make_slim_noc(rows, cols);
    case Kind::kFlattenedButterfly:
      return make_flattened_butterfly(rows, cols);
    case Kind::kSparseHamming:
      return make_sparse_hamming(rows, cols, params.row_skips,
                                 params.col_skips);
    case Kind::kRuche: {
      const int row_skip =
          params.row_skips.empty() ? 0 : *params.row_skips.begin();
      const int col_skip =
          params.col_skips.empty() ? 0 : *params.col_skips.begin();
      return make_ruche(rows, cols, row_skip, col_skip);
    }
    case Kind::kCustom:
      return std::nullopt;
  }
  return std::nullopt;
}

std::vector<Kind> table1_families() {
  return {Kind::kRing,      Kind::kMesh,         Kind::kTorus,
          Kind::kFoldedTorus, Kind::kHypercube,  Kind::kSlimNoc,
          Kind::kFlattenedButterfly, Kind::kSparseHamming};
}

std::vector<Topology> established_suite(int rows, int cols) {
  std::vector<Topology> suite;
  for (Kind kind : table1_families()) {
    if (kind == Kind::kSparseHamming) continue;
    if (auto topo = try_make(kind, rows, cols)) {
      suite.push_back(std::move(*topo));
    }
  }
  return suite;
}

}  // namespace shg::topo
