#include "shg/sim/soa_network.hpp"

#include <algorithm>
#include <limits>

#include "shg/common/prng.hpp"
#include "shg/sim/concentration.hpp"
#include "shg/sim/stats.hpp"

namespace shg::sim {

namespace {
// Local output ports model the tile's endpoints as an infinite sink (the
// reference router's kSinkCredits).
constexpr int kSinkCredits = std::numeric_limits<int>::max() / 2;
}  // namespace

void SoaEngine::PktRing::push(std::int32_t id) {
  if (count == buf.size()) {
    const std::size_t old = buf.size();
    std::vector<std::int32_t> grown(old == 0 ? 8 : old * 2);
    for (std::size_t i = 0; i < count; ++i) {
      grown[i] = buf[(head + i) % old];
    }
    buf = std::move(grown);
    head = 0;
  }
  std::size_t tail = head + count;
  if (tail >= buf.size()) tail -= buf.size();
  buf[tail] = id;
  ++count;
}

SoaEngine::SoaEngine(const topo::Topology& topo,
                     const std::vector<int>& link_latencies,
                     const SimConfig& config, const TrafficPattern& pattern,
                     int endpoints_per_tile, const RoutingFunction* routing,
                     const RouteTable* table, InjectionProcess* process)
    : config_(config),
      pattern_(&pattern),
      routing_(routing),
      table_(table),
      process_(process) {
  config_.validate();
  SHG_REQUIRE(routing != nullptr || table != nullptr,
              "SoA engine needs a routing function or a route table");
  SHG_REQUIRE(process != nullptr, "SoA engine needs an injection process");
  ugal_mode_ = effective_routing_policy(config_) == RoutingPolicy::kUgal;
  if (ugal_mode_) {
    ugal_info_ =
        table_ != nullptr ? table_->ugal_info() : routing_->ugal_info();
    SHG_REQUIRE(ugal_info_ != nullptr,
                "UGAL routing policy needs a UGAL routing function or a "
                "route table built from one");
  }
  SHG_REQUIRE(endpoints_per_tile >= 1, "need at least one endpoint per tile");
  num_routers_ = topo.graph().num_nodes();
  local_ports_ = endpoints_per_tile;
  vcs_ = config_.num_vcs;
  depth_ = config_.buffer_depth_flits;
  pkt_flits_ = config_.packet_size_flits;
  delay_ = config_.router_delay_cycles;
  build_fabric(topo, link_latencies);
  pregenerate(topo);
}

void SoaEngine::build_fabric(const topo::Topology& topo,
                             const std::vector<int>& link_latencies) {
  const auto& g = topo.graph();
  SHG_REQUIRE(static_cast<int>(link_latencies.size()) == g.num_edges(),
              "need one latency per link");
  const std::size_t nr = static_cast<std::size_t>(num_routers_);

  // Port layout: network ports first (one per neighbor, adjacency order —
  // the convention shared with sim::Network), then the endpoint ports.
  net_ports_.resize(nr);
  port_base_.resize(nr + 1);
  std::size_t ports = 0;
  for (int r = 0; r < num_routers_; ++r) {
    net_ports_[static_cast<std::size_t>(r)] = g.degree(r);
    port_base_[static_cast<std::size_t>(r)] = ports;
    const int p = g.degree(r) + local_ports_;
    max_ports_ = std::max(max_ports_, p);
    ports += static_cast<std::size_t>(p);
  }
  port_base_[nr] = ports;
  const std::size_t slots = ports * static_cast<std::size_t>(vcs_);

  // Two directed channels per edge: 2e carries u -> v (with u the edge's
  // stored u), 2e + 1 carries v -> u. A channel holds at most latency + 1
  // flits (one push per cycle from the single upstream output port, drained
  // on arrival because pending flits keep the consumer on the worklist), so
  // latency + 2 ring slots never overflow; same argument for credits (one
  // traversal per input port and cycle).
  const int num_chans = 2 * g.num_edges();
  chan_src_.resize(static_cast<std::size_t>(num_chans));
  chan_dst_.resize(static_cast<std::size_t>(num_chans));
  chan_lat_.resize(static_cast<std::size_t>(num_chans));
  chan_cap_.resize(static_cast<std::size_t>(num_chans));
  chan_base_.resize(static_cast<std::size_t>(num_chans) + 1);
  std::size_t chan_slab = 0;
  for (graph::EdgeId e = 0; e < g.num_edges(); ++e) {
    const auto& edge = g.edge(e);
    const int lat = link_latencies[static_cast<std::size_t>(e)];
    SHG_REQUIRE(lat >= 1, "every link has at least one cycle of latency");
    for (int dir = 0; dir < 2; ++dir) {
      const std::size_t c = static_cast<std::size_t>(2 * e + dir);
      chan_src_[c] = dir == 0 ? edge.u : edge.v;
      chan_dst_[c] = dir == 0 ? edge.v : edge.u;
      chan_lat_[c] = lat;
      chan_cap_[c] = lat + 2;
      chan_base_[c] = chan_slab;
      chan_slab += static_cast<std::size_t>(lat + 2);
    }
  }
  chan_base_[static_cast<std::size_t>(num_chans)] = chan_slab;
  chan_flits_.resize(chan_slab);
  chan_fhead_.assign(static_cast<std::size_t>(num_chans), 0);
  chan_fcount_.assign(static_cast<std::size_t>(num_chans), 0);
  chan_credits_.resize(chan_slab);
  chan_chead_.assign(static_cast<std::size_t>(num_chans), 0);
  chan_ccount_.assign(static_cast<std::size_t>(num_chans), 0);

  in_chan_.assign(ports, -1);
  out_chan_.assign(ports, -1);
  for (graph::NodeId u = 0; u < g.num_nodes(); ++u) {
    const auto& nbrs = g.neighbors(u);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const auto& edge = g.edge(nbrs[i].edge);
      const bool is_forward = edge.u == u;
      const std::size_t pidx = port_base_[static_cast<std::size_t>(u)] + i;
      out_chan_[pidx] =
          2 * nbrs[i].edge + (is_forward ? 0 : 1);  // u -> neighbor
      in_chan_[pidx] =
          2 * nbrs[i].edge + (is_forward ? 1 : 0);  // neighbor -> u
    }
  }

  // Buffers and allocation state.
  buf_.resize(slots * static_cast<std::size_t>(depth_));
  buf_head_.assign(slots, 0);
  buf_count_.assign(slots, 0);
  ivc_state_.assign(slots, kIdle);
  ivc_out_port_.assign(slots, -1);
  ivc_out_vc_.assign(slots, -1);
  ivc_routes_.assign(slots, nullptr);
  ivc_routes_len_.assign(slots, 0);
  ivc_eject_.assign(slots, RouteCandidate{});
  // Live-routing mode stores its per-slot candidate vectors here; UGAL mode
  // needs them even with a table, because a spliced via-leg row is not a
  // contiguous arena range.
  if (table_ == nullptr || ugal_mode_) ivc_live_.resize(slots);
  ovc_busy_.assign(slots, 0);
  ovc_credits_.resize(slots);
  for (int r = 0; r < num_routers_; ++r) {
    const int np = net_ports_[static_cast<std::size_t>(r)];
    for (int p = 0; p < np + local_ports_; ++p) {
      for (int v = 0; v < vcs_; ++v) {
        ovc_credits_[slot(r, p, v)] = p >= np ? kSinkCredits : depth_;
      }
    }
  }
  va_rr_.assign(slots, 0);
  sa_in_rr_.assign(ports, 0);
  sa_out_rr_.assign(ports, 0);
  sa_request_port_.assign(static_cast<std::size_t>(max_ports_), -1);
  sa_request_vc_.assign(static_cast<std::size_t>(max_ports_), -1);
  route_pending_.assign(nr, 0);
  va_pending_.assign(nr, 0);
  active_ivcs_.assign(nr, 0);
  port_active_.assign(ports, 0);

  const std::size_t queues = nr * static_cast<std::size_t>(local_ports_);
  ni_queue_.resize(queues);
  ni_front_flit_.assign(queues, 0);
  ni_open_vc_.assign(queues, -1);
  ni_next_vc_.assign(queues, 0);

  work_.assign(nr, 0);
  buffered_.assign(nr, 0);
  queued_.assign(nr, 0);
}

void SoaEngine::pregenerate(const topo::Topology& topo) {
  // Replays the reference generation loop exactly: same PRNG, same draw
  // order (cycle -> tile -> port, inject draw then destination draw), same
  // fixed-point skip, same packet ids. No draw depends on network state and
  // source queues are unbounded, so the schedule is a pure function of the
  // seed — which is what makes quiescence fast-forward exact.
  Prng rng(config_.seed);
  process_->reset();
  const Cycle generation_end = config_.warmup_cycles + config_.measure_cycles;
  const double packet_prob =
      config_.injection_rate / static_cast<double>(config_.packet_size_flits);
  const Concentration conc = Concentration::make(topo.rows(), topo.cols(),
                                                 config_.concentration);
  const bool concentrated = config_.concentration > 1;

  const std::size_t hint = packet_reserve_hint(
      packet_prob, generation_end, num_routers_, local_ports_);
  pk_create_.reserve(hint);
  pk_src_.reserve(hint);
  pk_dest_.reserve(hint);
  pk_port_.reserve(hint);
  pk_eject_port_.reserve(hint);
  pk_measured_.reserve(hint);

  for (Cycle t = 0; t < generation_end; ++t) {
    for (int tile = 0; tile < num_routers_; ++tile) {
      for (int port = 0; port < local_ports_; ++port) {
        const int source = tile * local_ports_ + port;
        if (!process_->inject(source, rng)) continue;
        int dest_tile;
        int eject_port = -1;
        if (concentrated) {
          const int src_terminal = conc.terminal(tile, port);
          const int dest_terminal = pattern_->dest(src_terminal, rng);
          if (dest_terminal == src_terminal) continue;
          dest_tile = conc.tile_of(dest_terminal);
          eject_port = conc.port_of(dest_terminal);
        } else {
          dest_tile = pattern_->dest(tile, rng);
          if (dest_tile == tile) continue;  // fixed point of a permutation
        }
        const bool measured = t >= config_.warmup_cycles;
        pk_create_.push_back(t);
        pk_src_.push_back(tile);
        pk_dest_.push_back(dest_tile);
        pk_port_.push_back(port);
        pk_eject_port_.push_back(eject_port);
        pk_measured_.push_back(measured ? 1 : 0);
        if (measured) ++measured_created_;
      }
    }
  }
  pk_hops_.assign(pk_create_.size(), 0);
  pk_via_.assign(pk_create_.size(), -1);
  pk_done_.assign(pk_create_.size(), 0);
}

void SoaEngine::push_buf(std::size_t s, Cycle ready, std::int32_t pkt,
                         std::uint8_t flags) {
  SHG_ASSERT(buf_count_[s] < depth_, "input VC ring overflow");
  std::size_t idx = static_cast<std::size_t>(buf_head_[s]) + buf_count_[s];
  if (idx >= static_cast<std::size_t>(depth_)) {
    idx -= static_cast<std::size_t>(depth_);
  }
  buf_[s * static_cast<std::size_t>(depth_) + idx] = {ready, pkt, flags};
  ++buf_count_[s];
}

void SoaEngine::push_chan_flit(int c, Cycle now, std::int32_t pkt, int vc,
                               std::uint8_t flags) {
  const std::size_t ci = static_cast<std::size_t>(c);
  SHG_ASSERT(chan_fcount_[ci] < chan_cap_[ci], "channel flit ring overflow");
  std::size_t idx =
      static_cast<std::size_t>(chan_fhead_[ci]) + chan_fcount_[ci];
  if (idx >= static_cast<std::size_t>(chan_cap_[ci])) {
    idx -= static_cast<std::size_t>(chan_cap_[ci]);
  }
  chan_flits_[chan_base_[ci] + idx] = {now + chan_lat_[ci], pkt,
                                       static_cast<std::int16_t>(vc), flags};
  ++chan_fcount_[ci];
}

void SoaEngine::push_chan_credit(int c, Cycle now, int vc) {
  const std::size_t ci = static_cast<std::size_t>(c);
  SHG_ASSERT(chan_ccount_[ci] < chan_cap_[ci], "channel credit ring overflow");
  std::size_t idx =
      static_cast<std::size_t>(chan_chead_[ci]) + chan_ccount_[ci];
  if (idx >= static_cast<std::size_t>(chan_cap_[ci])) {
    idx -= static_cast<std::size_t>(chan_cap_[ci]);
  }
  chan_credits_[chan_base_[ci] + idx] = {now + chan_lat_[ci], vc};
  ++chan_ccount_[ci];
}

void SoaEngine::deliver(int r, Cycle now) {
  const std::size_t pbase = port_base_[static_cast<std::size_t>(r)];
  const int net = net_ports_[static_cast<std::size_t>(r)];
  for (int p = 0; p < net; ++p) {
    const std::size_t pidx = pbase + static_cast<std::size_t>(p);
    // Flits arriving from the upstream neighbor.
    const std::size_t ci = static_cast<std::size_t>(in_chan_[pidx]);
    while (chan_fcount_[ci] > 0) {
      const ChanFlit& entry = chan_flits_[chan_base_[ci] + chan_fhead_[ci]];
      if (entry.arrival > now) break;
      const std::size_t s = pidx * static_cast<std::size_t>(vcs_) +
                            static_cast<std::size_t>(entry.vc);
      SHG_ASSERT(buf_count_[s] < depth_,
                 "credit protocol violated: buffer overflow");
      // A flit landing in an empty idle slot is a fresh head awaiting route
      // computation (state only returns to idle after a tail departs).
      if (buf_count_[s] == 0 && ivc_state_[s] == kIdle) {
        ++route_pending_[static_cast<std::size_t>(r)];
      }
      push_buf(s, now + delay_, entry.pkt, entry.flags);
      ++buffered_[static_cast<std::size_t>(r)];
      chan_fhead_[ci] = static_cast<std::uint16_t>(
          chan_fhead_[ci] + 1 == chan_cap_[ci] ? 0 : chan_fhead_[ci] + 1);
      --chan_fcount_[ci];
    }
    // Credits returning from the downstream neighbor.
    const std::size_t co = static_cast<std::size_t>(out_chan_[pidx]);
    while (chan_ccount_[co] > 0) {
      const ChanCredit& entry =
          chan_credits_[chan_base_[co] + chan_chead_[co]];
      if (entry.arrival > now) break;
      ++ovc_credits_[pidx * static_cast<std::size_t>(vcs_) +
                     static_cast<std::size_t>(entry.vc)];
      chan_chead_[co] = static_cast<std::uint16_t>(
          chan_chead_[co] + 1 == chan_cap_[co] ? 0 : chan_chead_[co] + 1);
      --chan_ccount_[co];
      --total_credits_;
      --work_[static_cast<std::size_t>(r)];
    }
  }
}

void SoaEngine::ni_inject(int r, Cycle now) {
  const std::size_t pbase = port_base_[static_cast<std::size_t>(r)];
  const int net = net_ports_[static_cast<std::size_t>(r)];
  for (int l = 0; l < local_ports_; ++l) {
    const std::size_t q =
        static_cast<std::size_t>(r) * static_cast<std::size_t>(local_ports_) +
        static_cast<std::size_t>(l);
    PktRing& ring = ni_queue_[q];
    if (ring.count == 0) continue;
    const std::int32_t pkt = ring.front();
    const int fi = ni_front_flit_[q];
    const bool head = fi == 0;
    const bool tail = fi == pkt_flits_ - 1;
    const std::size_t pidx = pbase + static_cast<std::size_t>(net + l);
    int chosen;
    if (head) {
      SHG_ASSERT(ni_open_vc_[q] < 0, "head flit while another packet is open");
      // Pick an input VC with space, round-robin (the routing constraints
      // bind at the router's output, not at the local input buffer).
      chosen = -1;
      for (int off = 0; off < vcs_; ++off) {
        const int v = (ni_next_vc_[q] + off) % vcs_;
        if (buf_count_[pidx * static_cast<std::size_t>(vcs_) +
                       static_cast<std::size_t>(v)] < depth_) {
          chosen = v;
          break;
        }
      }
      if (chosen < 0) continue;  // all local VCs full; retry next cycle
      ni_next_vc_[q] = (chosen + 1) % vcs_;
      if (!tail) ni_open_vc_[q] = chosen;
    } else {
      // Body/tail flit: must continue on the head's VC.
      SHG_ASSERT(ni_open_vc_[q] >= 0, "body flit without an open packet");
      chosen = ni_open_vc_[q];
      if (buf_count_[pidx * static_cast<std::size_t>(vcs_) +
                     static_cast<std::size_t>(chosen)] >= depth_) {
        continue;
      }
      if (tail) ni_open_vc_[q] = -1;
    }
    std::uint8_t flags = 0;
    if (head) flags |= kHead;
    if (tail) flags |= kTail;
    const std::size_t s = pidx * static_cast<std::size_t>(vcs_) +
                          static_cast<std::size_t>(chosen);
    if (buf_count_[s] == 0 && ivc_state_[s] == kIdle) {
      ++route_pending_[static_cast<std::size_t>(r)];
    }
    push_buf(s, now + delay_, pkt, flags);
    ++buffered_[static_cast<std::size_t>(r)];
    if (fi + 1 == pkt_flits_) {
      ring.pop();
      ni_front_flit_[q] = 0;
    } else {
      ni_front_flit_[q] = fi + 1;
    }
  }
}

void SoaEngine::compute_route(int r, int port, int vc, std::size_t s) {
  const BufFlit& head = buf_[s * static_cast<std::size_t>(depth_) +
                             static_cast<std::size_t>(buf_head_[s])];
  SHG_ASSERT((head.flags & kHead) != 0,
             "route computation requires a head flit");
  const int net = net_ports_[static_cast<std::size_t>(r)];
  const int dest = pk_dest_[static_cast<std::size_t>(head.pkt)];
  if (dest == r) {
    // Ejection: the destination terminal's port when the packet carries one
    // (concentrated fabrics), otherwise pick the endpoint port by packet id.
    const int ep = pk_eject_port_[static_cast<std::size_t>(head.pkt)];
    SHG_ASSERT(ep < local_ports_, "eject port beyond the tile's endpoints");
    const int local = net + (ep >= 0 ? ep : head.pkt % local_ports_);
    ivc_eject_[s] = RouteCandidate{local, 0, vcs_};
    ivc_routes_[s] = &ivc_eject_[s];
    ivc_routes_len_[s] = 1;
  } else {
    // Local input ports report in_port == -1 AND in_vc == -1 (see the
    // reference Router::compute_route for the deadlock this avoids).
    const bool from_network = port < net;
    const int in_port = from_network ? port : -1;
    const int in_vc = from_network ? vc : -1;
    if (ugal_mode_) {
      compute_route_ugal(r, s, in_port, in_vc, head.pkt, dest);
    } else if (table_ != nullptr) {
      const auto span = table_->lookup(r, in_port, in_vc, dest);
      ivc_routes_[s] = span.data();
      ivc_routes_len_[s] = static_cast<std::int32_t>(span.size());
    } else {
      ivc_live_[s] = routing_->route(r, in_port, in_vc, dest);
      ivc_routes_[s] = ivc_live_[s].data();
      ivc_routes_len_[s] = static_cast<std::int32_t>(ivc_live_[s].size());
    }
    SHG_ASSERT(ivc_routes_len_[s] > 0, "routing returned no candidates");
  }
  ivc_state_[s] = kVcAlloc;
  --route_pending_[static_cast<std::size_t>(r)];
  ++va_pending_[static_cast<std::size_t>(r)];
}

int SoaEngine::first_port(int r, int to) const {
  if (table_ != nullptr) {
    return table_->lookup(r, -1, -1, to).front().out_port;
  }
  return routing_->route(r, -1, -1, to).front().out_port;
}

int SoaEngine::adaptive_occupancy(int r, int port) const {
  const std::size_t base = slot(r, port, 0);
  int occ = 0;
  for (int v = kUgalEscapeVcs; v < vcs_; ++v) {
    occ += depth_ - ovc_credits_[base + static_cast<std::size_t>(v)];
  }
  return occ;
}

void SoaEngine::append_band(int r, int in_port, int in_vc, int to,
                            bool adaptive,
                            std::vector<RouteCandidate>& out) const {
  if (table_ != nullptr) {
    for (const RouteCandidate& cand : table_->lookup(r, in_port, in_vc, to)) {
      if ((cand.vc_begin >= kUgalEscapeVcs) == adaptive) out.push_back(cand);
    }
  } else {
    for (const RouteCandidate& cand :
         routing_->route(r, in_port, in_vc, to)) {
      if ((cand.vc_begin >= kUgalEscapeVcs) == adaptive) out.push_back(cand);
    }
  }
}

void SoaEngine::compute_route_ugal(int r, std::size_t s, int in_port,
                                   int in_vc, std::int32_t pkt, int dest) {
  // Mirrors Router::compute_route_ugal decision-for-decision; the occupancy
  // reads touch only this router's output credit counters, which deliver(r)
  // settled before allocate(r) in both engines (phase commutation across
  // routers), so the choice is engine-independent.
  const bool on_escape =
      in_port >= 0 && in_vc >= 0 && in_vc < kUgalEscapeVcs;
  std::int32_t& via = pk_via_[static_cast<std::size_t>(pkt)];
  if (!on_escape) {
    if (in_port < 0 && via < 0) {
      const std::int32_t drawn = ugal_info_->via_of(r, dest);
      if (drawn >= 0) {
        const int occ_min = adaptive_occupancy(r, first_port(r, dest));
        const int occ_nm = adaptive_occupancy(r, first_port(r, drawn));
        const long long cost_min =
            static_cast<long long>(occ_min) *
            ugal_info_->hops_between(r, dest);
        const long long cost_nm =
            static_cast<long long>(occ_nm) *
                (ugal_info_->hops_between(r, drawn) +
                 ugal_info_->hops_between(drawn, dest)) +
            config_.ugal_bias_flits;
        if (cost_nm < cost_min) {
          via = drawn;
          ++ugal_nonminimal_;
        }
      }
    }
    if (via == r) via = -1;  // intermediate reached; route to dest now
    if (via >= 0) {
      // Non-minimal leg: adaptive candidates steer toward the intermediate,
      // escape candidates keep targeting the final destination.
      std::vector<RouteCandidate>& spliced = ivc_live_[s];
      spliced.clear();
      append_band(r, in_port, in_vc, via, /*adaptive=*/true, spliced);
      append_band(r, in_port, in_vc, dest, /*adaptive=*/false, spliced);
      ivc_routes_[s] = spliced.data();
      ivc_routes_len_[s] = static_cast<std::int32_t>(spliced.size());
      return;
    }
  }
  // Escape state or minimal/post-via adaptive state: the plain row toward
  // the destination.
  if (table_ != nullptr) {
    const auto span = table_->lookup(r, in_port, in_vc, dest);
    ivc_routes_[s] = span.data();
    ivc_routes_len_[s] = static_cast<std::int32_t>(span.size());
  } else {
    ivc_live_[s] = routing_->route(r, in_port, in_vc, dest);
    ivc_routes_[s] = ivc_live_[s].data();
    ivc_routes_len_[s] = static_cast<std::int32_t>(ivc_live_[s].size());
  }
}

void SoaEngine::allocate(int r, Cycle now) {
  // Empty router fast path — identical to the reference (the round-robin
  // pointers only advance on grants, so skipping is bit-identical).
  if (buffered_[static_cast<std::size_t>(r)] == 0) return;
  const std::size_t pbase = port_base_[static_cast<std::size_t>(r)];
  const int net = net_ports_[static_cast<std::size_t>(r)];
  const int ports = net + local_ports_;
  const int vcs = vcs_;
  const std::size_t sbase = pbase * static_cast<std::size_t>(vcs);

  // --- Route computation for fresh heads --------------------------------
  if (route_pending_[static_cast<std::size_t>(r)] > 0) {
    for (int p = 0; p < ports; ++p) {
      for (int v = 0; v < vcs; ++v) {
        const std::size_t s = sbase + static_cast<std::size_t>(p * vcs + v);
        if (ivc_state_[s] == kIdle && buf_count_[s] > 0) {
          compute_route(r, p, v, s);
        }
      }
    }
  }

  // --- VC allocation ------------------------------------------------------
  // Each waiting input VC requests its most-preferred candidate with a free
  // output VC; requests are grouped per output VC and granted round-robin.
  if (va_pending_[static_cast<std::size_t>(r)] > 0) {
    va_requests_.clear();
    for (int p = 0; p < ports; ++p) {
      for (int v = 0; v < vcs; ++v) {
        const std::size_t s = sbase + static_cast<std::size_t>(p * vcs + v);
        if (ivc_state_[s] != kVcAlloc) continue;
        int request = -1;
        const RouteCandidate* cands = ivc_routes_[s];
        const int len = ivc_routes_len_[s];
        for (int ci = 0; ci < len; ++ci) {
          const RouteCandidate& cand = cands[ci];
          // UGAL mode: adaptive-band candidates additionally require a
          // credit, so a stuck head can always fall through to the escape
          // candidate instead of camping on a starved adaptive VC.
          const bool needs_credit =
              ugal_mode_ && cand.vc_begin >= kUgalEscapeVcs;
          for (int ov = cand.vc_begin; ov < cand.vc_end; ++ov) {
            const std::size_t o =
                sbase + static_cast<std::size_t>(cand.out_port * vcs + ov);
            if (!ovc_busy_[o] && (!needs_credit || ovc_credits_[o] > 0)) {
              request = cand.out_port * vcs + ov;
              break;
            }
          }
          if (request >= 0) break;
        }
        if (request >= 0) {
          va_requests_.emplace_back(request, p * vcs + v);
        }
      }
    }
    std::sort(va_requests_.begin(), va_requests_.end());
    for (std::size_t i = 0; i < va_requests_.size();) {
      const int out_key = va_requests_[i].first;
      std::size_t j = i;
      while (j < va_requests_.size() && va_requests_[j].first == out_key) ++j;
      // Round-robin among requesters [i, j).
      const int rr = va_rr_[sbase + static_cast<std::size_t>(out_key)];
      std::size_t winner = i;
      int best = std::numeric_limits<int>::max();
      for (std::size_t k = i; k < j; ++k) {
        const int in_key = va_requests_[k].second;
        const int rank = (in_key - rr + ports * vcs) % (ports * vcs);
        if (rank < best) {
          best = rank;
          winner = k;
        }
      }
      const int in_key = va_requests_[winner].second;
      const std::size_t s = sbase + static_cast<std::size_t>(in_key);
      ivc_state_[s] = kActive;
      ivc_out_port_[s] = out_key / vcs;
      ivc_out_vc_[s] = out_key % vcs;
      ovc_busy_[sbase + static_cast<std::size_t>(out_key)] = 1;
      va_rr_[sbase + static_cast<std::size_t>(out_key)] =
          (in_key + 1) % (ports * vcs);
      --va_pending_[static_cast<std::size_t>(r)];
      ++active_ivcs_[static_cast<std::size_t>(r)];
      ++port_active_[pbase + static_cast<std::size_t>(in_key / vcs)];
      i = j;
    }
  }

  // --- Switch allocation ---------------------------------------------------
  // Input-first: every input port with an active VC nominates one ready VC
  // (round-robin), then every requested output port grants one input port
  // (round-robin). Ports without active VCs cannot nominate and outputs
  // without requests grant nothing, so restricting both scans to the
  // occupied entries decides identically to the reference full sweep.
  if (active_ivcs_[static_cast<std::size_t>(r)] == 0) return;
  sa_req_in_.clear();
  sa_req_ops_.clear();
  for (int p = 0; p < ports; ++p) {
    if (port_active_[pbase + static_cast<std::size_t>(p)] == 0) continue;
    const int start = sa_in_rr_[pbase + static_cast<std::size_t>(p)];
    for (int off = 0; off < vcs; ++off) {
      const int v = (start + off) % vcs;
      const std::size_t s = sbase + static_cast<std::size_t>(p * vcs + v);
      if (ivc_state_[s] != kActive || buf_count_[s] == 0) continue;
      const BufFlit& front = buf_[s * static_cast<std::size_t>(depth_) +
                                  static_cast<std::size_t>(buf_head_[s])];
      const std::size_t os =
          sbase +
          static_cast<std::size_t>(ivc_out_port_[s] * vcs + ivc_out_vc_[s]);
      if (front.ready <= now && ovc_credits_[os] > 0) {
        const int op = ivc_out_port_[s];
        sa_request_port_[static_cast<std::size_t>(p)] = op;
        sa_request_vc_[static_cast<std::size_t>(p)] = v;
        sa_req_in_.push_back(p);
        const auto it =
            std::lower_bound(sa_req_ops_.begin(), sa_req_ops_.end(), op);
        if (it == sa_req_ops_.end() || *it != op) sa_req_ops_.insert(it, op);
        break;
      }
    }
  }
  // Grants processed in ascending output-port order, matching the reference
  // output sweep (this fixes the within-router ejection order).
  for (const int op : sa_req_ops_) {
    int winner = -1;
    int best = std::numeric_limits<int>::max();
    const int rr = sa_out_rr_[pbase + static_cast<std::size_t>(op)];
    for (const int p : sa_req_in_) {
      if (sa_request_port_[static_cast<std::size_t>(p)] != op) continue;
      const int rank = (p - rr + ports) % ports;
      if (rank < best) {
        best = rank;
        winner = p;
      }
    }
    if (winner < 0) continue;
    sa_out_rr_[pbase + static_cast<std::size_t>(op)] = (winner + 1) % ports;
    sa_in_rr_[pbase + static_cast<std::size_t>(winner)] =
        (sa_request_vc_[static_cast<std::size_t>(winner)] + 1) % vcs;

    // --- Switch traversal --------------------------------------------------
    const int iv = sa_request_vc_[static_cast<std::size_t>(winner)];
    const std::size_t s = sbase + static_cast<std::size_t>(winner * vcs + iv);
    const BufFlit flit = buf_[s * static_cast<std::size_t>(depth_) +
                              static_cast<std::size_t>(buf_head_[s])];
    buf_head_[s] = static_cast<std::uint16_t>(
        buf_head_[s] + 1 == depth_ ? 0 : buf_head_[s] + 1);
    --buf_count_[s];
    --buffered_[static_cast<std::size_t>(r)];
    const int out_port = ivc_out_port_[s];
    const int out_v = ivc_out_vc_[s];
    const std::size_t os = sbase + static_cast<std::size_t>(out_port * vcs +
                                                            out_v);
    // Hop counting: the reference stamps every flit, but only the tail's
    // value is read at ejection, and in wormhole switching the tail crosses
    // exactly the routers the head crossed — so counting head traversals
    // into the per-packet array is equivalent.
    if (flit.flags & kHead) ++pk_hops_[static_cast<std::size_t>(flit.pkt)];
    if (out_port >= net) {
      // Ejection; the endpoint sink consumes immediately (credit net zero).
      eject_buf_.push_back(EjectRec{r, flit.pkt, flit.flags});
      --work_[static_cast<std::size_t>(r)];
      --total_flits_;
    } else {
      --ovc_credits_[os];
      const int c = out_chan_[pbase + static_cast<std::size_t>(out_port)];
      push_chan_flit(c, now, flit.pkt, out_v, flit.flags);
      const int nbr = chan_dst_[static_cast<std::size_t>(c)];
      --work_[static_cast<std::size_t>(r)];
      ++work_[static_cast<std::size_t>(nbr)];
      activate(nbr);
    }
    // Return the freed buffer slot upstream (network inputs only; the NI
    // observes local buffer occupancy directly).
    if (winner < net) {
      const int c = in_chan_[pbase + static_cast<std::size_t>(winner)];
      push_chan_credit(c, now, iv);
      ++total_credits_;
      const int up = chan_src_[static_cast<std::size_t>(c)];
      ++work_[static_cast<std::size_t>(up)];
      activate(up);
    }
    if (flit.flags & kTail) {
      ovc_busy_[os] = 0;
      ivc_state_[s] = kIdle;
      ivc_out_port_[s] = -1;
      ivc_out_vc_[s] = -1;
      ivc_routes_[s] = nullptr;
      ivc_routes_len_[s] = 0;
      --active_ivcs_[static_cast<std::size_t>(r)];
      --port_active_[pbase + static_cast<std::size_t>(winner)];
      // The next packet's head may already be buffered behind the departed
      // tail; it becomes route-pending now that the slot is idle again.
      if (buf_count_[s] > 0) ++route_pending_[static_cast<std::size_t>(r)];
    }
  }
}

SimResult SoaEngine::run() {
  const Cycle generation_end = config_.warmup_cycles + config_.measure_cycles;
  const Cycle hard_end = generation_end + config_.drain_cycles;
  const std::size_t num_packets = pk_create_.size();

  long long measured_ejected = 0;
  long long flits_ejected_in_window = 0;
  Distribution latencies(config_.latency_sample_cap);
  double hops_sum = 0.0;
  std::vector<double> source_latency_sum(
      static_cast<std::size_t>(num_routers_), 0.0);
  std::vector<long long> source_packets(static_cast<std::size_t>(num_routers_),
                                        0);
  Cycle last_ejection = 0;

  SimResult result;
  result.offered_rate = config_.injection_rate;

  Cycle now = 0;
  for (; now < hard_end; ++now) {
    // --- Quiescence fast-forward ------------------------------------------
    // With no flit anywhere and no credit on any channel, every cycle until
    // the next scheduled injection is a provable no-op (allocators skip
    // empty routers bit-identically, round-robin state is frozen, and no
    // termination check can fire before generation_end — scheduled
    // injections all precede it). Jump straight to the next event.
    if (total_flits_ == 0 && total_credits_ == 0) {
      if (sched_ptr_ < num_packets) {
        if (pk_create_[sched_ptr_] > now) now = pk_create_[sched_ptr_];
      } else {
        // Nothing will ever move again: the reference loop idles to its
        // first post-generation termination check and breaks there.
        if (now < generation_end) now = generation_end;
        break;
      }
    }

    // --- Packet generation (pre-drawn schedule) ---------------------------
    while (sched_ptr_ < num_packets && pk_create_[sched_ptr_] == now) {
      const std::int32_t pkt = static_cast<std::int32_t>(sched_ptr_++);
      const int tile = pk_src_[static_cast<std::size_t>(pkt)];
      ni_queue_[static_cast<std::size_t>(tile) *
                    static_cast<std::size_t>(local_ports_) +
                static_cast<std::size_t>(
                    pk_port_[static_cast<std::size_t>(pkt)])]
          .push(pkt);
      work_[static_cast<std::size_t>(tile)] += pkt_flits_;
      total_flits_ += pkt_flits_;
      activate(tile);
    }

    // --- One network cycle over the active routers ------------------------
    // Phases commute across routers (channel entries are timestamped at
    // now + latency >= now + 1, so nothing pushed this cycle is visible
    // this cycle), which lets deliver/inject/allocate fuse per router.
    // Routers activated during the pass (flits or credits sent their way)
    // are appended beyond the snapshot and start next cycle.
    const std::size_t n_active = active_.size();
    for (std::size_t i = 0; i < n_active; ++i) {
      const int r = active_[i];
      deliver(r, now);
      ni_inject(r, now);
      allocate(r, now);
    }

    // --- Harvest ejected flits (reference order: tile-ascending) ----------
    if (!eject_buf_.empty()) {
      std::stable_sort(eject_buf_.begin(), eject_buf_.end(),
                       [](const EjectRec& a, const EjectRec& b) {
                         return a.tile < b.tile;
                       });
      for (const EjectRec& e : eject_buf_) {
        last_ejection = now;
        if (now >= config_.warmup_cycles && now < generation_end) {
          ++flits_ejected_in_window;
        }
        if (!(e.flags & kTail)) continue;
        const std::size_t pkt = static_cast<std::size_t>(e.pkt);
        SHG_ASSERT(!pk_done_[pkt], "packet ejected twice");
        pk_done_[pkt] = 1;
        if (pk_measured_[pkt]) {
          ++measured_ejected;
          const double latency =
              static_cast<double>(now - pk_create_[pkt] + 1);
          latencies.add(latency);
          hops_sum += pk_hops_[pkt];
          source_latency_sum[static_cast<std::size_t>(pk_src_[pkt])] +=
              latency;
          ++source_packets[static_cast<std::size_t>(pk_src_[pkt])];
        }
      }
      eject_buf_.clear();
    }

    // --- Worklist compaction ----------------------------------------------
    std::size_t w = 0;
    for (std::size_t i = 0; i < active_.size(); ++i) {
      const int r = active_[i];
      if (work_[static_cast<std::size_t>(r)] > 0) {
        active_[w++] = r;
      } else {
        queued_[static_cast<std::size_t>(r)] = 0;
      }
    }
    active_.resize(w);

    // --- Termination checks -----------------------------------------------
    if (now >= generation_end) {
      if (measured_ejected == measured_created_) break;
      // Deadlock/livelock watchdog: traffic in flight but nothing ejects.
      if (now - last_ejection > 20000 && total_flits_ > 0) {
        break;
      }
    }
  }

  result.cycles_run = now;
  result.measured_packets = measured_ejected;
  result.drained = measured_ejected == measured_created_;
  result.accepted_rate =
      static_cast<double>(flits_ejected_in_window) /
      (static_cast<double>(config_.measure_cycles) *
       static_cast<double>(num_routers_) * static_cast<double>(local_ports_));
  if (measured_ejected > 0) {
    result.avg_packet_latency = latencies.mean();
    result.max_packet_latency = latencies.max();
    result.p50_packet_latency = latencies.percentile(0.50);
    result.p95_packet_latency = latencies.percentile(0.95);
    result.p99_packet_latency = latencies.percentile(0.99);
    result.avg_hops = hops_sum / static_cast<double>(measured_ejected);
    std::vector<double> per_source;
    for (std::size_t s = 0; s < source_packets.size(); ++s) {
      if (source_packets[s] > 0) {
        per_source.push_back(source_latency_sum[s] /
                             static_cast<double>(source_packets[s]));
      }
    }
    if (!per_source.empty()) {
      result.fairness = fairness_ratio(per_source);
    }
  }
  return result;
}

}  // namespace shg::sim
