#include "shg/sim/trace.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "shg/common/error.hpp"
#include "shg/common/log.hpp"
#include "shg/sim/concentration.hpp"
#include "shg/sim/traffic_spec.hpp"

namespace shg::sim {

namespace {

// shg.trace.v1 layout constants (see trace.hpp for the full map).
constexpr char kMagic[8] = {'S', 'H', 'G', 'T', 'R', 'A', 'C', 'E'};
constexpr std::uint32_t kFormatVersion = 1;
constexpr std::size_t kHeaderBytes = 48;
constexpr std::size_t kRecordBytes = 24;
/// Reconstructed absolute timestamps are capped so that schedule cycle
/// arithmetic (start + packet count) can never overflow a Cycle.
constexpr std::uint64_t kMaxTimestamp = 1ULL << 48;

void put_u32(std::vector<unsigned char>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<unsigned char>(v >> (8 * i)));
  }
}

void put_u64(std::vector<unsigned char>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<unsigned char>(v >> (8 * i)));
  }
}

std::uint32_t get_u32(const unsigned char* p) {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

std::uint64_t get_u64(const unsigned char* p) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

std::uint64_t fnv1a(std::uint64_t h, const unsigned char* data,
                    std::size_t size) {
  for (std::size_t i = 0; i < size; ++i) {
    h = (h ^ data[i]) * 0x00000100000001b3ULL;
  }
  return h;
}

constexpr std::uint64_t kFnvBasis = 0xcbf29ce484222325ULL;

std::vector<unsigned char> serialize_records(const Trace& trace) {
  std::vector<unsigned char> payload;
  payload.reserve(trace.records.size() * kRecordBytes);
  for (const TraceRecord& rec : trace.records) {
    put_u32(payload, rec.source);
    put_u32(payload, rec.delta);
    put_u32(payload, rec.dest);
    put_u32(payload, rec.size_flits);
    put_u64(payload, rec.dep);
  }
  return payload;
}

/// The loader's single rejection path: one warning line through the
/// shg::log sink, then a clean shg::Error. Never UB, never a crash.
[[noreturn]] void reject(const std::string& path, const std::string& reason) {
  log::warnf("shg: warning: trace file '%s' %s; rejecting it\n", path.c_str(),
             reason.c_str());
  throw Error("trace file '" + path + "' " + reason);
}

}  // namespace

std::uint64_t Trace::content_hash() const {
  std::vector<unsigned char> head;
  head.reserve(24);
  put_u64(head, num_sources);
  put_u64(head, num_terminals);
  put_u64(head, records.size());
  const std::vector<unsigned char> payload = serialize_records(*this);
  std::uint64_t h = fnv1a(kFnvBasis, head.data(), head.size());
  return fnv1a(h, payload.data(), payload.size());
}

void validate_trace(const Trace& trace, const std::string& context) {
  SHG_REQUIRE(trace.num_sources >= 1,
              context + ": trace declares zero sources");
  SHG_REQUIRE(trace.num_terminals >= 1,
              context + ": trace declares zero terminals");
  // Per-source delta chains reconstruct absolute timestamps; file order
  // must be global time order, so the reconstructed sequence must be
  // nondecreasing across ALL records, not merely per source.
  std::vector<std::uint64_t> last_ts(trace.num_sources, 0);
  std::uint64_t prev_abs = 0;
  for (std::size_t i = 0; i < trace.records.size(); ++i) {
    const TraceRecord& rec = trace.records[i];
    const std::string at = context + ": record " + std::to_string(i);
    SHG_REQUIRE(rec.source < trace.num_sources,
                at + " source " + std::to_string(rec.source) +
                    " out of range (trace declares " +
                    std::to_string(trace.num_sources) + " sources)");
    SHG_REQUIRE(rec.dest < trace.num_terminals,
                at + " destination " + std::to_string(rec.dest) +
                    " out of range (trace declares " +
                    std::to_string(trace.num_terminals) + " terminals)");
    SHG_REQUIRE(rec.size_flits >= 1, at + " has a zero-flit message size");
    SHG_REQUIRE(rec.dep == kTraceNoDep || rec.dep < i,
                at + " depends on record " + std::to_string(rec.dep) +
                    ", which is not an earlier record");
    const std::uint64_t abs = last_ts[rec.source] + rec.delta;
    SHG_REQUIRE(abs <= kMaxTimestamp,
                at + " reconstructs a timestamp past the 2^48 cap");
    SHG_REQUIRE(abs >= prev_abs,
                at + " violates timestamp order (reconstructed cycle " +
                    std::to_string(abs) + " precedes cycle " +
                    std::to_string(prev_abs) + ")");
    last_ts[rec.source] = abs;
    prev_abs = abs;
  }
}

void save_trace(const Trace& trace, const std::string& path) {
  const std::vector<unsigned char> payload = serialize_records(trace);
  std::vector<unsigned char> header;
  header.reserve(kHeaderBytes);
  header.insert(header.end(), kMagic, kMagic + sizeof(kMagic));
  put_u32(header, kFormatVersion);
  put_u32(header, 0);  // reserved
  put_u64(header, trace.num_sources);
  put_u64(header, trace.num_terminals);
  put_u64(header, trace.records.size());
  put_u64(header, fnv1a(kFnvBasis, payload.data(), payload.size()));

  std::FILE* f = std::fopen(path.c_str(), "wb");
  SHG_REQUIRE(f != nullptr, "cannot write trace file '" + path + "'");
  const bool ok =
      std::fwrite(header.data(), 1, header.size(), f) == header.size() &&
      (payload.empty() ||
       std::fwrite(payload.data(), 1, payload.size(), f) == payload.size());
  const bool closed = std::fclose(f) == 0;
  SHG_REQUIRE(ok && closed, "short write to trace file '" + path + "'");
}

Trace load_trace(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) reject(path, "cannot be opened");
  std::vector<unsigned char> data;
  {
    unsigned char buf[1 << 16];
    std::size_t n = 0;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
      data.insert(data.end(), buf, buf + n);
    }
    const bool read_error = std::ferror(f) != 0;
    std::fclose(f);
    if (read_error) reject(path, "failed to read");
  }

  if (data.size() < kHeaderBytes) {
    reject(path, "is truncated (shorter than the shg.trace.v1 header)");
  }
  if (std::memcmp(data.data(), kMagic, sizeof(kMagic)) != 0) {
    reject(path, "has the wrong magic (not an shg.trace.v1 file)");
  }
  const std::uint32_t version = get_u32(data.data() + 8);
  if (version != kFormatVersion) {
    reject(path, "has unsupported format version " + std::to_string(version));
  }
  const std::uint64_t num_sources = get_u64(data.data() + 16);
  const std::uint64_t num_terminals = get_u64(data.data() + 24);
  const std::uint64_t num_records = get_u64(data.data() + 32);
  const std::uint64_t checksum = get_u64(data.data() + 40);
  if (num_sources > (1ULL << 31) || num_terminals > (1ULL << 31)) {
    reject(path, "declares an implausible id space (more than 2^31 ids)");
  }
  const std::uint64_t payload_bytes = data.size() - kHeaderBytes;
  if (num_records > payload_bytes / kRecordBytes) {
    reject(path, "is truncated (record count exceeds the payload)");
  }
  if (num_records * kRecordBytes != payload_bytes) {
    reject(path, "has trailing bytes after the declared records");
  }
  if (fnv1a(kFnvBasis, data.data() + kHeaderBytes, payload_bytes) != checksum) {
    reject(path, "fails its payload checksum");
  }

  Trace trace;
  trace.num_sources = static_cast<std::uint32_t>(num_sources);
  trace.num_terminals = static_cast<std::uint32_t>(num_terminals);
  trace.records.resize(num_records);
  const unsigned char* p = data.data() + kHeaderBytes;
  for (std::uint64_t i = 0; i < num_records; ++i, p += kRecordBytes) {
    TraceRecord& rec = trace.records[i];
    rec.source = get_u32(p);
    rec.delta = get_u32(p + 4);
    rec.dest = get_u32(p + 8);
    rec.size_flits = get_u32(p + 12);
    rec.dep = get_u64(p + 16);
  }
  try {
    validate_trace(trace, "trace file '" + path + "'");
  } catch (const Error& e) {
    reject(path, std::string("fails validation: ") + e.what());
  }
  return trace;
}

namespace {

/// The cursor shared by the replay pair. The engines call inject() exactly
/// once per (source, cycle) with sources ascending and, on a positive
/// draw, query the pattern immediately after and strictly sequentially
/// (both engines generate single-threaded) — so one staged destination
/// slot suffices and no source-to-terminal mapping is re-derived.
struct ReplayState {
  struct Entry {
    Cycle cycle;
    std::int32_t dest;
  };
  std::vector<std::vector<Entry>> schedule;  ///< per source, cycle-ascending
  std::vector<std::size_t> cursor;           ///< per source
  std::vector<Cycle> clock;  ///< per source: the cycle of its next inject()
  std::int32_t staged_dest = -1;

  void reset() {
    std::fill(cursor.begin(), cursor.end(), 0);
    std::fill(clock.begin(), clock.end(), Cycle{0});
    staged_dest = -1;
  }
};

class TraceInjectionProcess final : public InjectionProcess {
 public:
  explicit TraceInjectionProcess(std::shared_ptr<ReplayState> state)
      : state_(std::move(state)) {}

  bool inject(int source, Prng& /*rng*/) override {
    ReplayState& st = *state_;
    const auto s = static_cast<std::size_t>(source);
    const Cycle now = st.clock[s]++;  // call count == cycle, per contract
    const std::vector<ReplayState::Entry>& sched = st.schedule[s];
    std::size_t& cur = st.cursor[s];
    if (cur >= sched.size() || sched[cur].cycle != now) return false;
    st.staged_dest = sched[cur].dest;
    ++cur;
    return true;
  }

  std::string name() const override { return "trace"; }

  void reset() override { state_->reset(); }

 private:
  std::shared_ptr<ReplayState> state_;
};

class TracePattern final : public TrafficPattern {
 public:
  explicit TracePattern(std::shared_ptr<ReplayState> state)
      : state_(std::move(state)) {}

  int dest(int /*src*/, Prng& /*rng*/) const override {
    ReplayState& st = *state_;
    SHG_ASSERT(st.staged_dest >= 0,
               "trace pattern queried without a staged injection");
    const int d = st.staged_dest;
    st.staged_dest = -1;
    return d;
  }

  std::string name() const override { return "trace"; }

 private:
  std::shared_ptr<ReplayState> state_;
};

}  // namespace

TraceWorkload make_trace_replay(std::shared_ptr<const Trace> trace,
                                int num_sources, int num_terminals,
                                int packet_size_flits, double scale) {
  SHG_REQUIRE(trace != nullptr, "trace replay needs a loaded trace");
  SHG_REQUIRE(packet_size_flits >= 1, "trace replay needs a packet size");
  SHG_REQUIRE(scale > 0.0, "trace replay scale must be positive");
  validate_trace(*trace, "trace replay");
  SHG_REQUIRE(
      static_cast<std::uint64_t>(num_sources) == trace->num_sources,
      "trace was recorded for " + std::to_string(trace->num_sources) +
          " sources but the grid provides " + std::to_string(num_sources));
  SHG_REQUIRE(
      static_cast<std::uint64_t>(num_terminals) == trace->num_terminals,
      "trace was recorded for " + std::to_string(trace->num_terminals) +
          " terminals but the grid provides " + std::to_string(num_terminals));

  // Build the whole per-source schedule up front — replay is then a pure
  // cursor walk. A message becomes ceil(size / packet_size) packets on
  // consecutive cycles starting at max(scaled timestamp, the source's
  // previous injection end, the dependency's injection end).
  auto state = std::make_shared<ReplayState>();
  state->schedule.resize(static_cast<std::size_t>(num_sources));
  state->cursor.assign(static_cast<std::size_t>(num_sources), 0);
  state->clock.assign(static_cast<std::size_t>(num_sources), 0);
  std::vector<std::uint64_t> last_ts(static_cast<std::size_t>(num_sources), 0);
  std::vector<Cycle> next_free(static_cast<std::size_t>(num_sources), 0);
  std::vector<Cycle> record_end(trace->records.size(), 0);
  for (std::size_t i = 0; i < trace->records.size(); ++i) {
    const TraceRecord& rec = trace->records[i];
    const auto s = static_cast<std::size_t>(rec.source);
    const std::uint64_t abs = last_ts[s] + rec.delta;
    last_ts[s] = abs;
    Cycle start = scale == 1.0
                      ? static_cast<Cycle>(abs)
                      : static_cast<Cycle>(static_cast<double>(abs) / scale);
    if (start < next_free[s]) start = next_free[s];
    if (rec.dep != kTraceNoDep && start < record_end[rec.dep]) {
      start = record_end[rec.dep];
    }
    const Cycle packets =
        (static_cast<Cycle>(rec.size_flits) + packet_size_flits - 1) /
        packet_size_flits;
    for (Cycle k = 0; k < packets; ++k) {
      state->schedule[s].push_back(
          ReplayState::Entry{start + k, static_cast<std::int32_t>(rec.dest)});
    }
    next_free[s] = start + packets;
    record_end[i] = start + packets;
  }

  TraceWorkload workload;
  workload.pattern = std::make_unique<TracePattern>(state);
  workload.process = std::make_unique<TraceInjectionProcess>(state);
  return workload;
}

Trace trace_from_spec(const TrafficSpec& spec, const TraceRecordOptions& opt) {
  SHG_REQUIRE(spec.pattern != "trace",
              "trace_from_spec materializes synthetic specs; '" +
                  spec.canonical() + "' is already a trace");
  SHG_REQUIRE(opt.rows >= 1 && opt.cols >= 1, "trace recording needs a grid");
  SHG_REQUIRE(opt.cycles >= 1 && opt.cycles <= (1LL << 32),
              "trace recording window must be in [1, 2^32] cycles");
  SHG_REQUIRE(opt.packet_size_flits >= 1,
              "trace recording needs a packet size");
  const Concentration conc =
      Concentration::make(opt.rows, opt.cols, opt.concentration);
  const bool concentrated = opt.concentration > 1;
  const int num_tiles = opt.rows * opt.cols;
  const int ports = concentrated ? opt.concentration : opt.endpoints_per_tile;
  SHG_REQUIRE(ports >= 1, "trace recording needs at least one endpoint");

  Trace trace;
  trace.num_sources = static_cast<std::uint32_t>(num_tiles * ports);
  trace.num_terminals = static_cast<std::uint32_t>(
      concentrated ? conc.terminals() : num_tiles);

  const std::unique_ptr<TrafficPattern> pattern =
      spec.make_pattern(opt.rows, opt.cols, opt.concentration);
  const std::unique_ptr<InjectionProcess> process = spec.make_process(
      opt.injection_rate / static_cast<double>(opt.packet_size_flits),
      num_tiles * ports);

  // The engines' generation loop, draw for draw (simulator.cpp run_aos /
  // soa_network.cpp pregenerate): cycle -> tile -> port, inject draw then
  // destination draw, fixed points skipped after the draw. Recording this
  // order is what makes the replay differential oracle exact.
  Prng rng(opt.seed);
  process->reset();
  std::vector<std::uint32_t> last_ts(trace.num_sources, 0);
  for (Cycle t = 0; t < opt.cycles; ++t) {
    for (int tile = 0; tile < num_tiles; ++tile) {
      for (int port = 0; port < ports; ++port) {
        const int source = tile * ports + port;
        if (!process->inject(source, rng)) continue;
        int dest;
        if (concentrated) {
          const int src_terminal = conc.terminal(tile, port);
          const int dest_terminal = pattern->dest(src_terminal, rng);
          if (dest_terminal == src_terminal) continue;
          dest = dest_terminal;
        } else {
          dest = pattern->dest(tile, rng);
          if (dest == tile) continue;  // fixed point of a permutation
        }
        TraceRecord rec;
        rec.source = static_cast<std::uint32_t>(source);
        rec.delta = static_cast<std::uint32_t>(t) -
                    last_ts[static_cast<std::size_t>(source)];
        rec.dest = static_cast<std::uint32_t>(dest);
        rec.size_flits = static_cast<std::uint32_t>(opt.packet_size_flits);
        last_ts[static_cast<std::size_t>(source)] =
            static_cast<std::uint32_t>(t);
        trace.records.push_back(rec);
      }
    }
  }
  return trace;
}

}  // namespace shg::sim
