// Round-robin arbiter: the basic fairness primitive of the router's VC and
// switch allocators.
#pragma once

#include <vector>

#include "shg/common/error.hpp"

namespace shg::sim {

/// Rotating-priority arbiter over `size` requesters.
class RoundRobinArbiter {
 public:
  explicit RoundRobinArbiter(int size = 1) : size_(size) {
    SHG_REQUIRE(size >= 1, "arbiter needs at least one requester");
  }

  /// Grants one of the requesting inputs (requests[i] != 0), rotating
  /// priority after every successful grant. Returns -1 if nobody requests.
  int arbitrate(const std::vector<bool>& requests) {
    SHG_REQUIRE(static_cast<int>(requests.size()) == size_,
                "request vector size mismatch");
    for (int offset = 0; offset < size_; ++offset) {
      const int i = (next_ + offset) % size_;
      if (requests[static_cast<std::size_t>(i)]) {
        next_ = (i + 1) % size_;
        return i;
      }
    }
    return -1;
  }

 private:
  int size_;
  int next_ = 0;
};

}  // namespace shg::sim
