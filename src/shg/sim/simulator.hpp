// Cycle-accurate simulation driver: warmup / measurement / drain phases and
// latency/throughput statistics (the BookSim2 substitute of the prediction
// toolchain, Fig. 3).
//
// Two engines produce bit-identical results (ARCHITECTURE.md, "Simulator
// hot loop"): the reference AoS path (Network/Router/Channel objects,
// per-cycle full sweeps) and the SoA hot loop (sim/soa_network.hpp: flat
// slabs, an active-router worklist and quiescence fast-forward), selected
// by SimConfig::use_soa_engine.
#pragma once

#include <memory>
#include <vector>

#include "shg/sim/config.hpp"
#include "shg/sim/injection.hpp"
#include "shg/sim/network.hpp"
#include "shg/sim/route_table.hpp"
#include "shg/sim/routing.hpp"
#include "shg/sim/traffic.hpp"

namespace shg::sim {

/// Result of one simulation run at a fixed injection rate. The struct is
/// plain scalar data on purpose: the session result tier
/// (customize/cache.hpp, SimResultCache) serializes every field by bit
/// pattern, so a cache hit reproduces a cold run's report bytes exactly —
/// a new field here must be added to that serializer.
struct SimResult {
  double offered_rate = 0.0;   ///< flits / cycle / endpoint port
  double accepted_rate = 0.0;  ///< ejected flits / cycle / endpoint port
  double avg_packet_latency = 0.0;  ///< creation -> tail ejection, cycles
  double max_packet_latency = 0.0;
  double p50_packet_latency = 0.0;
  double p95_packet_latency = 0.0;
  double p99_packet_latency = 0.0;
  double avg_hops = 0.0;
  /// Worst per-source mean latency / overall mean latency (>= 1).
  double fairness = 1.0;
  long long measured_packets = 0;
  bool drained = true;  ///< all measured packets ejected within the budget
  long long cycles_run = 0;

  /// Exact (bit-level for the doubles) equality — the comparison the
  /// engine-identity and cache-identity oracles gate on.
  friend bool operator==(const SimResult&, const SimResult&) = default;
};

/// One simulation: a topology with per-link latencies, a router
/// configuration, a routing function and a traffic pattern.
class Simulator {
 public:
  /// `link_latencies`: cycles per link, from the cost model (Section IV-B2d).
  /// `endpoints_per_tile`: local injection/ejection ports per tile; must be
  /// 1 when the run is concentrated (SimConfig::concentration > 1 or a
  /// topology built by make_concentrated_mesh), because the concentration
  /// then defines the endpoint count.
  /// If `routing` is null, the topology family's default deadlock-free
  /// routing is used. `shared_table` lets callers running many simulations
  /// on one topology (sweeps, bisection) reuse one precomputed route table
  /// instead of rebuilding it per run; it must match the routing function
  /// and VC count, which verify_route_table can check.
  /// If `process` is null, a Bernoulli injection process at
  /// config.injection_rate / config.packet_size_flits packets per cycle
  /// per source is used — the classic (and pre-refactor) behavior.
  Simulator(const topo::Topology& topo, std::vector<int> link_latencies,
            SimConfig config, const TrafficPattern& pattern,
            int endpoints_per_tile,
            std::unique_ptr<RoutingFunction> routing = nullptr,
            std::shared_ptr<const RouteTable> shared_table = nullptr,
            std::unique_ptr<InjectionProcess> process = nullptr);

  /// Runs warmup + measurement + drain and returns the statistics.
  SimResult run();

  /// The live routing function. Not available when a shared route table
  /// (without verification) made constructing one unnecessary.
  const RoutingFunction& routing() const {
    SHG_REQUIRE(routing_ != nullptr,
                "simulator runs purely from a shared route table; no live "
                "routing function was constructed");
    return *routing_;
  }

  /// The precomputed route table (null when config.use_route_table is off).
  const RouteTable* route_table() const { return route_table_.get(); }

  /// The injection process driving packet generation (never null).
  const InjectionProcess& process() const { return *process_; }

  /// Packets the last run() sent on a UGAL non-minimal leg. Always 0 under
  /// an effective kMinimal policy (including the kUgalBiasAlwaysMinimal
  /// sentinel). Diagnostic side channel — deliberately NOT a SimResult
  /// field, so the bit-serialized result cache layout is untouched.
  long long ugal_nonminimal_choices() const { return last_ugal_nonminimal_; }

 private:
  struct PacketRecord {
    Cycle create = 0;
    Cycle eject = -1;
    int hops = 0;
    bool measured = false;
  };

  /// Reference engine: AoS Network/Router objects, full sweeps per cycle.
  SimResult run_aos();

  const topo::Topology* topo_;
  std::vector<int> link_latencies_;
  SimConfig config_;
  const TrafficPattern* pattern_;
  int endpoints_per_tile_;
  std::unique_ptr<RoutingFunction> routing_;
  std::shared_ptr<const RouteTable> route_table_;
  std::unique_ptr<InjectionProcess> process_;
  long long last_ugal_nonminimal_ = 0;
};

/// Initial reserve for per-packet bookkeeping: the expected injection
/// volume plus headroom, clamped so a high rate x long measurement x large
/// fabric product cannot overflow the size_t conversion or pre-commit
/// gigabytes up front (vectors still grow past the clamp on demand).
std::size_t packet_reserve_hint(double packet_prob, Cycle generation_end,
                                int num_tiles, int endpoints_per_tile);

}  // namespace shg::sim
