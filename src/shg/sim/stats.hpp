// Statistics helpers for simulation results: latency distributions and
// per-source fairness.
#pragma once

#include <vector>

#include "shg/common/error.hpp"

namespace shg::sim {

/// Sample-based distribution summary (exact percentiles from stored
/// samples; NoC-simulation sample counts are small enough to keep).
class Distribution {
 public:
  void add(double sample) { samples_.push_back(sample); }
  void reserve(std::size_t n) { samples_.reserve(n); }

  std::size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  double mean() const;
  double min() const;
  double max() const;
  /// Exact q-quantile (0 <= q <= 1) by nearest-rank; sorts lazily.
  double percentile(double q) const;
  double stddev() const;

 private:
  void ensure_sorted() const;

  std::vector<double> samples_;
  mutable std::vector<double> sorted_;
};

/// Per-source fairness: the ratio of the worst mean to the overall mean.
/// 1.0 = perfectly fair; large values indicate starved sources (e.g. ring
/// nodes far from the dateline under heavy load).
double fairness_ratio(const std::vector<double>& per_source_mean);

}  // namespace shg::sim
