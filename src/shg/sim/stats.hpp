// Statistics helpers for simulation results: latency distributions and
// per-source fairness.
#pragma once

#include <cstdint>
#include <vector>

#include "shg/common/error.hpp"

namespace shg::sim {

/// Sample-based distribution summary with a bounded memory footprint.
///
/// Up to `sample_cap` samples the distribution stores every sample and all
/// summaries (mean, min, max, stddev, percentiles) are the exact values the
/// unbounded implementation produced — bit-identical, including floating
/// point accumulation order. Past the cap the stored samples fold into an
/// integer-keyed counting histogram (one bucket per llround(sample), capped
/// at kMaxTrackedValue with an overflow bucket) so million-packet runs hold
/// a few hundred KB instead of a per-packet vector. In binned mode:
///  * mean/min/max stay exact (running accumulators in insertion order, so
///    mean is still bit-identical to the unbounded sum);
///  * percentiles are exact for non-negative integer-valued samples below
///    kMaxTrackedValue (packet latencies in cycles always are) and rounded
///    to the nearest integer otherwise;
///  * stddev is computed from the histogram (exact values for integer
///    samples, but accumulated in value order rather than insertion order).
class Distribution {
 public:
  /// Default cap: 1M samples (~8 MB) — far above any seed-scale run, so
  /// the binned mode only engages on the large-fabric workloads it exists
  /// for. A cap of 0 bins from the first sample.
  static constexpr std::size_t kDefaultSampleCap = std::size_t{1} << 20;
  /// Largest integer value with its own histogram bucket; larger samples
  /// share one overflow bucket whose percentiles report max().
  static constexpr long long kMaxTrackedValue = 1 << 21;

  explicit Distribution(std::size_t sample_cap = kDefaultSampleCap)
      : cap_(sample_cap) {}

  void add(double sample);
  void reserve(std::size_t n);

  std::size_t count() const { return count_; }
  bool empty() const { return count_ == 0; }
  /// True once the sample cap forced the fold into the histogram.
  bool binned() const { return binned_; }

  double mean() const;
  double min() const;
  double max() const;
  /// q-quantile (0 <= q <= 1) by nearest-rank; exact below the sample cap
  /// (sorts lazily), histogram-resolved above it.
  double percentile(double q) const;
  double stddev() const;

 private:
  void ensure_sorted() const;
  void fold_into_bins();
  void bin_sample(double sample);

  std::size_t cap_;
  bool binned_ = false;

  // Exact mode.
  std::vector<double> samples_;
  mutable std::vector<double> sorted_;

  // Binned mode. Running accumulators are maintained in insertion order
  // from the fold onward, reproducing the unbounded accumulate().
  std::vector<std::uint64_t> bins_;  ///< count per integer value
  std::uint64_t over_count_ = 0;     ///< samples above kMaxTrackedValue
  std::size_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Per-source fairness: the ratio of the worst mean to the overall mean.
/// 1.0 = perfectly fair; large values indicate starved sources (e.g. ring
/// nodes far from the dateline under heavy load).
double fairness_ratio(const std::vector<double>& per_source_mean);

}  // namespace shg::sim
