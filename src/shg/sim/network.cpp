#include "shg/sim/network.hpp"

namespace shg::sim {

NetworkInterface::NetworkInterface(int num_ports, int num_vcs)
    : num_vcs_(num_vcs),
      queues_(static_cast<std::size_t>(num_ports)),
      open_vc_(static_cast<std::size_t>(num_ports), -1),
      next_vc_(static_cast<std::size_t>(num_ports), 0) {}

void NetworkInterface::enqueue_packet(int port, const std::vector<Flit>& flits) {
  SHG_REQUIRE(port >= 0 && port < static_cast<int>(queues_.size()),
              "endpoint port out of range");
  SHG_REQUIRE(!flits.empty() && flits.front().head && flits.back().tail,
              "packet must be head..tail delimited");
  auto& queue = queues_[static_cast<std::size_t>(port)];
  for (const Flit& flit : flits) queue.push_back(flit);
}

void NetworkInterface::inject(Router& router, Cycle now) {
  for (int port = 0; port < static_cast<int>(queues_.size()); ++port) {
    auto& queue = queues_[static_cast<std::size_t>(port)];
    if (queue.empty()) continue;
    const Flit& flit = queue.front();
    int& open = open_vc_[static_cast<std::size_t>(port)];
    if (flit.head) {
      SHG_ASSERT(open < 0, "head flit while another packet is open");
      // Pick an input VC with space, round-robin (the routing constraints
      // bind at the router's output, not at the local input buffer).
      int& next = next_vc_[static_cast<std::size_t>(port)];
      int chosen = -1;
      for (int off = 0; off < num_vcs_; ++off) {
        const int v = (next + off) % num_vcs_;
        if (router.local_vc_space(port, v) > 0) {
          chosen = v;
          break;
        }
      }
      if (chosen < 0) continue;  // all local VCs full; retry next cycle
      next = (chosen + 1) % num_vcs_;
      const bool ok = router.try_inject(port, chosen, flit, now);
      SHG_ASSERT(ok, "injection must succeed after the space check");
      if (!flit.tail) open = chosen;
      queue.pop_front();
    } else {
      // Body/tail flit: must continue on the head's VC.
      SHG_ASSERT(open >= 0, "body flit without an open packet");
      if (router.local_vc_space(port, open) <= 0) continue;
      const bool ok = router.try_inject(port, open, flit, now);
      SHG_ASSERT(ok, "injection must succeed after the space check");
      if (flit.tail) open = -1;
      queue.pop_front();
    }
  }
}

long long NetworkInterface::queued_flits() const {
  long long total = 0;
  for (const auto& queue : queues_) {
    total += static_cast<long long>(queue.size());
  }
  return total;
}

Network::Network(const topo::Topology& topo,
                 const std::vector<int>& link_latencies,
                 const SimConfig& config, const RoutingFunction* routing,
                 int endpoints_per_tile, const RouteTable* table)
    : endpoints_per_tile_(endpoints_per_tile) {
  const auto& g = topo.graph();
  config.validate();
  SHG_REQUIRE(static_cast<int>(link_latencies.size()) == g.num_edges(),
              "need one latency per link");
  SHG_REQUIRE(endpoints_per_tile >= 1, "need at least one endpoint per tile");

  // Two directed channels per edge: channels_[2e] carries u -> v (with u the
  // edge's stored u), channels_[2e+1] carries v -> u.
  channels_.reserve(static_cast<std::size_t>(2 * g.num_edges()));
  for (graph::EdgeId e = 0; e < g.num_edges(); ++e) {
    const int latency = link_latencies[static_cast<std::size_t>(e)];
    channels_.push_back(std::make_unique<Channel>(latency));
    channels_.push_back(std::make_unique<Channel>(latency));
  }

  routers_.reserve(static_cast<std::size_t>(g.num_nodes()));
  for (graph::NodeId u = 0; u < g.num_nodes(); ++u) {
    routers_.push_back(std::make_unique<Router>(
        u, g.degree(u), endpoints_per_tile, config, routing, table));
    nis_.emplace_back(endpoints_per_tile, config.num_vcs);
  }
  for (graph::NodeId u = 0; u < g.num_nodes(); ++u) {
    const auto& nbrs = g.neighbors(u);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const auto& edge = g.edge(nbrs[i].edge);
      // Channel index for the direction u -> neighbor.
      const bool is_forward = edge.u == u;
      Channel* out =
          channels_[static_cast<std::size_t>(2 * nbrs[i].edge) +
                    (is_forward ? 0 : 1)]
              .get();
      Channel* in =
          channels_[static_cast<std::size_t>(2 * nbrs[i].edge) +
                    (is_forward ? 1 : 0)]
              .get();
      routers_[static_cast<std::size_t>(u)]->attach(static_cast<int>(i), in,
                                                    out);
    }
  }
}

void Network::step(Cycle now) {
  for (auto& router : routers_) {
    router->deliver_phase(now);
  }
  for (std::size_t n = 0; n < nis_.size(); ++n) {
    nis_[n].inject(*routers_[n], now);
  }
  for (auto& router : routers_) {
    router->allocate_phase(now);
  }
}

long long Network::flits_in_flight() const {
  long long total = 0;
  for (const auto& router : routers_) {
    total += router->buffered_flits();
  }
  for (const auto& ni : nis_) {
    total += ni.queued_flits();
  }
  for (const auto& channel : channels_) {
    total += static_cast<long long>(channel->pending_flits());
  }
  return total;
}

long long Network::ugal_nonminimal() const {
  long long total = 0;
  for (const auto& router : routers_) {
    total += router->ugal_nonminimal();
  }
  return total;
}

}  // namespace shg::sim
