#include "shg/sim/stats.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace shg::sim {

double Distribution::mean() const {
  SHG_REQUIRE(!samples_.empty(), "no samples");
  return std::accumulate(samples_.begin(), samples_.end(), 0.0) /
         static_cast<double>(samples_.size());
}

double Distribution::min() const {
  SHG_REQUIRE(!samples_.empty(), "no samples");
  return *std::min_element(samples_.begin(), samples_.end());
}

double Distribution::max() const {
  SHG_REQUIRE(!samples_.empty(), "no samples");
  return *std::max_element(samples_.begin(), samples_.end());
}

void Distribution::ensure_sorted() const {
  if (sorted_.size() != samples_.size()) {
    sorted_ = samples_;
    std::sort(sorted_.begin(), sorted_.end());
  }
}

double Distribution::percentile(double q) const {
  SHG_REQUIRE(!samples_.empty(), "no samples");
  SHG_REQUIRE(q >= 0.0 && q <= 1.0, "quantile must be in [0, 1]");
  ensure_sorted();
  const auto rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(sorted_.size())));
  const std::size_t index = rank == 0 ? 0 : rank - 1;
  return sorted_[std::min(index, sorted_.size() - 1)];
}

double Distribution::stddev() const {
  SHG_REQUIRE(!samples_.empty(), "no samples");
  const double m = mean();
  double sq = 0.0;
  for (double s : samples_) sq += (s - m) * (s - m);
  return std::sqrt(sq / static_cast<double>(samples_.size()));
}

double fairness_ratio(const std::vector<double>& per_source_mean) {
  SHG_REQUIRE(!per_source_mean.empty(), "no sources");
  double total = 0.0;
  double worst = 0.0;
  for (double m : per_source_mean) {
    SHG_REQUIRE(m >= 0.0, "mean latency must be non-negative");
    total += m;
    worst = std::max(worst, m);
  }
  const double overall = total / static_cast<double>(per_source_mean.size());
  // Degenerate all-zero input (e.g. an experiment point whose measurement
  // window caught no packets): every source is served identically, so the
  // fairest possible ratio — not a trap — is the right answer.
  if (overall == 0.0) return 1.0;
  return worst / overall;
}

}  // namespace shg::sim
