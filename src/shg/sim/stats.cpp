#include "shg/sim/stats.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace shg::sim {

void Distribution::add(double sample) {
  if (!binned_) {
    if (samples_.size() < cap_) {
      samples_.push_back(sample);
      ++count_;
      return;
    }
    fold_into_bins();
  }
  SHG_REQUIRE(sample >= 0.0,
              "binned distribution mode requires non-negative samples");
  sum_ += sample;
  min_ = count_ == 0 ? sample : std::min(min_, sample);
  max_ = count_ == 0 ? sample : std::max(max_, sample);
  ++count_;
  bin_sample(sample);
}

void Distribution::reserve(std::size_t n) {
  if (!binned_) samples_.reserve(std::min(n, cap_));
}

void Distribution::fold_into_bins() {
  binned_ = true;
  // Accumulate in insertion order so sum_ (and therefore mean()) carries
  // the exact floating-point value the unbounded accumulate() produced.
  sum_ = 0.0;
  for (double s : samples_) {
    SHG_REQUIRE(s >= 0.0,
                "binned distribution mode requires non-negative samples");
    sum_ += s;
    bin_sample(s);
  }
  if (!samples_.empty()) {
    min_ = *std::min_element(samples_.begin(), samples_.end());
    max_ = *std::max_element(samples_.begin(), samples_.end());
  }
  samples_.clear();
  samples_.shrink_to_fit();
  sorted_.clear();
  sorted_.shrink_to_fit();
}

void Distribution::bin_sample(double sample) {
  const long long key = std::llround(sample);
  if (key >= kMaxTrackedValue) {
    ++over_count_;
    return;
  }
  const auto index = static_cast<std::size_t>(key < 0 ? 0 : key);
  if (index >= bins_.size()) bins_.resize(index + 1, 0);
  ++bins_[index];
}

double Distribution::mean() const {
  SHG_REQUIRE(count_ > 0, "no samples");
  if (binned_) return sum_ / static_cast<double>(count_);
  return std::accumulate(samples_.begin(), samples_.end(), 0.0) /
         static_cast<double>(count_);
}

double Distribution::min() const {
  SHG_REQUIRE(count_ > 0, "no samples");
  if (binned_) return min_;
  return *std::min_element(samples_.begin(), samples_.end());
}

double Distribution::max() const {
  SHG_REQUIRE(count_ > 0, "no samples");
  if (binned_) return max_;
  return *std::max_element(samples_.begin(), samples_.end());
}

void Distribution::ensure_sorted() const {
  if (sorted_.size() != samples_.size()) {
    sorted_ = samples_;
    std::sort(sorted_.begin(), sorted_.end());
  }
}

double Distribution::percentile(double q) const {
  SHG_REQUIRE(count_ > 0, "no samples");
  SHG_REQUIRE(q >= 0.0 && q <= 1.0, "quantile must be in [0, 1]");
  const auto rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(count_)));
  const std::size_t index = rank == 0 ? 0 : rank - 1;  // 0-based k-th smallest
  if (!binned_) {
    ensure_sorted();
    return sorted_[std::min(index, sorted_.size() - 1)];
  }
  // Histogram walk: the k-th smallest value is the first bucket whose
  // cumulative count exceeds k. Ranks landing in the overflow bucket
  // report the exact running max.
  std::uint64_t cumulative = 0;
  for (std::size_t v = 0; v < bins_.size(); ++v) {
    cumulative += bins_[v];
    if (cumulative > index) return static_cast<double>(v);
  }
  return max_;
}

double Distribution::stddev() const {
  SHG_REQUIRE(count_ > 0, "no samples");
  const double m = mean();
  double sq = 0.0;
  if (!binned_) {
    for (double s : samples_) sq += (s - m) * (s - m);
  } else {
    for (std::size_t v = 0; v < bins_.size(); ++v) {
      if (bins_[v] == 0) continue;
      const double d = static_cast<double>(v) - m;
      sq += static_cast<double>(bins_[v]) * d * d;
    }
    // Overflow samples are only known to exceed kMaxTrackedValue; attribute
    // them the running max (the best bounded estimate).
    if (over_count_ > 0) {
      const double d = max_ - m;
      sq += static_cast<double>(over_count_) * d * d;
    }
  }
  return std::sqrt(sq / static_cast<double>(count_));
}

double fairness_ratio(const std::vector<double>& per_source_mean) {
  SHG_REQUIRE(!per_source_mean.empty(), "no sources");
  double total = 0.0;
  double worst = 0.0;
  for (double m : per_source_mean) {
    SHG_REQUIRE(m >= 0.0, "mean latency must be non-negative");
    total += m;
    worst = std::max(worst, m);
  }
  const double overall = total / static_cast<double>(per_source_mean.size());
  // Degenerate all-zero input (e.g. an experiment point whose measurement
  // window caught no packets): every source is served identically, so the
  // fairest possible ratio — not a trap — is the right answer.
  if (overall == 0.0) return 1.0;
  return worst / overall;
}

}  // namespace shg::sim
