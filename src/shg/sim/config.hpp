// Simulation configuration: router microarchitecture and measurement setup.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "shg/common/error.hpp"

namespace shg::sim {

/// How the router picks the path of a packet.
///
/// kMinimal: every packet follows a hop-minimal route (the per-family
/// default routing; deadlock-free by construction — see ARCHITECTURE.md,
/// "Deadlock freedom by routing family").
///
/// kUgal: UGAL-class source-adaptive routing (booksim2's
/// `ugal_dragonflynew` shape). At injection time the source router compares
/// the adaptive-VC occupancy toward the destination (weighted by the
/// minimal hop count) against the occupancy toward a deterministic,
/// seed-drawn Valiant intermediate (weighted by the two-leg hop count plus
/// a bias), and sends the packet non-minimally when the congested minimal
/// path loses. Deadlock freedom comes from a Duato escape scheme: adaptive
/// choice lives on VCs [2, num_vcs), the per-family deadlock-free routing
/// runs as an escape network on the reserved classes [0, 2), and a packet
/// that enters the escape band stays on it. Requires num_vcs >= 3.
enum class RoutingPolicy : std::int32_t {
  kMinimal = 0,
  kUgal = 1,
};

/// Knobs of one simulation run.
///
/// Every field is part of the experiment-cell cache key
/// (customize::fingerprint_sim_config) — a sizeof-based static_assert next
/// to that routine trips when a field is added here without extending it,
/// so new knobs cannot silently alias cached simulation results.
struct SimConfig {
  // Router microarchitecture ("input-queued routers with 8 virtual channels
  // and 32-flit buffers", Section V-b).
  int num_vcs = 8;
  int buffer_depth_flits = 32;
  /// Per-router pipeline delay in cycles; the paper's model assumes every
  /// router (and flit injection) adds at least one cycle.
  int router_delay_cycles = 1;

  // Traffic.
  int packet_size_flits = 4;
  double injection_rate = 0.01;  ///< flits per cycle per endpoint port

  /// Concentration (booksim2 cmesh-style): terminals per router. With
  /// concentration > 1 every router serves `concentration` endpoint ports,
  /// traffic patterns address *terminals* laid out on the concentrated
  /// sub-grid (see sim/concentration.hpp), and a packet ejects at its
  /// destination terminal's port. Requires the simulator's
  /// endpoints_per_tile argument to be 1 (the concentration defines the
  /// endpoint count). concentration == 1 is the classic per-tile
  /// addressing, bit-identical to the pre-concentration simulator.
  int concentration = 1;

  // Measurement phases (BookSim-style warmup / measure / drain).
  long long warmup_cycles = 1000;
  long long measure_cycles = 3000;
  long long drain_cycles = 40000;  ///< cap on the drain phase

  // Route-table acceleration: precompute every routing decision into a flat
  // table at simulator construction so no RoutingFunction::route() call (or
  // vector allocation) happens per head flit. Results are bit-identical with
  // the table on or off; turn it off only when the table's memory footprint
  // is a concern (it grows with nodes^2 * radix * VCs).
  bool use_route_table = true;
  // Equivalence-checking mode: after building the table, re-derive every
  // entry from the live routing function and fail loudly on any mismatch.
  bool verify_route_table = false;

  // Structure-of-arrays hot loop (sim/soa_network.hpp): flat ring-buffer
  // slabs instead of per-object deques, an active-router worklist instead
  // of full-network sweeps, and whole-network quiescence fast-forward
  // between injections. Results are bit-identical with the engine on or
  // off (the bench_sim_scale gate and the sim_soa_test suite enforce it);
  // turn it off only to run the reference AoS path.
  bool use_soa_engine = true;

  /// Latency samples stored exactly before the Distribution folds into its
  /// integer-binned mode (see sim/stats.hpp). Below the cap percentiles are
  /// bit-identical to the unbounded implementation; above it memory stays
  /// bounded for million-packet runs. 0 bins from the first sample. The
  /// default matches Distribution::kDefaultSampleCap.
  std::size_t latency_sample_cap = std::size_t{1} << 20;

  /// Forces a kUgal config to behave exactly like kMinimal (every decision
  /// resolves minimal before any UGAL machinery engages); see
  /// effective_routing_policy below. The differential-oracle tests use it
  /// to prove the UGAL plumbing perturbs nothing when it never fires.
  static constexpr int kUgalBiasAlwaysMinimal = -1;

  /// Routing-policy axis. kMinimal is bit-identical to the historical
  /// behavior; kUgal adds the adaptive/escape machinery described on
  /// RoutingPolicy.
  RoutingPolicy routing_policy = RoutingPolicy::kMinimal;
  /// UGAL bias in flits: the non-minimal cost must undercut the minimal
  /// cost by more than this margin before a packet goes non-minimal.
  /// Larger values favor minimal routing; kUgalBiasAlwaysMinimal disables
  /// non-minimal routing entirely.
  int ugal_bias_flits = 1;
  /// Seed of the deterministic Valiant-intermediate draw. Kept separate
  /// from `seed` so an injection-seed sweep shares one route table.
  std::uint64_t ugal_via_seed = 0x9e3779b97f4a7c15ull;

  std::uint64_t seed = 0x5eed;

  void validate() const {
    SHG_REQUIRE(num_vcs >= 1, "need at least one VC");
    SHG_REQUIRE(buffer_depth_flits >= 1, "need at least one buffer slot");
    SHG_REQUIRE(router_delay_cycles >= 0, "router delay must be >= 0");
    SHG_REQUIRE(packet_size_flits >= 1, "packets need at least one flit");
    SHG_REQUIRE(concentration >= 1, "need at least one terminal per router");
    SHG_REQUIRE(injection_rate > 0.0 && injection_rate <= 1.0,
                "injection rate must be in (0, 1] flits/cycle/port");
    SHG_REQUIRE(warmup_cycles >= 0 && measure_cycles > 0 && drain_cycles >= 0,
                "invalid measurement phases");
    SHG_REQUIRE(routing_policy == RoutingPolicy::kMinimal ||
                    routing_policy == RoutingPolicy::kUgal,
                "unknown routing policy");
    SHG_REQUIRE(ugal_bias_flits >= kUgalBiasAlwaysMinimal,
                "ugal_bias_flits must be >= -1 "
                "(-1 = kUgalBiasAlwaysMinimal sentinel)");
  }
};

/// The policy the simulator actually runs. A kUgal config whose bias is the
/// kUgalBiasAlwaysMinimal sentinel degenerates to kMinimal outright — the
/// UGAL decision could never pick non-minimal, so the simulator skips the
/// escape-VC machinery and is bit-identical to a kMinimal run (the
/// differential oracle in tests/sim_ugal_test.cpp holds the two together).
inline RoutingPolicy effective_routing_policy(const SimConfig& config) {
  if (config.routing_policy == RoutingPolicy::kUgal &&
      config.ugal_bias_flits == SimConfig::kUgalBiasAlwaysMinimal) {
    return RoutingPolicy::kMinimal;
  }
  return config.routing_policy;
}

inline const char* routing_policy_name(RoutingPolicy policy) {
  return policy == RoutingPolicy::kUgal ? "ugal" : "minimal";
}

/// Parses "minimal" / "ugal" (the CLI and wire-protocol spelling). Throws
/// on anything else, naming the offending string.
inline RoutingPolicy parse_routing_policy(const std::string& name) {
  if (name == "minimal") return RoutingPolicy::kMinimal;
  if (name == "ugal") return RoutingPolicy::kUgal;
  SHG_REQUIRE(false, "unknown routing policy '" + name +
                         "' (expected 'minimal' or 'ugal')");
  return RoutingPolicy::kMinimal;  // unreachable
}

}  // namespace shg::sim
