#include "shg/sim/route_table.hpp"

#include <algorithm>
#include <functional>
#include <limits>
#include <string>
#include <string_view>
#include <unordered_map>

namespace shg::sim {

namespace {

/// Content key of one candidate list. RouteCandidate is three ints with no
/// padding, so the raw bytes identify the list exactly. Returned as a view
/// so the overwhelmingly common map-hit probe allocates nothing; the map
/// owns a std::string copy only for the few hundred unique lists.
std::string_view row_key(const std::vector<RouteCandidate>& candidates) {
  static_assert(sizeof(RouteCandidate) == 3 * sizeof(int),
                "row_key assumes a packed RouteCandidate");
  if (candidates.empty()) return std::string_view();
  return std::string_view(reinterpret_cast<const char*>(candidates.data()),
                          candidates.size() * sizeof(RouteCandidate));
}

/// Transparent hash so the map probes with string_view keys directly.
struct RowKeyHash {
  using is_transparent = void;
  std::size_t operator()(std::string_view key) const {
    return std::hash<std::string_view>{}(key);
  }
};

}  // namespace

RouteTable::RouteTable(const topo::Topology& topo,
                       const RoutingFunction& routing, int num_vcs)
    : num_nodes_(topo.graph().num_nodes()),
      num_vcs_(num_vcs),
      routing_name_(routing.name()) {
  SHG_REQUIRE(num_vcs >= 1, "route table needs at least one VC");
  if (const UgalInfo* info = routing.ugal_info()) ugal_ = *info;
  const auto& g = topo.graph();
  const std::size_t n = static_cast<std::size_t>(num_nodes_);

  slot_base_.resize(n + 1);
  degree_.resize(n);
  std::size_t slots = 0;
  for (graph::NodeId u = 0; u < num_nodes_; ++u) {
    slot_base_[static_cast<std::size_t>(u)] = slots;
    degree_[static_cast<std::size_t>(u)] = g.degree(u);
    slots += 1 + static_cast<std::size_t>(g.degree(u)) *
                     static_cast<std::size_t>(num_vcs);
  }
  slot_base_[n] = slots;

  const std::size_t rows = slots * n;
  row_ids_.assign(rows, 0);
  offsets_.clear();
  offsets_.push_back(0);

  // One pass over the state space (a second pass would double the
  // routing-function work), hash-consing candidate lists as we go: a row
  // whose list matches an earlier one points at the existing arena range,
  // only novel lists extend the arena. Rows are visited in node-major,
  // slot, dest order, so unique rows keep first-appearance order.
  std::unordered_map<std::string, std::uint32_t, RowKeyHash, std::equal_to<>>
      unique_rows;
  for (graph::NodeId node = 0; node < num_nodes_; ++node) {
    const int degree = degree_[static_cast<std::size_t>(node)];
    for (int slot = 0; slot < 1 + degree * num_vcs; ++slot) {
      const int in_port = slot == 0 ? -1 : (slot - 1) / num_vcs;
      const int in_vc = slot == 0 ? -1 : (slot - 1) % num_vcs;
      for (graph::NodeId dest = 0; dest < num_nodes_; ++dest) {
        const std::size_t row =
            (slot_base_[static_cast<std::size_t>(node)] +
             static_cast<std::size_t>(slot)) *
                n +
            static_cast<std::size_t>(dest);
        // Ejection states (dest == node) bypass routing entirely; routing
        // functions may also reject states their own invariants make
        // unreachable (e.g. the up*/down* escape has no continuation for an
        // arrival direction the escape path never produces). Both store an
        // empty row: the simulator never looks them up, and if it ever did
        // the router's non-empty assertion reproduces live-mode failure.
        std::vector<RouteCandidate> candidates;
        if (dest != node) {
          try {
            candidates = routing.route(node, in_port, in_vc, dest);
          } catch (const Error&) {
            candidates.clear();
          }
        }
        num_candidates_undeduped_ += candidates.size();
        const std::string_view key = row_key(candidates);
        auto it = unique_rows.find(key);
        if (it == unique_rows.end()) {
          it = unique_rows
                   .emplace(std::string(key),
                            static_cast<std::uint32_t>(offsets_.size() - 1))
                   .first;
          arena_.insert(arena_.end(), candidates.begin(), candidates.end());
          SHG_ASSERT(arena_.size() <=
                         std::numeric_limits<std::uint32_t>::max(),
                     "route table arena exceeds 32-bit offsets");
          offsets_.push_back(static_cast<std::uint32_t>(arena_.size()));
        }
        row_ids_[row] = it->second;
      }
    }
  }
  arena_.shrink_to_fit();
  offsets_.shrink_to_fit();
}

void RouteTable::verify_against(const RoutingFunction& routing) const {
  for (graph::NodeId node = 0; node < num_nodes_; ++node) {
    const int degree = degree_[static_cast<std::size_t>(node)];
    for (int slot = 0; slot < 1 + degree * num_vcs_; ++slot) {
      const int in_port = slot == 0 ? -1 : (slot - 1) / num_vcs_;
      const int in_vc = slot == 0 ? -1 : (slot - 1) % num_vcs_;
      for (graph::NodeId dest = 0; dest < num_nodes_; ++dest) {
        if (dest == node) continue;
        std::vector<RouteCandidate> expected;
        try {
          expected = routing.route(node, in_port, in_vc, dest);
        } catch (const Error&) {
          // The reference function rejects this state as unreachable; the
          // table must agree by having stored nothing for it.
          SHG_REQUIRE(lookup(node, in_port, in_vc, dest).empty(),
                      "route table has candidates for a state the routing "
                      "function rejects");
          continue;
        }
        const auto actual = lookup(node, in_port, in_vc, dest);
        const bool match =
            expected.size() == actual.size() &&
            std::equal(expected.begin(), expected.end(), actual.begin(),
                       [](const RouteCandidate& a, const RouteCandidate& b) {
                         return a.out_port == b.out_port &&
                                a.vc_begin == b.vc_begin &&
                                a.vc_end == b.vc_end;
                       });
        SHG_REQUIRE(match, "route table mismatch vs " + routing.name() +
                               " at node " + std::to_string(node) +
                               " in_port " + std::to_string(in_port) +
                               " in_vc " + std::to_string(in_vc) + " dest " +
                               std::to_string(dest));
      }
    }
  }
}

}  // namespace shg::sim
