// Declarative workload addressing: a TrafficSpec names a traffic pattern
// (where packets go) and an injection process (when they are injected) in
// one string, so workloads can be written in configs, CLI arguments and
// report labels instead of being constructed by hand.
//
// Grammar (see README.md for the full table):
//
//   spec          := pattern [ "/" process ]
//                  | "trace:" path [ "@" scale ]  (recorded workload replay)
//   pattern       := "uniform" | "transpose" | "bit-complement"
//                  | "bit-reverse" | "shuffle" | "tornado" | "neighbor"
//                  | "hotspot:" tiles ":" fraction
//                  | "randperm:" seed           (seed-drawn permutation)
//   tiles         := tile { "," tile }          (flattened tile ids)
//   process       := "bernoulli"                (the default)
//                  | "onoff:" alpha "," beta    (bursty Markov on-off)
//
// Examples: "uniform", "hotspot:0,7:0.2", "randperm:7",
// "transpose/onoff:0.05,0.2", "trace:out/mempool.trace@2".
//
// A trace spec replaces BOTH halves: the trace bytes define where packets
// go and when (sim/trace.hpp), so it takes no "/" process suffix and is
// instantiated through make_trace_workload instead of the
// make_pattern/make_process pair.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "shg/sim/injection.hpp"
#include "shg/sim/traffic.hpp"

namespace shg::sim {

struct Trace;
struct TraceWorkload;

/// A parsed workload specification. Factories are split from parsing so
/// one spec can be instantiated on many grids (patterns are grid-sized)
/// and at many rates (processes are rate-sized).
struct TrafficSpec {
  // Pattern half.
  std::string pattern = "uniform";
  std::vector<int> hotspot_tiles;       ///< "hotspot" only
  double hotspot_fraction = 0.0;        ///< "hotspot" only
  std::uint64_t randperm_seed = 0;      ///< "randperm" only

  // Process half.
  std::string process = "bernoulli";
  double on_off_alpha = 0.0;            ///< "onoff" only
  double on_off_beta = 0.0;             ///< "onoff" only

  // Trace replay ("trace" specs replace both halves).
  std::string trace_path;               ///< "trace" only
  double trace_scale = 1.0;             ///< "trace" only; time compression
  /// The loaded trace; filled by resolve_trace(), shared so copies of a
  /// resolved spec (experiment cells, shards) reuse one in-memory trace.
  std::shared_ptr<const Trace> trace;

  /// Parses a spec string; throws shg::Error (with the offending token)
  /// on unknown pattern/process names or malformed arguments.
  static TrafficSpec parse(const std::string& text);

  /// The canonical spec string; parse(canonical()) round-trips.
  std::string canonical() const;

  /// Instantiates the pattern for an R x C router grid with
  /// `concentration` terminals per router. With concentration == 1 (the
  /// default) patterns address tiles; otherwise they address row-major
  /// terminal ids on the concentrated terminal grid (sim/concentration.hpp)
  /// and hotspot ids are terminal ids. Throws when the pattern is not
  /// applicable (non-square transpose, non-power-of-two shuffle, hotspot
  /// id out of range, ...); the error names the canonical spec string and
  /// the offending terminal grid, not just the inner precondition.
  std::unique_ptr<TrafficPattern> make_pattern(int rows, int cols,
                                               int concentration = 1) const;

  /// Instantiates the injection process for `num_sources` endpoint ports
  /// at a mean packet probability of `packet_prob` per source per cycle.
  /// Trace specs have no process half; this throws for them.
  std::unique_ptr<InjectionProcess> make_process(double packet_prob,
                                                 int num_sources) const;

  /// True for "trace:" specs, which are instantiated through
  /// make_trace_workload instead of make_pattern/make_process.
  bool is_trace() const { return pattern == "trace"; }

  /// Loads trace_path (sim/trace.hpp load_trace: full validation, warn +
  /// shg::Error on a bad file). Idempotent; a no-op for non-trace specs
  /// and for specs whose trace is already resolved.
  void resolve_trace();

  /// The trace's content hash — the fingerprint_sim_cell ingredient that
  /// makes trace cell keys sensitive to the trace BYTES, not just the
  /// path string in canonical(). 0 when this is not a resolved trace spec.
  std::uint64_t trace_content_hash() const;

  /// Instantiates the replay pattern/process pair on an R x C router grid
  /// (resolve_trace() first). The trace header must match the grid's
  /// source/terminal counts; mismatches throw naming the canonical spec
  /// and the grid, like make_pattern does.
  TraceWorkload make_trace_workload(int rows, int cols, int concentration,
                                    int endpoints_per_tile,
                                    int packet_size_flits) const;
};

/// The pattern names make_pattern understands (for error messages/docs).
const std::vector<std::string>& known_pattern_names();

}  // namespace shg::sim
